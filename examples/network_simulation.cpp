// Networked deployment walkthrough: the whole provider and a small audience
// running over the simulated lossy Internet — every ticket, key, and frame
// crosses the wire as a datagram with latency, jitter, and loss, and the
// clients' retransmission logic keeps the protocols reliable.
//
//   ./network_simulation [loss%]   (default 5)
#include <cstdio>
#include <cstdlib>

#include "analysis/stats.h"
#include "net/deployment.h"

using namespace p2pdrm;

int main(int argc, char** argv) {
  const double loss = (argc > 1 ? std::atof(argv[1]) : 5.0) / 100.0;

  net::DeploymentConfig cfg;
  cfg.seed = 20260707;
  cfg.default_link.latency.floor = 15 * util::kMillisecond;
  cfg.default_link.latency.median = 60 * util::kMillisecond;
  cfg.default_link.latency.sigma = 0.5;
  cfg.default_link.loss = loss;
  cfg.processing.light = 1 * util::kMillisecond;
  cfg.processing.heavy = 8 * util::kMillisecond;
  cfg.request_timeout = 500 * util::kMillisecond;
  cfg.max_retries = 8;

  net::Deployment d(cfg);
  const geo::RegionId region = d.geo().region_at(0);
  d.add_regional_channel(1, "world-cup-final", region);
  d.start_channel_server(1);
  std::printf("deployment up: per-link loss %.0f%%, RTT median ~%lldms\n",
              loss * 100,
              static_cast<long long>(cfg.default_link.latency.median /
                                     util::kMillisecond));

  constexpr int kViewers = 12;
  std::vector<net::AsyncClient*> viewers;
  int done = 0;
  for (int i = 0; i < kViewers; ++i) {
    const std::string email = "fan" + std::to_string(i) + "@example.com";
    d.add_user(email, "pw");
    viewers.push_back(&d.add_client(email, "pw", region));
  }

  // Everyone logs in and tunes in concurrently; the simulation interleaves
  // all the protocol exchanges.
  for (net::AsyncClient* v : viewers) {
    v->login([&d, v, &done](core::DrmError err) {
      if (err != core::DrmError::kOk) {
        std::printf("  %s login failed: %s\n", v->config().email.c_str(),
                    to_string(err).data());
        ++done;
        return;
      }
      v->switch_channel(1, [&d, v, &done](core::DrmError err2) {
        ++done;
        if (err2 == core::DrmError::kOk) {
          d.announce(*v);  // immediately a parent candidate
        } else {
          std::printf("  %s switch failed: %s\n", v->config().email.c_str(),
                      to_string(err2).data());
        }
      });
    });
  }
  while (done < kViewers && d.sim().step()) {
  }
  std::printf("all %d viewers joined at t=%s\n", done,
              util::format_time(d.sim().now()).c_str());

  // One minute of the match: 2 frames/second pushed through the tree,
  // crossing a key rotation along the way.
  const util::SimTime until = d.sim().now() + util::kMinute;
  std::uint64_t frames = 0;
  while (d.sim().now() < until) {
    d.broadcast(1, util::bytes_of("frame " + std::to_string(frames)));
    ++frames;
    d.run_for(500 * util::kMillisecond);
  }
  d.run_for(5 * util::kSecond);  // drain stragglers

  std::printf("\n%-22s %10s %12s %10s\n", "viewer", "decrypted", "undecrypt.",
              "p50 JOIN");
  for (net::AsyncClient* v : viewers) {
    std::vector<double> join_lat;
    for (const client::LatencySample& s : v->feedback_log()) {
      if (s.round == client::Round::kJoin && s.success) {
        join_lat.push_back(util::to_seconds(s.latency));
      }
    }
    std::printf("%-22s %7llu/%llu %12llu %9.3fs\n", v->config().email.c_str(),
                static_cast<unsigned long long>(v->content_decrypted()),
                static_cast<unsigned long long>(frames),
                static_cast<unsigned long long>(v->content_undecryptable()),
                analysis::quantile(join_lat, 0.5));
  }

  std::printf("\nnetwork totals: %llu datagrams sent, %llu delivered, %llu "
              "lost/undeliverable\n",
              static_cast<unsigned long long>(d.network().packets_sent()),
              static_cast<unsigned long long>(d.network().packets_delivered()),
              static_cast<unsigned long long>(d.network().packets_dropped()));
  std::printf("note: lost *content* datagrams are gone for good (live video "
              "tolerates gaps);\nlost *protocol* datagrams were retransmitted; "
              "lost *key* blobs would need the\nmulti-parent redundancy shown in "
              "bench/ablation_key_lead_time.\n");
  return 0;
}
