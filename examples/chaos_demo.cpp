// Chaos demo: run a textual fault schedule against a live deployment and
// watch the service ride it out.
//
//   ./chaos_demo                # built-in schedule
//   ./chaos_demo my-plan.txt    # your own (see src/fault/fault_plan.h)
//   ./chaos_demo --baseline     # no faults; exits nonzero on SLO violation
//
// Set P2PDRM_TRACE_OUT=<path> to capture protocol-round spans for the whole
// run and write them as Chrome trace_event JSON (load in about:tracing or
// https://ui.perfetto.dev). P2PDRM_TS_OUT=<path> writes the scraped
// time-series CSV; P2PDRM_BREAKDOWN_OUT=<path> writes the trace-driven
// critical-path table (requires tracing). CI does exactly this and archives
// all three.
//
// An SLO monitor rides along in every mode: each client's successful rounds
// feed per-round p95/p99 objectives and a load/latency correlation, printed
// at the end. With --baseline the run must stay within budget to exit 0 —
// that is the CI regression gate for the no-fault deployment.
//
// The schedule below crashes a User Manager farm instance, partitions the
// whole client population away from the backend for 30 seconds, skews a
// Channel Manager clock, and throws a churn storm at the overlay — all
// deterministic, all survivable with client resilience on.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "analysis/critical_path.h"
#include "fault/fault_engine.h"
#include "fault/report.h"
#include "net/deployment.h"
#include "obs/export.h"
#include "obs/slo.h"
#include "obs/timeseries.h"

using namespace p2pdrm;

namespace {

constexpr util::ChannelId kChannel = 1;

const char* kDefaultSchedule =
    "# chaos_demo default schedule\n"
    "5m  crash-um 0            # primary User Manager dies; farm survives\n"
    "8m  restart-um 0\n"
    "10m partition * 10.254.0.0/16 30s   # backend unreachable for 30s\n"
    "12m delay 0.0.0.0/0 150ms 60s       # everything slows down\n"
    "15m skew 10 2m            # Channel Manager clock runs 2 minutes fast\n"
    "18m churn 1 5 5           # 5 viewers crash, 5 new ones arrive\n";

}  // namespace

int main(int argc, char** argv) {
  bool baseline = false;
  const char* schedule_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--baseline") {
      baseline = true;
    } else {
      schedule_path = argv[i];
    }
  }

  std::string schedule = kDefaultSchedule;
  if (schedule_path != nullptr) {
    std::ifstream in(schedule_path);
    if (!in) {
      std::fprintf(stderr, "chaos_demo: cannot read %s\n", schedule_path);
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    schedule = buf.str();
  }

  fault::FaultPlan plan;
  if (baseline) {
    std::printf("=== baseline run: no faults, SLO budget enforced ===\n");
  } else {
    try {
      plan = fault::FaultPlan::parse(schedule);
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "chaos_demo: %s\n", e.what());
      return 1;
    }
    std::printf("=== fault schedule (%zu events) ===\n%s", plan.size(),
                plan.to_string().c_str());
  }

  const char* trace_out = std::getenv("P2PDRM_TRACE_OUT");

  net::DeploymentConfig cfg;
  cfg.seed = 42;
  cfg.tracing = trace_out != nullptr;
  cfg.default_link.latency.floor = 10 * util::kMillisecond;
  cfg.default_link.latency.median = 40 * util::kMillisecond;
  cfg.default_link.latency.sigma = 0.4;
  cfg.default_link.loss = 0.01;
  cfg.processing.light = 1 * util::kMillisecond;
  cfg.processing.heavy = 8 * util::kMillisecond;
  cfg.um_instances = 2;     // a farm worth crashing members of
  cfg.cm_instances = 2;
  cfg.tracker_stale_age = 2 * util::kMinute;
  cfg.client_resilience = true;

  net::Deployment d(cfg);

  // Deployment-scale SLOs: a clean round is ~100-200 ms (two 40 ms-median
  // hops + processing). With 1% packet loss and tens of samples per round,
  // a single 3 s retransmission timeout IS the p95, so the targets absorb
  // one retransmit at p95 and two (3 s + 6 s backoff) at p99. Anything
  // beyond that in a no-fault run is a regression.
  obs::SloMonitor slo({
      {"LOGIN1", 4 * util::kSecond, 10 * util::kSecond, 10 * util::kMinute},
      {"LOGIN2", 4 * util::kSecond, 10 * util::kSecond, 10 * util::kMinute},
      {"SWITCH1", 4 * util::kSecond, 10 * util::kSecond, 10 * util::kMinute},
      {"SWITCH2", 4 * util::kSecond, 10 * util::kSecond, 10 * util::kMinute},
      {"JOIN", 4 * util::kSecond, 10 * util::kSecond, 10 * util::kMinute},
  });
  obs::TimeSeries timeseries;
  timeseries.set_scrape_filters({"client.round.*", "keys.*", "load.*"});
  d.enable_scraping(&timeseries, &slo, 5 * util::kSecond);

  const geo::RegionId region = d.geo().region_at(0);
  d.add_regional_channel(kChannel, "live", region);
  d.start_channel_server(kChannel);

  constexpr std::size_t kViewers = 10;
  for (std::size_t i = 0; i < kViewers; ++i) {
    const std::string email = "viewer-" + std::to_string(i) + "@example.com";
    d.add_user(email, "pw");
    net::AsyncClient& client = d.add_client(email, "pw", region);
    bool done = false;
    client.login([&](core::DrmError err) {
      if (err != core::DrmError::kOk) {
        done = true;
        return;
      }
      client.switch_channel(kChannel, [&](core::DrmError) { done = true; });
    });
    const util::SimTime deadline = d.sim().now() + 5 * util::kMinute;
    while (!done && d.sim().now() < deadline && d.sim().step()) {
    }
    d.announce(client);
    client.enable_auto_renewal();
  }
  std::printf("\n%zu viewers watching channel %u; releasing the chaos...\n",
              kViewers, kChannel);

  fault::FaultEngineConfig engine_cfg;
  engine_cfg.arrival_region = region;
  fault::FaultEngine engine(d, plan, engine_cfg);
  engine.arm();
  d.run_until(25 * util::kMinute);

  std::printf("\n=== fault log ===\n");
  for (const std::string& line : engine.log()) std::printf("%s\n", line.c_str());
  std::printf("overlay verdicts: dropped=%llu delayed=%llu\n",
              static_cast<unsigned long long>(engine.packets_dropped()),
              static_cast<unsigned long long>(engine.packets_delayed()));
  const net::Network& net = d.network();
  std::printf("packet fates: sent=%llu delivered=%llu "
              "dropped: injected=%llu link=%llu no-destination=%llu\n",
              static_cast<unsigned long long>(net.packets_sent()),
              static_cast<unsigned long long>(net.packets_delivered()),
              static_cast<unsigned long long>(net.packets_dropped_injected()),
              static_cast<unsigned long long>(net.packets_dropped_link()),
              static_cast<unsigned long long>(
                  net.packets_dropped_no_destination()));

  std::printf("\n%s", fault::ResilienceReport::collect(d).to_string().c_str());

  std::printf("\n=== SLO / load-correlation monitor ===\n%s",
              slo.report().c_str());

  std::size_t alive = 0, joined = 0;
  for (const auto& client : d.clients()) {
    if (client->departed()) continue;
    ++alive;
    // A stale ticket object survives a dead session; only an unexpired
    // ticket proves the client is still renewing.
    if (client->logged_in() && client->channel_ticket() &&
        !client->channel_ticket()->ticket.expired_at(d.now())) {
      ++joined;
    }
  }
  std::printf("\nend state: %zu clients alive, %zu authenticated and joined\n",
              alive, joined);

  if (trace_out != nullptr) {
    std::ofstream out(trace_out, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "chaos_demo: cannot write %s\n", trace_out);
      return 1;
    }
    out << obs::spans_to_chrome_trace(d.tracer());
    std::printf("wrote %zu spans (%llu dropped at capacity) to %s\n",
                d.tracer().spans().size(),
                static_cast<unsigned long long>(d.tracer().spans_dropped()),
                trace_out);
  }
  if (const char* ts_out = std::getenv("P2PDRM_TS_OUT")) {
    std::ofstream out(ts_out, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "chaos_demo: cannot write %s\n", ts_out);
      return 1;
    }
    out << timeseries.to_csv();
    std::printf("wrote %zu time series (%zu scrapes) to %s\n",
                timeseries.names().size(), timeseries.scrapes(), ts_out);
  }
  if (const char* breakdown_out = std::getenv("P2PDRM_BREAKDOWN_OUT")) {
    if (trace_out != nullptr) {
      std::ofstream out(breakdown_out, std::ios::binary);
      if (!out) {
        std::fprintf(stderr, "chaos_demo: cannot write %s\n", breakdown_out);
        return 1;
      }
      const analysis::CriticalPathReport cp =
          analysis::analyze_critical_path(d.tracer());
      out << cp.to_table();
      std::printf("wrote critical-path breakdown (%zu rounds) to %s\n",
                  cp.rounds.size(), breakdown_out);
    } else {
      std::fprintf(stderr,
                   "chaos_demo: P2PDRM_BREAKDOWN_OUT needs P2PDRM_TRACE_OUT "
                   "(tracing) set\n");
    }
  }

  bool ok = joined == alive;  // every survivor must have recovered
  if (baseline && !slo.within_budget()) {
    std::fprintf(stderr, "chaos_demo: baseline run violated round SLOs\n");
    ok = false;
  }
  return ok ? 0 : 1;
}
