// Chaos demo: run a textual fault schedule against a live deployment and
// watch the service ride it out.
//
//   ./chaos_demo                # built-in schedule
//   ./chaos_demo my-plan.txt    # your own (see src/fault/fault_plan.h)
//   ./chaos_demo --baseline     # no faults; exits nonzero on SLO violation
//   ./chaos_demo --transport=thread
//                               # packet-level chaos (latency spike + loss
//                               # burst) against the multithreaded live
//                               # transport: real event loops, wall-clock
//                               # timers, protocol rounds driven through
//                               # the storm; exits nonzero unless every
//                               # round rides it out
//   ./chaos_demo --flash-crowd  # overload-protected farm vs a 3x-capacity
//                               # login stampede; exits nonzero unless the
//                               # farm sheds with BUSY (never silently),
//                               # keeps SWITCH/renewal p99 within 2x the
//                               # unloaded baseline, and returns to
//                               # SLO-passing steady state after the drain
//   ./chaos_demo --crash-test   # arm the flight recorder, drive one real
//                               # session on the threaded transport, then
//                               # abort() on an event loop; the process must
//                               # die leaving a parseable post-mortem dump
//                               # (P2PDRM_FLIGHT_OUT, default
//                               # flight_crash.json) — the CI crash gate
//   ./chaos_demo --crash-recovery
//                               # durable farm state vs crash-at-worst-moment
//                               # schedules (torn journal tails, wiped media,
//                               # stretched replication); exits nonzero unless
//                               # a device migration admitted by a surviving
//                               # sibling is never dual-admitted after the
//                               # crashed instance recovers, renewals keep
//                               # succeeding against survivors, the torn tail
//                               # is rejected on replay, and permanent audit
//                               # loss stays bounded by the replication lag
//
// Set P2PDRM_TRACE_OUT=<path> to capture protocol-round spans for the whole
// run and write them as Chrome trace_event JSON (load in about:tracing or
// https://ui.perfetto.dev). P2PDRM_TS_OUT=<path> writes the scraped
// time-series CSV; P2PDRM_BREAKDOWN_OUT=<path> writes the trace-driven
// critical-path table (requires tracing). CI does exactly this and archives
// all three.
//
// An SLO monitor rides along in every mode: each client's successful rounds
// feed per-round p95/p99 objectives and a load/latency correlation, printed
// at the end. With --baseline the run must stay within budget to exit 0 —
// that is the CI regression gate for the no-fault deployment. --flash-crowd
// is the matching gate for the overload path (bounded queues, priority
// admission control, retry budgets).
//
// The schedule below crashes a User Manager farm instance, partitions the
// whole client population away from the backend for 30 seconds, skews a
// Channel Manager clock, and throws a churn storm at the overlay — all
// deterministic, all survivable with client resilience on.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <future>
#include <sstream>
#include <thread>

#include "analysis/critical_path.h"
#include "fault/fault_engine.h"
#include "fault/report.h"
#include "net/deployment.h"
#include "obs/export.h"
#include "obs/flight_recorder.h"
#include "obs/slo.h"
#include "obs/timeseries.h"

using namespace p2pdrm;

namespace {

constexpr util::ChannelId kChannel = 1;

const char* kDefaultSchedule =
    "# chaos_demo default schedule\n"
    "5m  crash-um 0            # primary User Manager dies; farm survives\n"
    "8m  restart-um 0\n"
    "10m partition * 10.254.0.0/16 30s   # backend unreachable for 30s\n"
    "12m delay 0.0.0.0/0 150ms 60s       # everything slows down\n"
    "15m skew 10 2m            # Channel Manager clock runs 2 minutes fast\n"
    "18m churn 1 5 5           # 5 viewers crash, 5 new ones arrive\n";

/// Provision `viewers` watching kChannel: each logged in, joined,
/// announced, and auto-renewing before the next one starts.
void provision_viewers(net::Deployment& d, geo::RegionId region,
                       std::size_t viewers) {
  for (std::size_t i = 0; i < viewers; ++i) {
    const std::string email = "viewer-" + std::to_string(i) + "@example.com";
    d.add_user(email, "pw");
    net::AsyncClient& client = d.add_client(email, "pw", region);
    bool done = false;
    client.login([&](core::DrmError err) {
      if (err != core::DrmError::kOk) {
        done = true;
        return;
      }
      client.switch_channel(kChannel, [&](core::DrmError) { done = true; });
    });
    const util::SimTime deadline = d.sim().now() + 5 * util::kMinute;
    while (!done && d.sim().now() < deadline && d.sim().step()) {
    }
    d.announce(client);
    client.enable_auto_renewal();
  }
}

/// Count non-departed clients, and how many of them hold a live session
/// (authenticated with an unexpired channel ticket — a stale ticket object
/// survives a dead session, so has_value() alone would miss decay).
struct EndState {
  std::size_t alive = 0;
  std::size_t joined = 0;
};
EndState end_state(const net::Deployment& d, util::SimTime now) {
  EndState s;
  for (const auto& client : d.clients()) {
    if (client->departed()) continue;
    ++s.alive;
    if (client->logged_in() && client->channel_ticket() &&
        !client->channel_ticket()->ticket.expired_at(now)) {
      ++s.joined;
    }
  }
  return s;
}

/// Write whatever artifacts the P2PDRM_*_OUT env vars request. Returns
/// false on a file-open error.
bool dump_artifacts(net::Deployment& d, const obs::TimeSeries& timeseries) {
  if (const char* trace_out = std::getenv("P2PDRM_TRACE_OUT")) {
    std::ofstream out(trace_out, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "chaos_demo: cannot write %s\n", trace_out);
      return false;
    }
    out << obs::spans_to_chrome_trace(d.tracer());
    std::printf("wrote %zu spans (%llu dropped at capacity) to %s\n",
                d.tracer().spans().size(),
                static_cast<unsigned long long>(d.tracer().spans_dropped()),
                trace_out);
  }
  if (const char* ts_out = std::getenv("P2PDRM_TS_OUT")) {
    std::ofstream out(ts_out, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "chaos_demo: cannot write %s\n", ts_out);
      return false;
    }
    out << timeseries.to_csv();
    std::printf("wrote %zu time series (%zu scrapes) to %s\n",
                timeseries.names().size(), timeseries.scrapes(), ts_out);
  }
  if (const char* breakdown_out = std::getenv("P2PDRM_BREAKDOWN_OUT")) {
    if (std::getenv("P2PDRM_TRACE_OUT") != nullptr) {
      std::ofstream out(breakdown_out, std::ios::binary);
      if (!out) {
        std::fprintf(stderr, "chaos_demo: cannot write %s\n", breakdown_out);
        return false;
      }
      const analysis::CriticalPathReport cp =
          analysis::analyze_critical_path(d.tracer());
      out << cp.to_table();
      std::printf("wrote critical-path breakdown (%zu rounds) to %s\n",
                  cp.rounds.size(), breakdown_out);
    } else {
      std::fprintf(stderr,
                   "chaos_demo: P2PDRM_BREAKDOWN_OUT needs P2PDRM_TRACE_OUT "
                   "(tracing) set\n");
    }
  }
  return true;
}

std::vector<obs::SloObjective> steady_state_objectives() {
  // A clean round is ~100-200 ms (two 40 ms-median hops + processing). With
  // 1% packet loss and tens of samples per round, a single 3 s
  // retransmission timeout IS the p95, so the targets absorb one retransmit
  // at p95 and two (3 s + 6 s backoff) at p99. Anything beyond that in a
  // no-fault run is a regression.
  return {
      {"LOGIN1", 4 * util::kSecond, 10 * util::kSecond, 10 * util::kMinute},
      {"LOGIN2", 4 * util::kSecond, 10 * util::kSecond, 10 * util::kMinute},
      {"SWITCH1", 4 * util::kSecond, 10 * util::kSecond, 10 * util::kMinute},
      {"SWITCH2", 4 * util::kSecond, 10 * util::kSecond, 10 * util::kMinute},
      {"JOIN", 4 * util::kSecond, 10 * util::kSecond, 10 * util::kMinute},
  };
}

bool gate(bool ok, const char* what) {
  std::printf("[%s] %s\n", ok ? "PASS" : "FAIL", what);
  return ok;
}

/// The flash-crowd survival gate: a stampede of brand-new viewers arrives
/// at ~3x the User Manager's login capacity. The overload-protected farm
/// must shed the excess with BUSY (never silently), keep SWITCH/renewal
/// p99 within 2x the unloaded baseline while the crowd lands, and be back
/// within the normal steady-state SLOs once the backlog drains.
int run_flash_crowd() {
  std::printf("=== flash-crowd survival run ===\n");

  net::DeploymentConfig cfg;
  cfg.seed = 42;
  cfg.tracing = std::getenv("P2PDRM_TRACE_OUT") != nullptr;
  cfg.default_link.latency.floor = 10 * util::kMillisecond;
  cfg.default_link.latency.median = 40 * util::kMillisecond;
  cfg.default_link.latency.sigma = 0.4;
  cfg.default_link.loss = 0.01;
  // Slow, single-worker servers make capacity concrete: one LOGIN2 costs
  // 250 ms of the UM worker, so the farm admits ~4 fresh logins/second.
  cfg.processing.light = 10 * util::kMillisecond;
  cfg.processing.heavy = 250 * util::kMillisecond;
  cfg.um_instances = 2;
  cfg.cm_instances = 2;
  cfg.tracker_stale_age = 2 * util::kMinute;
  cfg.client_resilience = true;
  // The overload layer under test: bounded queue, priority admission
  // control past the high-water mark, client retry budgets and breakers.
  cfg.overload.workers = 1;
  cfg.overload.queue_capacity = 64;
  cfg.overload.high_water = 4;
  cfg.overload.busy_retry_after = 500 * util::kMillisecond;
  cfg.client_retry_budget = 8;
  cfg.client_retry_budget_refill = 0.5;
  cfg.client_breaker_threshold = 5;
  cfg.client_breaker_cooldown = 10 * util::kSecond;

  net::Deployment d(cfg);
  obs::TimeSeries timeseries;
  timeseries.set_scrape_filters(
      {"client.round.*", "keys.*", "load.*", "server.*"});
  obs::SloMonitor slo_baseline(steady_state_objectives());
  d.enable_scraping(&timeseries, &slo_baseline, 5 * util::kSecond);

  const geo::RegionId region = d.geo().region_at(0);
  d.add_regional_channel(kChannel, "live", region);
  d.start_channel_server(kChannel);
  constexpr std::size_t kViewers = 10;
  provision_viewers(d, region, kViewers);

  // Phase 1 — unloaded steady state, long enough for a full channel-ticket
  // renewal cycle. Its SWITCH p99 is the baseline the storm is judged by.
  d.run_until(12 * util::kMinute);
  const double base_switch1 = slo_baseline.status("SWITCH1").p99_us;
  const double base_switch2 = slo_baseline.status("SWITCH2").p99_us;
  std::printf("unloaded baseline: SWITCH1 p99 = %.0f us, SWITCH2 p99 = %.0f us\n",
              base_switch1, base_switch2);

  // Phase 2 — the stampede. Judged by a fresh monitor whose p99 budgets are
  // 2x the just-measured baseline (floored at 1 s so a lucky quiet baseline
  // cannot make the gate degenerate).
  const auto storm_budget = [](double baseline_us) {
    return std::max<std::int64_t>(static_cast<std::int64_t>(2 * baseline_us),
                                  util::kSecond);
  };
  obs::SloMonitor slo_storm({
      {"SWITCH1", 0, storm_budget(base_switch1), 10 * util::kMinute},
      {"SWITCH2", 0, storm_budget(base_switch2), 10 * util::kMinute},
  });
  d.enable_scraping(&timeseries, &slo_storm, 5 * util::kSecond);

  // 48 arrivals over 4 s = 12 fresh logins/second against ~4/second of UM
  // capacity: a 3x overload for the duration of the ramp.
  constexpr std::size_t kCrowd = 48;
  fault::FaultPlan plan;
  plan.flash_crowd(d.now() + 10 * util::kSecond, kChannel, kCrowd,
                   4 * util::kSecond);
  std::printf("\n=== fault schedule ===\n%s", plan.to_string().c_str());
  fault::FaultEngineConfig engine_cfg;
  engine_cfg.arrival_region = region;  // the channel is regional
  fault::FaultEngine engine(d, plan, engine_cfg);
  engine.arm();
  // Ride out the stampede and its BUSY-deferred retries, through the next
  // renewal cycle (renewals must keep completing while the crowd lands).
  d.run_for(8 * util::kMinute);

  // Phase 3 — after the drain window the farm must be back inside the
  // normal steady-state budgets, measured by a third fresh monitor.
  obs::SloMonitor slo_recovered(steady_state_objectives());
  d.enable_scraping(&timeseries, &slo_recovered, 5 * util::kSecond);
  d.run_for(12 * util::kMinute);

  std::printf("\n=== fault log ===\n");
  for (const std::string& line : engine.log()) std::printf("%s\n", line.c_str());

  // Shed accounting: every shed request must have been answered with a
  // BUSY envelope — overload is never a silent drop.
  const obs::Counter* busy_sent = d.registry().find_counter("server.busy_sent");
  const std::uint64_t busy = busy_sent != nullptr ? busy_sent->value() : 0;
  std::uint64_t shed = 0;
  std::printf("\n=== shed accounting ===\n");
  for (const auto& [label, counter] : d.registry().family("server.shed")) {
    std::printf("server.shed{%s} = %llu\n", label.c_str(),
                static_cast<unsigned long long>(counter->value()));
    shed += counter->value();
  }
  std::uint64_t busy_received = 0, budget_dry = 0, fast_fails = 0;
  for (const auto& client : d.clients()) {
    busy_received += client->busy_received();
    budget_dry += client->retry_budget_exhaustions();
    fast_fails += client->breaker_fast_fails();
  }
  std::printf("server.busy_sent = %llu; clients saw busy=%llu "
              "budget-exhaustions=%llu breaker-fast-fails=%llu\n",
              static_cast<unsigned long long>(busy),
              static_cast<unsigned long long>(busy_received),
              static_cast<unsigned long long>(budget_dry),
              static_cast<unsigned long long>(fast_fails));

  std::printf("\n=== storm window (budgets = 2x unloaded baseline) ===\n%s",
              slo_storm.report().c_str());
  std::printf("\n=== recovery window (steady-state budgets) ===\n%s",
              slo_recovered.report().c_str());

  const EndState end = end_state(d, d.now());
  if (!dump_artifacts(d, timeseries)) return 1;

  std::printf("\n=== flash-crowd gates ===\n");
  bool ok = true;
  ok &= gate(engine.flash_crowd_arrivals() == kCrowd,
             "the whole stampede arrived");
  ok &= gate(busy > 0, "overload actually shed fresh logins (busy_sent > 0)");
  ok &= gate(shed == busy,
             "every shed request was answered with BUSY (no silent drops)");
  ok &= gate(slo_storm.within_budget(),
             "SWITCH/renewal p99 stayed within 2x baseline during the crowd");
  ok &= gate(slo_recovered.within_budget(),
             "steady-state SLOs pass again after the drain window");
  ok &= gate(end.joined == end.alive && end.alive >= kViewers + kCrowd,
             "every surviving client is authenticated and joined");
  std::printf("end state: %zu clients alive, %zu authenticated and joined\n",
              end.alive, end.joined);
  return ok ? 0 : 1;
}

/// Step the simulation until `done` flips or `budget` sim-time elapses.
bool pump_until(net::Deployment& d, const bool& done, util::SimTime budget) {
  const util::SimTime deadline = d.sim().now() + budget;
  while (!done && d.sim().now() < deadline && d.sim().step()) {
  }
  return done;
}

/// Log in `client` and switch it onto kChannel; true iff both succeeded.
bool join_channel(net::Deployment& d, net::AsyncClient& client,
                  util::SimTime budget) {
  bool done = false;
  bool ok = false;
  client.login([&](core::DrmError err) {
    if (err != core::DrmError::kOk) {
      done = true;
      return;
    }
    client.switch_channel(kChannel, [&](core::DrmError err2) {
      ok = err2 == core::DrmError::kOk;
      done = true;
    });
  });
  pump_until(d, done, budget);
  return ok;
}

/// One synchronous renewal; true iff it completed with kOk.
bool renew(net::Deployment& d, net::AsyncClient& client, util::SimTime budget) {
  bool done = false;
  bool ok = false;
  client.renew_channel_ticket([&](core::DrmError err) {
    ok = err == core::DrmError::kOk;
    done = true;
  });
  pump_until(d, done, budget);
  return ok;
}

/// The crash-recovery durability gate (journaled farm state, src/store).
///
/// The scenario is the paper's one-account-one-session rule under the worst
/// crash schedule we can write: a viewer migrates to a second device, and
/// the Channel Manager instance that admitted the *first* device dies with a
/// torn journal tail the moment the migration would be most confusable.
/// The surviving sibling must admit the new device (fresh issues are written
/// through and eagerly replicated), renewals must keep succeeding against
/// survivors during the outage, and once the crashed instance recovers via
/// snapshot + replay + anti-entropy it must refuse the stale device — never
/// dual-admit. A second schedule wipes an instance's durable media entirely
/// (anti-entropy full-state transfer is all it has) while the replication
/// interval is stretched by fault verb, and a third crashes a User Manager
/// instance and provisions a brand-new account against the survivor.
int run_crash_recovery() {
  std::printf("=== crash-recovery durability run ===\n");

  net::DeploymentConfig cfg;
  cfg.seed = 42;
  cfg.tracing = std::getenv("P2PDRM_TRACE_OUT") != nullptr;
  cfg.default_link.latency.floor = 10 * util::kMillisecond;
  cfg.default_link.latency.median = 40 * util::kMillisecond;
  cfg.default_link.latency.sigma = 0.4;
  cfg.default_link.loss = 0.01;
  cfg.processing.light = 1 * util::kMillisecond;
  cfg.processing.heavy = 8 * util::kMillisecond;
  cfg.um_instances = 2;
  cfg.cm_instances = 2;
  cfg.tracker_stale_age = 2 * util::kMinute;
  cfg.client_resilience = true;
  cfg.durability.enabled = true;
  cfg.durability.replication_interval = 500 * util::kMillisecond;
  cfg.durability.sync_fresh_issues = true;
  // Aggressive compaction: snapshots (and op-cache trims) happen well within
  // the run, so a wiped instance genuinely needs the full-state-transfer
  // path — its siblings no longer hold the ops its journal lost.
  cfg.durability.snapshot_every = 16;
  cfg.durability.viewing_audit_cap = 4096;
  cfg.durability.replay_cost_per_record = 200;  // 200 us per replayed record

  net::Deployment d(cfg);
  obs::TimeSeries timeseries;
  timeseries.set_scrape_filters({"client.round.*", "store.*", "server.*"});
  obs::SloMonitor slo(steady_state_objectives());
  d.enable_scraping(&timeseries, &slo, 5 * util::kSecond);

  const geo::RegionId region = d.geo().region_at(0);
  d.add_regional_channel(kChannel, "live", region);
  d.start_channel_server(kChannel);
  constexpr std::size_t kViewers = 8;
  provision_viewers(d, region, kViewers);
  d.run_until(3 * util::kMinute);  // steady state, renewal cycles underway

  bool ok = true;

  // --- Phase 1: device migration under a crash at the worst moment ---
  // The migrating devices are deliberately NON-resilient clients: with
  // resilience on, a refused renewal escalates into a full re-login +
  // re-switch (a fresh issue) and would mask the enforcement signal this
  // gate exists to observe.
  std::printf("\n=== phase 1: torn-tail crash during a device migration ===\n");
  d.add_user("migrator@example.com", "pw");
  net::AsyncClient::Config mig_cfg =
      d.make_client_config("migrator@example.com", "pw", region);
  mig_cfg.resilience = false;
  auto dev_a = std::make_unique<net::AsyncClient>(mig_cfg, d.network(),
                                                  crypto::SecureRandom(0xa11ce));
  ok &= gate(join_channel(d, *dev_a, 2 * util::kMinute),
             "device A logged in and joined");
  const util::UserIN mig_user = dev_a->user_ticket()->ticket.user_in;

  // Ride until device A's renewal window opens (§IV-D: renewal only near
  // expiry), then renew: the renewal is an asynchronous audit-only record,
  // journaled on the advertised instance but not yet fsynced.
  d.run_until(dev_a->channel_ticket()->ticket.expiry_time - 2 * util::kMinute);
  ok &= gate(renew(d, *dev_a, util::kMinute),
             "in-window renewal accepted before the crash");
  // A replication tick can race the renewal response and fsync the record;
  // in that case wait for the next viewer auto-renewal to stage one.
  const util::SimTime poll_deadline = d.now() + 10 * util::kMinute;
  while (d.cm_store(0, 0)->unsynced_ops() == 0 && d.now() < poll_deadline &&
         d.sim().step()) {
  }
  const std::uint64_t staged = d.cm_store(0, 0)->unsynced_ops();
  std::printf("staged (unsynced) audit records on cm[0][0]: %llu\n",
              static_cast<unsigned long long>(staged));
  ok &= gate(staged > 0, "async audit records staged ahead of the crash");

  // Worst moment: the instance that admitted device A dies right now, with
  // a torn partial write of the staged tail. Fresh issues were written
  // through, so only audit records can be lost.
  d.crash_cm_unsynced(0, 0);

  net::AsyncClient::Config mig_cfg_b =
      d.make_client_config("migrator@example.com", "pw", region);
  mig_cfg_b.resilience = false;
  auto dev_b = std::make_unique<net::AsyncClient>(mig_cfg_b, d.network(),
                                                  crypto::SecureRandom(0xb0b));
  ok &= gate(join_channel(d, *dev_b, 3 * util::kMinute),
             "device migration admitted by the surviving sibling");

  // Outage continues until device B's own renewal window opens: a pure
  // renewal against the survivor must succeed (its fresh issue was written
  // through there).
  d.run_until(dev_b->channel_ticket()->ticket.expiry_time - 2 * util::kMinute);
  ok &= gate(renew(d, *dev_b, util::kMinute),
             "renewal succeeded against the survivor during the outage");

  d.restart_cm_instance(0, 0);  // snapshot + replay + anti-entropy
  d.run_for(10 * util::kSecond);

  // The stale device renews inside its own (renewal-extended) window,
  // against the recovered instance its cached channel list still points at.
  // Recovery pulled the migration via anti-entropy, so it must refuse.
  d.run_until(dev_a->channel_ticket()->ticket.expiry_time - 2 * util::kMinute);
  const bool a_renews = renew(d, *dev_a, util::kMinute);
  std::printf("post-recovery renewal: stale device A %s\n",
              a_renews ? "ADMITTED" : "refused");
  ok &= gate(!a_renews,
             "zero dual admissions: the recovered instance refuses the stale device");

  const obs::Counter* corrupt = d.registry().find_counter("store.replay.corrupt");
  ok &= gate(corrupt != nullptr && corrupt->value() > 0,
             "torn journal tail rejected on replay (store.replay.corrupt > 0)");
  const obs::Gauge* window =
      d.registry().find_gauge("store.audit.max_loss_window_us");
  const std::int64_t window_us = window != nullptr ? window->value() : 0;
  std::printf("permanent audit loss window: %lld us (replication interval %lld us)\n",
              static_cast<long long>(window_us),
              static_cast<long long>(cfg.durability.replication_interval));
  ok &= gate(window_us <= cfg.durability.replication_interval,
             "permanent audit loss bounded by the replication interval");

  // --- Phase 2: wiped media + stretched replication, via fault verbs ---
  std::printf("\n=== phase 2: wipe-state under replication-lag (fault verbs) ===\n");
  fault::FaultPlan plan;
  const util::SimTime t0 = d.now();
  plan.replication_lag(t0 + 5 * util::kSecond, 2 * util::kSecond);
  plan.wipe_state_cm(t0 + 10 * util::kSecond, 0, 1);
  plan.restart_cm(t0 + 30 * util::kSecond, 0, 1);
  plan.replication_lag(t0 + 40 * util::kSecond, 500 * util::kMillisecond);
  std::printf("%s", plan.to_string().c_str());
  fault::FaultEngine engine(d, plan, {});
  engine.arm();
  d.run_for(2 * util::kMinute);
  std::printf("\n=== fault log ===\n");
  for (const std::string& line : engine.log()) std::printf("%s\n", line.c_str());

  const obs::Counter* full_xfer =
      d.registry().find_counter("store.recovery.full_transfers");
  ok &= gate(full_xfer != nullptr && full_xfer->value() >= 1,
             "wiped instance rebuilt via anti-entropy full-state transfer");
  d.replicate_now();
  const services::ViewingLog* log0 = d.cm_viewing_log(0, 0);
  const services::ViewingLog* log1 = d.cm_viewing_log(0, 1);
  const services::ViewingLog::Entry* latest0 = log0->latest(mig_user, kChannel);
  const services::ViewingLog::Entry* latest1 = log1->latest(mig_user, kChannel);
  ok &= gate(latest0 != nullptr && latest1 != nullptr &&
                 latest0->addr == latest1->addr && latest0->time == latest1->time &&
                 latest0->addr == dev_b->config().addr,
             "replicas converged on the migrated device as the single session");

  // --- Phase 3: User Manager crash; signup served by the survivor ---
  std::printf("\n=== phase 3: UM instance crash + outage-era signup ===\n");
  d.crash_um_unsynced(0);
  d.add_user("late@example.com", "pw");  // provisioned against the survivor
  net::AsyncClient& late = d.add_client("late@example.com", "pw", region);
  ok &= gate(join_channel(d, late, 3 * util::kMinute),
             "outage-era signup logged in via the surviving UM instance");
  d.restart_um_instance(0);
  d.run_for(10 * util::kSecond);
  const services::UserDirectory* dir0 = d.um_directory(0);
  ok &= gate(dir0 != nullptr && dir0->users.count("late@example.com") == 1,
             "restarted UM pulled the outage-era signup via anti-entropy");

  // --- Phase 4: back to steady state, fresh SLO monitor ---
  obs::SloMonitor slo_recovered(steady_state_objectives());
  d.enable_scraping(&timeseries, &slo_recovered, 5 * util::kSecond);
  d.run_for(10 * util::kMinute);
  std::printf("\n=== recovery window (steady-state budgets) ===\n%s",
              slo_recovered.report().c_str());
  ok &= gate(slo_recovered.within_budget(),
             "steady-state SLOs pass again after the crash schedule");

  std::printf("\n=== store metrics ===\n");
  for (const auto& [name, counter] : d.registry().counters()) {
    if (name.rfind("store.", 0) == 0) {
      std::printf("%s = %llu\n", name.c_str(),
                  static_cast<unsigned long long>(counter.value()));
    }
  }
  for (const auto& [name, gauge] : d.registry().gauges()) {
    if (name.rfind("store.", 0) == 0) {
      std::printf("%s = %lld\n", name.c_str(),
                  static_cast<long long>(gauge.value()));
    }
  }

  const EndState end = end_state(d, d.now());
  std::printf("\nend state: %zu clients alive, %zu authenticated and joined\n",
              end.alive, end.joined);
  ok &= gate(end.joined >= kViewers,
             "every resilient viewer rode out the whole crash schedule");
  if (!dump_artifacts(d, timeseries)) return 1;
  std::printf("\n=== crash-recovery verdict: %s ===\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

/// Post a full login + switch (+ announce) chain onto `c`'s own event loop
/// and return a future for its outcome. On the live transport every
/// protocol call must run loop-confined; the caller only waits.
std::future<core::DrmError> post_join(net::Deployment& d, net::AsyncClient& c,
                                      bool announce) {
  auto done = std::make_shared<std::promise<core::DrmError>>();
  std::future<core::DrmError> fut = done->get_future();
  net::AsyncClient* cp = &c;
  net::Deployment* dp = &d;
  d.network().post(c.config().node, 0, [cp, dp, announce, done] {
    cp->login([cp, dp, announce, done](core::DrmError err) {
      if (err != core::DrmError::kOk) {
        done->set_value(err);
        return;
      }
      cp->switch_channel(kChannel, [cp, dp, announce, done](core::DrmError err2) {
        if (err2 == core::DrmError::kOk && announce) dp->announce(*cp);
        done->set_value(err2);
      });
    });
  });
  return fut;
}

/// One channel re-switch on `c`'s loop (the storm-driving round).
std::future<core::DrmError> post_switch(net::Deployment& d, net::AsyncClient& c) {
  auto done = std::make_shared<std::promise<core::DrmError>>();
  std::future<core::DrmError> fut = done->get_future();
  net::AsyncClient* cp = &c;
  d.network().post(c.config().node, 0, [cp, done] {
    cp->switch_channel(kChannel,
                       [done](core::DrmError err) { done->set_value(err); });
  });
  return fut;
}

/// Packet-level chaos against the multithreaded live transport: a latency
/// spike and a loss burst hit the whole data plane (the fault engine's
/// interceptor now runs concurrently on every event loop) while protocol
/// rounds are continuously driven through the storm. Crash/restart verbs
/// stay sim-only — they are control-plane surgery; the live data plane is
/// what this mode exercises.
int run_live_chaos() {
  std::printf("=== live chaos: packet faults on the threaded transport ===\n");

  // Post-mortem safety net for the live run: if anything in the storm
  // crashes the process, the recorder's signal handler leaves per-thread
  // event rings behind. Opt-in via P2PDRM_FLIGHT_OUT; a clean run writes
  // nothing (CI asserts exactly that under TSan).
  if (obs::FlightRecorder::global().arm_from_env()) {
    std::printf("flight recorder armed -> %s\n",
                obs::FlightRecorder::global().dump_path());
  }

  net::DeploymentConfig cfg;
  cfg.seed = 42;
  cfg.transport = net::TransportKind::kThread;
  cfg.transport_threads = 4;
  // Tight links and a short retransmission timeout: the storm is measured
  // in wall-clock seconds, so recovery must be too.
  cfg.default_link.latency.floor = 1 * util::kMillisecond;
  cfg.default_link.latency.median = 4 * util::kMillisecond;
  cfg.default_link.latency.sigma = 0.3;
  cfg.default_link.loss = 0.0;
  cfg.request_timeout = 400 * util::kMillisecond;
  cfg.max_retries = 6;
  cfg.client_resilience = true;
  cfg.root_peer_capacity = 32;
  net::Deployment d(cfg);

  const geo::RegionId region = d.geo().region_at(0);
  d.add_regional_channel(kChannel, "live", region);
  d.start_channel_server(kChannel);

  constexpr std::size_t kViewers = 8;
  std::vector<net::AsyncClient*> viewers;
  for (std::size_t i = 0; i < kViewers; ++i) {
    const std::string email = "viewer-" + std::to_string(i) + "@example.com";
    d.add_user(email, "pw");
    viewers.push_back(&d.add_client(email, "pw", region));
  }
  std::size_t provisioned = 0;
  {
    std::vector<std::future<core::DrmError>> joins;
    for (net::AsyncClient* c : viewers) joins.push_back(post_join(d, *c, true));
    for (std::future<core::DrmError>& f : joins) {
      if (f.get() == core::DrmError::kOk) ++provisioned;
    }
  }
  std::printf("%zu/%zu viewers joined on the live transport\n", provisioned,
              kViewers);

  const fault::AddrBlock everywhere = fault::AddrBlock::parse("*");
  fault::FaultPlan plan;
  plan.latency_spike(d.now() + 1 * util::kSecond, 2 * util::kSecond, everywhere,
                     50 * util::kMillisecond);
  plan.loss_burst(d.now() + 4 * util::kSecond, 2 * util::kSecond, everywhere,
                  0.25);
  std::printf("\n=== fault schedule ===\n%s", plan.to_string().c_str());
  fault::FaultEngine engine(d, plan, {});
  engine.arm();

  // Drive re-switches continuously through the storm window; resilience
  // plus retransmission must carry every round across the spike and the
  // burst (real timers, real concurrent loops).
  const util::SimTime storm_end = d.now() + 6500 * util::kMillisecond;
  std::uint64_t storm_rounds = 0, storm_failures = 0;
  while (d.now() < storm_end) {
    std::vector<std::future<core::DrmError>> wave;
    wave.reserve(viewers.size());
    for (net::AsyncClient* c : viewers) wave.push_back(post_switch(d, *c));
    for (std::future<core::DrmError>& f : wave) {
      ++storm_rounds;
      if (f.get() != core::DrmError::kOk) ++storm_failures;
    }
  }

  // Calm weather again: one final wave after the rules expired.
  std::size_t recovered = 0;
  {
    std::vector<std::future<core::DrmError>> wave;
    for (net::AsyncClient* c : viewers) wave.push_back(post_switch(d, *c));
    for (std::future<core::DrmError>& f : wave) {
      if (f.get() == core::DrmError::kOk) ++recovered;
    }
  }

  d.transport().shutdown();  // quiesce before reading loop-confined state

  std::printf("\n=== fault log ===\n");
  for (const std::string& line : engine.log()) std::printf("%s\n", line.c_str());
  const net::Network& net = d.network();
  std::printf("storm: %llu rounds driven, %llu failed\n",
              static_cast<unsigned long long>(storm_rounds),
              static_cast<unsigned long long>(storm_failures));
  std::printf("fault verdicts: dropped=%llu delayed=%llu\n",
              static_cast<unsigned long long>(engine.packets_dropped()),
              static_cast<unsigned long long>(engine.packets_delayed()));
  std::printf("packet fates: sent=%llu delivered=%llu "
              "dropped: injected=%llu link=%llu no-destination=%llu\n",
              static_cast<unsigned long long>(net.packets_sent()),
              static_cast<unsigned long long>(net.packets_delivered()),
              static_cast<unsigned long long>(net.packets_dropped_injected()),
              static_cast<unsigned long long>(net.packets_dropped_link()),
              static_cast<unsigned long long>(
                  net.packets_dropped_no_destination()));

  std::printf("\n=== live chaos gates ===\n");
  bool ok = true;
  ok &= gate(provisioned == kViewers, "every viewer joined before the storm");
  ok &= gate(engine.packets_dropped() + engine.packets_delayed() > 0,
             "the fault rules really touched the live data plane");
  ok &= gate(storm_failures == 0,
             "every protocol round rode out the storm (resilience + retries)");
  ok &= gate(recovered == kViewers, "post-storm wave completed cleanly");
  return ok ? 0 : 1;
}

/// Deliberate crash on the live transport: arm the flight recorder, drive
/// one real session so the rings hold genuine breadcrumbs (net.send, timer
/// fires), then abort() inside a posted task on an event loop. The signal
/// handler must leave a parseable dump behind — CI runs this expecting a
/// nonzero exit and validates the dump's JSON. Returns only on failure.
int run_crash_test() {
  obs::FlightRecorder& recorder = obs::FlightRecorder::global();
  if (!recorder.arm_from_env()) recorder.arm("flight_crash.json");
  std::printf("=== crash test: flight recorder armed -> %s ===\n",
              recorder.dump_path());

  net::DeploymentConfig cfg;
  cfg.seed = 7;
  cfg.transport = net::TransportKind::kThread;
  cfg.transport_threads = 2;
  cfg.default_link.latency.floor = 1 * util::kMillisecond;
  cfg.default_link.latency.median = 3 * util::kMillisecond;
  cfg.default_link.latency.sigma = 0.3;
  cfg.default_link.loss = 0.0;
  net::Deployment d(cfg);
  const geo::RegionId region = d.geo().region_at(0);
  d.add_regional_channel(kChannel, "crash", region);
  d.start_channel_server(kChannel);
  d.add_user("crash@example.com", "pw");
  net::AsyncClient& c = d.add_client("crash@example.com", "pw", region);
  if (post_join(d, c, false).get() != core::DrmError::kOk) {
    std::fprintf(stderr, "crash test: provisioning session failed\n");
    return 1;
  }

  d.network().post(c.config().node, 0, [] {
    obs::FlightRecorder::global().record("crash.test", 0, 0, "deliberate");
    std::abort();  // the handler dumps the rings, then re-raises
  });
  std::this_thread::sleep_for(std::chrono::seconds(10));
  std::fprintf(stderr, "crash test FAILED: posted abort never fired\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool baseline = false;
  const char* schedule_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--baseline") {
      baseline = true;
    } else if (arg == "--flash-crowd") {
      return run_flash_crowd();
    } else if (arg == "--crash-recovery") {
      return run_crash_recovery();
    } else if (arg == "--crash-test") {
      return run_crash_test();
    } else if (arg.rfind("--transport=", 0) == 0) {
      const std::string transport = arg.substr(std::string("--transport=").size());
      if (transport == "thread") return run_live_chaos();
      if (transport != "sim") {
        std::fprintf(stderr, "chaos_demo: unknown --transport=%s (want sim|thread)\n",
                     transport.c_str());
        return 1;
      }
      // sim is the default; fall through to the schedule-driven run
    } else {
      schedule_path = argv[i];
    }
  }

  std::string schedule = kDefaultSchedule;
  if (schedule_path != nullptr) {
    std::ifstream in(schedule_path);
    if (!in) {
      std::fprintf(stderr, "chaos_demo: cannot read %s\n", schedule_path);
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    schedule = buf.str();
  }

  fault::FaultPlan plan;
  if (baseline) {
    std::printf("=== baseline run: no faults, SLO budget enforced ===\n");
  } else {
    try {
      plan = fault::FaultPlan::parse(schedule);
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "chaos_demo: %s\n", e.what());
      return 1;
    }
    std::printf("=== fault schedule (%zu events) ===\n%s", plan.size(),
                plan.to_string().c_str());
  }

  const char* trace_out = std::getenv("P2PDRM_TRACE_OUT");

  net::DeploymentConfig cfg;
  cfg.seed = 42;
  cfg.tracing = trace_out != nullptr;
  cfg.default_link.latency.floor = 10 * util::kMillisecond;
  cfg.default_link.latency.median = 40 * util::kMillisecond;
  cfg.default_link.latency.sigma = 0.4;
  cfg.default_link.loss = 0.01;
  cfg.processing.light = 1 * util::kMillisecond;
  cfg.processing.heavy = 8 * util::kMillisecond;
  cfg.um_instances = 2;     // a farm worth crashing members of
  cfg.cm_instances = 2;
  cfg.tracker_stale_age = 2 * util::kMinute;
  cfg.client_resilience = true;

  net::Deployment d(cfg);

  // Deployment-scale SLOs (see steady_state_objectives for the rationale).
  obs::SloMonitor slo(steady_state_objectives());
  obs::TimeSeries timeseries;
  timeseries.set_scrape_filters(
      {"client.round.*", "keys.*", "load.*", "server.*"});
  d.enable_scraping(&timeseries, &slo, 5 * util::kSecond);

  const geo::RegionId region = d.geo().region_at(0);
  d.add_regional_channel(kChannel, "live", region);
  d.start_channel_server(kChannel);

  constexpr std::size_t kViewers = 10;
  provision_viewers(d, region, kViewers);
  std::printf("\n%zu viewers watching channel %u; releasing the chaos...\n",
              kViewers, kChannel);

  fault::FaultEngineConfig engine_cfg;
  engine_cfg.arrival_region = region;
  fault::FaultEngine engine(d, plan, engine_cfg);
  engine.arm();
  d.run_until(25 * util::kMinute);

  std::printf("\n=== fault log ===\n");
  for (const std::string& line : engine.log()) std::printf("%s\n", line.c_str());
  std::printf("overlay verdicts: dropped=%llu delayed=%llu\n",
              static_cast<unsigned long long>(engine.packets_dropped()),
              static_cast<unsigned long long>(engine.packets_delayed()));
  const net::Network& net = d.network();
  std::printf("packet fates: sent=%llu delivered=%llu "
              "dropped: injected=%llu link=%llu no-destination=%llu\n",
              static_cast<unsigned long long>(net.packets_sent()),
              static_cast<unsigned long long>(net.packets_delivered()),
              static_cast<unsigned long long>(net.packets_dropped_injected()),
              static_cast<unsigned long long>(net.packets_dropped_link()),
              static_cast<unsigned long long>(
                  net.packets_dropped_no_destination()));

  std::printf("\n%s", fault::ResilienceReport::collect(d).to_string().c_str());

  std::printf("\n=== SLO / load-correlation monitor ===\n%s",
              slo.report().c_str());

  const EndState end = end_state(d, d.now());
  std::printf("\nend state: %zu clients alive, %zu authenticated and joined\n",
              end.alive, end.joined);

  if (!dump_artifacts(d, timeseries)) return 1;

  bool ok = end.joined == end.alive;  // every survivor must have recovered
  if (baseline && !slo.within_budget()) {
    std::fprintf(stderr, "chaos_demo: baseline run violated round SLOs\n");
    ok = false;
  }
  return ok ? 0 : 1;
}
