// Roaming + single-session enforcement (§II, §III, §IV-D).
//
// A subscriber travels between regions: the channel lineup follows the
// region inferred from the connection address (a roaming user "sees only
// the channels offered in that geographic region"), subscriptions gate
// premium channels, and when the same account starts watching from a
// second machine, the first machine's Channel Ticket renewal is refused
// and its peering is severed at expiry.
//
//   ./roaming_viewer
#include <cstdio>

#include "client/testbed.h"

using namespace p2pdrm;

namespace {

void show_lineup(const char* label, client::Client& c) {
  std::printf("%s sees channels: ", label);
  for (util::ChannelId id : c.viewable_channels()) std::printf("%u ", id);
  std::printf("\n");
}

}  // namespace

int main() {
  client::TestbedConfig config;
  config.seed = 11;
  config.geo_plan.num_regions = 2;
  client::Testbed provider(config);

  const geo::RegionId home = provider.geo().region_at(0);    // "Region 100"
  const geo::RegionId abroad = provider.geo().region_at(1);  // "Region 101"

  provider.add_user("traveler@example.com", "pw");
  provider.accounts().subscribe("traveler@example.com",
                                {"101", util::kNullTime, util::kNullTime});

  provider.add_regional_channel(1, "home-news", home);
  provider.add_subscription_channel(2, "home-premium", home, "101");
  provider.add_regional_channel(3, "abroad-news", abroad);
  for (util::ChannelId id : {1u, 2u, 3u}) provider.start_channel_server(id);

  // At home: the home lineup, including the subscribed premium channel.
  client::Client& at_home = provider.add_client("traveler@example.com", "pw", home);
  if (at_home.login() != core::DrmError::kOk) return 1;
  show_lineup("at home   ", at_home);
  std::printf("premium channel 2 -> %s\n",
              to_string(at_home.switch_channel(2)).data());

  // Traveling: same account connects from a region-101 address. The User
  // Manager infers the new region from the connection; the lineup flips.
  client::Client& abroad_client =
      provider.add_client("traveler@example.com", "pw", abroad);
  if (abroad_client.login() != core::DrmError::kOk) return 1;
  show_lineup("abroad    ", abroad_client);
  std::printf("home channel 1 from abroad -> %s (regional rights)\n",
              to_string(abroad_client.switch_channel(1)).data());
  std::printf("abroad channel 3 -> %s\n",
              to_string(abroad_client.switch_channel(3)).data());

  // Single-session rule: the abroad machine also tunes to premium channel
  // 2? It cannot (wrong region). But watch what happens when a second
  // machine at home takes over channel 2.
  client::Client& second_home =
      provider.add_client("traveler@example.com", "pw", home);
  if (second_home.login() != core::DrmError::kOk) return 1;
  std::printf("\nsecond home machine joins channel 2 -> %s\n",
              to_string(second_home.switch_channel(2)).data());

  // Near ticket expiry both machines try to renew: the log's latest entry
  // points at the second machine, so only it succeeds (§IV-D).
  provider.clock().advance(8 * util::kMinute);
  std::printf("first  machine renewal -> %s\n",
              to_string(at_home.renew_channel_ticket()).data());
  std::printf("second machine renewal -> %s\n",
              to_string(second_home.renew_channel_ticket()).data());

  // Past expiry, peers sever the unrenewed first machine.
  provider.clock().advance(3 * util::kMinute);
  const std::size_t severed = provider.evict_expired();
  std::printf("peering severed at expiry for %zu client(s)\n", severed);
  std::printf("\nthe account was never able to watch one channel from two "
              "places at once,\nand the user never re-entered credentials "
              "after the initial sign-on.\n");
  return 0;
}
