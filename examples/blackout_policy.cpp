// Blackout walkthrough (§IV-A's worked example, Fig. 2 channel B).
//
// A broadcaster re-airs an over-the-air channel on the P2P network but has
// no Internet rights for tonight's 20:00-21:00 game. The operator deploys
// the blackout with the Region=ANY attribute + high-priority REJECT policy;
// the utime machinery tells every client its channel list is stale; viewers
// are denied exactly during the window and service resumes after it.
//
//   ./blackout_policy
#include <cstdio>

#include "client/testbed.h"

using namespace p2pdrm;

namespace {

void try_watch(client::Client& viewer, const char* when) {
  const core::DrmError err = viewer.switch_channel(1);
  std::printf("%-22s switch_channel -> %s\n", when, to_string(err).data());
}

}  // namespace

int main() {
  client::TestbedConfig config;
  config.seed = 7;
  client::Testbed provider(config);
  provider.add_user("fan@example.com", "pw");
  const geo::RegionId region = provider.geo().region_at(0);
  provider.add_regional_channel(1, "sports-one", region);
  provider.start_channel_server(1);

  client::Client& fan = provider.add_client("fan@example.com", "pw", region);
  if (fan.login() != core::DrmError::kOk) return 1;

  // 18:30 — normal viewing.
  provider.clock().set(18 * util::kHour + 30 * util::kMinute);
  try_watch(fan, "18:30 (before)");

  // The operator deploys the blackout for 20:00-21:00. Note the lead time:
  // it must go in at least one User Ticket lifetime before 20:00, or
  // already-issued tickets would outlive the policy change (§IV-C).
  const util::SimTime start = 20 * util::kHour;
  const util::SimTime end = 21 * util::kHour;
  provider.policy_manager().blackout(1, start, end, provider.clock().now());
  std::printf("19:00 operator deploys blackout for 20:00-21:00\n");
  const core::ChannelRecord* record = provider.policy_manager().find_channel(1);
  for (const core::Policy& p : record->policies) {
    std::printf("  policy: %s\n", p.to_string().c_str());
  }

  // The client re-logins (ticket renewal); the new User Ticket carries a
  // fresher utime on the Region attribute, prompting a channel-list refetch.
  provider.clock().set(19 * util::kHour);
  if (fan.login() != core::DrmError::kOk) return 1;
  std::printf("19:00 client refreshed channel list via utime comparison\n");

  provider.clock().set(19 * util::kHour + 55 * util::kMinute);
  try_watch(fan, "19:55 (pre-window)");

  provider.clock().set(20 * util::kHour + 10 * util::kMinute);
  try_watch(fan, "20:10 (blacked out)");

  provider.clock().set(20 * util::kHour + 59 * util::kMinute);
  try_watch(fan, "20:59 (blacked out)");

  // After the window (the User Ticket expired meanwhile; renew first).
  provider.clock().set(21 * util::kHour + 5 * util::kMinute);
  if (fan.login() != core::DrmError::kOk) return 1;
  try_watch(fan, "21:05 (after)");

  std::printf("\nnote: tickets issued before 20:00 remain valid into the "
              "window for up to one\nChannel Ticket lifetime — which is why "
              "the paper requires policies to be deployed\nat least one User "
              "Ticket lifetime ahead of the blackout.\n");
  return 0;
}
