// Ticket inspector — the little ops tool every ticket system grows.
//
// With a hex-encoded SignedUserTicket or SignedChannelTicket as argv[1],
// decodes and pretty-prints it. With no arguments, demonstrates itself:
// mints both ticket kinds, prints their wire form, and decodes them back
// (including what tampering looks like).
//
//   ./ticket_inspector [hex]
#include <cstdio>
#include <string>

#include "core/ticket.h"
#include "crypto/chacha20.h"

using namespace p2pdrm;

namespace {

void print_attributes(const core::AttributeSet& attrs) {
  for (const core::Attribute& a : attrs.items()) {
    std::printf("    %s\n", a.to_string().c_str());
  }
}

void print_user_ticket(const core::SignedUserTicket& t) {
  std::printf("  SignedUserTicket (%zu bytes body, %zu bytes signature)\n",
              t.body.size(), t.signature.size());
  std::printf("    version:    %u\n", t.ticket.version);
  std::printf("    UserIN:     %llu\n",
              static_cast<unsigned long long>(t.ticket.user_in));
  std::printf("    valid:      %s -> %s\n",
              util::format_time(t.ticket.start_time).c_str(),
              util::format_time(t.ticket.expiry_time).c_str());
  std::printf("    client key: rsa-%zu, fingerprint %s…\n",
              t.ticket.client_public_key.n.bit_length(),
              util::to_hex(util::BytesView(t.ticket.client_public_key.fingerprint().data(), 8))
                  .c_str());
  std::printf("    attributes (%zu):\n", t.ticket.attributes.size());
  print_attributes(t.ticket.attributes);
}

void print_channel_ticket(const core::SignedChannelTicket& t) {
  std::printf("  SignedChannelTicket (%zu bytes body, %zu bytes signature)\n",
              t.body.size(), t.signature.size());
  std::printf("    version:  %u\n", t.ticket.version);
  std::printf("    UserIN:   %llu\n",
              static_cast<unsigned long long>(t.ticket.user_in));
  std::printf("    channel:  %u\n", t.ticket.channel_id);
  std::printf("    NetAddr:  %s\n", util::to_string(t.ticket.net_addr).c_str());
  std::printf("    renewal:  %s\n", t.ticket.renewal ? "yes" : "no");
  std::printf("    valid:    %s -> %s\n",
              util::format_time(t.ticket.start_time).c_str(),
              util::format_time(t.ticket.expiry_time).c_str());
}

/// Try both ticket kinds on unknown bytes.
bool inspect(const util::Bytes& wire) {
  try {
    print_user_ticket(core::SignedUserTicket::decode(wire));
    return true;
  } catch (const util::WireError&) {
  }
  try {
    print_channel_ticket(core::SignedChannelTicket::decode(wire));
    return true;
  } catch (const util::WireError&) {
  }
  std::printf("  not a decodable ticket (%zu bytes)\n", wire.size());
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    try {
      return inspect(util::from_hex(argv[1])) ? 0 : 1;
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "bad hex input: %s\n", e.what());
      return 1;
    }
  }

  // Demo mode.
  crypto::SecureRandom rng(2026);
  const crypto::RsaKeyPair issuer = crypto::generate_rsa_keypair(rng, 512);
  const crypto::RsaKeyPair client = crypto::generate_rsa_keypair(rng, 512);

  core::UserTicket ut;
  ut.user_in = 31415;
  ut.client_public_key = client.pub;
  ut.start_time = 20 * util::kHour;
  ut.expiry_time = 20 * util::kHour + 30 * util::kMinute;
  core::Attribute region;
  region.name = core::kAttrRegion;
  region.value = core::AttrValue::of("100");
  ut.attributes.add(region);
  core::Attribute sub;
  sub.name = core::kAttrSubscription;
  sub.value = core::AttrValue::of("101");
  sub.etime = 40 * util::kHour;
  ut.attributes.add(sub);
  const auto signed_ut = core::SignedUserTicket::sign(ut, issuer.priv);

  std::printf("== demo user ticket ==\n");
  const util::Bytes wire = signed_ut.encode();
  std::printf("wire (%zu bytes): %s…\n", wire.size(),
              util::to_hex(util::BytesView(wire.data(), 24)).c_str());
  inspect(wire);
  std::printf("  signature valid under issuer key: %s\n",
              signed_ut.verify(issuer.pub) ? "yes" : "NO");

  core::ChannelTicket ct;
  ct.user_in = 31415;
  ct.channel_id = 7;
  ct.client_public_key = client.pub;
  ct.net_addr = util::parse_netaddr("203.0.113.9");
  ct.renewal = true;
  ct.start_time = ut.start_time;
  ct.expiry_time = ut.start_time + 10 * util::kMinute;
  const auto signed_ct = core::SignedChannelTicket::sign(ct, issuer.priv);
  std::printf("\n== demo channel ticket ==\n");
  inspect(signed_ct.encode());
  std::printf("  signature valid under issuer key: %s\n",
              signed_ct.verify(issuer.pub) ? "yes" : "NO");

  std::printf("\n== tampered copy ==\n");
  util::Bytes tampered = signed_ut.encode();
  tampered[30] ^= 0x01;
  try {
    const auto t = core::SignedUserTicket::decode(tampered);
    std::printf("  decodes, signature valid: %s (flip caught by signature)\n",
                t.verify(issuer.pub) ? "yes — BUG" : "no");
  } catch (const util::WireError& e) {
    std::printf("  rejected at parse: %s\n", e.what());
  }
  return 0;
}
