// Abuse demo: the adversarial survival suite. One AdversaryPlan throws all
// five attack classes at a provisioned deployment — ticket replay/forgery
// probes across every protocol round, a seeded wire fuzzer, rogue overlay
// parents, a Sybil flood at the tracker, and a credential-sharing ring —
// and the run exits nonzero unless every defense held:
//
//   * zero successful forgeries (no probe was ever granted a ticket or a
//     join),
//   * zero dual sessions (the ViewingLog's single-session rule leaves at
//     most one ring survivor; the rest are evicted at renewal),
//   * bounded collateral damage (every honest client still holds its
//     Channel Ticket when the dust settles),
//   * byte-identical AbuseReport across two runs of the same (seed, plan)
//     on the sim backend — the attacks themselves are deterministic.
//
//   ./abuse_demo                  # built-in schedule, sim transport
//   ./abuse_demo my-plan.txt      # your own (see src/adversary/adversary_plan.h)
//   ./abuse_demo --transport=thread
//                                 # the same five attacks against the
//                                 # multithreaded live transport: real event
//                                 # loops, wall-clock timers; gates on the
//                                 # invariants only (no byte-compare)
//   ./abuse_demo --abuse-out=abuse.json
//                                 # write the p2pdrm.abuse.v1 artifact
//                                 # (P2PDRM_ABUSE_OUT=<path> does the same)
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <future>
#include <memory>
#include <sstream>
#include <string>

#include "adversary/abuse_report.h"
#include "adversary/adversary_engine.h"
#include "adversary/adversary_plan.h"
#include "net/deployment.h"
#include "services/catalog.h"

using namespace p2pdrm;

namespace {

constexpr util::ChannelId kChannel = 1;
constexpr std::size_t kViewers = 6;

bool gate(bool ok, const char* what) {
  std::printf("[%s] %s\n", ok ? "PASS" : "FAIL", what);
  return ok;
}

/// The thread-transport schedule is wall-clock and assumes the host keeps
/// up. Under heavy slowdown (sanitizer builds, loaded CI runners) every
/// deadline can be stretched uniformly with P2PDRM_LIVE_TIME_SCALE=<n>;
/// relative ordering — and therefore the scenario — is unchanged. The sim
/// clock is virtual and never needs headroom, so the knob only touches
/// `live` timings.
util::SimTime live_scale() {
  static const util::SimTime scale = [] {
    const char* env = std::getenv("P2PDRM_LIVE_TIME_SCALE");
    if (env == nullptr) return util::SimTime{1};
    const long v = std::strtol(env, nullptr, 10);
    return v > 1 ? static_cast<util::SimTime>(v) : util::SimTime{1};
  }();
  return scale;
}

/// A channel every geo region may watch: the cred-share ring logs in from
/// different regions on purpose (the paper's sharing scenario is
/// cross-machine, often cross-country), so the channel must not be the
/// thing that locks them out. Each accept policy needs a matching channel
/// attribute to be grounded (see core/policy.h).
core::ChannelRecord make_global_channel(const net::Deployment& d) {
  core::ChannelRecord rec =
      services::make_regional_channel(kChannel, "live-global", d.geo().region_at(0));
  for (int i = 1; i < d.geo().num_regions(); ++i) {
    const geo::RegionId region = d.geo().region_at(i);
    core::Attribute attr;
    attr.name = core::kAttrRegion;
    attr.value = core::AttrValue::of_number(region);
    rec.attributes.add(std::move(attr));
    core::Policy accept;
    accept.priority = 50;
    accept.terms.push_back({core::kAttrRegion, core::AttrValue::of_number(region)});
    accept.action = core::PolicyAction::kAccept;
    rec.policies.push_back(std::move(accept));
  }
  return rec;
}

/// Log in + switch + announce one honest viewer, driven to completion on
/// the sim backend (mirrors chaos_demo's provisioning loop).
void provision_viewer_sim(net::Deployment& d, net::AsyncClient& client) {
  bool done = false;
  client.login([&](core::DrmError err) {
    if (err != core::DrmError::kOk) {
      done = true;
      return;
    }
    client.switch_channel(kChannel, [&](core::DrmError) { done = true; });
  });
  const util::SimTime deadline = d.sim().now() + 5 * util::kMinute;
  while (!done && d.sim().now() < deadline && d.sim().step()) {
  }
  d.announce(client);
  client.enable_auto_renewal();
}

/// Live-transport provisioning: every protocol call must run on the
/// client's own event loop; the caller only waits on the future.
std::future<core::DrmError> post_join(net::Deployment& d, net::AsyncClient& c) {
  auto done = std::make_shared<std::promise<core::DrmError>>();
  std::future<core::DrmError> fut = done->get_future();
  net::AsyncClient* cp = &c;
  net::Deployment* dp = &d;
  d.network().post(c.config().node, 0, [cp, dp, done] {
    cp->login([cp, dp, done](core::DrmError err) {
      if (err != core::DrmError::kOk) {
        done->set_value(err);
        return;
      }
      cp->switch_channel(kChannel, [cp, dp, done](core::DrmError err2) {
        if (err2 == core::DrmError::kOk) dp->announce(*cp);
        done->set_value(err2);
      });
    });
  });
  return fut;
}

/// The built-in schedule. Ordering matters: the rogue parents arrive before
/// the late viewer (so its join walk meets them), the fuzz window covers
/// that viewer's retried rounds (so corrupted requests reach real service
/// nodes and the malformed-drop accounting), the ring joins BEFORE the
/// Sybil flood pollutes the tracker with unattached identities (a single
/// candidate timeout aborts a whole join), and the flood itself lands last
/// — its damage is tracker state, not in-flight rounds. Sim timings are
/// generous (the default 10-minute Channel Ticket with a 3-minute renewal
/// window adjudicates the ring at +8m); the thread-transport variant
/// compresses everything to wall-clock seconds against a 12s ticket / 6s
/// window.
adversary::AdversaryPlan built_in_plan(bool live) {
  adversary::AdversaryPlan plan;
  const util::SimTime s = live ? live_scale() * util::kSecond : util::kMinute;
  plan.replay_probe(1 * s / 2, "victim@abuse.example", "pw-victim", kChannel);
  plan.rogue_peer(1 * s, kChannel, 2, adversary::RogueMode::kGarbageKeys);
  plan.fuzz(2 * s, live ? 4 * s : 90 * util::kSecond,
            fault::AddrBlock::parse("*"), live ? 0.2 : 0.25);
  plan.cred_share(live ? 7 * s : 210 * util::kSecond,
                  "shared@abuse.example", "pw-shared", kChannel, 3,
                  8 * s);
  plan.sybil_flood(live ? live_scale() * 9500 * util::kMillisecond
                        : 5 * util::kMinute,
                   kChannel, 64, fault::AddrBlock::parse("10.66.0.0/16"), 4);
  return plan;
}

struct RunResult {
  adversary::AbuseReport report;
  std::vector<std::string> attack_log;
  bool provisioned = false;
};

/// One full adversarial run: provision the deployment, arm the plan, ride
/// it out, collect the verdict. Everything is scoped here so the
/// determinism check can run the whole thing twice from scratch.
RunResult run_scenario(const adversary::AdversaryPlan& plan, bool live,
                       std::uint64_t seed) {
  net::DeploymentConfig cfg;
  cfg.seed = 42;
  cfg.default_link.latency.floor = live ? 1 * util::kMillisecond : 10 * util::kMillisecond;
  cfg.default_link.latency.median = live ? 4 * util::kMillisecond : 40 * util::kMillisecond;
  cfg.default_link.latency.sigma = 0.3;
  cfg.default_link.loss = 0.0;  // the fuzzer is the only corruption source
  cfg.processing.light = 1 * util::kMillisecond;
  cfg.processing.heavy = 8 * util::kMillisecond;
  // Eviction must be observable, not papered over: a resilient client
  // answers a refused renewal with a fresh re-login (a new fresh issue),
  // which would mask the single-session signal this suite gates on.
  cfg.client_resilience = false;
  // The tracker defenses under test: per-source registration rate limiting
  // backed by a per-channel cap. The cap is sized so the rate limiter is
  // the binding defense against the 4-source flood (4 sources x burst 4 =
  // 16 admitted, far under the cap even with the honest overlay inside).
  cfg.tracker_limits.max_peers_per_channel = 40;
  cfg.tracker_limits.registration_burst = 4;
  cfg.tracker_limits.registration_window = 10 * util::kSecond;
  if (live) {
    cfg.transport = net::TransportKind::kThread;
    cfg.transport_threads = 4;
    cfg.request_timeout = live_scale() * 400 * util::kMillisecond;
    cfg.max_retries = 6;
    // Wall-clock runs cannot wait ten minutes for the ring adjudication.
    cfg.cm.ticket_lifetime = live_scale() * 12 * util::kSecond;
    cfg.cm.renewal_window = live_scale() * 6 * util::kSecond;
  }

  net::Deployment d(cfg);
  d.policy_manager().add_channel(make_global_channel(d), d.now());
  d.start_channel_server(kChannel);

  const geo::RegionId region = d.geo().region_at(0);
  std::vector<net::AsyncClient*> viewers;
  for (std::size_t i = 0; i < kViewers; ++i) {
    const std::string email = "viewer-" + std::to_string(i) + "@example.com";
    d.add_user(email, "pw");
    viewers.push_back(&d.add_client(email, "pw", region));
  }
  std::size_t provisioned = 0;
  if (live) {
    std::vector<std::future<core::DrmError>> joins;
    for (net::AsyncClient* c : viewers) joins.push_back(post_join(d, *c));
    for (std::future<core::DrmError>& f : joins) {
      if (f.get() == core::DrmError::kOk) ++provisioned;
    }
  } else {
    for (net::AsyncClient* c : viewers) provision_viewer_sim(d, *c);
    provisioned = kViewers;
  }

  // Late honest viewers arrive mid-attack, inside the fuzz window and after
  // the rogue parents have climbed the tracker's candidate list: their join
  // walks are what the rogue pollution metrics observe, their corrupted
  // rounds are what the malformed-drop accounting counts, and their tickets
  // are collateral the gates watch. They retry like a human would (the
  // fuzzer can kill any single attempt; resilience is off deployment-wide
  // so ring evictions stay observable).
  const util::SimTime late_at = live ? live_scale() * 2500 * util::kMillisecond
                                     : 120 * util::kSecond;
  const util::SimTime late_retry =
      live ? live_scale() * util::kSecond : 15 * util::kSecond;
  // Each retry closure captures its own shared function (it must outlive an
  // unknown number of rescheduled attempts), which is a reference cycle;
  // scenario teardown below breaks it explicitly.
  std::vector<std::shared_ptr<std::function<void(int)>>> retries;
  for (int v = 0; v < 2; ++v) {
    const std::string late_email =
        "late-viewer-" + std::to_string(v) + "@example.com";
    d.add_user(late_email, "pw");
    net::AsyncClient& late = d.add_client(late_email, "pw", region);
    auto late_try = std::make_shared<std::function<void(int)>>();
    retries.push_back(late_try);
    *late_try = [&d, &late, late_try, late_retry](int attempt) {
      const auto again = [&d, &late, late_try, late_retry, attempt] {
        // A failed switch that still minted the Channel Ticket (the join
        // walk hit a polluted candidate) is a kept session for our
        // purposes: stop before a fresh login throws the ticket away.
        if (attempt < 8 && !late.channel_ticket()) {
          d.network().post(late.config().node, late_retry,
                           [late_try, attempt] { (*late_try)(attempt + 1); });
        }
      };
      // Full login + switch each attempt: a corrupted listing response can
      // poison the cached partition map, and only a re-login refetches it.
      late.login([&d, &late, again](core::DrmError err) {
        if (err != core::DrmError::kOk) {
          again();
          return;
        }
        late.switch_channel(kChannel, [&d, &late, again](core::DrmError err2) {
          if (err2 == core::DrmError::kOk) {
            d.announce(late);
          } else {
            again();
          }
        });
      });
    };
    d.network().post(late.config().node,
                     late_at + v * (live ? live_scale() * 500 * util::kMillisecond
                                         : 10 * util::kSecond),
                     [late_try] { (*late_try)(0); });
  }

  // Keep content flowing so the overlay (and the fuzzer's blast radius)
  // sees real substream traffic throughout the attack window.
  const util::SimTime tick =
      live ? live_scale() * util::kSecond : 30 * util::kSecond;
  for (int i = 1; i <= 10; ++i) {
    d.post(i * tick, [&d] {
      const util::Bytes frame(256, std::uint8_t{0x5a});
      d.broadcast(kChannel, frame);
    });
  }

  adversary::AdversaryEngineConfig ecfg;
  ecfg.seed = seed;
  if (live) ecfg.probe_timeout = live_scale() * ecfg.probe_timeout;
  adversary::AdversaryEngine engine(d, plan, ecfg);
  engine.arm();

  // Long enough for the ring's delayed renewals plus their answers (ring
  // switches at ~3m40s/7s, renewals 8m/8s after that).
  d.run_until(live ? live_scale() * 18 * util::kSecond : 13 * util::kMinute);
  if (live) d.transport().shutdown();  // quiesce before reading shared state
  for (auto& f : retries) *f = nullptr;  // break the self-capture cycles

  RunResult r;
  r.report = adversary::AbuseReport::collect(d, engine, seed);
  r.attack_log = engine.log();
  r.provisioned = provisioned == kViewers;
  return r;
}

void print_report(const RunResult& r) {
  std::printf("\n=== attack log ===\n");
  for (const std::string& line : r.attack_log) std::printf("%s\n", line.c_str());
  const adversary::AbuseReport& rep = r.report;
  std::printf("\n=== abuse summary ===\n");
  std::printf("forgery probes: %llu sent, %llu accepted, %llu rejected, %llu timed out\n",
              static_cast<unsigned long long>(rep.probes_sent),
              static_cast<unsigned long long>(rep.probes_accepted),
              static_cast<unsigned long long>(rep.probes_rejected),
              static_cast<unsigned long long>(rep.probes_timed_out));
  std::printf("fuzz: %llu mutations injected, %llu packets mutated network-wide, "
              "%llu malformed drops counted\n",
              static_cast<unsigned long long>(rep.fuzz_mutations),
              static_cast<unsigned long long>(rep.packets_mutated),
              static_cast<unsigned long long>(rep.malformed_drops));
  std::printf("rogue peers: %llu planted, %llu joins poisoned, %llu keys withheld\n",
              static_cast<unsigned long long>(rep.rogue_peers),
              static_cast<unsigned long long>(rep.rogue_joins_granted),
              static_cast<unsigned long long>(rep.rogue_keys_withheld));
  std::printf("sybil: %llu attempted, %llu admitted (rate-limited %llu, "
              "capacity %llu)\n",
              static_cast<unsigned long long>(rep.sybil_attempted),
              static_cast<unsigned long long>(rep.sybil_admitted),
              static_cast<unsigned long long>(rep.tracker_rejected_rate),
              static_cast<unsigned long long>(rep.tracker_rejected_capacity));
  std::printf("cred-share ring: %llu members, %llu renewed, %llu evicted "
              "(%llu viewing-log entries)\n",
              static_cast<unsigned long long>(rep.ring_members),
              static_cast<unsigned long long>(rep.ring_renewals_ok),
              static_cast<unsigned long long>(rep.ring_renewals_refused),
              static_cast<unsigned long long>(rep.viewing_entries));
  for (std::size_t i = 0; i < rep.ring_outcomes.size(); ++i) {
    std::printf("  ring[%zu]: %s\n", i, rep.ring_outcomes[i].c_str());
  }
  std::printf("collateral: %llu honest clients, %llu still ticketed, "
              "%llu frames decrypted\n",
              static_cast<unsigned long long>(rep.honest_clients),
              static_cast<unsigned long long>(rep.honest_with_ticket),
              static_cast<unsigned long long>(rep.honest_content_decrypted));
}

}  // namespace

int main(int argc, char** argv) {
  bool live = false;
  const char* plan_path = nullptr;
  const char* abuse_out = std::getenv("P2PDRM_ABUSE_OUT");
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--transport=", 0) == 0) {
      const std::string transport = arg.substr(std::string("--transport=").size());
      if (transport == "thread") {
        live = true;
      } else if (transport != "sim") {
        std::fprintf(stderr, "abuse_demo: unknown --transport=%s (want sim|thread)\n",
                     transport.c_str());
        return 1;
      }
    } else if (arg.rfind("--abuse-out=", 0) == 0) {
      abuse_out = argv[i] + std::string("--abuse-out=").size();
    } else {
      plan_path = argv[i];
    }
  }

  adversary::AdversaryPlan plan = built_in_plan(live);
  if (plan_path != nullptr) {
    std::ifstream in(plan_path);
    if (!in) {
      std::fprintf(stderr, "abuse_demo: cannot read %s\n", plan_path);
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    try {
      plan = adversary::AdversaryPlan::parse(buf.str());
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "abuse_demo: %s\n", e.what());
      return 1;
    }
  }

  constexpr std::uint64_t kSeed = 0xab05ed;
  std::printf("=== adversary schedule (%zu attacks, %s transport) ===\n%s",
              plan.size(), live ? "thread" : "sim", plan.to_string().c_str());

  const RunResult run = run_scenario(plan, live, kSeed);
  print_report(run);
  const std::string json = run.report.to_json();

  if (abuse_out != nullptr) {
    std::ofstream out(abuse_out, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "abuse_demo: cannot write %s\n", abuse_out);
      return 1;
    }
    out << json;
    std::printf("\nwrote p2pdrm.abuse.v1 report to %s\n", abuse_out);
  }

  const adversary::AbuseReport& rep = run.report;
  const std::size_t rings = 1;  // built-in and file plans alike: gate per run
  std::printf("\n=== abuse gates ===\n");
  bool ok = true;
  ok &= gate(run.provisioned, "every honest viewer joined before the attacks");
  ok &= gate(rep.probes_sent >= 8,
             "the forgery chain covered all five protocol rounds");
  ok &= gate(rep.gate_no_forgery && rep.probes_timed_out == 0,
             "zero successful forgeries: every probe got an explicit refusal");
  ok &= gate(rep.fuzz_mutations > 0, "the fuzzer really corrupted live traffic");
  if (!live) {
    // Deterministic on sim; on the live transport the window's overlap with
    // server-bound rounds is timing-dependent, so the drop accounting is
    // reported but not gated there.
    ok &= gate(rep.malformed_drops > 0,
               "malformed packets were counted and dropped, never thrown");
  }
  if (!live) {
    // Whether a join walk touches a rogue depends on the tracker's sampling
    // order — deterministic on sim, a coin flip per run on the live
    // transport, so reported-but-not-gated there.
    ok &= gate(rep.rogue_joins_granted > 0,
               "the rogue parents poisoned at least one join walk");
  }
  ok &= gate(rep.sybil_attempted > 0 &&
                 rep.sybil_admitted < rep.sybil_attempted &&
                 rep.tracker_rejected_rate > 0,
             "tracker limits turned the Sybil flood away (rate limiting hit)");
  ok &= gate(rep.ring_members >= 2 && rep.ring_renewals_ok <= rings &&
                 rep.ring_renewals_refused >= rep.ring_members - rings,
             "single-session rule: at most one ring survivor, rest evicted");
  ok &= gate(rep.viewing_entries > 0,
             "the ViewingLog journaled the sessions it adjudicated from");
  ok &= gate(rep.gate_bounded_collateral,
             "bounded collateral: every honest client kept its Channel Ticket");
  ok &= gate(rep.pass(), "AbuseReport gates all green");

  if (!live) {
    // The determinism contract: a second run of the same (seed, plan) must
    // reproduce the artifact byte for byte on the sim backend.
    const RunResult rerun = run_scenario(plan, live, kSeed);
    ok &= gate(rerun.report.to_json() == json,
               "byte-identical AbuseReport across two runs (same seed + plan)");
  }
  return ok ? 0 : 1;
}
