// Flash crowd at a live-event start (§I's motivating scenario).
//
// "Live events' having well-defined start and end times leads to highly
// correlated service request arrivals" — the case where P2P distribution
// is the advantage rather than the problem. This example floods a channel
// with joiners in a burst: the distribution tree fans out peer-to-peer
// (every accepted viewer becomes a parent candidate), the managers only
// ever do cheap stateless ticket work, and every viewer ends up decrypting
// the stream.
//
//   ./flash_crowd [viewers]   (default 120)
#include <cstdio>
#include <cstdlib>
#include <map>

#include "client/testbed.h"

using namespace p2pdrm;

int main(int argc, char** argv) {
  const std::size_t viewers = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 120;

  client::TestbedConfig config;
  config.seed = 23;
  config.cm.peer_list_size = 12;
  client::Testbed provider(config);
  const geo::RegionId region = provider.geo().region_at(0);
  provider.add_regional_channel(1, "the-big-game", region);
  provider.start_channel_server(1);

  // Pre-register the audience (accounts exist before the event).
  std::vector<client::Client*> crowd;
  for (std::size_t i = 0; i < viewers; ++i) {
    const std::string email = "fan" + std::to_string(i) + "@example.com";
    provider.add_user(email, "pw");
    crowd.push_back(&provider.add_client(email, "pw", region));
  }

  // Kick-off: everyone logs in and tunes to channel 1 within seconds.
  std::size_t joined = 0, denied = 0;
  for (client::Client* fan : crowd) {
    provider.clock().advance(50 * util::kMillisecond);  // arrivals in a burst
    if (fan->login() != core::DrmError::kOk) {
      ++denied;
      continue;
    }
    if (fan->switch_channel(1) == core::DrmError::kOk) {
      ++joined;
      provider.announce(*fan);  // becomes a parent candidate immediately
    } else {
      ++denied;
    }
  }
  std::printf("flash crowd: %zu joined, %zu failed out of %zu\n", joined, denied,
              viewers);
  std::printf("tracker now lists %zu peers on the channel (utilization %.2f)\n",
              provider.tracker().peer_count(1), provider.tracker().utilization(1));

  // The whole tree really decrypts the stream.
  const auto received = provider.broadcast(1, util::bytes_of("KICKOFF!"));
  std::printf("content reached %zu/%zu viewers through the overlay\n",
              received.size(), joined);

  // Depth distribution of the resulting tree: the crowd absorbed itself —
  // the Channel Server's own upload budget (64 children) did not grow.
  std::map<std::size_t, std::size_t> depth_histogram;
  for (client::Client* fan : crowd) {
    if (!fan->parent()) continue;
    // Walk up via recorded parents (each client has a single parent here).
    std::size_t depth = 1;
    util::NodeId cursor = *fan->parent();
    while (cursor >= 1000) {  // client nodes start at 1000; roots below
      ++depth;
      client::Client* up = nullptr;
      for (client::Client* c : crowd) {
        if (c->config().node == cursor) {
          up = c;
          break;
        }
      }
      if (up == nullptr || !up->parent()) break;
      cursor = *up->parent();
    }
    ++depth_histogram[depth];
  }
  std::printf("\ntree depth histogram (hops from the Channel Server):\n");
  for (const auto& [depth, count] : depth_histogram) {
    std::printf("  depth %zu: %zu viewers\n", depth, count);
  }
  std::printf("\nkeys and content flowed peer-to-peer; the managers only "
              "issued %zu tickets'\nworth of stateless signing work.\n",
              joined * 2);
  return 0;
}
