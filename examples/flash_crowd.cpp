// Flash crowd at a live-event start (§I's motivating scenario).
//
// "Live events' having well-defined start and end times leads to highly
// correlated service request arrivals" — the case where P2P distribution
// is the advantage rather than the problem. This example floods a channel
// with joiners in a burst: the distribution tree fans out peer-to-peer
// (every accepted viewer becomes a parent candidate), the managers only
// ever do cheap stateless ticket work, and every viewer ends up decrypting
// the stream.
//
//   ./flash_crowd [viewers]                    (default 120, virtual clock)
//   ./flash_crowd --transport=thread [viewers] (default 64; the stampede
//       arrives from real driver threads against an overload-protected
//       deployment on the multithreaded transport — joins are admitted or
//       shed with BUSY, and the kickoff packet crosses the overlay live)
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "client/testbed.h"
#include "net/deployment.h"
#include "obs/flight_recorder.h"

using namespace p2pdrm;

namespace {

constexpr util::ChannelId kChannel = 1;

/// The stampede on the live transport: `viewers` brand-new sessions arrive
/// from 8 driver threads at once. The farm runs with bounded worker queues
/// and admission control, so the burst is either absorbed or shed with
/// BUSY (never silently); BUSY-deferred resends land the stragglers.
int run_live(std::size_t viewers) {
  std::printf("flash crowd (threaded transport): %zu viewers stampeding\n",
              viewers);

  // Crash post-mortem opt-in (P2PDRM_FLIGHT_OUT): a clean stampede writes
  // no dump; a crash leaves the per-thread event rings behind.
  if (obs::FlightRecorder::global().arm_from_env()) {
    std::printf("flight recorder armed -> %s\n",
                obs::FlightRecorder::global().dump_path());
  }

  net::DeploymentConfig cfg;
  cfg.seed = 23;
  cfg.transport = net::TransportKind::kThread;
  cfg.transport_threads = 4;
  cfg.default_link.latency.floor = 1 * util::kMillisecond;
  cfg.default_link.latency.median = 3 * util::kMillisecond;
  cfg.default_link.latency.sigma = 0.3;
  cfg.default_link.loss = 0.0;
  cfg.request_timeout = 500 * util::kMillisecond;
  cfg.cm.peer_list_size = 12;
  // Finite manager capacity makes the burst mean something: one worker,
  // 10 ms per heavy round, shedding past a shallow queue high-water mark.
  cfg.processing.light = 1 * util::kMillisecond;
  cfg.processing.heavy = 10 * util::kMillisecond;
  cfg.overload.workers = 1;
  cfg.overload.queue_capacity = 64;
  cfg.overload.high_water = 4;
  cfg.overload.busy_retry_after = 100 * util::kMillisecond;
  cfg.root_peer_capacity = viewers + 8;
  net::Deployment d(cfg);

  const geo::RegionId region = d.geo().region_at(0);
  d.add_regional_channel(kChannel, "the-big-game", region);
  d.start_channel_server(kChannel);

  // Accounts and clients exist before the event (control plane, main
  // thread only); the stampede is purely protocol traffic.
  std::vector<net::AsyncClient*> crowd;
  crowd.reserve(viewers);
  for (std::size_t i = 0; i < viewers; ++i) {
    const std::string email = "fan" + std::to_string(i) + "@example.com";
    d.add_user(email, "pw");
    crowd.push_back(&d.add_client(email, "pw", region));
  }

  std::atomic<std::size_t> joined{0}, denied{0};
  const std::size_t drivers = 8;
  const auto stampede = [&](std::size_t start) {
    for (std::size_t i = start; i < viewers; i += drivers) {
      net::AsyncClient* c = crowd[i];
      auto done = std::make_shared<std::promise<core::DrmError>>();
      std::future<core::DrmError> fut = done->get_future();
      net::Deployment* dp = &d;
      d.network().post(c->config().node, 0, [c, dp, done] {
        c->login([c, dp, done](core::DrmError err) {
          if (err != core::DrmError::kOk) {
            done->set_value(err);
            return;
          }
          c->switch_channel(kChannel, [c, dp, done](core::DrmError err2) {
            if (err2 == core::DrmError::kOk) dp->announce(*c);
            done->set_value(err2);
          });
        });
      });
      if (fut.get() == core::DrmError::kOk) {
        joined.fetch_add(1, std::memory_order_relaxed);
      } else {
        denied.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };
  std::vector<std::thread> pool;
  for (std::size_t t = 0; t < drivers; ++t) pool.emplace_back(stampede, t);
  for (std::thread& t : pool) t.join();

  // Kickoff: one content packet, produced on the root's own loop (the
  // channel server's rotation state lives there) and fanned out live.
  d.network().post(net::Deployment::kChannelRootBase + kChannel, 0,
                   [&d] { d.broadcast(kChannel, util::bytes_of("KICKOFF!")); });
  d.run_for(500 * util::kMillisecond);  // let the packet cross the tree
  d.transport().shutdown();             // quiesce before reading client state

  std::printf("flash crowd: %zu joined, %zu failed out of %zu\n",
              joined.load(), denied.load(), viewers);
  std::printf("tracker now lists %zu peers on the channel (utilization %.2f)\n",
              d.tracker().peer_count(kChannel), d.tracker().utilization(kChannel));

  std::uint64_t busy_received = 0, busy_resends = 0;
  std::size_t reached = 0;
  for (const auto& c : d.clients()) {
    busy_received += c->busy_received();
    busy_resends += c->busy_deferred_resends();
    if (c->content_decrypted() > 0) ++reached;
  }
  const obs::Counter* busy_sent = d.registry().find_counter("server.busy_sent");
  std::printf("overload: server sent %llu BUSY; clients absorbed %llu "
              "(%llu deferred resends)\n",
              static_cast<unsigned long long>(
                  busy_sent != nullptr ? busy_sent->value() : 0),
              static_cast<unsigned long long>(busy_received),
              static_cast<unsigned long long>(busy_resends));
  std::printf("content reached %zu/%zu viewers through the live overlay\n",
              reached, joined.load());
  std::printf("\nkeys and content flowed peer-to-peer; the managers only "
              "issued %zu tickets'\nworth of stateless signing work.\n",
              joined.load() * 2);

  if (joined.load() == 0 || reached == 0) {
    std::fprintf(stderr, "FAIL: the stampede never landed\n");
    return 1;
  }
  return 0;
}

/// The original virtual-clock stampede on the synchronous Testbed.
int run_sim(std::size_t viewers) {
  client::TestbedConfig config;
  config.seed = 23;
  config.cm.peer_list_size = 12;
  client::Testbed provider(config);
  const geo::RegionId region = provider.geo().region_at(0);
  provider.add_regional_channel(kChannel, "the-big-game", region);
  provider.start_channel_server(kChannel);

  // Pre-register the audience (accounts exist before the event).
  std::vector<client::Client*> crowd;
  for (std::size_t i = 0; i < viewers; ++i) {
    const std::string email = "fan" + std::to_string(i) + "@example.com";
    provider.add_user(email, "pw");
    crowd.push_back(&provider.add_client(email, "pw", region));
  }

  // Kick-off: everyone logs in and tunes to channel 1 within seconds.
  std::size_t joined = 0, denied = 0;
  for (client::Client* fan : crowd) {
    provider.clock().advance(50 * util::kMillisecond);  // arrivals in a burst
    if (fan->login() != core::DrmError::kOk) {
      ++denied;
      continue;
    }
    if (fan->switch_channel(kChannel) == core::DrmError::kOk) {
      ++joined;
      provider.announce(*fan);  // becomes a parent candidate immediately
    } else {
      ++denied;
    }
  }
  std::printf("flash crowd: %zu joined, %zu failed out of %zu\n", joined, denied,
              viewers);
  std::printf("tracker now lists %zu peers on the channel (utilization %.2f)\n",
              provider.tracker().peer_count(kChannel),
              provider.tracker().utilization(kChannel));

  // The whole tree really decrypts the stream.
  const auto received = provider.broadcast(kChannel, util::bytes_of("KICKOFF!"));
  std::printf("content reached %zu/%zu viewers through the overlay\n",
              received.size(), joined);

  // Depth distribution of the resulting tree: the crowd absorbed itself —
  // the Channel Server's own upload budget (64 children) did not grow.
  std::map<std::size_t, std::size_t> depth_histogram;
  for (client::Client* fan : crowd) {
    if (!fan->parent()) continue;
    // Walk up via recorded parents (each client has a single parent here).
    std::size_t depth = 1;
    util::NodeId cursor = *fan->parent();
    while (cursor >= 1000) {  // client nodes start at 1000; roots below
      ++depth;
      client::Client* up = nullptr;
      for (client::Client* c : crowd) {
        if (c->config().node == cursor) {
          up = c;
          break;
        }
      }
      if (up == nullptr || !up->parent()) break;
      cursor = *up->parent();
    }
    ++depth_histogram[depth];
  }
  std::printf("\ntree depth histogram (hops from the Channel Server):\n");
  for (const auto& [depth, count] : depth_histogram) {
    std::printf("  depth %zu: %zu viewers\n", depth, count);
  }
  std::printf("\nkeys and content flowed peer-to-peer; the managers only "
              "issued %zu tickets'\nworth of stateless signing work.\n",
              joined * 2);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string transport = "sim";
  std::size_t viewers = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--transport=", 0) == 0) {
      transport = arg.substr(std::string("--transport=").size());
    } else {
      viewers = std::strtoul(arg.c_str(), nullptr, 10);
    }
  }
  if (transport == "thread") return run_live(viewers != 0 ? viewers : 64);
  if (transport != "sim") {
    std::fprintf(stderr, "flash_crowd: unknown --transport=%s (want sim|thread)\n",
                 transport.c_str());
    return 1;
  }
  return run_sim(viewers != 0 ? viewers : 120);
}
