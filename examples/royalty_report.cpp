// Pay-per-view and reporting (§II "Unique User Count", §IV-C logging).
//
// The DRM system must "comply with regulations concerning payment of
// television licensing fees and copyright royalties, enforce per-view
// payment of paid contents, and track viewing rate for advertisement
// purposes". This example sells a pay-per-view boxing match, enforces it
// during the program window only, and then prints the reports an operator
// derives from the Channel Manager's viewing-activity log.
//
//   ./royalty_report
#include <cstdio>

#include "client/testbed.h"

using namespace p2pdrm;

int main() {
  client::TestbedConfig config;
  config.seed = 99;
  client::Testbed provider(config);
  const geo::RegionId region = provider.geo().region_at(0);

  provider.add_regional_channel(1, "fight-night", region);
  provider.add_regional_channel(2, "free-movies", region);
  provider.start_channel_server(1);
  provider.start_channel_server(2);

  // Tonight 21:00-23:00 on channel 1 is a PPV event sold as package
  // "ppv-main-event".
  const util::SimTime start = 21 * util::kHour;
  const util::SimTime end = 23 * util::kHour;
  provider.policy_manager().add_ppv_program(1, "ppv-main-event", start, end, 0);
  std::printf("channel 1 carries PPV program 21:00-23:00 (package "
              "ppv-main-event)\n\n");

  // Three subscribers; only Paula buys the fight (an Account Manager
  // purchase = a Subscription grant covering the program window).
  for (const char* email : {"paula@example.com", "fred@example.com",
                            "ad-watcher@example.com"}) {
    provider.add_user(email, "pw");
  }
  provider.accounts().subscribe("paula@example.com", {"ppv-main-event", start, end});

  client::Client& paula = provider.add_client("paula@example.com", "pw", region);
  client::Client& fred = provider.add_client("fred@example.com", "pw", region);
  client::Client& casual = provider.add_client("ad-watcher@example.com", "pw", region);

  // 20:00 — pre-show: everyone can watch channel 1.
  provider.clock().set(20 * util::kHour);
  for (client::Client* c : {&paula, &fred, &casual}) {
    if (c->login() != core::DrmError::kOk) return 1;
  }
  std::printf("20:00 pre-show: paula=%s fred=%s casual=%s\n",
              to_string(paula.switch_channel(1)).data(),
              to_string(fred.switch_channel(1)).data(),
              to_string(casual.switch_channel(1)).data());

  // 21:05 — the main event: only the purchaser stays.
  provider.clock().set(21 * util::kHour + 5 * util::kMinute);
  for (client::Client* c : {&paula, &fred, &casual}) (void)c->login();
  std::printf("21:05 main event: paula=%s fred=%s casual=%s\n",
              to_string(paula.switch_channel(1)).data(),
              to_string(fred.switch_channel(1)).data(),
              to_string(casual.switch_channel(1)).data());
  std::printf("      fred retreats to channel 2: %s\n",
              to_string(fred.switch_channel(2)).data());

  // 23:05 — after the program, free viewing resumes.
  provider.clock().set(23 * util::kHour + 5 * util::kMinute);
  for (client::Client* c : {&paula, &fred, &casual}) (void)c->login();
  std::printf("23:05 post-show: paula=%s fred=%s casual=%s\n\n",
              to_string(paula.switch_channel(1)).data(),
              to_string(fred.switch_channel(1)).data(),
              to_string(casual.switch_channel(1)).data());

  // --- operator reports from the viewing-activity log ---
  const services::ViewingLog& log = provider.channel_manager().log();

  std::printf("=== royalty / advertising report (from the viewing log) ===\n");
  std::printf("%-10s %s\n", "channel", "fresh ticket issues (views)");
  for (const auto& [channel, views] : log.views_per_channel()) {
    std::printf("%-10u %zu\n", channel, views);
  }

  // Per-view billing for the PPV window: fresh issues on channel 1 inside
  // [start, end] are billable events.
  std::printf("\nbillable PPV views on channel 1 (21:00-23:00):\n");
  std::size_t billable = 0;
  for (const services::ViewingLog::Entry& e : log.audit_trail()) {
    if (e.channel != 1 || e.renewal || e.time < start || e.time > end) continue;
    ++billable;
    std::printf("  UserIN %llu from %s at %s\n",
                static_cast<unsigned long long>(e.user_in),
                util::to_string(e.addr).c_str(), util::format_time(e.time).c_str());
  }
  std::printf("total billable views: %zu (exactly the purchasers)\n", billable);

  std::printf("\naudit entries total: %zu — each records (UserIN, channel, "
              "NetAddr, time, renewal),\nwhich is also what the §IV-D "
              "single-session rule checks against.\n", log.size());
  return 0;
}
