// Quickstart: stand up a complete provider (Account Manager, Redirection
// Manager, User Manager, Channel Policy Manager, Channel Manager, tracker,
// Channel Server), register a user, log in, get a Channel Ticket, join the
// P2P overlay, and decrypt live content — the full Fig. 1 flow in one file.
//
//   ./quickstart
#include <cstdio>

#include "client/testbed.h"

using namespace p2pdrm;

int main() {
  // 1. Deploy the provider. The Testbed wires every backend component with
  //    in-process transports; each call below crosses the exact protocol
  //    byte formats a networked deployment would use.
  client::TestbedConfig config;
  config.seed = 2026;
  config.geo_plan.num_regions = 2;
  client::Testbed provider(config);
  std::printf("provider up: 1 User Manager domain, %zu Channel Manager "
              "partition(s), %d regions\n",
              provider.config().partitions, provider.geo().num_regions());

  // 2. Register an account out-of-band (the provider's web site).
  provider.add_user("viewer@example.com", "correct horse battery staple");
  const geo::RegionId region = provider.geo().region_at(0);

  // 3. Offer a free-to-view channel in region 100 and start its Channel
  //    Server (content encrypted under a rotating AES-128 key, §IV-E).
  provider.add_regional_channel(/*id=*/1, "evening-news", region);
  services::ChannelServer& server = provider.start_channel_server(1);
  std::printf("channel 1 live, content key serial %u active\n",
              server.latest_key().serial);

  // 4. Client startup: login (LOGIN1/LOGIN2 with nonce challenge, password
  //    proof, and binary attestation) yields a signed User Ticket that also
  //    certifies the client's public key (§IV-B).
  client::Client& viewer =
      provider.add_client("viewer@example.com", "correct horse battery staple", region);
  if (viewer.login() != core::DrmError::kOk) {
    std::printf("login failed\n");
    return 1;
  }
  const core::UserTicket& ut = viewer.user_ticket()->ticket;
  std::printf("logged in: UserIN=%llu, ticket valid %s -> %s, %zu attributes\n",
              static_cast<unsigned long long>(ut.user_in),
              util::format_time(ut.start_time).c_str(),
              util::format_time(ut.expiry_time).c_str(), ut.attributes.size());
  for (const core::Attribute& a : ut.attributes.items()) {
    std::printf("  attribute %s\n", a.to_string().c_str());
  }

  // 5. Watch: SWITCH1/SWITCH2 evaluate the channel's policies against the
  //    ticket's attributes and return a Channel Ticket + peer list; JOIN
  //    presents the Channel Ticket to a peer, which delegates authorization
  //    to the ticket signature and hands over the session + content keys.
  if (viewer.switch_channel(1) != core::DrmError::kOk) {
    std::printf("switch failed\n");
    return 1;
  }
  std::printf("joined channel 1 via peer %u\n", *viewer.parent());

  // 6. Live content flows through the tree encrypted; the viewer decrypts.
  const auto received = provider.broadcast(1, util::bytes_of("frame #1: headlines"));
  std::printf("decrypted: \"%s\"\n",
              util::string_of(received.at(viewer.config().node)).c_str());

  // 7. A minute later the content key has rotated (forward secrecy); the
  //    new key was pushed down the tree pair-wise and playback continues.
  provider.advance(90 * util::kSecond);
  const auto later = provider.broadcast(1, util::bytes_of("frame #2: weather"));
  std::printf("after key rotation (serial %u): \"%s\"\n",
              server.latest_key().serial,
              util::string_of(later.at(viewer.config().node)).c_str());

  // 8. The client's feedback log recorded every protocol round — the same
  //    instrument behind the paper's Figs. 5 and 6.
  for (const client::LatencySample& s : viewer.feedback_log()) {
    std::printf("feedback: %-7s %s\n", to_string(s.round).data(),
                s.success ? "ok" : "failed");
  }
  std::printf("quickstart complete\n");
  return 0;
}
