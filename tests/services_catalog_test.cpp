#include <gtest/gtest.h>

#include "services/catalog.h"
#include "services/channel_manager.h"

namespace p2pdrm::services {
namespace {

using util::kHour;

TEST(CatalogBuildersTest, RegionalChannelShape) {
  const core::ChannelRecord c = make_regional_channel(7, "news", 100, 2);
  EXPECT_EQ(c.id, 7u);
  EXPECT_EQ(c.name, "news");
  EXPECT_EQ(c.partition, 2u);
  ASSERT_EQ(c.policies.size(), 1u);
  EXPECT_EQ(c.policies[0].to_string(), "Priority 50: Region=100, Return ACCEPT");
}

TEST(CatalogBuildersTest, SubscriptionChannelShape) {
  const core::ChannelRecord c = make_subscription_channel(8, "premium", 101, "GOLD");
  ASSERT_EQ(c.policies.size(), 1u);
  EXPECT_EQ(c.policies[0].to_string(),
            "Priority 50: Region=101 & Subscription=GOLD, Return ACCEPT");
}

constexpr const char* kFig2Catalog = R"(
# The paper's Fig. 2 lineup.
channel 1 "Channel A" partition 0
  attribute Region=100
  attribute Region=101
  attribute Subscription=101
  policy Priority 50: Region=100 & Subscription=101, Return ACCEPT
  policy Priority 50: Region=101, Return ACCEPT

channel 2 "Channel B"
  attribute Region=100
  attribute Region=ANY stime=72000000000 etime=75600000000
  policy Priority 50: Region=100, Return ACCEPT
  policy Priority 100: Region=ANY, Return REJECT
)";

TEST(CatalogParseTest, Fig2LineupParses) {
  const CatalogParseResult result = parse_catalog(kFig2Catalog);
  ASSERT_TRUE(result.ok()) << result.error;
  ASSERT_EQ(result.channels.size(), 2u);

  const core::ChannelRecord& a = result.channels[0];
  EXPECT_EQ(a.id, 1u);
  EXPECT_EQ(a.name, "Channel A");
  EXPECT_EQ(a.attributes.size(), 3u);
  EXPECT_EQ(a.policies.size(), 2u);

  const core::ChannelRecord& b = result.channels[1];
  EXPECT_EQ(b.name, "Channel B");
  EXPECT_EQ(b.partition, 0u);
  const auto anys = b.attributes.find_active(core::kAttrRegion, 20 * kHour + kHour / 2);
  ASSERT_EQ(anys.size(), 2u);  // Region=100 plus the windowed ANY
}

TEST(CatalogParseTest, ParsedBlackoutBehaves) {
  const CatalogParseResult result = parse_catalog(kFig2Catalog);
  ASSERT_TRUE(result.ok());
  const core::ChannelRecord& b = result.channels[1];

  core::AttributeSet viewer;
  core::Attribute region;
  region.name = core::kAttrRegion;
  region.value = core::AttrValue::of("100");
  viewer.add(region);

  // The ANY window is 20:00-21:00 (72000s-75600s in microseconds).
  EXPECT_TRUE(core::channel_accessible(b, viewer, 19 * kHour));
  EXPECT_FALSE(core::channel_accessible(b, viewer, 20 * kHour + kHour / 2));
  EXPECT_TRUE(core::channel_accessible(b, viewer, 22 * kHour));
}

TEST(CatalogParseTest, CommentsAndBlankLines) {
  const auto result = parse_catalog("\n# nothing but comments\n\n   # indented\n");
  EXPECT_TRUE(result.ok());
  EXPECT_TRUE(result.channels.empty());
}

TEST(CatalogParseTest, ErrorsCarryLineNumbers) {
  struct Case {
    const char* text;
    const char* expect;
  };
  const Case cases[] = {
      {"bogus 1", "line 1"},
      {"channel x \"n\"", "bad channel id"},
      {"channel 1 n", "expected quoted name"},
      {"channel 1 \"unterminated", "unterminated name"},
      {"channel 1 \"a\" part 0", "expected 'partition'"},
      {"attribute Region=1", "attribute before any channel"},
      {"policy Priority 1: A=1, Return ACCEPT", "policy before any channel"},
      {"channel 1 \"a\"\nattribute Region", "Name=Value"},
      {"channel 1 \"a\"\nattribute Region=1 when=5", "bad attribute bound"},
      {"channel 1 \"a\"\npolicy gibberish", "unparseable policy"},
      {"channel 1 \"a\"\nchannel 1 \"b\"", "duplicate channel id"},
  };
  for (const Case& c : cases) {
    const auto result = parse_catalog(c.text);
    EXPECT_FALSE(result.ok()) << c.text;
    EXPECT_NE(result.error.find(c.expect), std::string::npos)
        << c.text << " -> " << result.error;
    EXPECT_TRUE(result.channels.empty());
  }
}

TEST(CatalogParseTest, ErrorLineNumberPointsAtOffendingLine) {
  const auto result = parse_catalog("channel 1 \"a\"\n# fine\nbogus here");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error.find("line 3"), std::string::npos) << result.error;
}

// --- ViewingLog persistence ---

TEST(ViewingLogPersistenceTest, RoundTrip) {
  ViewingLog log;
  log.record({1, 10, util::parse_netaddr("10.0.0.1"), 100, false});
  log.record({1, 10, util::parse_netaddr("10.0.0.1"), 200, true});
  log.record({2, 10, util::parse_netaddr("10.0.0.2"), 300, false});
  log.record({1, 11, util::parse_netaddr("10.0.0.1"), 400, false});

  const ViewingLog restored = ViewingLog::decode(log.encode());
  EXPECT_EQ(restored.size(), 4u);
  EXPECT_EQ(restored.views_per_channel().at(10), 2u);
  EXPECT_EQ(restored.views_per_channel().at(11), 1u);
  // Latest-entry index rebuilt: renewal did not move user 1's entry.
  const ViewingLog::Entry* latest = restored.latest(1, 10);
  ASSERT_NE(latest, nullptr);
  EXPECT_EQ(latest->time, 100);
}

TEST(ViewingLogPersistenceTest, EmptyLog) {
  const ViewingLog restored = ViewingLog::decode(ViewingLog{}.encode());
  EXPECT_EQ(restored.size(), 0u);
}

TEST(ViewingLogPersistenceTest, CorruptedInputRejected) {
  ViewingLog log;
  log.record({1, 10, util::parse_netaddr("10.0.0.1"), 100, false});
  util::Bytes wire = log.encode();
  // Truncation.
  util::Bytes truncated(wire.begin(), wire.begin() + 10);
  EXPECT_THROW(ViewingLog::decode(truncated), util::WireError);
  // Trailing bytes.
  util::Bytes trailing = wire;
  trailing.push_back(0);
  EXPECT_THROW(ViewingLog::decode(trailing), util::WireError);
  // Implausible count.
  util::Bytes huge = wire;
  huge[0] = 0xff;
  huge[7] = 0xff;
  EXPECT_THROW(ViewingLog::decode(huge), util::WireError);
  // Bad renewal flag.
  util::Bytes bad_flag = wire;
  bad_flag.back() = 9;
  EXPECT_THROW(ViewingLog::decode(bad_flag), util::WireError);
}

}  // namespace
}  // namespace p2pdrm::services
