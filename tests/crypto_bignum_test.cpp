#include <gtest/gtest.h>

#include <stdexcept>

#include "crypto/bignum.h"
#include "crypto/chacha20.h"

namespace p2pdrm::crypto {
namespace {

TEST(BigUIntTest, ZeroBasics) {
  const BigUInt zero;
  EXPECT_TRUE(zero.is_zero());
  EXPECT_TRUE(zero.is_even());
  EXPECT_EQ(zero.bit_length(), 0u);
  EXPECT_EQ(zero.to_hex(), "0");
  EXPECT_EQ(zero.low_u64(), 0u);
}

TEST(BigUIntTest, U64Construction) {
  const BigUInt v(0x0123456789abcdefull);
  EXPECT_EQ(v.low_u64(), 0x0123456789abcdefull);
  EXPECT_EQ(v.to_hex(), "123456789abcdef");
  EXPECT_EQ(v.bit_length(), 57u);
  EXPECT_TRUE(v.is_odd());
}

TEST(BigUIntTest, BytesRoundTrip) {
  const util::Bytes raw = util::from_hex("00ffee010203");
  const BigUInt v = BigUInt::from_bytes_be(raw);
  EXPECT_EQ(v.to_hex(), "ffee010203");
  EXPECT_EQ(util::to_hex(v.to_bytes_be(6)), "00ffee010203");
  EXPECT_EQ(util::to_hex(v.to_bytes_be()), "ffee010203");
}

TEST(BigUIntTest, HexRoundTrip) {
  const BigUInt v = BigUInt::from_hex("deadbeefcafebabe0123456789");
  EXPECT_EQ(v.to_hex(), "deadbeefcafebabe0123456789");
  // Odd-length hex is padded.
  EXPECT_EQ(BigUInt::from_hex("abc").to_hex(), "abc");
}

TEST(BigUIntTest, Comparison) {
  EXPECT_LT(BigUInt(1), BigUInt(2));
  EXPECT_GT(BigUInt::from_hex("100000000"), BigUInt(0xffffffffull));
  EXPECT_EQ(BigUInt(5), BigUInt(5));
  EXPECT_LT(BigUInt(), BigUInt(1));
}

TEST(BigUIntTest, AdditionWithCarryChain) {
  const BigUInt a = BigUInt::from_hex("ffffffffffffffffffffffff");
  const BigUInt one(1);
  EXPECT_EQ((a + one).to_hex(), "1000000000000000000000000");
}

TEST(BigUIntTest, SubtractionWithBorrow) {
  const BigUInt a = BigUInt::from_hex("1000000000000000000000000");
  EXPECT_EQ((a - BigUInt(1)).to_hex(), "ffffffffffffffffffffffff");
  EXPECT_EQ((a - a).to_hex(), "0");
}

TEST(BigUIntTest, SubtractionUnderflowThrows) {
  EXPECT_THROW(BigUInt(1) - BigUInt(2), std::underflow_error);
}

TEST(BigUIntTest, Multiplication) {
  const BigUInt a = BigUInt::from_hex("123456789abcdef0");
  const BigUInt b = BigUInt::from_hex("fedcba9876543210");
  EXPECT_EQ((a * b).to_hex(), "121fa00ad77d7422236d88fe5618cf00");
  EXPECT_TRUE((a * BigUInt()).is_zero());
  EXPECT_EQ((a * BigUInt(1)), a);
}

TEST(BigUIntTest, Shifts) {
  const BigUInt v = BigUInt::from_hex("1234");
  EXPECT_EQ((v << 4).to_hex(), "12340");
  EXPECT_EQ((v << 32).to_hex(), "123400000000");
  EXPECT_EQ((v >> 4).to_hex(), "123");
  EXPECT_EQ((v >> 16).to_hex(), "0");
  EXPECT_EQ((v << 0), v);
  EXPECT_EQ((v >> 0), v);
  EXPECT_EQ(((v << 100) >> 100), v);
}

TEST(BigUIntTest, BitAccess) {
  const BigUInt v = BigUInt::from_hex("5");  // 101
  EXPECT_TRUE(v.bit(0));
  EXPECT_FALSE(v.bit(1));
  EXPECT_TRUE(v.bit(2));
  EXPECT_FALSE(v.bit(100));
}

TEST(BigUIntTest, DivisionBySmall) {
  const BigUInt a = BigUInt::from_hex("123456789abcdef0123456789abcdef0");
  const auto dm = BigUInt::divmod(a, BigUInt(7));
  EXPECT_EQ(dm.quotient * BigUInt(7) + dm.remainder, a);
  EXPECT_LT(dm.remainder, BigUInt(7));
}

TEST(BigUIntTest, DivisionMultiLimb) {
  const BigUInt u = BigUInt::from_hex(
      "ab54a98ceb1f0ad2ab54a98ceb1f0ad2ab54a98ceb1f0ad2");
  const BigUInt v = BigUInt::from_hex("123456789abcdef0fedcba98");
  const auto dm = BigUInt::divmod(u, v);
  EXPECT_EQ(dm.quotient * v + dm.remainder, u);
  EXPECT_LT(dm.remainder, v);
}

TEST(BigUIntTest, DivisionByZeroThrows) {
  EXPECT_THROW(BigUInt(1) / BigUInt(), std::domain_error);
  EXPECT_THROW(BigUInt(1) % BigUInt(), std::domain_error);
}

TEST(BigUIntTest, DivisionSmallerDividend) {
  const auto dm = BigUInt::divmod(BigUInt(5), BigUInt(100));
  EXPECT_TRUE(dm.quotient.is_zero());
  EXPECT_EQ(dm.remainder, BigUInt(5));
}

TEST(BigUIntTest, ModU32) {
  const BigUInt a = BigUInt::from_hex("123456789abcdef0123456789abcdef0");
  EXPECT_EQ(a.mod_u32(97), (a % BigUInt(97)).low_u64());
  EXPECT_EQ(BigUInt().mod_u32(5), 0u);
  EXPECT_THROW(a.mod_u32(0), std::domain_error);
}

// Property sweep: q*v + r == u and r < v for deterministic pseudo-random
// operands of many widths (this is the test that catches Knuth-D edge cases).
class DivModPropertyTest : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(DivModPropertyTest, Reconstructs) {
  const auto [u_bits, v_bits] = GetParam();
  SecureRandom rng(static_cast<std::uint64_t>(u_bits * 1000 + v_bits));
  for (int iter = 0; iter < 25; ++iter) {
    const BigUInt u = BigUInt::random_with_bits(rng, static_cast<std::size_t>(u_bits));
    const BigUInt v = BigUInt::random_with_bits(rng, static_cast<std::size_t>(v_bits));
    const auto dm = BigUInt::divmod(u, v);
    ASSERT_EQ(dm.quotient * v + dm.remainder, u)
        << "u=" << u.to_hex() << " v=" << v.to_hex();
    ASSERT_LT(dm.remainder, v);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Widths, DivModPropertyTest,
    ::testing::Values(std::pair{64, 32}, std::pair{64, 64}, std::pair{128, 64},
                      std::pair{256, 128}, std::pair{256, 255},
                      std::pair{512, 256}, std::pair{512, 33},
                      std::pair{1024, 512}, std::pair{1024, 1023},
                      std::pair{96, 65}, std::pair{160, 96}));

// Algorithm-D "add back" step is rare; force coverage with a known trigger
// pattern (Hacker's Delight test case family).
TEST(BigUIntTest, DivisionAddBackCase) {
  const BigUInt u = BigUInt::from_hex("7fffffff800000010000000000000000");
  const BigUInt v = BigUInt::from_hex("800000008000000200000005");
  const auto dm = BigUInt::divmod(u, v);
  EXPECT_EQ(dm.quotient * v + dm.remainder, u);
  EXPECT_LT(dm.remainder, v);
}

TEST(BigUIntTest, ModPowSmallNumbers) {
  // 3^7 mod 10 = 7 (odd modulus no longer than a limb)
  EXPECT_EQ(BigUInt::mod_pow(BigUInt(3), BigUInt(7), BigUInt(10)).low_u64(), 7u);
  // even modulus path: 5^3 mod 8 = 5
  EXPECT_EQ(BigUInt::mod_pow(BigUInt(5), BigUInt(3), BigUInt(8)).low_u64(), 5u);
  // exponent 0
  EXPECT_EQ(BigUInt::mod_pow(BigUInt(9), BigUInt(), BigUInt(7)).low_u64(), 1u);
  // base 0
  EXPECT_TRUE(BigUInt::mod_pow(BigUInt(), BigUInt(5), BigUInt(7)).is_zero());
}

TEST(BigUIntTest, ModPowMatchesNaive) {
  SecureRandom rng(99);
  for (int iter = 0; iter < 10; ++iter) {
    const std::uint64_t base = rng.uniform(1000) + 1;
    const std::uint64_t exp = rng.uniform(50);
    const std::uint64_t mod = (rng.uniform(500) * 2 + 3);  // odd, >= 3
    std::uint64_t expected = 1;
    for (std::uint64_t i = 0; i < exp; ++i) expected = (expected * base) % mod;
    EXPECT_EQ(BigUInt::mod_pow(BigUInt(base), BigUInt(exp), BigUInt(mod)).low_u64(),
              expected)
        << base << "^" << exp << " mod " << mod;
  }
}

TEST(BigUIntTest, FermatLittleTheorem) {
  // a^(p-1) = 1 mod p for prime p not dividing a.
  const BigUInt p = BigUInt::from_hex("ffffffffffffffffffffffffffffff61");  // 2^128-159, prime
  SecureRandom rng(5);
  for (int i = 0; i < 5; ++i) {
    const BigUInt a = BigUInt::random_below(rng, p - BigUInt(2)) + BigUInt(2);
    EXPECT_EQ(BigUInt::mod_pow(a, p - BigUInt(1), p), BigUInt(1));
  }
}

TEST(BigUIntTest, MontgomeryMatchesEvenFallbackStyle) {
  // Cross-check the Montgomery path against the plain square-and-multiply
  // (driven through an even-looking computation done manually).
  SecureRandom rng(123);
  for (int iter = 0; iter < 8; ++iter) {
    BigUInt m = BigUInt::random_with_bits(rng, 128);
    if (m.is_even()) m += BigUInt(1);
    const BigUInt base = BigUInt::random_with_bits(rng, 200);
    const BigUInt exp = BigUInt::random_with_bits(rng, 64);

    // Reference: repeated square-and-multiply with divmod reductions.
    BigUInt result(1);
    BigUInt b = base % m;
    for (std::size_t i = exp.bit_length(); i-- > 0;) {
      result = (result * result) % m;
      if (exp.bit(i)) result = (result * b) % m;
    }
    EXPECT_EQ(BigUInt::mod_pow(base, exp, m), result);
  }
}

TEST(MontgomeryTest, RejectsEvenModulus) {
  EXPECT_THROW(Montgomery(BigUInt(8)), std::domain_error);
  EXPECT_THROW(Montgomery(BigUInt(1)), std::domain_error);
}

TEST(BigUIntTest, Gcd) {
  EXPECT_EQ(BigUInt::gcd(BigUInt(48), BigUInt(36)).low_u64(), 12u);
  EXPECT_EQ(BigUInt::gcd(BigUInt(17), BigUInt(5)).low_u64(), 1u);
  EXPECT_EQ(BigUInt::gcd(BigUInt(), BigUInt(7)).low_u64(), 7u);
  EXPECT_EQ(BigUInt::gcd(BigUInt(7), BigUInt()).low_u64(), 7u);
}

TEST(BigUIntTest, ModInverse) {
  SecureRandom rng(31);
  const BigUInt m = BigUInt::from_hex("ffffffffffffffffffffffffffffff61");
  for (int i = 0; i < 8; ++i) {
    const BigUInt a = BigUInt::random_below(rng, m - BigUInt(1)) + BigUInt(1);
    const BigUInt inv = BigUInt::mod_inverse(a, m);
    EXPECT_EQ((a * inv) % m, BigUInt(1));
  }
}

TEST(BigUIntTest, ModInverseOfOne) {
  EXPECT_EQ(BigUInt::mod_inverse(BigUInt(1), BigUInt(97)), BigUInt(1));
}

TEST(BigUIntTest, ModInverseNonCoprimeThrows) {
  EXPECT_THROW(BigUInt::mod_inverse(BigUInt(6), BigUInt(9)), std::domain_error);
}

TEST(BigUIntTest, RandomWithBitsExactWidth) {
  SecureRandom rng(71);
  for (std::size_t bits : {8u, 17u, 32u, 33u, 64u, 100u, 256u}) {
    for (int i = 0; i < 5; ++i) {
      EXPECT_EQ(BigUInt::random_with_bits(rng, bits).bit_length(), bits);
    }
  }
}

TEST(BigUIntTest, RandomBelowRespectsBound) {
  SecureRandom rng(73);
  const BigUInt bound = BigUInt::from_hex("1000000000000001");
  for (int i = 0; i < 50; ++i) {
    EXPECT_LT(BigUInt::random_below(rng, bound), bound);
  }
}

// --- golden vectors generated independently with Python's arbitrary-
// precision integers (random.seed(777)) ---

struct DivModVector {
  const char* u;
  const char* v;
  const char* q;
  const char* r;
};

TEST(BigUIntGoldenTest, DivModAgainstPython) {
  const DivModVector vectors[] = {
      {"89a560d8297d4d495104513e9a493548b905e5c7474fdec65fe721297377222d7283ab5a383",
       "3a625b7218d06eec35bea10a3bf4d9c097ce13",
       "25b8b002f2bfc6394c6288ee0da2afc4c94699",
       "13b835d2dc6eaaf555d9841fc8a06644b74828"},
      {"b11d3f578cede15ff11eefb5c0fe3f7f14e06fc89649f9b43a99fb6ec663bc45c18c1a87369f4b56d2ab00ca3e",
       "2f5cbd5bdb589bdd1a845f0d554949efe35fed0d13f6a1e7",
       "3bd541b37663d4ce078a5533dbbe2109962b5dc9d78",
       "2e82f9b0592e63f5127220c0305ae4327fba19998963af6"},
      {"aa17739631b6ebfdd447364c8959f352e4983b1175698042793a9ba74a4ae0b71d637d8f2005075e8e99662adeefe4237fe0733f5",
       "34cfae3e63d07da4792027d9dd804b29624fefc8ef35ae2cd6def04b77",
       "33882c81681cf68dc64d4f184c1255a21144d899327af1d3",
       "33364149b24f045da50413b293b0fa98281803708d726255ddd237f9e0"},
      {"de6d73444660ac57a96e030a8be16eab8beeb02e138b7d0186a09d76939d412c25d6e1559c10c03b591e8c2308bb2028cd8d4c489635f0716a3dfe43",
       "1c1b02cb40cd2b05600a73465a408c5ee086182163037f058744b0a52a49c6610001",
       "7e9fd1f9f34d98f3ddda3645037c2003b62380336671002219ea5",
       "6f1f98b79afb952a87a1e20e8b864260178673003d8bd97f74254526ae3ad975f9e"},
  };
  for (const DivModVector& v : vectors) {
    const auto dm = BigUInt::divmod(BigUInt::from_hex(v.u), BigUInt::from_hex(v.v));
    EXPECT_EQ(dm.quotient.to_hex(), v.q);
    EXPECT_EQ(dm.remainder.to_hex(), v.r);
  }
}

struct ModPowVector {
  const char* base;
  const char* exp;
  const char* mod;
  const char* expected;
};

TEST(BigUIntGoldenTest, ModPowAgainstPython) {
  const ModPowVector vectors[] = {
      {"6016a50459621e1360907f6085a8f5fe2337ddb56441a81490",
       "7aec65f393401ccfbba0942d90fe01",
       "147b3c3ee4defae8f9275f3e2e66b7d64c50c5689443a8710583debbedd5e4b",
       "cf0644ae0e9506e64d1728be17b9041f33249efaf22c0638781997a57dba5a"},
      {"1f2c31775afdd61a04183589e9fc81e9993010b8c24e702f85",
       "8a8e89504eb52d57fa6978df317b6",
       "1117e75a5b063e543c31538e1e3545b9628371e78a4d89ff9eda1e901989e71",
       "a2b7cce7a5e18a52cc37d8aa5e492df58b5b0c9cbd2756b752b438b17b9a68"},
      {"e7cda915ff1eb59167b2d30d162b2336c102bcdfd6d38517c1",
       "1ff39d62b956857f5b2384a46be223",
       "1c786f766242e436c1c040a67eea237d111122f7f6cf171a9b81f92a759ee5b",
       "16f8b8a0bc4b9ebea951aa83e7d429b49f25d7fc0020343599496dc30575d74"},
      {"5b8cb2be9fa0c21aa2a3f82949ad99260e96e78e4257d99977",
       "81917d9ae35f008a9fe779ad113eb4",
       "12568c75fb595f2d2501595e2a7eb3e0dab9490ce6452db9c47f4ee0d7801a7",
       "3e3bcf56c55002617d27a226043c3cdeace754baeae8abc4f061722bf1551b"},
      // even modulus (exercises the non-Montgomery fallback)
      {"ed5afe54494ded5dfe661b021", "b282907826", "4994eaadb140c2268fcffa6f1bbe68",
       "4088713941752d3415374f81916279"},
  };
  for (const ModPowVector& v : vectors) {
    EXPECT_EQ(BigUInt::mod_pow(BigUInt::from_hex(v.base), BigUInt::from_hex(v.exp),
                               BigUInt::from_hex(v.mod))
                  .to_hex(),
              v.expected);
  }
}

struct ModInverseVector {
  const char* a;
  const char* m;
  const char* inv;
};

TEST(BigUIntGoldenTest, ModInverseAgainstPython) {
  const ModInverseVector vectors[] = {
      {"4d1fc444ac763488b4a11ebc88f4514acce32531c65aa",
       "d5e7fe266be8a52c6daf53638f7d7a4f47a941ad93b422ffbf",
       "37444229fe24cc9acd36adea3fafeaf8093d333a98db8f0ae0"},
      {"1252fc5f34db0fe76cc167625ee2c1628dbf82afda1b9",
       "9171c6563f97bfbd488e9ee0a2e64ffb1528166f6f6d288d41",
       "8ddcf96d9d5f532a635db4608f9f066b2ae600601ad02bdc8b"},
      {"1b0cbde079eaea48e8c66216647fa9d1852a7338025f4",
       "be9a1b929eaab8999eedc47b8862f5b39c18efb83b56d821cf",
       "5d9024f8422191a03821b48a017e10796291278d250f60194c"},
  };
  for (const ModInverseVector& v : vectors) {
    EXPECT_EQ(
        BigUInt::mod_inverse(BigUInt::from_hex(v.a), BigUInt::from_hex(v.m)).to_hex(),
        v.inv);
  }
}

TEST(PrimalityTest, SmallPrimes) {
  SecureRandom rng(1);
  for (std::uint64_t p : {2u, 3u, 5u, 7u, 11u, 13u, 97u, 1009u, 7919u}) {
    EXPECT_TRUE(is_probable_prime(BigUInt(p), rng)) << p;
  }
}

TEST(PrimalityTest, SmallComposites) {
  SecureRandom rng(2);
  for (std::uint64_t c : {1u, 4u, 6u, 9u, 15u, 100u, 1001u, 7917u}) {
    EXPECT_FALSE(is_probable_prime(BigUInt(c), rng)) << c;
  }
}

TEST(PrimalityTest, CarmichaelNumbers) {
  // Fermat pseudoprimes that Miller–Rabin must still reject.
  SecureRandom rng(3);
  for (std::uint64_t c : {561u, 1105u, 1729u, 2465u, 2821u, 6601u, 8911u}) {
    EXPECT_FALSE(is_probable_prime(BigUInt(c), rng)) << c;
  }
}

TEST(PrimalityTest, KnownLargePrime) {
  SecureRandom rng(4);
  // 2^127 - 1 (Mersenne prime)
  const BigUInt m127 = (BigUInt(1) << 127) - BigUInt(1);
  EXPECT_TRUE(is_probable_prime(m127, rng));
  // 2^128 - 1 is composite.
  EXPECT_FALSE(is_probable_prime((BigUInt(1) << 128) - BigUInt(1), rng));
}

TEST(PrimalityTest, GeneratePrimeWidthAndPrimality) {
  SecureRandom rng(6);
  const BigUInt p = generate_prime(rng, 128);
  EXPECT_EQ(p.bit_length(), 128u);
  EXPECT_TRUE(p.is_odd());
  EXPECT_TRUE(is_probable_prime(p, rng));
}

}  // namespace
}  // namespace p2pdrm::crypto
