// Threat-model scenarios (§IV-G): ticket capture and replay, peer-list
// substitution, stolen credentials, and compromised-client boundaries —
// each exercised end-to-end against the real service stack.
#include <gtest/gtest.h>

#include "client/testbed.h"

namespace p2pdrm::client {
namespace {

using core::DrmError;
using util::kMinute;

class ThreatModelTest : public ::testing::Test {
 protected:
  ThreatModelTest() : tb_(make_config()) {
    tb_.add_user("victim@example.com", "victims-password");
    tb_.add_user("attacker@example.com", "attackers-password");
    region_ = tb_.geo().region_at(0);
    tb_.add_regional_channel(1, "news", region_);
    tb_.start_channel_server(1);
  }

  static TestbedConfig make_config() {
    TestbedConfig cfg;
    cfg.seed = 1337;
    return cfg;
  }

  Testbed tb_;
  geo::RegionId region_ = 0;
};

// §IV-G1: "an attacker that has a client's User Ticket but not the client's
// private key cannot do much with the ticket."
TEST_F(ThreatModelTest, StolenUserTicketUselessWithoutPrivateKey) {
  Client& victim = tb_.add_client("victim@example.com", "victims-password", region_);
  ASSERT_EQ(victim.login(), DrmError::kOk);

  // Attacker captures the victim's User Ticket bytes off the wire and
  // presents them from the victim's own address (strongest position).
  const util::Bytes stolen = victim.user_ticket()->encode();
  core::Switch1Request r1;
  r1.user_ticket = stolen;
  r1.channel_id = 1;
  const core::Switch1Response resp1 =
      tb_.switch1(0, r1, victim.config().addr);
  ASSERT_EQ(resp1.error, DrmError::kOk);  // challenge is issued...

  // ...but SWITCH2 requires a signature with the private key certified in
  // the ticket, which the attacker does not hold.
  crypto::SecureRandom rng(1);
  const crypto::RsaKeyPair attacker_keys = crypto::generate_rsa_keypair(rng, 512);
  core::Switch2Request r2;
  r2.user_ticket = stolen;
  r2.channel_id = 1;
  r2.challenge = resp1.challenge;
  r2.proof = crypto::rsa_sign(attacker_keys.priv, resp1.challenge.nonce);
  EXPECT_EQ(tb_.switch2(0, r2, victim.config().addr).error,
            DrmError::kBadCredentials);
}

// §IV-G1: a Channel Ticket captured during the join procedure cannot yield
// content keys without the victim's private key.
TEST_F(ThreatModelTest, CapturedChannelTicketYieldsNoKeys) {
  Client& victim = tb_.add_client("victim@example.com", "victims-password", region_);
  ASSERT_EQ(victim.login(), DrmError::kOk);
  ASSERT_EQ(victim.switch_channel(1), DrmError::kOk);

  // The attacker captured the ticket bytes (peers see them during join) and
  // replays the join — even spoofing the victim's network address.
  const util::Bytes stolen = victim.channel_ticket()->encode();
  core::JoinRequest req;
  req.channel_ticket = stolen;
  const core::JoinResponse resp =
      tb_.join(1 + 1 /* root node of channel 1 */, req, victim.config().addr,
               /*self=*/4242);
  // The peer accepts (it cannot distinguish), but the session key is
  // encrypted under the *victim's* certified public key.
  ASSERT_EQ(resp.error, DrmError::kOk);
  crypto::SecureRandom rng(2);
  const crypto::RsaKeyPair attacker_keys = crypto::generate_rsa_keypair(rng, 512);
  EXPECT_FALSE(crypto::rsa_decrypt(attacker_keys.priv, resp.encrypted_session_key)
                   .has_value());
}

// §IV-G1: the peer list is deliberately unsigned; an attacker who controls
// the victim's traffic substitutes itself. The damage is bounded: it can
// capture the (useless, see above) ticket or deny service — it cannot mint
// decryptable keys without being an authorized peer itself.
TEST_F(ThreatModelTest, SubstitutedPeerListBoundedDamage) {
  Client& victim = tb_.add_client("victim@example.com", "victims-password", region_);
  ASSERT_EQ(victim.login(), DrmError::kOk);
  ASSERT_EQ(victim.switch_channel(1), DrmError::kOk);

  // A fake "peer" (node id that maps to nothing in the overlay) is what a
  // substituted list would point the client at: the join simply fails and
  // the client can fall back to other peers — denial, not compromise.
  core::JoinRequest req;
  req.channel_ticket = victim.channel_ticket()->encode();
  const core::JoinResponse resp =
      tb_.join(/*target=*/999999, req, victim.config().addr, victim.config().node);
  EXPECT_NE(resp.error, DrmError::kOk);
}

// Replaying a whole captured LOGIN2 gets the attacker a ticket bound to the
// victim's public key — which it cannot use (no private key). Verified via
// the ticket's certified key.
TEST_F(ThreatModelTest, ReplayedLogin2YieldsUnusableTicket) {
  Client& victim = tb_.add_client("victim@example.com", "victims-password", region_);
  ASSERT_EQ(victim.login(), DrmError::kOk);
  // The replayed response would carry the same certified key.
  EXPECT_EQ(victim.user_ticket()->ticket.client_public_key, victim.public_key());
}

// An eavesdropper on LOGIN1 cannot recover the nonce (password-encrypted),
// so it cannot complete the login as the victim even with captured traffic.
TEST_F(ThreatModelTest, Login1EavesdropperLearnsNoNonce) {
  crypto::SecureRandom rng(3);
  const crypto::RsaKeyPair attacker_keys = crypto::generate_rsa_keypair(rng, 512);
  core::Login1Request req;
  req.email = "victim@example.com";
  req.client_public_key = attacker_keys.pub;
  req.client_version = 1;
  const core::Login1Response resp =
      tb_.login1(req, tb_.geo().sample_address(rng, region_));
  ASSERT_EQ(resp.error, DrmError::kOk);
  // The clear part of the response carries no nonce...
  EXPECT_TRUE(resp.challenge.nonce.empty());
  // ...and the encrypted part does not open without the password.
  EXPECT_FALSE(core::decrypt_with_shp(core::password_hash("guess1"),
                                      resp.encrypted_params)
                   .has_value());
}

// Account sharing across regions: credentials shared with someone in
// another region do not unlock region-locked channels there.
TEST_F(ThreatModelTest, SharedCredentialsDontCrossRegions) {
  TestbedConfig cfg = make_config();
  cfg.geo_plan.num_regions = 2;
  Testbed tb(cfg);
  tb.add_user("victim@example.com", "pw");
  tb.add_regional_channel(1, "region0-only", tb.geo().region_at(0));
  tb.start_channel_server(1);

  Client& foreign = tb.add_client("victim@example.com", "pw", tb.geo().region_at(1));
  ASSERT_EQ(foreign.login(), DrmError::kOk);
  EXPECT_EQ(foreign.switch_channel(1), DrmError::kAccessDenied);
}

// A client whose binary was patched fails attestation at the next login —
// the per-login random window makes precomputed checksums useless.
TEST_F(ThreatModelTest, PatchedClientEventuallyCaughtByRandomWindows) {
  Client& victim = tb_.add_client("victim@example.com", "victims-password", region_);
  ASSERT_EQ(victim.login(), DrmError::kOk);

  // Attacker runs a patched binary under the victim's credentials.
  ClientConfig cc = victim.config();
  cc.client_binary[cc.client_binary.size() / 2] ^= 0xff;  // one patched byte
  cc.node = 777;
  crypto::SecureRandom rng(4);
  Client patched(cc, tb_, tb_.clock(), std::move(rng));

  // A single-byte patch escapes some windows; repeated logins (fresh random
  // windows each time) catch it with overwhelming probability.
  int failures = 0;
  for (int i = 0; i < 30; ++i) {
    if (patched.login() == DrmError::kAttestationFailed) ++failures;
  }
  EXPECT_GT(failures, 0);
}

// Ticket lifetimes bound how long any captured ticket is worth anything.
TEST_F(ThreatModelTest, ExpiredTicketsRejectedEverywhere) {
  Client& victim = tb_.add_client("victim@example.com", "victims-password", region_);
  ASSERT_EQ(victim.login(), DrmError::kOk);
  ASSERT_EQ(victim.switch_channel(1), DrmError::kOk);
  const util::Bytes user_ticket = victim.user_ticket()->encode();
  const util::Bytes channel_ticket = victim.channel_ticket()->encode();

  tb_.clock().advance(31 * kMinute);  // past both lifetimes

  core::Switch1Request r1;
  r1.user_ticket = user_ticket;
  r1.channel_id = 1;
  EXPECT_EQ(tb_.switch1(0, r1, victim.config().addr).error,
            DrmError::kTicketExpired);

  core::JoinRequest jr;
  jr.channel_ticket = channel_ticket;
  EXPECT_EQ(tb_.join(2, jr, victim.config().addr, victim.config().node).error,
            DrmError::kTicketExpired);
}

}  // namespace
}  // namespace p2pdrm::client
