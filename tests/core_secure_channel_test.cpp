#include <gtest/gtest.h>

#include "core/secure_channel.h"
#include "crypto/chacha20.h"

namespace p2pdrm::core {
namespace {

using util::Bytes;
using util::bytes_of;

const crypto::RsaKeyPair& server_keys() {
  static const crypto::RsaKeyPair kp = [] {
    crypto::SecureRandom rng(321);
    return crypto::generate_rsa_keypair(rng, 512);
  }();
  return kp;
}

struct Pair {
  SecureSession client;
  SecureSession server;
};

Pair handshake() {
  crypto::SecureRandom rng(5);
  ClientHandshake ch = secure_channel_initiate(server_keys().pub, rng);
  // Round-trip the hello through its wire encoding like a deployment would.
  const SecureHello decoded = SecureHello::decode(ch.hello.encode());
  auto server = secure_channel_accept(decoded, server_keys().priv);
  EXPECT_TRUE(server.has_value());
  return Pair{std::move(ch.session), std::move(*server)};
}

TEST(SecureChannelTest, ClientToServerRoundTrip) {
  Pair p = handshake();
  const Bytes record = p.client.seal(bytes_of("LOGIN1 request bytes"));
  const auto opened = p.server.open(record);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, bytes_of("LOGIN1 request bytes"));
}

TEST(SecureChannelTest, ServerToClientRoundTrip) {
  Pair p = handshake();
  const Bytes record = p.server.seal(bytes_of("ticket inside"));
  const auto opened = p.client.open(record);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, bytes_of("ticket inside"));
}

TEST(SecureChannelTest, ManyRecordsInOrder) {
  Pair p = handshake();
  for (int i = 0; i < 50; ++i) {
    const Bytes msg = bytes_of("msg " + std::to_string(i));
    const auto opened = p.server.open(p.client.seal(msg));
    ASSERT_TRUE(opened.has_value()) << i;
    EXPECT_EQ(*opened, msg);
  }
  EXPECT_EQ(p.client.records_sent(), 50u);
  EXPECT_EQ(p.server.records_received(), 50u);
}

TEST(SecureChannelTest, CiphertextHidesPlaintext) {
  Pair p = handshake();
  const Bytes secret = bytes_of("user ticket with subscriptions");
  const Bytes record = p.client.seal(secret);
  const std::string wire(record.begin(), record.end());
  EXPECT_EQ(wire.find("subscriptions"), std::string::npos);
}

TEST(SecureChannelTest, SamePlaintextDifferentRecords) {
  Pair p = handshake();
  const Bytes a = p.client.seal(bytes_of("same"));
  const Bytes b = p.client.seal(bytes_of("same"));
  EXPECT_NE(a, b);  // sequence number keys the stream
}

TEST(SecureChannelTest, TamperingRejected) {
  const Bytes reference = handshake().client.seal(bytes_of("payload"));
  for (std::size_t pos = 0; pos < reference.size(); pos += 7) {
    // Fresh sessions each round so sequence state is identical.
    Pair p = handshake();
    Bytes record = p.client.seal(bytes_of("payload"));
    record[pos] ^= 0x01;
    EXPECT_FALSE(p.server.open(record).has_value()) << "pos " << pos;
  }
}

TEST(SecureChannelTest, ReplayRejected) {
  Pair p = handshake();
  const Bytes record = p.client.seal(bytes_of("one-shot"));
  ASSERT_TRUE(p.server.open(record).has_value());
  EXPECT_FALSE(p.server.open(record).has_value());  // replay
}

TEST(SecureChannelTest, ReorderRejected) {
  Pair p = handshake();
  const Bytes first = p.client.seal(bytes_of("first"));
  const Bytes second = p.client.seal(bytes_of("second"));
  EXPECT_FALSE(p.server.open(second).has_value());  // out of order
  EXPECT_TRUE(p.server.open(first).has_value());
}

TEST(SecureChannelTest, ReflectionRejected) {
  // A client record bounced back at the client must not open (directions
  // use distinct keys).
  Pair p = handshake();
  const Bytes record = p.client.seal(bytes_of("to server"));
  EXPECT_FALSE(p.client.open(record).has_value());
}

TEST(SecureChannelTest, WrongServerKeyFailsAccept) {
  crypto::SecureRandom rng(6);
  const crypto::RsaKeyPair other = crypto::generate_rsa_keypair(rng, 512);
  ClientHandshake ch = secure_channel_initiate(server_keys().pub, rng);
  EXPECT_FALSE(secure_channel_accept(ch.hello, other.priv).has_value());
}

TEST(SecureChannelTest, GarbageHelloFailsAccept) {
  SecureHello hello;
  hello.encrypted_master = bytes_of("not rsa at all");
  EXPECT_FALSE(secure_channel_accept(hello, server_keys().priv).has_value());
}

TEST(SecureChannelTest, TruncatedRecordRejected) {
  Pair p = handshake();
  Bytes record = p.client.seal(bytes_of("payload"));
  record.resize(record.size() / 2);
  EXPECT_FALSE(p.server.open(record).has_value());
}

TEST(SecureChannelTest, EmptyPlaintextWorks) {
  Pair p = handshake();
  const auto opened = p.server.open(p.client.seal({}));
  ASSERT_TRUE(opened.has_value());
  EXPECT_TRUE(opened->empty());
}

}  // namespace
}  // namespace p2pdrm::core
