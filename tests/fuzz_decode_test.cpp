// Decoder robustness: every wire decoder in the system is fed random bytes
// and mutated valid encodings. The contract: decoders either succeed or
// throw util::WireError — never crash, never hang, never throw anything
// else. (Handlers rely on this to turn malformed input into protocol
// rejections.)
#include <gtest/gtest.h>

#include <functional>

#include "core/content.h"
#include "core/messages.h"
#include "core/secure_channel.h"
#include "core/ticket.h"
#include "crypto/chacha20.h"
#include "net/envelope.h"
#include "services/catalog.h"
#include "services/channel_manager.h"
#include "services/durable_ops.h"
#include "services/redirection_manager.h"
#include "store/farm_store.h"
#include "store/journal.h"
#include "store/snapshot.h"

namespace p2pdrm {
namespace {

using util::Bytes;

struct Decoder {
  const char* name;
  std::function<void(util::BytesView)> decode;
};

std::vector<Decoder> all_decoders() {
  return {
      {"UserTicket", [](util::BytesView b) { core::UserTicket::decode(b); }},
      {"ChannelTicket", [](util::BytesView b) { core::ChannelTicket::decode(b); }},
      {"SignedUserTicket",
       [](util::BytesView b) { core::SignedUserTicket::decode(b); }},
      {"SignedChannelTicket",
       [](util::BytesView b) { core::SignedChannelTicket::decode(b); }},
      {"Login1Request", [](util::BytesView b) { core::Login1Request::decode(b); }},
      {"Login1Response", [](util::BytesView b) { core::Login1Response::decode(b); }},
      {"Login2Request", [](util::BytesView b) { core::Login2Request::decode(b); }},
      {"Login2Response", [](util::BytesView b) { core::Login2Response::decode(b); }},
      {"Switch1Request", [](util::BytesView b) { core::Switch1Request::decode(b); }},
      {"Switch1Response", [](util::BytesView b) { core::Switch1Response::decode(b); }},
      {"Switch2Request", [](util::BytesView b) { core::Switch2Request::decode(b); }},
      {"Switch2Response", [](util::BytesView b) { core::Switch2Response::decode(b); }},
      {"JoinRequest", [](util::BytesView b) { core::JoinRequest::decode(b); }},
      {"JoinResponse", [](util::BytesView b) { core::JoinResponse::decode(b); }},
      {"ChannelListRequest",
       [](util::BytesView b) { core::ChannelListRequest::decode(b); }},
      {"ChannelListResponse",
       [](util::BytesView b) { core::ChannelListResponse::decode(b); }},
      {"ContentPacket", [](util::BytesView b) { core::ContentPacket::decode(b); }},
      {"SecureHello", [](util::BytesView b) { core::SecureHello::decode(b); }},
      {"RedirectRequest",
       [](util::BytesView b) { services::RedirectRequest::decode(b); }},
      {"RedirectResponse",
       [](util::BytesView b) { services::RedirectResponse::decode(b); }},
      {"ChannelRecord",
       [](util::BytesView b) {
         util::WireReader r(b);
         core::ChannelRecord::decode(r);
       }},
      {"AttributeSet",
       [](util::BytesView b) {
         util::WireReader r(b);
         core::AttributeSet::decode(r);
       }},
      {"Challenge",
       [](util::BytesView b) {
         util::WireReader r(b);
         core::Challenge::decode(r);
       }},
      {"BusyPayload", [](util::BytesView b) { net::BusyPayload::decode(b); }},
      {"Snapshot", [](util::BytesView b) { store::Snapshot::decode(b); }},
      {"ReplicatedOp", [](util::BytesView b) { store::ReplicatedOp::decode(b); }},
      {"ViewingEntry",
       [](util::BytesView b) { services::decode_viewing_entry(b); }},
      {"UserRecord", [](util::BytesView b) { services::decode_user_record(b); }},
      {"UserDirectory",
       [](util::BytesView b) { services::decode_user_directory(b); }},
  };
}

/// Run one buffer through a decoder; only success or WireError is legal.
void expect_graceful(const Decoder& decoder, const Bytes& input) {
  try {
    decoder.decode(input);
  } catch (const util::WireError&) {
    // expected failure mode
  } catch (const std::exception& e) {
    FAIL() << decoder.name << " threw non-WireError: " << e.what();
  }
}

TEST(FuzzDecodeTest, RandomBytes) {
  crypto::SecureRandom rng(0xf22);
  for (const Decoder& decoder : all_decoders()) {
    for (int iter = 0; iter < 200; ++iter) {
      const std::size_t len = static_cast<std::size_t>(rng.uniform(512));
      expect_graceful(decoder, rng.bytes(len));
    }
  }
}

TEST(FuzzDecodeTest, EmptyInput) {
  for (const Decoder& decoder : all_decoders()) {
    expect_graceful(decoder, {});
  }
}

TEST(FuzzDecodeTest, AllZeros) {
  for (const Decoder& decoder : all_decoders()) {
    for (std::size_t len : {1u, 4u, 16u, 64u, 256u}) {
      expect_graceful(decoder, Bytes(len, 0));
    }
  }
}

TEST(FuzzDecodeTest, AllOnes) {
  // 0xff bytes maximize length prefixes — the classic overallocation trap.
  for (const Decoder& decoder : all_decoders()) {
    for (std::size_t len : {4u, 16u, 64u}) {
      expect_graceful(decoder, Bytes(len, 0xff));
    }
  }
}

TEST(FuzzDecodeTest, MutatedValidTicket) {
  crypto::SecureRandom rng(77);
  const crypto::RsaKeyPair keys = crypto::generate_rsa_keypair(rng, 512);
  core::UserTicket ticket;
  ticket.user_in = 1;
  ticket.client_public_key = keys.pub;
  ticket.expiry_time = 100;
  core::Attribute a;
  a.name = core::kAttrRegion;
  a.value = core::AttrValue::of("100");
  ticket.attributes.add(a);
  const Bytes valid = core::SignedUserTicket::sign(ticket, keys.priv).encode();

  const Decoder decoder{"SignedUserTicket", [](util::BytesView b) {
                          core::SignedUserTicket::decode(b);
                        }};
  for (int iter = 0; iter < 500; ++iter) {
    Bytes mutated = valid;
    const int mutations = 1 + static_cast<int>(rng.uniform(4));
    for (int m = 0; m < mutations; ++m) {
      const std::size_t pos = static_cast<std::size_t>(rng.uniform(mutated.size()));
      mutated[pos] = static_cast<std::uint8_t>(rng.next_u32());
    }
    expect_graceful(decoder, mutated);
  }
}

TEST(FuzzDecodeTest, TruncatedValidMessages) {
  crypto::SecureRandom rng(78);
  const crypto::RsaKeyPair keys = crypto::generate_rsa_keypair(rng, 512);
  core::Login2Request req;
  req.email = "user@example.com";
  req.client_public_key = keys.pub;
  req.checksum = rng.bytes(32);
  req.challenge = core::make_challenge(rng.bytes(32), "login", rng.bytes(8),
                                       rng.bytes(core::kNonceSize), 0);
  req.proof = rng.bytes(64);
  const Bytes valid = req.encode();

  const Decoder decoder{"Login2Request", [](util::BytesView b) {
                          core::Login2Request::decode(b);
                        }};
  for (std::size_t len = 0; len < valid.size(); ++len) {
    expect_graceful(decoder, Bytes(valid.begin(),
                                   valid.begin() + static_cast<std::ptrdiff_t>(len)));
  }
}

TEST(FuzzDecodeTest, CatalogParserNeverThrows) {
  // The operator config parser reports errors by value; no input may make
  // it throw or crash.
  crypto::SecureRandom rng(80);
  const char charset[] = "channel attribute policy Priority Return ACCEPT REJECT "
                         "\"= &:,0123456789\n\t#";
  for (int iter = 0; iter < 500; ++iter) {
    std::string text;
    const std::size_t len = rng.uniform(400);
    for (std::size_t i = 0; i < len; ++i) {
      text.push_back(charset[rng.uniform(sizeof(charset) - 1)]);
    }
    const services::CatalogParseResult result = services::parse_catalog(text);
    // Either parses or reports an error; never both empty-and-failed states.
    if (!result.ok()) EXPECT_TRUE(result.channels.empty());
  }
}

TEST(FuzzDecodeTest, PolicyParserNeverThrows) {
  crypto::SecureRandom rng(81);
  const char charset[] = "Priority Return ACCEPT REJECT Region=ANY &:,0123456789 ";
  for (int iter = 0; iter < 1000; ++iter) {
    std::string text;
    const std::size_t len = rng.uniform(120);
    for (std::size_t i = 0; i < len; ++i) {
      text.push_back(charset[rng.uniform(sizeof(charset) - 1)]);
    }
    (void)core::parse_policy(text);  // must not throw
  }
}

TEST(FuzzDecodeTest, ViewingLogDecodeGraceful) {
  crypto::SecureRandom rng(82);
  for (int iter = 0; iter < 300; ++iter) {
    const Bytes input = rng.bytes(rng.uniform(200));
    try {
      (void)services::ViewingLog::decode(input);
    } catch (const util::WireError&) {
    }
  }
}

TEST(FuzzDecodeTest, BusyPayloadRoundTrip) {
  net::BusyPayload busy;
  busy.retry_after = 1500 * util::kMillisecond;
  busy.queue_depth = 42;
  const net::BusyPayload back = net::BusyPayload::decode(busy.encode());
  EXPECT_EQ(back.retry_after, busy.retry_after);
  EXPECT_EQ(back.queue_depth, busy.queue_depth);
}

TEST(FuzzDecodeTest, BusyPayloadTruncationsRejected) {
  net::BusyPayload busy;
  busy.retry_after = 2 * util::kSecond;
  busy.queue_depth = 7;
  const Bytes valid = busy.encode();
  for (std::size_t len = 0; len < valid.size(); ++len) {
    EXPECT_THROW(net::BusyPayload::decode(Bytes(
                     valid.begin(), valid.begin() + static_cast<std::ptrdiff_t>(len))),
                 util::WireError)
        << "truncated to " << len << " bytes";
  }
  Bytes trailing = valid;
  trailing.push_back(0);
  EXPECT_THROW(net::BusyPayload::decode(trailing), util::WireError);
}

TEST(FuzzDecodeTest, BusyPayloadRetryAfterRangeChecked) {
  // A malicious/corrupt BUSY must not park a client forever (or travel back
  // in time): retry-after is bounded to [0, kMaxRetryAfter] at decode.
  for (const util::SimTime bad : {static_cast<util::SimTime>(-1),
                                  net::BusyPayload::kMaxRetryAfter + 1,
                                  std::numeric_limits<util::SimTime>::max(),
                                  std::numeric_limits<util::SimTime>::min()}) {
    util::WireWriter w;
    w.i64(bad);
    w.u32(1);
    EXPECT_THROW(net::BusyPayload::decode(w.take()), util::WireError)
        << "retry_after " << bad;
  }
  // The boundary itself is legal.
  util::WireWriter w;
  w.i64(net::BusyPayload::kMaxRetryAfter);
  w.u32(0);
  EXPECT_EQ(net::BusyPayload::decode(w.take()).retry_after,
            net::BusyPayload::kMaxRetryAfter);
}

TEST(FuzzDecodeTest, EnvelopeRejectsKindsPastBusy) {
  // kBusy widened the envelope's kind range; anything beyond it must still
  // be rejected (forward compatibility stays an explicit decision).
  net::Envelope env;
  env.kind = net::MsgKind::kBusy;
  env.request_id = 9;
  env.payload = net::BusyPayload{}.encode();
  const Bytes wire = env.encode();
  ASSERT_TRUE(net::Envelope::decode(wire).has_value());
  Bytes bumped = wire;
  bumped[0] = static_cast<std::uint8_t>(net::MsgKind::kBusy) + 1;
  EXPECT_FALSE(net::Envelope::decode(bumped).has_value());
  bumped[0] = 0;
  EXPECT_FALSE(net::Envelope::decode(bumped).has_value());
}

TEST(FuzzDecodeTest, JournalReplayNeverThrowsOnArbitraryImages) {
  // Replay is the one "decoder" that must not even throw: recovery calls
  // it on whatever survived the crash. Any input yields a valid prefix.
  crypto::SecureRandom rng(0x17a1);
  for (int iter = 0; iter < 300; ++iter) {
    const Bytes image = rng.bytes(rng.uniform(600));
    const store::Journal::ReplayResult r = store::Journal::replay(image);
    EXPECT_EQ(r.valid_bytes + r.corrupt_bytes, image.size());
  }
  for (std::size_t len : {0u, 1u, 19u, 20u, 21u, 64u}) {
    (void)store::Journal::replay(Bytes(len, 0x00));
    (void)store::Journal::replay(Bytes(len, 0xff));
  }
}

TEST(FuzzDecodeTest, JournalReplayMutationsKeepValidPrefix) {
  // Flip bytes in a valid journal image: replay stops at the first record
  // the mutation invalidates and every surviving record is intact.
  store::Journal j;
  for (int i = 0; i < 8; ++i) {
    j.append(util::bytes_of("record payload " + std::to_string(i)));
  }
  j.sync();
  const Bytes valid = j.durable();
  crypto::SecureRandom rng(0x17a2);
  for (int iter = 0; iter < 500; ++iter) {
    Bytes mutated = valid;
    mutated[rng.uniform(mutated.size())] ^= static_cast<std::uint8_t>(
        1 + rng.uniform(255));
    const store::Journal::ReplayResult r = store::Journal::replay(mutated);
    EXPECT_LE(r.records.size(), 8u);
    for (std::size_t i = 0; i < r.records.size(); ++i) {
      EXPECT_EQ(r.records[i].seq, i + 1);  // prefix, in order, no gaps
    }
  }
}

TEST(FuzzDecodeTest, JournalReplayCountsCorruptTails) {
  store::Journal j;
  j.append(util::bytes_of("good"));
  j.sync();
  Bytes image = j.durable();
  const Bytes junk = {0xde, 0xad, 0xbe, 0xef};
  image.insert(image.end(), junk.begin(), junk.end());

  obs::Registry reg;
  const store::Journal::ReplayResult r = store::Journal::replay(image, &reg);
  ASSERT_EQ(r.records.size(), 1u);
  EXPECT_FALSE(r.clean);
  ASSERT_NE(reg.find_counter("store.replay.corrupt"), nullptr);
  EXPECT_EQ(reg.find_counter("store.replay.corrupt")->value(), 1u);
  EXPECT_EQ(reg.find_counter("store.replay.corrupt_bytes")->value(), junk.size());
}

TEST(FuzzDecodeTest, ViewingEntryRoundTripAfterFuzzDecode) {
  services::ViewingLog::Entry e;
  e.user_in = 7;
  e.channel = 3;
  e.addr = util::parse_netaddr("10.0.0.7");
  e.time = 123456;
  e.renewal = true;
  const Bytes wire = services::encode_viewing_entry(e);
  const services::ViewingLog::Entry back = services::decode_viewing_entry(wire);
  EXPECT_EQ(back.user_in, e.user_in);
  EXPECT_EQ(back.channel, e.channel);
  EXPECT_EQ(back.addr, e.addr);
  EXPECT_EQ(back.time, e.time);
  EXPECT_EQ(back.renewal, e.renewal);
  for (std::size_t len = 0; len < wire.size(); ++len) {
    EXPECT_THROW(services::decode_viewing_entry({wire.data(), len}),
                 util::WireError);
  }
}

TEST(FuzzDecodeTest, RoundTripAfterSuccessfulFuzzDecode) {
  // Any random buffer a decoder accepts must re-encode/decode stably (no
  // "parses but corrupts" states). Checked for ContentPacket, whose inputs
  // come from untrusted peers.
  crypto::SecureRandom rng(79);
  int accepted = 0;
  for (int iter = 0; iter < 2000; ++iter) {
    const Bytes input = rng.bytes(17 + static_cast<std::size_t>(rng.uniform(64)));
    try {
      const core::ContentPacket p = core::ContentPacket::decode(input);
      ++accepted;
      EXPECT_EQ(core::ContentPacket::decode(p.encode()), p);
    } catch (const util::WireError&) {
    }
  }
  // With a 4-byte length prefix most random buffers fail; some must pass.
  (void)accepted;
}

}  // namespace
}  // namespace p2pdrm
