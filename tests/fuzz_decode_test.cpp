// Decoder robustness: every wire decoder in the system is fed random bytes
// and mutated valid encodings. The contract: decoders either succeed or
// throw util::WireError — never crash, never hang, never throw anything
// else. (Handlers rely on this to turn malformed input into protocol
// rejections.)
#include <gtest/gtest.h>

#include <functional>

#include "core/content.h"
#include "core/messages.h"
#include "net/deployment.h"
#include "core/secure_channel.h"
#include "core/ticket.h"
#include "crypto/chacha20.h"
#include "net/envelope.h"
#include "services/catalog.h"
#include "services/channel_manager.h"
#include "services/durable_ops.h"
#include "services/redirection_manager.h"
#include "store/farm_store.h"
#include "store/journal.h"
#include "store/snapshot.h"

namespace p2pdrm {
namespace {

using util::Bytes;

struct Decoder {
  const char* name;
  std::function<void(util::BytesView)> decode;
};

std::vector<Decoder> all_decoders() {
  return {
      {"UserTicket", [](util::BytesView b) { core::UserTicket::decode(b); }},
      {"ChannelTicket", [](util::BytesView b) { core::ChannelTicket::decode(b); }},
      {"SignedUserTicket",
       [](util::BytesView b) { core::SignedUserTicket::decode(b); }},
      {"SignedChannelTicket",
       [](util::BytesView b) { core::SignedChannelTicket::decode(b); }},
      {"Login1Request", [](util::BytesView b) { core::Login1Request::decode(b); }},
      {"Login1Response", [](util::BytesView b) { core::Login1Response::decode(b); }},
      {"Login2Request", [](util::BytesView b) { core::Login2Request::decode(b); }},
      {"Login2Response", [](util::BytesView b) { core::Login2Response::decode(b); }},
      {"Switch1Request", [](util::BytesView b) { core::Switch1Request::decode(b); }},
      {"Switch1Response", [](util::BytesView b) { core::Switch1Response::decode(b); }},
      {"Switch2Request", [](util::BytesView b) { core::Switch2Request::decode(b); }},
      {"Switch2Response", [](util::BytesView b) { core::Switch2Response::decode(b); }},
      {"JoinRequest", [](util::BytesView b) { core::JoinRequest::decode(b); }},
      {"JoinResponse", [](util::BytesView b) { core::JoinResponse::decode(b); }},
      {"ChannelListRequest",
       [](util::BytesView b) { core::ChannelListRequest::decode(b); }},
      {"ChannelListResponse",
       [](util::BytesView b) { core::ChannelListResponse::decode(b); }},
      {"ContentPacket", [](util::BytesView b) { core::ContentPacket::decode(b); }},
      {"SecureHello", [](util::BytesView b) { core::SecureHello::decode(b); }},
      {"RedirectRequest",
       [](util::BytesView b) { services::RedirectRequest::decode(b); }},
      {"RedirectResponse",
       [](util::BytesView b) { services::RedirectResponse::decode(b); }},
      {"ChannelRecord",
       [](util::BytesView b) {
         util::WireReader r(b);
         core::ChannelRecord::decode(r);
       }},
      {"AttributeSet",
       [](util::BytesView b) {
         util::WireReader r(b);
         core::AttributeSet::decode(r);
       }},
      {"Challenge",
       [](util::BytesView b) {
         util::WireReader r(b);
         core::Challenge::decode(r);
       }},
      {"BusyPayload", [](util::BytesView b) { net::BusyPayload::decode(b); }},
      {"Snapshot", [](util::BytesView b) { store::Snapshot::decode(b); }},
      {"ReplicatedOp", [](util::BytesView b) { store::ReplicatedOp::decode(b); }},
      {"ViewingEntry",
       [](util::BytesView b) { services::decode_viewing_entry(b); }},
      {"UserRecord", [](util::BytesView b) { services::decode_user_record(b); }},
      {"UserDirectory",
       [](util::BytesView b) { services::decode_user_directory(b); }},
      {"ContentKey",
       [](util::BytesView b) {
         util::WireReader r(b);
         core::ContentKey::decode(r);
       }},
  };
}

/// Run one buffer through a decoder; only success or WireError is legal.
void expect_graceful(const Decoder& decoder, const Bytes& input) {
  try {
    decoder.decode(input);
  } catch (const util::WireError&) {
    // expected failure mode
  } catch (const std::exception& e) {
    FAIL() << decoder.name << " threw non-WireError: " << e.what();
  }
}

TEST(FuzzDecodeTest, RandomBytes) {
  crypto::SecureRandom rng(0xf22);
  for (const Decoder& decoder : all_decoders()) {
    for (int iter = 0; iter < 200; ++iter) {
      const std::size_t len = static_cast<std::size_t>(rng.uniform(512));
      expect_graceful(decoder, rng.bytes(len));
    }
  }
}

TEST(FuzzDecodeTest, EmptyInput) {
  for (const Decoder& decoder : all_decoders()) {
    expect_graceful(decoder, {});
  }
}

TEST(FuzzDecodeTest, AllZeros) {
  for (const Decoder& decoder : all_decoders()) {
    for (std::size_t len : {1u, 4u, 16u, 64u, 256u}) {
      expect_graceful(decoder, Bytes(len, 0));
    }
  }
}

TEST(FuzzDecodeTest, AllOnes) {
  // 0xff bytes maximize length prefixes — the classic overallocation trap.
  for (const Decoder& decoder : all_decoders()) {
    for (std::size_t len : {4u, 16u, 64u}) {
      expect_graceful(decoder, Bytes(len, 0xff));
    }
  }
}

TEST(FuzzDecodeTest, MutatedValidTicket) {
  crypto::SecureRandom rng(77);
  const crypto::RsaKeyPair keys = crypto::generate_rsa_keypair(rng, 512);
  core::UserTicket ticket;
  ticket.user_in = 1;
  ticket.client_public_key = keys.pub;
  ticket.expiry_time = 100;
  core::Attribute a;
  a.name = core::kAttrRegion;
  a.value = core::AttrValue::of("100");
  ticket.attributes.add(a);
  const Bytes valid = core::SignedUserTicket::sign(ticket, keys.priv).encode();

  const Decoder decoder{"SignedUserTicket", [](util::BytesView b) {
                          core::SignedUserTicket::decode(b);
                        }};
  for (int iter = 0; iter < 500; ++iter) {
    Bytes mutated = valid;
    const int mutations = 1 + static_cast<int>(rng.uniform(4));
    for (int m = 0; m < mutations; ++m) {
      const std::size_t pos = static_cast<std::size_t>(rng.uniform(mutated.size()));
      mutated[pos] = static_cast<std::uint8_t>(rng.next_u32());
    }
    expect_graceful(decoder, mutated);
  }
}

TEST(FuzzDecodeTest, TruncatedValidMessages) {
  crypto::SecureRandom rng(78);
  const crypto::RsaKeyPair keys = crypto::generate_rsa_keypair(rng, 512);
  core::Login2Request req;
  req.email = "user@example.com";
  req.client_public_key = keys.pub;
  req.checksum = rng.bytes(32);
  req.challenge = core::make_challenge(rng.bytes(32), "login", rng.bytes(8),
                                       rng.bytes(core::kNonceSize), 0);
  req.proof = rng.bytes(64);
  const Bytes valid = req.encode();

  const Decoder decoder{"Login2Request", [](util::BytesView b) {
                          core::Login2Request::decode(b);
                        }};
  for (std::size_t len = 0; len < valid.size(); ++len) {
    expect_graceful(decoder, Bytes(valid.begin(),
                                   valid.begin() + static_cast<std::ptrdiff_t>(len)));
  }
}

TEST(FuzzDecodeTest, CatalogParserNeverThrows) {
  // The operator config parser reports errors by value; no input may make
  // it throw or crash.
  crypto::SecureRandom rng(80);
  const char charset[] = "channel attribute policy Priority Return ACCEPT REJECT "
                         "\"= &:,0123456789\n\t#";
  for (int iter = 0; iter < 500; ++iter) {
    std::string text;
    const std::size_t len = rng.uniform(400);
    for (std::size_t i = 0; i < len; ++i) {
      text.push_back(charset[rng.uniform(sizeof(charset) - 1)]);
    }
    const services::CatalogParseResult result = services::parse_catalog(text);
    // Either parses or reports an error; never both empty-and-failed states.
    if (!result.ok()) EXPECT_TRUE(result.channels.empty());
  }
}

TEST(FuzzDecodeTest, PolicyParserNeverThrows) {
  crypto::SecureRandom rng(81);
  const char charset[] = "Priority Return ACCEPT REJECT Region=ANY &:,0123456789 ";
  for (int iter = 0; iter < 1000; ++iter) {
    std::string text;
    const std::size_t len = rng.uniform(120);
    for (std::size_t i = 0; i < len; ++i) {
      text.push_back(charset[rng.uniform(sizeof(charset) - 1)]);
    }
    (void)core::parse_policy(text);  // must not throw
  }
}

TEST(FuzzDecodeTest, ViewingLogDecodeGraceful) {
  crypto::SecureRandom rng(82);
  for (int iter = 0; iter < 300; ++iter) {
    const Bytes input = rng.bytes(rng.uniform(200));
    try {
      (void)services::ViewingLog::decode(input);
    } catch (const util::WireError&) {
    }
  }
}

TEST(FuzzDecodeTest, BusyPayloadRoundTrip) {
  net::BusyPayload busy;
  busy.retry_after = 1500 * util::kMillisecond;
  busy.queue_depth = 42;
  const net::BusyPayload back = net::BusyPayload::decode(busy.encode());
  EXPECT_EQ(back.retry_after, busy.retry_after);
  EXPECT_EQ(back.queue_depth, busy.queue_depth);
}

TEST(FuzzDecodeTest, BusyPayloadTruncationsRejected) {
  net::BusyPayload busy;
  busy.retry_after = 2 * util::kSecond;
  busy.queue_depth = 7;
  const Bytes valid = busy.encode();
  for (std::size_t len = 0; len < valid.size(); ++len) {
    EXPECT_THROW(net::BusyPayload::decode(Bytes(
                     valid.begin(), valid.begin() + static_cast<std::ptrdiff_t>(len))),
                 util::WireError)
        << "truncated to " << len << " bytes";
  }
  Bytes trailing = valid;
  trailing.push_back(0);
  EXPECT_THROW(net::BusyPayload::decode(trailing), util::WireError);
}

TEST(FuzzDecodeTest, BusyPayloadRetryAfterRangeChecked) {
  // A malicious/corrupt BUSY must not park a client forever (or travel back
  // in time): retry-after is bounded to [0, kMaxRetryAfter] at decode.
  for (const util::SimTime bad : {static_cast<util::SimTime>(-1),
                                  net::BusyPayload::kMaxRetryAfter + 1,
                                  std::numeric_limits<util::SimTime>::max(),
                                  std::numeric_limits<util::SimTime>::min()}) {
    util::WireWriter w;
    w.i64(bad);
    w.u32(1);
    EXPECT_THROW(net::BusyPayload::decode(w.take()), util::WireError)
        << "retry_after " << bad;
  }
  // The boundary itself is legal.
  util::WireWriter w;
  w.i64(net::BusyPayload::kMaxRetryAfter);
  w.u32(0);
  EXPECT_EQ(net::BusyPayload::decode(w.take()).retry_after,
            net::BusyPayload::kMaxRetryAfter);
}

TEST(FuzzDecodeTest, EnvelopeRejectsKindsPastBusy) {
  // kBusy widened the envelope's kind range; anything beyond it must still
  // be rejected (forward compatibility stays an explicit decision).
  net::Envelope env;
  env.kind = net::MsgKind::kBusy;
  env.request_id = 9;
  env.payload = net::BusyPayload{}.encode();
  const Bytes wire = env.encode();
  ASSERT_TRUE(net::Envelope::decode(wire).has_value());
  Bytes bumped = wire;
  bumped[0] = static_cast<std::uint8_t>(net::MsgKind::kBusy) + 1;
  EXPECT_FALSE(net::Envelope::decode(bumped).has_value());
  bumped[0] = 0;
  EXPECT_FALSE(net::Envelope::decode(bumped).has_value());
}

TEST(FuzzDecodeTest, JournalReplayNeverThrowsOnArbitraryImages) {
  // Replay is the one "decoder" that must not even throw: recovery calls
  // it on whatever survived the crash. Any input yields a valid prefix.
  crypto::SecureRandom rng(0x17a1);
  for (int iter = 0; iter < 300; ++iter) {
    const Bytes image = rng.bytes(rng.uniform(600));
    const store::Journal::ReplayResult r = store::Journal::replay(image);
    EXPECT_EQ(r.valid_bytes + r.corrupt_bytes, image.size());
  }
  for (std::size_t len : {0u, 1u, 19u, 20u, 21u, 64u}) {
    (void)store::Journal::replay(Bytes(len, 0x00));
    (void)store::Journal::replay(Bytes(len, 0xff));
  }
}

TEST(FuzzDecodeTest, JournalReplayMutationsKeepValidPrefix) {
  // Flip bytes in a valid journal image: replay stops at the first record
  // the mutation invalidates and every surviving record is intact.
  store::Journal j;
  for (int i = 0; i < 8; ++i) {
    j.append(util::bytes_of("record payload " + std::to_string(i)));
  }
  j.sync();
  const Bytes valid = j.durable();
  crypto::SecureRandom rng(0x17a2);
  for (int iter = 0; iter < 500; ++iter) {
    Bytes mutated = valid;
    mutated[rng.uniform(mutated.size())] ^= static_cast<std::uint8_t>(
        1 + rng.uniform(255));
    const store::Journal::ReplayResult r = store::Journal::replay(mutated);
    EXPECT_LE(r.records.size(), 8u);
    for (std::size_t i = 0; i < r.records.size(); ++i) {
      EXPECT_EQ(r.records[i].seq, i + 1);  // prefix, in order, no gaps
    }
  }
}

TEST(FuzzDecodeTest, JournalReplayCountsCorruptTails) {
  store::Journal j;
  j.append(util::bytes_of("good"));
  j.sync();
  Bytes image = j.durable();
  const Bytes junk = {0xde, 0xad, 0xbe, 0xef};
  image.insert(image.end(), junk.begin(), junk.end());

  obs::Registry reg;
  const store::Journal::ReplayResult r = store::Journal::replay(image, &reg);
  ASSERT_EQ(r.records.size(), 1u);
  EXPECT_FALSE(r.clean);
  ASSERT_NE(reg.find_counter("store.replay.corrupt"), nullptr);
  EXPECT_EQ(reg.find_counter("store.replay.corrupt")->value(), 1u);
  EXPECT_EQ(reg.find_counter("store.replay.corrupt_bytes")->value(), junk.size());
}

TEST(FuzzDecodeTest, ViewingEntryRoundTripAfterFuzzDecode) {
  services::ViewingLog::Entry e;
  e.user_in = 7;
  e.channel = 3;
  e.addr = util::parse_netaddr("10.0.0.7");
  e.time = 123456;
  e.renewal = true;
  const Bytes wire = services::encode_viewing_entry(e);
  const services::ViewingLog::Entry back = services::decode_viewing_entry(wire);
  EXPECT_EQ(back.user_in, e.user_in);
  EXPECT_EQ(back.channel, e.channel);
  EXPECT_EQ(back.addr, e.addr);
  EXPECT_EQ(back.time, e.time);
  EXPECT_EQ(back.renewal, e.renewal);
  for (std::size_t len = 0; len < wire.size(); ++len) {
    EXPECT_THROW(services::decode_viewing_entry({wire.data(), len}),
                 util::WireError);
  }
}

/// One valid encoding per wire envelope payload, paired with its decoder.
/// Default-constructed messages encode to legal (if boring) wire images;
/// the corpus tests below truncate and bit-flip each one.
struct CorpusEntry {
  const char* name;
  Bytes valid;
  std::function<void(util::BytesView)> decode;
};

std::vector<CorpusEntry> envelope_corpus() {
  std::vector<CorpusEntry> corpus;
  const auto add = [&corpus](const char* name, Bytes valid,
                             std::function<void(util::BytesView)> decode) {
    corpus.push_back({name, std::move(valid), std::move(decode)});
  };
  add("RedirectRequest", services::RedirectRequest{"a@b.c"}.encode(),
      [](util::BytesView b) { services::RedirectRequest::decode(b); });
  add("RedirectResponse", services::RedirectResponse{}.encode(),
      [](util::BytesView b) { services::RedirectResponse::decode(b); });
  add("Login1Request", core::Login1Request{}.encode(),
      [](util::BytesView b) { core::Login1Request::decode(b); });
  add("Login1Response", core::Login1Response{}.encode(),
      [](util::BytesView b) { core::Login1Response::decode(b); });
  add("Login2Request", core::Login2Request{}.encode(),
      [](util::BytesView b) { core::Login2Request::decode(b); });
  add("Login2Response", core::Login2Response{}.encode(),
      [](util::BytesView b) { core::Login2Response::decode(b); });
  add("ChannelListRequest", core::ChannelListRequest{}.encode(),
      [](util::BytesView b) { core::ChannelListRequest::decode(b); });
  add("ChannelListResponse", core::ChannelListResponse{}.encode(),
      [](util::BytesView b) { core::ChannelListResponse::decode(b); });
  add("Switch1Request", core::Switch1Request{}.encode(),
      [](util::BytesView b) { core::Switch1Request::decode(b); });
  add("Switch1Response", core::Switch1Response{}.encode(),
      [](util::BytesView b) { core::Switch1Response::decode(b); });
  add("Switch2Request", core::Switch2Request{}.encode(),
      [](util::BytesView b) { core::Switch2Request::decode(b); });
  add("Switch2Response", core::Switch2Response{}.encode(),
      [](util::BytesView b) { core::Switch2Response::decode(b); });
  add("JoinRequest", core::JoinRequest{}.encode(),
      [](util::BytesView b) { core::JoinRequest::decode(b); });
  add("JoinResponse", core::JoinResponse{}.encode(),
      [](util::BytesView b) { core::JoinResponse::decode(b); });
  // Renewal presentation carries a SignedChannelTicket on the wire.
  {
    crypto::SecureRandom rng(0xc0de);
    const crypto::RsaKeyPair keys = crypto::generate_rsa_keypair(rng, 512);
    core::ChannelTicket t;
    t.user_in = 3;
    t.channel_id = 1;
    t.expiry_time = 500;
    add("SignedChannelTicket(renewal)",
        core::SignedChannelTicket::sign(t, keys.priv).encode(),
        [](util::BytesView b) { core::SignedChannelTicket::decode(b); });
  }
  add("ContentPacket", core::ContentPacket{}.encode(),
      [](util::BytesView b) { core::ContentPacket::decode(b); });
  add("BusyPayload", net::BusyPayload{}.encode(),
      [](util::BytesView b) { net::BusyPayload::decode(b); });
  add("SecureHello", core::SecureHello{}.encode(),
      [](util::BytesView b) { core::SecureHello::decode(b); });
  add("Snapshot", store::Snapshot{}.encode(),
      [](util::BytesView b) { store::Snapshot::decode(b); });
  {
    store::ReplicatedOp op;
    op.origin = 1;
    op.origin_seq = 1;  // decode rejects zero seq
    op.payload = util::bytes_of("gossip payload");
    add("ReplicatedOp", op.encode(),
        [](util::BytesView b) { store::ReplicatedOp::decode(b); });
  }
  {
    services::ViewingLog::Entry e;
    e.user_in = 9;
    e.channel = 2;
    e.time = 77;
    add("ViewingEntry", services::encode_viewing_entry(e),
        [](util::BytesView b) { services::decode_viewing_entry(b); });
  }
  return corpus;
}

TEST(FuzzDecodeTest, CorpusEveryEnvelopeDecodesItsOwnEncoding) {
  for (const CorpusEntry& entry : envelope_corpus()) {
    EXPECT_NO_THROW(entry.decode(entry.valid)) << entry.name;
  }
}

TEST(FuzzDecodeTest, CorpusEveryEnvelopeTruncationGraceful) {
  // Every prefix of every valid envelope payload: succeed or WireError.
  for (const CorpusEntry& entry : envelope_corpus()) {
    const Decoder decoder{entry.name, entry.decode};
    for (std::size_t len = 0; len < entry.valid.size(); ++len) {
      expect_graceful(decoder, Bytes(entry.valid.begin(),
                                     entry.valid.begin() +
                                         static_cast<std::ptrdiff_t>(len)));
    }
  }
}

TEST(FuzzDecodeTest, CorpusEveryEnvelopeBitFlipsGraceful) {
  // Seeded single- and multi-bit corruption of every valid envelope payload.
  crypto::SecureRandom rng(0xb17f11b);
  for (const CorpusEntry& entry : envelope_corpus()) {
    if (entry.valid.empty()) continue;
    const Decoder decoder{entry.name, entry.decode};
    for (int iter = 0; iter < 150; ++iter) {
      Bytes mutated = entry.valid;
      const int flips = 1 + static_cast<int>(rng.uniform(4));
      for (int f = 0; f < flips; ++f) {
        const std::size_t pos =
            static_cast<std::size_t>(rng.uniform(mutated.size()));
        mutated[pos] ^= static_cast<std::uint8_t>(1u << rng.uniform(8));
      }
      expect_graceful(decoder, mutated);
    }
  }
}

TEST(FuzzDecodeTest, EnvelopeFramingNeverThrows) {
  // The outer envelope reports failure by value (optional), never by
  // exception: random bytes, truncations, and bit-flips of a valid frame.
  crypto::SecureRandom rng(0xe27);
  net::Envelope env;
  env.kind = net::MsgKind::kLogin1Request;
  env.request_id = 77;
  env.payload = rng.bytes(40);
  const Bytes wire = env.encode();
  for (std::size_t len = 0; len < wire.size(); ++len) {
    EXPECT_NO_THROW((void)net::Envelope::decode({wire.data(), len}));
  }
  for (int iter = 0; iter < 500; ++iter) {
    Bytes mutated = wire;
    mutated[rng.uniform(mutated.size())] ^=
        static_cast<std::uint8_t>(1u << rng.uniform(8));
    EXPECT_NO_THROW((void)net::Envelope::decode(mutated));
  }
  for (int iter = 0; iter < 300; ++iter) {
    EXPECT_NO_THROW((void)net::Envelope::decode(rng.bytes(rng.uniform(128))));
  }
}

TEST(FuzzDecodeTest, KeyBlobUnwrapNeverThrows) {
  // The key-distribution blob (kKeyBlob) reports failure by value: random
  // bytes and corrupted valid wraps yield nullopt, never an exception.
  crypto::SecureRandom rng(0x5e55);
  const core::SessionKey session = core::generate_session_key(rng);
  const core::ContentKey key = core::generate_content_key(rng, 1, 100);
  const Bytes valid = core::wrap_content_key(key, session, 0);
  ASSERT_TRUE(core::unwrap_content_key(valid, session).has_value());
  for (std::size_t len = 0; len < valid.size(); ++len) {
    EXPECT_NO_THROW(
        (void)core::unwrap_content_key({valid.data(), len}, session));
  }
  for (int iter = 0; iter < 300; ++iter) {
    Bytes mutated = valid;
    mutated[rng.uniform(mutated.size())] ^=
        static_cast<std::uint8_t>(1u << rng.uniform(8));
    EXPECT_NO_THROW((void)core::unwrap_content_key(mutated, session));
    EXPECT_NO_THROW(
        (void)core::unwrap_content_key(rng.bytes(rng.uniform(96)), session));
  }
}

TEST(FuzzDecodeTest, RoundTripAfterSuccessfulFuzzDecode) {
  // Any random buffer a decoder accepts must re-encode/decode stably (no
  // "parses but corrupts" states). Checked for ContentPacket, whose inputs
  // come from untrusted peers.
  crypto::SecureRandom rng(79);
  int accepted = 0;
  for (int iter = 0; iter < 2000; ++iter) {
    const Bytes input = rng.bytes(17 + static_cast<std::size_t>(rng.uniform(64)));
    try {
      const core::ContentPacket p = core::ContentPacket::decode(input);
      ++accepted;
      EXPECT_EQ(core::ContentPacket::decode(p.encode()), p);
    } catch (const util::WireError&) {
    }
  }
  // With a 4-byte length prefix most random buffers fail; some must pass.
  (void)accepted;
}

// ---------------------------------------------------------------------------
// Deployment-level contract: a malformed payload that reaches a service node
// is rejected AND counted — the "server.drops{malformed}" counter is how
// operators (and the abuse gate) see fuzzing pressure.

class NullSink final : public net::Node {
 public:
  void on_packet(const net::Packet&) override {}
};

TEST(FuzzDecodeTest, MalformedServiceRequestsAreCountedAndDropped) {
  net::DeploymentConfig cfg;
  cfg.seed = 99;
  cfg.default_link.latency.floor = 1 * util::kMillisecond;
  cfg.default_link.latency.median = 2 * util::kMillisecond;
  cfg.processing.light = 100;
  cfg.processing.heavy = 200;
  net::Deployment d(cfg);
  d.add_user("alice@example.com", "pw");
  d.add_regional_channel(1, "news", d.geo().region_at(0));
  d.start_channel_server(1);

  NullSink sink;
  const util::NodeId attacker = 900;
  d.network().attach(attacker, util::parse_netaddr("10.9.9.9"), &sink);

  // An empty payload fails every request decoder (all have length-prefixed
  // fields), so each send below must land in the malformed bucket.
  const auto send_malformed = [&](util::NodeId to, net::MsgKind kind) {
    net::Envelope env;
    env.kind = kind;
    env.request_id = 1;
    d.network().send(attacker, to, env.encode());
  };
  int sent = 0;
  const auto probe = [&](util::NodeId to, net::MsgKind kind) {
    if (!d.network().attached(to)) return;
    send_malformed(to, kind);
    ++sent;
  };
  probe(net::Deployment::kRedirectionNode, net::MsgKind::kRedirectRequest);
  probe(net::Deployment::kUserManagerNode, net::MsgKind::kLogin1Request);
  probe(net::Deployment::kUserManagerNode, net::MsgKind::kLogin2Request);
  probe(net::Deployment::kChannelPolicyNode, net::MsgKind::kChannelListRequest);
  for (util::NodeId cm = net::Deployment::kChannelManagerBase;
       cm < net::Deployment::kChannelManagerBase + 8; ++cm) {
    probe(cm, net::MsgKind::kSwitch1Request);
    probe(cm, net::MsgKind::kSwitch2Request);
  }
  ASSERT_GE(sent, 4);

  d.run_for(1 * util::kSecond);
  const obs::Counter* drops = d.registry().find_counter("server.drops{malformed}");
  ASSERT_NE(drops, nullptr);
  EXPECT_EQ(drops->value(), static_cast<std::uint64_t>(sent));
  d.network().detach(attacker);
}

}  // namespace
}  // namespace p2pdrm
