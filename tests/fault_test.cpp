// Fault subsystem tests: plan parsing, overlay semantics, client
// resilience under injected faults, and the headline determinism
// guarantee — the same (seed, plan) pair must reproduce a byte-identical
// ResilienceReport.
#include <gtest/gtest.h>

#include <set>

#include "fault/fault_engine.h"
#include "fault/fault_plan.h"
#include "fault/report.h"
#include "net/deployment.h"

namespace p2pdrm::fault {
namespace {

using core::DrmError;
using util::kMillisecond;
using util::kMinute;
using util::kSecond;

// --- plan & schedule format ---

TEST(FaultPlanTest, DurationParsing) {
  EXPECT_EQ(parse_duration("500ms"), 500 * kMillisecond);
  EXPECT_EQ(parse_duration("90s"), 90 * kSecond);
  EXPECT_EQ(parse_duration("10m"), 10 * kMinute);
  EXPECT_EQ(parse_duration("2h"), 2 * util::kHour);
  EXPECT_EQ(parse_duration("1.5s"), 1500 * kMillisecond);
  EXPECT_EQ(parse_duration("42"), 42);  // raw microseconds
  EXPECT_THROW(parse_duration(""), std::invalid_argument);
  EXPECT_THROW(parse_duration("10x"), std::invalid_argument);
  EXPECT_THROW(parse_duration("fast"), std::invalid_argument);
}

TEST(FaultPlanTest, DurationFormattingRoundTrips) {
  for (const util::SimTime t : {500 * kMillisecond, 90 * kSecond, 10 * kMinute,
                                2 * util::kHour, util::SimTime{42}, 30 * kSecond}) {
    EXPECT_EQ(parse_duration(format_duration(t)), t) << format_duration(t);
  }
}

TEST(FaultPlanTest, AddrBlockMatching) {
  const AddrBlock block = AddrBlock::parse("10.254.0.0/16");
  EXPECT_TRUE(block.contains(util::parse_netaddr("10.254.0.2")));
  EXPECT_TRUE(block.contains(util::parse_netaddr("10.254.255.255")));
  EXPECT_FALSE(block.contains(util::parse_netaddr("10.253.0.1")));
  EXPECT_TRUE(AddrBlock::parse("*").contains(util::parse_netaddr("1.2.3.4")));
  EXPECT_TRUE(AddrBlock::parse("0.0.0.0/0").contains(util::parse_netaddr("9.9.9.9")));
  EXPECT_THROW(AddrBlock::parse("10.0.0.0/33"), std::invalid_argument);
  EXPECT_THROW(AddrBlock::parse("10.0.0.0"), std::invalid_argument);
}

TEST(FaultPlanTest, ParsesScheduleText) {
  const FaultPlan plan = FaultPlan::parse(
      "# a chaos scenario\n"
      "10m crash-um 1\n"
      "12m restart-um 1\n"
      "15m crash-cm 0 1   # instance 1 of partition 0\n"
      "20m partition * 10.254.0.0/16 30s\n"
      "25m loss 0.0.0.0/0 0.9 20s\n"
      "26m delay 10.1.0.0/16 250ms 30s\n"
      "30m churn 1 40 25\n"
      "35m skew 2 90s\n"
      "40m flash-crowd 1 120 30s\n");
  ASSERT_EQ(plan.size(), 9u);
  EXPECT_EQ(plan.events()[0].kind, FaultKind::kCrashUm);
  EXPECT_EQ(plan.events()[0].at, 10 * kMinute);
  EXPECT_EQ(plan.events()[0].instance, 1u);
  EXPECT_EQ(plan.events()[3].kind, FaultKind::kPartition);
  EXPECT_EQ(plan.events()[3].duration, 30 * kSecond);
  EXPECT_EQ(plan.events()[4].rate, 0.9);
  EXPECT_EQ(plan.events()[5].delay, 250 * kMillisecond);
  EXPECT_EQ(plan.events()[6].departures, 40u);
  EXPECT_EQ(plan.events()[6].arrivals, 25u);
  EXPECT_EQ(plan.events()[7].kind, FaultKind::kClockSkew);
  EXPECT_EQ(plan.events()[7].node, 2u);
  EXPECT_EQ(plan.events()[8].kind, FaultKind::kFlashCrowd);
  EXPECT_EQ(plan.events()[8].channel, 1u);
  EXPECT_EQ(plan.events()[8].arrivals, 120u);
  EXPECT_EQ(plan.events()[8].duration, 30 * kSecond);
}

TEST(FaultPlanTest, ParsesDurableStateVerbs) {
  const FaultPlan plan = FaultPlan::parse(
      "45m wipe-state cm 0 1   # durable media gone too\n"
      "48m wipe-state um 1\n"
      "50m crash-unsynced um 1\n"
      "52m crash-unsynced cm 2 3\n"
      "55m replication-lag 5s\n"
      "58m replication-lag 0\n");
  ASSERT_EQ(plan.size(), 6u);
  EXPECT_EQ(plan.events()[0].kind, FaultKind::kWipeState);
  EXPECT_EQ(plan.events()[0].farm, FarmKind::kCm);
  EXPECT_EQ(plan.events()[0].partition, 0u);
  EXPECT_EQ(plan.events()[0].instance, 1u);
  EXPECT_EQ(plan.events()[1].farm, FarmKind::kUm);
  EXPECT_EQ(plan.events()[1].instance, 1u);
  EXPECT_EQ(plan.events()[2].kind, FaultKind::kCrashUnsynced);
  EXPECT_EQ(plan.events()[2].farm, FarmKind::kUm);
  EXPECT_EQ(plan.events()[3].farm, FarmKind::kCm);
  EXPECT_EQ(plan.events()[3].partition, 2u);
  EXPECT_EQ(plan.events()[3].instance, 3u);
  EXPECT_EQ(plan.events()[4].kind, FaultKind::kReplicationLag);
  EXPECT_EQ(plan.events()[4].delay, 5 * kSecond);
  EXPECT_EQ(plan.events()[5].delay, 0);  // 0 = freeze the ticker
}

TEST(FaultPlanTest, DurableStateVerbErrors) {
  // Unknown farm, missing instance, missing partition, missing interval.
  EXPECT_THROW(FaultPlan::parse("10m wipe-state tracker 1\n"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("10m wipe-state um\n"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("10m wipe-state cm 0\n"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("10m crash-unsynced\n"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("10m crash-unsynced cm 0\n"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("10m replication-lag\n"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("10m replication-lag soon\n"),
               std::invalid_argument);
}

TEST(FaultPlanTest, ToStringParsesBack) {
  FaultPlan plan;
  plan.crash_um(10 * kMinute, 0)
      .partition(20 * kMinute, 30 * kSecond, AddrBlock{}, AddrBlock::parse("10.254.0.0/16"))
      .loss_burst(25 * kMinute, 20 * kSecond, AddrBlock{}, 0.5)
      .churn_storm(30 * kMinute, 1, 4, 2)
      .clock_skew(35 * kMinute, 2, 90 * kSecond)
      .flash_crowd(40 * kMinute, 1, 120, 30 * kSecond)
      .wipe_state_um(45 * kMinute, 1)
      .wipe_state_cm(46 * kMinute, 0, 1)
      .crash_unsynced_um(50 * kMinute, 0)
      .crash_unsynced_cm(51 * kMinute, 2, 3)
      .replication_lag(55 * kMinute, 5 * kSecond);
  const FaultPlan reparsed = FaultPlan::parse(plan.to_string());
  EXPECT_EQ(reparsed.to_string(), plan.to_string());
  EXPECT_EQ(reparsed.size(), plan.size());
}

TEST(FaultPlanTest, MalformedLinesReportLineNumber) {
  try {
    FaultPlan::parse("10m crash-um 1\n20m explode 3\n");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos) << e.what();
  }
  EXPECT_THROW(FaultPlan::parse("10m crash-um\n"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("10m loss * 1.5 20s\n"), std::invalid_argument);
}

TEST(FaultPlanTest, EventsSortedStably) {
  FaultPlan plan;
  plan.churn_storm(20 * kMinute, 1, 1, 0)
      .crash_um(10 * kMinute, 0)
      .restart_um(10 * kMinute, 1);  // same time: insertion order preserved
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan.events()[0].kind, FaultKind::kCrashUm);
  EXPECT_EQ(plan.events()[1].kind, FaultKind::kRestartUm);
  EXPECT_EQ(plan.events()[2].kind, FaultKind::kChurnStorm);
}

// --- deployment-backed scenarios ---

net::DeploymentConfig chaos_config() {
  net::DeploymentConfig cfg;
  cfg.seed = 7;
  cfg.default_link.latency.floor = 10 * kMillisecond;
  cfg.default_link.latency.median = 40 * kMillisecond;
  cfg.default_link.latency.sigma = 0.4;
  cfg.processing.light = 1 * kMillisecond;
  cfg.processing.heavy = 8 * kMillisecond;
  return cfg;
}

class FaultScenarioTest : public ::testing::Test {
 public:  // helpers reused by the free-standing determinism test
  static constexpr util::ChannelId kChannel = 1;

  /// Build a provisioned deployment with `viewers` clients watching channel
  /// 1; each client is logged in, joined, announced, and auto-renewing.
  static std::unique_ptr<net::Deployment> make_deployment(net::DeploymentConfig cfg,
                                                          std::size_t viewers) {
    auto dep = std::make_unique<net::Deployment>(cfg);
    const geo::RegionId region = dep->geo().region_at(0);
    dep->add_regional_channel(kChannel, "news", region);
    dep->start_channel_server(kChannel);
    for (std::size_t i = 0; i < viewers; ++i) {
      const std::string email = "viewer-" + std::to_string(i) + "@example.com";
      dep->add_user(email, "pw");
      // All in the channel's own region: it is regional, and the point of
      // these tests is fault recovery, not policy denial.
      net::AsyncClient& client = dep->add_client(email, "pw", region);
      wait(*dep, [&client](net::AsyncClient::Callback cb) { client.login(cb); });
      wait(*dep, [&client](net::AsyncClient::Callback cb) {
        client.switch_channel(kChannel, cb);
      });
      dep->announce(client);
      client.enable_auto_renewal();
    }
    return dep;
  }

  static DrmError wait(net::Deployment& dep,
                       const std::function<void(net::AsyncClient::Callback)>& op) {
    std::optional<DrmError> result;
    op([&result](DrmError err) { result = err; });
    const util::SimTime deadline = dep.sim().now() + 10 * kMinute;
    while (!result && dep.sim().now() < deadline && dep.sim().step()) {
    }
    return result.value_or(DrmError::kNoCapacity);
  }
};

TEST_F(FaultScenarioTest, PartitionBlocksAndHealsOverTheWire) {
  net::DeploymentConfig cfg = chaos_config();
  auto dep = make_deployment(cfg, 1);

  FaultPlan plan;
  // Cut every client off from the whole backend subnet, far longer than the
  // retry budget (3+6+12+24+30s ≈ 75s of backoff, with the 30s cap).
  plan.partition(dep->sim().now(), 10 * kMinute, AddrBlock{},
                 AddrBlock::parse("10.254.0.0/16"));
  FaultEngine engine(*dep, plan);
  engine.arm();
  dep->run_for(1 * kMillisecond);  // let the fault event activate

  net::AsyncClient& fresh = dep->add_client("viewer-0@example.com", "pw",
                                            dep->geo().region_at(0));
  EXPECT_EQ(wait(*dep, [&](auto cb) { fresh.login(cb); }), DrmError::kNoCapacity);
  EXPECT_GE(fresh.timeout_exhaustions(), 1u);
  EXPECT_GT(engine.packets_dropped(), 0u);
}

TEST_F(FaultScenarioTest, LatencySpikeDelaysButDelivers) {
  net::DeploymentConfig cfg = chaos_config();
  auto dep = make_deployment(cfg, 0);

  FaultPlan plan;
  plan.latency_spike(0, 10 * kMinute, AddrBlock{}, 400 * kMillisecond);
  FaultEngine engine(*dep, plan);
  engine.arm();
  dep->run_for(1 * kMillisecond);  // let the t=0 fault event activate

  dep->add_user("late@example.com", "pw");
  net::AsyncClient& late = dep->add_client("late@example.com", "pw",
                                           dep->geo().region_at(0));
  EXPECT_EQ(wait(*dep, [&](auto cb) { late.login(cb); }), DrmError::kOk);
  EXPECT_GT(engine.packets_delayed(), 0u);
  // Every round now pays >= 2 * 400ms of injected one-way delay.
  for (const client::LatencySample& s : late.feedback_log()) {
    EXPECT_GE(s.latency, 800 * kMillisecond) << client::to_string(s.round);
  }
}

TEST_F(FaultScenarioTest, ClockSkewOnManagerBreaksLogins) {
  net::DeploymentConfig cfg = chaos_config();
  auto dep = make_deployment(cfg, 0);
  dep->add_user("victim@example.com", "pw");

  // A User Manager whose clock runs a day fast issues tickets stamped in
  // the (client's) future and rejects fresh nonce windows — logins stop
  // succeeding cleanly while the skew lasts.
  FaultPlan plan;
  plan.clock_skew(0, net::Deployment::kUserManagerNode, util::kDay);
  FaultEngine engine(*dep, plan);
  engine.arm();
  dep->run_for(1 * kSecond);

  net::AsyncClient& victim = dep->add_client("victim@example.com", "pw",
                                             dep->geo().region_at(0));
  const DrmError err = wait(*dep, [&](auto cb) { victim.login(cb); });
  // Heal the clock: the same client can then log in.
  dep->network().set_clock_skew(net::Deployment::kUserManagerNode, 0);
  if (err == DrmError::kOk) {
    // Skew may still produce a ticket (expiry windows are generous); what
    // must hold is that the ticket's stamps came from the skewed clock.
    ASSERT_TRUE(victim.user_ticket().has_value());
    EXPECT_GE(victim.user_ticket()->ticket.start_time, util::kDay);
  } else {
    EXPECT_EQ(wait(*dep, [&](auto cb) { victim.login(cb); }), DrmError::kOk);
  }
}

// --- satellite: AsyncClient retry exhaustion ---

TEST_F(FaultScenarioTest, RetryBudgetExhaustsUnderTotalLoss) {
  net::DeploymentConfig cfg = chaos_config();
  auto dep = make_deployment(cfg, 0);
  dep->add_user("lost@example.com", "pw");

  FaultPlan plan;
  plan.loss_burst(0, 10 * kMinute, AddrBlock{}, 1.0);  // 100% loss, everywhere
  FaultEngine engine(*dep, plan);
  engine.arm();
  dep->run_for(1 * kMillisecond);  // let the t=0 fault event activate

  net::AsyncClient& lost = dep->add_client("lost@example.com", "pw",
                                           dep->geo().region_at(0));
  const util::SimTime start = dep->sim().now();
  EXPECT_EQ(wait(*dep, [&](auto cb) { lost.login(cb); }), DrmError::kNoCapacity);
  EXPECT_EQ(lost.timeout_exhaustions(), 1u);  // first round died; chain stopped
  EXPECT_EQ(lost.retransmits(), static_cast<std::uint64_t>(cfg.max_retries));
  // Exhaustion must walk the whole backoff ladder — 3+6+12+24 seconds of
  // waits plus the final timeout, capped at max_timeout (30s) — and jitter.
  EXPECT_GE(dep->sim().now() - start, 75 * kSecond);
  EXPECT_LE(dep->sim().now() - start, 85 * kSecond);
  EXPECT_FALSE(lost.logged_in());
}

TEST_F(FaultScenarioTest, LossBurstEndingMidBudgetIsSurvived) {
  net::DeploymentConfig cfg = chaos_config();
  auto dep = make_deployment(cfg, 0);
  dep->add_user("survivor@example.com", "pw");

  FaultPlan plan;
  plan.loss_burst(0, 8 * kSecond, AddrBlock{}, 1.0);  // ends inside the budget
  FaultEngine engine(*dep, plan);
  engine.arm();
  dep->run_for(1 * kMillisecond);  // let the fault event activate

  net::AsyncClient& survivor = dep->add_client("survivor@example.com", "pw",
                                               dep->geo().region_at(0));
  EXPECT_EQ(wait(*dep, [&](auto cb) { survivor.login(cb); }), DrmError::kOk);
  // The first request and its ~3s retransmit fell inside the burst; the
  // ~9s retransmit got through.
  EXPECT_GE(survivor.retransmits(), 2u);
  EXPECT_EQ(survivor.timeout_exhaustions(), 0u);
  EXPECT_TRUE(survivor.logged_in());
}

// --- satellite: tracker under churn (deployment-level) ---

TEST_F(FaultScenarioTest, SamplingNeverReturnsCrashedPeersAfterSweep) {
  net::DeploymentConfig cfg = chaos_config();
  cfg.tracker_stale_age = 2 * kMinute;
  cfg.client_resilience = true;
  auto dep = make_deployment(cfg, 6);

  // Crash half the fleet ungracefully: the tracker is NOT told.
  FaultPlan plan;
  plan.churn_storm(dep->sim().now() + 1 * kSecond, kChannel, 3, 0);
  FaultEngine engine(*dep, plan);
  engine.arm();
  EXPECT_GT(dep->tracker().peer_count(kChannel), 1u);

  // After the stale age plus a sweep, every dead peer is evicted and
  // sampling only ever returns live nodes.
  dep->run_for(4 * kMinute);
  EXPECT_EQ(engine.churn_departures(), 3u);
  std::set<util::NodeId> live;
  live.insert(dep->root_node(kChannel)->id());
  for (const auto& client : dep->clients()) {
    if (!client->departed()) live.insert(client->config().node);
  }
  for (int trial = 0; trial < 20; ++trial) {
    for (const core::PeerInfo& peer :
         dep->tracker().sample_peers(kChannel, 4, util::NetAddr{})) {
      EXPECT_TRUE(live.contains(peer.node)) << "sampled dead node " << peer.node;
    }
  }
  const double utilization = dep->tracker().utilization(kChannel);
  EXPECT_GE(utilization, 0.0);
  EXPECT_LE(utilization, 1.0);
}

// --- satellite: flash crowds (deployment-level) ---

TEST_F(FaultScenarioTest, FlashCrowdSpawnsViewersThatAllJoin) {
  net::DeploymentConfig cfg = chaos_config();
  auto dep = make_deployment(cfg, 1);

  FaultPlan plan;
  plan.flash_crowd(dep->sim().now() + kSecond, kChannel, 6, 2 * kSecond);
  FaultEngineConfig engine_cfg;
  engine_cfg.arrival_region = dep->geo().region_at(0);  // the channel is regional
  FaultEngine engine(*dep, plan, engine_cfg);
  engine.arm();

  const std::size_t before = dep->clients().size();
  dep->run_for(2 * kMinute);
  EXPECT_EQ(engine.flash_crowd_arrivals(), 6u);
  ASSERT_EQ(dep->clients().size(), before + 6);
  // With no overload protection configured and a healthy farm, every
  // arrival completes the full login -> switch -> join sequence.
  for (const auto& client : dep->clients()) {
    EXPECT_TRUE(client->logged_in()) << client->config().email;
    EXPECT_TRUE(client->channel_ticket().has_value()) << client->config().email;
  }
}

// --- the headline determinism guarantee ---

struct ChaosOutcome {
  std::string report;
  std::string fault_log;
  std::size_t live_clients = 0;
  std::size_t live_logged_in = 0;
  std::size_t live_joined = 0;
};

ChaosOutcome run_scripted_chaos() {
  net::DeploymentConfig cfg = chaos_config();
  cfg.um_instances = 2;
  cfg.cm_instances = 2;
  cfg.tracker_stale_age = 2 * kMinute;
  cfg.client_resilience = true;
  auto dep = FaultScenarioTest::make_deployment(cfg, 8);

  // The scripted plan from the acceptance scenario: a manager crash at
  // t=10min, a 30s backend partition at t=20min, a churn storm at t=30min.
  const FaultPlan plan = FaultPlan::parse(
      "10m crash-um 0\n"
      "10m crash-cm 0 0\n"
      "20m partition * 10.254.0.0/16 30s\n"
      "30m churn 1 3 3\n");
  FaultEngineConfig engine_cfg;
  engine_cfg.arrival_region = dep->geo().region_at(0);  // the channel is regional
  FaultEngine engine(*dep, plan, engine_cfg);
  engine.arm();
  dep->run_until(40 * kMinute);

  ChaosOutcome outcome;
  const ResilienceReport report = ResilienceReport::collect(*dep);
  outcome.report = report.to_string();
  for (const std::string& line : engine.log()) {
    outcome.fault_log += line + "\n";
  }
  for (const auto& client : dep->clients()) {
    if (client->departed()) continue;
    ++outcome.live_clients;
    if (client->logged_in()) ++outcome.live_logged_in;
    // Require an *unexpired* ticket: a dead session still holds its last
    // (stale) ticket object, so has_value() alone would miss decay.
    if (client->channel_ticket() &&
        !client->channel_ticket()->ticket.expired_at(dep->now())) {
      ++outcome.live_joined;
    }
  }
  return outcome;
}

TEST(FaultDeterminismTest, ScriptedChaosIsByteIdenticalAcrossRuns) {
  const ChaosOutcome first = run_scripted_chaos();
  const ChaosOutcome second = run_scripted_chaos();
  EXPECT_EQ(first.report, second.report);
  EXPECT_EQ(first.fault_log, second.fault_log);

  // Resilience held: every client still present ends the run
  // re-authenticated and re-joined despite the crash + partition + storm.
  EXPECT_EQ(first.live_clients, 8u);  // 8 - 3 churned + 3 arrivals
  EXPECT_EQ(first.live_logged_in, first.live_clients);
  EXPECT_EQ(first.live_joined, first.live_clients);

  // The faults actually happened.
  EXPECT_NE(first.fault_log.find("crash-um"), std::string::npos);
  EXPECT_NE(first.fault_log.find("partition"), std::string::npos);
  EXPECT_NE(first.fault_log.find("churn"), std::string::npos);
  EXPECT_NE(first.report.find("rejoins="), std::string::npos);
}

}  // namespace
}  // namespace p2pdrm::fault
