// Runtime-telemetry unit tests: the metric naming convention, event-loop
// stats export (idempotence under repeated scrapes), the scoped-timer
// profiler's collapsed-stack / Chrome-trace renderings, and the crash
// flight recorder (ring wraparound, sanitization, dump format). Recorder
// tests use local instances — only the global one installs signal
// handlers, so these stay signal-free and sanitizer-friendly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/flight_recorder.h"
#include "obs/registry.h"
#include "obs/runtime.h"
#include "obs/trace.h"

namespace p2pdrm::obs {
namespace {

// --- metric naming convention ---

TEST(MetricNameTest, AcceptsTheHouseStyle) {
  EXPECT_TRUE(metric_name_ok("net.packets.sent"));
  EXPECT_TRUE(metric_name_ok("client.round.LOGIN1"));
  EXPECT_TRUE(metric_name_ok("macro.round.SWITCH2.hour042"));
  EXPECT_TRUE(metric_name_ok("transport.sched_latency_us"));
  EXPECT_TRUE(metric_name_ok("server.queue.depth{3}"));
  EXPECT_TRUE(metric_name_ok("ops{access-denied}"));
  EXPECT_TRUE(metric_name_ok("macro.shard.imbalance_max_permille"));
  EXPECT_TRUE(metric_name_ok("load.concurrent"));
}

TEST(MetricNameTest, RejectsDrift) {
  EXPECT_FALSE(metric_name_ok(""));
  EXPECT_FALSE(metric_name_ok(".net.sent"));         // leading dot
  EXPECT_FALSE(metric_name_ok("net.sent."));         // trailing dot
  EXPECT_FALSE(metric_name_ok("net..sent"));         // empty segment
  EXPECT_FALSE(metric_name_ok("Net.sent"));          // capitalized subsystem
  EXPECT_FALSE(metric_name_ok("3net.sent"));         // digit-led subsystem
  EXPECT_FALSE(metric_name_ok("server.queue.depth.3"));  // index in the name
  EXPECT_FALSE(metric_name_ok("net.packets-sent"));  // dash in a segment
  EXPECT_FALSE(metric_name_ok("net.sent{}"));        // empty label
  EXPECT_FALSE(metric_name_ok("net.sent{a b}"));     // space in label
  EXPECT_FALSE(metric_name_ok("{orphan}"));          // label without a name
}

// --- LoopStats export ---

TEST(LoopStatsTest, UtilizationIsBusyOverTotal) {
  LoopStats ls;
  EXPECT_EQ(ls.utilization(), 0.0);  // never ran
  ls.busy_us = 300;
  ls.idle_us = 700;
  EXPECT_NEAR(ls.utilization(), 0.3, 1e-12);
}

TEST(LoopStatsTest, ExportIsIdempotentAcrossScrapes) {
  Registry reg;
  LoopStats ls;
  ls.tasks = 10;
  ls.timers_fired = 4;
  ls.busy_us = 900;
  ls.idle_us = 100;
  ls.ready_peak = 7;
  ls.timer_peak = 3;
  LatencyHistogram sched;
  for (int i = 1; i <= 10; ++i) sched.record(i);

  export_loop_stats(reg, "transport", {ls}, &sched);
  // A second scrape of the same (monotone) source must not double-count.
  export_loop_stats(reg, "transport", {ls}, &sched);

  EXPECT_EQ(reg.find_counter("transport.loop.tasks{0}")->value(), 10u);
  EXPECT_EQ(reg.find_counter("transport.loop.timers_fired{0}")->value(), 4u);
  EXPECT_EQ(reg.find_gauge("transport.loop.busy_us{0}")->value(), 900);
  EXPECT_EQ(reg.find_gauge("transport.loop.idle_us{0}")->value(), 100);
  EXPECT_EQ(reg.find_gauge("transport.loop.ready_peak{0}")->value(), 7);
  EXPECT_EQ(reg.find_gauge("transport.loop.timer_peak{0}")->value(), 3);
  EXPECT_EQ(reg.find_gauge("transport.loop.utilization_permille{0}")->value(),
            900);
  const LatencyHistogram* h = reg.find_histogram("transport.sched_latency_us");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 10u);

  // The source grew; the counter follows by the delta.
  ls.tasks = 25;
  export_loop_stats(reg, "transport", {ls}, nullptr);
  EXPECT_EQ(reg.find_counter("transport.loop.tasks{0}")->value(), 25u);

  // Every exported name obeys the convention.
  for (const auto& [name, c] : reg.counters()) {
    EXPECT_TRUE(metric_name_ok(name)) << name;
  }
  for (const auto& [name, g] : reg.gauges()) {
    EXPECT_TRUE(metric_name_ok(name)) << name;
  }
}

// --- profiler ---

TEST(ProfilerTest, DisabledHooksRecordNothing) {
  Profiler p;
  p.begin("a");
  p.end("a");
  { Profiler::Scope scope(p, "b"); }
  p.attach_thread("t");
  EXPECT_EQ(p.recorded(), 0u);
  EXPECT_TRUE(p.collapsed().empty());
}

TEST(ProfilerTest, CollapsedStacksNestAndSort) {
  Profiler p;
  p.enable();
  p.attach_thread("worker");
  p.begin("outer");
  p.begin("inner");
  p.end("inner");
  p.end("outer");
  p.begin("alone");
  p.end("alone");
  p.disable();

  EXPECT_EQ(p.recorded(), 6u);
  EXPECT_EQ(p.dropped(), 0u);
  const std::string out = p.collapsed();
  EXPECT_NE(out.find("worker;outer "), std::string::npos);
  EXPECT_NE(out.find("worker;outer;inner "), std::string::npos);
  EXPECT_NE(out.find("worker;alone "), std::string::npos);
  // Lexicographically sorted: "alone" before "outer".
  EXPECT_LT(out.find("worker;alone "), out.find("worker;outer "));
  // Three distinct stacks, one line each.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
}

TEST(ProfilerTest, MismatchedEndsAreTolerated) {
  Profiler p;
  p.enable();
  p.attach_thread("t");
  p.end("never_began");  // dropped silently
  p.begin("open_at_exit");
  p.disable();
  const std::string out = p.collapsed();
  EXPECT_EQ(out.find("t;never_began"), std::string::npos);
  EXPECT_NE(out.find("t;open_at_exit "), std::string::npos);
}

TEST(ProfilerTest, BufferCapCountsDrops) {
  Profiler p;
  p.enable();
  p.attach_thread("hot");
  for (std::size_t i = 0; i < Profiler::kMaxEventsPerThread + 5; ++i) {
    p.begin("x");
  }
  p.disable();
  EXPECT_EQ(p.recorded(), Profiler::kMaxEventsPerThread);
  EXPECT_EQ(p.dropped(), 5u);
}

TEST(ProfilerTest, ChromeTraceShapeAndMerge) {
  Profiler p;
  p.enable();
  p.attach_thread("loop-0");
  {
    Profiler::Scope scope(p, "transport.task");
  }
  p.disable();

  const std::string trace = p.chrome_trace();
  EXPECT_EQ(trace.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(trace.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(trace.find("\"loop-0\""), std::string::npos);
  EXPECT_NE(trace.find("\"transport.task\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_EQ(trace.rfind("]}\n"), trace.size() - 3);

  // Merged with a tracer: both the span and the profiler frame land in the
  // same traceEvents array, once each.
  Tracer t;
  const SpanId s = t.begin_span("client", "LOGIN1", 1000, 5);
  t.end_span(s, 15, true);
  const std::string merged = merged_chrome_trace(t, p);
  EXPECT_EQ(merged.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(merged.find("\"LOGIN1\""), std::string::npos);
  EXPECT_NE(merged.find("\"transport.task\""), std::string::npos);
  EXPECT_EQ(merged.rfind("]}\n"), merged.size() - 3);
  // Well-formed splice: braces stay balanced.
  EXPECT_EQ(std::count(merged.begin(), merged.end(), '{'),
            std::count(merged.begin(), merged.end(), '}'));
}

TEST(ProfilerTest, ResetDropsBuffersAndReclaims) {
  Profiler p;
  p.enable();
  p.begin("a");
  p.end("a");
  EXPECT_EQ(p.recorded(), 2u);
  p.reset();
  EXPECT_EQ(p.recorded(), 0u);
  p.begin("b");  // re-claims a fresh buffer after the generation bump
  EXPECT_EQ(p.recorded(), 1u);
  p.disable();
}

// --- flight recorder ---

TEST(FlightRecorderTest, DisarmedRecordIsANoop) {
  FlightRecorder fr;
  fr.record("net.send", 1, 2);
  fr.attach_thread("t");
  EXPECT_TRUE(fr.snapshot().empty());
}

TEST(FlightRecorderTest, RecordsSanitizedEvents) {
  FlightRecorder fr;
  fr.arm("/dev/null");
  fr.attach_thread("loop-0");
  fr.record("net.send", 7, 9, "ok");
  fr.record("bad\"kind\\here", 1, 0, "tab\there quote\"");
  fr.disarm();

  const auto snap = fr.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].label, "loop-0");
  EXPECT_EQ(snap[0].recorded, 2u);
  EXPECT_EQ(snap[0].dropped, 0u);
  ASSERT_EQ(snap[0].events.size(), 2u);
  EXPECT_EQ(snap[0].events[0].kind, "net.send");
  EXPECT_EQ(snap[0].events[0].a, 7u);
  EXPECT_EQ(snap[0].events[0].b, 9u);
  EXPECT_EQ(snap[0].events[0].detail, "ok");
  // JSON-breaking bytes were replaced at record time.
  EXPECT_EQ(snap[0].events[1].kind, "bad_kind_here");
  EXPECT_EQ(snap[0].events[1].detail, "tab_here quote_");
}

TEST(FlightRecorderTest, RingWrapsKeepingTheNewestEvents) {
  FlightRecorder fr;
  fr.arm("/dev/null");
  fr.attach_thread("wrap");
  const std::uint64_t extra = 13;
  const std::uint64_t total = FlightRecorder::kRingCapacity + extra;
  for (std::uint64_t i = 0; i < total; ++i) {
    fr.record("tick", i);
  }
  fr.disarm();

  const auto snap = fr.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].recorded, total);
  EXPECT_EQ(snap[0].dropped, extra);
  ASSERT_EQ(snap[0].events.size(), FlightRecorder::kRingCapacity);
  // The oldest retained event is exactly the first survivor of the wrap...
  EXPECT_EQ(snap[0].events.front().seq, extra);
  EXPECT_EQ(snap[0].events.front().a, extra);
  // ...and sequence numbers run contiguously to the last record.
  EXPECT_EQ(snap[0].events.back().seq, total - 1);
  for (std::size_t i = 1; i < snap[0].events.size(); ++i) {
    EXPECT_EQ(snap[0].events[i].seq, snap[0].events[i - 1].seq + 1);
  }
}

TEST(FlightRecorderTest, PerThreadRingsAreIndependent) {
  FlightRecorder fr;
  fr.arm("/dev/null");
  fr.attach_thread("main");
  fr.record("main.event", 1);
  std::thread other([&fr] {
    fr.attach_thread("other");
    fr.record("other.event", 2);
    fr.record("other.event", 3);
  });
  other.join();
  fr.disarm();

  const auto snap = fr.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].label, "main");
  EXPECT_EQ(snap[0].recorded, 1u);
  EXPECT_EQ(snap[1].label, "other");
  EXPECT_EQ(snap[1].recorded, 2u);
}

TEST(FlightRecorderTest, DumpIsParseableAndCarriesTheRings) {
  const std::string path = ::testing::TempDir() + "flight_dump_test.json";
  FlightRecorder fr;
  fr.arm(path);
  fr.attach_thread("loop-1");
  fr.record("net.send", 12, 34, "breadcrumb");
  fr.record("loop.stop", 1);
  ASSERT_TRUE(fr.dump("unit-test"));
  fr.disarm();

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string dump = buf.str();
  std::remove(path.c_str());

  EXPECT_NE(dump.find("\"schema\":\"p2pdrm.flight.v1\""), std::string::npos);
  EXPECT_NE(dump.find("\"reason\":\"unit-test\""), std::string::npos);
  EXPECT_NE(dump.find("\"label\":\"loop-1\""), std::string::npos);
  EXPECT_NE(dump.find("\"recorded\":2"), std::string::npos);
  EXPECT_NE(dump.find("\"kind\":\"net.send\""), std::string::npos);
  EXPECT_NE(dump.find("\"a\":12,\"b\":34"), std::string::npos);
  EXPECT_NE(dump.find("\"detail\":\"breadcrumb\""), std::string::npos);
  // Structural sanity a post-mortem parser relies on: balanced braces and
  // brackets, one trailing newline.
  EXPECT_EQ(std::count(dump.begin(), dump.end(), '{'),
            std::count(dump.begin(), dump.end(), '}'));
  EXPECT_EQ(std::count(dump.begin(), dump.end(), '['),
            std::count(dump.begin(), dump.end(), ']'));
  EXPECT_EQ(dump.back(), '\n');
}

TEST(FlightRecorderTest, ResetForgetsRingsAndReclaims) {
  FlightRecorder fr;
  fr.arm("/dev/null");
  fr.record("before", 1);
  ASSERT_EQ(fr.snapshot().size(), 1u);
  fr.reset();
  EXPECT_FALSE(fr.armed());
  EXPECT_TRUE(fr.snapshot().empty());
  fr.record("while_disarmed", 2);  // reset leaves it disarmed
  EXPECT_TRUE(fr.snapshot().empty());
  fr.arm("/dev/null");
  fr.record("after", 3);
  fr.disarm();
  const auto snap = fr.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].events[0].kind, "after");
}

}  // namespace
}  // namespace p2pdrm::obs
