#include <gtest/gtest.h>

#include "crypto/aes128.h"
#include "crypto/chacha20.h"
#include "util/bytes.h"

namespace p2pdrm::crypto {
namespace {

using util::Bytes;
using util::bytes_of;
using util::from_hex;
using util::to_hex;

AesKey key_from_hex(const std::string& hex) {
  const Bytes b = from_hex(hex);
  AesKey k{};
  std::copy(b.begin(), b.end(), k.begin());
  return k;
}

// FIPS-197 Appendix C.1.
TEST(Aes128Test, Fips197Vector) {
  const Aes128 aes(key_from_hex("000102030405060708090a0b0c0d0e0f"));
  const Bytes pt = from_hex("00112233445566778899aabbccddeeff");
  std::uint8_t ct[16];
  aes.encrypt_block(pt.data(), ct);
  EXPECT_EQ(to_hex(util::BytesView(ct, 16)), "69c4e0d86a7b0430d8cdb78070b4c55a");

  std::uint8_t back[16];
  aes.decrypt_block(ct, back);
  EXPECT_EQ(to_hex(util::BytesView(back, 16)), to_hex(pt));
}

// NIST SP 800-38A F.1.1 (ECB example block 1).
TEST(Aes128Test, Sp800_38aEcbBlock) {
  const Aes128 aes(key_from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  const Bytes pt = from_hex("6bc1bee22e409f96e93d7e117393172a");
  std::uint8_t ct[16];
  aes.encrypt_block(pt.data(), ct);
  EXPECT_EQ(to_hex(util::BytesView(ct, 16)), "3ad77bb40d7a3660a89ecaf32466ef97");
}

TEST(Aes128Test, EncryptDecryptInPlace) {
  const Aes128 aes(key_from_hex("00000000000000000000000000000000"));
  std::uint8_t block[16] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16};
  std::uint8_t original[16];
  std::copy(std::begin(block), std::end(block), original);
  aes.encrypt_block(block, block);
  aes.decrypt_block(block, block);
  EXPECT_TRUE(std::equal(std::begin(block), std::end(block), original));
}

TEST(Aes128Test, DifferentKeysDifferentCiphertext) {
  const Bytes pt = from_hex("00112233445566778899aabbccddeeff");
  std::uint8_t c1[16], c2[16];
  Aes128(key_from_hex("000102030405060708090a0b0c0d0e0f")).encrypt_block(pt.data(), c1);
  Aes128(key_from_hex("100102030405060708090a0b0c0d0e0f")).encrypt_block(pt.data(), c2);
  EXPECT_NE(to_hex(util::BytesView(c1, 16)), to_hex(util::BytesView(c2, 16)));
}

TEST(AesCtrTest, RoundTrip) {
  const AesCtr ctr(key_from_hex("2b7e151628aed2a6abf7158809cf4f3c"), 0x1234);
  const Bytes plain = bytes_of("live broadcast content packet payload, 47 bytes");
  Bytes data = plain;
  ctr.crypt(data);
  EXPECT_NE(data, plain);
  ctr.crypt(data);
  EXPECT_EQ(data, plain);
}

TEST(AesCtrTest, CryptCopyMatchesInPlace) {
  const AesCtr ctr(key_from_hex("2b7e151628aed2a6abf7158809cf4f3c"), 99);
  const Bytes plain = bytes_of("stream data");
  Bytes in_place = plain;
  ctr.crypt(in_place);
  EXPECT_EQ(ctr.crypt_copy(plain), in_place);
}

TEST(AesCtrTest, RandomAccessOffsets) {
  // Encrypting a buffer in one shot must equal encrypting it piecewise at
  // the matching offsets — peers decrypt packets independently.
  const AesCtr ctr(key_from_hex("000102030405060708090a0b0c0d0e0f"), 7);
  Bytes whole(100);
  for (std::size_t i = 0; i < whole.size(); ++i) whole[i] = static_cast<std::uint8_t>(i);
  const Bytes plain = whole;
  ctr.crypt(whole);

  for (std::size_t start : {0u, 1u, 15u, 16u, 17u, 31u, 33u, 64u, 99u}) {
    Bytes piece(plain.begin() + static_cast<std::ptrdiff_t>(start), plain.end());
    ctr.crypt(piece, start);
    EXPECT_EQ(piece, Bytes(whole.begin() + static_cast<std::ptrdiff_t>(start), whole.end()))
        << "offset " << start;
  }
}

TEST(AesCtrTest, DifferentNoncesDifferentStreams) {
  const AesKey key = key_from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  const Bytes plain(32, 0);
  EXPECT_NE(AesCtr(key, 1).crypt_copy(plain), AesCtr(key, 2).crypt_copy(plain));
}

TEST(AesCtrTest, EmptyInput) {
  const AesCtr ctr(key_from_hex("2b7e151628aed2a6abf7158809cf4f3c"), 0);
  Bytes empty;
  ctr.crypt(empty);
  EXPECT_TRUE(empty.empty());
}

class AesCtrLengthTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AesCtrLengthTest, RoundTripAtLength) {
  const AesCtr ctr(key_from_hex("2b7e151628aed2a6abf7158809cf4f3c"), 555);
  Bytes data(GetParam());
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<std::uint8_t>(i * 7);
  const Bytes original = data;
  ctr.crypt(data);
  if (!data.empty()) EXPECT_NE(data, original);
  ctr.crypt(data);
  EXPECT_EQ(data, original);
}

INSTANTIATE_TEST_SUITE_P(Lengths, AesCtrLengthTest,
                         ::testing::Values(1, 15, 16, 17, 32, 100, 1000, 1500, 4096));

}  // namespace
}  // namespace p2pdrm::crypto
