// SloMonitor tests: error-budget burn-rate arithmetic, sliding-window
// expiry, online Pearson correlation (the Fig 5/6 "latency uncorrelated
// with load" check), budget verdicts, and report byte-stability.
#include <gtest/gtest.h>

#include <string>

#include "obs/slo.h"
#include "util/time.h"

namespace p2pdrm::obs {
namespace {

using p2pdrm::util::SimTime;
using p2pdrm::util::kSecond;

SloMonitor one_round(SimTime p95, SimTime p99, SimTime window) {
  return SloMonitor({{"JOIN", p95, p99, window}});
}

TEST(SloMonitorTest, UnknownRoundIsIgnored) {
  SloMonitor slo = one_round(kSecond, 2 * kSecond, 60 * kSecond);
  slo.observe("NOT_A_ROUND", 0, 5 * kSecond);
  slo.tick(kSecond, 1.0);
  EXPECT_EQ(slo.status("JOIN").count, 0u);
  EXPECT_EQ(slo.status("NOT_A_ROUND").count, 0u);
  EXPECT_TRUE(slo.within_budget());
}

TEST(SloMonitorTest, BurnRateIsOverFractionDividedByAllowance) {
  SloMonitor slo = one_round(kSecond, 2 * kSecond, 60 * kSecond);
  // 90 fast rounds, 10 over the p95 target (but under the p99 target):
  // burn95 = (10/100) / 0.05 = 2.0 — burning budget twice as fast as allowed.
  for (int i = 0; i < 90; ++i) slo.observe("JOIN", 0, kSecond / 2);
  for (int i = 0; i < 10; ++i) slo.observe("JOIN", 0, kSecond + kSecond / 2);
  slo.tick(kSecond, 1.0);
  const SloMonitor::RoundStatus s = slo.status("JOIN");
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.burn95, 2.0);
  EXPECT_DOUBLE_EQ(s.burn99, 0.0);
  EXPECT_DOUBLE_EQ(s.worst_burn95, 2.0);
}

TEST(SloMonitorTest, WindowExpiryForgetsOldViolations) {
  const SimTime window = 10 * kSecond;
  SloMonitor slo = one_round(kSecond, 2 * kSecond, window);
  // All violations land in the first tick bucket...
  for (int i = 0; i < 10; ++i) slo.observe("JOIN", 0, 5 * kSecond);
  slo.tick(kSecond, 1.0);
  EXPECT_GT(slo.status("JOIN").burn95, 0.0);
  const double worst = slo.status("JOIN").worst_burn95;
  // ...then clean ticks march time past the window; the bucket ages out
  // and the burn rate returns to zero, but the worst burn is remembered.
  for (int t = 2; t <= 15; ++t) {
    slo.observe("JOIN", t * kSecond, kSecond / 10);
    slo.tick(t * kSecond, 1.0);
  }
  EXPECT_DOUBLE_EQ(slo.status("JOIN").burn95, 0.0);
  EXPECT_DOUBLE_EQ(slo.status("JOIN").worst_burn95, worst);
}

TEST(SloMonitorTest, PearsonDetectsPerfectCorrelation) {
  SloMonitor slo = one_round(60 * kSecond, 60 * kSecond, 3600 * kSecond);
  // Latency scales linearly with load: r must be +1.
  for (int i = 1; i <= 6; ++i) {
    slo.observe("JOIN", i * kSecond, i * 1000);
    slo.tick(i * kSecond, static_cast<double>(i));
  }
  const SloMonitor::RoundStatus s = slo.status("JOIN");
  ASSERT_TRUE(s.run_r_valid);
  EXPECT_NEAR(s.run_r, 1.0, 1e-9);
  ASSERT_TRUE(s.window_r_valid);
  EXPECT_NEAR(s.window_r, 1.0, 1e-9);
  EXPECT_NEAR(s.max_abs_window_r, 1.0, 1e-9);
}

TEST(SloMonitorTest, PearsonDetectsAnticorrelation) {
  SloMonitor slo = one_round(60 * kSecond, 60 * kSecond, 3600 * kSecond);
  for (int i = 1; i <= 6; ++i) {
    slo.observe("JOIN", i * kSecond, (10 - i) * 1000);
    slo.tick(i * kSecond, static_cast<double>(i));
  }
  const SloMonitor::RoundStatus s = slo.status("JOIN");
  ASSERT_TRUE(s.run_r_valid);
  EXPECT_NEAR(s.run_r, -1.0, 1e-9);
  EXPECT_NEAR(s.max_abs_window_r, 1.0, 1e-9);
}

TEST(SloMonitorTest, ZeroVarianceMakesCorrelationInvalid) {
  // The paper's ideal outcome — latency flat while load varies — must
  // report "no correlation computable", not r = 0 by accident.
  SloMonitor slo = one_round(60 * kSecond, 60 * kSecond, 3600 * kSecond);
  for (int i = 1; i <= 6; ++i) {
    slo.observe("JOIN", i * kSecond, 5000);
    slo.tick(i * kSecond, static_cast<double>(i));
  }
  const SloMonitor::RoundStatus s = slo.status("JOIN");
  EXPECT_FALSE(s.run_r_valid);
  EXPECT_FALSE(s.window_r_valid);
  EXPECT_DOUBLE_EQ(s.run_r, 0.0);
}

TEST(SloMonitorTest, FewerThanThreeBucketsNeverCorrelate) {
  // Two points always fit a line exactly; r is meaningless below n = 3.
  SloMonitor slo = one_round(60 * kSecond, 60 * kSecond, 3600 * kSecond);
  for (int i = 1; i <= 2; ++i) {
    slo.observe("JOIN", i * kSecond, i * 1000);
    slo.tick(i * kSecond, static_cast<double>(i));
  }
  const SloMonitor::RoundStatus s = slo.status("JOIN");
  EXPECT_FALSE(s.run_r_valid);
  EXPECT_FALSE(s.window_r_valid);
  EXPECT_DOUBLE_EQ(s.max_abs_window_r, 0.0);
}

TEST(SloMonitorTest, WithinBudgetTracksWholeRunQuantiles) {
  SloMonitor good = one_round(kSecond, 2 * kSecond, 60 * kSecond);
  for (int i = 0; i < 100; ++i) good.observe("JOIN", 0, 10 * 1000);
  EXPECT_TRUE(good.status("JOIN").p95_ok);
  EXPECT_TRUE(good.within_budget());

  SloMonitor bad = one_round(kSecond, 2 * kSecond, 60 * kSecond);
  for (int i = 0; i < 100; ++i) bad.observe("JOIN", 0, 30 * kSecond);
  EXPECT_FALSE(bad.status("JOIN").p95_ok);
  EXPECT_FALSE(bad.within_budget());
}

TEST(SloMonitorTest, ReportIsByteStableAndLabelsVerdicts) {
  auto build = [] {
    SloMonitor slo({{"LOGIN1", kSecond, 2 * kSecond, 60 * kSecond},
                    {"JOIN", kSecond, 2 * kSecond, 60 * kSecond}});
    for (int i = 1; i <= 4; ++i) {
      slo.observe("LOGIN1", i * kSecond, 100 * 1000);
      slo.observe("JOIN", i * kSecond, 10 * kSecond);
      slo.tick(i * kSecond, static_cast<double>(i % 3));
    }
    return slo.report();
  };
  const std::string a = build();
  EXPECT_EQ(a, build());
  EXPECT_NE(a.find("LOGIN1"), std::string::npos);
  EXPECT_NE(a.find("PASS"), std::string::npos);
  EXPECT_NE(a.find("FAIL"), std::string::npos);
  EXPECT_NE(a.find("r_win"), std::string::npos);
}

}  // namespace
}  // namespace p2pdrm::obs
