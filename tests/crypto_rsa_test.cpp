#include <gtest/gtest.h>

#include "crypto/chacha20.h"
#include "crypto/rsa.h"
#include "util/bytes.h"

namespace p2pdrm::crypto {
namespace {

using util::Bytes;
using util::bytes_of;

// Key generation is the slow part; share one pair across the suite.
const RsaKeyPair& test_keypair() {
  static const RsaKeyPair kp = [] {
    SecureRandom rng(0xdeadbeef);
    return generate_rsa_keypair(rng, 512);
  }();
  return kp;
}

const RsaKeyPair& other_keypair() {
  static const RsaKeyPair kp = [] {
    SecureRandom rng(0xfeedface);
    return generate_rsa_keypair(rng, 512);
  }();
  return kp;
}

TEST(RsaKeygenTest, ModulusProperties) {
  const auto& kp = test_keypair();
  EXPECT_EQ(kp.pub.n.bit_length(), 512u);
  EXPECT_EQ(kp.pub.e, BigUInt(65537));
  EXPECT_EQ(kp.priv.p * kp.priv.q, kp.priv.n);
  EXPECT_EQ(kp.pub.n, kp.priv.n);
}

TEST(RsaKeygenTest, PrivateExponentInverts) {
  const auto& kp = test_keypair();
  const BigUInt phi = (kp.priv.p - BigUInt(1)) * (kp.priv.q - BigUInt(1));
  EXPECT_EQ((kp.priv.d * kp.priv.e) % phi, BigUInt(1));
}

TEST(RsaKeygenTest, CrtComponentsConsistent) {
  const auto& kp = test_keypair();
  EXPECT_EQ(kp.priv.dp, kp.priv.d % (kp.priv.p - BigUInt(1)));
  EXPECT_EQ(kp.priv.dq, kp.priv.d % (kp.priv.q - BigUInt(1)));
  EXPECT_EQ((kp.priv.qinv * kp.priv.q) % kp.priv.p, BigUInt(1));
}

TEST(RsaKeygenTest, RejectsTinyKeys) {
  SecureRandom rng(1);
  EXPECT_THROW(generate_rsa_keypair(rng, 128), std::invalid_argument);
}

TEST(RsaKeygenTest, PrivateOpInvertsPublicOp) {
  const auto& kp = test_keypair();
  SecureRandom rng(17);
  for (int i = 0; i < 3; ++i) {
    const BigUInt m = BigUInt::random_below(rng, kp.pub.n);
    const BigUInt c = BigUInt::mod_pow(m, kp.pub.e, kp.pub.n);
    EXPECT_EQ(kp.priv.private_op(c), m);
  }
}

TEST(RsaPublicKeyTest, EncodeDecodeRoundTrip) {
  const auto& kp = test_keypair();
  const RsaPublicKey decoded = RsaPublicKey::decode(kp.pub.encode());
  EXPECT_EQ(decoded, kp.pub);
}

TEST(RsaPublicKeyTest, FingerprintStableAndDistinct) {
  EXPECT_EQ(test_keypair().pub.fingerprint(), test_keypair().pub.fingerprint());
  EXPECT_NE(test_keypair().pub.fingerprint(), other_keypair().pub.fingerprint());
}

TEST(RsaEncryptTest, RoundTrip) {
  const auto& kp = test_keypair();
  SecureRandom rng(21);
  const Bytes msg = bytes_of("session-key-16by");
  const Bytes ct = rsa_encrypt(kp.pub, msg, rng);
  EXPECT_EQ(ct.size(), kp.pub.modulus_bytes());
  const auto pt = rsa_decrypt(kp.priv, ct);
  ASSERT_TRUE(pt.has_value());
  EXPECT_EQ(*pt, msg);
}

TEST(RsaEncryptTest, RandomizedPadding) {
  const auto& kp = test_keypair();
  SecureRandom rng(22);
  const Bytes msg = bytes_of("hello");
  EXPECT_NE(rsa_encrypt(kp.pub, msg, rng), rsa_encrypt(kp.pub, msg, rng));
}

TEST(RsaEncryptTest, MaxLengthMessage) {
  const auto& kp = test_keypair();
  SecureRandom rng(23);
  const Bytes msg(kp.pub.modulus_bytes() - 11, 0x41);
  const auto pt = rsa_decrypt(kp.priv, rsa_encrypt(kp.pub, msg, rng));
  ASSERT_TRUE(pt.has_value());
  EXPECT_EQ(*pt, msg);
}

TEST(RsaEncryptTest, OverlongMessageThrows) {
  const auto& kp = test_keypair();
  SecureRandom rng(24);
  const Bytes msg(kp.pub.modulus_bytes() - 10, 0x41);
  EXPECT_THROW(rsa_encrypt(kp.pub, msg, rng), std::invalid_argument);
}

TEST(RsaEncryptTest, EmptyMessage) {
  const auto& kp = test_keypair();
  SecureRandom rng(25);
  const auto pt = rsa_decrypt(kp.priv, rsa_encrypt(kp.pub, {}, rng));
  ASSERT_TRUE(pt.has_value());
  EXPECT_TRUE(pt->empty());
}

TEST(RsaDecryptTest, WrongKeyFailsCleanly) {
  SecureRandom rng(26);
  const Bytes ct = rsa_encrypt(test_keypair().pub, bytes_of("secret"), rng);
  EXPECT_FALSE(rsa_decrypt(other_keypair().priv, ct).has_value());
}

TEST(RsaDecryptTest, CorruptedCiphertextFails) {
  const auto& kp = test_keypair();
  SecureRandom rng(27);
  Bytes ct = rsa_encrypt(kp.pub, bytes_of("secret"), rng);
  ct[ct.size() / 2] ^= 0xff;
  const auto pt = rsa_decrypt(kp.priv, ct);
  // Either padding fails (nullopt) or the plaintext differs; never the secret.
  if (pt.has_value()) EXPECT_NE(*pt, bytes_of("secret"));
}

TEST(RsaDecryptTest, WrongLengthRejected) {
  const auto& kp = test_keypair();
  EXPECT_FALSE(rsa_decrypt(kp.priv, bytes_of("short")).has_value());
}

TEST(RsaSignTest, SignVerifyRoundTrip) {
  const auto& kp = test_keypair();
  const Bytes msg = bytes_of("user ticket body bytes");
  const Bytes sig = rsa_sign(kp.priv, msg);
  EXPECT_EQ(sig.size(), kp.pub.modulus_bytes());
  EXPECT_TRUE(rsa_verify(kp.pub, msg, sig));
}

TEST(RsaSignTest, SignatureIsDeterministic) {
  const auto& kp = test_keypair();
  const Bytes msg = bytes_of("deterministic");
  EXPECT_EQ(rsa_sign(kp.priv, msg), rsa_sign(kp.priv, msg));
}

TEST(RsaSignTest, TamperedMessageFails) {
  const auto& kp = test_keypair();
  const Bytes sig = rsa_sign(kp.priv, bytes_of("original"));
  EXPECT_FALSE(rsa_verify(kp.pub, bytes_of("originaX"), sig));
}

TEST(RsaSignTest, TamperedSignatureFails) {
  const auto& kp = test_keypair();
  const Bytes msg = bytes_of("message");
  Bytes sig = rsa_sign(kp.priv, msg);
  sig[0] ^= 0x01;
  EXPECT_FALSE(rsa_verify(kp.pub, msg, sig));
  sig[0] ^= 0x01;
  sig.back() ^= 0x80;
  EXPECT_FALSE(rsa_verify(kp.pub, msg, sig));
}

TEST(RsaSignTest, WrongKeyFails) {
  const Bytes msg = bytes_of("message");
  const Bytes sig = rsa_sign(test_keypair().priv, msg);
  EXPECT_FALSE(rsa_verify(other_keypair().pub, msg, sig));
}

TEST(RsaSignTest, WrongLengthSignatureFails) {
  const auto& kp = test_keypair();
  EXPECT_FALSE(rsa_verify(kp.pub, bytes_of("m"), bytes_of("not-a-signature")));
  EXPECT_FALSE(rsa_verify(kp.pub, bytes_of("m"), {}));
}

TEST(RsaSignTest, EmptyMessageSignable) {
  const auto& kp = test_keypair();
  const Bytes sig = rsa_sign(kp.priv, {});
  EXPECT_TRUE(rsa_verify(kp.pub, {}, sig));
  EXPECT_FALSE(rsa_verify(kp.pub, bytes_of("x"), sig));
}

TEST(RsaBitsTest, Works1024) {
  SecureRandom rng(0xabcd);
  const RsaKeyPair kp = generate_rsa_keypair(rng, 1024);
  EXPECT_EQ(kp.pub.n.bit_length(), 1024u);
  const Bytes msg = bytes_of("bigger modulus");
  EXPECT_TRUE(rsa_verify(kp.pub, msg, rsa_sign(kp.priv, msg)));
  const auto pt = rsa_decrypt(kp.priv, rsa_encrypt(kp.pub, msg, rng));
  ASSERT_TRUE(pt.has_value());
  EXPECT_EQ(*pt, msg);
}

}  // namespace
}  // namespace p2pdrm::crypto
