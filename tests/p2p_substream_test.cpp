#include <gtest/gtest.h>

#include "crypto/chacha20.h"
#include "p2p/substream.h"

namespace p2pdrm::p2p {
namespace {

using util::Bytes;
using util::bytes_of;

TEST(SubstreamOfTest, RoundRobin) {
  EXPECT_EQ(substream_of(0, 4), 0u);
  EXPECT_EQ(substream_of(1, 4), 1u);
  EXPECT_EQ(substream_of(4, 4), 0u);
  EXPECT_EQ(substream_of(7, 4), 3u);
  EXPECT_EQ(substream_of(1000, 1), 0u);
}

TEST(SubstreamRouterTest, AssignAndLookup) {
  SubstreamRouter router(4);
  EXPECT_EQ(router.substream_count(), 4u);
  EXPECT_EQ(router.unassigned().size(), 4u);

  router.assign(0, 10);
  router.assign(1, 11);
  router.assign(2, 10);  // one parent can serve several sub-streams
  EXPECT_EQ(router.parent_of(0), 10u);
  EXPECT_EQ(router.parent_of(2), 10u);
  EXPECT_FALSE(router.parent_of(3).has_value());
  EXPECT_EQ(router.unassigned(), std::vector<std::size_t>{3});
}

TEST(SubstreamRouterTest, DistinctParents) {
  SubstreamRouter router(4);
  router.assign(0, 10);
  router.assign(1, 11);
  router.assign(2, 10);
  const auto parents = router.parents();
  EXPECT_EQ(parents.size(), 2u);
}

TEST(SubstreamRouterTest, DropParentFreesItsSubstreams) {
  SubstreamRouter router(4);
  router.assign(0, 10);
  router.assign(1, 11);
  router.assign(2, 10);
  router.assign(3, 12);

  const auto freed = router.drop_parent(10);
  EXPECT_EQ(freed, (std::vector<std::size_t>{0, 2}));
  EXPECT_FALSE(router.parent_of(0).has_value());
  EXPECT_EQ(router.parent_of(1), 11u);
  // Failover: reassign the freed sub-streams to a surviving parent.
  for (std::size_t s : freed) router.assign(s, 11);
  EXPECT_TRUE(router.unassigned().empty());
}

TEST(SubstreamRouterTest, ZeroSubstreamsRejected) {
  EXPECT_THROW(SubstreamRouter(0), std::invalid_argument);
}

TEST(SubstreamRouterTest, OutOfRangeThrows) {
  SubstreamRouter router(2);
  EXPECT_THROW(router.assign(2, 1), std::out_of_range);
  EXPECT_THROW((void)router.parent_of(5), std::out_of_range);
}

TEST(SubstreamBufferTest, InOrderPassthrough) {
  SubstreamBuffer buf;
  for (std::uint64_t seq = 0; seq < 5; ++seq) {
    const auto out = buf.insert(seq, bytes_of("p" + std::to_string(seq)));
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].seq, seq);
  }
  EXPECT_EQ(buf.delivered_count(), 5u);
  EXPECT_EQ(buf.buffered(), 0u);
}

TEST(SubstreamBufferTest, ReordersAcrossSubstreams) {
  // Two sub-streams with the odd stream running ahead: 1, 0, 3, 2, 5, 4.
  SubstreamBuffer buf;
  EXPECT_TRUE(buf.insert(1, bytes_of("b")).empty());
  auto out = buf.insert(0, bytes_of("a"));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].seq, 0u);
  EXPECT_EQ(out[1].seq, 1u);

  EXPECT_TRUE(buf.insert(3, bytes_of("d")).empty());
  out = buf.insert(2, bytes_of("c"));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].payload, bytes_of("c"));
  EXPECT_EQ(out[1].payload, bytes_of("d"));
}

TEST(SubstreamBufferTest, DuplicateDropped) {
  SubstreamBuffer buf;
  (void)buf.insert(0, bytes_of("a"));
  EXPECT_TRUE(buf.insert(0, bytes_of("a-again")).empty());
  EXPECT_EQ(buf.dropped_count(), 1u);

  EXPECT_TRUE(buf.insert(2, bytes_of("c")).empty());
  EXPECT_TRUE(buf.insert(2, bytes_of("c-again")).empty());  // buffered dup
  EXPECT_EQ(buf.dropped_count(), 2u);
}

TEST(SubstreamBufferTest, WindowBound) {
  SubstreamBuffer buf(/*window=*/4);
  EXPECT_TRUE(buf.insert(3, bytes_of("edge")).empty());   // inside window
  EXPECT_TRUE(buf.insert(4, bytes_of("beyond")).empty()); // outside
  EXPECT_EQ(buf.dropped_count(), 1u);
  EXPECT_EQ(buf.buffered(), 1u);
}

TEST(SubstreamBufferTest, SkipToAbandonsGap) {
  SubstreamBuffer buf;
  (void)buf.insert(0, bytes_of("a"));
  // Packet 1 lost; 2 and 3 buffered.
  EXPECT_TRUE(buf.insert(2, bytes_of("c")).empty());
  EXPECT_TRUE(buf.insert(3, bytes_of("d")).empty());

  const auto out = buf.skip_to(2);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].seq, 2u);
  EXPECT_EQ(out[1].seq, 3u);
  EXPECT_EQ(buf.next_expected(), 4u);
}

TEST(SubstreamBufferTest, SkipToDropsStaleBuffered) {
  SubstreamBuffer buf;
  EXPECT_TRUE(buf.insert(1, bytes_of("b")).empty());
  EXPECT_TRUE(buf.insert(5, bytes_of("f")).empty());
  const auto out = buf.skip_to(5);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].seq, 5u);
  EXPECT_GE(buf.dropped_count(), 1u);  // packet 1 abandoned
}

TEST(SubstreamBufferTest, SkipBackwardsIsNoop) {
  SubstreamBuffer buf;
  (void)buf.insert(0, bytes_of("a"));
  EXPECT_TRUE(buf.skip_to(0).empty());
  EXPECT_EQ(buf.next_expected(), 1u);
}

TEST(SubstreamBufferTest, ZeroWindowRejected) {
  EXPECT_THROW(SubstreamBuffer(0), std::invalid_argument);
}

// Property sweep: random interleavings across k sub-streams always deliver
// the exact in-order sequence.
class SubstreamPropertyTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SubstreamPropertyTest, RandomInterleavingDeliversInOrder) {
  const std::size_t k = GetParam();
  crypto::SecureRandom rng(k);
  constexpr std::uint64_t kTotal = 300;

  // Per-substream queues advancing independently (bounded skew).
  std::vector<std::uint64_t> cursor(k, 0);
  SubstreamBuffer buf(/*window=*/512);
  std::vector<std::uint64_t> delivered;
  std::uint64_t issued = 0;
  while (issued < kTotal) {
    const std::size_t s = static_cast<std::size_t>(rng.uniform(k));
    // Next seq on sub-stream s: s, s+k, s+2k, ...
    const std::uint64_t seq = s + cursor[s] * k;
    if (seq >= kTotal) continue;
    ++cursor[s];
    ++issued;
    for (auto& d : buf.insert(seq, bytes_of(std::to_string(seq)))) {
      delivered.push_back(d.seq);
    }
  }
  ASSERT_EQ(delivered.size(), kTotal);
  for (std::uint64_t i = 0; i < kTotal; ++i) {
    ASSERT_EQ(delivered[i], i);
  }
  EXPECT_EQ(buf.dropped_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Substreams, SubstreamPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 8, 16));

}  // namespace
}  // namespace p2pdrm::p2p
