// End-to-end integration tests: the full service stack and real clients
// exchanging real protocol bytes through the in-process testbed.
#include <gtest/gtest.h>

#include "client/testbed.h"

namespace p2pdrm::client {
namespace {

using core::DrmError;
using util::kMinute;
using util::kSecond;

class IntegrationTest : public ::testing::Test {
 protected:
  IntegrationTest() : tb_(make_config()) {
    tb_.add_user("alice@example.com", "alices-password");
    tb_.add_user("bob@example.com", "bobs-password");
    region0_ = tb_.geo().region_at(0);
    region1_ = tb_.geo().region_at(1);
    tb_.add_regional_channel(1, "news", region0_);
    tb_.add_regional_channel(2, "weather", region1_);
    tb_.add_subscription_channel(3, "premium-sports", region0_, "101");
    tb_.start_channel_server(1);
    tb_.start_channel_server(2);
    tb_.start_channel_server(3);
  }

  static TestbedConfig make_config() {
    TestbedConfig cfg;
    cfg.seed = 42;
    cfg.geo_plan.num_regions = 2;
    return cfg;
  }

  Testbed tb_;
  geo::RegionId region0_ = 0;
  geo::RegionId region1_ = 0;
};

TEST_F(IntegrationTest, LoginIssuesTicketAndChannelList) {
  Client& alice = tb_.add_client("alice@example.com", "alices-password", region0_);
  ASSERT_EQ(alice.login(), DrmError::kOk);
  EXPECT_TRUE(alice.logged_in());
  ASSERT_TRUE(alice.user_ticket().has_value());
  EXPECT_TRUE(alice.user_ticket()->verify(tb_.user_manager().public_key()));
  EXPECT_EQ(alice.cached_channels().size(), 3u);
}

TEST_F(IntegrationTest, WrongPasswordFailsLogin) {
  Client& mallory = tb_.add_client("alice@example.com", "wrong-password", region0_);
  EXPECT_NE(mallory.login(), DrmError::kOk);
  EXPECT_FALSE(mallory.logged_in());
}

TEST_F(IntegrationTest, UnknownUserFailsLogin) {
  Client& ghost = tb_.add_client("ghost@example.com", "pw", region0_);
  EXPECT_EQ(ghost.login(), DrmError::kUnknownUser);
}

TEST_F(IntegrationTest, ViewableChannelsFollowRegion) {
  Client& alice = tb_.add_client("alice@example.com", "alices-password", region0_);
  ASSERT_EQ(alice.login(), DrmError::kOk);
  const auto viewable = alice.viewable_channels();
  // Region 0: free channel 1 yes, channel 2 (region 1) no, channel 3 needs
  // a subscription alice does not have.
  EXPECT_EQ(viewable, std::vector<util::ChannelId>{1});
}

TEST_F(IntegrationTest, WatchFreeChannelEndToEnd) {
  Client& alice = tb_.add_client("alice@example.com", "alices-password", region0_);
  ASSERT_EQ(alice.login(), DrmError::kOk);
  ASSERT_EQ(alice.switch_channel(1), DrmError::kOk);
  ASSERT_TRUE(alice.channel_ticket().has_value());
  EXPECT_EQ(alice.current_channel(), 1u);

  // Content produced at the Channel Server arrives decryptable.
  const auto received = tb_.broadcast(1, util::bytes_of("live frame 0"));
  ASSERT_TRUE(received.contains(alice.config().node));
  EXPECT_EQ(received.at(alice.config().node), util::bytes_of("live frame 0"));
}

TEST_F(IntegrationTest, ForeignRegionChannelDenied) {
  Client& alice = tb_.add_client("alice@example.com", "alices-password", region0_);
  ASSERT_EQ(alice.login(), DrmError::kOk);
  EXPECT_EQ(alice.switch_channel(2), DrmError::kAccessDenied);
  EXPECT_FALSE(alice.channel_ticket().has_value());
}

TEST_F(IntegrationTest, SubscriptionGatesPremiumChannel) {
  Client& alice = tb_.add_client("alice@example.com", "alices-password", region0_);
  ASSERT_EQ(alice.login(), DrmError::kOk);
  EXPECT_EQ(alice.switch_channel(3), DrmError::kAccessDenied);

  // Subscribe out-of-band at the Account Manager; a fresh login picks up
  // the new attribute and access follows.
  tb_.accounts().subscribe("alice@example.com", {"101", util::kNullTime, util::kNullTime});
  ASSERT_EQ(alice.login(), DrmError::kOk);
  EXPECT_EQ(alice.switch_channel(3), DrmError::kOk);
}

TEST_F(IntegrationTest, ChannelSwitchingTransparentAfterLogin) {
  // §II "Viewing Experience": after sign-on, switching needs no further
  // user-visible verification (no new login rounds).
  Client& alice = tb_.add_client("alice@example.com", "alices-password", region0_);
  ASSERT_EQ(alice.login(), DrmError::kOk);
  tb_.add_regional_channel(4, "news-2", region0_);
  tb_.start_channel_server(4);
  ASSERT_EQ(alice.login(), DrmError::kOk);  // refresh list with channel 4

  const std::size_t logins_before =
      std::count_if(alice.feedback_log().begin(), alice.feedback_log().end(),
                    [](const LatencySample& s) { return s.round == Round::kLogin1; });
  ASSERT_EQ(alice.switch_channel(1), DrmError::kOk);
  ASSERT_EQ(alice.switch_channel(4), DrmError::kOk);
  ASSERT_EQ(alice.switch_channel(1), DrmError::kOk);
  const std::size_t logins_after =
      std::count_if(alice.feedback_log().begin(), alice.feedback_log().end(),
                    [](const LatencySample& s) { return s.round == Round::kLogin1; });
  EXPECT_EQ(logins_before, logins_after);
}

TEST_F(IntegrationTest, PeerToPeerRelayDistribution) {
  // Alice joins the server; Bob joins Alice (after she announces herself).
  Client& alice = tb_.add_client("alice@example.com", "alices-password", region0_);
  ASSERT_EQ(alice.login(), DrmError::kOk);
  ASSERT_EQ(alice.switch_channel(1), DrmError::kOk);
  tb_.announce(alice);

  Client& bob = tb_.add_client("bob@example.com", "bobs-password", region0_);
  ASSERT_EQ(bob.login(), DrmError::kOk);
  ASSERT_EQ(bob.switch_channel(1), DrmError::kOk);

  const auto received = tb_.broadcast(1, util::bytes_of("frame"));
  EXPECT_TRUE(received.contains(alice.config().node));
  EXPECT_TRUE(received.contains(bob.config().node));
}

TEST_F(IntegrationTest, KeyRotationReachesWholeTree) {
  Client& alice = tb_.add_client("alice@example.com", "alices-password", region0_);
  ASSERT_EQ(alice.login(), DrmError::kOk);
  ASSERT_EQ(alice.switch_channel(1), DrmError::kOk);
  tb_.announce(alice);
  Client& bob = tb_.add_client("bob@example.com", "bobs-password", region0_);
  ASSERT_EQ(bob.login(), DrmError::kOk);
  ASSERT_EQ(bob.switch_channel(1), DrmError::kOk);

  // Advance past a rotation; both clients must decrypt new-key content.
  tb_.advance(2 * kMinute);
  const auto received = tb_.broadcast(1, util::bytes_of("rotated"));
  EXPECT_EQ(received.size(), 2u);
  for (const auto& [node, payload] : received) {
    EXPECT_EQ(payload, util::bytes_of("rotated"));
  }
}

TEST_F(IntegrationTest, SameAccountSecondLocationSupersedesFirst) {
  // §IV-D: an account can watch a channel from one location at a time;
  // moving locations wins, and the old location's renewal is refused.
  Client& home = tb_.add_client("alice@example.com", "alices-password", region0_);
  ASSERT_EQ(home.login(), DrmError::kOk);
  ASSERT_EQ(home.switch_channel(1), DrmError::kOk);

  Client& office = tb_.add_client("alice@example.com", "alices-password", region0_);
  ASSERT_EQ(office.login(), DrmError::kOk);
  ASSERT_EQ(office.switch_channel(1), DrmError::kOk);

  // Renewal window opens near expiry (10 min lifetime, 3 min window).
  tb_.clock().advance(8 * kMinute);
  EXPECT_EQ(home.renew_channel_ticket(), DrmError::kRenewalRefused);
  EXPECT_EQ(office.renew_channel_ticket(), DrmError::kOk);
}

TEST_F(IntegrationTest, RenewalKeepsPeeringAlive) {
  Client& alice = tb_.add_client("alice@example.com", "alices-password", region0_);
  ASSERT_EQ(alice.login(), DrmError::kOk);
  ASSERT_EQ(alice.switch_channel(1), DrmError::kOk);

  tb_.clock().advance(8 * kMinute);
  ASSERT_EQ(alice.renew_channel_ticket(), DrmError::kOk);
  EXPECT_TRUE(alice.channel_ticket()->ticket.renewal);

  // Past the original expiry: the peering must survive thanks to renewal.
  tb_.clock().advance(4 * kMinute);  // t = 12 min > original 10 min expiry
  EXPECT_EQ(tb_.evict_expired(), 0u);
}

TEST_F(IntegrationTest, WithoutRenewalPeerSeversAtExpiry) {
  Client& alice = tb_.add_client("alice@example.com", "alices-password", region0_);
  ASSERT_EQ(alice.login(), DrmError::kOk);
  ASSERT_EQ(alice.switch_channel(1), DrmError::kOk);
  tb_.clock().advance(11 * kMinute);
  EXPECT_EQ(tb_.evict_expired(), 1u);
  // Severed: new content no longer reaches alice.
  const auto received = tb_.broadcast(1, util::bytes_of("gone"));
  EXPECT_FALSE(received.contains(alice.config().node));
}

TEST_F(IntegrationTest, BlackoutDeniesDuringWindowOnly) {
  Client& alice = tb_.add_client("alice@example.com", "alices-password", region0_);
  ASSERT_EQ(alice.login(), DrmError::kOk);
  ASSERT_EQ(alice.switch_channel(1), DrmError::kOk);

  const util::SimTime now = tb_.clock().now();
  tb_.policy_manager().blackout(1, now + 5 * kMinute, now + 65 * kMinute, now);

  // Refresh list (utime advanced). Before the window, access still granted.
  ASSERT_EQ(alice.login(), DrmError::kOk);
  EXPECT_EQ(alice.switch_channel(1), DrmError::kOk);

  tb_.clock().advance(6 * kMinute);  // inside the blackout window
  EXPECT_EQ(alice.switch_channel(1), DrmError::kAccessDenied);

  tb_.clock().advance(60 * kMinute);  // past the window
  ASSERT_EQ(alice.login(), DrmError::kOk);  // user ticket expired meanwhile
  EXPECT_EQ(alice.switch_channel(1), DrmError::kOk);
}

TEST_F(IntegrationTest, FeedbackLogRecordsAllFiveRounds) {
  Client& alice = tb_.add_client("alice@example.com", "alices-password", region0_);
  ASSERT_EQ(alice.login(), DrmError::kOk);
  ASSERT_EQ(alice.switch_channel(1), DrmError::kOk);
  std::array<int, 5> counts{};
  for (const LatencySample& s : alice.feedback_log()) {
    ++counts[static_cast<std::size_t>(s.round)];
    EXPECT_TRUE(s.success);
  }
  EXPECT_EQ(counts[0], 1);  // LOGIN1
  EXPECT_EQ(counts[1], 1);  // LOGIN2
  EXPECT_EQ(counts[2], 1);  // SWITCH1
  EXPECT_EQ(counts[3], 1);  // SWITCH2
  EXPECT_EQ(counts[4], 1);  // JOIN
}

TEST_F(IntegrationTest, UserTicketAutoRenewal) {
  Client& alice = tb_.add_client("alice@example.com", "alices-password", region0_);
  ASSERT_EQ(alice.login(), DrmError::kOk);
  const util::SimTime first_expiry = alice.user_ticket()->ticket.expiry_time;
  tb_.clock().advance(29 * kMinute);  // within the 2-minute slack of expiry
  ASSERT_EQ(alice.ensure_user_ticket(), DrmError::kOk);
  EXPECT_GT(alice.user_ticket()->ticket.expiry_time, first_expiry);
}

TEST_F(IntegrationTest, PartitionedChannelManagers) {
  TestbedConfig cfg = make_config();
  cfg.partitions = 2;
  Testbed tb(cfg);
  tb.add_user("carol@example.com", "pw");
  const geo::RegionId region = tb.geo().region_at(0);
  tb.add_regional_channel(1, "pop", region, /*partition=*/0);
  tb.add_regional_channel(2, "niche", region, /*partition=*/1);
  tb.start_channel_server(1);
  tb.start_channel_server(2);

  Client& carol = tb.add_client("carol@example.com", "pw", region);
  ASSERT_EQ(carol.login(), DrmError::kOk);
  ASSERT_EQ(carol.switch_channel(1), DrmError::kOk);
  EXPECT_TRUE(carol.channel_ticket()->verify(tb.channel_manager(0).public_key()));
  ASSERT_EQ(carol.switch_channel(2), DrmError::kOk);
  EXPECT_TRUE(carol.channel_ticket()->verify(tb.channel_manager(1).public_key()));
  // Each partition's log saw exactly its own channel.
  EXPECT_EQ(tb.channel_manager(0).log().views_per_channel().count(2), 0u);
  EXPECT_EQ(tb.channel_manager(1).log().views_per_channel().count(1), 0u);
}

TEST_F(IntegrationTest, ViewingLogSupportsRoyaltyReporting) {
  Client& alice = tb_.add_client("alice@example.com", "alices-password", region0_);
  Client& bob = tb_.add_client("bob@example.com", "bobs-password", region0_);
  ASSERT_EQ(alice.login(), DrmError::kOk);
  ASSERT_EQ(bob.login(), DrmError::kOk);
  ASSERT_EQ(alice.switch_channel(1), DrmError::kOk);
  ASSERT_EQ(bob.switch_channel(1), DrmError::kOk);
  ASSERT_EQ(alice.switch_channel(1), DrmError::kOk);  // watch again

  const auto views = tb_.channel_manager().log().views_per_channel();
  EXPECT_EQ(views.at(1), 3u);
}

TEST_F(IntegrationTest, ParentDepartureRecoverableByRejoining) {
  // Churn: Bob's parent (Alice) leaves; Bob re-runs the switch (fresh
  // ticket + fresh peer list) and reattaches elsewhere.
  Client& alice = tb_.add_client("alice@example.com", "alices-password", region0_);
  ASSERT_EQ(alice.login(), DrmError::kOk);
  ASSERT_EQ(alice.switch_channel(1), DrmError::kOk);
  tb_.announce(alice);

  Client& bob = tb_.add_client("bob@example.com", "bobs-password", region0_);
  ASSERT_EQ(bob.login(), DrmError::kOk);
  ASSERT_EQ(bob.switch_channel(1), DrmError::kOk);

  // Alice departs: her peer leaves the overlay and the tracker.
  tb_.tracker().unregister_peer(1, alice.config().node);
  if (bob.parent() == alice.config().node) {
    // Bob notices the dead parent and rejoins.
    ASSERT_EQ(bob.switch_channel(1), DrmError::kOk);
  }
  EXPECT_NE(bob.parent(), alice.config().node);
  const auto received = tb_.broadcast(1, util::bytes_of("after churn"));
  EXPECT_TRUE(received.contains(bob.config().node));
}

TEST_F(IntegrationTest, AsNumberPolicyGatesByNetwork) {
  // Table I lists "AS Number: the network the user connects from" — e.g. an
  // ISP-partnered channel available only to that ISP's customers. Build a
  // channel gated on alice's own AS and verify the gate.
  Client& alice = tb_.add_client("alice@example.com", "alices-password", region0_);
  ASSERT_EQ(alice.login(), DrmError::kOk);
  const core::Attribute* as_attr =
      alice.user_ticket()->ticket.attributes.find(core::kAttrAs);
  ASSERT_NE(as_attr, nullptr);
  const std::string alice_as = as_attr->value.value();

  core::ChannelRecord isp_channel;
  isp_channel.id = 50;
  isp_channel.name = "isp-exclusive";
  core::Attribute gate;
  gate.name = core::kAttrAs;
  gate.value = core::AttrValue::of(alice_as);
  isp_channel.attributes.add(gate);
  core::Policy accept;
  accept.priority = 50;
  accept.terms.push_back({core::kAttrAs, core::AttrValue::of(alice_as)});
  accept.action = core::PolicyAction::kAccept;
  isp_channel.policies.push_back(accept);
  tb_.policy_manager().add_channel(isp_channel, tb_.clock().now());
  tb_.start_channel_server(50);

  ASSERT_EQ(alice.login(), DrmError::kOk);  // refresh list
  EXPECT_EQ(alice.switch_channel(50), DrmError::kOk);

  // A viewer from the other region is on a different AS block: denied.
  Client& bob = tb_.add_client("bob@example.com", "bobs-password", region1_);
  ASSERT_EQ(bob.login(), DrmError::kOk);
  EXPECT_EQ(bob.switch_channel(50), DrmError::kAccessDenied);
}

TEST_F(IntegrationTest, CatalogDeploymentEndToEnd) {
  // Deploy a lineup from operator config text and watch it (the full path:
  // parse -> CPM -> channel list push -> policy evaluation -> tickets).
  TestbedConfig cfg = make_config();
  Testbed tb(cfg);
  tb.add_user("op@example.com", "pw");
  const std::string region = std::to_string(tb.geo().region_at(0));
  const std::string catalog = "channel 10 \"from-config\" partition 0\n"
                              "  attribute Region=" + region + "\n" +
                              "  policy Priority 50: Region=" + region +
                              ", Return ACCEPT\n";
  ASSERT_EQ(tb.load_catalog(catalog), "");
  tb.start_channel_server(10);

  Client& op = tb.add_client("op@example.com", "pw", tb.geo().region_at(0));
  ASSERT_EQ(op.login(), DrmError::kOk);
  EXPECT_EQ(op.switch_channel(10), DrmError::kOk);

  EXPECT_NE(tb.load_catalog("garbage"), "");  // errors surface, nothing deployed
}

TEST_F(IntegrationTest, OpsCountersAggregateAcrossProtocol) {
  Client& alice = tb_.add_client("alice@example.com", "alices-password", region0_);
  ASSERT_EQ(alice.login(), DrmError::kOk);
  ASSERT_EQ(alice.switch_channel(1), DrmError::kOk);
  ASSERT_EQ(alice.switch_channel(2), DrmError::kAccessDenied);

  const services::UserManagerDomain& domain = tb_.user_manager().domain();
  EXPECT_EQ(domain.login1_stats.successes(), 1u);
  EXPECT_EQ(domain.login2_stats.successes(), 1u);

  const services::ChannelManagerPartition& partition = tb_.channel_manager().partition();
  EXPECT_EQ(partition.switch1_stats.total(), 2u);
  EXPECT_EQ(partition.switch2_stats.count(DrmError::kAccessDenied), 1u);
  EXPECT_EQ(partition.switch2_stats.successes(), 1u);
  EXPECT_DOUBLE_EQ(partition.switch2_stats.success_rate(), 0.5);
}

TEST_F(IntegrationTest, PpvEndToEnd) {
  const util::SimTime start = tb_.clock().now() + 5 * kMinute;
  const util::SimTime end = start + 60 * kMinute;
  tb_.policy_manager().add_ppv_program(1, "ppv-77", start, end, tb_.clock().now());
  tb_.accounts().subscribe("alice@example.com", {"ppv-77", start, end});

  Client& alice = tb_.add_client("alice@example.com", "alices-password", region0_);
  Client& bob = tb_.add_client("bob@example.com", "bobs-password", region0_);
  tb_.clock().advance(10 * kMinute);  // inside the program window
  ASSERT_EQ(alice.login(), DrmError::kOk);
  ASSERT_EQ(bob.login(), DrmError::kOk);
  EXPECT_EQ(alice.switch_channel(1), DrmError::kOk);
  EXPECT_EQ(bob.switch_channel(1), DrmError::kAccessDenied);
}

TEST_F(IntegrationTest, EavesdropperWithoutKeysReadsNothing) {
  Client& alice = tb_.add_client("alice@example.com", "alices-password", region0_);
  ASSERT_EQ(alice.login(), DrmError::kOk);
  ASSERT_EQ(alice.switch_channel(1), DrmError::kOk);
  const util::Bytes secret = util::bytes_of("pay-per-view content");
  const auto received = tb_.broadcast(1, secret);
  ASSERT_TRUE(received.contains(alice.config().node));
  // The ciphertext differs from the plaintext (no plaintext leak on wire).
  // (The Testbed delivers decrypted payloads only to authorized peers.)
  EXPECT_EQ(received.size(), 1u);
}

}  // namespace
}  // namespace p2pdrm::client
