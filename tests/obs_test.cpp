// Observability subsystem unit tests: log-bucketed histogram layout and
// quantile error bounds, registry counters/gauges/families, tracer span
// bookkeeping, and exporter formats.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "obs/export.h"
#include "obs/registry.h"
#include "obs/runtime.h"
#include "obs/trace.h"

namespace p2pdrm::obs {
namespace {

// --- histogram bucket layout ---

TEST(HistogramTest, SmallValuesGetExactBuckets) {
  // The first kSubBuckets buckets hold exactly one integer each.
  for (std::int64_t v = 0; v < LatencyHistogram::kSubBuckets; ++v) {
    const std::size_t i = LatencyHistogram::bucket_index(v);
    EXPECT_EQ(i, static_cast<std::size_t>(v));
    EXPECT_EQ(LatencyHistogram::bucket_lower(i), v);
    EXPECT_EQ(LatencyHistogram::bucket_upper(i), v + 1);
  }
  EXPECT_EQ(LatencyHistogram::bucket_index(-5), 0u);  // clamps
}

TEST(HistogramTest, BucketBoundariesPartitionTheLine) {
  // Every value maps into [lower, upper) of its own bucket, and buckets
  // tile without gaps: upper(i) == lower(i+1).
  std::size_t prev = 0;
  for (std::int64_t v : {8LL, 9LL, 15LL, 16LL, 17LL, 100LL, 1000LL, 4095LL,
                         4096LL, 1000000LL, (1LL << 40)}) {
    const std::size_t i = LatencyHistogram::bucket_index(v);
    EXPECT_GE(v, LatencyHistogram::bucket_lower(i)) << v;
    EXPECT_LT(v, LatencyHistogram::bucket_upper(i)) << v;
    EXPECT_GE(i, prev) << v;  // monotone in the value
    prev = i;
  }
  for (std::size_t i = 0; i < 200; ++i) {
    EXPECT_EQ(LatencyHistogram::bucket_upper(i),
              LatencyHistogram::bucket_lower(i + 1)) << i;
  }
}

TEST(HistogramTest, BucketRelativeWidthBounded) {
  // Above 2^kPrecisionBits each bucket's width is at most lower/kSubBuckets,
  // the HdrHistogram guarantee behind the quantile error bound.
  for (std::int64_t v = LatencyHistogram::kSubBuckets; v < (1 << 20);
       v = v * 3 / 2 + 1) {
    const std::size_t i = LatencyHistogram::bucket_index(v);
    const std::int64_t lower = LatencyHistogram::bucket_lower(i);
    const std::int64_t width = LatencyHistogram::bucket_upper(i) - lower;
    EXPECT_LE(width * LatencyHistogram::kSubBuckets, lower) << v;
  }
}

TEST(HistogramTest, StatsTrackExactly) {
  LatencyHistogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.quantile(0.5), 0.0);
  h.record(10);
  h.record(20);
  h.record(30);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.min(), 10);
  EXPECT_EQ(h.max(), 30);
  EXPECT_DOUBLE_EQ(h.sum(), 60.0);
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
}

TEST(HistogramTest, QuantileErrorBounded) {
  // Deterministic pseudo-random stream (LCG) of values spanning five orders
  // of magnitude; every quantile estimate must sit within one half bucket
  // width (relative error 1/16) of the exact order statistic.
  LatencyHistogram h;
  std::vector<std::int64_t> values;
  std::uint64_t x = 0x243F6A8885A308D3ull;
  for (int i = 0; i < 20000; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    const std::int64_t v = 8 + static_cast<std::int64_t>((x >> 33) % 10000000);
    values.push_back(v);
    h.record(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 0.999}) {
    const std::size_t rank = std::min(
        values.size() - 1,
        static_cast<std::size_t>(std::ceil(q * values.size())) -
            (q > 0 ? 1 : 0));
    const double exact = static_cast<double>(values[rank]);
    const double est = h.quantile(q);
    EXPECT_LE(std::abs(est - exact), exact / 16.0 + 1.0)
        << "q=" << q << " exact=" << exact << " est=" << est;
  }
  // Tail quantiles are clamped into the observed range.
  EXPECT_LE(h.quantile(1.0), static_cast<double>(h.max()));
  EXPECT_GE(h.quantile(0.0), static_cast<double>(h.min()));
}

TEST(HistogramTest, MergeMatchesCombinedRecording) {
  LatencyHistogram a, b, combined;
  for (std::int64_t v = 1; v < 1000; v += 7) {
    (v % 2 ? a : b).record(v);
    combined.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  EXPECT_DOUBLE_EQ(a.sum(), combined.sum());
  EXPECT_EQ(a.buckets(), combined.buckets());
  EXPECT_DOUBLE_EQ(a.p95(), combined.p95());
}

TEST(HistogramTest, SelfMergeDoubles) {
  LatencyHistogram h;
  h.record(10);
  h.record(100);
  h.merge(h);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 220.0);
  EXPECT_EQ(h.min(), 10);
  EXPECT_EQ(h.max(), 100);
}

TEST(HistogramTest, ResetClears) {
  LatencyHistogram h;
  h.record(42);
  h.reset();
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.quantile(0.5), 0.0);
}

// --- registry ---

TEST(RegistryTest, CountersGaugesHistogramsByName) {
  Registry reg;
  reg.counter("a.total").inc(3);
  reg.gauge("a.depth").set(-7);
  reg.histogram("a.latency").record(100);

  ASSERT_NE(reg.find_counter("a.total"), nullptr);
  EXPECT_EQ(reg.find_counter("a.total")->value(), 3u);
  EXPECT_EQ(reg.find_gauge("a.depth")->value(), -7);
  EXPECT_EQ(reg.find_histogram("a.latency")->count(), 1u);
  EXPECT_EQ(reg.find_counter("nope"), nullptr);
  EXPECT_EQ(reg.find_gauge("nope"), nullptr);
  EXPECT_EQ(reg.find_histogram("nope"), nullptr);

  // Find-or-create returns the same object.
  Counter& c = reg.counter("a.total");
  c.inc();
  EXPECT_EQ(reg.find_counter("a.total")->value(), 4u);
}

TEST(RegistryTest, FamiliesEnumerateInLabelOrder) {
  Registry reg;
  reg.counter("ops", "timeout").inc(2);
  reg.counter("ops", "access-denied").inc(1);
  reg.counter("ops", "ok").inc(5);
  reg.counter("opsx", "decoy").inc(9);  // shares the prefix, not the family

  const auto fam = reg.family("ops");
  ASSERT_EQ(fam.size(), 3u);
  EXPECT_EQ(fam[0].first, "access-denied");
  EXPECT_EQ(fam[1].first, "ok");
  EXPECT_EQ(fam[1].second->value(), 5u);
  EXPECT_EQ(fam[2].first, "timeout");
  EXPECT_NE(reg.find_counter("ops{ok}"), nullptr);
  EXPECT_TRUE(reg.family("absent").empty());
}

TEST(RegistryTest, ResetZeroesButKeepsReferencesValid) {
  Registry reg;
  Counter& c = reg.counter("n");
  Gauge& g = reg.gauge("g");
  LatencyHistogram& h = reg.histogram("h");
  c.inc(5);
  g.set(5);
  h.record(5);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_TRUE(h.empty());
  c.inc();  // reference still live and wired to the registry
  EXPECT_EQ(reg.find_counter("n")->value(), 1u);
}

TEST(RegistryTest, ToStringDeterministicAndSorted) {
  Registry a, b;
  for (Registry* r : {&a, &b}) {
    r->counter("z.last").inc(1);
    r->counter("a.first").inc(2);
    r->histogram("m.mid").record(50);
  }
  EXPECT_EQ(a.to_string(), b.to_string());
  const std::string s = a.to_string();
  // Name order within a metric kind is lexicographic.
  EXPECT_LT(s.find("a.first"), s.find("z.last"));
  EXPECT_NE(s.find("m.mid"), std::string::npos);
}

// --- tracer ---

TEST(TracerTest, SpanLifecycleAndParenting) {
  Tracer t;
  const SpanId root = t.begin_span("client", "LOGIN1", 1000, 10);
  const SpanId child = t.begin_span("client", "attempt", 1000, 10, root);
  t.tag(child, "try", "1");
  t.event(child, 12, "retransmit", "t=2");
  EXPECT_EQ(t.open_spans(), 2u);
  t.end_span(child, 20, false);
  t.end_span(root, 25, true);
  EXPECT_EQ(t.open_spans(), 0u);

  const Span* c = t.find(child);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->parent, root);
  EXPECT_EQ(c->start, 10);
  EXPECT_EQ(c->end, 20);
  EXPECT_FALSE(c->ok);
  ASSERT_EQ(c->tags.size(), 1u);
  EXPECT_EQ(c->tags[0].first, "try");
  ASSERT_EQ(c->events.size(), 1u);
  EXPECT_EQ(c->events[0].at, 12);
  EXPECT_EQ(c->events[0].name, "retransmit");
  EXPECT_EQ(t.find(999), nullptr);
}

TEST(TracerTest, NullSpanOperationsAreNoOps) {
  Tracer t;
  t.tag(0, "k", "v");
  t.event(0, 1, "e");
  t.end_span(0, 1);
  EXPECT_TRUE(t.spans().empty());
}

TEST(TracerTest, CapacityCapsAndCountsDrops) {
  Tracer t;
  t.set_capacity(2);
  EXPECT_NE(t.begin_span("c", "a", 1, 0), 0u);
  EXPECT_NE(t.begin_span("c", "b", 1, 0), 0u);
  EXPECT_EQ(t.begin_span("c", "over", 1, 0), 0u);
  EXPECT_EQ(t.spans().size(), 2u);
  EXPECT_EQ(t.spans_dropped(), 1u);
}

TEST(TracerTest, RequestBindingTable) {
  Tracer t;
  const SpanId s = t.begin_span("client", "LOGIN1", 7, 0);
  t.bind_request(7, 42, s);
  EXPECT_EQ(t.bound_request(7, 42), s);
  EXPECT_EQ(t.bound_request(7, 43), 0u);
  EXPECT_EQ(t.bound_request(8, 42), 0u);
  t.unbind_request(7, 42);
  EXPECT_EQ(t.bound_request(7, 42), 0u);
}

// --- exporters ---

TEST(ExportTest, JsonEscape) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("l1\nl2\t."), "l1\\nl2\\t.");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

TEST(ExportTest, JsonlOneLinePerSpan) {
  Tracer t;
  const SpanId a = t.begin_span("client", "LOGIN1", 1000, 5);
  t.tag(a, "kind", "login1-req");
  t.end_span(a, 15, true);
  t.begin_span("net", "hop \"x\"", 2, 7);

  const std::string out = spans_to_jsonl(t);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
  EXPECT_NE(out.find("\"name\":\"LOGIN1\""), std::string::npos);
  EXPECT_NE(out.find("\"tags\":[[\"kind\",\"login1-req\"]]"), std::string::npos);
  EXPECT_NE(out.find("\\\"x\\\""), std::string::npos);  // escaped quote
  EXPECT_NE(out.find("\"open\":true"), std::string::npos);  // the unended span
}

TEST(ExportTest, ChromeTraceShape) {
  Tracer t;
  const SpanId a = t.begin_span("client", "LOGIN1", 1000, 5);
  t.event(a, 8, "retransmit");
  t.end_span(a, 15, true);

  const std::string out = spans_to_chrome_trace(t);
  EXPECT_EQ(out.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(out.find("\"ph\":\"X\""), std::string::npos);  // complete slice
  EXPECT_NE(out.find("\"ph\":\"i\""), std::string::npos);  // instant event
  EXPECT_NE(out.find("\"dur\":10"), std::string::npos);
  EXPECT_EQ(out.rfind("]}\n"), out.size() - 3);
}

TEST(ExportTest, PrometheusSanitizesNamesAndEmitsHelpType) {
  Registry reg;
  reg.counter("net.packets.sent").inc(5);
  reg.counter("ops", "access-denied").inc(2);
  reg.counter("ops", "ok").inc(3);
  reg.gauge("load.concurrent").set(42);
  reg.histogram("transport.sched_latency_us").record(100);

  const std::string out = registry_to_prometheus(reg);

  // Dots become underscores in sample lines; the dotted original survives
  // only inside HELP comments.
  EXPECT_NE(out.find("net_packets_sent 5"), std::string::npos);
  EXPECT_NE(out.find("load_concurrent 42"), std::string::npos);
  EXPECT_EQ(out.find("\nnet.packets"), std::string::npos);

  // Family labels ride as a Prometheus label, not in the name.
  EXPECT_NE(out.find("ops{label=\"access-denied\"} 2"), std::string::npos);
  EXPECT_NE(out.find("ops{label=\"ok\"} 3"), std::string::npos);

  // HELP maps the sanitized name back to the dotted original; TYPE follows.
  EXPECT_NE(out.find("# HELP net_packets_sent net.packets.sent\n"
                     "# TYPE net_packets_sent counter\n"),
            std::string::npos);
  EXPECT_NE(out.find("# TYPE load_concurrent gauge\n"), std::string::npos);
  EXPECT_NE(out.find("# HELP transport_sched_latency_us "
                     "transport.sched_latency_us\n"
                     "# TYPE transport_sched_latency_us summary\n"),
            std::string::npos);

  // One HELP/TYPE pair per family even with several samples.
  const std::string ops_type = "# TYPE ops counter";
  const std::size_t first = out.find(ops_type);
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(out.find(ops_type, first + 1), std::string::npos);

  // Summaries expose quantiles plus _sum/_count.
  EXPECT_NE(out.find("{quantile=\"0.5\"}"), std::string::npos);
  EXPECT_NE(out.find("transport_sched_latency_us_count 1"), std::string::npos);
}

TEST(ExportTest, PrometheusEveryLineIsExposable) {
  Registry reg;
  reg.counter("a.total").inc();
  reg.gauge("b.depth", "7").set(1);
  reg.histogram("c.lat_us").record(5);
  const std::string out = registry_to_prometheus(reg);
  std::size_t start = 0;
  while (start < out.size()) {
    std::size_t end = out.find('\n', start);
    if (end == std::string::npos) end = out.size();
    const std::string line = out.substr(start, end - start);
    start = end + 1;
    if (line.empty() || line[0] == '#') continue;
    // "<name>[{label}] <value>": the name part is strictly
    // [a-zA-Z_:][a-zA-Z0-9_:]*.
    const std::size_t stop = line.find_first_of("{ ");
    ASSERT_NE(stop, std::string::npos) << line;
    for (std::size_t i = 0; i < stop; ++i) {
      const char c = line[i];
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_' || c == ':';
      EXPECT_TRUE(ok && !(i == 0 && c >= '0' && c <= '9')) << line;
    }
  }
}

// --- the repo-wide metric name inventory ---

// Every metric name any subsystem registers, as documented in DESIGN.md §7.
// New metrics must be added here and must pass the naming convention —
// this is the tripwire against drift (unit-less quantities, instance
// indices embedded in names, capitalized subsystems).
TEST(NamingTest, InventoryObeysTheConvention) {
  const char* kNames[] = {
      // net
      "net.packets.sent", "net.packets.delivered",
      "net.packets.dropped.injected", "net.packets.dropped.link",
      "net.packets.dropped.no_destination",
      // store
      "store.replication.rounds", "store.replication.interval_us",
      "store.lost_records", "store.audit.max_loss_window_us",
      "store.recovery.count", "store.recovery.time_us",
      "store.recovery.full_transfers", "store.recovery.antientropy_ops",
      "store.recovery.replayed", "store.replay.corrupt",
      "store.replay.corrupt_bytes", "store.snapshots.taken",
      // keys
      "keys.rotations_issued", "keys.epochs_delivered",
      "keys.max_staleness_us", "keys.delivery_margin_us",
      // ops / server / client
      "ops.total", "ops{ok}", "ops{access-denied}", "ops{timeout}",
      "server.drops{malformed}", "server.shed{login1-req}", "server.busy_sent",
      "server.queue.depth{0}", "client.round.LOGIN1", "client.round.JOIN",
      "client.breaker.fast_fail", "client.retry_budget.exhausted",
      "client.busy.received", "client.busy.deferred",
      // tracker
      "tracker.announcements", "tracker.load_updates", "tracker.unregisters",
      "tracker.evictions", "tracker.samples", "tracker.peers",
      // macro-sim
      "macro.key.rotations_issued", "macro.key.epochs_delivered",
      "macro.key.delivery_lag_us", "macro.key.max_staleness_us",
      "macro.round.LOGIN1", "macro.round.SWITCH2.hour042",
      "macro.round.JOIN.peak", "macro.round.JOIN.offpeak",
      "macro.shard.events{0}", "macro.shard.imbalance_max_permille",
      // load + transport runtime
      "load.concurrent", "load.clients", "transport.loop.tasks{0}",
      "transport.loop.timers_fired{1}", "transport.loop.busy_us{0}",
      "transport.loop.idle_us{0}", "transport.loop.ready_peak{0}",
      "transport.loop.timer_peak{0}", "transport.loop.utilization_permille{0}",
      "transport.sched_latency_us",
  };
  for (const char* name : kNames) {
    EXPECT_TRUE(metric_name_ok(name)) << name;
  }
}

TEST(ExportTest, HistogramCsv) {
  Registry reg;
  LatencyHistogram& h = reg.histogram("x.latency");
  for (int i = 1; i <= 100; ++i) h.record(i * 10);

  const std::string summary = histograms_to_csv(reg);
  EXPECT_EQ(summary.find("name,count,min_us,max_us,mean_us,p50_us,p95_us,p99_us"),
            0u);
  EXPECT_NE(summary.find("x.latency,100,10,1000"), std::string::npos);

  const std::string buckets = histogram_buckets_to_csv("x.latency", h);
  EXPECT_EQ(buckets.find("name,lower_us,upper_us,count"), 0u);
  // Zero buckets are skipped: every emitted row carries a count.
  EXPECT_EQ(buckets.find(",0\n"), std::string::npos);
}

}  // namespace
}  // namespace p2pdrm::obs
