// Multi-domain deployment (§V): users partitioned across Authentication
// Domains, each with its own User Manager (farm), discovered through the
// Redirection Manager; Channel Managers accept tickets only from the UM
// key they trust.
#include <gtest/gtest.h>

#include "core/auth.h"
#include "geo/geodb.h"
#include "services/account_manager.h"
#include "services/channel_manager.h"
#include "services/redirection_manager.h"
#include "services/user_manager.h"

namespace p2pdrm::services {
namespace {

using core::DrmError;

class MultiDomainTest : public ::testing::Test {
 protected:
  MultiDomainTest() : rng_(4000), geo_(rng_, {.num_regions = 2}) {
    for (std::uint32_t d = 0; d < 2; ++d) {
      UserManagerConfig cfg;
      cfg.domain = d;
      auto domain = std::make_shared<UserManagerDomain>(
          cfg, crypto::generate_rsa_keypair(rng_, 512), rng_.bytes(32));
      domain->reference_binaries[1] = binary_;
      domains_.push_back(domain);
      ums_.push_back(std::make_unique<UserManager>(domain, &geo_.db(), rng_.fork()));
      redirection_.register_domain(
          d, ManagerCoordinates{util::NetAddr{0x0a000000u + d},
                                domain->keys.pub.encode()});
    }
    binary_ = rng_.bytes(1024);
    for (auto& d : domains_) d->reference_binaries[1] = binary_;

    // Accounts are assigned to domains by the Account Manager at signup.
    accounts_ = std::make_unique<AccountManager>();
    add_user("east@example.com", 0);
    add_user("west@example.com", 1);
  }

  void add_user(const std::string& email, std::uint32_t domain) {
    accounts_->create_account(email, "pw", 0);
    ums_[domain]->provision(UserProvisioning{*accounts_->find(email)});
    redirection_.assign_user(email, domain);
  }

  /// Full login against a specific UM; returns the signed ticket if issued.
  std::optional<core::SignedUserTicket> login(UserManager& um, const std::string& email,
                                              util::NetAddr addr) {
    crypto::RsaKeyPair client = crypto::generate_rsa_keypair(rng_, 512);
    core::Login1Request r1;
    r1.email = email;
    r1.client_public_key = client.pub;
    r1.client_version = 1;
    const core::Login1Response resp1 = um.handle_login1(r1, addr, 0);
    if (resp1.error != DrmError::kOk) return std::nullopt;
    const auto payload =
        core::decrypt_with_shp(core::password_hash("pw"), resp1.encrypted_params);
    if (!payload) return std::nullopt;
    util::WireReader r(*payload);
    const util::Bytes nonce = r.raw(core::kNonceSize);
    const core::ChecksumParams params = core::ChecksumParams::decode(r);

    core::Login2Request r2;
    r2.email = email;
    r2.client_public_key = client.pub;
    r2.client_version = 1;
    r2.params = params;
    r2.checksum = core::compute_attestation_checksum(binary_, params);
    r2.challenge = resp1.challenge;
    r2.challenge.nonce = nonce;
    util::Bytes signed_payload = nonce;
    signed_payload.insert(signed_payload.end(), r2.checksum.begin(), r2.checksum.end());
    r2.proof = crypto::rsa_sign(client.priv, signed_payload);
    core::Login2Response resp2 = um.handle_login2(r2, addr, 1);
    if (resp2.error != DrmError::kOk) return std::nullopt;
    return std::move(resp2.ticket);
  }

  crypto::SecureRandom rng_;
  geo::SyntheticGeo geo_;
  util::Bytes binary_ = crypto::SecureRandom(1).bytes(1024);
  std::vector<std::shared_ptr<UserManagerDomain>> domains_;
  std::vector<std::unique_ptr<UserManager>> ums_;
  std::unique_ptr<AccountManager> accounts_;
  RedirectionManager redirection_;
};

TEST_F(MultiDomainTest, RedirectionRoutesToAssignedDomain) {
  const RedirectResponse east = redirection_.handle_lookup({"east@example.com"});
  const RedirectResponse west = redirection_.handle_lookup({"west@example.com"});
  ASSERT_TRUE(east.found);
  ASSERT_TRUE(west.found);
  EXPECT_EQ(east.domain, 0u);
  EXPECT_EQ(west.domain, 1u);
  EXPECT_NE(east.user_manager.public_key, west.user_manager.public_key);
}

TEST_F(MultiDomainTest, LoginSucceedsInOwnDomainOnly) {
  const util::NetAddr addr = geo_.sample_address(rng_, 100);
  EXPECT_TRUE(login(*ums_[0], "east@example.com", addr).has_value());
  // The other domain's UM does not know this user.
  EXPECT_FALSE(login(*ums_[1], "east@example.com", addr).has_value());
}

TEST_F(MultiDomainTest, DomainsSignWithDistinctKeys) {
  const util::NetAddr addr = geo_.sample_address(rng_, 100);
  const auto east_ticket = login(*ums_[0], "east@example.com", addr);
  const auto west_ticket = login(*ums_[1], "west@example.com", addr);
  ASSERT_TRUE(east_ticket && west_ticket);
  EXPECT_TRUE(east_ticket->verify(domains_[0]->keys.pub));
  EXPECT_FALSE(east_ticket->verify(domains_[1]->keys.pub));
  EXPECT_TRUE(west_ticket->verify(domains_[1]->keys.pub));
}

TEST_F(MultiDomainTest, ChannelManagerTrustsOnlyItsDomain) {
  // A Channel Manager configured with domain 0's UM key rejects tickets
  // minted by domain 1 — cross-domain access requires explicit federation.
  ChannelManagerConfig cfg;
  auto partition = std::make_shared<ChannelManagerPartition>(
      cfg, crypto::generate_rsa_keypair(rng_, 512), domains_[0]->keys.pub,
      rng_.bytes(32));
  ChannelManager cm(partition, nullptr, rng_.fork());
  core::ChannelRecord ch;
  ch.id = 1;
  ch.name = "ch";
  cm.update_channel_list({ch});

  const util::NetAddr addr = geo_.sample_address(rng_, 100);
  const auto west_ticket = login(*ums_[1], "west@example.com", addr);
  ASSERT_TRUE(west_ticket.has_value());
  core::Switch1Request r1;
  r1.user_ticket = west_ticket->encode();
  r1.channel_id = 1;
  EXPECT_EQ(cm.handle_switch1(r1, addr, 2).error, DrmError::kBadTicket);
}

TEST_F(MultiDomainTest, UserINsIndependentPerDomain) {
  // Each domain numbers its own users; identity is (domain, UserIN).
  add_user("e2@example.com", 0);
  add_user("w2@example.com", 1);
  EXPECT_EQ(ums_[0]->user_in_of("east@example.com"), 1u);
  EXPECT_EQ(ums_[0]->user_in_of("e2@example.com"), 2u);
  EXPECT_EQ(ums_[1]->user_in_of("west@example.com"), 1u);
  EXPECT_EQ(ums_[1]->user_in_of("w2@example.com"), 2u);
  EXPECT_EQ(ums_[0]->user_in_of("west@example.com"), 0u);  // unknown here
}

}  // namespace
}  // namespace p2pdrm::services
