#include <gtest/gtest.h>

#include <cmath>

#include "analysis/stats.h"
#include "workload/workload.h"

namespace p2pdrm {
namespace {

using util::kHour;
using util::kMinute;
using util::kSecond;

// --- workload ---

TEST(DiurnalProfileTest, TvProfileShape) {
  const workload::DiurnalProfile p = workload::tv_profile();
  // Prime time beats pre-dawn by a wide margin.
  EXPECT_GT(p.intensity(20 * kHour), 5 * p.intensity(4 * kHour));
  // Interpolation is continuous-ish: midpoints sit between neighbours.
  const double h19 = p.intensity(19 * kHour);
  const double h20 = p.intensity(20 * kHour);
  const double mid = p.intensity(19 * kHour + 30 * kMinute);
  EXPECT_GT(mid, std::min(h19, h20) - 1e-9);
  EXPECT_LT(mid, std::max(h19, h20) + 1e-9);
}

TEST(DiurnalProfileTest, DailyFactorsApply) {
  workload::DiurnalProfile p = workload::tv_profile();
  const double monday = p.intensity(20 * kHour);            // day 0
  const double saturday = p.intensity(5 * util::kDay + 20 * kHour);  // day 5
  EXPECT_NEAR(saturday / monday, 1.15, 1e-9);
}

TEST(DiurnalProfileTest, MaxIntensity) {
  const workload::DiurnalProfile p = workload::tv_profile();
  EXPECT_NEAR(p.max_intensity(), 1.0 * 1.15, 1e-9);
}

TEST(ArrivalProcessTest, RateFollowsProfile) {
  const workload::DiurnalProfile profile = workload::tv_profile();
  const workload::ArrivalProcess arrivals(profile, 10.0);
  EXPECT_GT(arrivals.rate_at(20 * kHour), arrivals.rate_at(4 * kHour));
  EXPECT_LE(arrivals.rate_at(20 * kHour), 10.0 + 1e-9);
}

TEST(ArrivalProcessTest, ArrivalsStrictlyIncrease) {
  const workload::ArrivalProcess arrivals(workload::tv_profile(), 5.0);
  crypto::SecureRandom rng(1);
  util::SimTime t = 0;
  for (int i = 0; i < 200; ++i) {
    const util::SimTime next = arrivals.next(t, rng);
    EXPECT_GT(next, t);
    t = next;
  }
}

TEST(ArrivalProcessTest, EmpiricalRateMatchesConfigured) {
  // Count arrivals in a peak-hour window; expect roughly peak_rate * span.
  const workload::ArrivalProcess arrivals(workload::tv_profile(), 2.0);
  crypto::SecureRandom rng(2);
  util::SimTime t = 20 * kHour;
  int count = 0;
  while (true) {
    t = arrivals.next(t, rng);
    if (t > 21 * kHour) break;
    ++count;
  }
  // rate at 20h ≈ 2.0/s (peak of day 0 ≈ 1.0 intensity / 1.15 max) ≈ 1.74/s.
  const double expected = 2.0 * (1.0 / 1.15) * 3600;
  EXPECT_NEAR(count, expected, expected * 0.1);
}

TEST(ArrivalProcessTest, RejectsBadRates) {
  EXPECT_THROW(workload::ArrivalProcess(workload::tv_profile(), 0.0),
               std::invalid_argument);
}

TEST(SessionModelTest, DurationsRespectMinimumAndMedian) {
  workload::SessionModel model;
  model.median_duration = 20 * kMinute;
  model.duration_sigma = 1.0;
  crypto::SecureRandom rng(3);
  std::vector<double> samples;
  for (int i = 0; i < 10001; ++i) {
    const util::SimTime d = model.sample_duration(rng);
    EXPECT_GE(d, model.min_duration);
    samples.push_back(static_cast<double>(d));
  }
  EXPECT_NEAR(analysis::median(samples), static_cast<double>(20 * kMinute),
              static_cast<double>(kMinute));
}

TEST(SessionModelTest, SwitchGapsExponential) {
  workload::SessionModel model;
  model.mean_switch_interval = 10 * kMinute;
  crypto::SecureRandom rng(4);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(model.sample_switch_gap(rng));
  }
  EXPECT_NEAR(sum / n, static_cast<double>(10 * kMinute),
              static_cast<double>(15 * kSecond));
}

TEST(ZipfChannelsTest, ProbabilitiesSumToOne) {
  const workload::ZipfChannels zipf(200, 0.9);
  double total = 0;
  for (std::size_t i = 0; i < zipf.size(); ++i) total += zipf.probability(i);
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_THROW(zipf.probability(200), std::out_of_range);
}

TEST(ZipfChannelsTest, RankOneMostPopular) {
  const workload::ZipfChannels zipf(50, 1.0);
  EXPECT_GT(zipf.probability(0), zipf.probability(1));
  EXPECT_GT(zipf.probability(1), zipf.probability(49));
  // s=1.0: p(0)/p(9) = 10.
  EXPECT_NEAR(zipf.probability(0) / zipf.probability(9), 10.0, 1e-6);
}

TEST(ZipfChannelsTest, EmpiricalSamplingMatches) {
  const workload::ZipfChannels zipf(10, 1.0);
  crypto::SecureRandom rng(5);
  std::vector<int> counts(10, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[zipf.sample(rng)];
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, zipf.probability(0), 0.01);
  EXPECT_NEAR(static_cast<double>(counts[9]) / n, zipf.probability(9), 0.01);
}

TEST(ZipfChannelsTest, RejectsEmpty) {
  EXPECT_THROW(workload::ZipfChannels(0, 1.0), std::invalid_argument);
}

TEST(FlashCrowdTest, ArrivalsInsideRamp) {
  workload::FlashCrowd crowd;
  crowd.start = 100 * kSecond;
  crowd.extra_sessions = 500;
  crowd.ramp = 60 * kSecond;
  crypto::SecureRandom rng(6);
  const auto arrivals = crowd.arrivals(rng);
  ASSERT_EQ(arrivals.size(), 500u);
  EXPECT_TRUE(std::is_sorted(arrivals.begin(), arrivals.end()));
  for (util::SimTime t : arrivals) {
    EXPECT_GE(t, crowd.start);
    EXPECT_LE(t, crowd.start + crowd.ramp);
  }
}

// --- analysis ---

TEST(StatsTest, QuantileBasics) {
  EXPECT_DOUBLE_EQ(analysis::quantile({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(analysis::quantile({5}, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(analysis::median({1, 2, 3, 4, 5}), 3.0);
  EXPECT_DOUBLE_EQ(analysis::median({4, 1, 3, 2}), 2.5);
  EXPECT_DOUBLE_EQ(analysis::quantile({1, 2, 3, 4, 5}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(analysis::quantile({1, 2, 3, 4, 5}, 1.0), 5.0);
}

TEST(StatsTest, MeanBasics) {
  EXPECT_DOUBLE_EQ(analysis::mean({}), 0.0);
  EXPECT_DOUBLE_EQ(analysis::mean({1, 2, 3}), 2.0);
}

TEST(StatsTest, PearsonPerfectCorrelation) {
  const std::vector<double> x = {1, 2, 3, 4};
  const std::vector<double> y = {10, 20, 30, 40};
  EXPECT_NEAR(*analysis::pearson(x, y), 1.0, 1e-12);
  const std::vector<double> neg = {40, 30, 20, 10};
  EXPECT_NEAR(*analysis::pearson(x, neg), -1.0, 1e-12);
}

TEST(StatsTest, PearsonEdgeCases) {
  EXPECT_FALSE(analysis::pearson({1, 2}, {1, 2, 3}).has_value());
  EXPECT_FALSE(analysis::pearson({1}, {1}).has_value());
  EXPECT_FALSE(analysis::pearson({2, 2, 2}, {1, 2, 3}).has_value());
}

TEST(StatsTest, PearsonIndependentNearZero) {
  crypto::SecureRandom rng(7);
  std::vector<double> x, y;
  for (int i = 0; i < 5000; ++i) {
    x.push_back(rng.uniform_real());
    y.push_back(rng.uniform_real());
  }
  EXPECT_LT(std::abs(*analysis::pearson(x, y)), 0.05);
}

TEST(ReservoirTest, KeepsAllWhenUnderCapacity) {
  analysis::Reservoir r(100, 1);
  for (int i = 0; i < 50; ++i) r.add(i);
  EXPECT_EQ(r.samples().size(), 50u);
  EXPECT_EQ(r.seen(), 50u);
}

TEST(ReservoirTest, BoundedAndUnbiased) {
  analysis::Reservoir r(1000, 2);
  for (int i = 0; i < 100000; ++i) r.add(i % 1000);
  EXPECT_EQ(r.samples().size(), 1000u);
  EXPECT_EQ(r.seen(), 100000u);
  // Uniform 0..999: median ≈ 500.
  EXPECT_NEAR(r.median(), 500.0, 50.0);
}

TEST(ReservoirTest, EmptyQuantileIsZero) {
  const analysis::Reservoir r(10, 3);
  EXPECT_TRUE(r.empty());
  EXPECT_DOUBLE_EQ(r.median(), 0.0);
}

TEST(CdfTest, MonotoneAndComplete) {
  std::vector<double> values;
  crypto::SecureRandom rng(8);
  for (int i = 0; i < 5000; ++i) values.push_back(rng.uniform_real());
  const auto cdf = analysis::empirical_cdf(values, 100);
  ASSERT_EQ(cdf.size(), 100u);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].value, cdf[i - 1].value);
    EXPECT_GT(cdf[i].cumulative_probability, cdf[i - 1].cumulative_probability);
  }
  EXPECT_DOUBLE_EQ(cdf.back().cumulative_probability, 1.0);
  EXPECT_NEAR(cdf[49].value, 0.5, 0.05);  // p=0.5 near the true median
}

TEST(CdfTest, EmptyInput) {
  EXPECT_TRUE(analysis::empirical_cdf({}, 10).empty());
  EXPECT_TRUE(analysis::empirical_cdf({1.0}, 0).empty());
}

TEST(CdfTest, SmallInput) {
  const auto cdf = analysis::empirical_cdf({3.0, 1.0, 2.0}, 100);
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0].value, 1.0);
  EXPECT_DOUBLE_EQ(cdf[2].value, 3.0);
}

}  // namespace
}  // namespace p2pdrm
