#include <gtest/gtest.h>

#include "crypto/chacha20.h"
#include "geo/geodb.h"

namespace p2pdrm::geo {
namespace {

TEST(PrefixTest, Contains) {
  const Prefix p{0x0a010000, 16};  // 10.1.0.0/16
  EXPECT_TRUE(p.contains(util::parse_netaddr("10.1.2.3")));
  EXPECT_TRUE(p.contains(util::parse_netaddr("10.1.255.255")));
  EXPECT_FALSE(p.contains(util::parse_netaddr("10.2.0.0")));
}

TEST(PrefixTest, ZeroLengthMatchesEverything) {
  const Prefix p{0, 0};
  EXPECT_TRUE(p.contains(util::parse_netaddr("1.2.3.4")));
  EXPECT_TRUE(p.contains(util::parse_netaddr("255.255.255.255")));
}

TEST(PrefixTest, ToString) {
  EXPECT_EQ((Prefix{0x0a010000, 16}).to_string(), "10.1.0.0/16");
}

TEST(GeoDatabaseTest, ExactAndMiss) {
  GeoDatabase db;
  db.add_prefix({0x0a010000, 16}, {100, 7018});
  EXPECT_EQ(db.lookup(util::parse_netaddr("10.1.2.3")), (GeoInfo{100, 7018}));
  EXPECT_EQ(db.lookup(util::parse_netaddr("10.2.2.3")), (GeoInfo{}));
  EXPECT_FALSE(db.lookup_exactly(util::parse_netaddr("10.2.2.3")).has_value());
}

TEST(GeoDatabaseTest, LongestPrefixWins) {
  GeoDatabase db;
  db.add_prefix({0x0a000000, 8}, {100, 1});   // 10.0.0.0/8
  db.add_prefix({0x0a010000, 16}, {101, 2});  // 10.1.0.0/16
  db.add_prefix({0x0a010200, 24}, {102, 3});  // 10.1.2.0/24
  EXPECT_EQ(db.lookup(util::parse_netaddr("10.5.0.1")).region, 100u);
  EXPECT_EQ(db.lookup(util::parse_netaddr("10.1.9.1")).region, 101u);
  EXPECT_EQ(db.lookup(util::parse_netaddr("10.1.2.9")).region, 102u);
}

TEST(GeoDatabaseTest, HostRoute) {
  GeoDatabase db;
  db.add_prefix({0x0a010203, 32}, {200, 9});
  EXPECT_EQ(db.lookup(util::parse_netaddr("10.1.2.3")).region, 200u);
  EXPECT_EQ(db.lookup(util::parse_netaddr("10.1.2.4")).region, kUnknownRegion);
}

TEST(GeoDatabaseTest, DefaultRoute) {
  GeoDatabase db;
  db.add_prefix({0, 0}, {42, 42});
  EXPECT_EQ(db.lookup(util::parse_netaddr("8.8.8.8")).region, 42u);
}

TEST(GeoDatabaseTest, OverwriteSamePrefix) {
  GeoDatabase db;
  db.add_prefix({0x0a010000, 16}, {100, 1});
  db.add_prefix({0x0a010000, 16}, {200, 2});
  EXPECT_EQ(db.lookup(util::parse_netaddr("10.1.0.1")).region, 200u);
  EXPECT_EQ(db.prefix_count(), 1u);
}

TEST(GeoDatabaseTest, RejectsMalformedPrefix) {
  GeoDatabase db;
  EXPECT_THROW(db.add_prefix({0x0a010001, 16}, {1, 1}), std::invalid_argument);
  EXPECT_THROW(db.add_prefix({0, 33}, {1, 1}), std::invalid_argument);
  EXPECT_THROW(db.add_prefix({0, -1}, {1, 1}), std::invalid_argument);
}

TEST(SyntheticGeoTest, RegionsNumberedFrom100) {
  crypto::SecureRandom rng(1);
  const SyntheticGeo geo(rng, {.num_regions = 3});
  EXPECT_EQ(geo.region_at(0), 100u);
  EXPECT_EQ(geo.region_at(2), 102u);
  EXPECT_THROW(geo.region_at(3), std::out_of_range);
  EXPECT_THROW(geo.region_at(-1), std::out_of_range);
}

TEST(SyntheticGeoTest, SampledAddressesResolveToTheirRegion) {
  crypto::SecureRandom rng(2);
  const SyntheticGeo geo(rng, {.num_regions = 4, .prefixes_per_region = 5});
  for (int r = 0; r < 4; ++r) {
    const RegionId region = geo.region_at(r);
    for (int i = 0; i < 20; ++i) {
      const util::NetAddr addr = geo.sample_address(rng, region);
      EXPECT_EQ(geo.db().lookup(addr).region, region);
    }
  }
}

TEST(SyntheticGeoTest, AsNumbersBelongToRegionBlock) {
  crypto::SecureRandom rng(3);
  const SyntheticGeo geo(rng, {.num_regions = 2, .prefixes_per_region = 4, .as_per_region = 3});
  for (int r = 0; r < 2; ++r) {
    const RegionId region = geo.region_at(r);
    const util::NetAddr addr = geo.sample_address(rng, region);
    const AsNumber as = geo.db().lookup(addr).as_number;
    EXPECT_GE(as, 1000u + static_cast<AsNumber>(r) * 100);
    EXPECT_LT(as, 1000u + static_cast<AsNumber>(r) * 100 + 3);
  }
}

TEST(SyntheticGeoTest, UnknownRegionThrows) {
  crypto::SecureRandom rng(4);
  const SyntheticGeo geo(rng, {.num_regions = 2});
  EXPECT_THROW(geo.sample_address(rng, 999), std::invalid_argument);
}

TEST(SyntheticGeoTest, DeterministicForSeed) {
  crypto::SecureRandom rng1(5), rng2(5);
  const SyntheticGeo a(rng1, {.num_regions = 2});
  const SyntheticGeo b(rng2, {.num_regions = 2});
  crypto::SecureRandom s1(9), s2(9);
  EXPECT_EQ(a.sample_address(s1, 100), b.sample_address(s2, 100));
}

TEST(SyntheticGeoTest, PrefixCountMatchesPlan) {
  crypto::SecureRandom rng(6);
  const SyntheticGeo geo(rng, {.num_regions = 3, .prefixes_per_region = 7});
  EXPECT_EQ(geo.db().prefix_count(), 21u);
}

TEST(SyntheticGeoTest, BadPlanRejected) {
  crypto::SecureRandom rng(7);
  EXPECT_THROW(SyntheticGeo(rng, {.num_regions = 0}), std::invalid_argument);
  EXPECT_THROW(SyntheticGeo(rng, {.prefix_length = 31}), std::invalid_argument);
}

}  // namespace
}  // namespace p2pdrm::geo
