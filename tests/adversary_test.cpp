// Adversary subsystem tests: plan text-format parsing and round-trips, the
// deterministic replay-probe chain on the sim backend, and the
// credential-sharing regression on the real thread transport — two clients
// on one account from different regions, where the ViewingLog's
// single-session rule must leave exactly one survivor.
#include <gtest/gtest.h>

#include <future>
#include <stdexcept>

#include "adversary/abuse_report.h"
#include "adversary/adversary_engine.h"
#include "adversary/adversary_plan.h"
#include "net/deployment.h"
#include "services/catalog.h"

namespace p2pdrm::adversary {
namespace {

using core::DrmError;
using util::kMillisecond;
using util::kMinute;
using util::kSecond;

// ---------------------------------------------------------------------------
// Plan parsing

TEST(AdversaryPlanTest, ParsesEveryVerb) {
  const AdversaryPlan plan = AdversaryPlan::parse(
      "# comment, then a blank line\n"
      "\n"
      "1m   replay-probe  victim@abuse.example pw-victim 1\n"
      "2m   fuzz          30s 0.05 10.254.0.0/16\n"
      "3m   rogue-peer    1 2 garbage\n"
      "4m   sybil         1 64 10.66.0.0/16 4\n"
      "5m   cred-share    shared@abuse.example pw-shared 1 3 8m\n");
  ASSERT_EQ(plan.size(), 5u);
  const auto& ev = plan.events();

  EXPECT_EQ(ev[0].kind, AttackKind::kReplayProbe);
  EXPECT_EQ(ev[0].at, 1 * kMinute);
  EXPECT_EQ(ev[0].email, "victim@abuse.example");
  EXPECT_EQ(ev[0].password, "pw-victim");
  EXPECT_EQ(ev[0].channel, 1u);

  EXPECT_EQ(ev[1].kind, AttackKind::kFuzz);
  EXPECT_EQ(ev[1].duration, 30 * kSecond);
  EXPECT_DOUBLE_EQ(ev[1].rate, 0.05);

  EXPECT_EQ(ev[2].kind, AttackKind::kRoguePeer);
  EXPECT_EQ(ev[2].count, 2u);
  EXPECT_EQ(ev[2].mode, RogueMode::kGarbageKeys);

  EXPECT_EQ(ev[3].kind, AttackKind::kSybilFlood);
  EXPECT_EQ(ev[3].count, 64u);
  EXPECT_EQ(ev[3].sources, 4u);

  EXPECT_EQ(ev[4].kind, AttackKind::kCredShare);
  EXPECT_EQ(ev[4].count, 3u);
  EXPECT_EQ(ev[4].duration, 8 * kMinute);
}

TEST(AdversaryPlanTest, EventsSortedByTimeStable) {
  AdversaryPlan plan;
  plan.sybil_flood(5 * kMinute, 1, 8, fault::AddrBlock::parse("10.0.0.0/8"));
  plan.replay_probe(1 * kMinute, "a@b.c", "pw", 1);
  plan.rogue_peer(1 * kMinute, 1, 2);  // same time: insertion order kept
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan.events()[0].kind, AttackKind::kReplayProbe);
  EXPECT_EQ(plan.events()[1].kind, AttackKind::kRoguePeer);
  EXPECT_EQ(plan.events()[2].kind, AttackKind::kSybilFlood);
}

TEST(AdversaryPlanTest, TextRoundTrip) {
  AdversaryPlan plan;
  plan.replay_probe(30 * kSecond, "victim@abuse.example", "pw-victim", 1);
  plan.fuzz(2 * kMinute, 90 * kSecond, fault::AddrBlock::parse("*"), 0.25);
  plan.rogue_peer(1 * kMinute, 1, 2, RogueMode::kWithholdKeys);
  plan.cred_share(210 * kSecond, "shared@abuse.example", "pw-shared", 1, 3,
                  8 * kMinute);
  plan.sybil_flood(5 * kMinute, 1, 64, fault::AddrBlock::parse("10.66.0.0/16"),
                   4);
  const std::string text = plan.to_string();
  const AdversaryPlan back = AdversaryPlan::parse(text);
  EXPECT_EQ(back.to_string(), text);
  ASSERT_EQ(back.size(), plan.size());
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(back.events()[i].to_string(), plan.events()[i].to_string()) << i;
  }
}

TEST(AdversaryPlanTest, ParseErrorsCarryLineNumbers) {
  // Unknown verb.
  try {
    AdversaryPlan::parse("1m warp-core 1\n");
    FAIL() << "unknown verb accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 1"), std::string::npos)
        << e.what();
  }
  // Malformed time on line 2.
  try {
    AdversaryPlan::parse("# header\nsoon fuzz 30s 0.1 *\n");
    FAIL() << "bad time accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
  // Missing arguments.
  EXPECT_THROW(AdversaryPlan::parse("1m replay-probe onlyemail\n"),
               std::invalid_argument);
  EXPECT_THROW(AdversaryPlan::parse("1m cred-share a@b.c pw 1\n"),
               std::invalid_argument);
  // Out-of-range fuzz rate.
  EXPECT_THROW(AdversaryPlan::parse("1m fuzz 30s 1.5 *\n"),
               std::invalid_argument);
  EXPECT_THROW(AdversaryPlan::parse("1m fuzz 30s -0.1 *\n"),
               std::invalid_argument);
  // Bad rogue mode.
  EXPECT_THROW(AdversaryPlan::parse("1m rogue-peer 1 2 polite\n"),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Deterministic replay-probe chain on the sim backend

TEST(AdversaryEngineTest, ReplayProbeChainAllRejectedOnSim) {
  net::DeploymentConfig cfg;
  cfg.seed = 7;
  cfg.default_link.latency.floor = 10 * kMillisecond;
  cfg.default_link.latency.median = 40 * kMillisecond;
  net::Deployment d(cfg);
  d.add_regional_channel(1, "news", d.geo().region_at(0));
  d.start_channel_server(1);

  AdversaryPlan plan;
  plan.replay_probe(10 * kSecond, "victim@abuse.example", "pw-victim", 1);
  AdversaryEngineConfig ecfg;
  ecfg.seed = 0xab05ed;
  AdversaryEngine engine(d, std::move(plan), ecfg);
  engine.arm();
  d.run_until(2 * kMinute);

  // All five protocol rounds probed; every forgery got an explicit refusal.
  EXPECT_GE(engine.probes_sent(), 8u);
  EXPECT_EQ(engine.probes_accepted(), 0u);
  EXPECT_EQ(engine.probes_timed_out(), 0u);
  EXPECT_EQ(engine.probes_rejected(), engine.probes_sent());

  const AbuseReport rep = AbuseReport::collect(d, engine, 0xab05ed);
  EXPECT_TRUE(rep.gate_no_forgery);
  EXPECT_EQ(rep.transport, "sim");
  EXPECT_NE(rep.to_json().find("\"schema\": \"p2pdrm.abuse.v1\""),
            std::string::npos);
}

TEST(AdversaryEngineTest, ProbeOutcomesDeterministicAcrossRuns) {
  const auto run = [] {
    net::DeploymentConfig cfg;
    cfg.seed = 7;
    cfg.default_link.latency.floor = 10 * kMillisecond;
    cfg.default_link.latency.median = 40 * kMillisecond;
    net::Deployment d(cfg);
    d.add_regional_channel(1, "news", d.geo().region_at(0));
    d.start_channel_server(1);
    AdversaryPlan plan;
    plan.replay_probe(10 * kSecond, "victim@abuse.example", "pw-victim", 1);
    AdversaryEngineConfig ecfg;
    ecfg.seed = 0xab05ed;
    AdversaryEngine engine(d, std::move(plan), ecfg);
    engine.arm();
    d.run_until(2 * kMinute);
    return AbuseReport::collect(d, engine, 0xab05ed).to_json();
  };
  EXPECT_EQ(run(), run());
}

// ---------------------------------------------------------------------------
// Credential-sharing regression on the thread transport (§IV-D)

/// A channel both test regions may watch (each accept policy needs a
/// matching channel attribute to be grounded).
core::ChannelRecord two_region_channel(const net::Deployment& d) {
  core::ChannelRecord rec =
      services::make_regional_channel(1, "shared-live", d.geo().region_at(0));
  const geo::RegionId other = d.geo().region_at(1);
  core::Attribute attr;
  attr.name = core::kAttrRegion;
  attr.value = core::AttrValue::of_number(other);
  rec.attributes.add(std::move(attr));
  core::Policy accept;
  accept.priority = 50;
  accept.terms.push_back({core::kAttrRegion, core::AttrValue::of_number(other)});
  accept.action = core::PolicyAction::kAccept;
  rec.policies.push_back(std::move(accept));
  return rec;
}

/// Run one protocol op on the client's own event loop (live-transport
/// control rule) and wait for its result.
DrmError on_loop(net::Deployment& d, net::AsyncClient& c,
                 const std::function<void(net::AsyncClient&,
                                          net::AsyncClient::Callback)>& op) {
  auto done = std::make_shared<std::promise<DrmError>>();
  std::future<DrmError> fut = done->get_future();
  net::AsyncClient* cp = &c;
  d.network().post(c.config().node, 0, [cp, done, op] {
    op(*cp, [done](DrmError err) { done->set_value(err); });
  });
  return fut.get();
}

TEST(AdversaryCredShareTest, SecondSessionEvictsFirstOnThreadTransport) {
  net::DeploymentConfig cfg;
  cfg.seed = 11;
  cfg.transport = net::TransportKind::kThread;
  cfg.transport_threads = 2;
  cfg.default_link.latency.floor = 1 * kMillisecond;
  cfg.default_link.latency.median = 3 * kMillisecond;
  cfg.request_timeout = 300 * kMillisecond;
  cfg.max_retries = 6;
  // Renewal window spans the whole ticket life so the renewals below are
  // timely; what must decide them is the single-session rule alone.
  cfg.cm.ticket_lifetime = 30 * kSecond;
  cfg.cm.renewal_window = 30 * kSecond;
  net::Deployment d(cfg);

  d.add_user("shared@abuse.example", "pw-shared");
  d.policy_manager().add_channel(two_region_channel(d), d.now());
  d.start_channel_server(1);

  // Same account, two machines, two regions — the paper's password-sharing
  // scenario.
  net::AsyncClient& first =
      d.add_client("shared@abuse.example", "pw-shared", d.geo().region_at(0));
  net::AsyncClient& second =
      d.add_client("shared@abuse.example", "pw-shared", d.geo().region_at(1));

  const auto login = [](net::AsyncClient& c, net::AsyncClient::Callback cb) {
    c.login(std::move(cb));
  };
  const auto watch = [](net::AsyncClient& c, net::AsyncClient::Callback cb) {
    c.switch_channel(1, std::move(cb));
  };
  const auto renew = [](net::AsyncClient& c, net::AsyncClient::Callback cb) {
    c.renew_channel_ticket(std::move(cb));
  };

  ASSERT_EQ(on_loop(d, first, login), DrmError::kOk);
  ASSERT_EQ(on_loop(d, first, watch), DrmError::kOk);
  const util::UserIN user_in = first.user_ticket()->ticket.user_in;

  // The second session starts while the first is still watching.
  ASSERT_EQ(on_loop(d, second, login), DrmError::kOk);
  ASSERT_EQ(on_loop(d, second, watch), DrmError::kOk);

  // Renewal is the adjudication point: the journal's latest fresh-issue
  // entry now belongs to the second session, so the first is evicted and
  // the second survives. Exactly one of the two renews.
  const DrmError first_renew = on_loop(d, first, renew);
  const DrmError second_renew = on_loop(d, second, renew);
  EXPECT_EQ(first_renew, DrmError::kRenewalRefused);
  EXPECT_EQ(second_renew, DrmError::kOk);

  d.transport().shutdown();

  // The ViewingLog journaled both fresh issues plus the surviving renewal,
  // and its latest fresh-issue entry — the eviction evidence — is the
  // second session's address.
  std::size_t fresh = 0, renewals = 0;
  const services::ViewingLog::Entry* latest = nullptr;
  for (std::size_t p = 0; p < d.partition_count(); ++p) {
    const services::ViewingLog& log = d.cm_partition(static_cast<std::uint32_t>(p)).log;
    for (const services::ViewingLog::Entry& e : log.audit_trail()) {
      if (e.user_in != user_in) continue;
      e.renewal ? ++renewals : ++fresh;
    }
    if (const auto* e = log.latest(user_in, 1)) latest = e;
  }
  EXPECT_EQ(fresh, 2u);     // one per session start
  EXPECT_EQ(renewals, 1u);  // only the survivor's renewal was journaled
  ASSERT_NE(latest, nullptr);
  EXPECT_EQ(latest->addr, second.config().addr);
  EXPECT_NE(latest->addr, first.config().addr);
}

}  // namespace
}  // namespace p2pdrm::adversary
