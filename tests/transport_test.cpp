// The transport seam: ThreadTransport semantics (timer ordering, FIFO
// confinement, graceful shutdown), SimTransport delegation, cross-backend
// protocol equivalence, shutdown-under-load, the interceptor add/remove
// race, and concurrent-senders stress on the shared observability
// structures. The stress tests are the TSan targets for the thread-safety
// contract (DESIGN.md §10) — run them under P2PDRM_SANITIZE=thread.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/deployment.h"
#include "net/network.h"
#include "obs/registry.h"
#include "obs/runtime.h"
#include "obs/trace.h"
#include "services/metrics.h"
#include "transport/sim_transport.h"
#include "transport/thread_transport.h"

namespace p2pdrm {
namespace {

using util::kMillisecond;
using util::kSecond;

/// Poll `pred` every millisecond until true or `budget` wall time elapses.
template <typename Pred>
bool eventually(Pred pred, std::chrono::milliseconds budget =
                               std::chrono::seconds(10)) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

TEST(ThreadTransportTest, TimersFireInDueOrder) {
  transport::ThreadTransport tt({1});
  // Written only by the single loop thread, read after the join.
  std::vector<int> order;
  tt.post(0, 30 * kMillisecond, [&] { order.push_back(30); });
  tt.post(0, 10 * kMillisecond, [&] { order.push_back(10); });
  tt.post(0, 20 * kMillisecond, [&] { order.push_back(20); });
  ASSERT_TRUE(eventually([&] { return tt.tasks_executed() == 3; }));
  tt.shutdown();
  EXPECT_EQ(order, (std::vector<int>{10, 20, 30}));
}

TEST(ThreadTransportTest, EqualDueTimesRunInPostOrder) {
  transport::ThreadTransport tt({1});
  std::vector<int> order;
  for (int i = 0; i < 50; ++i) {
    tt.post(0, 5 * kMillisecond, [&order, i] { order.push_back(i); });
  }
  for (int i = 50; i < 100; ++i) {
    tt.post(0, 0, [&order, i] { order.push_back(i); });
  }
  ASSERT_TRUE(eventually([&] { return tt.tasks_executed() == 100; }));
  tt.shutdown();
  ASSERT_EQ(order.size(), 100u);
  // Immediate tasks (posted second) run first; each batch keeps FIFO order.
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[i], 50 + i);
  for (int i = 50; i < 100; ++i) EXPECT_EQ(order[i], i - 50);
}

TEST(ThreadTransportTest, PostAfterShutdownIsDroppedNotRun) {
  transport::ThreadTransport tt({2});
  std::atomic<bool> ran{false};
  tt.post(0, 0, [&] { ran = true; });
  ASSERT_TRUE(eventually([&] { return tt.tasks_executed() == 1; }));
  tt.shutdown();
  const std::uint64_t executed = tt.tasks_executed();
  tt.post(1, 0, [&] { ran = false; });
  EXPECT_EQ(tt.tasks_dropped(), 1u);
  EXPECT_EQ(tt.tasks_executed(), executed);
  EXPECT_TRUE(ran.load());
}

TEST(ThreadTransportTest, ShutdownDiscardsUndueTimersPromptly) {
  const auto t0 = std::chrono::steady_clock::now();
  std::atomic<bool> fired{false};
  {
    transport::ThreadTransport tt({2});
    tt.post(0, 30 * kSecond, [&] { fired = true; });
    tt.post(1, 30 * kSecond, [&] { fired = true; });
    tt.shutdown();
  }
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(std::chrono::duration<double>(elapsed).count(), 5.0);
  EXPECT_FALSE(fired.load());
}

TEST(ThreadTransportTest, RunUntilAdvancesTheMonotonicClock) {
  transport::ThreadTransport tt({1});
  tt.run_until(20 * kMillisecond);
  EXPECT_GE(tt.now(), 20 * kMillisecond);
  EXPECT_TRUE(tt.live());
  tt.shutdown();
}

TEST(ThreadTransportTest, ConcurrentPostersAllGroupsAllExecute) {
  transport::ThreadTransport tt({4});
  ASSERT_EQ(tt.groups(), 4u);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> posters;
  for (int t = 0; t < kThreads; ++t) {
    posters.emplace_back([&tt, t] {
      for (int i = 0; i < kPerThread; ++i) {
        tt.post(static_cast<std::size_t>(t + i) % 4,
                (i % 3) * kMillisecond, [] {});
      }
    });
  }
  for (std::thread& t : posters) t.join();
  ASSERT_TRUE(
      eventually([&] { return tt.tasks_executed() == kThreads * kPerThread; }));
  tt.shutdown();
  EXPECT_EQ(tt.tasks_executed(), static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(tt.tasks_dropped(), 0u);
}

TEST(ThreadTransportTest, TelemetryUnderSustainedLoad) {
  transport::ThreadTransport tt({2});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::vector<std::thread> posters;
  for (int t = 0; t < kThreads; ++t) {
    posters.emplace_back([&tt, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // Mix immediate tasks with short timers so both queues see depth.
        tt.post(static_cast<std::size_t>(t + i) % 2, (i % 4) * kMillisecond,
                [] {});
      }
    });
  }
  for (std::thread& t : posters) t.join();
  constexpr std::uint64_t kTotal = kThreads * kPerThread;
  ASSERT_TRUE(eventually([&] { return tt.tasks_executed() == kTotal; }));
  tt.shutdown();

  const std::vector<obs::LoopStats> stats = tt.loop_stats();
  ASSERT_EQ(stats.size(), 2u);
  std::uint64_t tasks = 0, timers = 0;
  std::int64_t ready_peak = 0, timer_peak = 0;
  for (const obs::LoopStats& ls : stats) {
    tasks += ls.tasks;
    timers += ls.timers_fired;
    ready_peak = std::max(ready_peak, ls.ready_peak);
    timer_peak = std::max(timer_peak, ls.timer_peak);
    // Both loops ran: they accumulated wall time and a utilization in
    // [0, 1].
    EXPECT_GT(ls.busy_us + ls.idle_us, 0);
    EXPECT_GE(ls.utilization(), 0.0);
    EXPECT_LE(ls.utilization(), 1.0);
  }
  EXPECT_EQ(tasks, kTotal);
  // 3 of every 4 posts were timers; every one of them was promoted.
  EXPECT_EQ(timers, kTotal / 4 * 3);
  EXPECT_GE(ready_peak, 1);
  EXPECT_GE(timer_peak, 1);

  // No lost samples: exactly one scheduling-latency record per executed
  // task, none from the discarded ones, and monotone percentiles.
  const obs::LatencyHistogram sched = tt.sched_latency();
  EXPECT_EQ(sched.count(), tt.tasks_executed());
  EXPECT_LE(sched.p50(), sched.p95());
  EXPECT_LE(sched.p95(), sched.p99());
}

TEST(ThreadTransportTest, TimerHeapHighWaterTracksPending) {
  transport::ThreadTransport tt({1});
  constexpr int kTimers = 20;
  // A wide undue window: all 20 posts (microseconds of work, even under
  // TSan) land in the heap before the first timer comes due.
  for (int i = 0; i < kTimers; ++i) {
    tt.post(0, 250 * kMillisecond, [] {});
  }
  ASSERT_TRUE(eventually([&] { return tt.tasks_executed() == kTimers; }));
  tt.shutdown();
  const std::vector<obs::LoopStats> stats = tt.loop_stats();
  ASSERT_EQ(stats.size(), 1u);
  // All were posted before any came due, so the heap held every one.
  EXPECT_EQ(stats[0].timer_peak, kTimers);
  EXPECT_EQ(stats[0].timers_fired, static_cast<std::uint64_t>(kTimers));
}

TEST(ThreadTransportTest, ShutdownDrainsDueTasksIntoTheHistogram) {
  transport::ThreadTransport tt({1});
  std::atomic<int> ran{0};
  tt.post(0, 0, [&] {
    ran.fetch_add(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  });
  // Posted while the loop is busy: already due by shutdown, so it must be
  // drained (run), and its latency sample must not be lost.
  tt.post(0, 0, [&] { ran.fetch_add(1); });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  tt.shutdown();
  EXPECT_EQ(ran.load(), 2);
  EXPECT_EQ(tt.tasks_executed(), 2u);
  EXPECT_EQ(tt.sched_latency().count(), 2u);
}

TEST(ThreadTransportTest, ExportIntoRegistryIsScrapeSafe) {
  transport::ThreadTransport tt({2});
  for (int i = 0; i < 10; ++i) tt.post(i % 2, 0, [] {});
  ASSERT_TRUE(eventually([&] { return tt.tasks_executed() == 10; }));
  tt.shutdown();

  obs::Registry reg;
  tt.export_into(reg);
  tt.export_into(reg);  // a second scrape must not double-count

  const obs::Counter* t0 = reg.find_counter("transport.loop.tasks{0}");
  const obs::Counter* t1 = reg.find_counter("transport.loop.tasks{1}");
  ASSERT_NE(t0, nullptr);
  ASSERT_NE(t1, nullptr);
  EXPECT_EQ(t0->value() + t1->value(), 10u);
  const obs::LatencyHistogram* sched =
      reg.find_histogram("transport.sched_latency_us");
  ASSERT_NE(sched, nullptr);
  EXPECT_EQ(sched->count(), 10u);
  for (const auto& [name, c] : reg.counters()) {
    EXPECT_TRUE(obs::metric_name_ok(name)) << name;
  }
  for (const auto& [name, g] : reg.gauges()) {
    EXPECT_TRUE(obs::metric_name_ok(name)) << name;
  }
}

TEST(SimTransportTest, DelegatesToTheSimulation) {
  sim::Simulation sim;
  transport::SimTransport st(sim);
  EXPECT_FALSE(st.live());
  EXPECT_EQ(st.groups(), 1u);
  int fired = 0;
  st.post(0, 5 * kSecond, [&] { fired += 1; });
  st.post(7, 2 * kSecond, [&] { fired += 10; });  // group index is ignored
  st.run_until(10 * kSecond);
  EXPECT_EQ(fired, 11);
  EXPECT_EQ(st.now(), sim.now());
  EXPECT_GE(st.now(), 5 * kSecond);
}

/// The full five-round protocol (LOGIN1/LOGIN2/SWITCH1/SWITCH2/JOIN) must
/// complete on either backend through the identical protocol code.
void run_five_rounds(net::TransportKind kind) {
  net::DeploymentConfig cfg;
  cfg.seed = 7;
  cfg.transport = kind;
  cfg.transport_threads = 4;
  cfg.default_link.latency.floor = 1 * kMillisecond;
  cfg.default_link.latency.median = 3 * kMillisecond;
  cfg.default_link.latency.sigma = 0.3;
  net::Deployment d(cfg);
  const geo::RegionId region = d.geo().region_at(0);
  d.add_regional_channel(1, "equiv", region);
  d.start_channel_server(1);
  d.add_user("e@example.com", "pw");
  net::AsyncClient& c = d.add_client("e@example.com", "pw", region);

  std::atomic<int> result{-1};
  d.network().post(c.config().node, 0, [&c, &result] {
    c.login([&c, &result](core::DrmError err) {
      if (err != core::DrmError::kOk) {
        result = static_cast<int>(err);
        return;
      }
      c.switch_channel(1, [&result](core::DrmError err2) {
        result = static_cast<int>(err2);
      });
    });
  });
  if (kind == net::TransportKind::kSim) {
    d.run_until(2 * util::kMinute);
  } else {
    ASSERT_TRUE(eventually([&] { return result.load() != -1; }));
  }
  d.transport().shutdown();  // quiesce before reading loop-confined state

  EXPECT_EQ(result.load(), static_cast<int>(core::DrmError::kOk));
  EXPECT_TRUE(c.logged_in());
  ASSERT_TRUE(c.channel_ticket().has_value());
  EXPECT_EQ(c.channel_ticket()->ticket.channel_id, 1u);
  bool seen[5] = {};
  for (const client::LatencySample& s : c.feedback_log()) {
    EXPECT_TRUE(s.success);
    seen[static_cast<std::size_t>(s.round)] = true;
  }
  for (int r = 0; r < 5; ++r) {
    EXPECT_TRUE(seen[r]) << "round " << r << " missing from the feedback log";
  }
}

TEST(CrossBackendTest, FiveRoundProtocolCompletesOnSim) {
  run_five_rounds(net::TransportKind::kSim);
}

TEST(CrossBackendTest, FiveRoundProtocolCompletesOnThread) {
  run_five_rounds(net::TransportKind::kThread);
}

TEST(CrossBackendTest, ShutdownJoinsCleanlyUnderProtocolLoad) {
  net::DeploymentConfig cfg;
  cfg.seed = 11;
  cfg.transport = net::TransportKind::kThread;
  cfg.transport_threads = 4;
  cfg.default_link.latency.floor = 1 * kMillisecond;
  cfg.default_link.latency.median = 3 * kMillisecond;
  cfg.root_peer_capacity = 32;
  net::Deployment d(cfg);
  const geo::RegionId region = d.geo().region_at(0);
  d.add_regional_channel(1, "load", region);
  d.start_channel_server(1);
  for (int i = 0; i < 12; ++i) {
    const std::string email = "u" + std::to_string(i) + "@example.com";
    d.add_user(email, "pw");
    net::AsyncClient& c = d.add_client(email, "pw", region);
    net::AsyncClient* cp = &c;
    d.network().post(c.config().node, 0, [cp] {
      cp->login([cp](core::DrmError err) {
        if (err == core::DrmError::kOk) {
          cp->switch_channel(1, [](core::DrmError) {});
        }
      });
    });
  }
  // Shut down mid-flight: loops must finish their queued tasks, drop the
  // rest like lost packets, and join without deadlock or use-after-free.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  d.transport().shutdown();
  SUCCEED();
}

/// Counts every packet it sees; installed and removed mid-traffic.
class CountingInterceptor final : public net::SendInterceptor {
 public:
  Verdict on_send(const net::SendContext&) override {
    seen.fetch_add(1, std::memory_order_relaxed);
    return {};
  }
  std::atomic<std::uint64_t> seen{0};
};

class SinkNode final : public net::Node {
 public:
  void on_packet(const net::Packet&) override {
    received.fetch_add(1, std::memory_order_relaxed);
  }
  std::atomic<std::uint64_t> received{0};
};

TEST(InterceptorRaceTest, AddRemoveDuringConcurrentSends) {
  transport::ThreadTransport tt({2});
  net::Network net(tt, net::LinkConfig{}, crypto::SecureRandom(1));
  SinkNode a, b;
  net.attach(1, util::parse_netaddr("10.0.0.1"), &a);
  net.attach(2, util::parse_netaddr("10.0.0.2"), &b);

  CountingInterceptor probe;
  std::atomic<bool> stop{false};
  std::thread toggler([&] {
    while (!stop.load()) {
      net.add_interceptor(&probe);
      net.remove_interceptor(&probe);
    }
  });
  constexpr int kSends = 4000;
  std::thread sender2([&] {
    for (int i = 0; i < kSends; ++i) net.send(2, 1, util::bytes_of("pong"));
  });
  for (int i = 0; i < kSends; ++i) net.send(1, 2, util::bytes_of("ping"));
  sender2.join();
  stop = true;
  toggler.join();
  ASSERT_TRUE(eventually(
      [&] { return a.received.load() + b.received.load() == 2 * kSends; }));
  tt.shutdown();
  // Every send either saw the empty chain or the probe — never a torn one
  // (the chain is copy-on-write); the counts just have to be consistent.
  EXPECT_EQ(net.packets_sent(), static_cast<std::uint64_t>(2 * kSends));
  EXPECT_EQ(net.packets_delivered(), static_cast<std::uint64_t>(2 * kSends));
  EXPECT_LE(probe.seen.load(), static_cast<std::uint64_t>(2 * kSends));
}

TEST(StressTest, RegistryConcurrentSenders) {
  obs::Registry reg;
  constexpr int kThreads = 8;
  constexpr int kOps = 10000;
  const std::string labels[3] = {"ok", "busy", "denied"};
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      for (int i = 0; i < kOps; ++i) {
        reg.counter("hits").inc();
        reg.counter("ops", labels[(t + i) % 3]).inc();
        reg.gauge("peak").set_max(i);
        reg.histogram("lat").record(i % 1000);
      }
    });
  }
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(reg.counter("hits").value(),
            static_cast<std::uint64_t>(kThreads * kOps));
  EXPECT_EQ(reg.gauge("peak").value(), kOps - 1);
  EXPECT_EQ(reg.histogram("lat").count(),
            static_cast<std::uint64_t>(kThreads * kOps));
  std::uint64_t family_total = 0;
  for (const auto& [label, counter] : reg.family("ops")) {
    family_total += counter->value();
  }
  EXPECT_EQ(family_total, static_cast<std::uint64_t>(kThreads * kOps));
}

TEST(StressTest, OpsCountersConcurrent) {
  services::OpsCounters ops;
  constexpr int kThreads = 8;
  constexpr int kOps = 5000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      for (int i = 0; i < kOps; ++i) {
        ops.record(core::DrmError::kOk);
        ops.record(core::DrmError::kAccessDenied);
        ops.note_key_staleness(i);
      }
    });
  }
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(ops.total(), static_cast<std::uint64_t>(2 * kThreads * kOps));
  EXPECT_EQ(ops.successes(), static_cast<std::uint64_t>(kThreads * kOps));
  EXPECT_EQ(ops.count(core::DrmError::kAccessDenied),
            static_cast<std::uint64_t>(kThreads * kOps));
  EXPECT_EQ(ops.max_key_staleness_us(), kOps - 1);
}

TEST(StressTest, TracerConcurrentSpans) {
  obs::Tracer tracer;
  tracer.set_capacity(100000);
  constexpr int kThreads = 8;
  constexpr int kSpans = 2000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      for (int i = 0; i < kSpans; ++i) {
        const obs::SpanId id = tracer.begin_span(
            "stress", "span", static_cast<std::uint64_t>(t), i);
        tracer.tag(id, "k", "v");
        tracer.event(id, i, "evt");
        tracer.end_span(id, i + 1, (i % 2) == 0);
      }
    });
  }
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(tracer.spans().size(),
            static_cast<std::size_t>(kThreads * kSpans));
  EXPECT_EQ(tracer.open_spans(), 0u);
}

}  // namespace
}  // namespace p2pdrm
