// TimeSeries engine and Prometheus exposition tests: ring eviction, scrape
// expansion, filter semantics, CSV byte-determinism (including two same-seed
// macro-sim runs), and the text-format escaping/ordering rules.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/export.h"
#include "obs/registry.h"
#include "obs/timeseries.h"
#include "sim/macro_sim.h"

namespace p2pdrm::obs {
namespace {

TEST(TimeSeriesTest, RecordAppendsInOrder) {
  TimeSeries ts;
  ts.record("a", 10, 1.0);
  ts.record("a", 20, 2.0);
  ts.record("b", 15, -3.5);
  const auto* a = ts.series("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->size(), 2u);
  EXPECT_EQ((*a)[0].at, 10);
  EXPECT_DOUBLE_EQ((*a)[0].value, 1.0);
  EXPECT_EQ((*a)[1].at, 20);
  EXPECT_EQ(ts.series("missing"), nullptr);
  EXPECT_EQ(ts.names(), (std::vector<std::string>{"a", "b"}));
}

TEST(TimeSeriesTest, RingEvictsOldestAndCountsDrops) {
  TimeSeries ts(3);
  for (int i = 0; i < 5; ++i) ts.record("s", i, static_cast<double>(i));
  const auto* s = ts.series("s");
  ASSERT_NE(s, nullptr);
  ASSERT_EQ(s->size(), 3u);
  EXPECT_EQ(s->front().at, 2);  // 0 and 1 fell off the front
  EXPECT_EQ(s->back().at, 4);
  EXPECT_EQ(ts.points_dropped(), 2u);
}

TEST(TimeSeriesTest, ScrapeExpandsEveryMetricKind) {
  Registry reg;
  reg.counter("reqs").inc(7);
  reg.gauge("depth").set(-4);
  LatencyHistogram& h = reg.histogram("lat");
  for (int i = 1; i <= 100; ++i) h.record(i * 1000);

  TimeSeries ts;
  ts.scrape(reg, 5000);
  EXPECT_EQ(ts.scrapes(), 1u);
  ASSERT_NE(ts.series("reqs"), nullptr);
  EXPECT_DOUBLE_EQ(ts.series("reqs")->front().value, 7.0);
  ASSERT_NE(ts.series("depth"), nullptr);
  EXPECT_DOUBLE_EQ(ts.series("depth")->front().value, -4.0);
  // Histograms expand into sub-series; the histogram's own name is absent.
  EXPECT_EQ(ts.series("lat"), nullptr);
  ASSERT_NE(ts.series("lat.count"), nullptr);
  EXPECT_DOUBLE_EQ(ts.series("lat.count")->front().value, 100.0);
  ASSERT_NE(ts.series("lat.p50"), nullptr);
  EXPECT_NEAR(ts.series("lat.p50")->front().value, 50000.0, 50000.0 / 8);
  ASSERT_NE(ts.series("lat.p95"), nullptr);
  ASSERT_NE(ts.series("lat.p99"), nullptr);
}

TEST(TimeSeriesTest, FiltersExactAndPrefix) {
  Registry reg;
  reg.counter("keep.exact").inc();
  reg.counter("keep.prefix.a").inc();
  reg.counter("keep.prefix.b").inc();
  reg.counter("drop.me").inc();
  reg.histogram("drop.hist").record(1);

  TimeSeries ts;
  ts.set_scrape_filters({"keep.exact", "keep.prefix.*"});
  ts.scrape(reg, 1);
  EXPECT_EQ(ts.names(), (std::vector<std::string>{"keep.exact", "keep.prefix.a",
                                                  "keep.prefix.b"}));
  // record() bypasses the filter: the caller asked for that series by name.
  ts.record("drop.me.too", 2, 1.0);
  EXPECT_NE(ts.series("drop.me.too"), nullptr);
}

TEST(TimeSeriesTest, CsvIsByteStable) {
  auto build = [] {
    TimeSeries ts;
    Registry reg;
    reg.counter("c").inc(3);
    reg.gauge("g").set(9);
    ts.scrape(reg, 1000);
    reg.counter("c").inc();
    ts.scrape(reg, 2000);
    ts.record("load", 1500, 12.25);
    return ts.to_csv();
  };
  const std::string a = build();
  const std::string b = build();
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.compare(0, 19, "series,t_us,value\nc"), 0);
  EXPECT_NE(a.find("c,1000,3.000\n"), std::string::npos);
  EXPECT_NE(a.find("c,2000,4.000\n"), std::string::npos);
  EXPECT_NE(a.find("load,1500,12.250\n"), std::string::npos);
}

TEST(TimeSeriesTest, SameSeedMacroRunsExportIdenticalCsv) {
  auto run = [] {
    sim::MacroSimConfig cfg;
    cfg.days = 1;
    cfg.peak_concurrent = 120;
    cfg.seed = 7;
    cfg.reservoir_per_hour = 200;
    cfg.reservoir_cdf = 5000;
    cfg.key_rotation.enabled = true;
    TimeSeries ts;
    ts.set_scrape_filters({"macro.key.*", "macro.round.LOGIN1"});
    cfg.obs.timeseries = &ts;
    cfg.obs.scrape_interval = 15 * util::kMinute;
    sim::run_macro_sim(cfg);
    EXPECT_GT(ts.scrapes(), 0u);
    return ts.to_csv();
  };
  const std::string a = run();
  const std::string b = run();
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("macro.key.rotations_issued,"), std::string::npos);
  EXPECT_NE(a.find("macro.round.LOGIN1.p95,"), std::string::npos);
}

// --- Prometheus text exposition ---

TEST(PrometheusTest, EscapesLabelValues) {
  EXPECT_EQ(prometheus_escape_label("plain"), "plain");
  EXPECT_EQ(prometheus_escape_label("a\\b"), "a\\\\b");
  EXPECT_EQ(prometheus_escape_label("a\"b"), "a\\\"b");
  EXPECT_EQ(prometheus_escape_label("a\nb"), "a\\nb");
}

TEST(PrometheusTest, SanitizesNamesAndOrdersFamilies) {
  Registry reg;
  reg.counter("ops.total").inc(5);
  reg.counter("ops", "access-denied").inc(2);
  reg.counter("ops", "ok").inc(3);
  reg.gauge("queue-depth").set(4);
  const std::string text = registry_to_prometheus(reg);

  // Dots and dashes become underscores; TYPE precedes the first sample.
  EXPECT_NE(text.find("# TYPE ops_total counter"), std::string::npos);
  EXPECT_NE(text.find("ops_total 5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE queue_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("queue_depth 4"), std::string::npos);
  // Family members render as labelled samples in registry (name) order.
  const std::size_t denied = text.find("ops{label=\"access-denied\"} 2");
  const std::size_t ok = text.find("ops{label=\"ok\"} 3");
  ASSERT_NE(denied, std::string::npos);
  ASSERT_NE(ok, std::string::npos);
  EXPECT_LT(denied, ok);
}

TEST(PrometheusTest, HistogramsRenderAsOrderedSummaries) {
  Registry reg;
  LatencyHistogram& h = reg.histogram("round.lat");
  for (int i = 1; i <= 100; ++i) h.record(i);
  const std::string text = registry_to_prometheus(reg);

  EXPECT_NE(text.find("# TYPE round_lat summary"), std::string::npos);
  const std::size_t q50 = text.find("round_lat{quantile=\"0.5\"}");
  const std::size_t q95 = text.find("round_lat{quantile=\"0.95\"}");
  const std::size_t q99 = text.find("round_lat{quantile=\"0.99\"}");
  const std::size_t sum = text.find("round_lat_sum");
  const std::size_t count = text.find("round_lat_count 100");
  ASSERT_NE(q50, std::string::npos);
  ASSERT_NE(q95, std::string::npos);
  ASSERT_NE(q99, std::string::npos);
  ASSERT_NE(sum, std::string::npos);
  ASSERT_NE(count, std::string::npos);
  EXPECT_LT(q50, q95);
  EXPECT_LT(q95, q99);
  EXPECT_LT(q99, sum);
  EXPECT_LT(sum, count);
}

TEST(PrometheusTest, OutputIsByteStable) {
  auto build = [] {
    Registry reg;
    reg.counter("a.b").inc(1);
    reg.counter("fam", "x\"y").inc(2);
    reg.gauge("g").set(-7);
    reg.histogram("h").record(123);
    return registry_to_prometheus(reg);
  };
  EXPECT_EQ(build(), build());
  EXPECT_NE(build().find("fam{label=\"x\\\"y\"} 2"), std::string::npos);
}

}  // namespace
}  // namespace p2pdrm::obs
