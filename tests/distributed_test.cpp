// Distributed end-to-end tests: the full protocol over the lossy simulated
// network with asynchronous clients, retransmission, concurrent protocol
// interleaving, and content/key delivery as real network events.
#include <gtest/gtest.h>

#include "net/deployment.h"

namespace p2pdrm::net {
namespace {

using core::DrmError;
using util::kMillisecond;
using util::kMinute;
using util::kSecond;

DeploymentConfig base_config() {
  DeploymentConfig cfg;
  cfg.seed = 2024;
  cfg.default_link.latency.floor = 10 * kMillisecond;
  cfg.default_link.latency.median = 40 * kMillisecond;
  cfg.default_link.latency.sigma = 0.4;
  cfg.processing.light = 1 * kMillisecond;
  cfg.processing.heavy = 8 * kMillisecond;
  return cfg;
}

class DistributedTest : public ::testing::Test {
 protected:
  explicit DistributedTest(DeploymentConfig cfg = base_config()) : d_(cfg) {
    d_.add_user("alice@example.com", "pw-a");
    d_.add_user("bob@example.com", "pw-b");
    region_ = d_.geo().region_at(0);
    d_.add_regional_channel(1, "news", region_);
    d_.start_channel_server(1);
  }

  /// Run an operation to completion inside the simulation.
  DrmError wait(const std::function<void(AsyncClient::Callback)>& op) {
    std::optional<DrmError> result;
    op([&result](DrmError err) { result = err; });
    // Drain events until the callback fires (rotation timers keep the queue
    // non-empty forever, so step bounded by a generous virtual deadline).
    const util::SimTime deadline = d_.sim().now() + 10 * kMinute;
    while (!result && d_.sim().now() < deadline && d_.sim().step()) {
    }
    return result.value_or(DrmError::kNoCapacity);
  }

  Deployment d_;
  geo::RegionId region_ = 0;
};

TEST_F(DistributedTest, LoginOverTheWire) {
  AsyncClient& alice = d_.add_client("alice@example.com", "pw-a", region_);
  EXPECT_EQ(wait([&](auto cb) { alice.login(cb); }), DrmError::kOk);
  ASSERT_TRUE(alice.user_ticket().has_value());
  EXPECT_GT(d_.network().packets_delivered(), 4u);  // 3 request/response pairs
}

TEST_F(DistributedTest, WrongPasswordFailsOverTheWire) {
  AsyncClient& mallory = d_.add_client("alice@example.com", "wrong", region_);
  EXPECT_EQ(wait([&](auto cb) { mallory.login(cb); }), DrmError::kBadCredentials);
}

TEST_F(DistributedTest, FullWatchSequence) {
  AsyncClient& alice = d_.add_client("alice@example.com", "pw-a", region_);
  ASSERT_EQ(wait([&](auto cb) { alice.login(cb); }), DrmError::kOk);
  ASSERT_EQ(wait([&](auto cb) { alice.switch_channel(1, cb); }), DrmError::kOk);
  ASSERT_TRUE(alice.channel_ticket().has_value());
  ASSERT_TRUE(alice.parent().has_value());

  // Content pushed at the server arrives (as events) and decrypts.
  d_.broadcast(1, util::bytes_of("frame"));
  d_.run_for(5 * kSecond);
  EXPECT_EQ(alice.content_decrypted(), 1u);
  EXPECT_EQ(alice.content_undecryptable(), 0u);
}

TEST_F(DistributedTest, FeedbackLatenciesReflectNetworkAndProcessing) {
  AsyncClient& alice = d_.add_client("alice@example.com", "pw-a", region_);
  ASSERT_EQ(wait([&](auto cb) { alice.login(cb); }), DrmError::kOk);
  ASSERT_EQ(wait([&](auto cb) { alice.switch_channel(1, cb); }), DrmError::kOk);
  for (const client::LatencySample& s : alice.feedback_log()) {
    EXPECT_TRUE(s.success);
    EXPECT_GE(s.latency, 20 * kMillisecond) << to_string(s.round);  // 2x floor/2 ways
  }
}

TEST_F(DistributedTest, RelayTreeOverTheWire) {
  AsyncClient& alice = d_.add_client("alice@example.com", "pw-a", region_);
  ASSERT_EQ(wait([&](auto cb) { alice.login(cb); }), DrmError::kOk);
  ASSERT_EQ(wait([&](auto cb) { alice.switch_channel(1, cb); }), DrmError::kOk);
  d_.announce(alice);
  // Saturate the root so Bob must attach under Alice... instead, simply
  // verify Bob can join *someone* and the tree delivers to both.
  AsyncClient& bob = d_.add_client("bob@example.com", "pw-b", region_);
  ASSERT_EQ(wait([&](auto cb) { bob.login(cb); }), DrmError::kOk);
  ASSERT_EQ(wait([&](auto cb) { bob.switch_channel(1, cb); }), DrmError::kOk);

  d_.broadcast(1, util::bytes_of("both"));
  d_.run_for(5 * kSecond);
  EXPECT_EQ(alice.content_decrypted(), 1u);
  EXPECT_EQ(bob.content_decrypted(), 1u);
}

TEST_F(DistributedTest, KeyRotationPropagatesThroughNetworkTree) {
  AsyncClient& alice = d_.add_client("alice@example.com", "pw-a", region_);
  ASSERT_EQ(wait([&](auto cb) { alice.login(cb); }), DrmError::kOk);
  ASSERT_EQ(wait([&](auto cb) { alice.switch_channel(1, cb); }), DrmError::kOk);

  // Cross two rotation intervals; the new keys travel as kKeyBlob packets.
  d_.run_for(2 * kMinute + 10 * kSecond);
  d_.broadcast(1, util::bytes_of("rotated"));
  d_.run_for(5 * kSecond);
  EXPECT_EQ(alice.content_decrypted(), 1u);
  EXPECT_EQ(alice.content_undecryptable(), 0u);
  EXPECT_GE(alice.peer_node()->peer().known_key_count(), 2u);
}

class StripedDistributedTest : public DistributedTest {
 protected:
  static DeploymentConfig striped_config() {
    DeploymentConfig cfg = base_config();
    cfg.substreams = 2;
    return cfg;
  }
  StripedDistributedTest() : DistributedTest(striped_config()) {}
};

TEST_F(StripedDistributedTest, StripesAcrossTwoParents) {
  // Alice (single parent: the root) announces; Bob stripes sub-stream 0
  // and 1 across {root, alice}.
  AsyncClient& alice = d_.add_client("alice@example.com", "pw-a", region_);
  ASSERT_EQ(wait([&](auto cb) { alice.login(cb); }), DrmError::kOk);
  ASSERT_EQ(wait([&](auto cb) { alice.switch_channel(1, cb); }), DrmError::kOk);
  d_.announce(alice);

  AsyncClient& bob = d_.add_client("bob@example.com", "pw-b", region_);
  ASSERT_EQ(wait([&](auto cb) { bob.login(cb); }), DrmError::kOk);
  ASSERT_EQ(wait([&](auto cb) { bob.switch_channel(1, cb); }), DrmError::kOk);

  ASSERT_NE(bob.router(), nullptr);
  ASSERT_TRUE(bob.router()->parent_of(0).has_value());
  ASSERT_TRUE(bob.router()->parent_of(1).has_value());
  EXPECT_TRUE(bob.router()->unassigned().empty());

  // Feed a run of packets: Bob must receive every one exactly once and
  // reassemble them in order.
  for (int i = 0; i < 20; ++i) {
    d_.broadcast(1, util::bytes_of("pkt " + std::to_string(i)));
    d_.run_for(200 * kMillisecond);
  }
  d_.run_for(5 * kSecond);
  EXPECT_EQ(bob.content_decrypted(), 20u);   // no duplicates
  EXPECT_EQ(bob.content_in_order(), 20u);    // reassembled in order
  EXPECT_EQ(bob.content_undecryptable(), 0u);
}

TEST_F(StripedDistributedTest, SingleParentStillCarriesBothSubstreams) {
  // With only the root available, both sub-streams land on one parent —
  // the mask union path.
  AsyncClient& alice = d_.add_client("alice@example.com", "pw-a", region_);
  ASSERT_EQ(wait([&](auto cb) { alice.login(cb); }), DrmError::kOk);
  ASSERT_EQ(wait([&](auto cb) { alice.switch_channel(1, cb); }), DrmError::kOk);
  ASSERT_NE(alice.router(), nullptr);
  EXPECT_EQ(alice.router()->parents().size(), 1u);

  for (int i = 0; i < 10; ++i) {
    d_.broadcast(1, util::bytes_of("pkt"));
    d_.run_for(200 * kMillisecond);
  }
  d_.run_for(5 * kSecond);
  EXPECT_EQ(alice.content_decrypted(), 10u);
  EXPECT_EQ(alice.content_in_order(), 10u);
}

TEST_F(StripedDistributedTest, LosingOneParentHalvesTheFeed) {
  // Kill the parent carrying one sub-stream: only the other sub-stream's
  // packets keep arriving (exactly the failure PDM was built to survive —
  // the receiver re-joins for the missing sub-streams).
  AsyncClient& alice = d_.add_client("alice@example.com", "pw-a", region_);
  ASSERT_EQ(wait([&](auto cb) { alice.login(cb); }), DrmError::kOk);
  ASSERT_EQ(wait([&](auto cb) { alice.switch_channel(1, cb); }), DrmError::kOk);
  d_.announce(alice);
  AsyncClient& bob = d_.add_client("bob@example.com", "pw-b", region_);
  ASSERT_EQ(wait([&](auto cb) { bob.login(cb); }), DrmError::kOk);
  ASSERT_EQ(wait([&](auto cb) { bob.switch_channel(1, cb); }), DrmError::kOk);
  ASSERT_NE(bob.router(), nullptr);
  if (bob.router()->parents().size() < 2) {
    GTEST_SKIP() << "both sub-streams landed on one parent";
  }

  d_.remove_client(alice);  // alice carried one of bob's sub-streams
  const std::uint64_t before = bob.content_decrypted();
  for (int i = 0; i < 10; ++i) {
    d_.broadcast(1, util::bytes_of("pkt"));
    d_.run_for(200 * kMillisecond);
  }
  d_.run_for(3 * kSecond);
  const std::uint64_t delivered = bob.content_decrypted() - before;
  EXPECT_GE(delivered, 4u);  // the surviving sub-stream
  EXPECT_LE(delivered, 6u);  // but not the dead one
}

class LossyDistributedTest : public DistributedTest {
 protected:
  static DeploymentConfig lossy_config() {
    DeploymentConfig cfg = base_config();
    cfg.default_link.loss = 0.08;  // ~15% per round trip
    cfg.request_timeout = 500 * kMillisecond;
    cfg.max_retries = 8;
    return cfg;
  }
  LossyDistributedTest() : DistributedTest(lossy_config()) {}
};

TEST_F(LossyDistributedTest, RetransmissionDefeatsLoss) {
  AsyncClient& alice = d_.add_client("alice@example.com", "pw-a", region_);
  ASSERT_EQ(wait([&](auto cb) { alice.login(cb); }), DrmError::kOk);
  ASSERT_EQ(wait([&](auto cb) { alice.switch_channel(1, cb); }), DrmError::kOk);
  EXPECT_GT(d_.network().packets_dropped(), 0u);  // loss actually happened
  ASSERT_TRUE(alice.channel_ticket().has_value());
  EXPECT_TRUE(alice.channel_ticket()->verify(d_.channel_manager().public_key()));
}

TEST_F(LossyDistributedTest, DuplicatedResponsesIgnored) {
  // Retransmitted requests can produce duplicate responses (the server
  // answers every copy); the request-id match must consume exactly one.
  AsyncClient& alice = d_.add_client("alice@example.com", "pw-a", region_);
  ASSERT_EQ(wait([&](auto cb) { alice.login(cb); }), DrmError::kOk);
  // One ticket, no crash, consistent state.
  ASSERT_TRUE(alice.user_ticket().has_value());
  const std::size_t login2_samples = static_cast<std::size_t>(std::count_if(
      alice.feedback_log().begin(), alice.feedback_log().end(),
      [](const client::LatencySample& s) {
        return s.round == client::Round::kLogin2;
      }));
  EXPECT_GE(login2_samples, 1u);
}

TEST_F(DistributedTest, OperationsBeforeLoginFailCleanly) {
  AsyncClient& alice = d_.add_client("alice@example.com", "pw-a", region_);
  EXPECT_EQ(wait([&](auto cb) { alice.switch_channel(1, cb); }), DrmError::kBadTicket);
  EXPECT_EQ(wait([&](auto cb) { alice.renew_channel_ticket(cb); }),
            DrmError::kBadTicket);
}

TEST_F(DistributedTest, SwitchToUnknownChannelDenied) {
  AsyncClient& alice = d_.add_client("alice@example.com", "pw-a", region_);
  ASSERT_EQ(wait([&](auto cb) { alice.login(cb); }), DrmError::kOk);
  // Channel 99 is not in the catalog: partition defaults to 0, the Channel
  // Manager knows no such channel.
  EXPECT_EQ(wait([&](auto cb) { alice.switch_channel(99, cb); }),
            DrmError::kUnknownChannel);
}

TEST_F(DistributedTest, UnknownUserRejectedOverTheWire) {
  AsyncClient& ghost = d_.add_client("ghost@example.com", "pw", region_);
  EXPECT_EQ(wait([&](auto cb) { ghost.login(cb); }), DrmError::kUnknownUser);
}

TEST_F(DistributedTest, TotalServiceOutageTimesOutCleanly) {
  // Kill every backend node: the client's retries exhaust and the operation
  // fails instead of hanging the simulation.
  d_.network().detach(Deployment::kRedirectionNode);
  AsyncClient& alice = d_.add_client("alice@example.com", "pw-a", region_);
  std::optional<DrmError> result;
  alice.login([&](DrmError err) { result = err; });
  const util::SimTime deadline = d_.sim().now() + 10 * kMinute;
  while (!result && d_.sim().now() < deadline && d_.sim().step()) {
  }
  ASSERT_TRUE(result.has_value());
  EXPECT_NE(*result, DrmError::kOk);
  // The failed round was recorded as such in the feedback log.
  ASSERT_FALSE(alice.feedback_log().empty());
  EXPECT_FALSE(alice.feedback_log().back().success);
}

TEST_F(DistributedTest, ConcurrentClientsInterleave) {
  // Many clients in flight at once against the same stateless managers;
  // every protocol completes despite interleaved processing.
  std::vector<AsyncClient*> clients;
  std::vector<std::optional<DrmError>> done(8);
  for (int i = 0; i < 8; ++i) {
    const std::string email = "user" + std::to_string(i) + "@example.com";
    d_.add_user(email, "pw");
    clients.push_back(&d_.add_client(email, "pw", region_));
  }
  for (int i = 0; i < 8; ++i) {
    AsyncClient* c = clients[static_cast<std::size_t>(i)];
    auto* slot = &done[static_cast<std::size_t>(i)];
    c->login([c, slot](DrmError err) {
      if (err != DrmError::kOk) {
        *slot = err;
        return;
      }
      c->switch_channel(1, [slot](DrmError err2) { *slot = err2; });
    });
  }
  const util::SimTime deadline = d_.sim().now() + 10 * kMinute;
  while (d_.sim().now() < deadline &&
         std::any_of(done.begin(), done.end(),
                     [](const auto& o) { return !o.has_value(); }) &&
         d_.sim().step()) {
  }
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(done[static_cast<std::size_t>(i)].has_value()) << i;
    EXPECT_EQ(*done[static_cast<std::size_t>(i)], DrmError::kOk) << i;
  }

  d_.broadcast(1, util::bytes_of("to all"));
  d_.run_for(10 * kSecond);
  std::size_t received = 0;
  for (AsyncClient* c : clients) received += c->content_decrypted();
  EXPECT_EQ(received, clients.size());
}

TEST_F(DistributedTest, AutoRenewalSurvivesMultipleLifetimes) {
  AsyncClient& alice = d_.add_client("alice@example.com", "pw-a", region_);
  alice.enable_auto_renewal();
  ASSERT_EQ(wait([&](auto cb) { alice.login(cb); }), DrmError::kOk);
  ASSERT_EQ(wait([&](auto cb) { alice.switch_channel(1, cb); }), DrmError::kOk);

  // 45 minutes: ~4 channel-ticket renewals and at least one fresh login,
  // all self-driven. The root's minute-by-minute eviction sweep must never
  // catch an expired ticket.
  d_.run_for(45 * kMinute);
  ASSERT_TRUE(alice.channel_ticket().has_value());
  EXPECT_TRUE(alice.channel_ticket()->ticket.renewal);
  EXPECT_GT(alice.channel_ticket()->ticket.expiry_time, d_.sim().now());

  PeerNode* root = d_.root_node(1);
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->peer().child_count(), 1u);
  d_.broadcast(1, util::bytes_of("still watching"));
  d_.run_for(5 * kSecond);
  EXPECT_EQ(alice.content_decrypted(), 1u);
}

TEST_F(DistributedTest, WithoutRenewalRootSeversAtExpiry) {
  AsyncClient& alice = d_.add_client("alice@example.com", "pw-a", region_);
  ASSERT_EQ(wait([&](auto cb) { alice.login(cb); }), DrmError::kOk);
  ASSERT_EQ(wait([&](auto cb) { alice.switch_channel(1, cb); }), DrmError::kOk);
  PeerNode* root = d_.root_node(1);
  EXPECT_EQ(root->peer().child_count(), 1u);

  // No auto-renewal: the periodic eviction sweep severs at ticket expiry
  // (10 min lifetime + 1 min sweep granularity).
  d_.run_for(12 * kMinute);
  EXPECT_EQ(root->peer().child_count(), 0u);
  d_.broadcast(1, util::bytes_of("gone"));
  d_.run_for(5 * kSecond);
  EXPECT_EQ(alice.content_decrypted(), 0u);
}

TEST_F(DistributedTest, ClientDepartureDetachesCleanly) {
  AsyncClient& alice = d_.add_client("alice@example.com", "pw-a", region_);
  ASSERT_EQ(wait([&](auto cb) { alice.login(cb); }), DrmError::kOk);
  ASSERT_EQ(wait([&](auto cb) { alice.switch_channel(1, cb); }), DrmError::kOk);
  d_.announce(alice);
  EXPECT_EQ(d_.tracker().peer_count(1), 2u);  // root + alice

  d_.remove_client(alice);  // alice is now dangling-free and detached
  EXPECT_EQ(d_.tracker().peer_count(1), 1u);
  // Content to the departed node vanishes without faulting the network.
  d_.broadcast(1, util::bytes_of("into the void"));
  d_.run_for(5 * kSecond);
  EXPECT_GT(d_.network().packets_dropped(), 0u);
}

/// A malicious node that answers every request with garbage bytes.
class GarbagePeer final : public Node {
 public:
  GarbagePeer(Network& network, util::NodeId self) : network_(network), self_(self) {}
  void on_packet(const Packet& packet) override {
    ++requests_seen;
    const auto env = Envelope::decode(packet.data);
    if (!env) return;
    Envelope reply;
    reply.kind = MsgKind::kJoinResponse;
    reply.request_id = env->request_id;
    reply.payload = util::bytes_of("utter garbage, not a JoinResponse");
    network_.send(self_, packet.from, reply.encode());
  }
  int requests_seen = 0;

 private:
  Network& network_;
  util::NodeId self_;
};

TEST_F(DistributedTest, GarbageSpeakingPeerSkipped) {
  // Poison the tracker with a malicious peer that will be sampled first.
  GarbagePeer evil(d_.network(), 666);
  d_.network().attach(666, util::parse_netaddr("10.66.66.66"), &evil);
  for (int i = 0; i < 4; ++i) {
    // Register several times under distinct ids mapping to the same node to
    // crowd the peer list.
    d_.tracker().register_peer(1, {666, util::parse_netaddr("10.66.66.66")}, 8);
  }

  AsyncClient& alice = d_.add_client("alice@example.com", "pw-a", region_);
  ASSERT_EQ(wait([&](auto cb) { alice.login(cb); }), DrmError::kOk);
  ASSERT_EQ(wait([&](auto cb) { alice.switch_channel(1, cb); }), DrmError::kOk);
  // The join succeeded against an honest peer despite the poisoned list...
  ASSERT_TRUE(alice.parent().has_value());
  EXPECT_NE(*alice.parent(), 666u);
  d_.broadcast(1, util::bytes_of("works anyway"));
  d_.run_for(5 * kSecond);
  EXPECT_EQ(alice.content_decrypted(), 1u);
}

TEST_F(DistributedTest, StarvationRecoveryAfterParentChurn) {
  // Bob attaches under Alice (the root is hidden from the tracker so the
  // topology is deterministic); Alice departs; Bob's starvation watchdog
  // notices the dead feed and re-switches onto a live parent.
  AsyncClient& alice = d_.add_client("alice@example.com", "pw-a", region_);
  ASSERT_EQ(wait([&](auto cb) { alice.login(cb); }), DrmError::kOk);
  ASSERT_EQ(wait([&](auto cb) { alice.switch_channel(1, cb); }), DrmError::kOk);
  d_.announce(alice);

  PeerNode* root = d_.root_node(1);
  d_.tracker().unregister_peer(1, root->id());  // only Alice remains listed

  AsyncClient& bob = d_.add_client("bob@example.com", "pw-b", region_);
  bob.enable_starvation_recovery(8 * kSecond);
  ASSERT_EQ(wait([&](auto cb) { bob.login(cb); }), DrmError::kOk);
  ASSERT_EQ(wait([&](auto cb) { bob.switch_channel(1, cb); }), DrmError::kOk);
  ASSERT_EQ(bob.parent(), alice.config().node);

  // Restore the root as a parent candidate, then kill Bob's parent.
  d_.tracker().register_peer(
      1, core::PeerInfo{root->id(), *d_.network().addr_of(root->id())}, 64);
  const util::NodeId alice_node = alice.config().node;
  d_.remove_client(alice);  // destroys alice; only alice_node survives

  // Feed content; Bob misses it until the watchdog fires, then recovers.
  for (int i = 0; i < 30; ++i) {
    d_.broadcast(1, util::bytes_of("tick"));
    d_.run_for(1 * kSecond);
  }
  EXPECT_GE(bob.starvation_recoveries(), 1u);
  ASSERT_TRUE(bob.parent().has_value());
  EXPECT_NE(*bob.parent(), alice_node);
  EXPECT_GT(bob.content_decrypted(), 0u);
}

TEST_F(DistributedTest, ForwardSecrecyAfterEvictionOverTheWire) {
  // An evicted (unrenewed) client keeps its old content keys but stops
  // receiving rotations: fresh traffic is beyond its key material — the
  // §IV-E forward-secrecy property, end to end.
  AsyncClient& alice = d_.add_client("alice@example.com", "pw-a", region_);
  ASSERT_EQ(wait([&](auto cb) { alice.login(cb); }), DrmError::kOk);
  ASSERT_EQ(wait([&](auto cb) { alice.switch_channel(1, cb); }), DrmError::kOk);

  d_.broadcast(1, util::bytes_of("while authorized"));
  d_.run_for(5 * kSecond);
  EXPECT_EQ(alice.content_decrypted(), 1u);

  // No renewal: the root's eviction sweep severs alice at ticket expiry
  // (10 min) and the minute-by-minute key rotation continues without her.
  d_.run_for(13 * kMinute);
  ASSERT_EQ(d_.root_node(1)->peer().child_count(), 0u);

  d_.broadcast(1, util::bytes_of("after eviction"));
  d_.run_for(5 * kSecond);
  // Severed: nothing new arrived, nothing new decrypted…
  EXPECT_EQ(alice.content_decrypted(), 1u);
  // …and her key ring ends at the serial in use when she was cut off; the
  // currently active key (serial ~13 after 13 minutes) never reached her.
  EXPECT_FALSE(alice.peer_node()->peer().knows_serial(13));
}

TEST_F(DistributedTest, RenewalOverTheWireKeepsPeering) {
  AsyncClient& alice = d_.add_client("alice@example.com", "pw-a", region_);
  ASSERT_EQ(wait([&](auto cb) { alice.login(cb); }), DrmError::kOk);
  ASSERT_EQ(wait([&](auto cb) { alice.switch_channel(1, cb); }), DrmError::kOk);

  // Advance near ticket expiry (10 min lifetime, renewal window 3 min).
  d_.run_for(8 * kMinute);
  ASSERT_EQ(wait([&](auto cb) { alice.renew_channel_ticket(cb); }), DrmError::kOk);
  EXPECT_TRUE(alice.channel_ticket()->ticket.renewal);

  // Past the original expiry the root peer must still keep Alice attached.
  d_.run_for(4 * kMinute);
  PeerNode* root = d_.root_node(1);
  ASSERT_NE(root, nullptr);
  EXPECT_TRUE(root->peer().evict_expired(d_.sim().now()).empty());
  d_.broadcast(1, util::bytes_of("still here"));
  d_.run_for(5 * kSecond);
  EXPECT_EQ(alice.content_decrypted(), 1u);
}

TEST_F(DistributedTest, KeyEpochGapAfterParentCrashIsBoundedByWatchdog) {
  // A subtree parent crashing between rotations opens a key-epoch gap for
  // its children: the root keeps issuing rotations nobody delivers. The
  // gap window is bounded by the starvation watchdog — once it fires, the
  // child re-switches and epoch delivery resumes.
  services::ChannelServerConfig fast;
  fast.rekey_interval = 10 * kSecond;
  fast.announce_lead = 2 * kSecond;
  d_.add_regional_channel(2, "sports", region_);
  d_.start_channel_server(2, fast);

  AsyncClient& alice = d_.add_client("alice@example.com", "pw-a", region_);
  ASSERT_EQ(wait([&](auto cb) { alice.login(cb); }), DrmError::kOk);
  ASSERT_EQ(wait([&](auto cb) { alice.switch_channel(2, cb); }), DrmError::kOk);
  d_.announce(alice);

  PeerNode* root = d_.root_node(2);
  d_.tracker().unregister_peer(2, root->id());  // force Bob under Alice

  AsyncClient& bob = d_.add_client("bob@example.com", "pw-b", region_);
  bob.enable_starvation_recovery(12 * kSecond);
  ASSERT_EQ(wait([&](auto cb) { bob.login(cb); }), DrmError::kOk);
  ASSERT_EQ(wait([&](auto cb) { bob.switch_channel(2, cb); }), DrmError::kOk);
  ASSERT_EQ(bob.parent(), alice.config().node);
  d_.tracker().register_peer(
      2, core::PeerInfo{root->id(), *d_.network().addr_of(root->id())}, 64);

  // Crash the parent between rotations; the tracker still lists the corpse,
  // so model the stale sweep that would eventually retire it.
  d_.crash_client(alice);
  d_.tracker().unregister_peer(2, alice.config().node);
  const std::uint64_t rotations_at_crash =
      d_.registry().counter("keys.rotations_issued").value();
  const std::uint64_t epochs_at_crash =
      d_.registry().counter("keys.epochs_delivered").value();
  const std::uint64_t decrypted_at_crash = bob.content_decrypted();

  // Inside the gap window (one rotation passes, watchdog not yet due):
  // rotations are issued but none reach the orphaned child.
  d_.run_for(11 * kSecond);
  EXPECT_GT(d_.registry().counter("keys.rotations_issued").value(),
            rotations_at_crash);
  EXPECT_EQ(d_.registry().counter("keys.epochs_delivered").value(),
            epochs_at_crash);
  d_.broadcast(2, util::bytes_of("into the gap"));
  d_.run_for(2 * kSecond);
  EXPECT_EQ(bob.content_decrypted(), decrypted_at_crash);  // dark window

  // Past the watchdog: Bob re-switches onto the root and the gap closes.
  d_.run_for(20 * kSecond);
  EXPECT_GE(bob.starvation_recoveries(), 1u);
  ASSERT_TRUE(bob.parent().has_value());
  EXPECT_NE(*bob.parent(), alice.config().node);
  d_.broadcast(2, util::bytes_of("after recovery"));
  d_.run_for(5 * kSecond);
  EXPECT_GT(bob.content_decrypted(), decrypted_at_crash);
  EXPECT_GT(d_.registry().counter("keys.epochs_delivered").value(),
            epochs_at_crash);
}

}  // namespace
}  // namespace p2pdrm::net
