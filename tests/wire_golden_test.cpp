// Wire-format stability: golden digests of deterministic encodings.
//
// Tickets are signed over their exact byte encoding, and deployed clients
// and servers must interoperate across releases — so the wire format is a
// compatibility contract. These tests pin the SHA-256 of reference
// encodings; any change to field order, widths, or defaults fails here
// first (and must come with a kProtocolVersion bump).
#include <gtest/gtest.h>

#include "core/content.h"
#include "core/messages.h"
#include "core/ticket.h"
#include "crypto/chacha20.h"
#include "crypto/sha256.h"

namespace p2pdrm {
namespace {

std::string digest_of(const util::Bytes& b) {
  return util::to_hex(crypto::sha256_bytes(b));
}

/// Deterministic actors shared by every golden structure.
struct GoldenActors {
  GoldenActors() : rng(424242) {
    issuer = crypto::generate_rsa_keypair(rng, 512);
    client = crypto::generate_rsa_keypair(rng, 512);
  }
  crypto::SecureRandom rng;
  crypto::RsaKeyPair issuer;
  crypto::RsaKeyPair client;
};

const GoldenActors& actors() {
  static const GoldenActors a;
  return a;
}

core::UserTicket golden_user_ticket() {
  core::UserTicket ut;
  ut.user_in = 77;
  ut.client_public_key = actors().client.pub;
  ut.start_time = 1000000;
  ut.expiry_time = 2000000;
  core::Attribute a;
  a.name = core::kAttrRegion;
  a.value = core::AttrValue::of("100");
  a.stime = util::kNullTime;
  a.etime = 5000000;
  a.utime = 123;
  ut.attributes.add(a);
  return ut;
}

core::ChannelTicket golden_channel_ticket() {
  core::ChannelTicket ct;
  ct.user_in = 77;
  ct.channel_id = 9;
  ct.client_public_key = actors().client.pub;
  ct.net_addr = util::parse_netaddr("10.1.2.3");
  ct.renewal = true;
  ct.start_time = 1;
  ct.expiry_time = 2;
  return ct;
}

TEST(WireGoldenTest, UserTicket) {
  const util::Bytes wire = golden_user_ticket().encode();
  EXPECT_EQ(wire.size(), 151u);
  EXPECT_EQ(digest_of(wire),
            "348dcf6b62e9aa19b184107e63b7e721ebbbfada5ece582fe92179eb68d3c156");
}

TEST(WireGoldenTest, SignedUserTicket) {
  const util::Bytes wire =
      core::SignedUserTicket::sign(golden_user_ticket(), actors().issuer.priv).encode();
  EXPECT_EQ(wire.size(), 223u);
  EXPECT_EQ(digest_of(wire),
            "009237d79b93f8815607651aed02e13c211d404d491986cc1f095aade03dd85b");
}

TEST(WireGoldenTest, ChannelTicket) {
  const util::Bytes wire = golden_channel_ticket().encode();
  EXPECT_EQ(wire.size(), 114u);
  EXPECT_EQ(digest_of(wire),
            "b1d0f4186d2c3bf4cb6c2c9d1d97b7ef542b90324da142f73640beefa439afde");
}

TEST(WireGoldenTest, Login1Request) {
  core::Login1Request l1;
  l1.email = "golden@example.com";
  l1.client_public_key = actors().client.pub;
  l1.client_version = 3;
  const util::Bytes wire = l1.encode();
  EXPECT_EQ(wire.size(), 107u);
  EXPECT_EQ(digest_of(wire),
            "9a2347a08444a95d88a917fc194138e8bb856012682042dca1a4ae920e78f719");
}

TEST(WireGoldenTest, Switch2Response) {
  core::Switch2Response s2;
  s2.ticket =
      core::SignedChannelTicket::sign(golden_channel_ticket(), actors().issuer.priv);
  s2.peers = {{5, util::parse_netaddr("10.0.0.5")}};
  const util::Bytes wire = s2.encode();
  EXPECT_EQ(wire.size(), 204u);
  EXPECT_EQ(digest_of(wire),
            "14cc55b33b3b2143ed1689c06bd7a065a1241aa10f4e115ea216b08291a2420f");
}

TEST(WireGoldenTest, ContentPacketAndKey) {
  crypto::SecureRandom krng(7);
  const core::ContentKey key = core::generate_content_key(krng, 3, 60000000);
  util::WireWriter kw;
  key.encode(kw);
  EXPECT_EQ(digest_of(kw.data()),
            "b5d8d3920ab1a536b57a919dfcdd5b5d5e3ff09e39430c57d67298113ef9da6a");

  const core::ContentPacket p =
      core::encrypt_packet(key, 9, 12, util::bytes_of("golden frame"));
  const util::Bytes wire = p.encode();
  EXPECT_EQ(wire.size(), 29u);
  EXPECT_EQ(digest_of(wire),
            "0b425a6f376105c071cd1f9795a67a6349fdf219b010520b34ba3a53fdb1ca83");
}

TEST(WireGoldenTest, ProtocolVersionPinned) {
  // Bump this assertion together with any golden digest change.
  // v4: JoinRequest gained substream_mask (peer-division multiplexing).
  EXPECT_EQ(core::kProtocolVersion, 4);
}

TEST(WireGoldenTest, DrbgPinned) {
  // The golden structures above depend on SecureRandom determinism; pin the
  // DRBG's output so a drift there is diagnosed directly.
  crypto::SecureRandom rng(424242);
  EXPECT_EQ(util::to_hex(rng.bytes(16)), "941c27a4f504e9959ee5aff02050019a");
}

}  // namespace
}  // namespace p2pdrm
