// Property sweeps over ticket lifetimes: for every configuration of User
// Ticket lifetime, Channel Ticket lifetime, and renewal window, the
// system-wide ticket invariants must hold across issue/renew cycles:
//
//   I1. A Channel Ticket never outlives the User Ticket it was issued
//       against (§IV-C).
//   I2. A User Ticket never outlives any attribute it carries (§IV-B).
//   I3. Renewal preserves identity: UserIN, channel, NetAddr, certified key.
//   I4. Renewal extends expiry monotonically and sets the renewal bit.
//   I5. Tickets verify under the issuer's key after every operation.
#include <gtest/gtest.h>

#include "client/testbed.h"

namespace p2pdrm::client {
namespace {

using core::DrmError;
using util::kMinute;

struct LifetimeParams {
  util::SimTime ut_lifetime;
  util::SimTime ct_lifetime;
  util::SimTime renewal_window;
};

class TicketPropertyTest : public ::testing::TestWithParam<LifetimeParams> {};

TEST_P(TicketPropertyTest, InvariantsAcrossIssueAndRenewCycles) {
  const LifetimeParams params = GetParam();
  TestbedConfig cfg;
  cfg.seed = 31337;
  cfg.um.ticket_lifetime = params.ut_lifetime;
  cfg.cm.ticket_lifetime = params.ct_lifetime;
  cfg.cm.renewal_window = params.renewal_window;
  Testbed tb(cfg);
  tb.add_user("prop@example.com", "pw");
  const geo::RegionId region = tb.geo().region_at(0);
  tb.add_regional_channel(1, "prop-channel", region);
  tb.start_channel_server(1);

  Client& c = tb.add_client("prop@example.com", "pw", region);
  ASSERT_EQ(c.login(), DrmError::kOk);
  ASSERT_EQ(c.switch_channel(1), DrmError::kOk);

  const util::UserIN user_in = c.user_ticket()->ticket.user_in;
  const crypto::RsaPublicKey certified = c.user_ticket()->ticket.client_public_key;

  // Drive several renewal cycles through simulated time.
  for (int cycle = 0; cycle < 6; ++cycle) {
    const core::ChannelTicket before = c.channel_ticket()->ticket;

    // I1/I2/I5 at every observation point.
    ASSERT_LE(c.channel_ticket()->ticket.expiry_time,
              c.user_ticket()->ticket.expiry_time);
    if (const auto earliest = c.user_ticket()->ticket.attributes.earliest_expiry()) {
      ASSERT_LE(c.user_ticket()->ticket.expiry_time, *earliest);
    }
    ASSERT_TRUE(c.user_ticket()->verify(tb.user_manager().public_key()));
    ASSERT_TRUE(c.channel_ticket()->verify(tb.channel_manager().public_key()));

    // Advance into the renewal window of the channel ticket.
    const util::SimTime target =
        std::max<util::SimTime>(before.expiry_time - params.renewal_window / 2,
                                tb.clock().now() + 1);
    tb.clock().set(target);
    ASSERT_EQ(c.ensure_user_ticket(), DrmError::kOk);
    const DrmError renewed = c.renew_channel_ticket();
    if (renewed != DrmError::kOk) {
      // Legal only when the renewal window collapsed below clock precision;
      // re-acquire via a fresh switch and continue the sweep.
      ASSERT_EQ(c.switch_channel(1), DrmError::kOk);
      continue;
    }
    const core::ChannelTicket& after = c.channel_ticket()->ticket;

    // I3: identity preserved.
    EXPECT_EQ(after.user_in, user_in);
    EXPECT_EQ(after.channel_id, before.channel_id);
    EXPECT_EQ(after.net_addr, before.net_addr);
    EXPECT_EQ(after.client_public_key, certified);
    // I4: renewal semantics.
    EXPECT_TRUE(after.renewal);
    EXPECT_GE(after.expiry_time, before.expiry_time);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Lifetimes, TicketPropertyTest,
    ::testing::Values(
        LifetimeParams{30 * kMinute, 10 * kMinute, 3 * kMinute},
        LifetimeParams{30 * kMinute, 2 * kMinute, 1 * kMinute},
        LifetimeParams{10 * kMinute, 5 * kMinute, 2 * kMinute},
        LifetimeParams{60 * kMinute, 30 * kMinute, 5 * kMinute},
        LifetimeParams{15 * kMinute, 15 * kMinute, 4 * kMinute},
        LifetimeParams{120 * kMinute, 10 * kMinute, 3 * kMinute}));

/// The paper's lower bound on policy lead time, checked as a property: a
/// policy deployed T before its effect can never be beaten by an
/// outstanding ticket if T >= one User Ticket lifetime.
class PolicyLeadTimeTest : public ::testing::TestWithParam<util::SimTime> {};

TEST_P(PolicyLeadTimeTest, BlackoutDeployedOneUtLifetimeAheadAlwaysBinds) {
  const util::SimTime ut_lifetime = GetParam();
  TestbedConfig cfg;
  cfg.seed = 404;
  cfg.um.ticket_lifetime = ut_lifetime;
  cfg.cm.ticket_lifetime = ut_lifetime / 2;
  Testbed tb(cfg);
  tb.add_user("lead@example.com", "pw");
  const geo::RegionId region = tb.geo().region_at(0);
  tb.add_regional_channel(1, "c", region);
  tb.start_channel_server(1);

  Client& c = tb.add_client("lead@example.com", "pw", region);
  ASSERT_EQ(c.login(), DrmError::kOk);
  ASSERT_EQ(c.switch_channel(1), DrmError::kOk);

  // Deploy the blackout exactly one UT lifetime before it starts.
  const util::SimTime start = tb.clock().now() + ut_lifetime;
  tb.policy_manager().blackout(1, start, start + 2 * ut_lifetime, tb.clock().now());

  // At the blackout start, every ticket issued before deployment has
  // expired: both the user ticket and (transitively, I1) channel tickets.
  EXPECT_LE(c.user_ticket()->ticket.expiry_time, start);
  EXPECT_LE(c.channel_ticket()->ticket.expiry_time, start);

  // And new tickets issued during the window cannot watch.
  tb.clock().set(start + util::kMinute);
  ASSERT_EQ(c.login(), DrmError::kOk);
  EXPECT_EQ(c.switch_channel(1), DrmError::kAccessDenied);
}

INSTANTIATE_TEST_SUITE_P(UtLifetimes, PolicyLeadTimeTest,
                         ::testing::Values(10 * kMinute, 30 * kMinute,
                                           60 * kMinute));

}  // namespace
}  // namespace p2pdrm::client
