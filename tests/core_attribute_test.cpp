#include <gtest/gtest.h>

#include "core/attribute.h"

namespace p2pdrm::core {
namespace {

using util::kHour;
using util::kNullTime;

TEST(AttrValueTest, Basics) {
  const AttrValue v = AttrValue::of("100");
  EXPECT_EQ(v.kind(), AttrValue::Kind::kValue);
  EXPECT_FALSE(v.is_special());
  EXPECT_EQ(v.value(), "100");
  EXPECT_EQ(v.to_string(), "100");
}

TEST(AttrValueTest, OfNumber) {
  EXPECT_EQ(AttrValue::of_number(101).value(), "101");
}

TEST(AttrValueTest, Specials) {
  EXPECT_EQ(AttrValue::any().to_string(), "ANY");
  EXPECT_EQ(AttrValue::all().to_string(), "ALL");
  EXPECT_EQ(AttrValue::none().to_string(), "NONE");
  EXPECT_EQ(AttrValue::null().to_string(), "NULL");
  EXPECT_TRUE(AttrValue::any().is_special());
  EXPECT_THROW(AttrValue::any().value(), std::logic_error);
}

TEST(AttrValueTest, DefaultIsNull) {
  EXPECT_EQ(AttrValue().kind(), AttrValue::Kind::kNull);
}

TEST(AttrValueTest, WireRoundTrip) {
  for (const AttrValue& v : {AttrValue::of("abc"), AttrValue::any(), AttrValue::all(),
                             AttrValue::none(), AttrValue::null(), AttrValue::of("")}) {
    util::WireWriter w;
    v.encode(w);
    util::WireReader r(w.data());
    EXPECT_EQ(AttrValue::decode(r), v);
    EXPECT_TRUE(r.at_end());
  }
}

TEST(AttrValueTest, DecodeRejectsBadKind) {
  util::WireWriter w;
  w.u8(99);
  util::WireReader r(w.data());
  EXPECT_THROW(AttrValue::decode(r), util::WireError);
}

// values_match truth table.
TEST(ValuesMatchTest, ConcreteEquality) {
  EXPECT_TRUE(values_match(AttrValue::of("100"), AttrValue::of("100")));
  EXPECT_FALSE(values_match(AttrValue::of("100"), AttrValue::of("101")));
}

TEST(ValuesMatchTest, AnyMatchesAnyPresent) {
  EXPECT_TRUE(values_match(AttrValue::any(), AttrValue::of("whatever")));
  EXPECT_TRUE(values_match(AttrValue::of("x"), AttrValue::any()));
  EXPECT_TRUE(values_match(AttrValue::any(), AttrValue::any()));
  EXPECT_TRUE(values_match(AttrValue::all(), AttrValue::of("x")));
}

TEST(ValuesMatchTest, NoneAndNullNeverMatch) {
  EXPECT_FALSE(values_match(AttrValue::none(), AttrValue::of("x")));
  EXPECT_FALSE(values_match(AttrValue::of("x"), AttrValue::none()));
  EXPECT_FALSE(values_match(AttrValue::null(), AttrValue::of("x")));
  EXPECT_FALSE(values_match(AttrValue::of("x"), AttrValue::null()));
  EXPECT_FALSE(values_match(AttrValue::none(), AttrValue::any()));
  EXPECT_FALSE(values_match(AttrValue::any(), AttrValue::null()));
}

Attribute make_attr(const std::string& name, const std::string& value,
                    util::SimTime stime = kNullTime, util::SimTime etime = kNullTime) {
  Attribute a;
  a.name = name;
  a.value = AttrValue::of(value);
  a.stime = stime;
  a.etime = etime;
  return a;
}

TEST(AttributeTest, ActiveWindow) {
  const Attribute open = make_attr("Region", "100");
  EXPECT_TRUE(open.active_at(0));
  EXPECT_TRUE(open.active_at(1000 * kHour));

  const Attribute windowed = make_attr("Region", "100", 2 * kHour, 4 * kHour);
  EXPECT_FALSE(windowed.active_at(kHour));
  EXPECT_TRUE(windowed.active_at(2 * kHour));
  EXPECT_TRUE(windowed.active_at(3 * kHour));
  EXPECT_TRUE(windowed.active_at(4 * kHour));
  EXPECT_FALSE(windowed.active_at(4 * kHour + 1));
}

TEST(AttributeTest, HalfOpenWindows) {
  const Attribute starts = make_attr("A", "v", 2 * kHour, kNullTime);
  EXPECT_FALSE(starts.active_at(kHour));
  EXPECT_TRUE(starts.active_at(100 * kHour));

  const Attribute ends = make_attr("A", "v", kNullTime, 2 * kHour);
  EXPECT_TRUE(ends.active_at(0));
  EXPECT_FALSE(ends.active_at(3 * kHour));
}

TEST(AttributeTest, WireRoundTrip) {
  Attribute a = make_attr("Subscription", "101", 10, 20);
  a.utime = 15;
  util::WireWriter w;
  a.encode(w);
  util::WireReader r(w.data());
  EXPECT_EQ(Attribute::decode(r), a);
}

TEST(AttributeTest, ToStringMentionsFields) {
  const Attribute a = make_attr("Region", "100");
  const std::string s = a.to_string();
  EXPECT_NE(s.find("Region"), std::string::npos);
  EXPECT_NE(s.find("100"), std::string::npos);
}

TEST(AttributeSetTest, FindAndMatches) {
  AttributeSet set;
  set.add(make_attr("Region", "100"));
  set.add(make_attr("Subscription", "101"));
  set.add(make_attr("Subscription", "202"));

  ASSERT_NE(set.find("Region"), nullptr);
  EXPECT_EQ(set.find("Region")->value.value(), "100");
  EXPECT_EQ(set.find("Nope"), nullptr);

  EXPECT_TRUE(set.matches("Subscription", AttrValue::of("202"), 0));
  EXPECT_FALSE(set.matches("Subscription", AttrValue::of("999"), 0));
  EXPECT_TRUE(set.matches("Region", AttrValue::any(), 0));
  EXPECT_FALSE(set.matches("Missing", AttrValue::any(), 0));
}

TEST(AttributeSetTest, MatchesHonoursValidityWindow) {
  AttributeSet set;
  set.add(make_attr("Region", "100", 2 * kHour, 4 * kHour));
  EXPECT_FALSE(set.matches("Region", AttrValue::of("100"), kHour));
  EXPECT_TRUE(set.matches("Region", AttrValue::of("100"), 3 * kHour));
  EXPECT_FALSE(set.matches("Region", AttrValue::of("100"), 5 * kHour));
}

TEST(AttributeSetTest, FindActive) {
  AttributeSet set;
  set.add(make_attr("Region", "100", kNullTime, 2 * kHour));
  set.add(make_attr("Region", "101", 3 * kHour, kNullTime));
  EXPECT_EQ(set.find_active("Region", kHour).size(), 1u);
  EXPECT_EQ(set.find_active("Region", kHour)[0]->value.value(), "100");
  EXPECT_EQ(set.find_active("Region", 10 * kHour)[0]->value.value(), "101");
  EXPECT_TRUE(set.find_active("Region", 2 * kHour + 1).empty() ||
              set.find_active("Region", 2 * kHour + 1).size() == 1);
}

TEST(AttributeSetTest, RemoveAll) {
  AttributeSet set;
  set.add(make_attr("Subscription", "101"));
  set.add(make_attr("Subscription", "202"));
  set.add(make_attr("Region", "100"));
  EXPECT_EQ(set.remove_all("Subscription"), 2u);
  EXPECT_EQ(set.size(), 1u);
  EXPECT_EQ(set.remove_all("Subscription"), 0u);
}

TEST(AttributeSetTest, EarliestExpiry) {
  AttributeSet set;
  EXPECT_FALSE(set.earliest_expiry().has_value());
  set.add(make_attr("A", "1"));  // null etime
  EXPECT_FALSE(set.earliest_expiry().has_value());
  set.add(make_attr("B", "2", kNullTime, 5 * kHour));
  set.add(make_attr("C", "3", kNullTime, 3 * kHour));
  ASSERT_TRUE(set.earliest_expiry().has_value());
  EXPECT_EQ(*set.earliest_expiry(), 3 * kHour);
}

TEST(AttributeSetTest, LatestUpdate) {
  AttributeSet set;
  EXPECT_FALSE(set.latest_update().has_value());
  Attribute a = make_attr("A", "1");
  a.utime = 10;
  Attribute b = make_attr("B", "2");
  b.utime = 30;
  set.add(a);
  set.add(b);
  EXPECT_EQ(*set.latest_update(), 30);
}

TEST(AttributeSetTest, WireRoundTrip) {
  AttributeSet set;
  set.add(make_attr("Region", "100", 1, 2));
  set.add(make_attr("Subscription", "101"));
  util::WireWriter w;
  set.encode(w);
  util::WireReader r(w.data());
  EXPECT_EQ(AttributeSet::decode(r), set);
}

TEST(AttributeSetTest, DecodeRejectsImplausibleCount) {
  util::WireWriter w;
  w.u32(1000000);
  util::WireReader r(w.data());
  EXPECT_THROW(AttributeSet::decode(r), util::WireError);
}

}  // namespace
}  // namespace p2pdrm::core
