#include <gtest/gtest.h>

#include "core/auth.h"
#include "core/content.h"
#include "core/messages.h"

namespace p2pdrm::core {
namespace {

using util::Bytes;
using util::bytes_of;

TEST(ContentKeyTest, GenerateIsFresh) {
  crypto::SecureRandom rng(1);
  const ContentKey a = generate_content_key(rng, 0, 100);
  const ContentKey b = generate_content_key(rng, 1, 200);
  EXPECT_NE(a.key, b.key);
  EXPECT_NE(a.nonce, b.nonce);
  EXPECT_EQ(a.serial, 0);
  EXPECT_EQ(b.serial, 1);
}

TEST(ContentKeyTest, WireRoundTrip) {
  crypto::SecureRandom rng(2);
  const ContentKey k = generate_content_key(rng, 42, 12345);
  util::WireWriter w;
  k.encode(w);
  util::WireReader r(w.data());
  EXPECT_EQ(ContentKey::decode(r), k);
}

TEST(SessionKeyTest, BytesRoundTrip) {
  crypto::SecureRandom rng(3);
  const SessionKey k = generate_session_key(rng);
  const auto back = SessionKey::from_bytes(k.to_bytes());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, k);
}

TEST(SessionKeyTest, WrongLengthRejected) {
  EXPECT_FALSE(SessionKey::from_bytes(Bytes(10)).has_value());
  EXPECT_FALSE(SessionKey::from_bytes(Bytes(100)).has_value());
}

TEST(KeyWrapTest, WrapUnwrapRoundTrip) {
  crypto::SecureRandom rng(4);
  const SessionKey session = generate_session_key(rng);
  const ContentKey key = generate_content_key(rng, 7, 999);
  const Bytes blob = wrap_content_key(key, session, 1);
  const auto unwrapped = unwrap_content_key(blob, session);
  ASSERT_TRUE(unwrapped.has_value());
  EXPECT_EQ(*unwrapped, key);
}

TEST(KeyWrapTest, WrongSessionKeyFails) {
  crypto::SecureRandom rng(5);
  const SessionKey a = generate_session_key(rng);
  const SessionKey b = generate_session_key(rng);
  const ContentKey key = generate_content_key(rng, 7, 999);
  EXPECT_FALSE(unwrap_content_key(wrap_content_key(key, a, 1), b).has_value());
}

TEST(KeyWrapTest, TamperedBlobFails) {
  crypto::SecureRandom rng(6);
  const SessionKey session = generate_session_key(rng);
  const ContentKey key = generate_content_key(rng, 7, 999);
  Bytes blob = wrap_content_key(key, session, 1);
  for (std::size_t pos = 0; pos < blob.size(); pos += 7) {
    Bytes corrupted = blob;
    corrupted[pos] ^= 0x01;
    EXPECT_FALSE(unwrap_content_key(corrupted, session).has_value()) << "pos " << pos;
  }
}

TEST(KeyWrapTest, TruncatedBlobFails) {
  crypto::SecureRandom rng(7);
  const SessionKey session = generate_session_key(rng);
  const ContentKey key = generate_content_key(rng, 1, 1);
  Bytes blob = wrap_content_key(key, session, 1);
  blob.resize(blob.size() / 2);
  EXPECT_FALSE(unwrap_content_key(blob, session).has_value());
}

TEST(KeyWrapTest, DistinctNoncesDistinctBlobs) {
  crypto::SecureRandom rng(8);
  const SessionKey session = generate_session_key(rng);
  const ContentKey key = generate_content_key(rng, 1, 1);
  EXPECT_NE(wrap_content_key(key, session, 1), wrap_content_key(key, session, 2));
}

TEST(ContentPacketTest, EncryptDecryptRoundTrip) {
  crypto::SecureRandom rng(9);
  const ContentKey key = generate_content_key(rng, 3, 0);
  const Bytes payload = bytes_of("one second of encoded video, give or take");
  const ContentPacket packet = encrypt_packet(key, 55, 1234, payload);
  EXPECT_EQ(packet.channel, 55u);
  EXPECT_EQ(packet.key_serial, 3);
  EXPECT_EQ(packet.seq, 1234u);
  EXPECT_NE(packet.payload, payload);

  const auto plain = decrypt_packet(key, packet);
  ASSERT_TRUE(plain.has_value());
  EXPECT_EQ(*plain, payload);
}

TEST(ContentPacketTest, SerialMismatchRejected) {
  crypto::SecureRandom rng(10);
  const ContentKey k3 = generate_content_key(rng, 3, 0);
  const ContentKey k4 = generate_content_key(rng, 4, 0);
  const ContentPacket packet = encrypt_packet(k3, 1, 0, bytes_of("x"));
  EXPECT_FALSE(decrypt_packet(k4, packet).has_value());
}

TEST(ContentPacketTest, ForwardSecrecyAcrossRotations) {
  // A key only decrypts packets of its own iteration: an evicted client
  // holding serial-3 material cannot read serial-4 traffic.
  crypto::SecureRandom rng(11);
  const ContentKey k3 = generate_content_key(rng, 3, 0);
  const ContentKey k4 = generate_content_key(rng, 4, 60);
  const Bytes payload = bytes_of("secret frame");
  const ContentPacket p4 = encrypt_packet(k4, 1, 0, payload);
  EXPECT_FALSE(decrypt_packet(k3, p4).has_value());
  // Even forcing the serial to match, the key material differs.
  ContentPacket forged = p4;
  forged.key_serial = 3;
  const auto wrong = decrypt_packet(k3, forged);
  ASSERT_TRUE(wrong.has_value());  // decrypts, but to garbage
  EXPECT_NE(*wrong, payload);
}

TEST(ContentPacketTest, DistinctSeqDistinctStreams) {
  crypto::SecureRandom rng(12);
  const ContentKey key = generate_content_key(rng, 1, 0);
  const Bytes zeros(64, 0);
  const ContentPacket a = encrypt_packet(key, 1, 1, zeros);
  const ContentPacket b = encrypt_packet(key, 1, 2, zeros);
  EXPECT_NE(a.payload, b.payload);
}

TEST(ContentPacketTest, WireRoundTrip) {
  crypto::SecureRandom rng(13);
  const ContentKey key = generate_content_key(rng, 9, 0);
  const ContentPacket p = encrypt_packet(key, 2, 77, bytes_of("payload"));
  EXPECT_EQ(ContentPacket::decode(p.encode()), p);
}

// --- auth helpers (§IV-F1) ---

TEST(PasswordHashTest, DeterministicAndDistinct) {
  EXPECT_EQ(password_hash("hunter2"), password_hash("hunter2"));
  EXPECT_NE(password_hash("hunter2"), password_hash("hunter3"));
}

TEST(ShpEncryptionTest, RoundTrip) {
  crypto::SecureRandom rng(14);
  const auto shp = password_hash("secret");
  const Bytes payload = bytes_of("nonce and checksum parameters");
  const Bytes blob = encrypt_with_shp(shp, payload, rng);
  const auto back = decrypt_with_shp(shp, blob);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, payload);
}

TEST(ShpEncryptionTest, WrongPasswordFails) {
  crypto::SecureRandom rng(15);
  const Bytes blob = encrypt_with_shp(password_hash("right"), bytes_of("data"), rng);
  EXPECT_FALSE(decrypt_with_shp(password_hash("wrong"), blob).has_value());
}

TEST(ShpEncryptionTest, TamperingDetected) {
  crypto::SecureRandom rng(16);
  const auto shp = password_hash("pw");
  Bytes blob = encrypt_with_shp(shp, bytes_of("data"), rng);
  blob[blob.size() / 2] ^= 0xff;
  EXPECT_FALSE(decrypt_with_shp(shp, blob).has_value());
}

TEST(ShpEncryptionTest, RandomizedCiphertext) {
  crypto::SecureRandom rng(17);
  const auto shp = password_hash("pw");
  EXPECT_NE(encrypt_with_shp(shp, bytes_of("data"), rng),
            encrypt_with_shp(shp, bytes_of("data"), rng));
}

TEST(AttestationTest, SameBinarySameChecksum) {
  crypto::SecureRandom rng(18);
  const Bytes binary = rng.bytes(4096);
  const ChecksumParams params{100, 1000, 0xabcdef};
  EXPECT_EQ(compute_attestation_checksum(binary, params),
            compute_attestation_checksum(binary, params));
}

TEST(AttestationTest, ModifiedBinaryDiffers) {
  crypto::SecureRandom rng(19);
  Bytes binary = rng.bytes(4096);
  const ChecksumParams params{100, 1000, 0xabcdef};
  const Bytes original = compute_attestation_checksum(binary, params);
  binary[500] ^= 0x01;  // inside the window
  EXPECT_NE(compute_attestation_checksum(binary, params), original);
}

TEST(AttestationTest, ModificationOutsideWindowUndetected) {
  // Documents the known limitation the paper acknowledges: a window only
  // covers what it covers (hence fresh random windows per login).
  crypto::SecureRandom rng(20);
  Bytes binary = rng.bytes(4096);
  const ChecksumParams params{100, 1000, 0xabcdef};
  const Bytes original = compute_attestation_checksum(binary, params);
  binary[2000] ^= 0x01;  // outside [100, 1100)
  EXPECT_EQ(compute_attestation_checksum(binary, params), original);
}

TEST(AttestationTest, DifferentParamsDifferentChecksum) {
  crypto::SecureRandom rng(21);
  const Bytes binary = rng.bytes(4096);
  EXPECT_NE(compute_attestation_checksum(binary, ChecksumParams{0, 100, 1}),
            compute_attestation_checksum(binary, ChecksumParams{0, 100, 2}));
  EXPECT_NE(compute_attestation_checksum(binary, ChecksumParams{0, 100, 1}),
            compute_attestation_checksum(binary, ChecksumParams{0, 101, 1}));
}

TEST(AttestationTest, WindowClampedToBinary) {
  crypto::SecureRandom rng(22);
  const Bytes binary = rng.bytes(100);
  // Offset and length beyond the binary clamp instead of crashing.
  const Bytes c1 = compute_attestation_checksum(binary, ChecksumParams{90, 1000, 5});
  const Bytes c2 = compute_attestation_checksum(binary, ChecksumParams{90, 10, 5});
  EXPECT_EQ(c1, c2);
  const Bytes c3 = compute_attestation_checksum(binary, ChecksumParams{5000, 10, 5});
  EXPECT_EQ(c3.size(), 32u);
}

}  // namespace
}  // namespace p2pdrm::core
