#include <gtest/gtest.h>

#include "crypto/chacha20.h"
#include "services/channel_policy_manager.h"

namespace p2pdrm::services {
namespace {

using core::DrmError;
using util::kHour;
using util::kMinute;

class CpmTest : public ::testing::Test {
 protected:
  CpmTest() : rng_(800) {
    um_keys_ = crypto::generate_rsa_keypair(rng_, 512);
    client_keys_ = crypto::generate_rsa_keypair(rng_, 512);
    cpm_ = std::make_unique<ChannelPolicyManager>(um_keys_.pub);
  }

  static core::ChannelRecord make_channel(util::ChannelId id, const std::string& region,
                                          std::uint32_t partition = 0) {
    core::ChannelRecord c;
    c.id = id;
    c.name = "ch-" + std::to_string(id);
    c.partition = partition;
    core::Attribute r;
    r.name = core::kAttrRegion;
    r.value = core::AttrValue::of(region);
    c.attributes.add(r);
    core::Policy accept;
    accept.priority = 50;
    accept.terms.push_back({core::kAttrRegion, core::AttrValue::of(region)});
    accept.action = core::PolicyAction::kAccept;
    c.policies.push_back(accept);
    return c;
  }

  core::SignedUserTicket make_user_ticket(util::SimTime now) {
    core::UserTicket t;
    t.user_in = 1;
    t.client_public_key = client_keys_.pub;
    t.start_time = now;
    t.expiry_time = now + 30 * kMinute;
    return core::SignedUserTicket::sign(t, um_keys_.priv);
  }

  crypto::SecureRandom rng_;
  crypto::RsaKeyPair um_keys_;
  crypto::RsaKeyPair client_keys_;
  std::unique_ptr<ChannelPolicyManager> cpm_;
};

TEST_F(CpmTest, AddChannelSetsUtimes) {
  cpm_->add_channel(make_channel(1, "100"), 5 * kHour);
  const core::ChannelRecord* c = cpm_->find_channel(1);
  ASSERT_NE(c, nullptr);
  for (const core::Attribute& a : c->attributes.items()) {
    EXPECT_EQ(a.utime, 5 * kHour);
  }
}

TEST_F(CpmTest, DuplicateChannelIdThrows) {
  cpm_->add_channel(make_channel(1, "100"), 0);
  EXPECT_THROW(cpm_->add_channel(make_channel(1, "101"), 0), std::invalid_argument);
}

TEST_F(CpmTest, AttributeListCollatesUniquePairs) {
  cpm_->add_channel(make_channel(1, "100"), 0);
  cpm_->add_channel(make_channel(2, "100"), 0);
  cpm_->add_channel(make_channel(3, "101"), 0);
  // Two unique (Region, value) pairs across three channels.
  EXPECT_EQ(cpm_->channel_attribute_list().size(), 2u);
}

TEST_F(CpmTest, ModifyingChannelBumpsUtime) {
  cpm_->add_channel(make_channel(1, "100"), 1 * kHour);
  cpm_->add_policy(1, core::Policy{}, 9 * kHour);
  const core::Attribute* entry = cpm_->channel_attribute_list().find(core::kAttrRegion);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->utime, 9 * kHour);
}

TEST_F(CpmTest, RemovingChannelBumpsRetiredAttributeUtime) {
  // "If a channel is added or deleted from the offering of region X, the
  // Region=X attribute has its last-update time made current."
  cpm_->add_channel(make_channel(1, "100"), 1 * kHour);
  cpm_->add_channel(make_channel(2, "100"), 1 * kHour);
  ASSERT_TRUE(cpm_->remove_channel(1, 6 * kHour));
  const core::Attribute* entry = cpm_->channel_attribute_list().find(core::kAttrRegion);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->utime, 6 * kHour);
  EXPECT_FALSE(cpm_->remove_channel(1, 7 * kHour));
}

TEST_F(CpmTest, SinksReceivePushes) {
  int channel_pushes = 0, attr_pushes = 0;
  std::size_t last_channels = 0;
  cpm_->add_channel_list_sink([&](const std::vector<core::ChannelRecord>& list) {
    ++channel_pushes;
    last_channels = list.size();
  });
  cpm_->add_attribute_list_sink([&](const core::AttributeSet&) { ++attr_pushes; });
  EXPECT_EQ(channel_pushes, 1);  // immediate replay on registration
  EXPECT_EQ(attr_pushes, 1);

  cpm_->add_channel(make_channel(1, "100"), 0);
  EXPECT_EQ(channel_pushes, 2);
  EXPECT_EQ(attr_pushes, 2);
  EXPECT_EQ(last_channels, 1u);
}

TEST_F(CpmTest, BlackoutAddsAttributeAndPolicy) {
  cpm_->add_channel(make_channel(1, "100"), 0);
  cpm_->blackout(1, 20 * kHour, 21 * kHour, 10 * kHour);
  const core::ChannelRecord* c = cpm_->find_channel(1);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->policies.size(), 2u);
  EXPECT_EQ(c->policies.back().priority, 100u);
  EXPECT_EQ(c->policies.back().action, core::PolicyAction::kReject);

  // End-to-end: a region-100 user is accepted outside, rejected inside.
  core::AttributeSet user;
  core::Attribute r;
  r.name = core::kAttrRegion;
  r.value = core::AttrValue::of("100");
  user.add(r);
  EXPECT_TRUE(core::channel_accessible(*c, user, 19 * kHour));
  EXPECT_FALSE(core::channel_accessible(*c, user, 20 * kHour + kMinute));
  EXPECT_TRUE(core::channel_accessible(*c, user, 22 * kHour));
}

TEST_F(CpmTest, PpvProgramGatesWindowOnly) {
  cpm_->add_channel(make_channel(1, "100"), 0);
  cpm_->add_ppv_program(1, "ppv-42", 21 * kHour, 23 * kHour, 0);
  const core::ChannelRecord* c = cpm_->find_channel(1);
  ASSERT_NE(c, nullptr);

  core::AttributeSet viewer;
  core::Attribute region;
  region.name = core::kAttrRegion;
  region.value = core::AttrValue::of("100");
  viewer.add(region);

  core::AttributeSet purchaser = viewer;
  core::Attribute grant;
  grant.name = core::kAttrSubscription;
  grant.value = core::AttrValue::of("ppv-42");
  grant.stime = 21 * kHour;
  grant.etime = 23 * kHour;
  purchaser.add(grant);

  // Before the window: both watch.
  EXPECT_TRUE(core::channel_accessible(*c, viewer, 20 * kHour));
  EXPECT_TRUE(core::channel_accessible(*c, purchaser, 20 * kHour));
  // During: only the purchaser.
  EXPECT_FALSE(core::channel_accessible(*c, viewer, 22 * kHour));
  EXPECT_TRUE(core::channel_accessible(*c, purchaser, 22 * kHour));
  // After: both again (and the grant has lapsed harmlessly).
  EXPECT_TRUE(core::channel_accessible(*c, viewer, 23 * kHour + kMinute));
  EXPECT_TRUE(core::channel_accessible(*c, purchaser, 23 * kHour + kMinute));
}

TEST_F(CpmTest, PpvOnUnknownChannelThrows) {
  EXPECT_THROW(cpm_->add_ppv_program(9, "x", 0, 1, 0), std::invalid_argument);
}

TEST_F(CpmTest, PpvPurchaseOutsideWindowDoesNotUnlock) {
  // A grant that expired before the program does not satisfy the window.
  cpm_->add_channel(make_channel(1, "100"), 0);
  cpm_->add_ppv_program(1, "ppv-42", 21 * kHour, 23 * kHour, 0);
  const core::ChannelRecord* c = cpm_->find_channel(1);

  core::AttributeSet stale;
  core::Attribute region;
  region.name = core::kAttrRegion;
  region.value = core::AttrValue::of("100");
  stale.add(region);
  core::Attribute old_grant;
  old_grant.name = core::kAttrSubscription;
  old_grant.value = core::AttrValue::of("ppv-42");
  old_grant.etime = 20 * kHour;  // lapsed before the event
  stale.add(old_grant);
  EXPECT_FALSE(core::channel_accessible(*c, stale, 22 * kHour));
}

TEST_F(CpmTest, ChannelListRequiresValidTicket) {
  cpm_->add_channel(make_channel(1, "100"), 0);
  core::ChannelListRequest req;
  req.user_ticket = util::bytes_of("garbage");
  EXPECT_EQ(cpm_->handle_channel_list(req, 0).error, DrmError::kBadTicket);

  core::SignedUserTicket forged = make_user_ticket(0);
  forged.body[5] ^= 1;
  req.user_ticket = forged.encode();
  EXPECT_EQ(cpm_->handle_channel_list(req, 0).error, DrmError::kBadTicket);

  req.user_ticket = make_user_ticket(0).encode();
  EXPECT_EQ(cpm_->handle_channel_list(req, 40 * kMinute).error,
            DrmError::kTicketExpired);
}

TEST_F(CpmTest, FullChannelListFetch) {
  cpm_->add_channel(make_channel(1, "100"), 0);
  cpm_->add_channel(make_channel(2, "101"), 0);
  core::ChannelListRequest req;
  req.user_ticket = make_user_ticket(0).encode();
  const core::ChannelListResponse resp = cpm_->handle_channel_list(req, kMinute);
  EXPECT_EQ(resp.error, DrmError::kOk);
  EXPECT_EQ(resp.channels.size(), 2u);
}

TEST_F(CpmTest, PartialFetchFiltersByAttributeName) {
  cpm_->add_channel(make_channel(1, "100"), 0);
  core::ChannelRecord sub_only;
  sub_only.id = 2;
  sub_only.name = "premium";
  core::Attribute s;
  s.name = core::kAttrSubscription;
  s.value = core::AttrValue::of("101");
  sub_only.attributes.add(s);
  cpm_->add_channel(sub_only, 0);

  core::ChannelListRequest req;
  req.user_ticket = make_user_ticket(0).encode();
  req.stale_attributes = {core::kAttrSubscription};
  const core::ChannelListResponse resp = cpm_->handle_channel_list(req, kMinute);
  ASSERT_EQ(resp.channels.size(), 1u);
  EXPECT_EQ(resp.channels[0].id, 2u);
}

TEST_F(CpmTest, PartitionInfoReturnedWithList) {
  cpm_->add_channel(make_channel(1, "100"), 0);
  core::PartitionInfo info;
  info.partition = 3;
  info.manager_addr = util::parse_netaddr("10.0.0.5");
  info.manager_public_key = um_keys_.pub.encode();
  cpm_->set_partition_info(info);

  core::ChannelListRequest req;
  req.user_ticket = make_user_ticket(0).encode();
  const core::ChannelListResponse resp = cpm_->handle_channel_list(req, kMinute);
  ASSERT_EQ(resp.partitions.size(), 1u);
  EXPECT_EQ(resp.partitions[0], info);
}

TEST_F(CpmTest, SetPartitionInfoReplacesSamePartition) {
  core::PartitionInfo a;
  a.partition = 1;
  a.manager_addr = util::parse_netaddr("10.0.0.1");
  cpm_->set_partition_info(a);
  core::PartitionInfo b = a;
  b.manager_addr = util::parse_netaddr("10.0.0.2");
  cpm_->set_partition_info(b);

  cpm_->add_channel(make_channel(1, "100"), 0);
  core::ChannelListRequest req;
  req.user_ticket = make_user_ticket(0).encode();
  const core::ChannelListResponse resp = cpm_->handle_channel_list(req, kMinute);
  ASSERT_EQ(resp.partitions.size(), 1u);
  EXPECT_EQ(resp.partitions[0].manager_addr, util::parse_netaddr("10.0.0.2"));
}

TEST_F(CpmTest, RemoveChannelAttribute) {
  cpm_->add_channel(make_channel(1, "100"), 0);
  EXPECT_EQ(cpm_->remove_channel_attribute(1, core::kAttrRegion, kHour), 1u);
  EXPECT_EQ(cpm_->find_channel(1)->attributes.size(), 0u);
  EXPECT_EQ(cpm_->remove_channel_attribute(1, core::kAttrRegion, kHour), 0u);
  EXPECT_EQ(cpm_->remove_channel_attribute(99, core::kAttrRegion, kHour), 0u);
}

TEST_F(CpmTest, SetPoliciesReplaces) {
  cpm_->add_channel(make_channel(1, "100"), 0);
  cpm_->set_policies(1, {}, kHour);
  EXPECT_TRUE(cpm_->find_channel(1)->policies.empty());
  EXPECT_THROW(cpm_->set_policies(99, {}, kHour), std::invalid_argument);
}

}  // namespace
}  // namespace p2pdrm::services
