#include <gtest/gtest.h>

#include "sim/latency.h"
#include "sim/macro_sim.h"
#include "sim/simulation.h"

namespace p2pdrm::sim {
namespace {

using util::kMillisecond;
using util::kMinute;
using util::kSecond;

TEST(SimulationTest, EventsRunInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule(30, [&] { order.push_back(3); });
  sim.schedule(10, [&] { order.push_back(1); });
  sim.schedule(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
  EXPECT_EQ(sim.executed(), 3u);
}

TEST(SimulationTest, SameTimeFifo) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule(100, [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulationTest, NestedScheduling) {
  Simulation sim;
  int fired = 0;
  sim.schedule(10, [&] {
    ++fired;
    sim.schedule(5, [&] { ++fired; });
  });
  sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 15);
}

TEST(SimulationTest, RunUntilStopsAtLimit) {
  Simulation sim;
  int fired = 0;
  sim.schedule(10, [&] { ++fired; });
  sim.schedule(100, [&] { ++fired; });
  sim.run_until(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 50);
  EXPECT_EQ(sim.pending(), 1u);
}

TEST(SimulationTest, RejectsPastScheduling) {
  Simulation sim;
  sim.schedule(10, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(5, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.schedule(-1, [] {}), std::invalid_argument);
}

TEST(SimulationTest, ClockViewTracksSimTime) {
  Simulation sim;
  const util::Clock& clock = sim.clock();
  util::SimTime seen = -1;
  sim.schedule(42, [&] { seen = clock.now(); });
  sim.run();
  EXPECT_EQ(seen, 42);
}

TEST(LatencyModelTest, SamplesRespectFloorAndCap) {
  LatencyModel model;
  model.floor = 50 * kMillisecond;
  model.cap = 2 * kSecond;
  crypto::SecureRandom rng(1);
  for (int i = 0; i < 2000; ++i) {
    const util::SimTime rtt = model.sample_rtt(rng);
    EXPECT_GE(rtt, model.floor);
    EXPECT_LE(rtt, model.cap);
  }
}

TEST(LatencyModelTest, MedianRoughlyAsConfigured) {
  LatencyModel model;
  model.floor = 0;
  model.median = 200 * kMillisecond;
  model.sigma = 0.5;
  crypto::SecureRandom rng(2);
  std::vector<util::SimTime> samples;
  for (int i = 0; i < 20001; ++i) samples.push_back(model.sample_rtt(rng));
  std::sort(samples.begin(), samples.end());
  const double median = static_cast<double>(samples[samples.size() / 2]);
  EXPECT_NEAR(median, 200 * kMillisecond, 20 * kMillisecond);
}

TEST(QueueStationTest, NoQueueingWhenIdle) {
  QueueStation station(2);
  EXPECT_EQ(station.submit(100, 10), 110);
  EXPECT_EQ(station.submit(200, 10), 210);
  EXPECT_EQ(station.processed(), 2u);
  EXPECT_EQ(station.busy_time(), 20);
}

TEST(QueueStationTest, ParallelServers) {
  QueueStation station(2);
  EXPECT_EQ(station.submit(0, 100), 100);
  EXPECT_EQ(station.submit(0, 100), 100);   // second server
  EXPECT_EQ(station.submit(0, 100), 200);   // queued behind the first free
}

TEST(QueueStationTest, FifoBacklog) {
  QueueStation station(1);
  EXPECT_EQ(station.submit(0, 50), 50);
  EXPECT_EQ(station.submit(10, 50), 100);
  EXPECT_EQ(station.submit(20, 50), 150);
}

TEST(QueueStationTest, UtilizationAccounting) {
  QueueStation station(2);
  station.submit(0, 100);
  station.submit(0, 100);
  EXPECT_DOUBLE_EQ(station.utilization(200), 0.5);
  EXPECT_DOUBLE_EQ(station.utilization(0), 0.0);
}

TEST(QueueStationTest, RejectsZeroServers) {
  EXPECT_THROW(QueueStation(0), std::invalid_argument);
}

TEST(QueueStationTest, SingleServerMatchesLindleyRecursion) {
  // Reference model: W(n+1) = max(0, W(n) + S(n) - A(n+1)+A(n)) — the exact
  // single-server FIFO waiting-time recursion.
  crypto::SecureRandom rng(99);
  QueueStation station(1);
  util::SimTime arrival = 0;
  util::SimTime prev_depart = 0;
  for (int i = 0; i < 2000; ++i) {
    arrival += static_cast<util::SimTime>(rng.uniform(100)) + 1;
    const util::SimTime service = static_cast<util::SimTime>(rng.uniform(80)) + 1;
    const util::SimTime expected_start = std::max(arrival, prev_depart);
    const util::SimTime depart = station.submit(arrival, service);
    ASSERT_EQ(depart, expected_start + service) << "job " << i;
    prev_depart = depart;
  }
}

TEST(QueueStationTest, MultiServerNeverBeatsMoreServers) {
  // Monotonicity: for the identical arrival/service sequence, a larger farm
  // never produces a later departure for any job.
  for (int trial = 0; trial < 3; ++trial) {
    crypto::SecureRandom rng(200 + trial);
    std::vector<std::pair<util::SimTime, util::SimTime>> jobs;
    util::SimTime t = 0;
    for (int i = 0; i < 500; ++i) {
      t += static_cast<util::SimTime>(rng.uniform(20)) + 1;
      jobs.push_back({t, static_cast<util::SimTime>(rng.uniform(100)) + 1});
    }
    QueueStation two(2), four(4);
    for (const auto& [arrival, service] : jobs) {
      const util::SimTime d2 = two.submit(arrival, service);
      const util::SimTime d4 = four.submit(arrival, service);
      ASSERT_LE(d4, d2);
    }
  }
}

// --- macro sim (scaled down so it runs in test time) ---

MacroSimConfig small_config() {
  MacroSimConfig cfg;
  cfg.days = 2;
  cfg.peak_concurrent = 300;
  cfg.seed = 7;
  cfg.reservoir_per_hour = 500;
  cfg.reservoir_cdf = 20000;
  return cfg;
}

TEST(MacroSimTest, ProducesSamplesForAllRounds) {
  const MacroSimResult result = run_macro_sim(small_config());
  EXPECT_GT(result.sessions, 1000u);
  for (std::size_t r = 0; r < kNumRounds; ++r) {
    EXPECT_GT(result.rounds[r].count, 0u) << to_string(static_cast<ProtocolRound>(r));
  }
  EXPECT_GT(result.ct_renewals, 0u);
  EXPECT_GT(result.ut_renewals, 0u);
}

TEST(MacroSimTest, DiurnalConcurrencyShape) {
  const MacroSimResult result = run_macro_sim(small_config());
  ASSERT_EQ(result.hourly_concurrency.size(), 48u);
  // Evening peak well above pre-dawn trough on both days.
  const double peak = std::max(result.hourly_concurrency[20], result.hourly_concurrency[44]);
  const double trough = std::min(result.hourly_concurrency[4], result.hourly_concurrency[28]);
  EXPECT_GT(peak, 3 * trough);
  EXPECT_NEAR(result.peak_observed_concurrency, 300, 150);
}

TEST(MacroSimTest, DeterministicForSeed) {
  const MacroSimResult a = run_macro_sim(small_config());
  const MacroSimResult b = run_macro_sim(small_config());
  EXPECT_EQ(a.sessions, b.sessions);
  EXPECT_EQ(a.rounds[0].count, b.rounds[0].count);
  EXPECT_EQ(a.round(ProtocolRound::kJoin).peak.samples(),
            b.round(ProtocolRound::kJoin).peak.samples());
}

TEST(MacroSimTest, LatencyUncorrelatedWithLoadWhenProvisioned) {
  // The paper's headline: manager latency is flat across the diurnal swing.
  const MacroSimResult result = run_macro_sim(small_config());
  const std::vector<double> medians =
      result.round(ProtocolRound::kLogin2).hourly_median();
  const auto r = analysis::pearson(medians, result.hourly_concurrency);
  ASSERT_TRUE(r.has_value());
  EXPECT_LT(std::abs(*r), 0.3);
  EXPECT_LT(result.um_utilization, 0.5);
  EXPECT_LT(result.cm_utilization, 0.5);
}

TEST(MacroSimTest, RenewalAccountingMatchesLittleLaw) {
  // Renewal volume is mechanical: a session of duration D holding a ticket
  // of lifetime T renews about D/T times. Aggregate CT renewals should be
  // within a factor-ish of (total watch time / ct lifetime).
  MacroSimConfig cfg = small_config();
  const MacroSimResult r = run_macro_sim(cfg);
  double total_watch_hours = 0;
  for (double c : r.hourly_concurrency) total_watch_hours += c;
  const double expected_ct_renewals =
      total_watch_hours * util::kHour / static_cast<double>(cfg.channel_ticket_lifetime);
  EXPECT_GT(static_cast<double>(r.ct_renewals), 0.4 * expected_ct_renewals);
  EXPECT_LT(static_cast<double>(r.ct_renewals), 1.3 * expected_ct_renewals);

  const double expected_ut_renewals =
      total_watch_hours * util::kHour / static_cast<double>(cfg.user_ticket_lifetime);
  EXPECT_GT(static_cast<double>(r.ut_renewals), 0.3 * expected_ut_renewals);
  EXPECT_LT(static_cast<double>(r.ut_renewals), 1.5 * expected_ut_renewals);
}

TEST(MacroSimTest, RoundCountsConsistent) {
  const MacroSimResult r = run_macro_sim(small_config());
  // Every SWITCH1 pairs with a SWITCH2 and every LOGIN1 with a LOGIN2, up
  // to the handful of rounds still in flight when the horizon cuts off.
  const auto near = [](std::uint64_t a, std::uint64_t b) {
    return (a > b ? a - b : b - a) <= 10;
  };
  EXPECT_TRUE(near(r.round(ProtocolRound::kSwitch1).count,
                   r.round(ProtocolRound::kSwitch2).count));
  EXPECT_TRUE(near(r.round(ProtocolRound::kLogin1).count,
                   r.round(ProtocolRound::kLogin2).count));
  // JOINs = initial joins (one per session reaching the overlay) + channel
  // switches; renewals go through SWITCH rounds but never re-join.
  EXPECT_GT(r.round(ProtocolRound::kJoin).count, r.channel_switches);
  EXPECT_LE(r.round(ProtocolRound::kJoin).count, r.sessions + r.channel_switches);
  EXPECT_GE(r.round(ProtocolRound::kSwitch2).count, r.round(ProtocolRound::kJoin).count);
}

TEST(MacroSimTest, Login2SlowerThanLogin1) {
  const MacroSimResult result = run_macro_sim(small_config());
  EXPECT_GT(result.round(ProtocolRound::kLogin2).peak.median(),
            result.round(ProtocolRound::kLogin1).peak.median());
}

TEST(MacroSimTest, FlashCrowdInflatesSessions) {
  MacroSimConfig with = small_config();
  workload::FlashCrowd crowd;
  crowd.start = 20 * util::kHour;
  crowd.extra_sessions = 2000;
  crowd.ramp = 2 * kMinute;
  with.flash_crowds.push_back(crowd);
  const MacroSimResult base = run_macro_sim(small_config());
  const MacroSimResult crowded = run_macro_sim(with);
  EXPECT_GE(crowded.sessions, base.sessions + 1900);
}

TEST(MacroSimTest, JoinRetriesScaleWithLoadSensitivity) {
  MacroSimConfig calm = small_config();
  calm.join_base_reject = 0.0;
  calm.join_load_sensitivity = 0.0;
  MacroSimConfig congested = small_config();
  congested.join_base_reject = 0.3;
  congested.join_load_sensitivity = 0.3;
  EXPECT_EQ(run_macro_sim(calm).join_retries, 0u);
  EXPECT_GT(run_macro_sim(congested).join_retries, 1000u);
}

TEST(MacroSimTest, RegistryHistogramsAgreeWithReservoirs) {
  // The registry's bucketed histograms are the reservoirs' replacement for
  // the Fig. 5/6 benches: same latencies, different estimator. Quantiles
  // must agree within the combined error budget — 1/16 relative from the
  // bucket midpoint plus reservoir sampling noise.
  const MacroSimResult result = run_macro_sim(small_config());
  ASSERT_NE(result.registry, nullptr);
  for (std::size_t ri = 0; ri < kNumRounds; ++ri) {
    const auto r = static_cast<ProtocolRound>(ri);
    const RoundTrace& trace = result.rounds[ri];

    const obs::LatencyHistogram* all =
        result.registry->find_histogram(round_histogram_name(r));
    const obs::LatencyHistogram* peak =
        result.registry->find_histogram(split_histogram_name(r, true));
    const obs::LatencyHistogram* offpeak =
        result.registry->find_histogram(split_histogram_name(r, false));
    ASSERT_NE(all, nullptr) << to_string(r);
    ASSERT_NE(peak, nullptr) << to_string(r);
    ASSERT_NE(offpeak, nullptr) << to_string(r);

    // The histograms saw every recorded round, unsampled.
    EXPECT_EQ(all->count(), trace.count) << to_string(r);
    EXPECT_EQ(peak->count() + offpeak->count(), trace.count) << to_string(r);
    EXPECT_GE(peak->count(), trace.peak.seen()) << to_string(r);

    for (const double q : {0.5, 0.9}) {
      const double res_s = trace.peak.quantile(q);           // seconds
      const double hist_s = peak->quantile(q) * 1e-6;        // us -> s
      EXPECT_NEAR(hist_s, res_s, res_s * 0.15 + 0.001)
          << to_string(r) << " q=" << q;
    }

    // Spot-check an evening-peak hour of the per-hour series too.
    const std::size_t hour = 20;
    ASSERT_LT(hour, trace.hourly.size());
    const obs::LatencyHistogram* hourly =
        result.registry->find_histogram(hourly_histogram_name(r, hour));
    ASSERT_NE(hourly, nullptr) << to_string(r);
    if (!trace.hourly[hour].empty()) {
      const double res_s = trace.hourly[hour].median();
      EXPECT_NEAR(hourly->p50() * 1e-6, res_s, res_s * 0.15 + 0.001)
          << to_string(r);
    }
  }
}

TEST(MacroSimTest, UndersizedFarmSaturates) {
  // Ablation sanity: strip the farm down and crank the crypto cost; now
  // latency *does* track load (what the paper's design avoids).
  MacroSimConfig starved = small_config();
  starved.user_manager_servers = 1;
  starved.costs.login2 = 3 * kSecond;  // one grossly underpowered server
  const MacroSimResult result = run_macro_sim(starved);
  // Mean utilization over the whole horizon is diluted by the off-peak
  // trough; the saturation shows up at peak hours (and in the correlation).
  EXPECT_GT(result.um_utilization, 0.2);
  const auto r = analysis::pearson(
      result.round(ProtocolRound::kLogin2).hourly_median(), result.hourly_concurrency);
  ASSERT_TRUE(r.has_value());
  EXPECT_GT(*r, 0.4);
}

}  // namespace
}  // namespace p2pdrm::sim
