#include <gtest/gtest.h>

#include <algorithm>

#include "p2p/peer.h"
#include "p2p/tracker.h"

namespace p2pdrm::p2p {
namespace {

using core::DrmError;
using util::kMinute;

class PeerTest : public ::testing::Test {
 protected:
  PeerTest() : rng_(600) {
    cm_keys_ = crypto::generate_rsa_keypair(rng_, 512);
  }

  Peer make_peer(util::NodeId node, util::ChannelId channel = 1,
                 std::size_t capacity = 4) {
    PeerConfig cfg;
    cfg.node = node;
    cfg.addr = util::NetAddr{0x0a000000u + node};
    cfg.channel = channel;
    cfg.capacity = capacity;
    return Peer(cfg, crypto::generate_rsa_keypair(rng_, 512), cm_keys_.pub, rng_.fork());
  }

  core::SignedChannelTicket make_ticket(const Peer& for_peer, util::ChannelId channel = 1,
                                        util::SimTime expiry = 10 * kMinute,
                                        bool renewal = false) {
    core::ChannelTicket t;
    t.user_in = 100 + for_peer.config().node;
    t.channel_id = channel;
    t.client_public_key = for_peer.public_key();
    t.net_addr = for_peer.config().addr;
    t.renewal = renewal;
    t.start_time = 0;
    t.expiry_time = expiry;
    return core::SignedChannelTicket::sign(t, cm_keys_.priv);
  }

  /// Join `child` to `parent`; returns the join response.
  core::JoinResponse join(Peer& parent, Peer& child, util::SimTime now = 0) {
    const core::SignedChannelTicket ticket = make_ticket(child);
    const core::JoinRequest req = child.make_join_request(ticket);
    core::JoinResponse resp =
        parent.handle_join(req, child.config().addr, child.config().node, now);
    if (resp.error == DrmError::kOk) {
      EXPECT_TRUE(child.complete_join(parent.config().node, resp));
    }
    return resp;
  }

  crypto::SecureRandom rng_;
  crypto::RsaKeyPair cm_keys_;
};

TEST_F(PeerTest, JoinEstablishesSessionAndDeliversKey) {
  Peer root = make_peer(1);
  Peer child = make_peer(2);
  crypto::SecureRandom krng(1);
  const core::ContentKey key = core::generate_content_key(krng, 0, 0);
  root.install_key(key);

  const core::JoinResponse resp = join(root, child);
  ASSERT_EQ(resp.error, DrmError::kOk);
  EXPECT_EQ(root.child_count(), 1u);
  EXPECT_EQ(child.parents().size(), 1u);
  EXPECT_TRUE(child.knows_serial(0));

  // The child can now decrypt content encrypted under that key.
  const core::ContentPacket packet =
      core::encrypt_packet(key, 1, 7, util::bytes_of("frame"));
  EXPECT_EQ(child.decrypt(packet), util::bytes_of("frame"));
}

TEST_F(PeerTest, JoinWithoutInstalledKeyStillWorks) {
  Peer root = make_peer(1);
  Peer child = make_peer(2);
  const core::JoinResponse resp = join(root, child);
  ASSERT_EQ(resp.error, DrmError::kOk);
  EXPECT_TRUE(resp.encrypted_content_key.empty());
  EXPECT_EQ(child.known_key_count(), 0u);
}

TEST_F(PeerTest, ForgedTicketRejected) {
  Peer root = make_peer(1);
  Peer child = make_peer(2);
  core::SignedChannelTicket ticket = make_ticket(child);
  ticket.body[4] ^= 1;
  const core::JoinResponse resp = root.handle_join(
      child.make_join_request(ticket), child.config().addr, child.config().node, 0);
  EXPECT_EQ(resp.error, DrmError::kBadTicket);
}

TEST_F(PeerTest, ExpiredTicketRejected) {
  Peer root = make_peer(1);
  Peer child = make_peer(2);
  const core::SignedChannelTicket ticket = make_ticket(child, 1, 5 * kMinute);
  const core::JoinResponse resp = root.handle_join(
      child.make_join_request(ticket), child.config().addr, child.config().node,
      6 * kMinute);
  EXPECT_EQ(resp.error, DrmError::kTicketExpired);
}

TEST_F(PeerTest, AddressMismatchRejected) {
  // A stolen ticket presented from a different address is useless (§IV-G1).
  Peer root = make_peer(1);
  Peer child = make_peer(2);
  const core::SignedChannelTicket ticket = make_ticket(child);
  const core::JoinResponse resp =
      root.handle_join(child.make_join_request(ticket),
                       util::NetAddr{0x0afffffe}, child.config().node, 0);
  EXPECT_EQ(resp.error, DrmError::kAddressMismatch);
}

TEST_F(PeerTest, WrongChannelRejected) {
  Peer root = make_peer(1, /*channel=*/1);
  Peer child = make_peer(2, /*channel=*/2);
  const core::SignedChannelTicket ticket = make_ticket(child, /*channel=*/2);
  const core::JoinResponse resp = root.handle_join(
      child.make_join_request(ticket), child.config().addr, child.config().node, 0);
  EXPECT_EQ(resp.error, DrmError::kWrongChannel);
}

TEST_F(PeerTest, CapacityEnforced) {
  Peer root = make_peer(1, 1, /*capacity=*/2);
  Peer c1 = make_peer(2), c2 = make_peer(3), c3 = make_peer(4);
  EXPECT_EQ(join(root, c1).error, DrmError::kOk);
  EXPECT_EQ(join(root, c2).error, DrmError::kOk);
  EXPECT_EQ(join(root, c3).error, DrmError::kNoCapacity);
  EXPECT_FALSE(root.has_spare_capacity());
  root.drop_child(c1.config().node);
  EXPECT_EQ(join(root, c3).error, DrmError::kOk);
}

TEST_F(PeerTest, StolenTicketUselessWithoutPrivateKey) {
  // An attacker who captured a victim's Channel Ticket and spoofs the
  // victim's address still cannot decrypt the session key (§IV-G1).
  Peer root = make_peer(1);
  Peer victim = make_peer(2);
  crypto::SecureRandom krng(2);
  root.install_key(core::generate_content_key(krng, 0, 0));

  const core::SignedChannelTicket stolen = make_ticket(victim);
  Peer attacker = make_peer(3);  // different key pair
  const core::JoinResponse resp =
      root.handle_join(attacker.make_join_request(stolen), victim.config().addr,
                       victim.config().node, 0);
  // The peer cannot tell; it accepts and sends the session key encrypted
  // with the *victim's* public key...
  ASSERT_EQ(resp.error, DrmError::kOk);
  // ...which the attacker cannot decrypt.
  EXPECT_FALSE(attacker.complete_join(root.config().node, resp));
  EXPECT_EQ(attacker.known_key_count(), 0u);
}

TEST_F(PeerTest, KeyRelayThroughTree) {
  // root -> b -> {d, e}: pair-wise re-encryption at each hop (§IV-E).
  Peer root = make_peer(1);
  Peer b = make_peer(2);
  Peer d = make_peer(3);
  Peer e = make_peer(4);
  ASSERT_EQ(join(root, b).error, DrmError::kOk);
  ASSERT_EQ(join(b, d).error, DrmError::kOk);
  ASSERT_EQ(join(b, e).error, DrmError::kOk);

  crypto::SecureRandom krng(3);
  const core::ContentKey key = core::generate_content_key(krng, 5, 100);
  std::vector<Outgoing> to_b = root.announce_key(key);
  ASSERT_EQ(to_b.size(), 1u);
  EXPECT_EQ(to_b[0].to, b.config().node);

  std::vector<Outgoing> to_de = b.handle_key_blob(root.config().node, to_b[0].payload);
  ASSERT_EQ(to_de.size(), 2u);
  EXPECT_TRUE(b.knows_serial(5));
  // Blobs for d and e are encrypted under *different* session keys.
  EXPECT_NE(to_de[0].payload, to_de[1].payload);

  for (const Outgoing& o : to_de) {
    Peer& target = (o.to == d.config().node) ? d : e;
    EXPECT_TRUE(target.handle_key_blob(b.config().node, o.payload).empty());
    EXPECT_TRUE(target.knows_serial(5));
  }
}

TEST_F(PeerTest, DuplicateKeySerialDiscarded) {
  // Multi-parent delivery: the same key arriving twice propagates once.
  Peer p1 = make_peer(1);
  Peer p2 = make_peer(2);
  Peer child = make_peer(3);
  ASSERT_EQ(join(p1, child).error, DrmError::kOk);
  ASSERT_EQ(join(p2, child).error, DrmError::kOk);
  EXPECT_EQ(child.parents().size(), 2u);

  crypto::SecureRandom krng(4);
  const core::ContentKey key = core::generate_content_key(krng, 9, 0);
  const std::vector<Outgoing> from_p1 = p1.announce_key(key);
  const std::vector<Outgoing> from_p2 = p2.announce_key(key);
  ASSERT_EQ(from_p1.size(), 1u);
  ASSERT_EQ(from_p2.size(), 1u);

  (void)child.handle_key_blob(p1.config().node, from_p1[0].payload);
  EXPECT_TRUE(child.knows_serial(9));
  const std::size_t keys_before = child.known_key_count();
  // Second copy from the other parent: discarded, not re-forwarded.
  EXPECT_TRUE(child.handle_key_blob(p2.config().node, from_p2[0].payload).empty());
  EXPECT_EQ(child.known_key_count(), keys_before);
}

TEST_F(PeerTest, KeyBlobFromStrangerIgnored) {
  Peer child = make_peer(1);
  crypto::SecureRandom krng(5);
  const core::ContentKey key = core::generate_content_key(krng, 1, 0);
  const core::SessionKey session = core::generate_session_key(krng);
  const util::Bytes blob = core::wrap_content_key(key, session, 0);
  EXPECT_TRUE(child.handle_key_blob(999, blob).empty());
  EXPECT_FALSE(child.knows_serial(1));
}

TEST_F(PeerTest, EvictionOnTicketExpiry) {
  Peer root = make_peer(1);
  Peer child = make_peer(2);
  const core::SignedChannelTicket ticket = make_ticket(child, 1, 10 * kMinute);
  ASSERT_EQ(root.handle_join(child.make_join_request(ticket), child.config().addr,
                             child.config().node, 0)
                .error,
            DrmError::kOk);
  EXPECT_TRUE(root.evict_expired(9 * kMinute).empty());
  const std::vector<util::NodeId> evicted = root.evict_expired(10 * kMinute + 1);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], child.config().node);
  EXPECT_EQ(root.child_count(), 0u);
}

TEST_F(PeerTest, RenewalExtendsPeering) {
  Peer root = make_peer(1);
  Peer child = make_peer(2);
  ASSERT_EQ(join(root, child).error, DrmError::kOk);

  const core::SignedChannelTicket renewed =
      make_ticket(child, 1, 20 * kMinute, /*renewal=*/true);
  EXPECT_TRUE(root.present_renewal(child.config().node, renewed.encode(), 9 * kMinute));
  EXPECT_TRUE(root.evict_expired(15 * kMinute).empty());
  EXPECT_EQ(root.evict_expired(21 * kMinute).size(), 1u);
}

TEST_F(PeerTest, RenewalWithoutRenewalBitRejected) {
  Peer root = make_peer(1);
  Peer child = make_peer(2);
  ASSERT_EQ(join(root, child).error, DrmError::kOk);
  const core::SignedChannelTicket not_renewal =
      make_ticket(child, 1, 20 * kMinute, /*renewal=*/false);
  EXPECT_FALSE(root.present_renewal(child.config().node, not_renewal.encode(), 9 * kMinute));
}

TEST_F(PeerTest, RenewalForWrongUserRejected) {
  Peer root = make_peer(1);
  Peer child = make_peer(2);
  Peer other = make_peer(3);
  ASSERT_EQ(join(root, child).error, DrmError::kOk);
  // A renewal ticket belonging to a different user/address.
  const core::SignedChannelTicket foreign =
      make_ticket(other, 1, 20 * kMinute, /*renewal=*/true);
  EXPECT_FALSE(root.present_renewal(child.config().node, foreign.encode(), 9 * kMinute));
}

TEST_F(PeerTest, RenewalForUnknownChildRejected) {
  Peer root = make_peer(1);
  Peer child = make_peer(2);
  const core::SignedChannelTicket renewed = make_ticket(child, 1, 20 * kMinute, true);
  EXPECT_FALSE(root.present_renewal(child.config().node, renewed.encode(), 0));
}

TEST_F(PeerTest, DropParentStopsAcceptingItsKeys) {
  Peer parent = make_peer(1);
  Peer child = make_peer(2);
  ASSERT_EQ(join(parent, child).error, DrmError::kOk);
  child.drop_parent(parent.config().node);
  EXPECT_TRUE(child.parents().empty());

  crypto::SecureRandom krng(11);
  const core::ContentKey key = core::generate_content_key(krng, 2, 0);
  const auto blobs = parent.announce_key(key);
  ASSERT_EQ(blobs.size(), 1u);
  // The severed link's blobs are ignored (no session to decrypt them under).
  EXPECT_TRUE(child.handle_key_blob(parent.config().node, blobs[0].payload).empty());
  EXPECT_FALSE(child.knows_serial(2));
}

TEST_F(PeerTest, RejoinAfterEvictionWorks) {
  Peer root = make_peer(1);
  Peer child = make_peer(2);
  const core::SignedChannelTicket short_ticket = make_ticket(child, 1, 5 * kMinute);
  ASSERT_EQ(root.handle_join(child.make_join_request(short_ticket),
                             child.config().addr, child.config().node, 0)
                .error,
            DrmError::kOk);
  ASSERT_EQ(root.evict_expired(6 * kMinute).size(), 1u);

  // Fresh ticket, fresh join: a new session key is minted for the new link.
  const core::SignedChannelTicket fresh = make_ticket(child, 1, 20 * kMinute);
  const core::JoinResponse resp = root.handle_join(
      child.make_join_request(fresh), child.config().addr, child.config().node,
      6 * kMinute);
  ASSERT_EQ(resp.error, DrmError::kOk);
  EXPECT_TRUE(child.complete_join(root.config().node, resp));
  EXPECT_EQ(root.child_count(), 1u);
}

TEST_F(PeerTest, RejoinBySameNodeDoesNotConsumeExtraCapacity) {
  Peer root = make_peer(1, 1, /*capacity=*/1);
  Peer child = make_peer(2);
  ASSERT_EQ(join(root, child).error, DrmError::kOk);
  // Re-join (e.g. after a client restart) replaces the existing link even
  // at full capacity, rather than leaking a slot.
  const core::SignedChannelTicket ticket = make_ticket(child);
  const core::JoinResponse resp = root.handle_join(
      child.make_join_request(ticket), child.config().addr, child.config().node, 0);
  EXPECT_EQ(resp.error, DrmError::kOk);
  EXPECT_EQ(root.child_count(), 1u);
}

TEST_F(PeerTest, KeyRingEvictsOldSerials) {
  Peer peer = make_peer(1);
  crypto::SecureRandom krng(12);
  for (int i = 0; i < 12; ++i) {
    peer.install_key(core::generate_content_key(
        krng, static_cast<std::uint8_t>(i), i * 60));
  }
  EXPECT_EQ(peer.known_key_count(), 8u);  // ring bound
  EXPECT_FALSE(peer.knows_serial(0));
  EXPECT_FALSE(peer.knows_serial(3));
  EXPECT_TRUE(peer.knows_serial(4));
  EXPECT_TRUE(peer.knows_serial(11));
}

// --- Tracker ---

TEST(TrackerTest, RegisterAndSample) {
  crypto::SecureRandom rng(1);
  Tracker tracker(std::move(rng));
  tracker.register_peer(1, {10, util::NetAddr{0x0a00000a}}, 4);
  tracker.register_peer(1, {11, util::NetAddr{0x0a00000b}}, 4);
  EXPECT_EQ(tracker.peer_count(1), 2u);

  const auto peers = tracker.sample_peers(1, 8, util::NetAddr{0x0afffffe});
  EXPECT_EQ(peers.size(), 2u);
}

TEST(TrackerTest, RequesterExcluded) {
  crypto::SecureRandom rng(2);
  Tracker tracker(std::move(rng));
  tracker.register_peer(1, {10, util::NetAddr{0x0a00000a}}, 4);
  const auto peers = tracker.sample_peers(1, 8, util::NetAddr{0x0a00000a});
  EXPECT_TRUE(peers.empty());
}

TEST(TrackerTest, SparePreferredOverLoaded) {
  crypto::SecureRandom rng(3);
  Tracker tracker(std::move(rng));
  tracker.register_peer(1, {10, util::NetAddr{0x0a00000a}}, 2);
  tracker.register_peer(1, {11, util::NetAddr{0x0a00000b}}, 2);
  tracker.update_load(1, 10, 2);  // full

  const auto peers = tracker.sample_peers(1, 1, util::NetAddr{0x0afffffe});
  ASSERT_EQ(peers.size(), 1u);
  EXPECT_EQ(peers[0].node, 11u);
  // Loaded peers still returned when the sample size demands it.
  const auto both = tracker.sample_peers(1, 2, util::NetAddr{0x0afffffe});
  EXPECT_EQ(both.size(), 2u);
}

TEST(TrackerTest, UnregisterRemoves) {
  crypto::SecureRandom rng(4);
  Tracker tracker(std::move(rng));
  tracker.register_peer(1, {10, util::NetAddr{0x0a00000a}}, 4);
  tracker.unregister_peer(1, 10);
  EXPECT_EQ(tracker.peer_count(1), 0u);
  EXPECT_TRUE(tracker.sample_peers(1, 4, util::NetAddr{}).empty());
  tracker.unregister_peer(2, 99);  // unknown channel: no-op
}

TEST(TrackerTest, Utilization) {
  crypto::SecureRandom rng(5);
  Tracker tracker(std::move(rng));
  EXPECT_DOUBLE_EQ(tracker.utilization(1), 0.0);
  tracker.register_peer(1, {10, util::NetAddr{0x0a00000a}}, 4);
  tracker.register_peer(1, {11, util::NetAddr{0x0a00000b}}, 4);
  tracker.update_load(1, 10, 2);
  EXPECT_DOUBLE_EQ(tracker.utilization(1), 0.25);
  tracker.update_load(1, 10, 100);  // clamped to capacity
  EXPECT_DOUBLE_EQ(tracker.utilization(1), 0.5);
}

TEST(TrackerTest, SampleHonoursMaxPeers) {
  crypto::SecureRandom rng(6);
  Tracker tracker(std::move(rng));
  for (util::NodeId n = 0; n < 20; ++n) {
    tracker.register_peer(1, {n, util::NetAddr{0x0a000000u + n}}, 4);
  }
  EXPECT_EQ(tracker.sample_peers(1, 5, util::NetAddr{0x0afffffe}).size(), 5u);
}

TEST(TrackerTest, UnknownChannelEmpty) {
  crypto::SecureRandom rng(7);
  Tracker tracker(std::move(rng));
  EXPECT_TRUE(tracker.sample_peers(42, 4, util::NetAddr{}).empty());
  EXPECT_EQ(tracker.peer_count(42), 0u);
}

TEST(TrackerTest, EvictStaleDropsSilentPeers) {
  crypto::SecureRandom rng(8);
  Tracker tracker(std::move(rng));
  tracker.register_peer(1, {10, util::NetAddr{0x0a00000a}}, 4, 0);
  tracker.register_peer(1, {11, util::NetAddr{0x0a00000b}}, 4, 0);
  tracker.register_peer(2, {12, util::NetAddr{0x0a00000c}}, 4, 0);

  // Peer 10 keeps checking in; 11 and 12 go silent (an ungraceful crash is
  // just silence from the tracker's point of view).
  tracker.update_load(1, 10, 1, 5 * kMinute);
  EXPECT_EQ(tracker.evict_stale(2 * kMinute), 2u);
  EXPECT_EQ(tracker.peer_count(1), 1u);
  EXPECT_EQ(tracker.peer_count(2), 0u);  // emptied channel removed entirely

  const auto peers = tracker.sample_peers(1, 8, util::NetAddr{});
  ASSERT_EQ(peers.size(), 1u);
  EXPECT_EQ(peers[0].node, 10u);
}

TEST(TrackerTest, KeepAliveNeverMovesTimeBackwards) {
  crypto::SecureRandom rng(9);
  Tracker tracker(std::move(rng));
  tracker.register_peer(1, {10, util::NetAddr{0x0a00000a}}, 4, 10 * kMinute);
  // A stale (reordered) load report must not rewind the liveness stamp.
  tracker.update_load(1, 10, 2, 1 * kMinute);
  EXPECT_EQ(tracker.evict_stale(5 * kMinute), 0u);
  EXPECT_EQ(tracker.peer_count(1), 1u);
}

TEST(TrackerTest, ChurnStormSamplingConsistency) {
  // Mass ungraceful departure: half the overlay dies silently mid-run.
  // After eviction, sampling never returns a departed peer and the
  // utilization stays a sane fraction of the surviving capacity.
  crypto::SecureRandom rng(10);
  Tracker tracker(std::move(rng));
  for (util::NodeId n = 0; n < 40; ++n) {
    tracker.register_peer(1, {n, util::NetAddr{0x0a000000u + n}}, 4, 0);
    tracker.update_load(1, n, n % 5, 0);  // some full (4/4), some spare
  }
  // Even nodes stay alive and keep checking in; odd nodes crash at t=0.
  for (util::NodeId n = 0; n < 40; n += 2) {
    tracker.update_load(1, n, n % 5, 10 * kMinute);
  }
  EXPECT_EQ(tracker.evict_stale(5 * kMinute), 20u);
  EXPECT_EQ(tracker.peer_count(1), 20u);

  for (int trial = 0; trial < 50; ++trial) {
    for (const core::PeerInfo& peer : tracker.sample_peers(1, 8, util::NetAddr{})) {
      EXPECT_EQ(peer.node % 2, 0u) << "sampled a crashed peer";
    }
  }
  // Surviving load: nodes 0,2,..,38 with children (n % 5) clamped to 4.
  std::size_t used = 0;
  for (util::NodeId n = 0; n < 40; n += 2) used += std::min<std::size_t>(n % 5, 4);
  const double expected = static_cast<double>(used) / (20.0 * 4.0);
  EXPECT_DOUBLE_EQ(tracker.utilization(1), expected);
}

// --- Tracker admission limits (the Sybil-flood defense) ---

TEST(TrackerTest, PerSourceRateLimitThrottlesSybilFlood) {
  crypto::SecureRandom rng(11);
  Tracker tracker(std::move(rng));
  Tracker::Limits limits;
  limits.registration_burst = 3;
  limits.registration_window = kMinute;
  tracker.set_limits(limits);

  // One source address mints many bogus identities inside one window.
  const util::NetAddr sybil{0x0bad0001};
  std::size_t accepted = 0;
  for (util::NodeId n = 1000; n < 1020; ++n) {
    if (tracker.register_peer(1, {n, sybil}, 4, 10)) ++accepted;
  }
  EXPECT_EQ(accepted, 3u);
  EXPECT_EQ(tracker.peer_count(1), 3u);
  EXPECT_EQ(tracker.rejected_rate(), 17u);

  // Honest peers at distinct addresses are untouched by the flood.
  EXPECT_TRUE(tracker.register_peer(1, {10, util::NetAddr{0x0a00000a}}, 4, 10));
  EXPECT_TRUE(tracker.register_peer(1, {11, util::NetAddr{0x0a00000b}}, 4, 10));

  // Keep-alives of admitted peers are never rate limited.
  EXPECT_TRUE(tracker.register_peer(1, {1000, sybil}, 4, 20));

  // A new window admits a fresh burst.
  EXPECT_TRUE(tracker.register_peer(1, {2000, sybil}, 4, 10 + kMinute));
}

TEST(TrackerTest, PerChannelCapBoundsPeerTable) {
  crypto::SecureRandom rng(12);
  Tracker tracker(std::move(rng));
  Tracker::Limits limits;
  limits.max_peers_per_channel = 5;
  tracker.set_limits(limits);

  std::size_t accepted = 0;
  for (util::NodeId n = 0; n < 50; ++n) {
    if (tracker.register_peer(1, {n, util::NetAddr{0x0a000000u + n}}, 4, 0)) {
      ++accepted;
    }
  }
  EXPECT_EQ(accepted, 5u);
  EXPECT_EQ(tracker.peer_count(1), 5u);
  EXPECT_EQ(tracker.rejected_capacity(), 45u);

  // Known peers still refresh, and eviction frees capacity for newcomers.
  EXPECT_TRUE(tracker.register_peer(1, {0, util::NetAddr{0x0a000000u}}, 4, 0));
  tracker.unregister_peer(1, 0);
  EXPECT_TRUE(tracker.register_peer(1, {60, util::NetAddr{0x0a00003cu}}, 4, 0));
}

TEST(TrackerTest, LimitsDefaultOffKeepsLegacyBehaviour) {
  crypto::SecureRandom rng(13);
  Tracker tracker(std::move(rng));
  for (util::NodeId n = 0; n < 100; ++n) {
    EXPECT_TRUE(tracker.register_peer(1, {n, util::NetAddr{0x0bad0001}}, 4, 0));
  }
  EXPECT_EQ(tracker.peer_count(1), 100u);
  EXPECT_EQ(tracker.rejected_rate(), 0u);
  EXPECT_EQ(tracker.rejected_capacity(), 0u);
}

TEST(TrackerTest, StaleSweepAgesOutSourceWindows) {
  // The rate-limit bookkeeping itself must not become the unbounded table:
  // windows older than the sweep cutoff are pruned, and afterwards the
  // source can register again.
  crypto::SecureRandom rng(14);
  Tracker tracker(std::move(rng));
  Tracker::Limits limits;
  limits.registration_burst = 1;
  limits.registration_window = kMinute;
  tracker.set_limits(limits);

  const util::NetAddr source{0x0bad0002};
  EXPECT_TRUE(tracker.register_peer(1, {1, source}, 4, 0));
  EXPECT_FALSE(tracker.register_peer(1, {2, source}, 4, 10));
  tracker.evict_stale(5 * kMinute);  // prunes the source window too
  EXPECT_TRUE(tracker.register_peer(1, {3, source}, 4, 6 * kMinute));
}

}  // namespace
}  // namespace p2pdrm::p2p
