// Overload protection: the bounded server queue with priority admission
// control (ServiceQueue), the client-side retry budget (TokenBucket) and
// per-destination CircuitBreaker, and the end-to-end behavior of a deployed
// farm at saturation — fresh logins are shed with BUSY while renewals and
// SWITCH rounds keep completing, and shedding is never silent.
#include <gtest/gtest.h>

#include "net/deployment.h"
#include "net/overload.h"

namespace p2pdrm::net {
namespace {

using core::DrmError;
using util::kMillisecond;
using util::kMinute;
using util::kSecond;
using util::SimTime;

// ---------------------------------------------------------------- ServiceQueue

TEST(ServiceQueueTest, SingleWorkerFifoWaitMath) {
  OverloadPolicy policy;
  policy.workers = 1;
  ServiceQueue q(policy);
  const SimTime service = 10 * kMillisecond;

  // Three arrivals at t=0: the first starts immediately, the rest wait for
  // the single worker in FIFO order.
  EXPECT_EQ(q.admit(0, service, false).wait, 0);
  EXPECT_EQ(q.admit(0, service, false).wait, service);
  EXPECT_EQ(q.admit(0, service, false).wait, 2 * service);
  EXPECT_EQ(q.admitted(), 3u);
  EXPECT_EQ(q.shed(), 0u);

  // Two requests are still waiting at t=0; by the time the last one has
  // started service the queue is empty again.
  EXPECT_EQ(q.depth(0), 2u);
  EXPECT_EQ(q.depth(2 * service), 0u);

  // A late arrival after the backlog drained starts immediately.
  EXPECT_EQ(q.admit(4 * service, service, false).wait, 0);
}

TEST(ServiceQueueTest, MultipleWorkersDrainInParallel) {
  OverloadPolicy policy;
  policy.workers = 2;
  ServiceQueue q(policy);
  const SimTime service = 10 * kMillisecond;

  EXPECT_EQ(q.admit(0, service, false).wait, 0);
  EXPECT_EQ(q.admit(0, service, false).wait, 0);  // second worker
  EXPECT_EQ(q.admit(0, service, false).wait, service);
}

TEST(ServiceQueueTest, HardCapacityShedsEverything) {
  OverloadPolicy policy;
  policy.workers = 1;
  policy.queue_capacity = 2;
  ServiceQueue q(policy);
  const SimTime service = 10 * kMillisecond;

  // First admission enters service (depth 0); two more queue up.
  EXPECT_TRUE(q.admit(0, service, false).accepted);
  EXPECT_TRUE(q.admit(0, service, false).accepted);
  EXPECT_TRUE(q.admit(0, service, false).accepted);
  // Depth is now at the hard bound: even protected requests are shed.
  const ServiceQueue::Decision d = q.admit(0, service, /*sheddable=*/false);
  EXPECT_FALSE(d.accepted);
  EXPECT_EQ(d.depth, 2u);
  EXPECT_GT(d.retry_after, 0);
  EXPECT_EQ(q.shed(), 1u);
  // Once the backlog drains, admissions resume.
  EXPECT_TRUE(q.admit(3 * service, service, false).accepted);
}

TEST(ServiceQueueTest, HighWaterShedsOnlySheddable) {
  OverloadPolicy policy;
  policy.workers = 1;
  policy.high_water = 1;
  ServiceQueue q(policy);
  const SimTime service = 10 * kMillisecond;

  EXPECT_TRUE(q.admit(0, service, /*sheddable=*/true).accepted);   // in service
  EXPECT_TRUE(q.admit(0, service, /*sheddable=*/true).accepted);   // queued
  // Depth 1 == high water: fresh logins are shed...
  EXPECT_FALSE(q.admit(0, service, /*sheddable=*/true).accepted);
  // ...but renewals/SWITCH still queue (capacity is unbounded here).
  EXPECT_TRUE(q.admit(0, service, /*sheddable=*/false).accepted);
  EXPECT_EQ(q.shed(), 1u);
  EXPECT_EQ(q.admitted(), 3u);
}

TEST(ServiceQueueTest, RetryAfterGrowsWithBacklog) {
  OverloadPolicy policy;
  policy.workers = 1;
  policy.high_water = 1;
  policy.busy_retry_after = 500 * kMillisecond;
  ServiceQueue q(policy);

  // Shallow backlog: the floor hint dominates.
  const SimTime tiny = 1 * kMillisecond;
  ASSERT_TRUE(q.admit(0, tiny, true).accepted);
  ASSERT_TRUE(q.admit(0, tiny, true).accepted);
  const ServiceQueue::Decision shallow = q.admit(0, tiny, true);
  ASSERT_FALSE(shallow.accepted);
  EXPECT_EQ(shallow.retry_after, policy.busy_retry_after);

  // Deep backlog of slow requests: the drain estimate dominates and grows
  // with depth — a deeper queue pushes retries further out.
  OverloadPolicy deep_policy = policy;
  deep_policy.high_water = 8;
  ServiceQueue deep(deep_policy);
  const SimTime slow = 1 * kSecond;
  for (int i = 0; i < 9; ++i) ASSERT_TRUE(deep.admit(0, slow, true).accepted);
  const ServiceQueue::Decision d = deep.admit(0, slow, true);
  ASSERT_FALSE(d.accepted);
  EXPECT_EQ(d.depth, 8u);
  EXPECT_EQ(d.retry_after, 9 * kSecond);  // (depth/workers + 1) * service
  EXPECT_GT(d.retry_after, shallow.retry_after);
}

// ----------------------------------------------------------------- TokenBucket

TEST(TokenBucketTest, SpendsAndRefillsContinuously) {
  TokenBucket bucket(/*capacity=*/2, /*refill_per_second=*/1.0);
  EXPECT_FALSE(bucket.unlimited());
  EXPECT_TRUE(bucket.try_take(0));
  EXPECT_TRUE(bucket.try_take(0));
  EXPECT_FALSE(bucket.try_take(0));  // budget dry
  // Half a second refills half a token — still not enough for a whole one.
  EXPECT_FALSE(bucket.try_take(500 * kMillisecond));
  // At one second the half token grew past 1.0.
  EXPECT_TRUE(bucket.try_take(kSecond));
  EXPECT_FALSE(bucket.try_take(kSecond));
}

TEST(TokenBucketTest, RefillCapsAtCapacity) {
  TokenBucket bucket(2, 1.0);
  ASSERT_TRUE(bucket.try_take(0));
  // An hour of refill cannot exceed capacity: two takes, not 3600.
  EXPECT_TRUE(bucket.try_take(util::kHour));
  EXPECT_TRUE(bucket.try_take(util::kHour));
  EXPECT_FALSE(bucket.try_take(util::kHour));
}

TEST(TokenBucketTest, ZeroCapacityIsUnlimited) {
  TokenBucket bucket;
  EXPECT_TRUE(bucket.unlimited());
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(bucket.try_take(0));
}

// -------------------------------------------------------------- CircuitBreaker

TEST(CircuitBreakerTest, OpensAtThresholdAndFastFails) {
  CircuitBreaker breaker({/*failure_threshold=*/2, /*cooldown=*/kSecond});
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.allow(0));
  breaker.record_failure(0);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);  // 1 < threshold
  breaker.record_failure(10);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.opens(), 1u);
  EXPECT_FALSE(breaker.allow(10));
  EXPECT_FALSE(breaker.allow(10 + kSecond / 2));  // cooldown not elapsed
}

TEST(CircuitBreakerTest, SuccessResetsConsecutiveFailures) {
  CircuitBreaker breaker({2, kSecond});
  breaker.record_failure(0);
  breaker.record_success();
  breaker.record_failure(0);  // 1 again, not 2: no open
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.opens(), 0u);
}

TEST(CircuitBreakerTest, SingleProbeDecidesAfterCooldown) {
  CircuitBreaker breaker({2, kSecond});
  breaker.record_failure(0);
  breaker.record_failure(0);
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);

  // Cooldown elapses: exactly one probe goes through, the rest fast-fail.
  EXPECT_TRUE(breaker.allow(kSecond));
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(breaker.allow(kSecond));

  // Probe fails: a full new cooldown.
  breaker.record_failure(kSecond);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.opens(), 2u);
  EXPECT_FALSE(breaker.allow(kSecond + kSecond / 2));

  // Second probe succeeds: the breaker re-closes and traffic flows again.
  EXPECT_TRUE(breaker.allow(2 * kSecond));
  breaker.record_success();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.recloses(), 1u);
  EXPECT_TRUE(breaker.allow(2 * kSecond));
}

TEST(CircuitBreakerTest, ZeroThresholdDisables) {
  CircuitBreaker breaker;
  for (int i = 0; i < 10; ++i) breaker.record_failure(0);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.allow(0));
  EXPECT_EQ(breaker.opens(), 0u);
}

// ------------------------------------------------------------------ deployment

DeploymentConfig overload_config() {
  DeploymentConfig cfg;
  cfg.seed = 2024;
  cfg.default_link.latency.floor = 10 * kMillisecond;
  cfg.default_link.latency.median = 40 * kMillisecond;
  cfg.default_link.latency.sigma = 0.4;
  // Slow servers so a burst of logins visibly saturates the single worker.
  cfg.processing.light = 10 * kMillisecond;
  cfg.processing.heavy = 100 * kMillisecond;
  cfg.overload.workers = 1;
  cfg.overload.queue_capacity = 64;  // generous: only high-water shedding
  cfg.overload.high_water = 3;
  cfg.overload.busy_retry_after = 200 * kMillisecond;
  return cfg;
}

/// Run one client operation to completion inside the simulation.
DrmError wait(Deployment& d, const std::function<void(AsyncClient::Callback)>& op) {
  std::optional<DrmError> result;
  op([&result](DrmError err) { result = err; });
  const SimTime deadline = d.sim().now() + 10 * kMinute;
  while (!result && d.sim().now() < deadline && d.sim().step()) {
  }
  return result.value_or(DrmError::kNoCapacity);
}

TEST(OverloadDeploymentTest, SaturationShedsFreshLoginsButServesRenewals) {
  Deployment d(overload_config());
  d.add_user("alice@example.com", "pw-a");
  const geo::RegionId region = d.geo().region_at(0);
  d.add_regional_channel(1, "news", region);
  d.start_channel_server(1);

  // Alice establishes a session before the storm.
  AsyncClient& alice = d.add_client("alice@example.com", "pw-a", region);
  ASSERT_EQ(wait(d, [&](auto cb) { alice.login(cb); }), DrmError::kOk);
  ASSERT_EQ(wait(d, [&](auto cb) { alice.switch_channel(1, cb); }), DrmError::kOk);
  // Advance into the renewal window (10 min ticket lifetime, 3 min window)
  // so the mid-storm renewal below is legal.
  d.run_for(8 * kMinute);

  // A storm of fresh viewers all hits LOGIN at the same instant — several
  // times the single UM worker's capacity.
  constexpr int kStorm = 10;
  std::vector<AsyncClient*> storm;
  for (int i = 0; i < kStorm; ++i) {
    const std::string email = "storm" + std::to_string(i) + "@example.com";
    ASSERT_TRUE(d.add_user(email, "pw"));
    storm.push_back(&d.add_client(email, "pw", region));
  }
  int completed = 0;
  int ok = 0;
  for (AsyncClient* c : storm) {
    c->login([&completed, &ok](DrmError err) {
      ++completed;
      if (err == DrmError::kOk) ++ok;
    });
  }

  // Mid-storm, Alice's protected renewal (SWITCH rounds) completes: session
  // continuity beats new admissions.
  EXPECT_EQ(wait(d, [&](auto cb) { alice.renew_channel_ticket(cb); }),
            DrmError::kOk);

  // Drain until every storm login resolved. BUSY-deferred resends let shed
  // viewers in as the backlog clears, so all of them eventually succeed.
  const SimTime deadline = d.sim().now() + 10 * kMinute;
  while (completed < kStorm && d.sim().now() < deadline && d.sim().step()) {
  }
  ASSERT_EQ(completed, kStorm);
  EXPECT_EQ(ok, kStorm);

  // The storm was shed with BUSY — and never silently: every shed request
  // produced exactly one BUSY envelope, and (with a loss-free network) every
  // BUSY reached a client.
  const obs::Counter* busy_sent = d.registry().find_counter("server.busy_sent");
  ASSERT_NE(busy_sent, nullptr);
  EXPECT_GT(busy_sent->value(), 0u);
  std::uint64_t shed_logins = 0;
  for (const auto& [label, counter] : d.registry().family("server.shed")) {
    EXPECT_TRUE(label == "login1-req" || label == "login2-req")
        << "unexpected shed kind: " << label;
    shed_logins += counter->value();
  }
  EXPECT_EQ(shed_logins, busy_sent->value());
  std::uint64_t busy_received = 0;
  for (const auto& client : d.clients()) busy_received += client->busy_received();
  EXPECT_EQ(busy_received, busy_sent->value());
  EXPECT_EQ(alice.busy_received(), 0u);  // the protected tier never saw a BUSY
}

TEST(OverloadDeploymentTest, BreakerOpensOnTimeoutsAndReclosesAfterProbe) {
  DeploymentConfig cfg;
  cfg.seed = 2024;
  cfg.default_link.latency.floor = 10 * kMillisecond;
  cfg.default_link.latency.median = 40 * kMillisecond;
  cfg.default_link.latency.sigma = 0.4;
  cfg.request_timeout = 200 * kMillisecond;
  cfg.max_retries = 1;
  cfg.client_breaker_threshold = 2;
  cfg.client_breaker_cooldown = 5 * kSecond;
  Deployment d(cfg);
  d.add_user("alice@example.com", "pw-a");
  const geo::RegionId region = d.geo().region_at(0);

  AsyncClient& alice = d.add_client("alice@example.com", "pw-a", region);

  // Black-hole the User Manager's link: LOGIN1 times out while the
  // redirection service stays healthy.
  LinkConfig lossy = cfg.default_link;
  lossy.loss = 1.0;
  d.network().set_link(Deployment::kUserManagerNode, lossy);

  // Two timed-out logins reach the failure threshold.
  EXPECT_NE(wait(d, [&](auto cb) { alice.login(cb); }), DrmError::kOk);
  EXPECT_NE(wait(d, [&](auto cb) { alice.login(cb); }), DrmError::kOk);
  const CircuitBreaker* breaker = alice.breaker(Deployment::kUserManagerNode);
  ASSERT_NE(breaker, nullptr);
  EXPECT_EQ(breaker->state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker->opens(), 1u);

  // While open, requests fast-fail without touching the network.
  const std::uint64_t retransmits_before = alice.retransmits();
  EXPECT_NE(wait(d, [&](auto cb) { alice.login(cb); }), DrmError::kOk);
  EXPECT_GE(alice.breaker_fast_fails(), 1u);
  EXPECT_EQ(alice.retransmits(), retransmits_before);

  // The UM heals; after the cooldown the next login is the single probe,
  // it succeeds, and the breaker re-closes.
  d.network().set_link(Deployment::kUserManagerNode, cfg.default_link);
  d.run_for(cfg.client_breaker_cooldown + kSecond);
  EXPECT_EQ(wait(d, [&](auto cb) { alice.login(cb); }), DrmError::kOk);
  EXPECT_EQ(breaker->state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker->recloses(), 1u);
  EXPECT_TRUE(alice.logged_in());
}

TEST(OverloadDeploymentTest, RetryBudgetDryFailsInsteadOfRetryStorm) {
  DeploymentConfig cfg;
  cfg.seed = 2024;
  cfg.default_link.latency.floor = 10 * kMillisecond;
  cfg.default_link.latency.median = 40 * kMillisecond;
  cfg.default_link.latency.sigma = 0.4;
  cfg.request_timeout = 200 * kMillisecond;
  cfg.max_retries = 8;
  cfg.client_retry_budget = 2;  // only two retransmissions allowed
  cfg.client_retry_budget_refill = 0.01;
  Deployment d(cfg);
  d.add_user("alice@example.com", "pw-a");
  const geo::RegionId region = d.geo().region_at(0);

  AsyncClient& alice = d.add_client("alice@example.com", "pw-a", region);
  LinkConfig lossy = cfg.default_link;
  lossy.loss = 1.0;
  d.network().set_link(Deployment::kUserManagerNode, lossy);

  EXPECT_NE(wait(d, [&](auto cb) { alice.login(cb); }), DrmError::kOk);
  // The budget, not the per-request retry cap, ended the attempt: out of 8
  // allowed retransmissions only the budgeted 2 went out.
  EXPECT_EQ(alice.retry_budget_exhaustions(), 1u);
  EXPECT_EQ(alice.retransmits(), 2u);
}

}  // namespace
}  // namespace p2pdrm::net
