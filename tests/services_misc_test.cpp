#include <gtest/gtest.h>

#include "services/account_manager.h"
#include "services/channel_server.h"
#include "services/metrics.h"
#include "services/redirection_manager.h"

namespace p2pdrm::services {
namespace {

using util::kMinute;
using util::kSecond;

// --- AccountManager ---

TEST(AccountManagerTest, CreateAndDuplicate) {
  AccountManager am;
  EXPECT_TRUE(am.create_account("a@x.com", "pw", 0));
  EXPECT_FALSE(am.create_account("a@x.com", "pw2", 0));
  EXPECT_EQ(am.account_count(), 1u);
  ASSERT_NE(am.find("a@x.com"), nullptr);
  EXPECT_EQ(am.find("b@x.com"), nullptr);
}

TEST(AccountManagerTest, SubscribeUnsubscribe) {
  AccountManager am;
  am.create_account("a@x.com", "pw", 0);
  EXPECT_TRUE(am.subscribe("a@x.com", {"101", 0, 100}));
  EXPECT_TRUE(am.subscribe("a@x.com", {"202", 0, 100}));
  EXPECT_EQ(am.find("a@x.com")->subscriptions.size(), 2u);
  EXPECT_TRUE(am.unsubscribe("a@x.com", "101"));
  EXPECT_EQ(am.find("a@x.com")->subscriptions.size(), 1u);
  EXPECT_FALSE(am.subscribe("ghost@x.com", {"101", 0, 100}));
  EXPECT_FALSE(am.unsubscribe("ghost@x.com", "101"));
}

TEST(AccountManagerTest, SinkReceivesEveryChange) {
  int pushes = 0;
  AccountManager am([&](const UserProvisioning&) { ++pushes; });
  am.create_account("a@x.com", "pw", 0);
  am.subscribe("a@x.com", {"101", 0, 100});
  am.set_suspended("a@x.com", true);
  EXPECT_EQ(pushes, 3);
}

TEST(AccountManagerTest, LateSinkReplaysExistingAccounts) {
  AccountManager am;
  am.create_account("a@x.com", "pw", 0);
  am.create_account("b@x.com", "pw", 0);
  int pushes = 0;
  am.set_sink([&](const UserProvisioning&) { ++pushes; });
  EXPECT_EQ(pushes, 2);
}

TEST(AccountManagerTest, NeverStoresPlaintextPassword) {
  AccountManager am;
  am.create_account("a@x.com", "super-secret-password", 0);
  const AccountRecord* rec = am.find("a@x.com");
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->shp, core::password_hash("super-secret-password"));
}

// --- RedirectionManager ---

TEST(RedirectionManagerTest, LookupFlow) {
  RedirectionManager rm;
  crypto::SecureRandom rng(1);
  rm.register_domain(0, {util::parse_netaddr("10.0.0.1"), rng.bytes(16)});
  rm.set_channel_policy_manager({util::parse_netaddr("10.0.0.9"), rng.bytes(16)});
  rm.assign_user("a@x.com", 0);

  const RedirectResponse resp = rm.handle_lookup({"a@x.com"});
  EXPECT_TRUE(resp.found);
  EXPECT_EQ(resp.domain, 0u);
  EXPECT_EQ(resp.user_manager.addr, util::parse_netaddr("10.0.0.1"));
  EXPECT_EQ(resp.channel_policy_manager.addr, util::parse_netaddr("10.0.0.9"));
}

TEST(RedirectionManagerTest, UnknownUserNotFound) {
  RedirectionManager rm;
  EXPECT_FALSE(rm.handle_lookup({"ghost@x.com"}).found);
}

TEST(RedirectionManagerTest, UserInUnregisteredDomainNotFound) {
  RedirectionManager rm;
  rm.assign_user("a@x.com", 7);  // domain 7 never registered
  EXPECT_FALSE(rm.handle_lookup({"a@x.com"}).found);
}

TEST(RedirectionManagerTest, MultipleDomains) {
  RedirectionManager rm;
  rm.register_domain(0, {util::parse_netaddr("10.0.0.1"), {}});
  rm.register_domain(1, {util::parse_netaddr("10.0.1.1"), {}});
  rm.assign_user("a@x.com", 0);
  rm.assign_user("b@x.com", 1);
  EXPECT_EQ(rm.handle_lookup({"a@x.com"}).user_manager.addr,
            util::parse_netaddr("10.0.0.1"));
  EXPECT_EQ(rm.handle_lookup({"b@x.com"}).user_manager.addr,
            util::parse_netaddr("10.0.1.1"));
}

TEST(RedirectionManagerTest, WireRoundTrips) {
  RedirectRequest req{"a@x.com"};
  EXPECT_EQ(RedirectRequest::decode(req.encode()).email, "a@x.com");
  RedirectResponse resp;
  resp.found = true;
  resp.domain = 3;
  resp.user_manager = {util::parse_netaddr("10.0.0.1"), util::bytes_of("pk")};
  resp.channel_policy_manager = {util::parse_netaddr("10.0.0.2"), util::bytes_of("pk2")};
  const RedirectResponse d = RedirectResponse::decode(resp.encode());
  EXPECT_TRUE(d.found);
  EXPECT_EQ(d.domain, 3u);
  EXPECT_EQ(d.user_manager, resp.user_manager);
}

// --- ChannelServer ---

ChannelServerConfig server_config() {
  ChannelServerConfig cfg;
  cfg.channel = 5;
  cfg.rekey_interval = 60 * kSecond;
  cfg.announce_lead = 10 * kSecond;
  cfg.key_history = 4;
  return cfg;
}

TEST(ChannelServerTest, InitialKeyActiveImmediately) {
  crypto::SecureRandom rng(1);
  ChannelServer server(server_config(), std::move(rng), 0);
  EXPECT_EQ(server.active_key(0).serial, 0);
  EXPECT_EQ(server.keys_minted(), 1u);
}

TEST(ChannelServerTest, RotatesOnSchedule) {
  crypto::SecureRandom rng(2);
  ChannelServer server(server_config(), std::move(rng), 0);
  // Next key (activation 60s) minted at 50s (announce lead).
  EXPECT_TRUE(server.advance(49 * kSecond).empty());
  const auto minted = server.advance(50 * kSecond);
  ASSERT_EQ(minted.size(), 1u);
  EXPECT_EQ(minted[0].serial, 1);
  EXPECT_EQ(minted[0].activation, 60 * kSecond);
  // Not active until its activation time.
  EXPECT_EQ(server.active_key(55 * kSecond).serial, 0);
  EXPECT_EQ(server.active_key(60 * kSecond).serial, 1);
}

TEST(ChannelServerTest, CatchesUpAfterGap) {
  crypto::SecureRandom rng(3);
  ChannelServer server(server_config(), std::move(rng), 0);
  const auto minted = server.advance(5 * kMinute);  // five intervals later
  EXPECT_GE(minted.size(), 4u);
  EXPECT_EQ(server.active_key(5 * kMinute).serial, 5);
}

TEST(ChannelServerTest, SerialWrapsMod256) {
  ChannelServerConfig cfg = server_config();
  cfg.rekey_interval = kSecond;
  cfg.announce_lead = 0;
  crypto::SecureRandom rng(4);
  ChannelServer server(cfg, std::move(rng), 0);
  (void)server.advance(300 * kSecond);
  EXPECT_EQ(server.keys_minted(), 301u);
  // serial of the active key at 300s: 300 mod 256 = 44.
  EXPECT_EQ(server.active_key(300 * kSecond).serial, 44);
}

TEST(ChannelServerTest, KeyHistoryBounded) {
  crypto::SecureRandom rng(5);
  ChannelServer server(server_config(), std::move(rng), 0);
  (void)server.advance(30 * kMinute);
  EXPECT_FALSE(server.key_by_serial(0).has_value());  // aged out
  EXPECT_TRUE(server.key_by_serial(server.latest_key().serial).has_value());
}

TEST(ChannelServerTest, ProduceEncryptsUnderActiveKey) {
  crypto::SecureRandom rng(6);
  ChannelServer server(server_config(), std::move(rng), 0);
  const util::Bytes payload = util::bytes_of("frame");
  const core::ContentPacket p = server.produce(payload, 0);
  EXPECT_EQ(p.channel, 5u);
  EXPECT_EQ(p.key_serial, 0);
  EXPECT_NE(p.payload, payload);
  const auto key = server.key_by_serial(0);
  ASSERT_TRUE(key.has_value());
  EXPECT_EQ(core::decrypt_packet(*key, p), payload);
  EXPECT_EQ(server.packets_produced(), 1u);
}

TEST(ChannelServerTest, SequenceNumbersIncrease) {
  crypto::SecureRandom rng(7);
  ChannelServer server(server_config(), std::move(rng), 0);
  EXPECT_EQ(server.produce(util::bytes_of("a"), 0).seq, 0u);
  EXPECT_EQ(server.produce(util::bytes_of("b"), 0).seq, 1u);
}

TEST(ChannelServerTest, UnencryptedMode) {
  ChannelServerConfig cfg = server_config();
  cfg.encrypt = false;
  crypto::SecureRandom rng(8);
  ChannelServer server(cfg, std::move(rng), 0);
  const util::Bytes payload = util::bytes_of("clear frame");
  const core::ContentPacket p = server.produce(payload, 0);
  EXPECT_EQ(p.payload, payload);
}

TEST(ChannelServerTest, RejectsBadConfig) {
  crypto::SecureRandom rng(9);
  ChannelServerConfig bad = server_config();
  bad.rekey_interval = 0;
  EXPECT_THROW(ChannelServer(bad, std::move(rng), 0), std::invalid_argument);
  crypto::SecureRandom rng2(10);
  ChannelServerConfig bad2 = server_config();
  bad2.key_history = 0;
  EXPECT_THROW(ChannelServer(bad2, std::move(rng2), 0), std::invalid_argument);
}

// --- OpsCounters ---

TEST(OpsCountersTest, CountsAndRates) {
  OpsCounters c;
  EXPECT_EQ(c.total(), 0u);
  EXPECT_DOUBLE_EQ(c.success_rate(), 0.0);
  EXPECT_EQ(c.to_string(), "(no requests)");

  c.record(core::DrmError::kOk);
  c.record(core::DrmError::kOk);
  c.record(core::DrmError::kAccessDenied);
  c.record(core::DrmError::kTicketExpired);
  EXPECT_EQ(c.total(), 4u);
  EXPECT_EQ(c.successes(), 2u);
  EXPECT_EQ(c.count(core::DrmError::kAccessDenied), 1u);
  EXPECT_EQ(c.count(core::DrmError::kBadTicket), 0u);
  EXPECT_DOUBLE_EQ(c.success_rate(), 0.5);
  EXPECT_NE(c.to_string().find("ok=2"), std::string::npos);
  EXPECT_NE(c.to_string().find("access-denied=1"), std::string::npos);
}

}  // namespace
}  // namespace p2pdrm::services
