// LatencyEndpoints: protocol rounds against the real service stack with
// injected network + processing delay; the client's feedback log becomes a
// small-scale analogue of the paper's production measurements.
#include <gtest/gtest.h>

#include "client/latency_endpoints.h"
#include "client/testbed.h"

namespace p2pdrm::client {
namespace {

using core::DrmError;

class ClientLatencyTest : public ::testing::Test {
 protected:
  ClientLatencyTest() : tb_(make_config()) {
    tb_.add_user("user@example.com", "pw");
    region_ = tb_.geo().region_at(0);
    tb_.add_regional_channel(1, "news", region_);
    tb_.start_channel_server(1);

    sim::LatencyModel net;
    net.floor = 40 * util::kMillisecond;
    net.median = 100 * util::kMillisecond;
    net.sigma = 0.4;
    latency_ = std::make_unique<LatencyEndpoints>(tb_, tb_.clock(), net,
                                                  sim::ServiceCosts{},
                                                  crypto::SecureRandom(9));
  }

  static TestbedConfig make_config() {
    TestbedConfig cfg;
    cfg.seed = 77;
    return cfg;
  }

  Client& make_client() {
    ClientConfig cc;
    cc.email = "user@example.com";
    cc.password = "pw";
    cc.client_version = 1;
    // Match the testbed's reference binary through a real client there.
    Client& proto = tb_.add_client("user@example.com", "pw", region_);
    cc.client_binary = proto.config().client_binary;
    cc.addr = proto.config().addr;
    cc.node = 5000;
    clients_.push_back(std::make_unique<Client>(cc, *latency_, tb_.clock(),
                                                crypto::SecureRandom(10)));
    return *clients_.back();
  }

  Testbed tb_;
  geo::RegionId region_ = 0;
  std::unique_ptr<LatencyEndpoints> latency_;
  std::vector<std::unique_ptr<Client>> clients_;
};

TEST_F(ClientLatencyTest, FeedbackLogRecordsPositiveLatencies) {
  Client& c = make_client();
  ASSERT_EQ(c.login(), DrmError::kOk);
  ASSERT_EQ(c.switch_channel(1), DrmError::kOk);

  ASSERT_GE(c.feedback_log().size(), 5u);
  for (const LatencySample& s : c.feedback_log()) {
    EXPECT_TRUE(s.success);
    // Every round at least crossed the network floor once.
    EXPECT_GE(s.latency, 40 * util::kMillisecond) << to_string(s.round);
    EXPECT_LT(s.latency, 10 * util::kSecond);
  }
}

TEST_F(ClientLatencyTest, RoundsOrderedInTime) {
  Client& c = make_client();
  ASSERT_EQ(c.login(), DrmError::kOk);
  ASSERT_EQ(c.switch_channel(1), DrmError::kOk);
  for (std::size_t i = 1; i < c.feedback_log().size(); ++i) {
    EXPECT_GE(c.feedback_log()[i].started, c.feedback_log()[i - 1].started);
  }
}

TEST_F(ClientLatencyTest, Login2CostsMoreThanLogin1) {
  // Aggregate over several logins: LOGIN2 carries the RSA-heavy service
  // cost, so its mean must exceed LOGIN1's (the paper's Fig. 5a ordering).
  Client& c = make_client();
  for (int i = 0; i < 20; ++i) ASSERT_EQ(c.login(), DrmError::kOk);

  double login1_total = 0, login2_total = 0;
  int n1 = 0, n2 = 0;
  for (const LatencySample& s : c.feedback_log()) {
    if (s.round == Round::kLogin1) {
      login1_total += static_cast<double>(s.latency);
      ++n1;
    } else if (s.round == Round::kLogin2) {
      login2_total += static_cast<double>(s.latency);
      ++n2;
    }
  }
  ASSERT_GT(n1, 0);
  ASSERT_GT(n2, 0);
  EXPECT_GT(login2_total / n2, login1_total / n1);
}

TEST_F(ClientLatencyTest, ClockAdvancesWithTraffic) {
  Client& c = make_client();
  const util::SimTime before = tb_.clock().now();
  ASSERT_EQ(c.login(), DrmError::kOk);
  EXPECT_GT(tb_.clock().now(), before);
}

TEST_F(ClientLatencyTest, ProtocolStillCorrectUnderLatency) {
  // The delay decorator must not break any protocol invariant: challenges
  // are still fresh (2-minute budget vs sub-second RTTs), tickets verify,
  // renewal works.
  Client& c = make_client();
  ASSERT_EQ(c.login(), DrmError::kOk);
  ASSERT_EQ(c.switch_channel(1), DrmError::kOk);
  EXPECT_TRUE(c.user_ticket()->verify(tb_.user_manager().public_key()));

  tb_.clock().advance(8 * util::kMinute);
  EXPECT_EQ(c.renew_channel_ticket(), DrmError::kOk);
  EXPECT_TRUE(c.channel_ticket()->ticket.renewal);
}

}  // namespace
}  // namespace p2pdrm::client
