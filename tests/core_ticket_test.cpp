#include <gtest/gtest.h>

#include "core/challenge.h"
#include "core/messages.h"
#include "core/ticket.h"
#include "crypto/chacha20.h"

namespace p2pdrm::core {
namespace {

using util::kMinute;

const crypto::RsaKeyPair& issuer_keys() {
  static const crypto::RsaKeyPair kp = [] {
    crypto::SecureRandom rng(101);
    return crypto::generate_rsa_keypair(rng, 512);
  }();
  return kp;
}

const crypto::RsaKeyPair& client_keys() {
  static const crypto::RsaKeyPair kp = [] {
    crypto::SecureRandom rng(102);
    return crypto::generate_rsa_keypair(rng, 512);
  }();
  return kp;
}

UserTicket sample_user_ticket() {
  UserTicket t;
  t.user_in = 42;
  t.client_public_key = client_keys().pub;
  t.start_time = 100 * kMinute;
  t.expiry_time = 130 * kMinute;
  Attribute region;
  region.name = kAttrRegion;
  region.value = AttrValue::of("100");
  region.utime = 7;
  t.attributes.add(region);
  Attribute netaddr;
  netaddr.name = kAttrNetAddr;
  netaddr.value = AttrValue::of("10.0.0.1");
  t.attributes.add(netaddr);
  return t;
}

ChannelTicket sample_channel_ticket() {
  ChannelTicket t;
  t.user_in = 42;
  t.channel_id = 7;
  t.client_public_key = client_keys().pub;
  t.net_addr = util::parse_netaddr("10.0.0.1");
  t.renewal = false;
  t.start_time = 100 * kMinute;
  t.expiry_time = 110 * kMinute;
  return t;
}

TEST(UserTicketTest, EncodeDecodeRoundTrip) {
  const UserTicket t = sample_user_ticket();
  EXPECT_EQ(UserTicket::decode(t.encode()), t);
}

TEST(UserTicketTest, Expiry) {
  const UserTicket t = sample_user_ticket();
  EXPECT_FALSE(t.expired_at(130 * kMinute));
  EXPECT_TRUE(t.expired_at(130 * kMinute + 1));
}

TEST(UserTicketTest, TrailingBytesRejected) {
  util::Bytes bytes = sample_user_ticket().encode();
  bytes.push_back(0);
  EXPECT_THROW(UserTicket::decode(bytes), util::WireError);
}

TEST(ChannelTicketTest, EncodeDecodeRoundTrip) {
  ChannelTicket t = sample_channel_ticket();
  EXPECT_EQ(ChannelTicket::decode(t.encode()), t);
  t.renewal = true;
  EXPECT_EQ(ChannelTicket::decode(t.encode()), t);
}

TEST(ChannelTicketTest, BadRenewalBitRejected) {
  util::Bytes bytes = sample_channel_ticket().encode();
  // renewal bit sits right after the 4-byte NetAddr which follows the
  // length-prefixed public key; find it by decoding offsets is brittle, so
  // instead flip it through the struct and corrupt the byte directly.
  ChannelTicket t = sample_channel_ticket();
  t.renewal = true;
  util::Bytes enc = t.encode();
  // Find the single 0x01 that differs from the renewal=false encoding.
  std::size_t pos = 0;
  for (std::size_t i = 0; i < enc.size(); ++i) {
    if (enc[i] != bytes[i]) {
      pos = i;
      break;
    }
  }
  enc[pos] = 2;
  EXPECT_THROW(ChannelTicket::decode(enc), util::WireError);
}

TEST(SignedTicketTest, SignAndVerify) {
  const SignedUserTicket signed_ticket =
      SignedUserTicket::sign(sample_user_ticket(), issuer_keys().priv);
  EXPECT_TRUE(signed_ticket.verify(issuer_keys().pub));
  EXPECT_FALSE(signed_ticket.verify(client_keys().pub));
}

TEST(SignedTicketTest, EncodeDecodePreservesSignature) {
  const SignedUserTicket original =
      SignedUserTicket::sign(sample_user_ticket(), issuer_keys().priv);
  const SignedUserTicket decoded = SignedUserTicket::decode(original.encode());
  EXPECT_EQ(decoded, original);
  EXPECT_TRUE(decoded.verify(issuer_keys().pub));
}

TEST(SignedTicketTest, TamperedBodyFailsVerification) {
  SignedUserTicket t = SignedUserTicket::sign(sample_user_ticket(), issuer_keys().priv);
  t.body[10] ^= 0x01;
  EXPECT_FALSE(t.verify(issuer_keys().pub));
}

TEST(SignedTicketTest, TamperedWireBytesDetected) {
  const SignedUserTicket t =
      SignedUserTicket::sign(sample_user_ticket(), issuer_keys().priv);
  util::Bytes wire = t.encode();
  // Flip every byte position one at a time in a sample of positions: the
  // result must either fail to parse or fail signature verification.
  for (std::size_t pos = 4; pos < wire.size(); pos += 37) {
    util::Bytes corrupted = wire;
    corrupted[pos] ^= 0xff;
    try {
      const SignedUserTicket parsed = SignedUserTicket::decode(corrupted);
      EXPECT_FALSE(parsed.verify(issuer_keys().pub)) << "pos " << pos;
    } catch (const util::WireError&) {
      // Parse failure is an acceptable outcome for a corrupted ticket.
    }
  }
}

TEST(SignedTicketTest, ChannelTicketSignVerify) {
  const SignedChannelTicket t =
      SignedChannelTicket::sign(sample_channel_ticket(), issuer_keys().priv);
  EXPECT_TRUE(t.verify(issuer_keys().pub));
  const SignedChannelTicket decoded = SignedChannelTicket::decode(t.encode());
  EXPECT_EQ(decoded.ticket.channel_id, 7u);
  EXPECT_TRUE(decoded.verify(issuer_keys().pub));
}

// --- Challenge ---

TEST(ChallengeTest, MakeAndVerify) {
  crypto::SecureRandom rng(5);
  const util::Bytes secret = rng.bytes(32);
  const util::Bytes nonce = rng.bytes(kNonceSize);
  const util::Bytes binding = util::bytes_of("user@example.com|fingerprint");

  const Challenge c = make_challenge(secret, "login", binding, nonce, 1000);
  EXPECT_TRUE(verify_challenge(c, secret, "login", binding, 1500, kMinute));
}

TEST(ChallengeTest, WrongContextFails) {
  crypto::SecureRandom rng(6);
  const util::Bytes secret = rng.bytes(32);
  const Challenge c = make_challenge(secret, "login", util::bytes_of("b"),
                                     rng.bytes(kNonceSize), 1000);
  EXPECT_FALSE(verify_challenge(c, secret, "switch", util::bytes_of("b"), 1500, kMinute));
}

TEST(ChallengeTest, WrongBindingFails) {
  crypto::SecureRandom rng(7);
  const util::Bytes secret = rng.bytes(32);
  const Challenge c = make_challenge(secret, "login", util::bytes_of("user-a"),
                                     rng.bytes(kNonceSize), 1000);
  EXPECT_FALSE(
      verify_challenge(c, secret, "login", util::bytes_of("user-b"), 1500, kMinute));
}

TEST(ChallengeTest, WrongSecretFails) {
  crypto::SecureRandom rng(8);
  const util::Bytes secret = rng.bytes(32);
  const util::Bytes other = rng.bytes(32);
  const Challenge c = make_challenge(secret, "login", util::bytes_of("b"),
                                     rng.bytes(kNonceSize), 1000);
  EXPECT_FALSE(verify_challenge(c, other, "login", util::bytes_of("b"), 1500, kMinute));
}

TEST(ChallengeTest, StaleChallengeFails) {
  crypto::SecureRandom rng(9);
  const util::Bytes secret = rng.bytes(32);
  const Challenge c = make_challenge(secret, "login", util::bytes_of("b"),
                                     rng.bytes(kNonceSize), 1000);
  EXPECT_FALSE(verify_challenge(c, secret, "login", util::bytes_of("b"),
                                1000 + 2 * kMinute, kMinute));
}

TEST(ChallengeTest, FutureChallengeFails) {
  crypto::SecureRandom rng(10);
  const util::Bytes secret = rng.bytes(32);
  const Challenge c = make_challenge(secret, "login", util::bytes_of("b"),
                                     rng.bytes(kNonceSize), 5000);
  EXPECT_FALSE(verify_challenge(c, secret, "login", util::bytes_of("b"), 1000, kMinute));
}

TEST(ChallengeTest, TamperedNonceFails) {
  crypto::SecureRandom rng(11);
  const util::Bytes secret = rng.bytes(32);
  Challenge c = make_challenge(secret, "login", util::bytes_of("b"),
                               rng.bytes(kNonceSize), 1000);
  c.nonce[0] ^= 1;
  EXPECT_FALSE(verify_challenge(c, secret, "login", util::bytes_of("b"), 1500, kMinute));
}

TEST(ChallengeTest, WrongNonceSizeFails) {
  crypto::SecureRandom rng(12);
  const util::Bytes secret = rng.bytes(32);
  Challenge c = make_challenge(secret, "login", util::bytes_of("b"), rng.bytes(16), 1000);
  EXPECT_FALSE(verify_challenge(c, secret, "login", util::bytes_of("b"), 1500, kMinute));
}

TEST(ChallengeTest, WireRoundTrip) {
  crypto::SecureRandom rng(13);
  const Challenge c = make_challenge(rng.bytes(32), "switch", util::bytes_of("x"),
                                     rng.bytes(kNonceSize), 777);
  util::WireWriter w;
  c.encode(w);
  util::WireReader r(w.data());
  EXPECT_EQ(Challenge::decode(r), c);
}

// --- Message codecs ---

TEST(MessageCodecTest, Login1RoundTrip) {
  Login1Request m;
  m.email = "user@example.com";
  m.client_public_key = client_keys().pub;
  m.client_version = 3;
  const Login1Request d = Login1Request::decode(m.encode());
  EXPECT_EQ(d.email, m.email);
  EXPECT_EQ(d.client_public_key, m.client_public_key);
  EXPECT_EQ(d.client_version, 3u);
}

TEST(MessageCodecTest, Login2ResponseWithAndWithoutTicket) {
  Login2Response with;
  with.ticket = SignedUserTicket::sign(sample_user_ticket(), issuer_keys().priv);
  with.server_time = 999;
  with.minimum_version = 2;
  const Login2Response d = Login2Response::decode(with.encode());
  ASSERT_TRUE(d.ticket.has_value());
  EXPECT_TRUE(d.ticket->verify(issuer_keys().pub));
  EXPECT_EQ(d.server_time, 999);

  Login2Response without;
  without.error = DrmError::kUnknownUser;
  const Login2Response d2 = Login2Response::decode(without.encode());
  EXPECT_EQ(d2.error, DrmError::kUnknownUser);
  EXPECT_FALSE(d2.ticket.has_value());
}

TEST(MessageCodecTest, Switch2ResponsePeerList) {
  Switch2Response m;
  m.ticket = SignedChannelTicket::sign(sample_channel_ticket(), issuer_keys().priv);
  m.peers = {{10, util::parse_netaddr("10.0.0.2")}, {11, util::parse_netaddr("10.0.0.3")}};
  const Switch2Response d = Switch2Response::decode(m.encode());
  EXPECT_EQ(d.peers, m.peers);
  ASSERT_TRUE(d.ticket.has_value());
}

TEST(MessageCodecTest, SwitchRequestRenewalFlag) {
  Switch1Request fresh;
  fresh.channel_id = 5;
  EXPECT_FALSE(fresh.is_renewal());
  Switch1Request renewal;
  renewal.expiring_ticket = util::bytes_of("ticket-bytes");
  EXPECT_TRUE(renewal.is_renewal());
  const Switch1Request d = Switch1Request::decode(renewal.encode());
  EXPECT_TRUE(d.is_renewal());
}

TEST(MessageCodecTest, JoinRoundTrip) {
  JoinRequest req;
  req.channel_ticket = util::bytes_of("ct");
  EXPECT_EQ(JoinRequest::decode(req.encode()).channel_ticket, req.channel_ticket);

  JoinResponse resp;
  resp.error = DrmError::kNoCapacity;
  EXPECT_EQ(JoinResponse::decode(resp.encode()).error, DrmError::kNoCapacity);
}

TEST(MessageCodecTest, ChannelListRoundTrip) {
  ChannelListRequest req;
  req.user_ticket = util::bytes_of("ut");
  req.stale_attributes = {"Region", "Subscription"};
  const ChannelListRequest d = ChannelListRequest::decode(req.encode());
  EXPECT_EQ(d.stale_attributes, req.stale_attributes);

  ChannelListResponse resp;
  ChannelRecord c;
  c.id = 3;
  c.name = "news";
  resp.channels.push_back(c);
  PartitionInfo p;
  p.partition = 1;
  p.manager_addr = util::parse_netaddr("10.0.0.9");
  p.manager_public_key = issuer_keys().pub.encode();
  resp.partitions.push_back(p);
  const ChannelListResponse d2 = ChannelListResponse::decode(resp.encode());
  ASSERT_EQ(d2.channels.size(), 1u);
  EXPECT_EQ(d2.channels[0].name, "news");
  ASSERT_EQ(d2.partitions.size(), 1u);
  EXPECT_EQ(d2.partitions[0], p);
}

TEST(MessageCodecTest, ErrorNamesAreStable) {
  EXPECT_EQ(to_string(DrmError::kOk), "ok");
  EXPECT_EQ(to_string(DrmError::kAccessDenied), "access-denied");
  EXPECT_EQ(to_string(DrmError::kRenewalRefused), "renewal-refused");
}

TEST(MessageCodecTest, BadErrorCodeRejected) {
  util::Bytes bytes = Login1Response{}.encode();
  bytes[0] = 200;
  EXPECT_THROW(Login1Response::decode(bytes), util::WireError);
}

}  // namespace
}  // namespace p2pdrm::core
