#include "util/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <set>
#include <vector>

#include "util/rng.h"

namespace p2pdrm::util {
namespace {

TEST(ArenaTest, AllocationsAreAligned) {
  Arena arena;
  for (const std::size_t align : {1u, 2u, 4u, 8u, 16u, 64u}) {
    for (const std::size_t bytes : {1u, 3u, 7u, 100u}) {
      void* p = arena.allocate(bytes, align);
      ASSERT_NE(p, nullptr);
      EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
          << "bytes=" << bytes << " align=" << align;
    }
  }
}

TEST(ArenaTest, AllocationsDoNotOverlap) {
  Arena arena(256);  // small chunks force frequent chunk turnover
  std::vector<std::pair<std::byte*, std::size_t>> blocks;
  for (std::size_t i = 0; i < 200; ++i) {
    const std::size_t bytes = 1 + (i * 7) % 96;
    auto* p = static_cast<std::byte*>(arena.allocate(bytes, 8));
    std::memset(p, static_cast<int>(i & 0xff), bytes);
    blocks.push_back({p, bytes});
  }
  // Every block still holds its fill pattern: nothing overlapped.
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    for (std::size_t b = 0; b < blocks[i].second; ++b) {
      ASSERT_EQ(blocks[i].first[b], static_cast<std::byte>(i & 0xff))
          << "block " << i << " byte " << b;
    }
  }
}

TEST(ArenaTest, OversizedRequestGetsDedicatedChunk) {
  Arena arena(128);
  void* big = arena.allocate(10 * 1024, 16);
  ASSERT_NE(big, nullptr);
  std::memset(big, 0xab, 10 * 1024);
  EXPECT_GE(arena.bytes_reserved(), 10u * 1024);
  // Small allocations keep working alongside.
  void* small = arena.allocate(16, 8);
  ASSERT_NE(small, nullptr);
}

TEST(ArenaTest, ResetKeepsChunksAndReusesMemory) {
  Arena arena(1024);
  std::set<void*> first_pass;
  for (int i = 0; i < 50; ++i) first_pass.insert(arena.allocate(100, 8));
  const std::size_t reserved = arena.bytes_reserved();
  const std::size_t chunks = arena.chunk_count();
  EXPECT_GT(arena.bytes_allocated(), 0u);

  arena.reset();
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  EXPECT_EQ(arena.bytes_reserved(), reserved);  // memory retained...
  EXPECT_EQ(arena.chunk_count(), chunks);

  // ...and handed out again: the second pass returns the same addresses.
  std::set<void*> second_pass;
  for (int i = 0; i < 50; ++i) second_pass.insert(arena.allocate(100, 8));
  EXPECT_EQ(first_pass, second_pass);
  EXPECT_EQ(arena.bytes_reserved(), reserved);  // no new chunks appended
}

TEST(ArenaTest, MakeArrayValueInitializes) {
  Arena arena;
  int* a = arena.make_array<int>(100);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a[i], 0);
}

TEST(ArenaVectorTest, ElementAddressesAreStableAcrossGrowth) {
  Arena arena;
  ArenaVector<std::uint64_t> v(arena);
  std::vector<std::uint64_t*> addresses;
  for (std::uint64_t i = 0; i < 10000; ++i) {
    addresses.push_back(&v.push_back(i));
  }
  ASSERT_EQ(v.size(), 10000u);
  // No push_back invalidated any earlier element: the addresses recorded at
  // insert time still locate the same values.
  for (std::uint64_t i = 0; i < 10000; ++i) {
    EXPECT_EQ(addresses[i], &v[i]);
    EXPECT_EQ(*addresses[i], i);
  }
}

TEST(ArenaVectorTest, IndexingRoundTripsAcrossSegmentBoundaries) {
  Arena arena;
  ArenaVector<int> v(arena);
  // Cover several segment doublings (64, 128, 256, ...).
  const int n = 64 * 31 + 17;
  for (int i = 0; i < n; ++i) v.push_back(i * 3);
  for (int i = 0; i < n; ++i) ASSERT_EQ(v[i], i * 3) << i;
}

TEST(ArenaVectorTest, ClearForgetsElementsAndReusesSegments) {
  Arena arena;
  ArenaVector<int> v(arena);
  for (int i = 0; i < 500; ++i) v.push_back(i);
  int* first = &v[0];
  v.clear();
  EXPECT_TRUE(v.empty());
  // After arena reset + clear, growth re-walks the same chunk memory.
  arena.reset();
  v.push_back(42);
  EXPECT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0], 42);
  EXPECT_EQ(&v[0], first);
}

TEST(SplitSeedTest, LanesProduceDistinctDecorrelatedSeeds) {
  const std::uint64_t master = 20080623;
  std::set<std::uint64_t> seeds;
  for (const std::uint64_t lane :
       {lane::kShard, lane::kFlashCrowd, lane::kReservoir, lane::kKeyRotation,
        lane::kMerge}) {
    for (std::uint64_t i = 0; i < 100; ++i) {
      seeds.insert(split_seed(master, lane + i));
    }
  }
  EXPECT_EQ(seeds.size(), 500u);  // no collisions across lanes or indices
  // Different masters give different streams on the same lane.
  EXPECT_NE(split_seed(1, lane::kShard), split_seed(2, lane::kShard));
  // Deterministic.
  EXPECT_EQ(split_seed(master, lane::kShard + 3),
            split_seed(master, lane::kShard + 3));
}

}  // namespace
}  // namespace p2pdrm::util
