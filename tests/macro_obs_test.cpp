// Acceptance tests for the macro-sim observability pipeline (ISSUE PR 3):
// a seeded run must emit complete span trees for all five protocol rounds
// AND a key-rotation epoch, the critical-path decomposition must account
// for every microsecond of round latency, and the SLO report / trace
// export / time-series CSV must be byte-identical across same-seed runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "analysis/critical_path.h"
#include "obs/export.h"
#include "obs/slo.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "sim/macro_sim.h"

namespace p2pdrm::sim {
namespace {

constexpr const char* kRounds[5] = {"LOGIN1", "LOGIN2", "SWITCH1", "SWITCH2",
                                    "JOIN"};

std::vector<obs::SloObjective> objectives() {
  std::vector<obs::SloObjective> out;
  for (const char* r : kRounds) {
    out.push_back({r, 2 * util::kSecond, 5 * util::kSecond, 6 * util::kHour});
  }
  return out;
}

struct ObsRun {
  std::string slo_report;
  std::string trace_jsonl;
  std::string timeseries_csv;
  std::string breakdown;
};

MacroSimConfig small_config() {
  MacroSimConfig cfg;
  cfg.days = 1;
  cfg.peak_concurrent = 250;
  cfg.seed = 7;
  cfg.reservoir_per_hour = 200;
  cfg.reservoir_cdf = 5000;
  cfg.key_rotation.enabled = true;
  cfg.key_rotation.interval = 10 * util::kMinute;
  return cfg;
}

ObsRun run_observed() {
  MacroSimConfig cfg = small_config();
  obs::Tracer tracer;
  obs::TimeSeries ts;
  obs::SloMonitor slo(objectives());
  ts.set_scrape_filters({"macro.key.*", "macro.round.JOIN", "load.*"});
  cfg.obs.tracer = &tracer;
  cfg.obs.trace_session_every = 40;
  cfg.obs.trace_rotation_every = 8;
  cfg.obs.timeseries = &ts;
  cfg.obs.slo = &slo;
  cfg.obs.scrape_interval = 30 * util::kMinute;
  run_macro_sim(cfg);

  ObsRun out;
  out.slo_report = slo.report();
  out.trace_jsonl = obs::spans_to_jsonl(tracer);
  out.timeseries_csv = ts.to_csv();
  out.breakdown = analysis::analyze_critical_path(tracer).to_table();
  return out;
}

/// children[parent id] = child spans, built from the flat span list.
std::map<obs::SpanId, std::vector<const obs::Span*>> child_index(
    const obs::Tracer& tracer) {
  std::map<obs::SpanId, std::vector<const obs::Span*>> children;
  for (const obs::Span& span : tracer.spans()) {
    if (span.parent != 0) children[span.parent].push_back(&span);
  }
  return children;
}

TEST(MacroObsTest, AllFiveRoundsAppearAsCompleteSpanTrees) {
  MacroSimConfig cfg = small_config();
  obs::Tracer tracer;
  cfg.obs.tracer = &tracer;
  cfg.obs.trace_session_every = 40;
  cfg.obs.trace_rotation_every = 0;  // rotation trees tested separately
  run_macro_sim(cfg);

  const auto children = child_index(tracer);
  std::map<std::string, int> complete_rounds;
  for (const obs::Span& span : tracer.spans()) {
    if (span.parent != 0 || span.category != "client" || span.open ||
        !span.ok) {
      continue;
    }
    const auto it = children.find(span.id);
    if (it == children.end()) continue;
    bool has_request = false, has_response = false, has_serve = false;
    for (const obs::Span* child : it->second) {
      if (child->name == "hop request") has_request = true;
      if (child->name == "hop response") has_response = true;
      if (child->name.rfind("serve", 0) == 0) has_serve = true;
    }
    if (has_request && has_response && has_serve) ++complete_rounds[span.name];
  }
  for (const char* round : kRounds) {
    EXPECT_GT(complete_rounds[round], 0)
        << round << " has no complete span tree in the trace";
  }
}

TEST(MacroObsTest, KeyRotationEpochFormsFanoutSpanTree) {
  MacroSimConfig cfg = small_config();
  obs::Tracer tracer;
  cfg.obs.tracer = &tracer;
  cfg.obs.trace_rotation_every = 8;
  const MacroSimResult result = run_macro_sim(cfg);

  const auto children = child_index(tracer);
  int rotations_with_deliveries = 0;
  for (const obs::Span& span : tracer.spans()) {
    if (span.name != "KEY_ROTATION") continue;
    EXPECT_EQ(span.category, "server");
    EXPECT_EQ(span.parent, 0u);
    EXPECT_FALSE(span.open);
    const auto it = children.find(span.id);
    ASSERT_NE(it, children.end());
    util::SimTime last_delivery = span.start;
    for (const obs::Span* child : it->second) {
      EXPECT_EQ(child->name, "deliver key");
      EXPECT_EQ(child->category, "p2p");
      EXPECT_GE(child->start, span.start);
      EXPECT_LE(child->end, span.end);
      last_delivery = std::max(last_delivery, child->end);
    }
    // The rotation span covers the fan-out: it closes with the slowest
    // sampled delivery.
    EXPECT_EQ(last_delivery, span.end);
    if (!it->second.empty()) ++rotations_with_deliveries;
  }
  EXPECT_GT(rotations_with_deliveries, 0);

  // The rotation pipeline metrics ride along in the run's registry.
  const obs::Counter* issued =
      result.registry->find_counter("macro.key.rotations_issued");
  const obs::Counter* delivered =
      result.registry->find_counter("macro.key.epochs_delivered");
  const obs::LatencyHistogram* lag =
      result.registry->find_histogram("macro.key.delivery_lag_us");
  ASSERT_NE(issued, nullptr);
  ASSERT_NE(delivered, nullptr);
  ASSERT_NE(lag, nullptr);
  EXPECT_GT(issued->value(), 0u);
  EXPECT_GT(delivered->value(), issued->value());  // many peers per epoch
  EXPECT_EQ(lag->count(), delivered->value());
}

TEST(MacroObsTest, CriticalPathAccountsForEveryRound) {
  MacroSimConfig cfg = small_config();
  obs::Tracer tracer;
  cfg.obs.tracer = &tracer;
  cfg.obs.trace_session_every = 40;
  run_macro_sim(cfg);

  const analysis::CriticalPathReport report =
      analysis::analyze_critical_path(tracer);
  ASSERT_EQ(report.rounds.size(), 5u);
  for (const auto& [name, b] : report.rounds) {
    EXPECT_GT(b.rounds, 0u) << name;
    // Exact accounting: components sum to measured latency, and the
    // residual is a real non-negative client-side share (attribution
    // never double-counts the tree).
    EXPECT_EQ(b.total_us, b.network_us + b.queue_us + b.service_us +
                              b.retrans_us + b.client_us)
        << name;
    EXPECT_GT(b.network_us, 0) << name;
    EXPECT_GT(b.service_us, 0) << name;
    EXPECT_GE(b.client_us, 0) << name;
    EXPECT_GE(b.retrans_us, 0) << name;
  }
  // Only JOIN retries against refusing peers in the macro model.
  EXPECT_EQ(report.rounds.at("LOGIN1").retrans_us, 0);
  EXPECT_GT(report.rounds.at("JOIN").retrans_us, 0);
}

TEST(MacroObsTest, SloMonitorSeesRoundsAndLoadSignal) {
  MacroSimConfig cfg = small_config();
  obs::SloMonitor slo(objectives());
  obs::TimeSeries ts;
  cfg.obs.slo = &slo;
  cfg.obs.timeseries = &ts;
  cfg.obs.scrape_interval = 30 * util::kMinute;
  run_macro_sim(cfg);

  for (const char* round : kRounds) {
    const obs::SloMonitor::RoundStatus s = slo.status(round);
    EXPECT_GT(s.count, 0u) << round;
    EXPECT_GE(s.worst_burn95, 0.0);
  }
  // A day of half-hour buckets is plenty for the whole-run correlation.
  EXPECT_TRUE(slo.status("JOIN").run_r_valid);
  // The load signal the monitor correlates against is also exported.
  ASSERT_NE(ts.series("load.concurrent"), nullptr);
  EXPECT_EQ(ts.series("load.concurrent")->size(), ts.scrapes());
}

TEST(MacroObsTest, SameSeedRunsExportIdenticalBytes) {
  const ObsRun a = run_observed();
  const ObsRun b = run_observed();
  EXPECT_FALSE(a.trace_jsonl.empty());
  EXPECT_FALSE(a.timeseries_csv.empty());
  EXPECT_EQ(a.slo_report, b.slo_report);
  EXPECT_EQ(a.trace_jsonl, b.trace_jsonl);
  EXPECT_EQ(a.timeseries_csv, b.timeseries_csv);
  EXPECT_EQ(a.breakdown, b.breakdown);
}

}  // namespace
}  // namespace p2pdrm::sim
