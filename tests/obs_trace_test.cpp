// End-to-end observability tests over the networked deployment: one LOGIN1
// exchange traced across client attempts, network hops, and the serving
// manager; the interceptor chain's combine semantics; the drop-cause split;
// and the headline guarantee — two runs of the same seed export
// byte-identical traces.
#include <gtest/gtest.h>

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "fault/fault_engine.h"
#include "fault/fault_plan.h"
#include "net/deployment.h"
#include "net/envelope.h"
#include "obs/export.h"

namespace p2pdrm::net {
namespace {

using core::DrmError;
using util::kMillisecond;
using util::kMinute;
using util::kSecond;

DeploymentConfig traced_config() {
  DeploymentConfig cfg;
  cfg.seed = 11;
  cfg.tracing = true;
  cfg.default_link.latency.floor = 10 * kMillisecond;
  cfg.default_link.latency.median = 40 * kMillisecond;
  cfg.default_link.latency.sigma = 0.4;
  cfg.processing.light = 1 * kMillisecond;
  cfg.processing.heavy = 8 * kMillisecond;
  return cfg;
}

DrmError wait(Deployment& dep,
              const std::function<void(AsyncClient::Callback)>& op) {
  std::optional<DrmError> result;
  op([&result](DrmError err) { result = err; });
  const util::SimTime deadline = dep.sim().now() + 10 * kMinute;
  while (!result && dep.sim().now() < deadline && dep.sim().step()) {
  }
  return result.value_or(DrmError::kNoCapacity);
}

/// Drops the first `drops` packets of one message kind; sees everything.
class KindDropper final : public SendInterceptor {
 public:
  KindDropper(MsgKind kind, int drops) : kind_(kind), remaining_(drops) {}

  Verdict on_send(const SendContext& ctx) override {
    ++seen_;
    if (remaining_ > 0 && ctx.data != nullptr) {
      if (const auto env = Envelope::decode(*ctx.data);
          env && env->kind == kind_) {
        --remaining_;
        return {.drop = true};
      }
    }
    return {};
  }

  std::uint64_t seen() const { return seen_; }

 private:
  MsgKind kind_;
  int remaining_;
  std::uint64_t seen_ = 0;
};

/// Adds a fixed one-way delay to every packet.
class FixedDelay final : public SendInterceptor {
 public:
  explicit FixedDelay(util::SimTime delay) : delay_(delay) {}

  Verdict on_send(const SendContext&) override {
    ++seen_;
    return {.drop = false, .extra_delay = delay_};
  }

  std::uint64_t seen() const { return seen_; }

 private:
  util::SimTime delay_;
  std::uint64_t seen_ = 0;
};

std::string tag_of(const obs::Span& span, const std::string& key) {
  for (const auto& [k, v] : span.tags) {
    if (k == key) return v;
  }
  return {};
}

// --- the tentpole scenario: one retransmitted LOGIN1, traced end to end ---

TEST(TracingTest, RetransmittedLoginTracesEndToEnd) {
  auto dep = std::make_unique<Deployment>(traced_config());
  dep->add_user("alice@example.com", "pw");
  KindDropper dropper(MsgKind::kLogin1Request, 1);
  dep->network().add_interceptor(&dropper);

  AsyncClient& alice =
      dep->add_client("alice@example.com", "pw", dep->geo().region_at(0));
  EXPECT_EQ(wait(*dep, [&](auto cb) { alice.login(cb); }), DrmError::kOk);
  EXPECT_EQ(alice.retransmits(), 1u);
  dep->network().remove_interceptor(&dropper);
  EXPECT_GT(dropper.seen(), 0u);

  // The LOGIN1 *round* span: the client span whose request carried a
  // login1-req (the redirect exchange also bills to the LOGIN1 round).
  const obs::Tracer& tracer = dep->tracer();
  const obs::Span* round = nullptr;
  for (const obs::Span& s : tracer.spans()) {
    if (s.category == "client" && s.name == "LOGIN1" &&
        tag_of(s, "kind") == "login1-req") {
      round = &s;
    }
  }
  ASSERT_NE(round, nullptr);
  EXPECT_FALSE(round->open);
  EXPECT_TRUE(round->ok);
  ASSERT_EQ(round->events.size(), 1u);  // exactly one retransmission
  EXPECT_EQ(round->events[0].name, "retransmit");

  // Two attempt children: the dropped one (failed), then the one that won.
  std::vector<const obs::Span*> attempts;
  for (const obs::Span& s : tracer.spans()) {
    if (s.parent == round->id && s.name == "attempt") attempts.push_back(&s);
  }
  ASSERT_EQ(attempts.size(), 2u);
  EXPECT_FALSE(attempts[0]->ok);
  EXPECT_TRUE(attempts[1]->ok);
  EXPECT_GE(attempts[1]->start, attempts[0]->end);

  // Hops: the injected drop parents under attempt 1 (zero-length, at send
  // time), the delivered retry under attempt 2 (covering its flight).
  const obs::Span* dropped_hop = nullptr;
  const obs::Span* delivered_hop = nullptr;
  for (const obs::Span& s : tracer.spans()) {
    if (s.name != "hop login1-req") continue;
    if (tag_of(s, "fate") == "injected-drop") dropped_hop = &s;
    if (tag_of(s, "fate") == "delivered") delivered_hop = &s;
  }
  ASSERT_NE(dropped_hop, nullptr);
  ASSERT_NE(delivered_hop, nullptr);
  EXPECT_EQ(dropped_hop->parent, attempts[0]->id);
  EXPECT_EQ(dropped_hop->start, dropped_hop->end);
  EXPECT_FALSE(dropped_hop->ok);
  EXPECT_EQ(delivered_hop->parent, attempts[1]->id);
  EXPECT_GT(delivered_hop->end, delivered_hop->start);

  // Exactly one serve span (one delivery), parented under the attempt that
  // reached the manager, and the response hop flows back under it too.
  std::vector<const obs::Span*> serves;
  const obs::Span* resp_hop = nullptr;
  for (const obs::Span& s : tracer.spans()) {
    if (s.name == "serve login1-req") serves.push_back(&s);
    if (s.name == "hop login1-resp" && tag_of(s, "fate") == "delivered") {
      resp_hop = &s;
    }
  }
  ASSERT_EQ(serves.size(), 1u);
  EXPECT_EQ(serves[0]->parent, attempts[1]->id);
  EXPECT_EQ(tag_of(*serves[0], "outcome"), "ok");
  ASSERT_NE(resp_hop, nullptr);
  EXPECT_EQ(resp_hop->parent, attempts[1]->id);

  // The round's latency landed in the registry histogram.
  const obs::LatencyHistogram* hist =
      dep->registry().find_histogram("client.round.LOGIN1");
  ASSERT_NE(hist, nullptr);
  EXPECT_GE(hist->count(), 1u);
  // Nothing left dangling once the operation completed.
  EXPECT_EQ(tracer.open_spans(), 0u);
}

// --- interceptor chain semantics ---

TEST(TracingTest, ChainDelaysAddAndEveryInterceptorSeesEveryPacket) {
  DeploymentConfig cfg = traced_config();
  cfg.tracing = false;
  auto dep = std::make_unique<Deployment>(cfg);
  dep->add_user("bob@example.com", "pw");

  FixedDelay slow_a(150 * kMillisecond);
  FixedDelay slow_b(250 * kMillisecond);
  dep->network().add_interceptor(&slow_a);
  dep->network().add_interceptor(&slow_a);  // duplicate: no-op
  dep->network().add_interceptor(&slow_b);
  ASSERT_EQ(dep->network().interceptors().size(), 2u);

  AsyncClient& bob =
      dep->add_client("bob@example.com", "pw", dep->geo().region_at(0));
  EXPECT_EQ(wait(*dep, [&](auto cb) { bob.login(cb); }), DrmError::kOk);

  // Both verdicts applied to both directions: every round pays at least
  // 2 * (150 + 250) ms on top of the link latency.
  ASSERT_FALSE(bob.feedback_log().empty());
  for (const client::LatencySample& s : bob.feedback_log()) {
    EXPECT_GE(s.latency, 800 * kMillisecond) << client::to_string(s.round);
  }
  EXPECT_GT(slow_a.seen(), 0u);
  EXPECT_EQ(slow_a.seen(), slow_b.seen());
  EXPECT_EQ(slow_a.seen(), dep->network().packets_sent());

  dep->network().remove_interceptor(&slow_a);
  EXPECT_EQ(dep->network().interceptors().size(), 1u);
  dep->network().remove_interceptor(&slow_a);  // absent: no-op
  dep->network().remove_interceptor(&slow_b);
  EXPECT_TRUE(dep->network().interceptors().empty());
}

// --- drop-cause split ---

TEST(TracingTest, DropCauseSplitAccountsForEveryLoss) {
  DeploymentConfig cfg = traced_config();
  cfg.default_link.loss = 0.08;  // the links' own loss model
  cfg.client_resilience = true;
  auto dep = std::make_unique<Deployment>(cfg);
  dep->add_user("carol@example.com", "pw");
  AsyncClient& carol =
      dep->add_client("carol@example.com", "pw", dep->geo().region_at(0));
  EXPECT_EQ(wait(*dep, [&](auto cb) { carol.login(cb); }), DrmError::kOk);

  // An injected loss burst on top: both causes must be distinguishable. A
  // second client logs in *during* the burst — its first attempts are
  // injected drops, its post-burst retries cross the lossy links.
  fault::FaultPlan plan;
  plan.loss_burst(dep->now() + 1 * kSecond, 20 * kSecond, fault::AddrBlock{}, 1.0);
  fault::FaultEngine engine(*dep, plan);
  engine.arm();
  dep->add_user("dave@example.com", "pw");
  dep->run_for(2 * kSecond);  // burst active
  AsyncClient& dave =
      dep->add_client("dave@example.com", "pw", dep->geo().region_at(0));
  EXPECT_EQ(wait(*dep, [&](auto cb) { dave.login(cb); }), DrmError::kOk);
  dep->run_for(1 * kMinute);

  const Network& net = dep->network();
  EXPECT_GT(net.packets_dropped_injected(), 0u);
  EXPECT_GT(net.packets_dropped_link(), 0u);
  EXPECT_EQ(net.packets_dropped(), net.packets_dropped_injected() +
                                       net.packets_dropped_link() +
                                       net.packets_dropped_no_destination());
  EXPECT_LE(net.packets_delivered() + net.packets_dropped(),
            net.packets_sent());  // the difference is still in flight

  // The registry mirrors agree with the accessors.
  const obs::Registry& reg = dep->registry();
  ASSERT_NE(reg.find_counter("net.packets.sent"), nullptr);
  EXPECT_EQ(reg.find_counter("net.packets.sent")->value(), net.packets_sent());
  EXPECT_EQ(reg.find_counter("net.packets.delivered")->value(),
            net.packets_delivered());
  EXPECT_EQ(reg.find_counter("net.packets.dropped.injected")->value(),
            net.packets_dropped_injected());
  EXPECT_EQ(reg.find_counter("net.packets.dropped.link")->value(),
            net.packets_dropped_link());
  EXPECT_EQ(reg.find_counter("net.packets.dropped.no_destination")->value(),
            net.packets_dropped_no_destination());
}

// --- key-rotation pipeline: rotation spans, overlay fan-out, metrics ---

TEST(TracingTest, KeyRotationFansOutAsSpanTreeWithMetrics) {
  DeploymentConfig cfg = traced_config();
  cfg.seed = 17;
  auto dep = std::make_unique<Deployment>(cfg);
  const geo::RegionId region = dep->geo().region_at(0);
  dep->add_regional_channel(1, "live", region);
  dep->start_channel_server(1);  // default: rekey every minute
  for (int i = 0; i < 4; ++i) {
    const std::string email = "peer-" + std::to_string(i) + "@example.com";
    dep->add_user(email, "pw");
    AsyncClient& client = dep->add_client(email, "pw", region);
    EXPECT_EQ(wait(*dep, [&](auto cb) { client.login(cb); }), DrmError::kOk);
    EXPECT_EQ(wait(*dep, [&](auto cb) { client.switch_channel(1, cb); }),
              DrmError::kOk);
    dep->announce(client);
    client.enable_auto_renewal();
  }
  dep->run_until(dep->now() + 5 * kMinute);  // several rotation intervals

  // Rotation roots: one closed server-side span per traced epoch.
  const obs::Tracer& tracer = dep->tracer();
  std::vector<const obs::Span*> rotations;
  for (const obs::Span& s : tracer.spans()) {
    if (s.name == "KEY_ROTATION") {
      EXPECT_EQ(s.category, "server");
      EXPECT_EQ(s.parent, 0u);
      EXPECT_FALSE(s.open);
      rotations.push_back(&s);
    }
  }
  EXPECT_GE(rotations.size(), 3u);

  // Every key-blob hop and peer relay in the trace must hang (transitively)
  // under a rotation root: the fan-out is one connected tree per epoch.
  const auto root_of = [&tracer](const obs::Span& s) -> const obs::Span* {
    const obs::Span* cur = &s;
    while (cur->parent != 0) cur = tracer.find(cur->parent);
    return cur;
  };
  std::size_t key_hops = 0, relays = 0;
  for (const obs::Span& s : tracer.spans()) {
    if (s.name == "hop key-blob") {
      ++key_hops;
      EXPECT_EQ(root_of(s)->name, "KEY_ROTATION");
    }
    if (s.name == "relay key") {
      ++relays;
      EXPECT_EQ(root_of(s)->name, "KEY_ROTATION");
    }
  }
  EXPECT_GT(key_hops, 0u);
  EXPECT_GT(relays, 0u);  // the overlay has depth: someone forwarded

  // The metrics split: epochs minted at the server vs delivered at peers,
  // plus the per-delivery activation margin, all in the shared registry.
  const obs::Registry& reg = dep->registry();
  ASSERT_NE(reg.find_counter("keys.rotations_issued"), nullptr);
  EXPECT_GE(reg.find_counter("keys.rotations_issued")->value(), 3u);
  ASSERT_NE(reg.find_counter("keys.epochs_delivered"), nullptr);
  EXPECT_GE(reg.find_counter("keys.epochs_delivered")->value(), 1u);
  ASSERT_NE(reg.find_histogram("keys.delivery_margin_us"), nullptr);
  EXPECT_EQ(reg.find_histogram("keys.delivery_margin_us")->count(),
            reg.find_counter("keys.epochs_delivered")->value());

  // The Channel Manager partition's ops counters carry the same pipeline
  // for the resilience report.
  const services::OpsCounters& ops = dep->cm_partition(0).key_stats;
  EXPECT_GE(ops.rotations_issued(), 3u);
  EXPECT_GE(ops.epochs_delivered(), 1u);
  EXPECT_NE(ops.to_string().find("rotations-issued="), std::string::npos);
}

// --- the headline guarantee: byte-identical traces for the same seed ---

struct TracedRun {
  std::string jsonl;
  std::string chrome;
  std::string metrics;
};

TracedRun run_traced_scenario() {
  DeploymentConfig cfg = traced_config();
  cfg.seed = 42;
  cfg.client_resilience = true;
  auto dep = std::make_unique<Deployment>(cfg);
  const geo::RegionId region = dep->geo().region_at(0);
  dep->add_regional_channel(1, "news", region);
  dep->start_channel_server(1);
  for (int i = 0; i < 3; ++i) {
    const std::string email = "viewer-" + std::to_string(i) + "@example.com";
    dep->add_user(email, "pw");
    AsyncClient& client = dep->add_client(email, "pw", region);
    wait(*dep, [&client](AsyncClient::Callback cb) { client.login(cb); });
    wait(*dep,
         [&client](AsyncClient::Callback cb) { client.switch_channel(1, cb); });
    dep->announce(client);
    client.enable_auto_renewal();
  }

  // A loss burst mid-run, with content flowing through the overlay during
  // it, so fault-engine drops appear in the trace.
  fault::FaultPlan plan;
  plan.loss_burst(dep->now() + 5 * kSecond, 15 * kSecond, fault::AddrBlock{}, 0.7);
  fault::FaultEngine engine(*dep, plan);
  engine.arm();
  const util::Bytes payload{0x42, 0x43, 0x44};
  for (int i = 0; i < 20; ++i) {
    dep->run_for(1 * kSecond);
    dep->broadcast(1, payload);
  }
  dep->run_for(100 * kSecond);

  TracedRun out;
  out.jsonl = obs::spans_to_jsonl(dep->tracer());
  out.chrome = obs::spans_to_chrome_trace(dep->tracer());
  out.metrics = dep->registry().to_string();
  return out;
}

TEST(TracingTest, SameSeedRunsExportByteIdenticalTraces) {
  const TracedRun first = run_traced_scenario();
  const TracedRun second = run_traced_scenario();
  EXPECT_FALSE(first.jsonl.empty());
  EXPECT_EQ(first.jsonl, second.jsonl);
  EXPECT_EQ(first.chrome, second.chrome);
  EXPECT_EQ(first.metrics, second.metrics);

  // The trace actually contains the interesting material: client rounds,
  // serves, hops, and injected drops from the fault engine.
  EXPECT_NE(first.jsonl.find("\"name\":\"LOGIN1\""), std::string::npos);
  EXPECT_NE(first.jsonl.find("serve login1-req"), std::string::npos);
  EXPECT_NE(first.jsonl.find("hop "), std::string::npos);
  EXPECT_NE(first.jsonl.find("injected-drop"), std::string::npos);
  EXPECT_NE(first.metrics.find("net.packets.dropped.injected"),
            std::string::npos);
}

}  // namespace
}  // namespace p2pdrm::net
