#include <gtest/gtest.h>

#include "core/auth.h"
#include "geo/geodb.h"
#include "services/account_manager.h"
#include "services/user_manager.h"

namespace p2pdrm::services {
namespace {

using core::DrmError;
using util::kMinute;

/// Fixture wiring an Account Manager, synthetic geo, and a User Manager,
/// plus a manual login driver that can tamper with any step.
class UserManagerTest : public ::testing::Test {
 protected:
  UserManagerTest()
      : rng_(900), geo_(rng_, {.num_regions = 2, .prefixes_per_region = 4}) {
    UserManagerConfig config;
    config.ticket_lifetime = 30 * kMinute;
    domain_ = std::make_shared<UserManagerDomain>(
        config, crypto::generate_rsa_keypair(rng_, 512), rng_.bytes(32));
    binary_ = rng_.bytes(8192);
    domain_->reference_binaries[1] = binary_;
    um_ = std::make_unique<UserManager>(domain_, &geo_.db(), rng_.fork());
    accounts_ = std::make_unique<AccountManager>(
        [this](const UserProvisioning& p) { um_->provision(p); });
    accounts_->create_account("alice@example.com", "password1", 0);
    client_keys_ = crypto::generate_rsa_keypair(rng_, 512);
    addr_ = geo_.sample_address(rng_, 100);
  }

  core::Login1Request login1_request(const std::string& email = "alice@example.com") {
    core::Login1Request req;
    req.email = email;
    req.client_public_key = client_keys_.pub;
    req.client_version = 1;
    return req;
  }

  struct Login1Output {
    util::Bytes nonce;
    core::ChecksumParams params;
    core::Challenge challenge;
  };

  /// Decrypt the LOGIN1 response like the genuine client would.
  std::optional<Login1Output> open_login1(const core::Login1Response& resp,
                                          const std::string& password) {
    const auto payload =
        core::decrypt_with_shp(core::password_hash(password), resp.encrypted_params);
    if (!payload) return std::nullopt;
    util::WireReader r(*payload);
    Login1Output out;
    out.nonce = r.raw(core::kNonceSize);
    out.params = core::ChecksumParams::decode(r);
    (void)r.i64();
    out.challenge = resp.challenge;
    out.challenge.nonce = out.nonce;
    return out;
  }

  core::Login2Request login2_request(const Login1Output& opened,
                                     const util::Bytes& binary,
                                     const crypto::RsaKeyPair& keys) {
    core::Login2Request req;
    req.email = "alice@example.com";
    req.client_public_key = keys.pub;
    req.client_version = 1;
    req.params = opened.params;
    req.checksum = core::compute_attestation_checksum(binary, opened.params);
    req.challenge = opened.challenge;
    util::Bytes signed_payload = opened.challenge.nonce;
    signed_payload.insert(signed_payload.end(), req.checksum.begin(), req.checksum.end());
    req.proof = crypto::rsa_sign(keys.priv, signed_payload);
    return req;
  }

  /// Full honest login; returns the response.
  core::Login2Response do_login(util::SimTime now) {
    const core::Login1Response r1 = um_->handle_login1(login1_request(), addr_, now);
    EXPECT_EQ(r1.error, DrmError::kOk);
    const auto opened = open_login1(r1, "password1");
    EXPECT_TRUE(opened.has_value());
    return um_->handle_login2(login2_request(*opened, binary_, client_keys_), addr_, now);
  }

  crypto::SecureRandom rng_;
  geo::SyntheticGeo geo_;
  std::shared_ptr<UserManagerDomain> domain_;
  std::unique_ptr<UserManager> um_;
  std::unique_ptr<AccountManager> accounts_;
  util::Bytes binary_;
  crypto::RsaKeyPair client_keys_;
  util::NetAddr addr_;
};

TEST_F(UserManagerTest, HappyPathIssuesTicket) {
  const core::Login2Response resp = do_login(1000);
  ASSERT_EQ(resp.error, DrmError::kOk);
  ASSERT_TRUE(resp.ticket.has_value());
  EXPECT_TRUE(resp.ticket->verify(domain_->keys.pub));
  EXPECT_EQ(resp.ticket->ticket.user_in, um_->user_in_of("alice@example.com"));
  EXPECT_EQ(resp.ticket->ticket.client_public_key, client_keys_.pub);
  EXPECT_EQ(resp.ticket->ticket.expiry_time, 1000 + 30 * kMinute);
}

TEST_F(UserManagerTest, TicketCarriesTableIAttributes) {
  const core::Login2Response resp = do_login(1000);
  ASSERT_TRUE(resp.ticket.has_value());
  const core::AttributeSet& attrs = resp.ticket->ticket.attributes;
  // Table I: NetAddr, Region, AS, Version (Subscription when subscribed).
  ASSERT_NE(attrs.find(core::kAttrNetAddr), nullptr);
  EXPECT_EQ(attrs.find(core::kAttrNetAddr)->value.value(), util::to_string(addr_));
  ASSERT_NE(attrs.find(core::kAttrRegion), nullptr);
  EXPECT_EQ(attrs.find(core::kAttrRegion)->value.value(), "100");
  ASSERT_NE(attrs.find(core::kAttrAs), nullptr);
  ASSERT_NE(attrs.find(core::kAttrVersion), nullptr);
  EXPECT_EQ(attrs.find(core::kAttrVersion)->value.value(), "1");
  EXPECT_EQ(attrs.find(core::kAttrSubscription), nullptr);
}

TEST_F(UserManagerTest, SubscriptionAttributesCarryWindows) {
  accounts_->subscribe("alice@example.com",
                       {"101", util::kNullTime, 100 * util::kHour});
  const core::Login2Response resp = do_login(1000);
  ASSERT_TRUE(resp.ticket.has_value());
  const core::Attribute* sub =
      resp.ticket->ticket.attributes.find(core::kAttrSubscription);
  ASSERT_NE(sub, nullptr);
  EXPECT_EQ(sub->value.value(), "101");
  EXPECT_EQ(sub->etime, 100 * util::kHour);
}

TEST_F(UserManagerTest, TicketExpiryCappedByAttributeEtime) {
  // A subscription expiring in 5 minutes caps the 30-minute ticket (§IV-B).
  accounts_->subscribe("alice@example.com", {"101", util::kNullTime, 1000 + 5 * kMinute});
  const core::Login2Response resp = do_login(1000);
  ASSERT_TRUE(resp.ticket.has_value());
  EXPECT_EQ(resp.ticket->ticket.expiry_time, 1000 + 5 * kMinute);
}

TEST_F(UserManagerTest, ExpiredSubscriptionOmitted) {
  accounts_->subscribe("alice@example.com", {"101", util::kNullTime, 500});
  const core::Login2Response resp = do_login(1000 * kMinute);
  ASSERT_TRUE(resp.ticket.has_value());
  EXPECT_EQ(resp.ticket->ticket.attributes.find(core::kAttrSubscription), nullptr);
}

TEST_F(UserManagerTest, UnknownUserGetsUndecryptableDecoy) {
  // Anti-oracle: an unknown email earns a decoy LOGIN1 that is
  // shape-identical to a real one (kOk, encrypted payload, challenge) but
  // can never be decrypted or completed — the manager path never admits
  // whether the account exists.
  const core::Login1Response r1 =
      um_->handle_login1(login1_request("bob@example.com"), addr_, 0);
  EXPECT_EQ(r1.error, DrmError::kOk);
  EXPECT_FALSE(r1.encrypted_params.empty());
  EXPECT_FALSE(open_login1(r1, "password1").has_value());
  EXPECT_FALSE(open_login1(r1, "bobs-own-password").has_value());
}

TEST_F(UserManagerTest, SuspendedUserCannotLogIn) {
  accounts_->set_suspended("alice@example.com", true);
  // The decoy swallows the suspension too: LOGIN1 looks normal but even the
  // account's real password no longer opens it, so login can't complete.
  const core::Login1Response r1 = um_->handle_login1(login1_request(), addr_, 0);
  EXPECT_EQ(r1.error, DrmError::kOk);
  EXPECT_FALSE(open_login1(r1, "password1").has_value());
  accounts_->set_suspended("alice@example.com", false);
  EXPECT_EQ(do_login(0).error, DrmError::kOk);
}

TEST_F(UserManagerTest, NoAccountExistenceOracleOnLoginPath) {
  // Pin the constant shape end to end: probing LOGIN1 with a real vs a
  // bogus email yields the same error, the same field sizes, and the same
  // downstream failure envelope when the prober pushes a forged LOGIN2.
  const core::Login1Response real =
      um_->handle_login1(login1_request("alice@example.com"), addr_, 0);
  const core::Login1Response fake =
      um_->handle_login1(login1_request("bob@example.com"), addr_, 0);
  EXPECT_EQ(real.error, fake.error);
  EXPECT_EQ(real.encrypted_params.size(), fake.encrypted_params.size());
  EXPECT_EQ(real.challenge.mac.size(), fake.challenge.mac.size());
  EXPECT_EQ(real.challenge.nonce.size(), fake.challenge.nonce.size());

  // Forged LOGIN2 (guessed nonce, since neither payload opens without the
  // password): both probes earn kChallengeInvalid — indistinguishable.
  const auto probe = [&](const std::string& email,
                         const core::Login1Response& r1) {
    Login1Output guessed;
    guessed.nonce = rng_.bytes(core::kNonceSize);
    guessed.challenge = r1.challenge;
    guessed.challenge.nonce = guessed.nonce;
    core::Login2Request req = login2_request(guessed, binary_, client_keys_);
    req.email = email;
    return um_->handle_login2(req, addr_, 10).error;
  };
  EXPECT_EQ(probe("alice@example.com", real), DrmError::kChallengeInvalid);
  EXPECT_EQ(probe("bob@example.com", fake), DrmError::kChallengeInvalid);

  // Deterministic decoy: the same bogus email probed twice keeps the same
  // shape (no per-probe entropy an attacker could average over), while the
  // encrypted payload itself still differs per response nonce.
  const core::Login1Response fake2 =
      um_->handle_login1(login1_request("bob@example.com"), addr_, 0);
  EXPECT_EQ(fake2.error, DrmError::kOk);
  EXPECT_EQ(fake2.encrypted_params.size(), fake.encrypted_params.size());
}

TEST_F(UserManagerTest, OldClientVersionRejected) {
  core::Login1Request req = login1_request();
  req.client_version = 0;
  EXPECT_EQ(um_->handle_login1(req, addr_, 0).error, DrmError::kVersionTooOld);
}

TEST_F(UserManagerTest, UnknownBinaryVersionRejected) {
  core::Login1Request req = login1_request();
  req.client_version = 99;  // >= minimum but no reference binary registered
  EXPECT_EQ(um_->handle_login1(req, addr_, 0).error, DrmError::kVersionTooOld);
}

TEST_F(UserManagerTest, WrongPasswordCannotCompleteLogin) {
  const core::Login1Response r1 = um_->handle_login1(login1_request(), addr_, 0);
  ASSERT_EQ(r1.error, DrmError::kOk);
  // Decryption with the wrong password fails outright.
  EXPECT_FALSE(open_login1(r1, "wrong-password").has_value());
  // A client that guesses a nonce anyway fails the challenge MAC.
  auto opened = open_login1(r1, "password1");
  ASSERT_TRUE(opened.has_value());
  opened->challenge.nonce = rng_.bytes(core::kNonceSize);  // wrong nonce
  const core::Login2Response r2 =
      um_->handle_login2(login2_request(*opened, binary_, client_keys_), addr_, 10);
  EXPECT_EQ(r2.error, DrmError::kChallengeInvalid);
}

TEST_F(UserManagerTest, Login1NonceNotDisclosedInClear) {
  const core::Login1Response r1 = um_->handle_login1(login1_request(), addr_, 0);
  EXPECT_TRUE(r1.challenge.nonce.empty());
}

TEST_F(UserManagerTest, ModifiedClientFailsAttestation) {
  const core::Login1Response r1 = um_->handle_login1(login1_request(), addr_, 0);
  const auto opened = open_login1(r1, "password1");
  ASSERT_TRUE(opened.has_value());
  util::Bytes tampered_binary = binary_;
  for (std::size_t i = 0; i < tampered_binary.size(); i += 64) {
    tampered_binary[i] ^= 0x5a;  // patch throughout so any window catches it
  }
  const core::Login2Response r2 =
      um_->handle_login2(login2_request(*opened, tampered_binary, client_keys_), addr_, 10);
  EXPECT_EQ(r2.error, DrmError::kAttestationFailed);
}

TEST_F(UserManagerTest, StolenChallengeUnusableWithDifferentKey) {
  // An attacker who captured the LOGIN1 exchange cannot substitute its own
  // key pair: the challenge MAC binds the original public key.
  const core::Login1Response r1 = um_->handle_login1(login1_request(), addr_, 0);
  const auto opened = open_login1(r1, "password1");
  ASSERT_TRUE(opened.has_value());
  const crypto::RsaKeyPair attacker = crypto::generate_rsa_keypair(rng_, 512);
  const core::Login2Response r2 =
      um_->handle_login2(login2_request(*opened, binary_, attacker), addr_, 10);
  EXPECT_EQ(r2.error, DrmError::kChallengeInvalid);
}

TEST_F(UserManagerTest, WrongProofSignatureRejected) {
  const core::Login1Response r1 = um_->handle_login1(login1_request(), addr_, 0);
  const auto opened = open_login1(r1, "password1");
  ASSERT_TRUE(opened.has_value());
  core::Login2Request req = login2_request(*opened, binary_, client_keys_);
  req.proof[0] ^= 0x01;
  EXPECT_EQ(um_->handle_login2(req, addr_, 10).error, DrmError::kBadCredentials);
}

TEST_F(UserManagerTest, StaleChallengeRejected) {
  const core::Login1Response r1 = um_->handle_login1(login1_request(), addr_, 0);
  const auto opened = open_login1(r1, "password1");
  ASSERT_TRUE(opened.has_value());
  const core::Login2Request req = login2_request(*opened, binary_, client_keys_);
  EXPECT_EQ(um_->handle_login2(req, addr_, 10 * kMinute).error,
            DrmError::kChallengeInvalid);
}

TEST_F(UserManagerTest, StatelessAcrossFarmInstances) {
  // LOGIN1 against one farm instance, LOGIN2 against another (§V): works
  // because they share the domain state and the challenge is self-contained.
  UserManager other_instance(domain_, &geo_.db(), rng_.fork());
  const core::Login1Response r1 = um_->handle_login1(login1_request(), addr_, 0);
  const auto opened = open_login1(r1, "password1");
  ASSERT_TRUE(opened.has_value());
  const core::Login2Response r2 = other_instance.handle_login2(
      login2_request(*opened, binary_, client_keys_), addr_, 10);
  EXPECT_EQ(r2.error, DrmError::kOk);
  ASSERT_TRUE(r2.ticket.has_value());
  EXPECT_TRUE(r2.ticket->verify(domain_->keys.pub));
}

TEST_F(UserManagerTest, UserInStableAcrossLogins) {
  const core::Login2Response a = do_login(0);
  const core::Login2Response b = do_login(5 * kMinute);
  ASSERT_TRUE(a.ticket && b.ticket);
  EXPECT_EQ(a.ticket->ticket.user_in, b.ticket->ticket.user_in);
}

TEST_F(UserManagerTest, UtimesFlowFromChannelAttributeList) {
  core::AttributeSet channel_attrs;
  core::Attribute region;
  region.name = core::kAttrRegion;
  region.value = core::AttrValue::of("100");
  region.utime = 777;
  channel_attrs.add(region);
  um_->update_channel_attributes(channel_attrs);

  const core::Login2Response resp = do_login(1000);
  ASSERT_TRUE(resp.ticket.has_value());
  const core::Attribute* user_region =
      resp.ticket->ticket.attributes.find(core::kAttrRegion);
  ASSERT_NE(user_region, nullptr);
  EXPECT_EQ(user_region->utime, 777);
}

TEST_F(UserManagerTest, AccountManagerPasswordCheck) {
  EXPECT_TRUE(accounts_->check_password("alice@example.com", "password1"));
  EXPECT_FALSE(accounts_->check_password("alice@example.com", "nope"));
  EXPECT_FALSE(accounts_->check_password("ghost@example.com", "password1"));
}

}  // namespace
}  // namespace p2pdrm::services
