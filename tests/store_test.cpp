// Durable farm state (src/store): journal append/sync/crash semantics,
// torn-tail replay, snapshot round-trips, and the FarmStore replication
// protocol (watermarks, anti-entropy, full-state transfer). Plus the
// headline determinism property: recovering a journaled ViewingLog yields
// a byte-identical encode() — replay is deterministic.
#include <gtest/gtest.h>

#include <string>

#include "obs/registry.h"
#include "services/channel_manager.h"
#include "services/durable_ops.h"
#include "store/farm_store.h"
#include "store/journal.h"
#include "store/snapshot.h"
#include "util/bytes.h"

namespace p2pdrm::store {
namespace {

using util::Bytes;
using util::bytes_of;

// --- CRC and journal record format ---

TEST(JournalTest, Crc32MatchesReferenceVector) {
  // The IEEE 802.3 check value: crc32("123456789") == 0xcbf43926.
  EXPECT_EQ(crc32(bytes_of("123456789")), 0xcbf43926u);
  EXPECT_EQ(crc32({}), 0u);
}

TEST(JournalTest, AppendSyncReplayRoundTrips) {
  Journal j;
  EXPECT_EQ(j.append(bytes_of("alpha")), 1u);
  EXPECT_EQ(j.append(bytes_of("beta")), 2u);
  EXPECT_EQ(j.append(bytes_of("")), 3u);  // empty payloads are legal
  EXPECT_EQ(j.unsynced_records(), 3u);
  j.sync();
  EXPECT_EQ(j.unsynced_records(), 0u);

  const Journal::ReplayResult r = Journal::replay(j.durable());
  ASSERT_EQ(r.records.size(), 3u);
  EXPECT_EQ(r.records[0].seq, 1u);
  EXPECT_EQ(r.records[0].payload, bytes_of("alpha"));
  EXPECT_EQ(r.records[1].payload, bytes_of("beta"));
  EXPECT_TRUE(r.records[2].payload.empty());
  EXPECT_TRUE(r.clean);
  EXPECT_EQ(r.valid_bytes, j.durable_bytes());
  EXPECT_EQ(r.corrupt_bytes, 0u);
}

TEST(JournalTest, CrashLosesStagedTail) {
  Journal j;
  j.append(bytes_of("durable"));
  j.sync();
  j.append(bytes_of("staged-1"));
  j.append(bytes_of("staged-2"));
  j.crash();  // clean crash: the whole staged tail vanishes

  const Journal::ReplayResult r = j.recover();
  ASSERT_EQ(r.records.size(), 1u);
  EXPECT_EQ(r.records[0].payload, bytes_of("durable"));
  EXPECT_TRUE(r.clean);
  // Sequence numbering continues after the last surviving record.
  EXPECT_EQ(j.append(bytes_of("after")), 2u);
}

TEST(JournalTest, TornTailStopsAtLastValidRecord) {
  Journal j;
  j.append(bytes_of("one"));
  j.append(bytes_of("two"));
  j.sync();
  j.append(bytes_of("the record that tore in half"));
  const std::size_t torn = j.staged_bytes() / 2;
  j.crash(torn);  // half the staged bytes land on the media anyway

  obs::Registry reg;
  const Journal::ReplayResult r = j.recover(&reg);
  ASSERT_EQ(r.records.size(), 2u);
  EXPECT_EQ(r.records[1].payload, bytes_of("two"));
  EXPECT_FALSE(r.clean);
  EXPECT_EQ(r.corrupt_bytes, torn);
  ASSERT_NE(reg.find_counter("store.replay.corrupt"), nullptr);
  EXPECT_EQ(reg.find_counter("store.replay.corrupt")->value(), 1u);
  EXPECT_EQ(reg.find_counter("store.replay.corrupt_bytes")->value(), torn);

  // recover() truncated the media to the valid prefix: appends continue
  // cleanly and a second replay is clean.
  EXPECT_EQ(j.durable_bytes(), r.valid_bytes);
  EXPECT_EQ(j.append(bytes_of("three")), 3u);
  j.sync();
  const Journal::ReplayResult again = Journal::replay(j.durable());
  EXPECT_TRUE(again.clean);
  ASSERT_EQ(again.records.size(), 3u);
  EXPECT_EQ(again.records[2].seq, 3u);
}

TEST(JournalTest, BitFlipInvalidatesRecordAndEverythingAfter) {
  Journal j;
  j.append(bytes_of("first"));
  j.append(bytes_of("second"));
  j.append(bytes_of("third"));
  j.sync();
  Bytes image = j.durable();
  // Flip one payload byte of the second record: its CRC no longer checks
  // out, so replay keeps only the first record (no resynchronization —
  // a WAL trusts nothing past the first bad record).
  image[Journal::kHeaderSize + 5 + Journal::kHeaderSize + 2] ^= 0x01;
  const Journal::ReplayResult r = Journal::replay(image);
  ASSERT_EQ(r.records.size(), 1u);
  EXPECT_EQ(r.records[0].payload, bytes_of("first"));
  EXPECT_FALSE(r.clean);
}

TEST(JournalTest, WipeDestroysMediaButKeepsNumbering) {
  Journal j;
  j.append(bytes_of("gone"));
  j.sync();
  j.wipe();
  EXPECT_EQ(j.durable_bytes(), 0u);
  EXPECT_TRUE(Journal::replay(j.durable()).records.empty());
  EXPECT_EQ(j.append(bytes_of("next")), 2u);  // no seq reuse after a wipe
}

TEST(JournalTest, CompactDropsRecordsButKeepsNumbering) {
  Journal j;
  j.append(bytes_of("a"));
  j.append(bytes_of("b"));
  j.sync();
  j.compact();
  EXPECT_EQ(j.durable_bytes(), 0u);
  EXPECT_EQ(j.append(bytes_of("c")), 3u);
  j.sync();
  const Journal::ReplayResult r = Journal::replay(j.durable());
  ASSERT_EQ(r.records.size(), 1u);
  EXPECT_EQ(r.records[0].seq, 3u);
}

// --- snapshot format ---

TEST(SnapshotTest, EncodeDecodeRoundTrips) {
  Snapshot snap;
  snap.last_seq = 41;
  snap.state = bytes_of("the whole state machine");
  const Bytes wire = snap.encode();
  const Snapshot back = Snapshot::decode(wire);
  EXPECT_EQ(back.last_seq, 41u);
  EXPECT_EQ(back.state, snap.state);
}

TEST(SnapshotTest, CorruptionRejected) {
  Snapshot snap;
  snap.last_seq = 7;
  snap.state = bytes_of("state");
  const Bytes wire = snap.encode();

  for (std::size_t pos = 0; pos < wire.size(); ++pos) {
    Bytes mutated = wire;
    mutated[pos] ^= 0xff;
    EXPECT_FALSE(Snapshot::try_decode(mutated).has_value()) << "pos " << pos;
  }
  for (std::size_t len = 0; len < wire.size(); ++len) {
    EXPECT_FALSE(Snapshot::try_decode({wire.data(), len}).has_value());
  }
  EXPECT_THROW(Snapshot::decode({}), util::WireError);
}

TEST(ReplicatedOpTest, RoundTripAndRejects) {
  ReplicatedOp op;
  op.origin = 2001;
  op.origin_seq = 17;
  op.payload = bytes_of("entry");
  const ReplicatedOp back = ReplicatedOp::decode(op.encode());
  EXPECT_EQ(back.origin, op.origin);
  EXPECT_EQ(back.origin_seq, op.origin_seq);
  EXPECT_EQ(back.payload, op.payload);

  ReplicatedOp zero;
  zero.origin_seq = 0;
  EXPECT_FALSE(ReplicatedOp::try_decode(zero.encode()).has_value());
  Bytes trailing = op.encode();
  trailing.push_back(0);
  EXPECT_FALSE(ReplicatedOp::try_decode(trailing).has_value());
}

// --- FarmStore replication protocol ---

// Toy state machine: ordered concatenation of applied payloads, so apply
// order (and nothing else) determines the serialized state.
struct ToyState {
  std::string text;
};

void bind(FarmStore& st, ToyState& state) {
  st.set_state_machine(
      [&state](util::BytesView p) { state.text.append(p.begin(), p.end()); },
      [&state] { return bytes_of(state.text); },
      [&state](util::BytesView s) { state.text.assign(s.begin(), s.end()); });
}

// The ownership pattern FarmStore expects: the owner mutates its in-memory
// state first, then journals the op (submit never calls apply_).
ReplicatedOp submit(FarmStore& st, ToyState& state, const char* payload) {
  state.text += payload;
  return st.submit(bytes_of(payload));
}

TEST(FarmStoreTest, IngestEnforcesPerOriginContiguity) {
  ToyState sa, sb;
  FarmStore a(1), b(2);
  bind(a, sa);
  bind(b, sb);

  const ReplicatedOp op1 = submit(a, sa, "x");
  const ReplicatedOp op2 = submit(a, sa, "y");
  EXPECT_EQ(b.ingest(op2), FarmStore::IngestResult::kGap);  // 2 before 1
  EXPECT_EQ(b.ingest(op1), FarmStore::IngestResult::kApplied);
  EXPECT_EQ(b.ingest(op1), FarmStore::IngestResult::kDuplicate);
  EXPECT_EQ(b.ingest(op2), FarmStore::IngestResult::kApplied);
  EXPECT_EQ(sb.text, "xy");
  EXPECT_EQ(b.watermark(1), 2u);
}

TEST(FarmStoreTest, CrashRecoverReplaysSyncedPrefixOnly) {
  ToyState state;
  FarmStore st(1);
  bind(st, state);
  submit(st, state, "a");
  submit(st, state, "b");
  st.sync();
  submit(st, state, "c");  // staged, never synced
  st.crash();
  state.text.clear();  // the RAM image died with the box

  EXPECT_EQ(st.recover(), 2u);
  EXPECT_EQ(state.text, "ab");
  EXPECT_EQ(st.local_seq(), 2u);
  // The lost op's sequence number is reissued — it never existed.
  EXPECT_EQ(st.submit(bytes_of("c2")).origin_seq, 3u);
}

TEST(FarmStoreTest, TornCrashRecoversCleanPrefix) {
  ToyState state;
  obs::Registry reg;
  FarmStore st(1);
  st.bind_registry(&reg);
  bind(st, state);
  submit(st, state, "kept");
  st.sync();
  submit(st, state, "torn away");
  st.crash(st.journal().staged_bytes() / 2);
  state.text.clear();

  EXPECT_EQ(st.recover(), 1u);
  EXPECT_EQ(state.text, "kept");
  ASSERT_NE(reg.find_counter("store.replay.corrupt"), nullptr);
  EXPECT_EQ(reg.find_counter("store.replay.corrupt")->value(), 1u);
}

TEST(FarmStoreTest, OwnOpsComeHomeViaAntiEntropy) {
  // A ships an op to B, then crashes before fsync: the op survives only on
  // B. A's recovery pulls its own op back and must not reuse its seq.
  ToyState sa, sb;
  FarmStore a(1), b(2);
  bind(a, sa);
  bind(b, sb);

  const ReplicatedOp op1 = submit(a, sa, "p");
  a.sync();
  ASSERT_EQ(b.ingest(op1), FarmStore::IngestResult::kApplied);
  const ReplicatedOp op2 = submit(a, sa, "q");  // staged on A...
  ASSERT_EQ(b.ingest(op2), FarmStore::IngestResult::kApplied);  // ...durable on B
  b.sync();
  a.crash();
  sa.text.clear();

  EXPECT_EQ(a.recover(), 1u);
  EXPECT_EQ(a.local_seq(), 1u);
  EXPECT_EQ(a.catch_up_from(b), 1u);  // op2 comes home
  EXPECT_EQ(sa.text, "pq");
  EXPECT_EQ(a.local_seq(), 2u);
  EXPECT_EQ(a.submit(bytes_of("r")).origin_seq, 3u);  // no seq reuse
}

TEST(FarmStoreTest, SnapshotCompactsJournalAndRecoveryUsesBoth) {
  ToyState state;
  obs::Registry reg;
  FarmStore::Config cfg;
  cfg.snapshot_every = 4;
  FarmStore st(1, cfg);
  st.bind_registry(&reg);
  bind(st, state);
  for (const char* p : {"a", "b", "c", "d", "e", "f"}) submit(st, state, p);
  st.sync();
  // 4 ops folded into the snapshot, 2 still in the journal.
  ASSERT_NE(reg.find_counter("store.snapshots.taken"), nullptr);
  EXPECT_EQ(reg.find_counter("store.snapshots.taken")->value(), 1u);
  EXPECT_FALSE(st.snapshot_bytes().empty());

  st.crash();
  state.text.clear();
  EXPECT_EQ(st.recover(), 2u);  // only the post-snapshot tail replays
  EXPECT_EQ(state.text, "abcdef");
  EXPECT_EQ(st.local_seq(), 6u);
}

TEST(FarmStoreTest, TrimmedCacheForcesFullStateTransfer) {
  // The source compacted past the ops a blank replica needs: incremental
  // anti-entropy hits a gap and the replica adopts the full state instead.
  ToyState ssrc, sdst;
  obs::Registry reg;
  FarmStore::Config cfg;
  cfg.snapshot_every = 2;  // aggressive compaction trims the ops cache
  FarmStore src(1, cfg), dst(2);
  src.bind_registry(&reg);
  dst.bind_registry(&reg);
  bind(src, ssrc);
  bind(dst, sdst);
  for (const char* p : {"a", "b", "c", "d", "e", "f"}) submit(src, ssrc, p);

  EXPECT_GE(dst.catch_up_from(src), 1u);
  EXPECT_EQ(sdst.text, "abcdef");
  EXPECT_EQ(dst.watermark(1), 6u);
  ASSERT_NE(reg.find_counter("store.recovery.full_transfers"), nullptr);
  EXPECT_EQ(reg.find_counter("store.recovery.full_transfers")->value(), 1u);
}

TEST(FarmStoreTest, NoFullTransferWhenBothSidesHoldUniqueOps) {
  // Divergent multi-master histories merge op-by-op; neither side may
  // clobber the other with a full-state adoption.
  ToyState sa, sb;
  FarmStore a(1), b(2);
  bind(a, sa);
  bind(b, sb);
  submit(a, sa, "A1");
  submit(b, sb, "B1");
  submit(b, sb, "B2");

  a.catch_up_from(b);
  b.catch_up_from(a);
  // Watermarks converge even though apply orders differ.
  EXPECT_EQ(a.watermarks(), b.watermarks());
  EXPECT_EQ(a.watermark(1), 1u);
  EXPECT_EQ(a.watermark(2), 2u);
  EXPECT_NE(sa.text.find("A1"), std::string::npos);
  EXPECT_NE(sa.text.find("B1"), std::string::npos);
  EXPECT_NE(sb.text.find("A1"), std::string::npos);
}

TEST(FarmStoreTest, WipedReplicaRebuildsEntirelyFromSibling) {
  ToyState sa, sb;
  FarmStore a(1), b(2);
  bind(a, sa);
  bind(b, sb);
  for (const char* p : {"a", "b", "c"}) {
    const ReplicatedOp op = submit(a, sa, p);
    b.ingest(op);
  }
  a.sync();
  b.sync();
  a.wipe();
  sa.text.clear();
  EXPECT_EQ(a.recover(), 0u);  // nothing local survives a wipe
  EXPECT_EQ(sa.text, "");
  EXPECT_GE(a.catch_up_from(b), 3u);
  EXPECT_EQ(sa.text, "abc");
  EXPECT_EQ(a.local_seq(), 3u);  // own ops restored the issue counter
}

// --- ViewingLog durability: deterministic replay, exact capped aggregates ---

services::ViewingLog::Entry entry(util::UserIN user, util::ChannelId channel,
                                  std::uint32_t ip, util::SimTime time,
                                  bool renewal = false) {
  services::ViewingLog::Entry e;
  e.user_in = user;
  e.channel = channel;
  e.addr.ip = ip;
  e.time = time;
  e.renewal = renewal;
  return e;
}

TEST(ViewingLogDurabilityTest, EncodeDecodeByteIdentical) {
  services::ViewingLog log;
  log.record(entry(1, 10, 0x0a000001, 100));
  log.record(entry(2, 10, 0x0a000002, 200));
  log.record(entry(1, 10, 0x0a000001, 300, /*renewal=*/true));
  log.record(entry(1, 11, 0x0a000003, 400));
  const Bytes first = log.encode();
  const Bytes second = services::ViewingLog::decode(first).encode();
  EXPECT_EQ(first, second);
}

TEST(ViewingLogDurabilityTest, JournalReplayYieldsByteIdenticalLog) {
  // The golden determinism property the recovery path rests on: a replica
  // rebuilt by snapshot + journal replay encodes to the same bytes as the
  // log that never crashed.
  services::ViewingLog live;
  services::ViewingLog replica;
  FarmStore st(2001);
  st.set_state_machine(
      [&replica](util::BytesView p) {
        replica.record(services::decode_viewing_entry(p));
      },
      [&replica] { return replica.encode(); },
      [&replica](util::BytesView s) {
        replica = s.empty() ? services::ViewingLog()
                            : services::ViewingLog::decode(s);
      });

  for (int i = 0; i < 20; ++i) {
    const services::ViewingLog::Entry e =
        entry(static_cast<util::UserIN>(1 + i % 3),
              static_cast<util::ChannelId>(10 + i % 2),
              0x0a000000u + static_cast<std::uint32_t>(i), 100 * (i + 1),
              /*renewal=*/i % 4 == 3);
    live.record(e);
    replica.record(e);
    st.submit(services::encode_viewing_entry(e));
  }
  st.sync();
  st.crash();
  replica = services::ViewingLog();  // RAM image gone

  EXPECT_EQ(st.recover(), 20u);
  EXPECT_EQ(replica.encode(), live.encode());
  EXPECT_EQ(replica.size(), live.size());
  ASSERT_NE(replica.latest(1, 10), nullptr);
  EXPECT_EQ(replica.latest(1, 10)->addr, live.latest(1, 10)->addr);
}

TEST(ViewingLogDurabilityTest, AuditCapKeepsAggregatesExact) {
  services::ViewingLog log;
  log.set_audit_cap(8);
  // 30 fresh views over 6 live (user, channel) pairs plus 10 renewals: far
  // past the cap, but the protected live-latest entries still fit under it
  // (the cap never evicts an entry the renewal index points at).
  for (int i = 0; i < 30; ++i) {
    log.record(entry(static_cast<util::UserIN>(1 + i % 3),
                     static_cast<util::ChannelId>(i % 2 == 0 ? 10 : 11),
                     0x0a000000u + static_cast<std::uint32_t>(i), 50 * (i + 1)));
    if (i % 3 == 0) {
      log.record(entry(static_cast<util::UserIN>(1 + i % 3),
                       static_cast<util::ChannelId>(i % 2 == 0 ? 10 : 11),
                       0x0a000000u + static_cast<std::uint32_t>(i),
                       50 * (i + 1) + 1, /*renewal=*/true));
    }
  }
  EXPECT_EQ(log.size(), 40u);  // total ever recorded, rotation included
  EXPECT_LE(log.audit_trail().size(), 8u);
  EXPECT_GT(log.rotated_count(), 0u);
  // Per-channel fresh-view counts stay exact via the retained aggregates.
  const std::map<util::ChannelId, std::size_t> views = log.views_per_channel();
  EXPECT_EQ(views.at(10), 15u);
  EXPECT_EQ(views.at(11), 15u);
  // The renewal index never rotates out: every live (user, channel) pair
  // still resolves.
  for (util::UserIN u = 1; u <= 3; ++u) {
    EXPECT_NE(log.latest(u, 10), nullptr);
    EXPECT_NE(log.latest(u, 11), nullptr);
  }
}

TEST(ViewingLogDurabilityTest, CapSurvivesEncodeDecodeWithExactCounts) {
  services::ViewingLog log;
  log.set_audit_cap(4);
  for (int i = 0; i < 12; ++i) {
    log.record(entry(1, 10, 0x0a000001, 10 * (i + 1)));
  }
  const std::map<util::ChannelId, std::size_t> before = log.views_per_channel();
  services::ViewingLog back = services::ViewingLog::decode(log.encode());
  // The durable form carries the rotated aggregates; the cap itself is
  // deployment config and is re-applied by the owner.
  back.set_audit_cap(4);
  EXPECT_EQ(back.views_per_channel(), before);
  EXPECT_EQ(back.size(), log.size());
}

}  // namespace
}  // namespace p2pdrm::store
