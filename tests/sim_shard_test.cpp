// The sharded engine's tentpole guarantee: output is a pure function of
// (config, seed, shards) — the worker thread count buys wall-clock only and
// never changes a single output byte. Plus the supporting pieces: config
// validation, deterministic reservoir merging, and the channel partition.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "obs/export.h"
#include "obs/slo.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "sim/macro_sim.h"
#include "util/rng.h"
#include "workload/workload.h"

namespace p2pdrm::sim {
namespace {

MacroSimConfig sharded_config() {
  MacroSimConfig cfg;
  cfg.days = 1;
  cfg.peak_concurrent = 1500;
  cfg.seed = 20080623;
  cfg.num_channels = 40;
  cfg.reservoir_per_hour = 300;
  cfg.reservoir_cdf = 5000;
  cfg.shards = 4;
  cfg.key_rotation.enabled = true;
  return cfg;
}

/// Everything a run reports, flattened for equality comparison.
void expect_identical(const MacroSimResult& a, const MacroSimResult& b,
                      const char* label) {
  EXPECT_EQ(a.sessions, b.sessions) << label;
  EXPECT_EQ(a.channel_switches, b.channel_switches) << label;
  EXPECT_EQ(a.ct_renewals, b.ct_renewals) << label;
  EXPECT_EQ(a.ut_renewals, b.ut_renewals) << label;
  EXPECT_EQ(a.join_retries, b.join_retries) << label;
  EXPECT_EQ(a.events, b.events) << label;
  EXPECT_EQ(a.peak_observed_concurrency, b.peak_observed_concurrency) << label;
  EXPECT_EQ(a.um_utilization, b.um_utilization) << label;
  EXPECT_EQ(a.cm_utilization, b.cm_utilization) << label;
  ASSERT_EQ(a.hourly_concurrency.size(), b.hourly_concurrency.size()) << label;
  for (std::size_t h = 0; h < a.hourly_concurrency.size(); ++h) {
    // Bitwise equality: the concurrency integral must merge identically.
    EXPECT_EQ(a.hourly_concurrency[h], b.hourly_concurrency[h])
        << label << " hour " << h;
  }
  for (std::size_t r = 0; r < kNumRounds; ++r) {
    const RoundTrace& ta = a.rounds[r];
    const RoundTrace& tb = b.rounds[r];
    EXPECT_EQ(ta.count, tb.count) << label;
    EXPECT_EQ(ta.peak.samples(), tb.peak.samples()) << label << " round " << r;
    EXPECT_EQ(ta.offpeak.samples(), tb.offpeak.samples())
        << label << " round " << r;
    ASSERT_EQ(ta.hourly.size(), tb.hourly.size()) << label;
    for (std::size_t h = 0; h < ta.hourly.size(); ++h) {
      EXPECT_EQ(ta.hourly[h].samples(), tb.hourly[h].samples())
          << label << " round " << r << " hour " << h;
      EXPECT_EQ(ta.hourly[h].seen(), tb.hourly[h].seen())
          << label << " round " << r << " hour " << h;
    }
  }
  ASSERT_NE(a.registry, nullptr);
  ASSERT_NE(b.registry, nullptr);
  EXPECT_EQ(a.registry->to_string(), b.registry->to_string()) << label;
  // Event-count runtime telemetry is deterministic (the wall-clock fields
  // deliberately are not and stay out of every digest).
  EXPECT_EQ(a.runtime.shard_events, b.runtime.shard_events) << label;
  EXPECT_EQ(a.runtime.windows, b.runtime.windows) << label;
}

TEST(ShardedEngineTest, RuntimeStatsDescribeTheRun) {
  MacroSimConfig cfg = sharded_config();
  cfg.threads = 2;
  const MacroSimResult r = run_macro_sim(cfg);
  ASSERT_EQ(r.runtime.shard_events.size(), cfg.shards);
  std::uint64_t shard_total = 0;
  for (const std::uint64_t e : r.runtime.shard_events) shard_total += e;
  EXPECT_GT(shard_total, 0u);
  EXPECT_LE(shard_total, r.events);  // coordinator events are not shard work
  EXPECT_GT(r.runtime.windows, 0u);
  // Imbalance is max-over-mean per window: >= 1 by construction, and the
  // worst window bounds the average.
  EXPECT_GE(r.runtime.imbalance_mean, 1.0);
  EXPECT_GE(r.runtime.imbalance_max, r.runtime.imbalance_mean);
  EXPECT_EQ(r.runtime.worker_busy_seconds.size(), r.threads_used);
  EXPECT_GE(r.runtime.window_wall_seconds, 0.0);
  EXPECT_GE(r.runtime.barrier_wait_seconds, 0.0);
  EXPECT_GE(r.runtime.barrier_wait_fraction, 0.0);
  EXPECT_LE(r.runtime.barrier_wait_fraction, 1.0);
}

TEST(ShardedEngineTest, SameSeedByteIdenticalAcrossThreadCounts) {
  MacroSimConfig cfg = sharded_config();
  cfg.threads = 1;
  const MacroSimResult t1 = run_macro_sim(cfg);
  cfg.threads = 2;
  const MacroSimResult t2 = run_macro_sim(cfg);
  cfg.threads = 8;
  const MacroSimResult t8 = run_macro_sim(cfg);
  EXPECT_EQ(t1.threads_used, 1u);
  EXPECT_EQ(t2.threads_used, 2u);
  EXPECT_EQ(t8.threads_used, 4u);  // clamped to the 4 shards
  expect_identical(t1, t2, "threads 1 vs 2");
  expect_identical(t1, t8, "threads 1 vs 8");
}

TEST(ShardedEngineTest, ObservabilityIdenticalAcrossThreadCounts) {
  // The deterministic merge must extend to every observability surface:
  // scraped time series, SLO monitor state, and the exported trace.
  const auto run_with_obs = [](std::size_t threads, std::string* csv,
                               std::string* slo_report, std::string* trace) {
    MacroSimConfig cfg = sharded_config();
    cfg.threads = threads;
    obs::Tracer tracer;
    obs::TimeSeries ts;
    obs::SloMonitor slo({{"LOGIN2", 3000000, 8000000, 6 * util::kHour},
                         {"JOIN", 5000000, 13000000, 6 * util::kHour}});
    cfg.obs.tracer = &tracer;
    cfg.obs.trace_session_every = 500;
    cfg.obs.timeseries = &ts;
    cfg.obs.slo = &slo;
    const MacroSimResult result = run_macro_sim(cfg);
    *csv = ts.to_csv();
    *slo_report = slo.report();
    *trace = obs::spans_to_chrome_trace(tracer);
    return result;
  };
  std::string csv1, slo1, trace1, csv8, slo8, trace8;
  const MacroSimResult r1 = run_with_obs(1, &csv1, &slo1, &trace1);
  const MacroSimResult r8 = run_with_obs(8, &csv8, &slo8, &trace8);
  expect_identical(r1, r8, "obs run threads 1 vs 8");
  EXPECT_EQ(csv1, csv8);
  EXPECT_EQ(slo1, slo8);
  EXPECT_EQ(trace1, trace8);
  EXPECT_FALSE(trace1.empty());
  EXPECT_NE(csv1.find("load.concurrent"), std::string::npos);
}

TEST(ShardedEngineTest, ShardCountChangesStreamsButKeepsStatistics) {
  MacroSimConfig cfg = sharded_config();
  cfg.shards = 1;
  const MacroSimResult s1 = run_macro_sim(cfg);
  cfg.shards = 4;
  const MacroSimResult s4 = run_macro_sim(cfg);
  EXPECT_EQ(s1.shards_used, 1u);
  EXPECT_EQ(s4.shards_used, 4u);
  // Different partitions are different random streams (outputs differ)...
  EXPECT_NE(s1.sessions, s4.sessions);
  // ...but the model is the same: totals agree within a few percent.
  const double ratio =
      static_cast<double>(s4.sessions) / static_cast<double>(s1.sessions);
  EXPECT_NEAR(ratio, 1.0, 0.1);
  const double peak_ratio =
      s4.peak_observed_concurrency / s1.peak_observed_concurrency;
  EXPECT_NEAR(peak_ratio, 1.0, 0.25);
}

TEST(MacroSimConfigTest, ValidatedAcceptsDefaults) {
  EXPECT_NO_THROW(MacroSimConfig{}.validated());
  EXPECT_TRUE(MacroSimConfig{}.validate().empty());
}

TEST(MacroSimConfigTest, ValidatedRejectsNonsense) {
  const auto errors_of = [](auto&& mutate) {
    MacroSimConfig cfg;
    mutate(cfg);
    return cfg.validate();
  };
  const auto has_error = [](const std::vector<std::string>& errors,
                            const std::string& field) {
    for (const std::string& e : errors) {
      if (e.compare(0, field.size(), field) == 0) return true;
    }
    return false;
  };

  EXPECT_TRUE(has_error(
      errors_of([](MacroSimConfig& c) { c.days = 0; }), "days"));
  EXPECT_TRUE(has_error(
      errors_of([](MacroSimConfig& c) { c.peak_concurrent = -5; }),
      "peak_concurrent"));
  EXPECT_TRUE(has_error(
      errors_of([](MacroSimConfig& c) { c.num_channels = 0; }), "num_channels"));
  EXPECT_TRUE(has_error(
      errors_of([](MacroSimConfig& c) { c.costs.dispersion = -0.1; }),
      "costs.dispersion"));
  EXPECT_TRUE(has_error(
      errors_of([](MacroSimConfig& c) {
        c.key_rotation.enabled = true;
        c.key_rotation.fanout = 0;
      }),
      "key_rotation.fanout"));
  EXPECT_TRUE(has_error(
      errors_of([](MacroSimConfig& c) {
        c.key_rotation.enabled = true;
        c.key_rotation.sampled_peers = 0;
      }),
      "key_rotation.sampled_peers"));
  EXPECT_TRUE(has_error(
      errors_of([](MacroSimConfig& c) {
        c.obs.slo = reinterpret_cast<obs::SloMonitor*>(&c);  // any non-null
        c.obs.scrape_interval = 0;
      }),
      "obs.scrape_interval"));
  EXPECT_TRUE(has_error(
      errors_of([](MacroSimConfig& c) { c.shards = 0; }), "shards"));
  EXPECT_TRUE(has_error(
      errors_of([](MacroSimConfig& c) { c.shards = c.num_channels + 1; }),
      "shards"));
  EXPECT_TRUE(has_error(
      errors_of([](MacroSimConfig& c) { c.shard_sync_interval = 0; }),
      "shard_sync_interval"));
  EXPECT_TRUE(has_error(
      errors_of([](MacroSimConfig& c) { c.join_base_reject = 1.5; }),
      "join_base_reject"));

  // validated() reports every violation at once and throws.
  MacroSimConfig bad;
  bad.days = 0;
  bad.num_channels = 0;
  try {
    bad.validated();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("days"), std::string::npos);
    EXPECT_NE(what.find("num_channels"), std::string::npos);
  }
}

TEST(ReservoirMergedTest, ExactConcatenationWhenSamplesFit) {
  analysis::Reservoir a(100, 1);
  analysis::Reservoir b(100, 2);
  for (int i = 0; i < 30; ++i) a.add(i);
  for (int i = 100; i < 140; ++i) b.add(i);
  const analysis::Reservoir merged =
      analysis::Reservoir::merged(100, 7, {&a, &b});
  EXPECT_EQ(merged.seen(), 70u);
  ASSERT_EQ(merged.samples().size(), 70u);
  // Exact concatenation, in parts order.
  for (int i = 0; i < 30; ++i) EXPECT_EQ(merged.samples()[i], i);
  for (int i = 0; i < 40; ++i) EXPECT_EQ(merged.samples()[30 + i], 100 + i);
}

TEST(ReservoirMergedTest, DownsamplesDeterministically) {
  analysis::Reservoir a(50, 1);
  analysis::Reservoir b(50, 2);
  for (int i = 0; i < 500; ++i) a.add(i);
  for (int i = 1000; i < 1500; ++i) b.add(i);
  const analysis::Reservoir m1 = analysis::Reservoir::merged(50, 7, {&a, &b});
  const analysis::Reservoir m2 = analysis::Reservoir::merged(50, 7, {&a, &b});
  EXPECT_EQ(m1.seen(), 1000u);
  EXPECT_EQ(m1.samples().size(), 50u);
  EXPECT_EQ(m1.samples(), m2.samples());  // same seed, same survivors
  // Survivors come from the union of the parts' retained samples.
  for (const double v : m1.samples()) {
    const bool from_a = v >= 0 && v < 500;
    const bool from_b = v >= 1000 && v < 1500;
    EXPECT_TRUE(from_a || from_b) << v;
  }
  // A different seed draws a different subset.
  const analysis::Reservoir m3 = analysis::Reservoir::merged(50, 8, {&a, &b});
  EXPECT_NE(m1.samples(), m3.samples());
}

TEST(ReservoirMergedTest, SinglePartIsExactCopy) {
  analysis::Reservoir a(100, 1);
  for (int i = 0; i < 60; ++i) a.add(i * 2);
  const analysis::Reservoir merged = analysis::Reservoir::merged(100, 7, {&a});
  EXPECT_EQ(merged.seen(), a.seen());
  EXPECT_EQ(merged.samples(), a.samples());
}

TEST(ChannelPartitionTest, CoversAllChannelsAndSharesSumToOne) {
  const workload::ChannelPartition part(200, 0.9, 8);
  EXPECT_EQ(part.num_channels(), 200u);
  EXPECT_EQ(part.shards(), 8u);
  std::size_t covered = 0;
  double total_share = 0;
  for (std::size_t s = 0; s < part.shards(); ++s) {
    covered += part.members(s).size();
    total_share += part.share(s);
    for (const std::size_t ch : part.members(s)) {
      EXPECT_EQ(part.shard_of(ch), s);
    }
  }
  EXPECT_EQ(covered, 200u);
  EXPECT_NEAR(total_share, 1.0, 1e-9);
}

TEST(ChannelPartitionTest, SnakeOrderBalancesPopularity) {
  // With a strong Zipf skew, snake dealing keeps shard mass within a small
  // factor — no shard hoards all the popular channels.
  const workload::ChannelPartition part(64, 1.0, 4);
  double lo = 1.0, hi = 0.0;
  for (std::size_t s = 0; s < 4; ++s) {
    lo = std::min(lo, part.share(s));
    hi = std::max(hi, part.share(s));
  }
  EXPECT_LT(hi / lo, 2.0);
}

TEST(ChannelPartitionTest, SampleStaysInsideShardAndFollowsZipf) {
  const workload::ChannelPartition part(20, 0.9, 3);
  crypto::SecureRandom rng(7);
  std::vector<std::size_t> counts(20, 0);
  for (int i = 0; i < 30000; ++i) {
    const std::size_t shard = i % 3;
    const std::size_t ch = part.sample(shard, rng);
    EXPECT_EQ(part.shard_of(ch), shard);
    ++counts[ch];
  }
  for (std::size_t s = 0; s < 3; ++s) {
    // Within a shard, a more popular channel is sampled at least as often
    // as the shard's least popular one (10000 draws each: noise is small
    // next to the Zipf gap between a shard's best and worst rank).
    const auto& m = part.members(s);
    EXPECT_GT(counts[m.front()], counts[m.back()]);
  }
}

TEST(ChannelPartitionTest, ShardsEqualChannelsGivesSingletons) {
  const workload::ChannelPartition part(4, 0.9, 4);
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(part.members(s).size(), 1u);
    crypto::SecureRandom rng(1);
    EXPECT_EQ(part.sample(s, rng), part.members(s)[0]);
  }
}

}  // namespace
}  // namespace p2pdrm::sim
