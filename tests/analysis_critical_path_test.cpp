// Critical-path analyzer tests on hand-built span trees covering both
// producers: the macro-sim shape (round -> hop/queue/serve children) and
// the deployment shape (round -> attempt spans with hops underneath).
// The cardinal invariant: the five components sum to the measured round
// latency exactly, so the breakdown cannot leak latency.
#include <gtest/gtest.h>

#include <string>

#include "analysis/critical_path.h"
#include "obs/trace.h"

namespace p2pdrm::analysis {
namespace {

using obs::SpanId;
using obs::Tracer;

void expect_exact_sum(const RoundBreakdown& b) {
  EXPECT_EQ(b.total_us, b.network_us + b.queue_us + b.service_us +
                            b.retrans_us + b.client_us);
}

TEST(CriticalPathTest, MacroShapeAttributesEveryComponent) {
  Tracer tracer;
  const SpanId round = tracer.begin_span("client", "LOGIN1", 1, 0);
  const SpanId req = tracer.begin_span("net", "hop request", 1, 1000, round);
  tracer.end_span(req, 21000);                       // network 20000
  const SpanId queue = tracer.begin_span("server", "queue", 2, 21000, round);
  tracer.end_span(queue, 26000);                     // queue 5000
  const SpanId serve = tracer.begin_span("server", "serve", 2, 26000, round);
  tracer.end_span(serve, 34000);                     // service 8000
  const SpanId resp = tracer.begin_span("net", "hop response", 2, 34000, round);
  tracer.end_span(resp, 54000);                      // network 20000
  const SpanId retry =
      tracer.begin_span("net", "hop join-retry", 1, 54000, round);
  tracer.end_span(retry, 60000, /*ok=*/false);       // retrans 6000
  tracer.end_span(round, 100000);

  const CriticalPathReport report = analyze_critical_path(tracer);
  ASSERT_EQ(report.rounds.size(), 1u);
  const RoundBreakdown& b = report.rounds.at("LOGIN1");
  EXPECT_EQ(b.rounds, 1u);
  EXPECT_EQ(b.total_us, 100000);
  EXPECT_EQ(b.network_us, 40000);
  EXPECT_EQ(b.queue_us, 5000);
  EXPECT_EQ(b.service_us, 8000);
  EXPECT_EQ(b.retrans_us, 6000);
  EXPECT_EQ(b.client_us, 41000);  // the residual: crypto + think time
  expect_exact_sum(b);
}

TEST(CriticalPathTest, DeploymentShapeChargesLostAttemptsToRetransmission) {
  Tracer tracer;
  const SpanId round = tracer.begin_span("client", "JOIN", 5, 0);
  // First transmission vanished: the attempt span never completed.
  const SpanId lost = tracer.begin_span("client", "attempt", 5, 0, round);
  tracer.end_span(lost, 9000, /*ok=*/false);
  // Retransmission succeeded.
  const SpanId win = tracer.begin_span("client", "attempt", 5, 9000, round);
  const SpanId req = tracer.begin_span("net", "hop request", 5, 9000, win);
  tracer.end_span(req, 19000);                       // network 10000
  const SpanId serve = tracer.begin_span("server", "serve join", 7, 19000, win);
  tracer.end_span(serve, 23000);                     // service 4000
  const SpanId resp = tracer.begin_span("net", "hop response", 7, 23000, win);
  tracer.end_span(resp, 33000);                      // network 10000
  tracer.end_span(win, 33000);
  tracer.end_span(round, 50000);

  const CriticalPathReport report = analyze_critical_path(tracer);
  const RoundBreakdown& b = report.rounds.at("JOIN");
  EXPECT_EQ(b.total_us, 50000);
  EXPECT_EQ(b.network_us, 20000);
  EXPECT_EQ(b.service_us, 4000);
  // Everything before the winning attempt started is retransmission
  // penalty, regardless of how the losing attempt's children look.
  EXPECT_EQ(b.retrans_us, 9000);
  EXPECT_EQ(b.client_us, 17000);
  expect_exact_sum(b);
}

TEST(CriticalPathTest, SkipsOpenFailedAndAttemptlessWinnerRounds) {
  Tracer tracer;
  // Open round: latency undefined.
  tracer.begin_span("client", "LOGIN1", 1, 0);
  // Failed round.
  const SpanId failed = tracer.begin_span("client", "LOGIN2", 2, 0);
  tracer.end_span(failed, 5000, /*ok=*/false);
  // Round marked ok whose only attempt never completed — inconsistent
  // tree, skipped rather than mis-attributed.
  const SpanId odd = tracer.begin_span("client", "SWITCH1", 3, 0);
  const SpanId attempt = tracer.begin_span("client", "attempt", 3, 0, odd);
  tracer.end_span(attempt, 1000, /*ok=*/false);
  tracer.end_span(odd, 2000);
  // Non-client root (a key rotation) is not a round.
  const SpanId rot = tracer.begin_span("server", "KEY_ROTATION", 0, 0);
  tracer.end_span(rot, 1000);

  const CriticalPathReport report = analyze_critical_path(tracer);
  EXPECT_TRUE(report.rounds.empty());
}

TEST(CriticalPathTest, AggregatesAcrossRoundsAndRendersStableTable) {
  auto build = [] {
    Tracer tracer;
    for (int i = 0; i < 3; ++i) {
      const util::SimTime base = i * 1000000;
      const SpanId round = tracer.begin_span("client", "JOIN", 1, base);
      const SpanId hop =
          tracer.begin_span("net", "hop request", 1, base, round);
      tracer.end_span(hop, base + 30000);
      tracer.end_span(round, base + 40000);
    }
    return tracer;
  };
  const Tracer tracer = build();
  const CriticalPathReport report = analyze_critical_path(tracer);
  const RoundBreakdown& b = report.rounds.at("JOIN");
  EXPECT_EQ(b.rounds, 3u);
  EXPECT_EQ(b.total_us, 120000);
  EXPECT_EQ(b.network_us, 90000);
  EXPECT_EQ(b.client_us, 30000);
  expect_exact_sum(b);

  const std::string table = report.to_table();
  EXPECT_EQ(table, analyze_critical_path(build()).to_table());
  EXPECT_NE(table.find("round"), std::string::npos);
  EXPECT_NE(table.find("JOIN"), std::string::npos);
  EXPECT_NE(table.find("net_ms"), std::string::npos);
  EXPECT_NE(table.find("client_ms"), std::string::npos);
}

}  // namespace
}  // namespace p2pdrm::analysis
