// Durable deployment recovery: crash-at-worst-moment schedules over the
// wire. The §IV-C/D single-session rule survives torn-tail crashes when
// fresh-issue entries are written through; the mirror tests demonstrate
// the divergence (dual admission) that exists without replication — the
// gap the store subsystem closes.
#include <gtest/gtest.h>

#include "net/deployment.h"
#include "services/channel_manager.h"

namespace p2pdrm::net {
namespace {

using core::DrmError;
using util::Bytes;
using util::kMillisecond;
using util::kMinute;
using util::kSecond;

DeploymentConfig durable_config() {
  DeploymentConfig cfg;
  cfg.seed = 4242;
  cfg.default_link.latency.floor = 10 * kMillisecond;
  cfg.default_link.latency.median = 40 * kMillisecond;
  cfg.default_link.latency.sigma = 0.4;
  cfg.processing.light = 1 * kMillisecond;
  cfg.processing.heavy = 8 * kMillisecond;
  cfg.um_instances = 2;
  cfg.cm_instances = 2;
  // Short ticket lifetimes keep the §IV-D renewal window (±renewal_window
  // around expiry) inside a few simulated minutes.
  cfg.cm.ticket_lifetime = 4 * kMinute;
  cfg.cm.renewal_window = 3 * kMinute;
  cfg.durability.enabled = true;
  cfg.durability.replication_interval = 500 * kMillisecond;
  return cfg;
}

class StoreRecoveryTest : public ::testing::Test {
 protected:
  explicit StoreRecoveryTest(DeploymentConfig cfg = durable_config()) : d_(cfg) {
    d_.add_user("mig@example.com", "pw-m");
    region_ = d_.geo().region_at(0);
    d_.add_regional_channel(1, "news", region_);
    d_.start_channel_server(1);
  }

  DrmError wait(const std::function<void(AsyncClient::Callback)>& op) {
    std::optional<DrmError> result;
    op([&result](DrmError err) { result = err; });
    const util::SimTime deadline = d_.sim().now() + 10 * kMinute;
    while (!result && d_.sim().now() < deadline && d_.sim().step()) {
    }
    return result.value_or(DrmError::kNoCapacity);
  }

  /// login + switch_channel(1); clients are non-resilient by default, so a
  /// refused renewal stays refused instead of escalating to re-login.
  DrmError join(AsyncClient& c) {
    const DrmError err = wait([&](auto cb) { c.login(cb); });
    if (err != DrmError::kOk) return err;
    return wait([&](auto cb) { c.switch_channel(1, cb); });
  }

  Deployment d_;
  geo::RegionId region_ = 0;
};

TEST_F(StoreRecoveryTest, WriteThroughPreventsDualAdmissionAfterWorstMomentCrash) {
  // Device A views; the account migrates to device B via the survivor
  // while A's home instance is down; the recovered instance must still
  // refuse A's renewal (the fresh-issue witness was written through before
  // B's admission reply left the farm).
  AsyncClient& dev_a = d_.add_client("mig@example.com", "pw-m", region_);
  ASSERT_EQ(join(dev_a), DrmError::kOk);

  d_.crash_cm_instance(0, 0);
  AsyncClient& dev_b = d_.add_client("mig@example.com", "pw-m", region_);
  ASSERT_EQ(join(dev_b), DrmError::kOk);  // admitted by the survivor

  // Worst moment: the survivor crashes right after B's reply, tearing its
  // journal tail. The fresh-issue entry was fsynced in the handler, so it
  // survives recovery.
  d_.crash_cm_unsynced(0, 1);
  d_.restart_cm_instance(0, 1);
  d_.run_for(2 * kSecond);
  d_.restart_cm_instance(0, 0);
  d_.run_for(2 * kSecond);  // anti-entropy: B's entry reaches instance 0

  ASSERT_TRUE(dev_a.channel_ticket().has_value());
  d_.run_until(dev_a.channel_ticket()->ticket.expiry_time - kMinute);
  EXPECT_EQ(wait([&](auto cb) { dev_a.renew_channel_ticket(cb); }),
            DrmError::kRenewalRefused);  // zero dual admissions
  EXPECT_EQ(wait([&](auto cb) { dev_b.renew_channel_ticket(cb); }), DrmError::kOk);
}

class NoReplicationTest : public StoreRecoveryTest {
 protected:
  static DeploymentConfig config() {
    DeploymentConfig cfg = durable_config();
    cfg.durability.sync_fresh_issues = false;  // admission witness is async
    cfg.durability.replication_interval = 0;   // and never gossiped
    // One UM instance: without write-through or gossip, account provisions
    // would otherwise be visible on only one of the two UM replicas, and
    // this test is about the CM viewing log, not the user directory.
    cfg.um_instances = 1;
    return cfg;
  }
  NoReplicationTest() : StoreRecoveryTest(config()) {}
};

TEST_F(NoReplicationTest, WorstMomentCrashWithoutWriteThroughDualAdmits) {
  // The divergence the tentpole exists to close: with the fresh-issue
  // entry staged asynchronously and no replication, a crash right after
  // B's admission erases the only witness — the stale device renews
  // successfully while B still holds a live ticket. Dual admission.
  AsyncClient& dev_a = d_.add_client("mig@example.com", "pw-m", region_);
  ASSERT_EQ(join(dev_a), DrmError::kOk);
  d_.cm_store(0, 0)->sync();  // A's own entry is durable; only B's is at risk

  d_.crash_cm_instance(0, 0);
  AsyncClient& dev_b = d_.add_client("mig@example.com", "pw-m", region_);
  ASSERT_EQ(join(dev_b), DrmError::kOk);
  EXPECT_GT(d_.cm_store(0, 1)->unsynced_ops(), 0u);  // staged, not durable

  d_.crash_cm_unsynced(0, 1);  // tears B's entry in half
  d_.restart_cm_instance(0, 1);
  d_.run_for(kSecond);
  d_.restart_cm_instance(0, 0);
  d_.run_for(kSecond);

  // The torn tail was detected and discarded during replay.
  const obs::Counter* corrupt = d_.registry().find_counter("store.replay.corrupt");
  ASSERT_NE(corrupt, nullptr);
  EXPECT_GE(corrupt->value(), 1u);

  // The farm has no trace of B's admission: the stale device is readmitted
  // while B's ticket is still live.
  ASSERT_TRUE(dev_a.channel_ticket().has_value());
  d_.run_until(dev_a.channel_ticket()->ticket.expiry_time - kMinute);
  EXPECT_EQ(wait([&](auto cb) { dev_a.renew_channel_ticket(cb); }), DrmError::kOk);
  ASSERT_TRUE(dev_b.channel_ticket().has_value());
  EXPECT_GT(dev_b.channel_ticket()->ticket.expiry_time, d_.now());

  const util::UserIN user = dev_a.user_ticket()->ticket.user_in;
  const services::ViewingLog::Entry* latest = d_.cm_viewing_log(0, 0)->latest(user, 1);
  ASSERT_NE(latest, nullptr);
  EXPECT_EQ(latest->addr, dev_a.config().addr);  // B's witness is gone forever
}

TEST_F(StoreRecoveryTest, RestartRecoversViewingLogByteIdentical) {
  AsyncClient& viewer = d_.add_client("mig@example.com", "pw-m", region_);
  ASSERT_EQ(join(viewer), DrmError::kOk);
  d_.replicate_now();  // fsync + pairwise convergence

  const Bytes before = d_.cm_viewing_log(0, 0)->encode();
  ASSERT_FALSE(before.empty());
  // Converged replicas encode to identical bytes (deterministic form).
  EXPECT_EQ(d_.cm_viewing_log(0, 1)->encode(), before);

  d_.crash_cm_instance(0, 0);
  d_.restart_cm_instance(0, 0);
  d_.run_for(kSecond);
  EXPECT_EQ(d_.cm_viewing_log(0, 0)->encode(), before);  // replay is deterministic
}

TEST_F(StoreRecoveryTest, OutageEraSignupSurvivesViaAntiEntropy) {
  // A user provisioned while UM instance 0 is down lands on the survivor
  // (write-through); the restarted instance learns it by anti-entropy.
  d_.crash_um_instance(0);
  ASSERT_TRUE(d_.add_user("late@example.com", "pw-late"));
  AsyncClient& late = d_.add_client("late@example.com", "pw-late", region_);
  EXPECT_EQ(wait([&](auto cb) { late.login(cb); }), DrmError::kOk);

  d_.restart_um_instance(0);
  d_.run_for(kSecond);
  ASSERT_NE(d_.um_directory(0), nullptr);
  EXPECT_EQ(d_.um_directory(0)->users.count("late@example.com"), 1u);
  EXPECT_EQ(d_.um_store(0)->watermarks(), d_.um_store(1)->watermarks());
}

TEST_F(StoreRecoveryTest, AsyncAuditEntriesDurableWithinOneReplicationInterval) {
  // The loss bound from the other side: an async (renewal) entry that has
  // been staged for longer than the replication interval cannot be lost —
  // the ticker fsyncs it. Crashing after one full interval loses nothing.
  AsyncClient& viewer = d_.add_client("mig@example.com", "pw-m", region_);
  ASSERT_EQ(join(viewer), DrmError::kOk);
  ASSERT_TRUE(viewer.channel_ticket().has_value());
  d_.run_until(viewer.channel_ticket()->ticket.expiry_time - kMinute);
  ASSERT_EQ(wait([&](auto cb) { viewer.renew_channel_ticket(cb); }), DrmError::kOk);

  d_.run_for(2 * 500 * kMillisecond + 100 * kMillisecond);  // > one interval
  EXPECT_EQ(d_.cm_store(0, 0)->unsynced_ops(), 0u);

  d_.crash_cm_unsynced(0, 0);
  const obs::Counter* lost = d_.registry().find_counter("store.lost_records");
  EXPECT_TRUE(lost == nullptr || lost->value() == 0u);

  d_.restart_cm_instance(0, 0);
  d_.run_for(kSecond);
  bool renewal_survived = false;
  for (const services::ViewingLog::Entry& e :
       d_.cm_viewing_log(0, 0)->audit_trail()) {
    if (e.renewal) renewal_survived = true;
  }
  EXPECT_TRUE(renewal_survived);
}

}  // namespace
}  // namespace p2pdrm::net
