#include <gtest/gtest.h>

#include <stdexcept>

#include "util/bytes.h"
#include "util/ids.h"
#include "util/log.h"
#include "util/time.h"
#include "util/wire.h"

namespace p2pdrm::util {
namespace {

TEST(BytesTest, HexRoundTrip) {
  const Bytes data = {0x00, 0x01, 0xab, 0xff, 0x7f};
  EXPECT_EQ(to_hex(data), "0001abff7f");
  EXPECT_EQ(from_hex("0001abff7f"), data);
  EXPECT_EQ(from_hex("0001ABFF7F"), data);
}

TEST(BytesTest, HexEmpty) {
  EXPECT_EQ(to_hex({}), "");
  EXPECT_TRUE(from_hex("").empty());
}

TEST(BytesTest, HexRejectsOddLength) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
}

TEST(BytesTest, HexRejectsNonHex) {
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
  EXPECT_THROW(from_hex("0g"), std::invalid_argument);
}

TEST(BytesTest, ConstantTimeEqual) {
  const Bytes a = {1, 2, 3};
  const Bytes b = {1, 2, 3};
  const Bytes c = {1, 2, 4};
  const Bytes d = {1, 2};
  EXPECT_TRUE(constant_time_equal(a, b));
  EXPECT_FALSE(constant_time_equal(a, c));
  EXPECT_FALSE(constant_time_equal(a, d));
  EXPECT_TRUE(constant_time_equal({}, {}));
}

TEST(BytesTest, StringConversions) {
  EXPECT_EQ(string_of(bytes_of("hello")), "hello");
  EXPECT_EQ(bytes_of("").size(), 0u);
}

TEST(BytesTest, Concat) {
  EXPECT_EQ(concat(bytes_of("ab"), bytes_of("cd")), bytes_of("abcd"));
}

TEST(BytesTest, XorInto) {
  Bytes a = {0xff, 0x00, 0x55};
  const Bytes b = {0x0f, 0xf0, 0x55};
  xor_into(a, b);
  EXPECT_EQ(a, (Bytes{0xf0, 0xf0, 0x00}));
  Bytes short_buf = {1};
  EXPECT_THROW(xor_into(short_buf, b), std::invalid_argument);
}

TEST(BytesTest, EndianHelpers) {
  std::uint8_t buf[8];
  store_be32(buf, 0x01020304);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[3], 0x04);
  EXPECT_EQ(load_be32(buf), 0x01020304u);
  store_be64(buf, 0x0102030405060708ull);
  EXPECT_EQ(load_be64(buf), 0x0102030405060708ull);
  store_le32(buf, 0x01020304);
  EXPECT_EQ(buf[0], 0x04);
  EXPECT_EQ(load_le32(buf), 0x01020304u);
}

TEST(WireTest, ScalarRoundTrip) {
  WireWriter w;
  w.u8(0xab);
  w.u16(0xbeef);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefull);
  w.i64(-42);

  WireReader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_TRUE(r.at_end());
}

TEST(WireTest, BytesAndStrings) {
  WireWriter w;
  w.bytes(Bytes{1, 2, 3});
  w.str("channel-a");
  w.bytes({});

  WireReader r(w.data());
  EXPECT_EQ(r.bytes(), (Bytes{1, 2, 3}));
  EXPECT_EQ(r.str(), "channel-a");
  EXPECT_TRUE(r.bytes().empty());
  EXPECT_TRUE(r.at_end());
}

TEST(WireTest, TruncatedScalarThrows) {
  WireWriter w;
  w.u32(7);
  WireReader r(w.data());
  EXPECT_THROW(r.u64(), WireError);
}

TEST(WireTest, TruncatedBytesThrows) {
  WireWriter w;
  w.u32(100);  // length prefix promising 100 bytes that are not there
  w.u8(1);
  WireReader r(w.data());
  EXPECT_THROW(r.bytes(), WireError);
}

TEST(WireTest, ConsumedTracksPrefix) {
  WireWriter w;
  w.u32(7);
  w.str("abc");
  WireReader r(w.data());
  r.u32();
  EXPECT_EQ(r.consumed().size(), 4u);
  r.str();
  EXPECT_EQ(r.consumed().size(), w.size());
}

TEST(WireTest, RawRoundTrip) {
  WireWriter w;
  w.raw(Bytes{9, 8, 7});
  WireReader r(w.data());
  EXPECT_EQ(r.raw(3), (Bytes{9, 8, 7}));
  EXPECT_THROW(r.raw(1), WireError);
}

TEST(TimeTest, Units) {
  EXPECT_EQ(kSecond, 1'000'000);
  EXPECT_EQ(kDay, 86'400'000'000LL);
  EXPECT_EQ(seconds(1.5), 1'500'000);
  EXPECT_DOUBLE_EQ(to_seconds(2 * kSecond + 500 * kMillisecond), 2.5);
}

TEST(TimeTest, HourOfDayAndDay) {
  EXPECT_EQ(hour_of_day(0), 0);
  EXPECT_EQ(hour_of_day(13 * kHour + 59 * kMinute), 13);
  EXPECT_EQ(hour_of_day(2 * kDay + 5 * kHour), 5);
  EXPECT_EQ(day_of(3 * kDay + kHour), 3);
}

TEST(TimeTest, Format) {
  EXPECT_EQ(format_time(kNullTime), "null");
  EXPECT_EQ(format_time(0), "d0 00:00:00.000");
  EXPECT_EQ(format_time(kDay + 2 * kHour + 3 * kMinute + 4 * kSecond + 5 * kMillisecond),
            "d1 02:03:04.005");
}

TEST(TimeTest, ManualClock) {
  ManualClock clock(10);
  EXPECT_EQ(clock.now(), 10);
  clock.advance(5);
  EXPECT_EQ(clock.now(), 15);
  clock.set(100);
  EXPECT_EQ(clock.now(), 100);
}

TEST(NetAddrTest, RoundTrip) {
  const NetAddr a{0x0a010203};
  EXPECT_EQ(to_string(a), "10.1.2.3");
  EXPECT_EQ(parse_netaddr("10.1.2.3"), a);
  EXPECT_EQ(parse_netaddr("255.255.255.255").ip, 0xffffffffu);
  EXPECT_EQ(parse_netaddr("0.0.0.0").ip, 0u);
}

TEST(NetAddrTest, RejectsMalformed) {
  EXPECT_THROW(parse_netaddr("10.1.2"), std::invalid_argument);
  EXPECT_THROW(parse_netaddr("256.1.2.3"), std::invalid_argument);
  EXPECT_THROW(parse_netaddr("a.b.c.d"), std::invalid_argument);
  EXPECT_THROW(parse_netaddr("1.2.3.4.5"), std::invalid_argument);
}

TEST(NetAddrTest, Ordering) {
  EXPECT_LT(NetAddr{1}, NetAddr{2});
  EXPECT_EQ(NetAddr{7}, NetAddr{7});
}

class LogTest : public ::testing::Test {
 protected:
  void TearDown() override { set_log_level(LogLevel::kOff); }
};

TEST_F(LogTest, ThresholdFilters) {
  set_log_level(LogLevel::kWarn);
  ::testing::internal::CaptureStderr();
  log_line(LogLevel::kInfo, "component", "hidden");
  log_line(LogLevel::kWarn, "component", "visible");
  log_line(LogLevel::kError, "component", "also visible");
  const std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(out.find("hidden"), std::string::npos);
  EXPECT_NE(out.find("visible"), std::string::npos);
  EXPECT_NE(out.find("[ERROR] component: also visible"), std::string::npos);
}

TEST_F(LogTest, StreamHelperFormats) {
  set_log_level(LogLevel::kDebug);
  ::testing::internal::CaptureStderr();
  P2PDRM_LOG(LogLevel::kInfo, "client") << "joined " << 42;
  const std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("[INFO] client: joined 42"), std::string::npos);
}

TEST_F(LogTest, OffDiscardsEverything) {
  set_log_level(LogLevel::kOff);
  ::testing::internal::CaptureStderr();
  log_line(LogLevel::kError, "x", "nope");
  P2PDRM_LOG(LogLevel::kError, "x") << "nor this";
  EXPECT_TRUE(::testing::internal::GetCapturedStderr().empty());
}

}  // namespace
}  // namespace p2pdrm::util
