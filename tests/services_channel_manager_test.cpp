#include <gtest/gtest.h>

#include "services/channel_manager.h"

namespace p2pdrm::services {
namespace {

using core::DrmError;
using util::kMinute;

class StubPeers : public PeerDirectory {
 public:
  std::vector<core::PeerInfo> sample_peers(util::ChannelId channel, std::size_t max_peers,
                                           util::NetAddr requester) override {
    last_channel = channel;
    last_requester = requester;
    std::vector<core::PeerInfo> out;
    for (std::size_t i = 0; i < std::min(max_peers, available); ++i) {
      out.push_back({static_cast<util::NodeId>(i + 1), util::NetAddr{0x0a000001u + static_cast<std::uint32_t>(i)}});
    }
    return out;
  }
  std::size_t available = 3;
  util::ChannelId last_channel = 0;
  util::NetAddr last_requester;
};

class ChannelManagerTest : public ::testing::Test {
 protected:
  ChannelManagerTest() : rng_(700) {
    um_keys_ = crypto::generate_rsa_keypair(rng_, 512);
    client_keys_ = crypto::generate_rsa_keypair(rng_, 512);
    ChannelManagerConfig config;
    config.partition = 0;
    config.ticket_lifetime = 10 * kMinute;
    config.renewal_window = 3 * kMinute;
    partition_ = std::make_shared<ChannelManagerPartition>(
        config, crypto::generate_rsa_keypair(rng_, 512), um_keys_.pub, rng_.bytes(32));
    cm_ = std::make_unique<ChannelManager>(partition_, &peers_, rng_.fork());

    core::ChannelRecord news = make_channel(1, "news", 0);
    core::ChannelRecord other_partition = make_channel(2, "sports", 1);
    cm_->update_channel_list({news, other_partition});
    addr_ = util::parse_netaddr("10.9.9.9");
  }

  static core::ChannelRecord make_channel(util::ChannelId id, const std::string& name,
                                          std::uint32_t partition) {
    core::ChannelRecord c;
    c.id = id;
    c.name = name;
    c.partition = partition;
    core::Attribute region;
    region.name = core::kAttrRegion;
    region.value = core::AttrValue::of("100");
    c.attributes.add(region);
    core::Policy accept;
    accept.priority = 50;
    accept.terms.push_back({core::kAttrRegion, core::AttrValue::of("100")});
    accept.action = core::PolicyAction::kAccept;
    c.policies.push_back(accept);
    return c;
  }

  core::SignedUserTicket make_user_ticket(util::SimTime now, const std::string& region = "100",
                                          util::SimTime lifetime = 30 * kMinute) {
    core::UserTicket t;
    t.user_in = 42;
    t.client_public_key = client_keys_.pub;
    t.start_time = now;
    t.expiry_time = now + lifetime;
    core::Attribute netaddr;
    netaddr.name = core::kAttrNetAddr;
    netaddr.value = core::AttrValue::of(util::to_string(addr_));
    t.attributes.add(netaddr);
    core::Attribute r;
    r.name = core::kAttrRegion;
    r.value = core::AttrValue::of(region);
    t.attributes.add(r);
    return core::SignedUserTicket::sign(t, um_keys_.priv);
  }

  /// Run both switch rounds honestly; returns the SWITCH2 response.
  core::Switch2Response do_switch(const core::SignedUserTicket& ut,
                                  util::ChannelId channel, util::SimTime now,
                                  const util::Bytes& expiring = {}) {
    core::Switch1Request r1;
    r1.user_ticket = ut.encode();
    r1.channel_id = channel;
    r1.expiring_ticket = expiring;
    const core::Switch1Response resp1 = cm_->handle_switch1(r1, addr_, now);
    if (resp1.error != DrmError::kOk) {
      core::Switch2Response fail;
      fail.error = resp1.error;
      return fail;
    }
    core::Switch2Request r2;
    r2.user_ticket = r1.user_ticket;
    r2.channel_id = channel;
    r2.expiring_ticket = expiring;
    r2.challenge = resp1.challenge;
    r2.proof = crypto::rsa_sign(client_keys_.priv, resp1.challenge.nonce);
    return cm_->handle_switch2(r2, addr_, now);
  }

  crypto::SecureRandom rng_;
  crypto::RsaKeyPair um_keys_;
  crypto::RsaKeyPair client_keys_;
  std::shared_ptr<ChannelManagerPartition> partition_;
  std::unique_ptr<ChannelManager> cm_;
  StubPeers peers_;
  util::NetAddr addr_;
};

TEST_F(ChannelManagerTest, HappyPathIssuesTicketAndPeers) {
  const core::SignedUserTicket ut = make_user_ticket(1000);
  const core::Switch2Response resp = do_switch(ut, 1, 1000);
  ASSERT_EQ(resp.error, DrmError::kOk);
  ASSERT_TRUE(resp.ticket.has_value());
  EXPECT_TRUE(resp.ticket->verify(partition_->keys.pub));
  EXPECT_EQ(resp.ticket->ticket.channel_id, 1u);
  EXPECT_EQ(resp.ticket->ticket.user_in, 42u);
  EXPECT_EQ(resp.ticket->ticket.net_addr, addr_);
  EXPECT_FALSE(resp.ticket->ticket.renewal);
  EXPECT_EQ(resp.ticket->ticket.expiry_time, 1000 + 10 * kMinute);
  EXPECT_EQ(resp.peers.size(), 3u);
  EXPECT_EQ(peers_.last_channel, 1u);
}

TEST_F(ChannelManagerTest, PrivacyIntermediation) {
  // The Channel Ticket must expose only the network address — no region,
  // subscription, or other user attributes (§IV-C).
  const core::Switch2Response resp = do_switch(make_user_ticket(0), 1, 0);
  ASSERT_TRUE(resp.ticket.has_value());
  const util::Bytes body = resp.ticket->ticket.encode();
  const std::string body_str(body.begin(), body.end());
  EXPECT_EQ(body_str.find("Region"), std::string::npos);
  EXPECT_EQ(body_str.find("Subscription"), std::string::npos);
  EXPECT_EQ(body_str.find("100"), std::string::npos);
}

TEST_F(ChannelManagerTest, ViewingLogRecordsIssue) {
  (void)do_switch(make_user_ticket(0), 1, 0);
  EXPECT_EQ(cm_->log().size(), 1u);
  const ViewingLog::Entry* e = cm_->log().latest(42, 1);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->addr, addr_);
  EXPECT_EQ(cm_->log().views_per_channel().at(1), 1u);
}

TEST_F(ChannelManagerTest, PolicyRejectionNoTicket) {
  const core::SignedUserTicket ut = make_user_ticket(0, "999");
  const core::Switch2Response resp = do_switch(ut, 1, 0);
  EXPECT_EQ(resp.error, DrmError::kAccessDenied);
  EXPECT_FALSE(resp.ticket.has_value());
  EXPECT_EQ(cm_->log().size(), 0u);
}

TEST_F(ChannelManagerTest, UnknownChannelRejected) {
  EXPECT_EQ(do_switch(make_user_ticket(0), 99, 0).error, DrmError::kUnknownChannel);
}

TEST_F(ChannelManagerTest, OtherPartitionChannelNotServed) {
  // Channel 2 exists but belongs to partition 1; this manager serves 0.
  EXPECT_EQ(do_switch(make_user_ticket(0), 2, 0).error, DrmError::kUnknownChannel);
}

TEST_F(ChannelManagerTest, ExpiredUserTicketRejected) {
  const core::SignedUserTicket ut = make_user_ticket(0, "100", 5 * kMinute);
  EXPECT_EQ(do_switch(ut, 1, 6 * kMinute).error, DrmError::kTicketExpired);
}

TEST_F(ChannelManagerTest, ForgedUserTicketRejected) {
  core::SignedUserTicket ut = make_user_ticket(0);
  ut.body[20] ^= 1;
  core::Switch1Request r1;
  r1.user_ticket = ut.encode();
  r1.channel_id = 1;
  EXPECT_EQ(cm_->handle_switch1(r1, addr_, 0).error, DrmError::kBadTicket);
}

TEST_F(ChannelManagerTest, GarbageUserTicketRejected) {
  core::Switch1Request r1;
  r1.user_ticket = util::bytes_of("not a ticket");
  r1.channel_id = 1;
  EXPECT_EQ(cm_->handle_switch1(r1, addr_, 0).error, DrmError::kBadTicket);
}

TEST_F(ChannelManagerTest, AddressMismatchRejected) {
  const core::SignedUserTicket ut = make_user_ticket(0);
  core::Switch1Request r1;
  r1.user_ticket = ut.encode();
  r1.channel_id = 1;
  EXPECT_EQ(cm_->handle_switch1(r1, util::parse_netaddr("10.8.8.8"), 0).error,
            DrmError::kAddressMismatch);
}

TEST_F(ChannelManagerTest, WrongProofKeyRejected) {
  const core::SignedUserTicket ut = make_user_ticket(0);
  core::Switch1Request r1;
  r1.user_ticket = ut.encode();
  r1.channel_id = 1;
  const core::Switch1Response resp1 = cm_->handle_switch1(r1, addr_, 0);
  ASSERT_EQ(resp1.error, DrmError::kOk);

  const crypto::RsaKeyPair attacker = crypto::generate_rsa_keypair(rng_, 512);
  core::Switch2Request r2;
  r2.user_ticket = r1.user_ticket;
  r2.channel_id = 1;
  r2.challenge = resp1.challenge;
  r2.proof = crypto::rsa_sign(attacker.priv, resp1.challenge.nonce);
  EXPECT_EQ(cm_->handle_switch2(r2, addr_, 0).error, DrmError::kBadCredentials);
}

TEST_F(ChannelManagerTest, ChallengeFromDifferentRequestRejected) {
  // Challenge minted for channel 1 cannot authorize... channel binding is
  // part of the MAC, so reusing it for another channel id fails.
  const core::SignedUserTicket ut = make_user_ticket(0);
  core::Switch1Request r1;
  r1.user_ticket = ut.encode();
  r1.channel_id = 1;
  const core::Switch1Response resp1 = cm_->handle_switch1(r1, addr_, 0);

  core::Switch2Request r2;
  r2.user_ticket = r1.user_ticket;
  r2.channel_id = 2;  // different channel than the challenge was minted for
  r2.challenge = resp1.challenge;
  r2.proof = crypto::rsa_sign(client_keys_.priv, resp1.challenge.nonce);
  const DrmError err = cm_->handle_switch2(r2, addr_, 0).error;
  EXPECT_TRUE(err == DrmError::kChallengeInvalid || err == DrmError::kUnknownChannel);
}

TEST_F(ChannelManagerTest, TicketExpiryCappedByUserTicket) {
  // User Ticket expires in 4 minutes; Channel Ticket must not outlive it.
  const core::SignedUserTicket ut = make_user_ticket(0, "100", 4 * kMinute);
  const core::Switch2Response resp = do_switch(ut, 1, 0);
  ASSERT_TRUE(resp.ticket.has_value());
  EXPECT_EQ(resp.ticket->ticket.expiry_time, 4 * kMinute);
}

TEST_F(ChannelManagerTest, RenewalHappyPath) {
  const core::SignedUserTicket ut = make_user_ticket(0);
  const core::Switch2Response first = do_switch(ut, 1, 0);
  ASSERT_TRUE(first.ticket.has_value());

  // Renew within the window before expiry (expiry at 10 min, window 3 min).
  const util::SimTime renew_at = 8 * kMinute;
  const core::SignedUserTicket ut2 = make_user_ticket(renew_at);
  const core::Switch2Response renewed =
      do_switch(ut2, 0, renew_at, first.ticket->encode());
  ASSERT_EQ(renewed.error, DrmError::kOk);
  ASSERT_TRUE(renewed.ticket.has_value());
  EXPECT_TRUE(renewed.ticket->ticket.renewal);
  EXPECT_EQ(renewed.ticket->ticket.channel_id, 1u);
  EXPECT_EQ(renewed.ticket->ticket.expiry_time, 10 * kMinute + 10 * kMinute);
  EXPECT_TRUE(renewed.ticket->verify(partition_->keys.pub));
}

TEST_F(ChannelManagerTest, RenewalTooEarlyRefused) {
  const core::SignedUserTicket ut = make_user_ticket(0);
  const core::Switch2Response first = do_switch(ut, 1, 0);
  ASSERT_TRUE(first.ticket.has_value());
  const core::Switch2Response early =
      do_switch(make_user_ticket(2 * kMinute), 0, 2 * kMinute, first.ticket->encode());
  EXPECT_EQ(early.error, DrmError::kRenewalRefused);
}

TEST_F(ChannelManagerTest, RenewalAfterMovingComputersRefused) {
  // §IV-D: user moves to a new machine and gets a fresh ticket there; the
  // old machine's renewal no longer matches the latest log entry.
  const core::SignedUserTicket ut = make_user_ticket(0);
  const core::Switch2Response first = do_switch(ut, 1, 0);
  ASSERT_TRUE(first.ticket.has_value());

  // Same account joins from a new address.
  const util::NetAddr new_addr = util::parse_netaddr("10.7.7.7");
  const util::NetAddr old_addr = addr_;
  addr_ = new_addr;
  const core::Switch2Response second = do_switch(make_user_ticket(kMinute), 1, kMinute);
  ASSERT_EQ(second.error, DrmError::kOk);

  // Old machine tries to renew inside the window.
  addr_ = old_addr;
  const core::Switch2Response renewal =
      do_switch(make_user_ticket(8 * kMinute), 0, 8 * kMinute, first.ticket->encode());
  EXPECT_EQ(renewal.error, DrmError::kRenewalRefused);
}

TEST_F(ChannelManagerTest, RenewalWithForeignChannelTicketRejected) {
  const core::SignedUserTicket ut = make_user_ticket(0);
  // A channel ticket signed by someone other than this CM.
  core::ChannelTicket forged;
  forged.user_in = 42;
  forged.channel_id = 1;
  forged.client_public_key = client_keys_.pub;
  forged.net_addr = addr_;
  forged.expiry_time = 10 * kMinute;
  const crypto::RsaKeyPair other = crypto::generate_rsa_keypair(rng_, 512);
  const core::SignedChannelTicket bad = core::SignedChannelTicket::sign(forged, other.priv);
  EXPECT_EQ(do_switch(ut, 0, 8 * kMinute, bad.encode()).error, DrmError::kBadTicket);
}

TEST_F(ChannelManagerTest, StatelessAcrossFarmInstances) {
  // SWITCH1 on one instance, SWITCH2 on another sharing the partition state.
  ChannelManager other(partition_, &peers_, rng_.fork());
  const core::SignedUserTicket ut = make_user_ticket(0);
  core::Switch1Request r1;
  r1.user_ticket = ut.encode();
  r1.channel_id = 1;
  const core::Switch1Response resp1 = cm_->handle_switch1(r1, addr_, 0);
  ASSERT_EQ(resp1.error, DrmError::kOk);
  core::Switch2Request r2;
  r2.user_ticket = r1.user_ticket;
  r2.channel_id = 1;
  r2.challenge = resp1.challenge;
  r2.proof = crypto::rsa_sign(client_keys_.priv, resp1.challenge.nonce);
  const core::Switch2Response resp2 = other.handle_switch2(r2, addr_, 0);
  EXPECT_EQ(resp2.error, DrmError::kOk);
  ASSERT_TRUE(resp2.ticket.has_value());
}

TEST_F(ChannelManagerTest, RenewalsDoNotMoveLatestLogEntry) {
  const core::SignedUserTicket ut = make_user_ticket(0);
  const core::Switch2Response first = do_switch(ut, 1, 0);
  ASSERT_TRUE(first.ticket.has_value());
  const util::SimTime t0 = cm_->log().latest(42, 1)->time;

  const core::Switch2Response renewed =
      do_switch(make_user_ticket(8 * kMinute), 0, 8 * kMinute, first.ticket->encode());
  ASSERT_EQ(renewed.error, DrmError::kOk);
  EXPECT_EQ(cm_->log().latest(42, 1)->time, t0);  // fresh-issue entry unchanged
  EXPECT_EQ(cm_->log().size(), 2u);               // but audited
}

}  // namespace
}  // namespace p2pdrm::services
