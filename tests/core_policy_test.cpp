#include <gtest/gtest.h>

#include "core/policy.h"

namespace p2pdrm::core {
namespace {

using util::kHour;
using util::kNullTime;

Attribute attr(const std::string& name, AttrValue value,
               util::SimTime stime = kNullTime, util::SimTime etime = kNullTime) {
  Attribute a;
  a.name = name;
  a.value = std::move(value);
  a.stime = stime;
  a.etime = etime;
  return a;
}

Policy policy(std::uint32_t priority, std::vector<PolicyTerm> terms, PolicyAction action) {
  Policy p;
  p.priority = priority;
  p.terms = std::move(terms);
  p.action = action;
  return p;
}

/// The paper's Fig. 2 channel A: Region=100 & Subscription=101 -> ACCEPT,
/// Region=101 -> ACCEPT.
ChannelRecord channel_a() {
  ChannelRecord c;
  c.id = 1;
  c.name = "Channel A";
  c.attributes.add(attr(kAttrRegion, AttrValue::of("100")));
  c.attributes.add(attr(kAttrRegion, AttrValue::of("101")));
  c.attributes.add(attr(kAttrSubscription, AttrValue::of("101")));
  c.policies.push_back(policy(50,
                              {{kAttrRegion, AttrValue::of("100")},
                               {kAttrSubscription, AttrValue::of("101")}},
                              PolicyAction::kAccept));
  c.policies.push_back(
      policy(50, {{kAttrRegion, AttrValue::of("101")}}, PolicyAction::kAccept));
  return c;
}

AttributeSet user_in_region_100_with_sub() {
  AttributeSet u;
  u.add(attr(kAttrRegion, AttrValue::of("100")));
  u.add(attr(kAttrSubscription, AttrValue::of("101")));
  return u;
}

TEST(PolicyEvalTest, Fig2SubscriberInRegion100Accepted) {
  const EvalResult r = evaluate_policies(channel_a(), user_in_region_100_with_sub(), 0);
  EXPECT_EQ(r.decision, AccessDecision::kAccept);
  EXPECT_EQ(r.decided_by_priority, 50u);
}

TEST(PolicyEvalTest, Fig2Region101FreeToView) {
  AttributeSet u;
  u.add(attr(kAttrRegion, AttrValue::of("101")));
  EXPECT_EQ(evaluate_policies(channel_a(), u, 0).decision, AccessDecision::kAccept);
}

TEST(PolicyEvalTest, Region100WithoutSubscriptionRejected) {
  AttributeSet u;
  u.add(attr(kAttrRegion, AttrValue::of("100")));
  EXPECT_EQ(evaluate_policies(channel_a(), u, 0).decision, AccessDecision::kReject);
}

TEST(PolicyEvalTest, ForeignRegionRejected) {
  AttributeSet u;
  u.add(attr(kAttrRegion, AttrValue::of("999")));
  u.add(attr(kAttrSubscription, AttrValue::of("101")));
  EXPECT_EQ(evaluate_policies(channel_a(), u, 0).decision, AccessDecision::kReject);
}

TEST(PolicyEvalTest, EmptyUserAttributesRejected) {
  EXPECT_EQ(evaluate_policies(channel_a(), AttributeSet{}, 0).decision,
            AccessDecision::kReject);
}

TEST(PolicyEvalTest, NoPoliciesDefaultReject) {
  ChannelRecord c;
  c.id = 9;
  c.attributes.add(attr(kAttrRegion, AttrValue::of("100")));
  const EvalResult r = evaluate_policies(c, user_in_region_100_with_sub(), 0);
  EXPECT_EQ(r.decision, AccessDecision::kReject);
  EXPECT_EQ(r.decided_by_priority, 0u);
}

// The paper's blackout construction (Fig. 2 channel B): during the window a
// Region=ANY attribute is active and grounds a priority-100 REJECT.
TEST(PolicyEvalTest, BlackoutWindow) {
  ChannelRecord c = channel_a();
  c.attributes.add(attr(kAttrRegion, AttrValue::any(), 20 * kHour, 21 * kHour));
  c.policies.push_back(
      policy(100, {{kAttrRegion, AttrValue::any()}}, PolicyAction::kReject));

  const AttributeSet u = user_in_region_100_with_sub();
  // Before the window: REJECT policy is not grounded, ACCEPT fires.
  EXPECT_EQ(evaluate_policies(c, u, 19 * kHour).decision, AccessDecision::kAccept);
  // Inside the window: priority 100 REJECT overrides priority 50 ACCEPTs.
  EXPECT_EQ(evaluate_policies(c, u, 20 * kHour + 30 * util::kMinute).decision,
            AccessDecision::kReject);
  EXPECT_EQ(evaluate_policies(c, u, 21 * kHour).decision, AccessDecision::kReject);
  // After the window: access restored.
  EXPECT_EQ(evaluate_policies(c, u, 21 * kHour + 1).decision, AccessDecision::kAccept);
}

TEST(PolicyEvalTest, HigherPriorityWinsRegardlessOfOrder) {
  ChannelRecord c;
  c.id = 2;
  c.attributes.add(attr(kAttrRegion, AttrValue::of("100")));
  // Listed low-priority first; the high-priority REJECT must still win.
  c.policies.push_back(
      policy(10, {{kAttrRegion, AttrValue::of("100")}}, PolicyAction::kAccept));
  c.policies.push_back(
      policy(90, {{kAttrRegion, AttrValue::of("100")}}, PolicyAction::kReject));

  AttributeSet u;
  u.add(attr(kAttrRegion, AttrValue::of("100")));
  const EvalResult r = evaluate_policies(c, u, 0);
  EXPECT_EQ(r.decision, AccessDecision::kReject);
  EXPECT_EQ(r.decided_by_priority, 90u);
}

TEST(PolicyEvalTest, EqualPriorityResolvesInListingOrder) {
  ChannelRecord c;
  c.id = 3;
  c.attributes.add(attr(kAttrRegion, AttrValue::of("100")));
  c.policies.push_back(
      policy(50, {{kAttrRegion, AttrValue::of("100")}}, PolicyAction::kAccept));
  c.policies.push_back(
      policy(50, {{kAttrRegion, AttrValue::of("100")}}, PolicyAction::kReject));
  AttributeSet u;
  u.add(attr(kAttrRegion, AttrValue::of("100")));
  EXPECT_EQ(evaluate_policies(c, u, 0).decision, AccessDecision::kAccept);
}

TEST(PolicyEvalTest, ExpiredUserAttributeDoesNotSatisfy) {
  ChannelRecord c;
  c.id = 4;
  c.attributes.add(attr(kAttrSubscription, AttrValue::of("101")));
  c.policies.push_back(
      policy(50, {{kAttrSubscription, AttrValue::of("101")}}, PolicyAction::kAccept));

  AttributeSet u;
  u.add(attr(kAttrSubscription, AttrValue::of("101"), kNullTime, 5 * kHour));
  EXPECT_EQ(evaluate_policies(c, u, 4 * kHour).decision, AccessDecision::kAccept);
  EXPECT_EQ(evaluate_policies(c, u, 6 * kHour).decision, AccessDecision::kReject);
}

TEST(PolicyEvalTest, FutureUserAttributeNotYetValid) {
  ChannelRecord c;
  c.id = 5;
  c.attributes.add(attr(kAttrSubscription, AttrValue::of("101")));
  c.policies.push_back(
      policy(50, {{kAttrSubscription, AttrValue::of("101")}}, PolicyAction::kAccept));
  AttributeSet u;
  u.add(attr(kAttrSubscription, AttrValue::of("101"), 10 * kHour, kNullTime));
  EXPECT_EQ(evaluate_policies(c, u, 5 * kHour).decision, AccessDecision::kReject);
  EXPECT_EQ(evaluate_policies(c, u, 11 * kHour).decision, AccessDecision::kAccept);
}

TEST(PolicyEvalTest, MultiTermConjunction) {
  ChannelRecord c;
  c.id = 6;
  c.attributes.add(attr(kAttrRegion, AttrValue::of("100")));
  c.attributes.add(attr(kAttrSubscription, AttrValue::of("HD")));
  c.attributes.add(attr(kAttrVersion, AttrValue::of("2")));
  c.policies.push_back(policy(50,
                              {{kAttrRegion, AttrValue::of("100")},
                               {kAttrSubscription, AttrValue::of("HD")},
                               {kAttrVersion, AttrValue::of("2")}},
                              PolicyAction::kAccept));

  AttributeSet u;
  u.add(attr(kAttrRegion, AttrValue::of("100")));
  u.add(attr(kAttrSubscription, AttrValue::of("HD")));
  EXPECT_EQ(evaluate_policies(c, u, 0).decision, AccessDecision::kReject);
  u.add(attr(kAttrVersion, AttrValue::of("2")));
  EXPECT_EQ(evaluate_policies(c, u, 0).decision, AccessDecision::kAccept);
}

TEST(PolicyEvalTest, ChannelAccessibleHelper) {
  EXPECT_TRUE(channel_accessible(channel_a(), user_in_region_100_with_sub(), 0));
  EXPECT_FALSE(channel_accessible(channel_a(), AttributeSet{}, 0));
}

TEST(PolicyWireTest, TermRoundTrip) {
  PolicyTerm t{"Region", AttrValue::any()};
  util::WireWriter w;
  t.encode(w);
  util::WireReader r(w.data());
  EXPECT_EQ(PolicyTerm::decode(r), t);
}

TEST(PolicyWireTest, PolicyRoundTrip) {
  const Policy p = policy(77, {{kAttrRegion, AttrValue::of("100")},
                               {kAttrSubscription, AttrValue::of("101")}},
                          PolicyAction::kReject);
  util::WireWriter w;
  p.encode(w);
  util::WireReader r(w.data());
  EXPECT_EQ(Policy::decode(r), p);
}

TEST(PolicyWireTest, ChannelRecordRoundTrip) {
  const ChannelRecord c = channel_a();
  util::WireWriter w;
  c.encode(w);
  util::WireReader r(w.data());
  EXPECT_EQ(ChannelRecord::decode(r), c);
}

TEST(PolicyWireTest, PolicyRejectsBadAction) {
  Policy p = policy(1, {}, PolicyAction::kAccept);
  util::WireWriter w;
  p.encode(w);
  util::Bytes bytes = w.take();
  bytes.back() = 7;  // action byte out of range
  util::WireReader r(bytes);
  EXPECT_THROW(Policy::decode(r), util::WireError);
}

TEST(PolicyToStringTest, RendersLikeThePaper) {
  const Policy p = policy(50,
                          {{kAttrRegion, AttrValue::of("100")},
                           {kAttrSubscription, AttrValue::of("101")}},
                          PolicyAction::kAccept);
  EXPECT_EQ(p.to_string(),
            "Priority 50: Region=100 & Subscription=101, Return ACCEPT");
}

TEST(PolicyParseTest, PaperExamples) {
  const auto p1 = parse_policy("Priority 50: Region=100 & Subscription=101, Return ACCEPT");
  ASSERT_TRUE(p1.has_value());
  EXPECT_EQ(p1->priority, 50u);
  ASSERT_EQ(p1->terms.size(), 2u);
  EXPECT_EQ(p1->terms[0].attr_name, "Region");
  EXPECT_EQ(p1->terms[0].rule.value(), "100");
  EXPECT_EQ(p1->terms[1].attr_name, "Subscription");
  EXPECT_EQ(p1->action, PolicyAction::kAccept);

  const auto p2 = parse_policy("Priority 100: Region=ANY, Return REJECT");
  ASSERT_TRUE(p2.has_value());
  EXPECT_EQ(p2->terms[0].rule, AttrValue::any());
  EXPECT_EQ(p2->action, PolicyAction::kReject);
}

TEST(PolicyParseTest, RoundTripsWithToString) {
  for (const char* text :
       {"Priority 50: Region=100 & Subscription=101, Return ACCEPT",
        "Priority 100: Region=ANY, Return REJECT",
        "Priority 1: Version=2, Return ACCEPT",
        "Priority 0: A=NONE & B=NULL & C=ALL, Return REJECT"}) {
    const auto parsed = parse_policy(text);
    ASSERT_TRUE(parsed.has_value()) << text;
    EXPECT_EQ(parsed->to_string(), text);
    // And the rendering re-parses to an equal policy.
    const auto reparsed = parse_policy(parsed->to_string());
    ASSERT_TRUE(reparsed.has_value());
    EXPECT_EQ(*reparsed, *parsed);
  }
}

TEST(PolicyParseTest, WhitespaceTolerance) {
  const auto p = parse_policy("  Priority 7:  Region = 100  &  AS = 1002 , Return ACCEPT  ");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->priority, 7u);
  EXPECT_EQ(p->terms[1].attr_name, "AS");
  EXPECT_EQ(p->terms[1].rule.value(), "1002");
}

TEST(PolicyParseTest, MalformedRejected) {
  for (const char* bad :
       {"", "Region=100, Return ACCEPT", "Priority : Region=100, Return ACCEPT",
        "Priority 50 Region=100, Return ACCEPT",
        "Priority 50: Region=100 Return ACCEPT",
        "Priority 50: Region=100, Return MAYBE",
        "Priority 50: Region, Return ACCEPT",
        "Priority 50: =100, Return ACCEPT",
        "Priority 9999999999999: Region=100, Return ACCEPT",
        "Priority 5a: Region=100, Return ACCEPT",
        "Priority 50: Region=100 & , Return ACCEPT"}) {
    EXPECT_FALSE(parse_policy(bad).has_value()) << bad;
  }
}

TEST(PolicyParseTest, EmptyTermListParses) {
  // A policy with no terms fires unconditionally; its rendering round-trips.
  const Policy unconditional = policy(5, {}, PolicyAction::kReject);
  const auto parsed = parse_policy(unconditional.to_string());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, unconditional);
}

}  // namespace
}  // namespace p2pdrm::core
