// Unit tests for the synchronous client's local logic (cache handling,
// ticket slack, state transitions) — the integration suite covers the
// protocol; these pin the client-side behaviors around it.
#include <gtest/gtest.h>

#include "client/testbed.h"

namespace p2pdrm::client {
namespace {

using core::DrmError;
using util::kMinute;

class ClientUnitTest : public ::testing::Test {
 protected:
  ClientUnitTest() : tb_(make_config()) {
    tb_.add_user("u@example.com", "pw");
    region_ = tb_.geo().region_at(0);
    tb_.add_regional_channel(1, "one", region_);
    tb_.add_regional_channel(2, "two", region_);
    tb_.start_channel_server(1);
    tb_.start_channel_server(2);
  }

  static TestbedConfig make_config() {
    TestbedConfig cfg;
    cfg.seed = 4242;
    return cfg;
  }

  std::size_t rounds_of(const Client& c, Round round) {
    return static_cast<std::size_t>(
        std::count_if(c.feedback_log().begin(), c.feedback_log().end(),
                      [&](const LatencySample& s) { return s.round == round; }));
  }

  Testbed tb_;
  geo::RegionId region_ = 0;
};

TEST_F(ClientUnitTest, FreshClientHasNoState) {
  Client& c = tb_.add_client("u@example.com", "pw", region_);
  EXPECT_FALSE(c.logged_in());
  EXPECT_FALSE(c.user_ticket().has_value());
  EXPECT_FALSE(c.channel_ticket().has_value());
  EXPECT_FALSE(c.current_channel().has_value());
  EXPECT_TRUE(c.viewable_channels().empty());
  EXPECT_EQ(c.peer(), nullptr);
  EXPECT_FALSE(c.parent().has_value());
}

TEST_F(ClientUnitTest, SwitchBeforeLoginTriggersLogin) {
  // switch_channel calls ensure_user_ticket, which logs in when needed —
  // the paper's transparent single sign-on.
  Client& c = tb_.add_client("u@example.com", "pw", region_);
  EXPECT_EQ(c.switch_channel(1), DrmError::kOk);
  EXPECT_TRUE(c.logged_in());
  EXPECT_EQ(rounds_of(c, Round::kLogin1), 1u);
}

TEST_F(ClientUnitTest, EnsureUserTicketNoopWhenFresh) {
  Client& c = tb_.add_client("u@example.com", "pw", region_);
  ASSERT_EQ(c.login(), DrmError::kOk);
  ASSERT_EQ(c.ensure_user_ticket(), DrmError::kOk);
  ASSERT_EQ(c.ensure_user_ticket(), DrmError::kOk);
  EXPECT_EQ(rounds_of(c, Round::kLogin1), 1u);  // no re-login happened
}

TEST_F(ClientUnitTest, EnsureUserTicketRenewsInsideSlack) {
  Client& c = tb_.add_client("u@example.com", "pw", region_);
  ASSERT_EQ(c.login(), DrmError::kOk);
  tb_.clock().advance(29 * kMinute);  // lifetime 30 min, slack 2 min
  ASSERT_EQ(c.ensure_user_ticket(), DrmError::kOk);
  EXPECT_EQ(rounds_of(c, Round::kLogin1), 2u);
}

TEST_F(ClientUnitTest, ViewableChannelsReflectPolicies) {
  Client& c = tb_.add_client("u@example.com", "pw", region_);
  ASSERT_EQ(c.login(), DrmError::kOk);
  EXPECT_EQ(c.viewable_channels(), (std::vector<util::ChannelId>{1, 2}));

  // Blacking out channel 2 removes it from the evaluation. The admin action
  // happens strictly later than the original deployment so the Region
  // attribute's utime visibly advances (same-instant changes would compare
  // equal and skip the refetch).
  tb_.clock().advance(kMinute);
  const util::SimTime now = tb_.clock().now();
  tb_.policy_manager().blackout(2, now, now + util::kHour, now);
  ASSERT_EQ(c.login(), DrmError::kOk);  // refresh cache via utimes
  EXPECT_EQ(c.viewable_channels(), (std::vector<util::ChannelId>{1}));
}

TEST_F(ClientUnitTest, CachedChannelListSurvivesQuietRelogins) {
  Client& c = tb_.add_client("u@example.com", "pw", region_);
  ASSERT_EQ(c.login(), DrmError::kOk);
  const std::size_t size_before = c.cached_channels().size();
  // No admin changes: re-login must keep (not refetch or corrupt) the cache.
  tb_.clock().advance(5 * kMinute);
  ASSERT_EQ(c.login(), DrmError::kOk);
  EXPECT_EQ(c.cached_channels().size(), size_before);
}

TEST_F(ClientUnitTest, PartialRefreshMergesNewChannels) {
  Client& c = tb_.add_client("u@example.com", "pw", region_);
  ASSERT_EQ(c.login(), DrmError::kOk);
  EXPECT_EQ(c.cached_channels().size(), 2u);

  tb_.clock().advance(kMinute);  // the lineup change happens later in time
  tb_.add_regional_channel(3, "three", region_);
  tb_.start_channel_server(3);
  ASSERT_EQ(c.login(), DrmError::kOk);  // stale Region utime -> partial fetch
  EXPECT_EQ(c.cached_channels().size(), 3u);
  EXPECT_EQ(c.switch_channel(3), DrmError::kOk);
}

TEST_F(ClientUnitTest, SwitchingReplacesChannelTicket) {
  Client& c = tb_.add_client("u@example.com", "pw", region_);
  ASSERT_EQ(c.switch_channel(1), DrmError::kOk);
  const util::Bytes first = c.channel_ticket()->encode();
  ASSERT_EQ(c.switch_channel(2), DrmError::kOk);
  EXPECT_EQ(c.current_channel(), 2u);
  EXPECT_NE(c.channel_ticket()->encode(), first);
  // A client is a member of one P2P network at a time (§III): the peer is
  // rebuilt for the new channel.
  ASSERT_NE(c.peer(), nullptr);
  EXPECT_EQ(c.peer()->config().channel, 2u);
}

TEST_F(ClientUnitTest, RenewWithoutChannelTicketFails) {
  Client& c = tb_.add_client("u@example.com", "pw", region_);
  ASSERT_EQ(c.login(), DrmError::kOk);
  EXPECT_EQ(c.renew_channel_ticket(), DrmError::kBadTicket);
}

TEST_F(ClientUnitTest, ReceiveWithoutPeerReturnsNothing) {
  Client& c = tb_.add_client("u@example.com", "pw", region_);
  core::ContentPacket p;
  EXPECT_FALSE(c.receive(p).has_value());
}

TEST_F(ClientUnitTest, FailedRoundsRecordedAsFailures) {
  Client& c = tb_.add_client("u@example.com", "wrong-password", region_);
  EXPECT_NE(c.login(), DrmError::kOk);
  // LOGIN1 succeeded at the transport level (server answered) but the flow
  // aborted before LOGIN2 — no LOGIN2 sample, nothing marked success=false
  // spuriously.
  EXPECT_EQ(rounds_of(c, Round::kLogin1), 1u);
  EXPECT_EQ(rounds_of(c, Round::kLogin2), 0u);
}

}  // namespace
}  // namespace p2pdrm::client
