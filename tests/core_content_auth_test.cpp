// Authenticated content packets — the channel-hijack detector (§IV-E).
#include <gtest/gtest.h>

#include "core/content.h"

namespace p2pdrm::core {
namespace {

using util::Bytes;
using util::bytes_of;

ContentKey key_with_serial(std::uint8_t serial, std::uint64_t seed = 1) {
  crypto::SecureRandom rng(seed);
  return generate_content_key(rng, serial, 0);
}

TEST(AuthPacketTest, RoundTrip) {
  const ContentKey key = key_with_serial(3);
  const Bytes payload = bytes_of("authenticated live frame");
  const ContentPacket p = encrypt_packet_authenticated(key, 7, 42, payload);
  EXPECT_EQ(p.key_serial, 3);
  EXPECT_GT(p.payload.size(), payload.size());  // carries the MAC

  const AuthenticatedPayload out = decrypt_packet_authenticated(key, p);
  EXPECT_EQ(out.verdict, PacketVerdict::kOk);
  EXPECT_EQ(out.plaintext, payload);
}

TEST(AuthPacketTest, WrongSerialIsUnknownKey) {
  const ContentKey k3 = key_with_serial(3);
  const ContentKey k4 = key_with_serial(4, 2);
  const ContentPacket p = encrypt_packet_authenticated(k3, 7, 1, bytes_of("x"));
  EXPECT_EQ(decrypt_packet_authenticated(k4, p).verdict, PacketVerdict::kUnknownKey);
}

TEST(AuthPacketTest, RogueInjectionDetected) {
  // A hijacker without the content key forges a packet claiming the current
  // serial: receivers flag it as hijacked rather than playing garbage.
  const ContentKey key = key_with_serial(5);
  ContentPacket rogue;
  rogue.channel = 7;
  rogue.key_serial = 5;
  rogue.seq = 99;
  rogue.payload = bytes_of("rogue content masquerading as legitimate........");
  EXPECT_EQ(decrypt_packet_authenticated(key, rogue).verdict, PacketVerdict::kHijacked);
}

TEST(AuthPacketTest, BitFlipsDetected) {
  const ContentKey key = key_with_serial(1);
  const ContentPacket p = encrypt_packet_authenticated(key, 1, 0, bytes_of("frame"));
  for (std::size_t pos = 0; pos < p.payload.size(); pos += 5) {
    ContentPacket corrupted = p;
    corrupted.payload[pos] ^= 0x80;
    EXPECT_EQ(decrypt_packet_authenticated(key, corrupted).verdict,
              PacketVerdict::kHijacked)
        << "pos " << pos;
  }
}

TEST(AuthPacketTest, HeaderTamperingDetected) {
  // Splicing an authentic payload onto a different seq/channel fails: the
  // MAC covers the header.
  const ContentKey key = key_with_serial(1);
  const ContentPacket p = encrypt_packet_authenticated(key, 1, 10, bytes_of("frame"));
  ContentPacket respliced = p;
  respliced.seq = 11;
  EXPECT_EQ(decrypt_packet_authenticated(key, respliced).verdict,
            PacketVerdict::kHijacked);
  ContentPacket rechanneled = p;
  rechanneled.channel = 2;
  EXPECT_EQ(decrypt_packet_authenticated(key, rechanneled).verdict,
            PacketVerdict::kHijacked);
}

TEST(AuthPacketTest, TruncatedPayloadDetected) {
  const ContentKey key = key_with_serial(1);
  ContentPacket p = encrypt_packet_authenticated(key, 1, 0, bytes_of("frame"));
  p.payload.resize(10);  // shorter than a MAC
  EXPECT_EQ(decrypt_packet_authenticated(key, p).verdict, PacketVerdict::kHijacked);
}

TEST(AuthPacketTest, ExpiredKeyHolderCannotForgeCurrentSerial) {
  // Forward secrecy against evicted clients: holding serial-3 material does
  // not let you forge serial-4 traffic that serial-4 holders accept.
  const ContentKey k3 = key_with_serial(3);
  const ContentKey k4 = key_with_serial(4, 9);
  // Attacker (has k3) builds a packet claiming serial 4 using k3's keys.
  ContentPacket forged = encrypt_packet_authenticated(k3, 1, 0, bytes_of("fake"));
  forged.key_serial = 4;
  EXPECT_EQ(decrypt_packet_authenticated(k4, forged).verdict, PacketVerdict::kHijacked);
}

TEST(AuthPacketTest, EmptyPayloadRoundTrip) {
  const ContentKey key = key_with_serial(1);
  const ContentPacket p = encrypt_packet_authenticated(key, 1, 0, {});
  const AuthenticatedPayload out = decrypt_packet_authenticated(key, p);
  EXPECT_EQ(out.verdict, PacketVerdict::kOk);
  EXPECT_TRUE(out.plaintext.empty());
}

TEST(AuthPacketTest, WireRoundTripPreservesAuthentication) {
  const ContentKey key = key_with_serial(2);
  const ContentPacket p = encrypt_packet_authenticated(key, 3, 5, bytes_of("data"));
  const ContentPacket decoded = ContentPacket::decode(p.encode());
  EXPECT_EQ(decrypt_packet_authenticated(key, decoded).verdict, PacketVerdict::kOk);
}

}  // namespace
}  // namespace p2pdrm::core
