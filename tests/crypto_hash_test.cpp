#include <gtest/gtest.h>

#include "crypto/chacha20.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "util/bytes.h"

namespace p2pdrm::crypto {
namespace {

using util::Bytes;
using util::bytes_of;
using util::from_hex;
using util::to_hex;

std::string digest_hex(const Sha256Digest& d) {
  return to_hex(util::BytesView(d.data(), d.size()));
}

// --- SHA-256: FIPS 180-4 / NIST CAVP vectors ---

TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(digest_hex(sha256({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(digest_hex(sha256(bytes_of("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(digest_hex(sha256(bytes_of(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 h;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(digest_hex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  const Bytes msg = bytes_of("the quick brown fox jumps over the lazy dog");
  for (std::size_t split = 0; split <= msg.size(); ++split) {
    Sha256 h;
    h.update(util::BytesView(msg.data(), split));
    h.update(util::BytesView(msg.data() + split, msg.size() - split));
    EXPECT_EQ(h.finish(), sha256(msg)) << "split at " << split;
  }
}

TEST(Sha256Test, ExactBlockBoundaries) {
  // 55/56/63/64/65 bytes straddle the padding edge cases.
  for (std::size_t len : {55u, 56u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    const Bytes msg(len, 0x5a);
    Sha256 h;
    h.update(msg);
    EXPECT_EQ(h.finish(), sha256(msg)) << "len " << len;
  }
}

TEST(Sha256Test, ResetReusesObject) {
  Sha256 h;
  h.update(bytes_of("abc"));
  (void)h.finish();
  h.reset();
  h.update(bytes_of("abc"));
  EXPECT_EQ(digest_hex(h.finish()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, BytesHelper) {
  EXPECT_EQ(sha256_bytes(bytes_of("abc")).size(), kSha256DigestSize);
}

// --- HMAC-SHA-256: RFC 4231 vectors ---

TEST(HmacTest, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(digest_hex(hmac_sha256(key, bytes_of("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231Case2) {
  EXPECT_EQ(digest_hex(hmac_sha256(bytes_of("Jefe"),
                                   bytes_of("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes data(50, 0xdd);
  EXPECT_EQ(digest_hex(hmac_sha256(key, data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacTest, Rfc4231Case6LongKey) {
  const Bytes key(131, 0xaa);
  EXPECT_EQ(digest_hex(hmac_sha256(
                key, bytes_of("Test Using Larger Than Block-Size Key - Hash Key First"))),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacTest, IncrementalMatchesOneShot) {
  const Bytes key = bytes_of("attestation-key");
  const Bytes data = bytes_of("some client binary region");
  HmacSha256 h(key);
  h.update(util::BytesView(data.data(), 10));
  h.update(util::BytesView(data.data() + 10, data.size() - 10));
  EXPECT_EQ(h.finish(), hmac_sha256(key, data));
}

TEST(HmacTest, DifferentKeysDiffer) {
  const Bytes data = bytes_of("payload");
  EXPECT_NE(hmac_sha256(bytes_of("k1"), data), hmac_sha256(bytes_of("k2"), data));
}

TEST(DeriveKeyTest, LengthAndDeterminism) {
  const Bytes key = bytes_of("master");
  const Bytes a = derive_key(key, bytes_of("label"), 48);
  const Bytes b = derive_key(key, bytes_of("label"), 48);
  EXPECT_EQ(a.size(), 48u);
  EXPECT_EQ(a, b);
}

TEST(DeriveKeyTest, LabelSeparation) {
  const Bytes key = bytes_of("master");
  EXPECT_NE(derive_key(key, bytes_of("a"), 32), derive_key(key, bytes_of("b"), 32));
}

TEST(DeriveKeyTest, PrefixConsistency) {
  const Bytes key = bytes_of("master");
  const Bytes long_out = derive_key(key, bytes_of("label"), 64);
  const Bytes short_out = derive_key(key, bytes_of("label"), 32);
  EXPECT_EQ(Bytes(long_out.begin(), long_out.begin() + 32), short_out);
}

// --- ChaCha20: RFC 8439 vectors ---

TEST(ChaCha20Test, Rfc8439BlockFunction) {
  ChaChaKey key;
  for (int i = 0; i < 32; ++i) key[i] = static_cast<std::uint8_t>(i);
  ChaChaNonce nonce{};
  const Bytes nonce_bytes = from_hex("000000090000004a00000000");
  std::copy(nonce_bytes.begin(), nonce_bytes.end(), nonce.begin());

  std::uint8_t out[kChaChaBlockSize];
  chacha20_block(key, nonce, 1, out);
  EXPECT_EQ(to_hex(util::BytesView(out, 64)),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e");
}

TEST(ChaCha20Test, Rfc8439Encryption) {
  ChaChaKey key;
  for (int i = 0; i < 32; ++i) key[i] = static_cast<std::uint8_t>(i);
  ChaChaNonce nonce{};
  const Bytes nonce_bytes = from_hex("000000000000004a00000000");
  std::copy(nonce_bytes.begin(), nonce_bytes.end(), nonce.begin());

  Bytes plaintext = bytes_of(
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.");
  chacha20_xor(key, nonce, 1, plaintext);
  EXPECT_EQ(to_hex(util::BytesView(plaintext.data(), 16)),
            "6e2e359a2568f98041ba0728dd0d6981");
}

TEST(ChaCha20Test, XorIsInvolution) {
  ChaChaKey key{};
  key[0] = 7;
  ChaChaNonce nonce{};
  Bytes data = bytes_of("round trip me");
  const Bytes original = data;
  chacha20_xor(key, nonce, 0, data);
  EXPECT_NE(data, original);
  chacha20_xor(key, nonce, 0, data);
  EXPECT_EQ(data, original);
}

// --- SecureRandom (DRBG) ---

TEST(SecureRandomTest, DeterministicFromSeed) {
  SecureRandom a(42), b(42);
  EXPECT_EQ(a.bytes(64), b.bytes(64));
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(SecureRandomTest, DifferentSeedsDiffer) {
  SecureRandom a(1), b(2);
  EXPECT_NE(a.bytes(32), b.bytes(32));
}

TEST(SecureRandomTest, UniformBoundRespected) {
  SecureRandom rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform(10), 10u);
  }
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_range(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(SecureRandomTest, UniformRealInUnitInterval) {
  SecureRandom rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform_real();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(SecureRandomTest, ExponentialMean) {
  SecureRandom rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(SecureRandomTest, NormalMoments) {
  SecureRandom rng(13);
  double sum = 0, sum_sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(3.0, 2.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(SecureRandomTest, ForkIndependence) {
  SecureRandom parent(5);
  SecureRandom child = parent.fork();
  EXPECT_NE(parent.bytes(32), child.bytes(32));
}

TEST(SecureRandomTest, ChanceExtremes) {
  SecureRandom rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

}  // namespace
}  // namespace p2pdrm::crypto
