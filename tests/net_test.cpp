// Network substrate: envelope codec, delivery/latency/loss semantics.
#include <gtest/gtest.h>

#include <optional>

#include "net/deployment.h"
#include "net/envelope.h"
#include "net/network.h"
#include "net/service_nodes.h"

namespace p2pdrm::net {
namespace {

using util::Bytes;
using util::bytes_of;
using util::kMillisecond;

TEST(EnvelopeTest, RoundTrip) {
  Envelope e;
  e.kind = MsgKind::kSwitch2Request;
  e.request_id = 0xdeadbeefcafeull;
  e.payload = bytes_of("payload");
  const auto d = Envelope::decode(e.encode());
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->kind, e.kind);
  EXPECT_EQ(d->request_id, e.request_id);
  EXPECT_EQ(d->payload, e.payload);
}

TEST(EnvelopeTest, MalformedRejected) {
  EXPECT_FALSE(Envelope::decode({}).has_value());
  EXPECT_FALSE(Envelope::decode(bytes_of("x")).has_value());
  // Bad kind byte.
  Envelope e;
  e.kind = MsgKind::kContent;
  Bytes wire = e.encode();
  wire[0] = 200;
  EXPECT_FALSE(Envelope::decode(wire).has_value());
  wire[0] = 0;
  EXPECT_FALSE(Envelope::decode(wire).has_value());
  // Trailing junk.
  Bytes trailing = e.encode();
  trailing.push_back(0);
  EXPECT_FALSE(Envelope::decode(trailing).has_value());
}

TEST(EnvelopeTest, KindNames) {
  EXPECT_EQ(to_string(MsgKind::kLogin1Request), "login1-req");
  EXPECT_EQ(to_string(MsgKind::kContent), "content");
}

class RecordingNode final : public Node {
 public:
  void on_packet(const Packet& packet) override { received.push_back(packet); }
  std::vector<Packet> received;
};

LinkConfig fast_link() {
  LinkConfig link;
  link.latency.floor = 10 * kMillisecond;
  link.latency.median = 20 * kMillisecond;
  link.latency.sigma = 0.2;
  return link;
}

TEST(NetworkTest, DeliversWithLatency) {
  sim::Simulation sim;
  Network net(sim, fast_link(), crypto::SecureRandom(1));
  RecordingNode a, b;
  net.attach(1, util::parse_netaddr("10.0.0.1"), &a);
  net.attach(2, util::parse_netaddr("10.0.0.2"), &b);

  net.send(1, 2, bytes_of("hello"));
  EXPECT_TRUE(b.received.empty());  // nothing until events run
  sim.run();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].from, 1u);
  EXPECT_EQ(b.received[0].from_addr, util::parse_netaddr("10.0.0.1"));
  EXPECT_EQ(b.received[0].data, bytes_of("hello"));
  EXPECT_GE(sim.now(), 10 * kMillisecond);  // at least the floor
}

TEST(NetworkTest, UnknownDestinationVanishes) {
  sim::Simulation sim;
  Network net(sim, fast_link(), crypto::SecureRandom(2));
  RecordingNode a;
  net.attach(1, util::parse_netaddr("10.0.0.1"), &a);
  net.send(1, 99, bytes_of("void"));
  sim.run();
  EXPECT_EQ(net.packets_dropped(), 1u);
}

TEST(NetworkTest, DetachDropsInFlight) {
  sim::Simulation sim;
  Network net(sim, fast_link(), crypto::SecureRandom(3));
  RecordingNode a, b;
  net.attach(1, util::parse_netaddr("10.0.0.1"), &a);
  net.attach(2, util::parse_netaddr("10.0.0.2"), &b);
  net.send(1, 2, bytes_of("late"));
  net.detach(2);
  sim.run();
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(net.packets_dropped(), 1u);
}

TEST(NetworkTest, LossDropsProbabilistically) {
  sim::Simulation sim;
  LinkConfig lossy = fast_link();
  lossy.loss = 0.5;
  Network net(sim, lossy, crypto::SecureRandom(4));
  RecordingNode a, b;
  net.attach(1, util::parse_netaddr("10.0.0.1"), &a);
  net.attach(2, util::parse_netaddr("10.0.0.2"), &b);
  for (int i = 0; i < 1000; ++i) net.send(1, 2, bytes_of("x"));
  sim.run();
  // Both endpoints lossy: delivery probability (1-0.5)^2 = 0.25.
  EXPECT_NEAR(static_cast<double>(b.received.size()), 250.0, 60.0);
  EXPECT_EQ(net.packets_sent(), 1000u);
  EXPECT_EQ(net.packets_delivered(), b.received.size());
}

TEST(NetworkTest, PerNodeLinkOverride) {
  sim::Simulation sim;
  Network net(sim, fast_link(), crypto::SecureRandom(5));
  RecordingNode a, b;
  net.attach(1, util::parse_netaddr("10.0.0.1"), &a);
  net.attach(2, util::parse_netaddr("10.0.0.2"), &b);
  LinkConfig broken = fast_link();
  broken.loss = 1.0;
  net.set_link(2, broken);
  for (int i = 0; i < 20; ++i) net.send(1, 2, bytes_of("x"));
  sim.run();
  EXPECT_TRUE(b.received.empty());
}

TEST(NetworkTest, AddressLookup) {
  sim::Simulation sim;
  Network net(sim, fast_link(), crypto::SecureRandom(6));
  RecordingNode a;
  net.attach(7, util::parse_netaddr("10.1.1.1"), &a);
  EXPECT_EQ(net.addr_of(7), util::parse_netaddr("10.1.1.1"));
  EXPECT_EQ(net.node_at(util::parse_netaddr("10.1.1.1")), 7u);
  EXPECT_FALSE(net.addr_of(9).has_value());
  EXPECT_FALSE(net.node_at(util::parse_netaddr("10.9.9.9")).has_value());
  net.detach(7);
  EXPECT_FALSE(net.node_at(util::parse_netaddr("10.1.1.1")).has_value());
}

TEST(NetworkTest, DeterministicForSeed) {
  const auto run = [] {
    sim::Simulation sim;
    LinkConfig lossy = fast_link();
    lossy.loss = 0.3;
    Network net(sim, lossy, crypto::SecureRandom(42));
    RecordingNode a, b;
    net.attach(1, util::parse_netaddr("10.0.0.1"), &a);
    net.attach(2, util::parse_netaddr("10.0.0.2"), &b);
    for (int i = 0; i < 100; ++i) net.send(1, 2, {static_cast<std::uint8_t>(i)});
    sim.run();
    std::vector<std::uint8_t> order;
    for (const Packet& p : b.received) order.push_back(p.data[0]);
    return order;
  };
  EXPECT_EQ(run(), run());
}

TEST(ServiceNodeTest, MalformedPacketsSilentlyDropped) {
  // Garbage at a manager node elicits no response at all (no error replies
  // an attacker could use as an oracle or amplifier).
  sim::Simulation sim;
  Network net(sim, fast_link(), crypto::SecureRandom(8));
  crypto::SecureRandom rng(9);
  auto domain = std::make_shared<services::UserManagerDomain>(
      services::UserManagerConfig{}, crypto::generate_rsa_keypair(rng, 512),
      rng.bytes(32));
  services::UserManager um(domain, nullptr, rng.fork());
  UserManagerNode um_node(um, net, 2);
  RecordingNode client;
  net.attach(1, util::parse_netaddr("10.0.0.1"), &client);
  net.attach(2, util::parse_netaddr("10.0.0.2"), &um_node);

  net.send(1, 2, util::bytes_of("not an envelope"));
  Envelope wrong_kind;
  wrong_kind.kind = MsgKind::kJoinRequest;  // not a UM message
  wrong_kind.payload = util::bytes_of("x");
  net.send(1, 2, wrong_kind.encode());
  Envelope bad_payload;
  bad_payload.kind = MsgKind::kLogin1Request;
  bad_payload.payload = util::bytes_of("truncated");
  net.send(1, 2, bad_payload.encode());
  sim.run();
  EXPECT_TRUE(client.received.empty());
}

TEST(ServiceNodeTest, ProcessingDelayDefersResponse) {
  sim::Simulation sim;
  LinkConfig instant;
  instant.latency.floor = 0;
  instant.latency.median = 1;  // ~zero network
  instant.latency.sigma = 0.01;
  Network net(sim, instant, crypto::SecureRandom(10));
  services::RedirectionManager rm;
  rm.register_domain(0, {util::parse_netaddr("10.0.0.9"), {}});
  rm.assign_user("a@x.com", 0);
  ProcessingModel slow;
  slow.light = 500 * kMillisecond;
  RedirectionNode node(rm, net, 2, slow);
  RecordingNode client;
  net.attach(1, util::parse_netaddr("10.0.0.1"), &client);
  net.attach(2, util::parse_netaddr("10.0.0.2"), &node);

  Envelope req;
  req.kind = MsgKind::kRedirectRequest;
  req.request_id = 1;
  req.payload = services::RedirectRequest{"a@x.com"}.encode();
  net.send(1, 2, req.encode());
  sim.run();
  ASSERT_EQ(client.received.size(), 1u);
  EXPECT_GE(sim.now(), 500 * kMillisecond);  // the light processing delay
}

TEST(NetworkTest, LatencyCanReorderDatagrams) {
  // High-jitter link: packets may arrive out of send order (the substrate
  // must be order-agnostic; higher layers handle it).
  sim::Simulation sim;
  LinkConfig jittery = fast_link();
  jittery.latency.sigma = 1.5;
  Network net(sim, jittery, crypto::SecureRandom(7));
  RecordingNode a, b;
  net.attach(1, util::parse_netaddr("10.0.0.1"), &a);
  net.attach(2, util::parse_netaddr("10.0.0.2"), &b);
  for (int i = 0; i < 200; ++i) net.send(1, 2, {static_cast<std::uint8_t>(i)});
  sim.run();
  ASSERT_EQ(b.received.size(), 200u);
  bool reordered = false;
  for (std::size_t i = 1; i < b.received.size(); ++i) {
    if (b.received[i].data[0] < b.received[i - 1].data[0]) reordered = true;
  }
  EXPECT_TRUE(reordered);
}

// --- client timer lifetimes across ungraceful departure ---

DeploymentConfig lifetime_config() {
  DeploymentConfig cfg;
  cfg.seed = 99;
  cfg.default_link.latency.floor = 10 * kMillisecond;
  cfg.default_link.latency.median = 40 * kMillisecond;
  cfg.default_link.latency.sigma = 0.4;
  cfg.processing.light = 1 * kMillisecond;
  cfg.processing.heavy = 8 * kMillisecond;
  return cfg;
}

TEST(ClientLifetimeTest, CrashMidLoginFiresNoRetransmitTimers) {
  // Regression: a client crashed with a request in flight must not keep
  // retransmitting from beyond the grave. The retransmit-timeout closure
  // keys off pending_, which leave() clears — so the timer finds nothing.
  Deployment d(lifetime_config());
  d.add_user("a@example.com", "pw");
  AsyncClient& c = d.add_client("a@example.com", "pw", d.geo().region_at(0));
  c.login([](core::DrmError) { FAIL() << "callback fired for a dead session"; });
  d.crash_client(c);  // the login-1 request is still pending

  d.run_for(60 * util::kSecond);  // far past every timeout and retry backoff
  EXPECT_EQ(c.retransmits(), 0u);
}

TEST(ClientLifetimeTest, DestroyedClientTimersAreInert) {
  // Harsher variant: the AsyncClient object itself is destroyed while its
  // auto-renewal timer is armed in the simulation queue. The alive-flag
  // guard must make the orphaned closure a no-op, not a use-after-free.
  Deployment d(lifetime_config());
  d.add_user("a@example.com", "pw");
  const geo::RegionId region = d.geo().region_at(0);
  d.add_regional_channel(1, "news", region);
  d.start_channel_server(1);

  AsyncClient& c = d.add_client("a@example.com", "pw", region);
  std::optional<core::DrmError> joined;
  c.login([&](core::DrmError err) {
    if (err != core::DrmError::kOk) {
      joined = err;
      return;
    }
    c.switch_channel(1, [&](core::DrmError err2) { joined = err2; });
  });
  const util::SimTime deadline = d.sim().now() + 10 * util::kMinute;
  while (!joined && d.sim().now() < deadline && d.sim().step()) {
  }
  ASSERT_EQ(joined.value_or(core::DrmError::kNoCapacity), core::DrmError::kOk);
  c.enable_auto_renewal();  // arms a timer minutes in the future

  d.remove_client(c);                // destroys the client object
  d.run_for(30 * util::kMinute);     // the orphaned timers come due: no UAF
}

}  // namespace
}  // namespace p2pdrm::net
