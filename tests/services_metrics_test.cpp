// OpsCounters aggregation: the farm-dashboard merge/reset semantics used
// by the resilience report.
#include <gtest/gtest.h>

#include "services/metrics.h"

namespace p2pdrm::services {
namespace {

using core::DrmError;

TEST(OpsCountersTest, MergeSumsTotalsAndOutcomes) {
  OpsCounters a;
  a.record(DrmError::kOk);
  a.record(DrmError::kOk);
  a.record(DrmError::kAccessDenied);

  OpsCounters b;
  b.record(DrmError::kOk);
  b.record(DrmError::kTicketExpired);

  a.merge(b);
  EXPECT_EQ(a.total(), 5u);
  EXPECT_EQ(a.successes(), 3u);
  EXPECT_EQ(a.count(DrmError::kAccessDenied), 1u);
  EXPECT_EQ(a.count(DrmError::kTicketExpired), 1u);
  EXPECT_DOUBLE_EQ(a.success_rate(), 3.0 / 5.0);
  // The source is untouched.
  EXPECT_EQ(b.total(), 2u);
}

TEST(OpsCountersTest, MergeWithEmptyIsIdentity) {
  OpsCounters a;
  a.record(DrmError::kOk);
  OpsCounters empty;
  a.merge(empty);
  EXPECT_EQ(a.total(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.total(), 1u);
  EXPECT_EQ(empty.successes(), 1u);
}

TEST(OpsCountersTest, SelfMergeDoubles) {
  OpsCounters a;
  a.record(DrmError::kOk);
  a.record(DrmError::kBadCredentials);
  a.merge(a);
  EXPECT_EQ(a.total(), 4u);
  EXPECT_EQ(a.successes(), 2u);
  EXPECT_EQ(a.count(DrmError::kBadCredentials), 2u);
}

TEST(OpsCountersTest, ResetZeroesEverything) {
  OpsCounters a;
  a.record(DrmError::kOk);
  a.record(DrmError::kAccessDenied);
  a.reset();
  EXPECT_EQ(a.total(), 0u);
  EXPECT_EQ(a.successes(), 0u);
  EXPECT_EQ(a.count(DrmError::kAccessDenied), 0u);
  EXPECT_DOUBLE_EQ(a.success_rate(), 0.0);
  // Usable again after reset.
  a.record(DrmError::kOk);
  EXPECT_EQ(a.total(), 1u);
  EXPECT_DOUBLE_EQ(a.success_rate(), 1.0);
}

TEST(OpsCountersTest, KeyRotationCountersAccumulate) {
  OpsCounters a;
  EXPECT_EQ(a.rotations_issued(), 0u);
  EXPECT_EQ(a.epochs_delivered(), 0u);
  EXPECT_EQ(a.max_key_staleness_us(), 0);
  a.record_rotation_issued();
  a.record_rotation_issued();
  a.record_epoch_delivered();
  a.note_key_staleness(500);
  a.note_key_staleness(200);   // lower: running max unchanged
  EXPECT_EQ(a.rotations_issued(), 2u);
  EXPECT_EQ(a.epochs_delivered(), 1u);
  EXPECT_EQ(a.max_key_staleness_us(), 500);
  a.note_key_staleness(900);
  EXPECT_EQ(a.max_key_staleness_us(), 900);
}

TEST(OpsCountersTest, MergeSumsKeyCountersAndMaxesStaleness) {
  OpsCounters a;
  a.record_rotation_issued();
  a.record_epoch_delivered();
  a.note_key_staleness(300);

  OpsCounters b;
  b.record_rotation_issued();
  b.record_epoch_delivered();
  b.record_epoch_delivered();
  b.note_key_staleness(1000);

  a.merge(b);
  EXPECT_EQ(a.rotations_issued(), 2u);
  EXPECT_EQ(a.epochs_delivered(), 3u);
  // Staleness is a worst-case gauge: merge takes the max, not the sum.
  EXPECT_EQ(a.max_key_staleness_us(), 1000);

  // Merging the worse side into the better one gives the same max.
  OpsCounters c;
  c.note_key_staleness(1000);
  OpsCounters d;
  d.note_key_staleness(300);
  c.merge(d);
  EXPECT_EQ(c.max_key_staleness_us(), 1000);
}

TEST(OpsCountersTest, ToStringRendersKeyPipeline) {
  OpsCounters a;
  EXPECT_EQ(a.to_string(), "(no requests)");
  a.record(DrmError::kOk);
  a.record_rotation_issued();
  a.record_epoch_delivered();
  a.note_key_staleness(1234);
  EXPECT_EQ(a.to_string(),
            "ok=1 rotations-issued=1 epochs-delivered=1 "
            "max-key-staleness-us=1234");
  // Zero key counters stay silent: a farm that never rotated renders as
  // before this subsystem existed.
  OpsCounters plain;
  plain.record(DrmError::kOk);
  EXPECT_EQ(plain.to_string(), "ok=1");
}

}  // namespace
}  // namespace p2pdrm::services
