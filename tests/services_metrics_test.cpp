// OpsCounters aggregation: the farm-dashboard merge/reset semantics used
// by the resilience report.
#include <gtest/gtest.h>

#include "services/metrics.h"

namespace p2pdrm::services {
namespace {

using core::DrmError;

TEST(OpsCountersTest, MergeSumsTotalsAndOutcomes) {
  OpsCounters a;
  a.record(DrmError::kOk);
  a.record(DrmError::kOk);
  a.record(DrmError::kAccessDenied);

  OpsCounters b;
  b.record(DrmError::kOk);
  b.record(DrmError::kTicketExpired);

  a.merge(b);
  EXPECT_EQ(a.total(), 5u);
  EXPECT_EQ(a.successes(), 3u);
  EXPECT_EQ(a.count(DrmError::kAccessDenied), 1u);
  EXPECT_EQ(a.count(DrmError::kTicketExpired), 1u);
  EXPECT_DOUBLE_EQ(a.success_rate(), 3.0 / 5.0);
  // The source is untouched.
  EXPECT_EQ(b.total(), 2u);
}

TEST(OpsCountersTest, MergeWithEmptyIsIdentity) {
  OpsCounters a;
  a.record(DrmError::kOk);
  OpsCounters empty;
  a.merge(empty);
  EXPECT_EQ(a.total(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.total(), 1u);
  EXPECT_EQ(empty.successes(), 1u);
}

TEST(OpsCountersTest, SelfMergeDoubles) {
  OpsCounters a;
  a.record(DrmError::kOk);
  a.record(DrmError::kBadCredentials);
  a.merge(a);
  EXPECT_EQ(a.total(), 4u);
  EXPECT_EQ(a.successes(), 2u);
  EXPECT_EQ(a.count(DrmError::kBadCredentials), 2u);
}

TEST(OpsCountersTest, ResetZeroesEverything) {
  OpsCounters a;
  a.record(DrmError::kOk);
  a.record(DrmError::kAccessDenied);
  a.reset();
  EXPECT_EQ(a.total(), 0u);
  EXPECT_EQ(a.successes(), 0u);
  EXPECT_EQ(a.count(DrmError::kAccessDenied), 0u);
  EXPECT_DOUBLE_EQ(a.success_rate(), 0.0);
  // Usable again after reset.
  a.record(DrmError::kOk);
  EXPECT_EQ(a.total(), 1u);
  EXPECT_DOUBLE_EQ(a.success_rate(), 1.0);
}

}  // namespace
}  // namespace p2pdrm::services
