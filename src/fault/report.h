// Resilience report: what the chaos run did to the service, from the
// viewer's side of the wire. Aggregates every client's protocol-round
// feedback log into per-round availability, sums the clients' recovery
// counters (retransmits, failovers, re-logins, rejoins), computes rejoin
// latency percentiles, and folds the manager farms' OpsCounters into one
// logical-manager view. Rendering is byte-stable: identical runs produce
// identical report strings (the determinism test diffs them directly).
#pragma once

#include <array>
#include <string>
#include <vector>

#include "client/client.h"
#include "net/deployment.h"
#include "services/metrics.h"

namespace p2pdrm::fault {

struct RoundStats {
  std::uint64_t attempts = 0;
  std::uint64_t successes = 0;

  double availability() const {
    return attempts == 0
               ? 1.0
               : static_cast<double>(successes) / static_cast<double>(attempts);
  }
};

struct ResilienceReport {
  /// Indexed by client::Round (kLogin1..kJoin).
  std::array<RoundStats, 5> rounds{};

  std::size_t clients_total = 0;
  std::size_t clients_departed = 0;
  std::size_t clients_logged_in = 0;   // live clients holding a User Ticket
  std::size_t clients_joined = 0;      // live clients holding a Channel Ticket
  /// Live clients whose Channel Ticket is still valid at collection time —
  /// the honest session count: a client whose renewals silently died keeps
  /// its stale ticket object, but not an unexpired one.
  std::size_t clients_current = 0;

  std::uint64_t retransmits = 0;
  std::uint64_t timeout_exhaustions = 0;
  std::uint64_t failovers = 0;
  std::uint64_t relogins = 0;
  std::uint64_t rejoins = 0;
  std::vector<util::SimTime> rejoin_latencies;  // sorted ascending

  /// Farm-wide manager ops (shared-state counters merged per logical
  /// manager: LOGIN1+LOGIN2 for the domain, SWITCH1+SWITCH2 across all
  /// partitions).
  services::OpsCounters login_ops;
  services::OpsCounters switch_ops;
  /// Content-key rotation pipeline across all partitions: rotations issued
  /// vs epochs delivered, plus the worst peer key staleness observed.
  services::OpsCounters key_ops;

  RoundStats& round(client::Round r) { return rounds[static_cast<std::size_t>(r)]; }
  const RoundStats& round(client::Round r) const {
    return rounds[static_cast<std::size_t>(r)];
  }

  /// Interpolation-free percentile (nearest-rank); 0 when no rejoins.
  util::SimTime rejoin_percentile(double p) const;
  util::SimTime rejoin_p50() const { return rejoin_percentile(0.50); }
  util::SimTime rejoin_p99() const { return rejoin_percentile(0.99); }

  static ResilienceReport collect(const net::Deployment& deployment);

  std::string to_string() const;
};

}  // namespace p2pdrm::fault
