// Fault engine: executes a FaultPlan against a live Deployment inside the
// discrete-event simulation. Crash/restart and clock-skew events call the
// deployment's chaos plane; partitions, loss bursts and latency spikes are
// enforced packet-by-packet through the net::SendInterceptor seam; churn
// storms kill and spawn real clients. Everything is deterministic: the
// engine draws from its own forked DRBG, so the same (seed, plan) pair
// replays the exact same packet fates and the exact same report.
#pragma once

#include <atomic>
#include <mutex>
#include <string>
#include <vector>

#include "fault/fault_plan.h"
#include "net/deployment.h"

namespace p2pdrm::fault {

struct FaultEngineConfig {
  /// Seed of the engine's own DRBG (loss-burst coin flips). Independent of
  /// the deployment's stream so arming a plan never perturbs the workload's
  /// random sequence.
  std::uint64_t seed = 0xfa017;
  /// Clients spawned by churn-storm arrivals get accounts named
  /// "<prefix><serial>@fault" and rotate through the geo plan's regions
  /// (or all land in arrival_region when set — required when the stormed
  /// channel is regional, since out-of-region arrivals are denied).
  std::string arrival_email_prefix = "churn-";
  std::optional<geo::RegionId> arrival_region;
  /// Arrivals announce themselves as parent candidates after joining.
  bool arrivals_announce = true;
};

class FaultEngine final : public net::SendInterceptor {
 public:
  /// Does not arm anything yet; call arm() once the deployment is
  /// provisioned (the engine schedules plan events at absolute sim times,
  /// so arm before running past the first event).
  FaultEngine(net::Deployment& deployment, FaultPlan plan,
              FaultEngineConfig config = {});
  ~FaultEngine() override;

  FaultEngine(const FaultEngine&) = delete;
  FaultEngine& operator=(const FaultEngine&) = delete;

  /// Join the network's interceptor chain and schedule every plan event.
  /// Idempotent.
  void arm();

  // net::SendInterceptor
  Verdict on_send(const net::SendContext& ctx) override;

  /// Human-readable record of every injected fault ("t=d0 00:10:00.000
  /// crash-um 1" style), in injection order. Deterministic on the sim
  /// backend; read only after the run on a live one.
  const std::vector<std::string>& log() const { return log_; }

  /// Packets dropped by partitions and loss bursts (this engine's verdicts
  /// only, not the links' own background loss).
  std::uint64_t packets_dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  /// Packets held back by an active latency spike.
  std::uint64_t packets_delayed() const {
    return delayed_.load(std::memory_order_relaxed);
  }
  /// Clients crashed / spawned by churn storms so far.
  std::uint64_t churn_departures() const { return churn_departures_; }
  std::uint64_t churn_arrivals() const { return churn_arrivals_; }
  /// Clients spawned by flash crowds so far (subset of the clients() list).
  std::uint64_t flash_crowd_arrivals() const { return flash_crowd_arrivals_; }

 private:
  struct PartitionRule {
    AddrBlock a, b;
    util::SimTime until = 0;
  };
  struct LossRule {
    AddrBlock scope;
    double rate = 0.0;
    util::SimTime until = 0;
  };
  struct DelayRule {
    AddrBlock scope;
    util::SimTime extra = 0;
    util::SimTime until = 0;
  };

  void apply(const FaultEvent& ev);
  void churn(const FaultEvent& ev);
  void flash_crowd(const FaultEvent& ev);
  /// Provision + log in + switch one storm viewer onto `channel` (shared by
  /// churn arrivals and flash crowds). Returns false when the account
  /// already existed (duplicate serial).
  bool spawn_arrival(util::ChannelId channel);
  void note(const FaultEvent& ev, const std::string& detail = {});

  net::Deployment& dep_;
  FaultPlan plan_;
  FaultEngineConfig config_;
  bool armed_ = false;

  /// Guards the active rule tables, the engine's DRBG, and the log:
  /// on_send runs concurrently from every sender loop on a live transport
  /// while apply() installs and expires rules from the control loop.
  mutable std::mutex mu_;
  crypto::SecureRandom rng_;
  std::vector<PartitionRule> partitions_;
  std::vector<LossRule> losses_;
  std::vector<DelayRule> delays_;
  std::vector<std::string> log_;

  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> delayed_{0};
  std::uint64_t churn_departures_ = 0;
  std::uint64_t churn_arrivals_ = 0;
  std::uint64_t flash_crowd_arrivals_ = 0;
  std::uint64_t churn_serial_ = 0;
};

}  // namespace p2pdrm::fault
