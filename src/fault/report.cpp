#include "fault/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace p2pdrm::fault {

namespace {

/// Fixed-precision seconds ("1.234s") — printf keeps the rendering
/// byte-identical across runs, which ostream double formatting would not
/// guarantee for report diffing.
std::string secs(util::SimTime t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3fs", util::to_seconds(t));
  return buf;
}

std::string pct(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f%%", fraction * 100.0);
  return buf;
}

}  // namespace

util::SimTime ResilienceReport::rejoin_percentile(double p) const {
  if (rejoin_latencies.empty()) return 0;
  const double clamped = std::clamp(p, 0.0, 1.0);
  const std::size_t n = rejoin_latencies.size();
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(clamped * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  return rejoin_latencies[std::min(rank, n) - 1];
}

ResilienceReport ResilienceReport::collect(const net::Deployment& deployment) {
  ResilienceReport report;
  const util::SimTime now = deployment.now();
  for (const auto& client : deployment.clients()) {
    ++report.clients_total;
    if (client->departed()) {
      ++report.clients_departed;
    } else {
      if (client->logged_in()) ++report.clients_logged_in;
      if (client->channel_ticket()) {
        ++report.clients_joined;
        if (!client->channel_ticket()->ticket.expired_at(now)) {
          ++report.clients_current;
        }
      }
    }
    for (const client::LatencySample& sample : client->feedback_log()) {
      RoundStats& stats = report.round(sample.round);
      ++stats.attempts;
      if (sample.success) ++stats.successes;
    }
    report.retransmits += client->retransmits();
    report.timeout_exhaustions += client->timeout_exhaustions();
    report.failovers += client->failovers();
    report.relogins += client->relogins();
    report.rejoins += client->rejoins();
    report.rejoin_latencies.insert(report.rejoin_latencies.end(),
                                   client->rejoin_latencies().begin(),
                                   client->rejoin_latencies().end());
  }
  std::sort(report.rejoin_latencies.begin(), report.rejoin_latencies.end());

  report.login_ops.merge(deployment.um_domain().login1_stats);
  report.login_ops.merge(deployment.um_domain().login2_stats);
  for (std::size_t p = 0; p < deployment.partition_count(); ++p) {
    const auto& partition = deployment.cm_partition(static_cast<std::uint32_t>(p));
    report.switch_ops.merge(partition.switch1_stats);
    report.switch_ops.merge(partition.switch2_stats);
    report.key_ops.merge(partition.key_stats);
  }
  return report;
}

std::string ResilienceReport::to_string() const {
  static constexpr client::Round kRounds[] = {
      client::Round::kLogin1, client::Round::kLogin2, client::Round::kSwitch1,
      client::Round::kSwitch2, client::Round::kJoin};

  std::ostringstream out;
  out << "=== resilience report ===\n";
  out << "clients: total=" << clients_total << " departed=" << clients_departed
      << " logged-in=" << clients_logged_in << " joined=" << clients_joined
      << " current=" << clients_current << "\n";
  out << "rounds:\n";
  for (const client::Round r : kRounds) {
    const RoundStats& stats = round(r);
    char line[128];
    std::snprintf(line, sizeof(line), "  %-8s attempts=%-6llu ok=%-6llu availability=",
                  std::string(client::to_string(r)).c_str(),
                  static_cast<unsigned long long>(stats.attempts),
                  static_cast<unsigned long long>(stats.successes));
    out << line << pct(stats.availability()) << "\n";
  }
  out << "recovery: retransmits=" << retransmits
      << " timeout-exhaustions=" << timeout_exhaustions << " failovers=" << failovers
      << " relogins=" << relogins << " rejoins=" << rejoins << "\n";
  out << "rejoin latency: n=" << rejoin_latencies.size();
  if (!rejoin_latencies.empty()) {
    out << " p50=" << secs(rejoin_p50()) << " p99=" << secs(rejoin_p99())
        << " max=" << secs(rejoin_latencies.back());
  }
  out << "\n";
  out << "manager ops: login[" << login_ops.to_string() << "] switch["
      << switch_ops.to_string() << "] keys[" << key_ops.to_string() << "]\n";
  return out.str();
}

}  // namespace p2pdrm::fault
