#include "fault/fault_engine.h"

#include <algorithm>

namespace p2pdrm::fault {

FaultEngine::FaultEngine(net::Deployment& deployment, FaultPlan plan,
                         FaultEngineConfig config)
    : dep_(deployment),
      plan_(std::move(plan)),
      config_(std::move(config)),
      rng_(config_.seed) {}

FaultEngine::~FaultEngine() { dep_.network().remove_interceptor(this); }

void FaultEngine::arm() {
  if (armed_) return;
  armed_ = true;
  dep_.network().add_interceptor(this);
  const util::SimTime now = dep_.now();
  for (const FaultEvent& ev : plan_.events()) {
    // Absolute plan times; anything already in the past fires immediately.
    const util::SimTime delay = ev.at > now ? ev.at - now : 0;
    dep_.post(delay, [this, ev] { apply(ev); });
  }
}

void FaultEngine::note(const FaultEvent& ev, const std::string& detail) {
  std::lock_guard<std::mutex> lk(mu_);
  log_.push_back("t=" + util::format_time(dep_.now()) + " " + ev.to_string() +
                 detail);
}

void FaultEngine::apply(const FaultEvent& ev) {
  switch (ev.kind) {
    case FaultKind::kCrashUm:
      if (ev.instance >= dep_.um_instance_count()) {
        note(ev, "  # ignored: no such instance");
        return;
      }
      dep_.crash_um_instance(ev.instance);
      note(ev);
      return;
    case FaultKind::kRestartUm:
      if (ev.instance >= dep_.um_instance_count()) {
        note(ev, "  # ignored: no such instance");
        return;
      }
      dep_.restart_um_instance(ev.instance);
      note(ev);
      return;
    case FaultKind::kCrashCm:
      if (ev.partition >= dep_.partition_count() ||
          ev.instance >= dep_.cm_instance_count(ev.partition)) {
        note(ev, "  # ignored: no such instance");
        return;
      }
      dep_.crash_cm_instance(ev.partition, ev.instance);
      note(ev);
      return;
    case FaultKind::kRestartCm:
      if (ev.partition >= dep_.partition_count() ||
          ev.instance >= dep_.cm_instance_count(ev.partition)) {
        note(ev, "  # ignored: no such instance");
        return;
      }
      dep_.restart_cm_instance(ev.partition, ev.instance);
      note(ev);
      return;
    case FaultKind::kPartition: {
      std::unique_lock<std::mutex> lk(mu_);
      partitions_.push_back({ev.a, ev.b, dep_.now() + ev.duration});
      lk.unlock();
      note(ev);
      return;
    }
    case FaultKind::kLossBurst: {
      std::unique_lock<std::mutex> lk(mu_);
      losses_.push_back({ev.a, ev.rate, dep_.now() + ev.duration});
      lk.unlock();
      note(ev);
      return;
    }
    case FaultKind::kLatencySpike: {
      std::unique_lock<std::mutex> lk(mu_);
      delays_.push_back({ev.a, ev.delay, dep_.now() + ev.duration});
      lk.unlock();
      note(ev);
      return;
    }
    case FaultKind::kChurnStorm:
      churn(ev);
      return;
    case FaultKind::kClockSkew:
      dep_.network().set_clock_skew(ev.node, ev.delay);
      note(ev);
      return;
    case FaultKind::kFlashCrowd:
      flash_crowd(ev);
      return;
    case FaultKind::kWipeState:
    case FaultKind::kCrashUnsynced: {
      const bool wipe = ev.kind == FaultKind::kWipeState;
      if (ev.farm == FarmKind::kUm) {
        if (ev.instance >= dep_.um_instance_count()) {
          note(ev, "  # ignored: no such instance");
          return;
        }
        wipe ? dep_.wipe_um_state(ev.instance) : dep_.crash_um_unsynced(ev.instance);
      } else {
        if (ev.partition >= dep_.partition_count() ||
            ev.instance >= dep_.cm_instance_count(ev.partition)) {
          note(ev, "  # ignored: no such instance");
          return;
        }
        wipe ? dep_.wipe_cm_state(ev.partition, ev.instance)
             : dep_.crash_cm_unsynced(ev.partition, ev.instance);
      }
      note(ev);
      return;
    }
    case FaultKind::kReplicationLag:
      if (!dep_.durable()) {
        note(ev, "  # ignored: durability off");
        return;
      }
      dep_.set_replication_interval(ev.delay);
      note(ev);
      return;
  }
}

bool FaultEngine::spawn_arrival(util::ChannelId channel) {
  const std::uint64_t serial = churn_serial_++;
  const std::string email =
      config_.arrival_email_prefix + std::to_string(serial) + "@fault";
  const std::string password = "storm-" + std::to_string(serial);
  if (!dep_.add_user(email, password)) return false;  // duplicate storm serial
  const geo::RegionId region =
      config_.arrival_region.value_or(dep_.geo().region_at(static_cast<int>(
          serial % static_cast<std::uint64_t>(dep_.geo().num_regions()))));
  net::AsyncClient* cp = &dep_.add_client(email, password, region);
  net::Deployment* dep = &dep_;
  const bool announce = config_.arrivals_announce;
  cp->login([cp, dep, announce, channel](core::DrmError err) {
    if (err != core::DrmError::kOk) return;
    cp->switch_channel(channel, [cp, dep, announce](core::DrmError err2) {
      if (err2 != core::DrmError::kOk) return;
      if (announce) dep->announce(*cp);
      cp->enable_auto_renewal();
    });
  });
  return true;
}

void FaultEngine::flash_crowd(const FaultEvent& ev) {
  // A stampede of brand-new viewers: each arrival dials in at a uniformly
  // random offset inside the ramp (deterministic — the engine's own DRBG),
  // so the login wave hits the farm as a sustained burst rather than one
  // synchronized packet storm.
  for (std::size_t i = 0; i < ev.arrivals; ++i) {
    util::SimTime offset = 0;
    if (ev.duration > 0) {
      std::lock_guard<std::mutex> lk(mu_);
      offset = static_cast<util::SimTime>(rng_.uniform_real() *
                                          static_cast<double>(ev.duration));
    }
    dep_.post(offset, [this, channel = ev.channel] {
      if (spawn_arrival(channel)) ++flash_crowd_arrivals_;
    });
  }
  note(ev, "  # spawning=" + std::to_string(ev.arrivals) + " over " +
               format_duration(ev.duration));
}

void FaultEngine::churn(const FaultEvent& ev) {
  // Departures: ungraceful crashes of the longest-attached clients on the
  // channel (vector order = attach order), nothing told to the tracker.
  std::size_t killed = 0;
  for (const std::unique_ptr<net::AsyncClient>& client : dep_.clients()) {
    if (killed >= ev.departures) break;
    if (client->departed() || !client->channel_ticket()) continue;
    if (client->channel_ticket()->ticket.channel_id != ev.channel) continue;
    dep_.crash_client(*client);
    ++killed;
    ++churn_departures_;
  }

  // Arrivals: brand-new viewers signing up mid-storm, spread across the geo
  // plan's regions. With client_resilience on they weather whatever other
  // faults are active when they first dial in.
  for (std::size_t i = 0; i < ev.arrivals; ++i) {
    if (spawn_arrival(ev.channel)) ++churn_arrivals_;
  }
  note(ev, "  # killed=" + std::to_string(killed) +
               " spawned=" + std::to_string(ev.arrivals));
}

net::SendInterceptor::Verdict FaultEngine::on_send(const net::SendContext& ctx) {
  const util::NetAddr from_addr = ctx.from_addr;
  const util::NetAddr to_addr = ctx.to_addr;
  const util::SimTime now = ctx.now;
  Verdict verdict;
  std::lock_guard<std::mutex> lk(mu_);
  const auto expired = [now](const auto& rule) { return rule.until <= now; };
  std::erase_if(partitions_, expired);
  std::erase_if(losses_, expired);
  std::erase_if(delays_, expired);

  for (const PartitionRule& rule : partitions_) {
    const bool ab = rule.a.contains(from_addr) && rule.b.contains(to_addr);
    const bool ba = rule.b.contains(from_addr) && rule.a.contains(to_addr);
    if (ab || ba) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      verdict.drop = true;
      return verdict;
    }
  }
  for (const LossRule& rule : losses_) {
    if (!rule.scope.contains(from_addr) && !rule.scope.contains(to_addr)) continue;
    if (rng_.chance(rule.rate)) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      verdict.drop = true;
      return verdict;
    }
  }
  for (const DelayRule& rule : delays_) {
    if (rule.scope.contains(from_addr) || rule.scope.contains(to_addr)) {
      verdict.extra_delay += rule.extra;
    }
  }
  if (verdict.extra_delay > 0) delayed_.fetch_add(1, std::memory_order_relaxed);
  return verdict;
}

}  // namespace p2pdrm::fault
