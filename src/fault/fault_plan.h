// Fault plan: a deterministic schedule of typed faults to inject into a
// running Deployment. Built programmatically (fluent builder) or parsed
// from a simple line-based text format so chaos scenarios can live in
// files:
//
//   # time  verb        args...
//   10m     crash-um    1
//   12m     restart-um  1
//   15m     crash-cm    0 1            # partition instance
//   20m     partition   10.0.0.0/8 10.254.0.0/16 30s
//   25m     loss        0.0.0.0/0 0.9 20s
//   26m     delay       10.1.0.0/16 250ms 30s
//   30m     churn       1 40 25        # channel departures arrivals
//   35m     skew        2 90s          # node skew
//   40m     flash-crowd 1 120 30s      # channel arrivals ramp
//   45m     wipe-state  cm 0 1         # durable media gone too
//   50m     crash-unsynced um 1        # torn tail: half the staged bytes land
//   55m     replication-lag 5s         # stretch the farm gossip interval
//
// Times are durations since the simulation epoch: "500ms", "90s", "10m",
// "2h" (or a bare integer, meaning microseconds). Blank lines and #
// comments are ignored. The plan itself does nothing — fault::FaultEngine
// turns it into scheduled simulation events.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "util/ids.h"
#include "util/time.h"

namespace p2pdrm::fault {

/// "10m" / "90s" / "500ms" / "2h" / "0" -> SimTime. Throws
/// std::invalid_argument on malformed input.
util::SimTime parse_duration(std::string_view s);
/// Inverse of parse_duration, using the largest exact unit ("600s" never;
/// "10m" yes). Byte-stable for report rendering.
std::string format_duration(util::SimTime t);

/// Address-prefix matcher ("10.1.0.0/16"; "0.0.0.0/0" or "*" match all).
struct AddrBlock {
  std::uint32_t addr = 0;
  std::uint32_t bits = 0;

  bool contains(util::NetAddr a) const {
    if (bits == 0) return true;
    const std::uint32_t mask = bits >= 32 ? 0xffffffffu : ~(0xffffffffu >> bits);
    return (a.ip & mask) == (addr & mask);
  }

  static AddrBlock parse(std::string_view cidr);
  std::string to_string() const;
  friend bool operator==(const AddrBlock&, const AddrBlock&) = default;
};

enum class FaultKind : std::uint8_t {
  kCrashUm,       // instance
  kRestartUm,     // instance
  kCrashCm,       // partition, instance
  kRestartCm,     // partition, instance
  kPartition,     // a <-/-> b for duration
  kLossBurst,     // scope a, rate, duration
  kLatencySpike,  // scope a, delay, duration
  kChurnStorm,    // channel, departures, arrivals
  kClockSkew,       // node, delay (the skew; 0 heals)
  kFlashCrowd,      // channel, arrivals, duration (the ramp)
  kWipeState,       // farm, [partition,] instance — crash + durable media loss
  kCrashUnsynced,   // farm, [partition,] instance — crash with a torn WAL tail
  kReplicationLag,  // delay (the new farm replication interval; 0 disables)
};

std::string_view to_string(FaultKind k);

/// Which farm a state fault targets (wipe-state / crash-unsynced).
enum class FarmKind : std::uint8_t { kUm, kCm };

std::string_view to_string(FarmKind f);

struct FaultEvent {
  util::SimTime at = 0;
  FaultKind kind = FaultKind::kCrashUm;
  FarmKind farm = FarmKind::kUm;    // wipe-state / crash-unsynced target
  std::size_t instance = 0;
  std::uint32_t partition = 0;
  AddrBlock a;                      // partition side A / loss / delay scope
  AddrBlock b;                      // partition side B
  double rate = 0.0;                // loss probability
  util::SimTime duration = 0;
  util::SimTime delay = 0;          // latency spike extra / clock skew
  util::NodeId node = util::kInvalidNode;
  util::ChannelId channel = 0;
  std::size_t departures = 0;
  std::size_t arrivals = 0;

  /// One schedule line, parseable back by FaultPlan::parse.
  std::string to_string() const;
};

class FaultPlan {
 public:
  FaultPlan& crash_um(util::SimTime at, std::size_t instance);
  FaultPlan& restart_um(util::SimTime at, std::size_t instance);
  FaultPlan& crash_cm(util::SimTime at, std::uint32_t partition, std::size_t instance);
  FaultPlan& restart_cm(util::SimTime at, std::uint32_t partition,
                        std::size_t instance);
  FaultPlan& partition(util::SimTime at, util::SimTime duration, AddrBlock a,
                       AddrBlock b);
  FaultPlan& loss_burst(util::SimTime at, util::SimTime duration, AddrBlock scope,
                        double rate);
  FaultPlan& latency_spike(util::SimTime at, util::SimTime duration, AddrBlock scope,
                           util::SimTime extra);
  FaultPlan& churn_storm(util::SimTime at, util::ChannelId channel,
                         std::size_t departures, std::size_t arrivals);
  FaultPlan& clock_skew(util::SimTime at, util::NodeId node, util::SimTime skew);
  /// A viewing stampede: `arrivals` brand-new viewers pile onto `channel`,
  /// spread uniformly over `ramp` (the overload scenario admission control
  /// exists for — nobody departs first).
  FaultPlan& flash_crowd(util::SimTime at, util::ChannelId channel,
                         std::size_t arrivals, util::SimTime ramp);
  /// Crash an instance AND destroy its durable media (journal + snapshot):
  /// on restart it has nothing local and must full-sync from siblings.
  FaultPlan& wipe_state_um(util::SimTime at, std::size_t instance);
  FaultPlan& wipe_state_cm(util::SimTime at, std::uint32_t partition,
                           std::size_t instance);
  /// Crash an instance mid-write: half the staged (unsynced) journal bytes
  /// land as a torn tail, the rest are lost. Replay must stop cleanly.
  FaultPlan& crash_unsynced_um(util::SimTime at, std::size_t instance);
  FaultPlan& crash_unsynced_cm(util::SimTime at, std::uint32_t partition,
                               std::size_t instance);
  /// Reset the farm replication interval (0 stops the ticker entirely,
  /// freezing async audit shipping until a later event restores it).
  FaultPlan& replication_lag(util::SimTime at, util::SimTime interval);

  /// Events sorted by time (stable: same-time events keep insertion order).
  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }

  /// Parse the text schedule format. Throws std::invalid_argument with a
  /// line number on malformed input.
  static FaultPlan parse(std::string_view text);
  /// Render as the text schedule format (parse round-trips).
  std::string to_string() const;

 private:
  FaultPlan& push(FaultEvent ev);
  std::vector<FaultEvent> events_;
};

}  // namespace p2pdrm::fault
