#include "fault/fault_plan.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <sstream>
#include <stdexcept>

namespace p2pdrm::fault {

namespace {

[[noreturn]] void bad(const std::string& what) {
  throw std::invalid_argument("FaultPlan: " + what);
}

double parse_double(std::string_view s, const std::string& what) {
  try {
    std::size_t used = 0;
    const double v = std::stod(std::string(s), &used);
    if (used != s.size()) bad("trailing junk in " + what + ": '" + std::string(s) + "'");
    return v;
  } catch (const std::invalid_argument&) {
    bad("malformed " + what + ": '" + std::string(s) + "'");
  } catch (const std::out_of_range&) {
    bad("out-of-range " + what + ": '" + std::string(s) + "'");
  }
}

std::uint64_t parse_uint(std::string_view s, const std::string& what) {
  std::uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    bad("malformed " + what + ": '" + std::string(s) + "'");
  }
  return v;
}

}  // namespace

util::SimTime parse_duration(std::string_view s) {
  if (s.empty()) bad("empty duration");
  std::size_t digits = 0;
  while (digits < s.size() && (std::isdigit(static_cast<unsigned char>(s[digits])) ||
                               s[digits] == '.')) {
    ++digits;
  }
  if (digits == 0) bad("malformed duration: '" + std::string(s) + "'");
  const double value = parse_double(s.substr(0, digits), "duration");
  const std::string_view unit = s.substr(digits);
  if (unit.empty()) return static_cast<util::SimTime>(value);  // raw microseconds
  if (unit == "ms") return util::millis(value);
  if (unit == "s") return util::seconds(value);
  if (unit == "m") return static_cast<util::SimTime>(value * util::kMinute);
  if (unit == "h") return static_cast<util::SimTime>(value * util::kHour);
  bad("unknown duration unit: '" + std::string(unit) + "'");
}

std::string format_duration(util::SimTime t) {
  const auto whole = [t](util::SimTime unit) { return t != 0 && t % unit == 0; };
  std::ostringstream out;
  if (whole(util::kHour)) {
    out << t / util::kHour << "h";
  } else if (whole(util::kMinute)) {
    out << t / util::kMinute << "m";
  } else if (whole(util::kSecond)) {
    out << t / util::kSecond << "s";
  } else if (whole(util::kMillisecond)) {
    out << t / util::kMillisecond << "ms";
  } else {
    out << t;  // raw microseconds (also the zero case)
  }
  return out.str();
}

AddrBlock AddrBlock::parse(std::string_view cidr) {
  if (cidr == "*") return {};
  const std::size_t slash = cidr.find('/');
  if (slash == std::string_view::npos) {
    bad("address block needs a /bits suffix: '" + std::string(cidr) + "'");
  }
  AddrBlock block;
  block.addr = util::parse_netaddr(std::string(cidr.substr(0, slash))).ip;
  block.bits = static_cast<std::uint32_t>(
      parse_uint(cidr.substr(slash + 1), "prefix length"));
  if (block.bits > 32) bad("prefix length > 32");
  return block;
}

std::string AddrBlock::to_string() const {
  return util::to_string(util::NetAddr{addr}) + "/" + std::to_string(bits);
}

std::string_view to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kCrashUm: return "crash-um";
    case FaultKind::kRestartUm: return "restart-um";
    case FaultKind::kCrashCm: return "crash-cm";
    case FaultKind::kRestartCm: return "restart-cm";
    case FaultKind::kPartition: return "partition";
    case FaultKind::kLossBurst: return "loss";
    case FaultKind::kLatencySpike: return "delay";
    case FaultKind::kChurnStorm: return "churn";
    case FaultKind::kClockSkew: return "skew";
    case FaultKind::kFlashCrowd: return "flash-crowd";
    case FaultKind::kWipeState: return "wipe-state";
    case FaultKind::kCrashUnsynced: return "crash-unsynced";
    case FaultKind::kReplicationLag: return "replication-lag";
  }
  return "?";
}

std::string_view to_string(FarmKind f) {
  return f == FarmKind::kUm ? "um" : "cm";
}

std::string FaultEvent::to_string() const {
  std::ostringstream out;
  out << format_duration(at) << " " << fault::to_string(kind);
  switch (kind) {
    case FaultKind::kCrashUm:
    case FaultKind::kRestartUm:
      out << " " << instance;
      break;
    case FaultKind::kCrashCm:
    case FaultKind::kRestartCm:
      out << " " << partition << " " << instance;
      break;
    case FaultKind::kPartition:
      out << " " << a.to_string() << " " << b.to_string() << " "
          << format_duration(duration);
      break;
    case FaultKind::kLossBurst:
      out << " " << a.to_string() << " " << rate << " " << format_duration(duration);
      break;
    case FaultKind::kLatencySpike:
      out << " " << a.to_string() << " " << format_duration(delay) << " "
          << format_duration(duration);
      break;
    case FaultKind::kChurnStorm:
      out << " " << channel << " " << departures << " " << arrivals;
      break;
    case FaultKind::kClockSkew:
      out << " " << node << " " << format_duration(delay);
      break;
    case FaultKind::kFlashCrowd:
      out << " " << channel << " " << arrivals << " " << format_duration(duration);
      break;
    case FaultKind::kWipeState:
    case FaultKind::kCrashUnsynced:
      out << " " << fault::to_string(farm);
      if (farm == FarmKind::kCm) out << " " << partition;
      out << " " << instance;
      break;
    case FaultKind::kReplicationLag:
      out << " " << format_duration(delay);
      break;
  }
  return out.str();
}

FaultPlan& FaultPlan::push(FaultEvent ev) {
  // Stable insert keeps the vector time-sorted while same-time events
  // preserve plan order (determinism hinges on this).
  const auto pos = std::upper_bound(
      events_.begin(), events_.end(), ev.at,
      [](util::SimTime at, const FaultEvent& e) { return at < e.at; });
  events_.insert(pos, std::move(ev));
  return *this;
}

FaultPlan& FaultPlan::crash_um(util::SimTime at, std::size_t instance) {
  FaultEvent ev;
  ev.at = at;
  ev.kind = FaultKind::kCrashUm;
  ev.instance = instance;
  return push(ev);
}

FaultPlan& FaultPlan::restart_um(util::SimTime at, std::size_t instance) {
  FaultEvent ev;
  ev.at = at;
  ev.kind = FaultKind::kRestartUm;
  ev.instance = instance;
  return push(ev);
}

FaultPlan& FaultPlan::crash_cm(util::SimTime at, std::uint32_t partition,
                               std::size_t instance) {
  FaultEvent ev;
  ev.at = at;
  ev.kind = FaultKind::kCrashCm;
  ev.partition = partition;
  ev.instance = instance;
  return push(ev);
}

FaultPlan& FaultPlan::restart_cm(util::SimTime at, std::uint32_t partition,
                                 std::size_t instance) {
  FaultEvent ev;
  ev.at = at;
  ev.kind = FaultKind::kRestartCm;
  ev.partition = partition;
  ev.instance = instance;
  return push(ev);
}

FaultPlan& FaultPlan::partition(util::SimTime at, util::SimTime duration, AddrBlock a,
                                AddrBlock b) {
  FaultEvent ev;
  ev.at = at;
  ev.kind = FaultKind::kPartition;
  ev.duration = duration;
  ev.a = a;
  ev.b = b;
  return push(ev);
}

FaultPlan& FaultPlan::loss_burst(util::SimTime at, util::SimTime duration,
                                 AddrBlock scope, double rate) {
  if (rate < 0.0 || rate > 1.0) bad("loss rate outside [0, 1]");
  FaultEvent ev;
  ev.at = at;
  ev.kind = FaultKind::kLossBurst;
  ev.duration = duration;
  ev.a = scope;
  ev.rate = rate;
  return push(ev);
}

FaultPlan& FaultPlan::latency_spike(util::SimTime at, util::SimTime duration,
                                    AddrBlock scope, util::SimTime extra) {
  FaultEvent ev;
  ev.at = at;
  ev.kind = FaultKind::kLatencySpike;
  ev.duration = duration;
  ev.a = scope;
  ev.delay = extra;
  return push(ev);
}

FaultPlan& FaultPlan::churn_storm(util::SimTime at, util::ChannelId channel,
                                  std::size_t departures, std::size_t arrivals) {
  FaultEvent ev;
  ev.at = at;
  ev.kind = FaultKind::kChurnStorm;
  ev.channel = channel;
  ev.departures = departures;
  ev.arrivals = arrivals;
  return push(ev);
}

FaultPlan& FaultPlan::clock_skew(util::SimTime at, util::NodeId node,
                                 util::SimTime skew) {
  FaultEvent ev;
  ev.at = at;
  ev.kind = FaultKind::kClockSkew;
  ev.node = node;
  ev.delay = skew;
  return push(ev);
}

FaultPlan& FaultPlan::flash_crowd(util::SimTime at, util::ChannelId channel,
                                  std::size_t arrivals, util::SimTime ramp) {
  FaultEvent ev;
  ev.at = at;
  ev.kind = FaultKind::kFlashCrowd;
  ev.channel = channel;
  ev.arrivals = arrivals;
  ev.duration = ramp;
  return push(ev);
}

FaultPlan& FaultPlan::wipe_state_um(util::SimTime at, std::size_t instance) {
  FaultEvent ev;
  ev.at = at;
  ev.kind = FaultKind::kWipeState;
  ev.farm = FarmKind::kUm;
  ev.instance = instance;
  return push(ev);
}

FaultPlan& FaultPlan::wipe_state_cm(util::SimTime at, std::uint32_t partition,
                                    std::size_t instance) {
  FaultEvent ev;
  ev.at = at;
  ev.kind = FaultKind::kWipeState;
  ev.farm = FarmKind::kCm;
  ev.partition = partition;
  ev.instance = instance;
  return push(ev);
}

FaultPlan& FaultPlan::crash_unsynced_um(util::SimTime at, std::size_t instance) {
  FaultEvent ev;
  ev.at = at;
  ev.kind = FaultKind::kCrashUnsynced;
  ev.farm = FarmKind::kUm;
  ev.instance = instance;
  return push(ev);
}

FaultPlan& FaultPlan::crash_unsynced_cm(util::SimTime at, std::uint32_t partition,
                                        std::size_t instance) {
  FaultEvent ev;
  ev.at = at;
  ev.kind = FaultKind::kCrashUnsynced;
  ev.farm = FarmKind::kCm;
  ev.partition = partition;
  ev.instance = instance;
  return push(ev);
}

FaultPlan& FaultPlan::replication_lag(util::SimTime at, util::SimTime interval) {
  FaultEvent ev;
  ev.at = at;
  ev.kind = FaultKind::kReplicationLag;
  ev.delay = interval;
  return push(ev);
}

FaultPlan FaultPlan::parse(std::string_view text) {
  FaultPlan plan;
  std::size_t line_no = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    ++line_no;
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(start, end - start);
    start = end + 1;

    if (const std::size_t hash = line.find('#'); hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    std::vector<std::string_view> tok;
    std::size_t i = 0;
    while (i < line.size()) {
      while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) ++i;
      std::size_t j = i;
      while (j < line.size() && !std::isspace(static_cast<unsigned char>(line[j]))) ++j;
      if (j > i) tok.push_back(line.substr(i, j - i));
      i = j;
    }
    if (tok.empty()) continue;

    try {
      if (tok.size() < 2) bad("expected '<time> <verb> ...'");
      const util::SimTime at = parse_duration(tok[0]);
      const std::string_view verb = tok[1];
      const auto want = [&](std::size_t n) {
        if (tok.size() != 2 + n) {
          bad("verb '" + std::string(verb) + "' takes " + std::to_string(n) +
              " argument(s)");
        }
      };
      if (verb == "crash-um") {
        want(1);
        plan.crash_um(at, parse_uint(tok[2], "instance"));
      } else if (verb == "restart-um") {
        want(1);
        plan.restart_um(at, parse_uint(tok[2], "instance"));
      } else if (verb == "crash-cm") {
        want(2);
        plan.crash_cm(at, static_cast<std::uint32_t>(parse_uint(tok[2], "partition")),
                      parse_uint(tok[3], "instance"));
      } else if (verb == "restart-cm") {
        want(2);
        plan.restart_cm(at, static_cast<std::uint32_t>(parse_uint(tok[2], "partition")),
                        parse_uint(tok[3], "instance"));
      } else if (verb == "partition") {
        want(3);
        plan.partition(at, parse_duration(tok[4]), AddrBlock::parse(tok[2]),
                       AddrBlock::parse(tok[3]));
      } else if (verb == "loss") {
        want(3);
        plan.loss_burst(at, parse_duration(tok[4]), AddrBlock::parse(tok[2]),
                        parse_double(tok[3], "loss rate"));
      } else if (verb == "delay") {
        want(3);
        plan.latency_spike(at, parse_duration(tok[4]), AddrBlock::parse(tok[2]),
                           parse_duration(tok[3]));
      } else if (verb == "churn") {
        want(3);
        plan.churn_storm(at, static_cast<util::ChannelId>(parse_uint(tok[2], "channel")),
                         parse_uint(tok[3], "departures"),
                         parse_uint(tok[4], "arrivals"));
      } else if (verb == "skew") {
        want(2);
        plan.clock_skew(at, static_cast<util::NodeId>(parse_uint(tok[2], "node")),
                        parse_duration(tok[3]));
      } else if (verb == "flash-crowd") {
        want(3);
        plan.flash_crowd(at,
                         static_cast<util::ChannelId>(parse_uint(tok[2], "channel")),
                         parse_uint(tok[3], "arrivals"), parse_duration(tok[4]));
      } else if (verb == "wipe-state" || verb == "crash-unsynced") {
        // Variable arity: 'um <instance>' or 'cm <partition> <instance>'.
        if (tok.size() < 3) bad("verb '" + std::string(verb) + "' needs a farm");
        const std::string_view farm = tok[2];
        const bool wipe = verb == "wipe-state";
        if (farm == "um") {
          want(2);
          const std::size_t inst = parse_uint(tok[3], "instance");
          wipe ? plan.wipe_state_um(at, inst) : plan.crash_unsynced_um(at, inst);
        } else if (farm == "cm") {
          want(3);
          const auto part = static_cast<std::uint32_t>(parse_uint(tok[3], "partition"));
          const std::size_t inst = parse_uint(tok[4], "instance");
          wipe ? plan.wipe_state_cm(at, part, inst)
               : plan.crash_unsynced_cm(at, part, inst);
        } else {
          bad("unknown farm '" + std::string(farm) + "' (want um|cm)");
        }
      } else if (verb == "replication-lag") {
        want(1);
        plan.replication_lag(at, parse_duration(tok[2]));
      } else {
        bad("unknown verb '" + std::string(verb) + "'");
      }
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument(std::string(e.what()) + " (line " +
                                  std::to_string(line_no) + ")");
    }
  }
  return plan;
}

std::string FaultPlan::to_string() const {
  std::ostringstream out;
  for (const FaultEvent& ev : events_) out << ev.to_string() << "\n";
  return out.str();
}

}  // namespace p2pdrm::fault
