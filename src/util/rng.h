// Deterministic seed splitting for parallel simulation.
//
// The sharded macro-sim gives every shard (and every auxiliary stream: the
// key-rotation pipeline, each flash crowd, each reservoir) its own
// crypto::SecureRandom, seeded by mixing the master seed with a fixed lane
// number. Splitting by *value* — never by drawing from a parent generator —
// is what keeps a run's output independent of shard execution order and
// thread count: lane seeds depend only on (master_seed, lane), so shard 3
// draws the same stream whether it runs first, last, or concurrently with
// shard 0.
//
// The mixer is SplitMix64 (Steele, Lea & Flood, OOPSLA'14), applied twice so
// that adjacent lanes land far apart even for adjacent master seeds. The
// downstream generator is the ChaCha20 DRBG, so lane correlation would need
// a ChaCha key-schedule weakness to matter; the double mix just keeps the
// 64-bit seeds themselves well separated.
#pragma once

#include <cstdint>

namespace p2pdrm::util {

/// One SplitMix64 step: advances `state` and returns the mixed output.
std::uint64_t splitmix64(std::uint64_t& state);

/// Deterministic lane seed: mixes `master` and `lane` into an independent
/// 64-bit seed. Pure function — same (master, lane) always gives the same
/// seed, regardless of call order.
std::uint64_t split_seed(std::uint64_t master, std::uint64_t lane);

/// Fixed lane tags for the macro-sim's named streams, so the mapping is
/// auditable in one place (shard s uses lane::kShard + s, etc.). Lanes are
/// spaced 2^40 apart; every sub-encoding stays below 2^40, so two distinct
/// streams can never land on the same lane value.
namespace lane {
constexpr std::uint64_t kShard = 1ull << 40;        // + shard index
constexpr std::uint64_t kFlashCrowd = 2ull << 40;   // + crowd index
constexpr std::uint64_t kReservoir = 3ull << 40;    // + reservoir tag
constexpr std::uint64_t kKeyRotation = 4ull << 40;  // coordinator stream
constexpr std::uint64_t kMerge = 5ull << 40;        // + merge tag
}  // namespace lane

}  // namespace p2pdrm::util
