#include "util/time.h"

#include <cstdio>

namespace p2pdrm::util {

std::string format_time(SimTime t) {
  if (t == kNullTime) return "null";
  const int day = day_of(t);
  const SimTime in_day = t % kDay;
  const int h = static_cast<int>(in_day / kHour);
  const int m = static_cast<int>((in_day % kHour) / kMinute);
  const int s = static_cast<int>((in_day % kMinute) / kSecond);
  const int ms = static_cast<int>((in_day % kSecond) / kMillisecond);
  char buf[48];
  std::snprintf(buf, sizeof(buf), "d%d %02d:%02d:%02d.%03d", day, h, m, s, ms);
  return buf;
}

}  // namespace p2pdrm::util
