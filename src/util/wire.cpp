#include "util/wire.h"

namespace p2pdrm::util {

void WireWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void WireWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void WireWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void WireWriter::bytes(BytesView v) {
  u32(static_cast<std::uint32_t>(v.size()));
  raw(v);
}

void WireWriter::str(std::string_view v) {
  u32(static_cast<std::uint32_t>(v.size()));
  buf_.insert(buf_.end(), v.begin(), v.end());
}

void WireWriter::raw(BytesView v) {
  buf_.insert(buf_.end(), v.begin(), v.end());
}

void WireReader::need(std::size_t n) const {
  if (remaining() < n) {
    throw WireError("wire: truncated input (need " + std::to_string(n) +
                    " bytes, have " + std::to_string(remaining()) + ")");
  }
}

std::uint8_t WireReader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t WireReader::u16() {
  need(2);
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_]) |
                    static_cast<std::uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

std::uint32_t WireReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

std::uint64_t WireReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

Bytes WireReader::bytes() {
  const std::uint32_t n = u32();
  return raw(n);
}

std::string WireReader::str() {
  const std::uint32_t n = u32();
  need(n);
  std::string s(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return s;
}

Bytes WireReader::raw(std::size_t n) {
  need(n);
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

}  // namespace p2pdrm::util
