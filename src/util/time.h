// Virtual time. Everything in the system — ticket lifetimes, attribute
// windows, the simulator clock — uses SimTime so that a whole simulated week
// is deterministic and independent of the wall clock.
#pragma once

#include <cstdint>
#include <string>

namespace p2pdrm::util {

/// Microseconds since the simulation epoch. Signed so that durations and
/// differences are natural to express; never wraps in any realistic run.
using SimTime = std::int64_t;

constexpr SimTime kMicrosecond = 1;
constexpr SimTime kMillisecond = 1000 * kMicrosecond;
constexpr SimTime kSecond = 1000 * kMillisecond;
constexpr SimTime kMinute = 60 * kSecond;
constexpr SimTime kHour = 60 * kMinute;
constexpr SimTime kDay = 24 * kHour;

/// Sentinel meaning "no time set" (the paper's NULL attribute timestamp).
constexpr SimTime kNullTime = -1;

constexpr SimTime seconds(double s) {
  return static_cast<SimTime>(s * static_cast<double>(kSecond));
}
constexpr SimTime millis(double ms) {
  return static_cast<SimTime>(ms * static_cast<double>(kMillisecond));
}

constexpr double to_seconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

/// Hour-of-day in [0, 24) for diurnal workload shaping and the peak/off-peak
/// split used by the Fig. 6 reproduction.
constexpr int hour_of_day(SimTime t) {
  return static_cast<int>((t % kDay) / kHour);
}

/// Day index since epoch (day 0 = first simulated day).
constexpr int day_of(SimTime t) { return static_cast<int>(t / kDay); }

/// "d1 03:27:45.123" style rendering for logs and bench output.
std::string format_time(SimTime t);

/// Interface for components that need the current time. The simulator
/// provides the virtual clock; unit tests provide a ManualClock.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual SimTime now() const = 0;
};

/// A clock the caller advances by hand; the default for unit tests.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(SimTime start = 0) : now_(start) {}
  SimTime now() const override { return now_; }
  void set(SimTime t) { now_ = t; }
  void advance(SimTime dt) { now_ += dt; }

 private:
  SimTime now_;
};

}  // namespace p2pdrm::util
