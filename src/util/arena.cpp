#include "util/arena.h"

#include <algorithm>

namespace p2pdrm::util {

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  if (bytes == 0) bytes = 1;
  if (align == 0) align = 1;

  for (;;) {
    if (active_ < chunks_.size()) {
      std::byte* base = chunk_begin(active_);
      auto addr = reinterpret_cast<std::uintptr_t>(base + offset_);
      const std::size_t pad = (align - addr % align) % align;
      if (offset_ + pad + bytes <= chunks_[active_].size) {
        void* out = base + offset_ + pad;
        offset_ += pad + bytes;
        bytes_allocated_ += bytes;
        return out;
      }
      // Exhausted (or, for an oversized request, too small): advance. The
      // remainder is wasted until the next reset — the classic bump
      // trade-off.
      ++active_;
      offset_ = 0;
      continue;
    }
    // Out of chunks: grow. Oversized requests get a chunk of their own
    // size, which later cycles simply reuse as a large chunk.
    Chunk fresh;
    fresh.size = std::max(chunk_bytes_, bytes + align);
    fresh.data = std::make_unique<std::byte[]>(fresh.size);
    bytes_reserved_ += fresh.size;
    chunks_.push_back(std::move(fresh));
    active_ = chunks_.size() - 1;
    offset_ = 0;
  }
}

void Arena::reset() {
  active_ = 0;
  offset_ = 0;
  bytes_allocated_ = 0;
}

}  // namespace p2pdrm::util
