// Strongly-typed identifiers and network addresses shared across modules.
#pragma once

#include <cstdint>
#include <string>

namespace p2pdrm::util {

/// Unique user identification number assigned by the User Manager (the
/// paper's "UserIN").
using UserIN = std::uint64_t;

/// Channel identifier assigned by the Channel Policy Manager.
using ChannelId = std::uint32_t;

/// Peer/node identifier inside the simulator and overlay.
using NodeId = std::uint32_t;

constexpr NodeId kInvalidNode = 0xffffffff;

/// IPv4 address as a host-order integer. The DRM protocol binds tickets to
/// the client's network address (the "NetAddr" attribute), so addresses show
/// up in tickets, logs, and the geo database.
struct NetAddr {
  std::uint32_t ip = 0;

  friend bool operator==(const NetAddr&, const NetAddr&) = default;
  friend auto operator<=>(const NetAddr&, const NetAddr&) = default;
};

/// Dotted-quad rendering, e.g. "10.1.2.3".
std::string to_string(NetAddr addr);

/// Parse dotted-quad; throws std::invalid_argument on malformed input.
NetAddr parse_netaddr(const std::string& s);

}  // namespace p2pdrm::util
