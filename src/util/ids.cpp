#include "util/ids.h"

#include <cstdio>
#include <stdexcept>

namespace p2pdrm::util {

std::string to_string(NetAddr addr) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (addr.ip >> 24) & 0xff,
                (addr.ip >> 16) & 0xff, (addr.ip >> 8) & 0xff, addr.ip & 0xff);
  return buf;
}

NetAddr parse_netaddr(const std::string& s) {
  unsigned a = 0, b = 0, c = 0, d = 0;
  char extra = 0;
  if (std::sscanf(s.c_str(), "%u.%u.%u.%u%c", &a, &b, &c, &d, &extra) != 4 ||
      a > 255 || b > 255 || c > 255 || d > 255) {
    throw std::invalid_argument("parse_netaddr: malformed address: " + s);
  }
  return NetAddr{(a << 24) | (b << 16) | (c << 8) | d};
}

}  // namespace p2pdrm::util
