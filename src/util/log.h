// Minimal leveled logger. Off by default so benches and simulations stay
// quiet; examples turn it up to narrate the protocol flows.
#pragma once

#include <sstream>
#include <string>

namespace p2pdrm::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one line to stderr (thread-safe at line granularity).
void log_line(LogLevel level, const std::string& component, const std::string& msg);

/// Stream-style helper:  LOG_AT(kInfo, "client") << "joined " << peer;
class LogStream {
 public:
  LogStream(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  ~LogStream();

  template <typename T>
  LogStream& operator<<(const T& v) {
    if (level_ >= log_level()) stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};

}  // namespace p2pdrm::util

#define P2PDRM_LOG(level, component) ::p2pdrm::util::LogStream(level, component)
