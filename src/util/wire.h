// Bounds-checked binary (de)serialization used for every on-the-wire
// structure in the system: tickets, protocol messages, channel lists.
//
// The format is deliberately simple and deterministic — fixed-width
// little-endian integers and length-prefixed byte strings — so that a
// structure's signature can be computed over its exact encoding and verified
// after re-parsing (tickets are signed bytes, not signed objects).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "util/bytes.h"

namespace p2pdrm::util {

/// Thrown by WireReader on truncated or malformed input. Protocol handlers
/// catch this and turn it into a protocol-level rejection.
class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

/// Appends fixed-width integers and length-prefixed strings to a buffer.
class WireWriter {
 public:
  WireWriter() = default;

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  /// Length-prefixed (u32) byte string.
  void bytes(BytesView v);
  /// Length-prefixed (u32) UTF-8 string.
  void str(std::string_view v);
  /// Raw bytes with no length prefix (caller knows the width).
  void raw(BytesView v);

  const Bytes& data() const { return buf_; }
  Bytes take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

/// Reads the same encoding back, throwing WireError on any overrun.
class WireReader {
 public:
  explicit WireReader(BytesView data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  Bytes bytes();
  std::string str();
  /// Read exactly n raw bytes.
  Bytes raw(std::size_t n);

  std::size_t remaining() const { return data_.size() - pos_; }
  bool at_end() const { return pos_ == data_.size(); }
  std::size_t position() const { return pos_; }
  /// The prefix of the input consumed so far (used to compute the byte range
  /// a signature covers).
  BytesView consumed() const { return data_.subspan(0, pos_); }

 private:
  void need(std::size_t n) const;

  BytesView data_;
  std::size_t pos_ = 0;
};

}  // namespace p2pdrm::util
