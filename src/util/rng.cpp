#include "util/rng.h"

namespace p2pdrm::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t split_seed(std::uint64_t master, std::uint64_t lane) {
  // Two dependent steps: the first whitens the lane, the second mixes it
  // into the master. A single xor of two splitmix outputs would make
  // split_seed(m, a) ^ split_seed(m, b) independent of m.
  std::uint64_t state = lane;
  std::uint64_t mixed_lane = splitmix64(state);
  state = master ^ mixed_lane;
  return splitmix64(state);
}

}  // namespace p2pdrm::util
