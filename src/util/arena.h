// Chunked bump allocator for the simulation hot path.
//
// The sharded macro-sim allocates tens of millions of short-lived records
// per simulated day — session slots, buffered observability samples, staged
// flash-crowd arrivals. Routing them through the general-purpose heap costs
// a malloc/free pair each plus fragmentation across shard threads; an arena
// turns the whole class into pointer bumps, and reset() recycles every
// chunk at a window barrier without returning memory to the OS.
//
// Properties the engine relies on:
//   - allocations are never individually freed (trivially destructible
//     payloads only — enforced at compile time by make_array);
//   - pointers stay valid until reset(), and chunks never move, so
//     ArenaVector hands out stable references while growing;
//   - reset() keeps the high-water chunk set, so a steady-state window
//     allocates from warm memory with zero system calls;
//   - the arena is single-owner: one shard, one arena, no locks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

namespace p2pdrm::util {

class Arena {
 public:
  static constexpr std::size_t kDefaultChunkBytes = 64 * 1024;

  explicit Arena(std::size_t chunk_bytes = kDefaultChunkBytes)
      : chunk_bytes_(chunk_bytes == 0 ? kDefaultChunkBytes : chunk_bytes) {}
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;

  /// Raw aligned allocation. `align` must be a power of two. Requests
  /// larger than the chunk size get a dedicated chunk.
  void* allocate(std::size_t bytes, std::size_t align);

  /// Typed array of default-initialized Ts. T must be trivially
  /// destructible: the arena never runs destructors.
  template <typename T>
  T* make_array(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena never destroys; T must be trivially destructible");
    T* p = static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
    for (std::size_t i = 0; i < n; ++i) ::new (static_cast<void*>(p + i)) T();
    return p;
  }

  /// Rewind to empty, keeping every chunk for reuse. All outstanding
  /// pointers become dangling.
  void reset();

  /// Total bytes handed out since the last reset (excludes alignment pad).
  std::size_t bytes_allocated() const { return bytes_allocated_; }
  /// Total bytes of chunk capacity currently held.
  std::size_t bytes_reserved() const { return bytes_reserved_; }
  std::size_t chunk_count() const { return chunks_.size(); }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  std::byte* chunk_begin(std::size_t i) { return chunks_[i].data.get(); }

  std::vector<Chunk> chunks_;
  std::size_t chunk_bytes_;
  std::size_t active_ = 0;   // chunk currently being bumped
  std::size_t offset_ = 0;   // bump position within the active chunk
  std::size_t bytes_allocated_ = 0;
  std::size_t bytes_reserved_ = 0;
};

/// Growable sequence backed by an Arena: segmented storage (64-element
/// first segment, doubling after), so push_back never moves an element —
/// references and indices stay stable for the container's lifetime, which
/// is what lets the macro-sim keep session records addressable while the
/// pool grows past a million entries. clear() forgets the elements but the
/// memory is only reclaimed by the arena's reset().
template <typename T>
class ArenaVector {
 public:
  static constexpr std::size_t kFirstSegment = 64;
  static constexpr std::size_t kMaxSegments = 26;  // 64 << 25 ≈ 2.1e9 total

  explicit ArenaVector(Arena& arena) : arena_(&arena) {}

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  T& push_back(const T& value) {
    T* slot = next_slot();
    *slot = value;
    return *slot;
  }
  T& emplace_back() {
    T* slot = next_slot();
    *slot = T();
    return *slot;
  }

  T& operator[](std::size_t i) { return *locate(i); }
  const T& operator[](std::size_t i) const { return *locate(i); }

  /// Forget all elements. Storage is reclaimed by the arena's reset(), so
  /// only call this when the arena is reset too (or leak-by-design).
  void clear() {
    size_ = 0;
    segments_used_ = 0;
  }

 private:
  static std::size_t segment_of(std::size_t i, std::size_t* offset) {
    // Segment k spans [64*(2^k - 1), 64*(2^(k+1) - 1)).
    const std::size_t n = i / kFirstSegment + 1;
    std::size_t k = 0;
    while ((std::size_t{2} << k) <= n) ++k;  // k = floor(log2(n))
    *offset = i - kFirstSegment * ((std::size_t{1} << k) - 1);
    return k;
  }

  T* locate(std::size_t i) const {
    std::size_t offset = 0;
    const std::size_t seg = segment_of(i, &offset);
    return segments_[seg] + offset;
  }

  T* next_slot() {
    std::size_t offset = 0;
    const std::size_t seg = segment_of(size_, &offset);
    if (offset == 0 && seg >= segments_used_) {
      segments_[seg] = arena_->make_array<T>(kFirstSegment << seg);
      segments_used_ = seg + 1;
    }
    ++size_;
    return segments_[seg] + offset;
  }

  Arena* arena_;
  T* segments_[kMaxSegments] = {};
  std::size_t segments_used_ = 0;
  std::size_t size_ = 0;
};

}  // namespace p2pdrm::util
