// Byte-buffer helpers shared by every module: hex codecs, constant-time
// comparison, and small conversions between integers and byte strings.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace p2pdrm::util {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Encode a byte span as lowercase hex.
std::string to_hex(BytesView data);

/// Decode a hex string (upper or lower case). Throws std::invalid_argument on
/// malformed input (odd length or non-hex characters).
Bytes from_hex(std::string_view hex);

/// Byte-wise equality that does not short-circuit on the first mismatch.
/// Used for comparing MACs, checksums, and nonces so that the comparison time
/// does not leak the position of the first differing byte.
bool constant_time_equal(BytesView a, BytesView b);

/// Copy a std::string's bytes into a Bytes buffer.
Bytes bytes_of(std::string_view s);

/// Interpret a Bytes buffer as a std::string (no validation).
std::string string_of(BytesView b);

/// Concatenate buffers.
Bytes concat(BytesView a, BytesView b);

/// XOR b into a (in place); the spans must be the same length.
void xor_into(std::span<std::uint8_t> a, BytesView b);

/// Big-endian store/load of fixed-width integers, used by the crypto cores.
void store_be32(std::uint8_t* p, std::uint32_t v);
void store_be64(std::uint8_t* p, std::uint64_t v);
std::uint32_t load_be32(const std::uint8_t* p);
std::uint64_t load_be64(const std::uint8_t* p);
void store_le32(std::uint8_t* p, std::uint32_t v);
std::uint32_t load_le32(const std::uint8_t* p);

}  // namespace p2pdrm::util
