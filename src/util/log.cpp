#include "util/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace p2pdrm::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kOff};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void log_line(LogLevel level, const std::string& component, const std::string& msg) {
  if (level < log_level()) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%s] %s: %s\n", level_name(level), component.c_str(), msg.c_str());
}

LogStream::~LogStream() {
  if (level_ >= log_level()) log_line(level_, component_, stream_.str());
}

}  // namespace p2pdrm::util
