#include "sim/latency.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace p2pdrm::sim {

util::SimTime LatencyModel::sample_rtt(crypto::SecureRandom& rng) const {
  const double mu = std::log(static_cast<double>(median));
  const double draw = rng.lognormal(mu, sigma);
  const util::SimTime rtt = floor + static_cast<util::SimTime>(draw);
  return std::min(rtt, cap);
}

QueueStation::QueueStation(std::size_t servers) : servers_(servers) {
  if (servers == 0) throw std::invalid_argument("QueueStation: zero servers");
  for (std::size_t i = 0; i < servers; ++i) free_at_.push(0);
}

util::SimTime QueueStation::submit(util::SimTime arrival, util::SimTime service,
                                   util::SimTime* queue_wait) {
  util::SimTime free = free_at_.top();
  free_at_.pop();
  const util::SimTime start = std::max(arrival, free);
  if (queue_wait != nullptr) *queue_wait = start - arrival;
  const util::SimTime departure = start + service;
  free_at_.push(departure);
  ++processed_;
  busy_ += service;
  return departure;
}

double QueueStation::utilization(util::SimTime horizon) const {
  if (horizon <= 0) return 0.0;
  return static_cast<double>(busy_) /
         (static_cast<double>(horizon) * static_cast<double>(servers_));
}

}  // namespace p2pdrm::sim
