// Deterministic discrete-event simulation core.
//
// The paper's evaluation comes from a production network; our substitute is
// a simulator that drives the real protocol state machines (integration
// tests, examples) and a calibrated cost model of them (the week-long
// macro simulations behind the Fig. 5/6 reproductions). Determinism:
// identical seeds → identical event interleaving → identical results.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/time.h"

namespace p2pdrm::sim {

class Simulation {
 public:
  using Action = std::function<void()>;

  util::SimTime now() const { return now_; }

  /// Schedule `action` to run `delay` from now (delay >= 0).
  void schedule(util::SimTime delay, Action action);
  /// Schedule at an absolute time (>= now).
  void schedule_at(util::SimTime when, Action action);

  /// Run one event; returns false if the queue is empty.
  bool step();
  /// Run events until the queue is empty or the time limit is passed.
  void run_until(util::SimTime limit);
  /// Drain the queue completely.
  void run();

  std::size_t pending() const { return queue_.size(); }
  std::uint64_t executed() const { return executed_; }

  /// A util::Clock view of the simulation time (injectable into clients).
  const util::Clock& clock() const { return clock_; }

 private:
  struct Event {
    util::SimTime when;
    std::uint64_t seq;  // tie-break: FIFO among same-time events
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  class SimClock final : public util::Clock {
   public:
    explicit SimClock(const Simulation& sim) : sim_(sim) {}
    util::SimTime now() const override { return sim_.now_; }

   private:
    const Simulation& sim_;
  };

  util::SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimClock clock_{*this};
};

}  // namespace p2pdrm::sim
