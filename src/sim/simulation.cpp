#include "sim/simulation.h"

#include <stdexcept>

namespace p2pdrm::sim {

void Simulation::schedule(util::SimTime delay, Action action) {
  if (delay < 0) throw std::invalid_argument("Simulation: negative delay");
  schedule_at(now_ + delay, std::move(action));
}

void Simulation::schedule_at(util::SimTime when, Action action) {
  if (when < now_) throw std::invalid_argument("Simulation: scheduling in the past");
  queue_.push(Event{when, next_seq_++, std::move(action)});
}

bool Simulation::step() {
  if (queue_.empty()) return false;
  // Moving out of the priority queue requires a const_cast because top()
  // returns const&; the element is popped immediately after.
  Event event = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = event.when;
  ++executed_;
  event.action();
  return true;
}

void Simulation::run_until(util::SimTime limit) {
  while (!queue_.empty() && queue_.top().when <= limit) step();
  if (now_ < limit) now_ = limit;
}

void Simulation::run() {
  while (step()) {
  }
}

}  // namespace p2pdrm::sim
