#include "sim/macro_shard.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace p2pdrm::sim {

namespace {

/// Slice service scale: slice_servers * S / servers keeps total modeled
/// capacity at exactly `servers`. Exactly 1.0 when S == 1.
double slice_scale(std::size_t slice_servers, std::size_t num_shards,
                   std::size_t servers) {
  return static_cast<double>(slice_servers) * static_cast<double>(num_shards) /
         static_cast<double>(servers);
}

util::SimTime scaled(util::SimTime t, double scale) {
  if (scale == 1.0) return t;
  return std::max<util::SimTime>(
      1, static_cast<util::SimTime>(static_cast<double>(t) * scale));
}

}  // namespace

MacroShard::MacroShard(const MacroSimConfig& cfg,
                       const workload::ChannelPartition& partition,
                       std::size_t index, std::size_t num_shards)
    : cfg_(cfg), part_(partition), index_(index), num_shards_(num_shards),
      rng_(util::split_seed(cfg.seed, util::lane::kShard + index)),
      arrival_rng_(
          util::split_seed(cfg.seed, util::lane::kShard + (1ull << 32) + index)),
      um_servers_(std::max<std::size_t>(1, cfg.user_manager_servers / num_shards)),
      cm_servers_(std::max<std::size_t>(1, cfg.channel_manager_servers / num_shards)),
      um_scale_(slice_scale(um_servers_, num_shards, cfg.user_manager_servers)),
      cm_scale_(slice_scale(cm_servers_, num_shards, cfg.channel_manager_servers)),
      um_(um_servers_), cm_(cm_servers_),
      horizon_(static_cast<util::SimTime>(cfg.days) * util::kDay) {
  trace_enabled_ = cfg_.obs.tracer != nullptr;
  if (trace_enabled_) tracer_.set_capacity(cfg_.obs.tracer->capacity());
  buffer_slo_ = cfg_.obs.slo != nullptr;

  const double rate = shard_peak_rate();
  if (rate > 0) arrivals_.emplace(cfg_.profile, rate);

  const std::size_t hours = static_cast<std::size_t>(cfg_.days) * 24;
  for (std::size_t r = 0; r < kNumRounds; ++r) {
    RoundTrace& trace = rounds_[r];
    trace.hourly.reserve(hours);
    const std::uint64_t stream = (index_ * kNumRounds + r) << 20;
    for (std::size_t h = 0; h < hours; ++h) {
      trace.hourly.emplace_back(
          cfg_.reservoir_per_hour,
          util::split_seed(cfg_.seed, util::lane::kReservoir + stream + h));
    }
    // 0xFFFFF / 0xFFFFE are out of reach for real hour indices, so the
    // peak/off-peak streams never collide with an hourly one.
    trace.peak = analysis::Reservoir(
        cfg_.reservoir_cdf,
        util::split_seed(cfg_.seed, util::lane::kReservoir + stream + 0xFFFFF));
    trace.offpeak = analysis::Reservoir(
        cfg_.reservoir_cdf,
        util::split_seed(cfg_.seed, util::lane::kReservoir + stream + 0xFFFFE));

    const ProtocolRound round = static_cast<ProtocolRound>(r);
    hist_hourly_[r].reserve(hours);
    for (std::size_t h = 0; h < hours; ++h) {
      hist_hourly_[r].push_back(
          &registry_.histogram(hourly_histogram_name(round, h)));
    }
    hist_peak_[r] = &registry_.histogram(split_histogram_name(round, true));
    hist_offpeak_[r] = &registry_.histogram(split_histogram_name(round, false));
    hist_all_[r] = &registry_.histogram(round_histogram_name(round));
  }
  concurrency_integral_.assign(hours, 0.0);
}

double MacroShard::shard_peak_rate() const {
  // Little's law gives the global peak arrival rate; Poisson splitting
  // hands this shard its channels' share of it. The split streams are
  // statistically identical to thinning one global stream, and each shard
  // draws its own, so arrivals never depend on another shard's schedule.
  const double mean_duration_s =
      util::to_seconds(cfg_.session.median_duration) *
      std::exp(cfg_.session.duration_sigma * cfg_.session.duration_sigma / 2.0);
  const double global_rate = cfg_.peak_concurrent / mean_duration_s;
  return global_rate * part_.share(index_);
}

void MacroShard::seed_initial_events() {
  if (arrivals_.has_value()) {
    schedule(arrivals_->next(0, arrival_rng_), 0, Phase::kArrival);
  }
  // Flash crowds land on the shard that owns the event's channel; each
  // crowd draws its arrival times from its own seed lane, so the schedule
  // is identical no matter which shard simulates it.
  for (std::size_t i = 0; i < cfg_.flash_crowds.size(); ++i) {
    const workload::FlashCrowd& crowd = cfg_.flash_crowds[i];
    if (part_.shard_of(crowd.channel) != index_) continue;
    crypto::SecureRandom crowd_rng(
        util::split_seed(cfg_.seed, util::lane::kFlashCrowd + i));
    for (util::SimTime t : crowd.arrivals(crowd_rng)) {
      if (t < horizon_) {
        schedule(t, static_cast<std::uint32_t>(crowd.channel),
                 Phase::kCrowdArrival);
      }
    }
  }
}

void MacroShard::run_window(util::SimTime window_end) {
  while (!queue_.empty() && queue_.top().when < window_end) {
    const Event ev = queue_.top();
    queue_.pop();
    now_ = ev.when;
    ++events_;
    dispatch(ev);
  }
}

void MacroShard::finish(util::SimTime horizon) {
  flush_concurrency(horizon);
  // Sessions still mid-round at the horizon never completed: close their
  // spans as failed so every exported tree is complete.
  if (trace_enabled_) {
    for (std::size_t i = 0; i < pool_.size(); ++i) {
      Session& session = pool_[i];
      if (session.round_span != 0) {
        tracer_.end_span(session.round_span, horizon, false);
        session.round_span = 0;
      }
    }
  }
}

void MacroShard::schedule(util::SimTime when, std::uint32_t session,
                          Phase phase) {
  queue_.push(Event{when, next_seq_++, session, phase});
}

void MacroShard::flush_concurrency(util::SimTime upto) {
  util::SimTime t = last_change_;
  while (t < upto) {
    const std::size_t hour = static_cast<std::size_t>(t / util::kHour);
    const util::SimTime hour_end =
        static_cast<util::SimTime>(hour + 1) * util::kHour;
    const util::SimTime span = std::min(upto, hour_end) - t;
    if (hour < concurrency_integral_.size()) {
      concurrency_integral_[hour] +=
          static_cast<double>(concurrency_) * static_cast<double>(span);
    }
    t += span;
  }
  last_change_ = upto;
}

void MacroShard::change_concurrency(int delta) {
  flush_concurrency(now_);
  concurrency_ += delta;
  local_peak_ = std::max(local_peak_, static_cast<double>(concurrency_));
}

util::SimTime MacroShard::lognormal_around(util::SimTime median, double sigma) {
  const double draw =
      rng_.lognormal(std::log(static_cast<double>(median)), sigma);
  return std::max<util::SimTime>(1, static_cast<util::SimTime>(draw));
}

util::SimTime MacroShard::service_time(ProtocolRound r, double scale) {
  const ServiceCosts& c = cfg_.costs;
  util::SimTime base = 0;
  switch (r) {
    case ProtocolRound::kLogin1: base = c.login1; break;
    case ProtocolRound::kLogin2: base = c.login2; break;
    case ProtocolRound::kSwitch1: base = c.switch1; break;
    case ProtocolRound::kSwitch2: base = c.switch2; break;
    case ProtocolRound::kJoin: base = c.join; break;
  }
  return scaled(lognormal_around(base, c.dispersion), scale);
}

util::SimTime MacroShard::client_time(ProtocolRound r) {
  const ClientCosts& c = cfg_.client_costs;
  util::SimTime base = 0;
  switch (r) {
    case ProtocolRound::kLogin1: base = c.login1; break;
    case ProtocolRound::kLogin2: base = c.login2; break;
    case ProtocolRound::kSwitch1: base = c.switch1; break;
    case ProtocolRound::kSwitch2: base = c.switch2; break;
    case ProtocolRound::kJoin: base = c.join; break;
  }
  return lognormal_around(base, c.dispersion);
}

void MacroShard::record(std::uint32_t s, ProtocolRound r,
                        util::SimTime latency) {
  const std::size_t ri = static_cast<std::size_t>(r);
  RoundTrace& trace = rounds_[ri];
  const double seconds = util::to_seconds(latency);
  const std::size_t hour = static_cast<std::size_t>(now_ / util::kHour);
  const bool peak = util::hour_of_day(now_) >= 18;
  if (hour < trace.hourly.size()) trace.hourly[hour].add(seconds);
  (peak ? trace.peak : trace.offpeak).add(seconds);
  ++trace.count;
  if (hour < hist_hourly_[ri].size()) hist_hourly_[ri][hour]->record(latency);
  (peak ? hist_peak_[ri] : hist_offpeak_[ri])->record(latency);
  hist_all_[ri]->record(latency);
  // SLO observations are buffered, not delivered: the coordinator replays
  // all shards' buffers in deterministic merged order at the next barrier.
  if (buffer_slo_) slo_buffer_.push_back(SloSample{now_, r, latency});
  Session& session = pool_[s];
  if (session.round_span != 0) {
    tracer_.end_span(session.round_span, now_, true);
    session.round_span = 0;
  }
}

void MacroShard::start_round(std::uint32_t s, ProtocolRound r,
                             Phase arrive_phase, const LatencyModel& net) {
  Session& session = pool_[s];
  session.round_start = now_;
  const util::SimTime rtt = net.sample_rtt(rng_);
  session.rtt_half = rtt / 2;
  const util::SimTime think = client_time(r);
  const util::SimTime arrive = now_ + think + session.rtt_half;
  if (session.traced) {
    session.round_span =
        tracer_.begin_span("client", std::string(to_string(r)), s + 1, now_);
    // The request flight; client think time stays the round's residual.
    const obs::SpanId hop = tracer_.begin_span(
        "net", "hop request", s + 1, now_ + think, session.round_span);
    tracer_.end_span(hop, arrive, true);
  }
  schedule(arrive, s, arrive_phase);
}

void MacroShard::serve_and_respond(std::uint32_t s, ProtocolRound r,
                                   QueueStation& station, double scale,
                                   Phase resp_phase) {
  Session& session = pool_[s];
  util::SimTime wait = 0;
  const util::SimTime depart =
      station.submit(now_, service_time(r, scale), &wait);
  if (session.round_span != 0) {
    // Farm pseudo-actors: 2 = User Manager farm, 3 = Channel Manager farm.
    const std::uint64_t farm = &station == &um_ ? 2 : 3;
    if (wait > 0) {
      const obs::SpanId q =
          tracer_.begin_span("server", "queue", farm, now_, session.round_span);
      tracer_.end_span(q, now_ + wait, true);
    }
    const obs::SpanId serve = tracer_.begin_span("server", "serve", farm,
                                                 now_ + wait,
                                                 session.round_span);
    tracer_.end_span(serve, depart, true);
    const obs::SpanId hop = tracer_.begin_span("net", "hop response", s + 1,
                                               depart, session.round_span);
    tracer_.end_span(hop, depart + session.rtt_half, true);
  }
  schedule(depart + session.rtt_half, s, resp_phase);
}

bool MacroShard::shed_login(std::uint32_t s, Phase arrive_phase) {
  if (cfg_.login_admission_max_wait <= 0) return false;
  Session& session = pool_[s];
  if (session.relogging_in) return false;  // protected tier
  if (um_.estimated_wait(now_) <= cfg_.login_admission_max_wait) return false;
  ++totals_.logins_shed;
  if (session.busy_retries >= cfg_.max_busy_retries) {
    // Out of patience: the viewer walks away (the honest cost of shedding —
    // counted, never silent).
    ++totals_.busy_abandoned;
    if (session.round_span != 0) {
      tracer_.end_span(session.round_span, now_, false);
      session.round_span = 0;
    }
    session.active = false;
    change_concurrency(-1);
    free_list_.push_back(s);
    return true;
  }
  ++session.busy_retries;
  ++totals_.busy_retries;
  if (session.round_span != 0) tracer_.event(session.round_span, now_, "busy");
  schedule(now_ + cfg_.busy_retry_after, s, arrive_phase);
  return true;
}

void MacroShard::dispatch(const Event& ev) {
  switch (ev.phase) {
    case Phase::kArrival: {
      // Chain the next background arrival before anything else, so the
      // arrival process stays a pure function of this shard's RNG stream.
      if (arrivals_.has_value()) {
        const util::SimTime next = arrivals_->next(now_, arrival_rng_);
        if (next < horizon_) schedule(next, 0, Phase::kArrival);
      }
      on_arrival(true, 0);
      return;
    }
    case Phase::kCrowdArrival: on_arrival(false, ev.session); return;
    case Phase::kLogin1Arrive:
      if (shed_login(ev.session, Phase::kLogin1Arrive)) return;
      serve_and_respond(ev.session, ProtocolRound::kLogin1, um_, um_scale_,
                        Phase::kLogin1Resp);
      return;
    case Phase::kLogin1Resp: {
      record(ev.session, ProtocolRound::kLogin1,
             now_ - pool_[ev.session].round_start);
      start_round(ev.session, ProtocolRound::kLogin2, Phase::kLogin2Arrive,
                  cfg_.manager_net);
      return;
    }
    case Phase::kLogin2Arrive:
      if (shed_login(ev.session, Phase::kLogin2Arrive)) return;
      serve_and_respond(ev.session, ProtocolRound::kLogin2, um_, um_scale_,
                        Phase::kLogin2Resp);
      return;
    case Phase::kLogin2Resp: on_login_complete(ev.session); return;
    case Phase::kSwitch1Arrive:
      serve_and_respond(ev.session, ProtocolRound::kSwitch1, cm_, cm_scale_,
                        Phase::kSwitch1Resp);
      return;
    case Phase::kSwitch1Resp: {
      record(ev.session, ProtocolRound::kSwitch1,
             now_ - pool_[ev.session].round_start);
      start_round(ev.session, ProtocolRound::kSwitch2, Phase::kSwitch2Arrive,
                  cfg_.manager_net);
      return;
    }
    case Phase::kSwitch2Arrive:
      serve_and_respond(ev.session, ProtocolRound::kSwitch2, cm_, cm_scale_,
                        Phase::kSwitch2Resp);
      return;
    case Phase::kSwitch2Resp: on_switch_complete(ev.session); return;
    case Phase::kJoinArrive: on_join_arrive(ev.session); return;
    case Phase::kJoinResp: on_join_complete(ev.session); return;
    case Phase::kAction: on_action(ev.session); return;
  }
}

void MacroShard::on_arrival(bool background, std::uint32_t channel) {
  std::uint32_t s;
  if (!free_list_.empty()) {
    s = free_list_.back();
    free_list_.pop_back();
    pool_[s] = Session{};
  } else {
    s = static_cast<std::uint32_t>(pool_.size());
    pool_.emplace_back();
  }
  Session& session = pool_[s];
  session.active = true;
  session.channel =
      background ? static_cast<std::uint32_t>(part_.sample(index_, rng_))
                 : channel;
  const std::uint64_t session_index = session_counter_++;
  session.traced = trace_enabled_ && cfg_.obs.trace_session_every > 0 &&
                   session_index % cfg_.obs.trace_session_every == 0;
  session.end_time = now_ + cfg_.session.sample_duration(rng_);
  ++totals_.sessions;
  change_concurrency(+1);
  start_round(s, ProtocolRound::kLogin1, Phase::kLogin1Arrive,
              cfg_.manager_net);
}

void MacroShard::on_login_complete(std::uint32_t s) {
  Session& session = pool_[s];
  record(s, ProtocolRound::kLogin2, now_ - session.round_start);
  session.ut_expiry = now_ + cfg_.user_ticket_lifetime;
  if (session.relogging_in) {
    session.relogging_in = false;
    ++totals_.ut_renewals;
    go_watch(s);
    return;
  }
  // Fresh login: tune to the first channel.
  session.renewing_ct = false;
  start_round(s, ProtocolRound::kSwitch1, Phase::kSwitch1Arrive,
              cfg_.manager_net);
}

void MacroShard::on_switch_complete(std::uint32_t s) {
  Session& session = pool_[s];
  record(s, ProtocolRound::kSwitch2, now_ - session.round_start);
  session.ct_expiry =
      std::min(now_ + cfg_.channel_ticket_lifetime, session.ut_expiry);
  if (session.renewing_ct) {
    session.renewing_ct = false;
    ++totals_.ct_renewals;
    go_watch(s);
    return;
  }
  session.join_attempts = 0;
  start_round(s, ProtocolRound::kJoin, Phase::kJoinArrive, cfg_.peer_net);
}

void MacroShard::on_join_arrive(std::uint32_t s) {
  Session& session = pool_[s];
  // The sampled peer refuses with probability coupled (weakly) to load —
  // the busier the system, the more saturated parents appear in peer
  // lists. The load signal is global: this shard's live count plus every
  // other shard's count as of the last sync barrier.
  const double load =
      static_cast<double>(concurrency_ + remote_concurrency_) /
      cfg_.peak_concurrent;
  const double p_reject =
      std::min(0.9, cfg_.join_base_reject + cfg_.join_load_sensitivity * load);
  if (rng_.chance(p_reject) &&
      static_cast<std::size_t>(session.join_attempts) + 1 <
          cfg_.max_join_attempts) {
    ++session.join_attempts;
    ++totals_.join_retries;
    const util::SimTime retry_rtt = cfg_.peer_net.sample_rtt(rng_);
    if (session.round_span != 0) {
      const obs::SpanId hop = tracer_.begin_span(
          "net", "hop join-retry", s + 1, now_, session.round_span);
      tracer_.tag(hop, "attempt", std::to_string(session.join_attempts));
      tracer_.end_span(hop, now_ + retry_rtt, false);
      tracer_.event(session.round_span, now_, "join-refused");
    }
    schedule(now_ + retry_rtt, s, Phase::kJoinArrive);
    return;
  }
  // Accepted: peer-side processing (ticket verify + RSA-encrypt session
  // key), then the response travels back. Peers are individuals, not a
  // farm slice — no service scaling.
  const util::SimTime svc = service_time(ProtocolRound::kJoin, 1.0);
  if (session.round_span != 0) {
    // Pseudo-actor 4 = the accepting peer.
    const obs::SpanId serve =
        tracer_.begin_span("server", "serve", 4, now_, session.round_span);
    tracer_.end_span(serve, now_ + svc, true);
    const obs::SpanId hop = tracer_.begin_span(
        "net", "hop response", s + 1, now_ + svc, session.round_span);
    tracer_.end_span(hop, now_ + svc + session.rtt_half, true);
  }
  schedule(now_ + svc + session.rtt_half, s, Phase::kJoinResp);
}

void MacroShard::on_join_complete(std::uint32_t s) {
  Session& session = pool_[s];
  record(s, ProtocolRound::kJoin, now_ - session.round_start);
  if (!session.joined_once) {
    session.joined_once = true;
  } else {
    ++totals_.channel_switches;
  }
  session.next_switch = now_ + cfg_.session.sample_switch_gap(rng_);
  go_watch(s);
}

void MacroShard::go_watch(std::uint32_t s) {
  Session& session = pool_[s];
  const util::SimTime due = next_due(session);
  schedule(std::max(due, now_ + 1), s, Phase::kAction);
}

util::SimTime MacroShard::next_due(const Session& session) const {
  const util::SimTime ct_renew = session.ct_expiry - util::kMinute;
  const util::SimTime ut_renew = session.ut_expiry - 2 * util::kMinute;
  return std::min({session.end_time, session.next_switch, ct_renew, ut_renew});
}

void MacroShard::on_action(std::uint32_t s) {
  Session& session = pool_[s];
  if (!session.active) return;

  if (now_ >= session.end_time) {
    session.active = false;
    change_concurrency(-1);
    free_list_.push_back(s);
    return;
  }
  const util::SimTime ct_renew = session.ct_expiry - util::kMinute;
  const util::SimTime ut_renew = session.ut_expiry - 2 * util::kMinute;

  if (now_ >= ut_renew) {
    session.relogging_in = true;
    start_round(s, ProtocolRound::kLogin1, Phase::kLogin1Arrive,
                cfg_.manager_net);
    return;
  }
  if (now_ >= session.next_switch) {
    // Voluntary channel switch: retune to a fresh channel of this shard
    // (the conditional Zipf draw), then a fresh SWITCH + JOIN.
    session.channel = static_cast<std::uint32_t>(part_.sample(index_, rng_));
    session.renewing_ct = false;
    start_round(s, ProtocolRound::kSwitch1, Phase::kSwitch1Arrive,
                cfg_.manager_net);
    return;
  }
  if (now_ >= ct_renew) {
    session.renewing_ct = true;
    start_round(s, ProtocolRound::kSwitch1, Phase::kSwitch1Arrive,
                cfg_.manager_net);
    return;
  }
  // Spurious wakeup (state advanced since scheduling): re-arm.
  go_watch(s);
}

}  // namespace p2pdrm::sim
