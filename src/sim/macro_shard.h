// One partition of the sharded macro-sim event engine.
//
// A MacroShard is a self-contained sub-simulation: it owns a subset of the
// channels (dealt by workload::ChannelPartition), the sessions watching
// them, its own event queue, its own ChaCha20 RNG stream (seeded by value
// from the master seed — see util/rng.h), a slice of each manager farm,
// and its own reservoirs / registry / tracer. Between two sync barriers a
// shard touches no shared state at all, which is what makes the engine's
// output independent of how shards are scheduled onto threads.
//
// Cross-shard coupling is deliberately minimal and barrier-synchronized:
//   - JOIN rejection probability reads the *global* concurrency as
//     (local live count + remote count from the last barrier);
//   - the coordinator reads each shard's concurrency at every barrier and
//     pushes the aggregate back via set_remote_concurrency();
//   - SLO observations are buffered per shard and replayed by the
//     coordinator in deterministic merged order.
//
// Farm slicing: a shard gets max(1, servers/S) queue servers with service
// times scaled by slice_servers * S / servers, so total modeled capacity
// stays exactly `servers` regardless of S (and the scale is exactly 1.0
// when S == 1, preserving the classic engine's integer arithmetic).
//
// Allocation: sessions live in an arena-backed segmented pool
// (util::ArenaVector) — stable addresses, no per-session malloc/free, and
// the free list recycles slots; the event queue is a flat binary heap.
#pragma once

#include <cstdint>
#include <optional>
#include <queue>
#include <vector>

#include "obs/registry.h"
#include "obs/trace.h"
#include "sim/latency.h"
#include "sim/macro_sim.h"
#include "util/arena.h"
#include "workload/workload.h"

namespace p2pdrm::sim {

class MacroShard {
 public:
  MacroShard(const MacroSimConfig& cfg,
             const workload::ChannelPartition& partition, std::size_t index,
             std::size_t num_shards);

  /// Schedule the first background arrival and this shard's flash crowds.
  void seed_initial_events();
  /// Process every queued event with time < window_end.
  void run_window(util::SimTime window_end);
  /// Close still-open traced round spans at the horizon (as failed) and
  /// flush the concurrency integral.
  void finish(util::SimTime horizon);

  // --- barrier interface (coordinator only, shard quiescent) ---

  std::int64_t concurrency() const { return concurrency_; }
  void set_remote_concurrency(std::int64_t remote) {
    remote_concurrency_ = remote;
  }
  double local_peak_concurrency() const { return local_peak_; }

  struct SloSample {
    util::SimTime when;
    ProtocolRound round;
    util::SimTime latency;
  };
  /// Observations buffered since the last drain (coordinator clears).
  std::vector<SloSample>& slo_samples() { return slo_buffer_; }

  // --- results (read after finish()) ---

  std::uint64_t events() const { return events_; }
  const obs::Registry& registry() const { return registry_; }
  obs::Tracer& tracer() { return tracer_; }
  const RoundTrace& round(std::size_t r) const { return rounds_[r]; }
  /// Time-weighted concurrency integral per sim hour (additive across
  /// shards, so the merged hourly curve is exact).
  const std::vector<double>& concurrency_integral() const {
    return concurrency_integral_;
  }

  struct Totals {
    std::uint64_t sessions = 0;
    std::uint64_t channel_switches = 0;
    std::uint64_t ct_renewals = 0;
    std::uint64_t ut_renewals = 0;
    std::uint64_t join_retries = 0;
    std::uint64_t logins_shed = 0;
    std::uint64_t busy_retries = 0;
    std::uint64_t busy_abandoned = 0;
  };
  const Totals& totals() const { return totals_; }

  util::SimTime um_busy() const { return um_.busy_time(); }
  util::SimTime cm_busy() const { return cm_.busy_time(); }
  std::size_t um_servers() const { return um_servers_; }
  std::size_t cm_servers() const { return cm_servers_; }

 private:
  enum class Phase : std::uint8_t {
    kArrival,       // background arrival: sample a channel, chain the next
    kCrowdArrival,  // pre-scheduled flash-crowd arrival (session = channel)
    kLogin1Arrive, kLogin1Resp,
    kLogin2Arrive, kLogin2Resp,
    kSwitch1Arrive, kSwitch1Resp,
    kSwitch2Arrive, kSwitch2Resp,
    kJoinArrive, kJoinResp,
    kAction,        // watching; decide what happens next
  };

  struct Session {
    util::SimTime end_time = 0;
    util::SimTime round_start = 0;
    util::SimTime rtt_half = 0;
    util::SimTime ut_expiry = 0;
    util::SimTime ct_expiry = 0;
    util::SimTime next_switch = 0;
    obs::SpanId round_span = 0;  // open round span of a traced session
    std::uint32_t channel = 0;
    std::uint8_t join_attempts = 0;
    std::uint8_t busy_retries = 0;  // admission-control BUSYs absorbed
    bool renewing_ct = false;
    bool relogging_in = false;
    bool joined_once = false;
    bool active = false;
    bool traced = false;
  };

  struct Event {
    util::SimTime when;
    std::uint64_t seq;
    std::uint32_t session;  // pool index; channel for kCrowdArrival
    Phase phase;
  };
  struct LaterEvent {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  double shard_peak_rate() const;
  void schedule(util::SimTime when, std::uint32_t session, Phase phase);
  void flush_concurrency(util::SimTime upto);
  void change_concurrency(int delta);

  util::SimTime lognormal_around(util::SimTime median, double sigma);
  util::SimTime service_time(ProtocolRound r, double scale);
  util::SimTime client_time(ProtocolRound r);
  void record(std::uint32_t s, ProtocolRound r, util::SimTime latency);

  void start_round(std::uint32_t s, ProtocolRound r, Phase arrive_phase,
                   const LatencyModel& net);
  void serve_and_respond(std::uint32_t s, ProtocolRound r,
                         QueueStation& station, double scale,
                         Phase resp_phase);
  bool shed_login(std::uint32_t s, Phase arrive_phase);

  void dispatch(const Event& ev);
  void on_arrival(bool background, std::uint32_t channel);
  void on_login_complete(std::uint32_t s);
  void on_switch_complete(std::uint32_t s);
  void on_join_arrive(std::uint32_t s);
  void on_join_complete(std::uint32_t s);
  void go_watch(std::uint32_t s);
  util::SimTime next_due(const Session& session) const;
  void on_action(std::uint32_t s);

  const MacroSimConfig& cfg_;
  const workload::ChannelPartition& part_;
  std::size_t index_;
  std::size_t num_shards_;

  crypto::SecureRandom rng_;
  /// Dedicated stream for the background arrival process: session/service
  /// draws (which vary with flash crowds, load, etc.) never perturb the
  /// arrival schedule, so adding a crowd adds exactly its own sessions.
  crypto::SecureRandom arrival_rng_;
  obs::Tracer tracer_;
  bool trace_enabled_ = false;
  std::optional<workload::ArrivalProcess> arrivals_;
  std::size_t um_servers_;
  std::size_t cm_servers_;
  double um_scale_;
  double cm_scale_;
  QueueStation um_;
  QueueStation cm_;
  util::SimTime horizon_;
  util::SimTime now_ = 0;

  std::priority_queue<Event, std::vector<Event>, LaterEvent> queue_;
  std::uint64_t next_seq_ = 1;
  util::Arena arena_;
  util::ArenaVector<Session> pool_{arena_};
  std::vector<std::uint32_t> free_list_;

  std::int64_t concurrency_ = 0;
  std::int64_t remote_concurrency_ = 0;
  util::SimTime last_change_ = 0;
  std::vector<double> concurrency_integral_;
  double local_peak_ = 0;

  std::array<RoundTrace, kNumRounds> rounds_;
  obs::Registry registry_;
  /// Cached pointers into registry_ — record() is far too hot for name
  /// lookups.
  std::array<std::vector<obs::LatencyHistogram*>, kNumRounds> hist_hourly_;
  std::array<obs::LatencyHistogram*, kNumRounds> hist_peak_ = {};
  std::array<obs::LatencyHistogram*, kNumRounds> hist_offpeak_ = {};
  std::array<obs::LatencyHistogram*, kNumRounds> hist_all_ = {};

  Totals totals_;
  std::vector<SloSample> slo_buffer_;
  bool buffer_slo_ = false;
  std::uint64_t session_counter_ = 0;
  std::uint64_t events_ = 0;
};

}  // namespace p2pdrm::sim
