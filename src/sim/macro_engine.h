// Sharded macro-sim engine: shard fan-out, barrier loop, coordinator.
//
// MacroEngine partitions the simulated week across MacroShards (one per
// channel partition) and advances them in lockstep windows of
// shard_sync_interval. Inside a window every shard is fully independent;
// at each barrier the coordinator — always running on the calling thread,
// in shard-index order — does the cross-shard work:
//
//   - sums shard concurrencies and pushes the aggregate back to every
//     shard (the JOIN load-coupling signal);
//   - replays the shards' buffered SLO observations in deterministic
//     merged order, interleaved with scrape ticks;
//   - mints key-rotation epochs (global by nature: the fan-out tree spans
//     the whole population) from a dedicated seed lane;
//   - scrapes a freshly merged registry into the time series.
//
// Because shards only exchange data at barriers and every coordinator
// step is ordered by shard index, the run's output is a pure function of
// (config, seed, shards): running with 1, 2, or 8 worker threads produces
// byte-identical results (asserted by test). threads therefore only buys
// wall-clock, never changes answers.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "obs/registry.h"
#include "obs/trace.h"
#include "sim/macro_sim.h"
#include "workload/workload.h"

namespace p2pdrm::sim {

class MacroShard;

class MacroEngine {
 public:
  /// Validates the config (throws std::invalid_argument on nonsense).
  explicit MacroEngine(const MacroSimConfig& config);
  ~MacroEngine();

  MacroSimResult run();

 private:
  class Pool;

  void run_windows();
  /// Coordinator work for the window [t0, t1): SLO replay, scrape ticks,
  /// key rotations. `load` is the global concurrency at the window start.
  void coordinate(util::SimTime t0, util::SimTime t1, double load);
  void do_scrape(util::SimTime at, double load);
  void on_key_rotation(util::SimTime at, double population);
  std::size_t sample_depth(std::size_t levels, std::size_t fanout);
  MacroSimResult merge_results();

  MacroSimConfig cfg_;
  workload::ChannelPartition partition_;
  std::vector<std::unique_ptr<MacroShard>> shards_;
  std::size_t threads_used_;
  util::SimTime horizon_;

  crypto::SecureRandom key_rng_;
  obs::Tracer coord_tracer_;
  obs::Registry coord_registry_;
  obs::Registry scrape_registry_;
  obs::Counter* rotations_issued_ = nullptr;
  obs::Counter* epochs_delivered_ = nullptr;
  obs::LatencyHistogram* key_lag_ = nullptr;
  obs::Gauge* key_staleness_ = nullptr;

  util::SimTime next_rotation_ = 0;
  util::SimTime next_scrape_ = 0;
  std::uint64_t rotation_counter_ = 0;
  std::uint64_t coordinator_events_ = 0;
  double barrier_peak_ = 0;
  /// Wall-clock/imbalance telemetry accumulated by run_windows (see
  /// MacroRuntimeStats); copied into the result by merge_results.
  MacroRuntimeStats runtime_;
};

}  // namespace p2pdrm::sim
