#include "sim/macro_engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "obs/runtime.h"
#include "sim/macro_shard.h"
#include "util/rng.h"

namespace p2pdrm::sim {

// Persistent worker pool: threads park between windows and wake on a
// generation bump. Worker t drives shards t, t+T, t+2T, ... — a static
// assignment, so no work-stealing nondeterminism can exist even in
// principle (not that it would matter: shards don't share state within a
// window).
class MacroEngine::Pool {
 public:
  Pool(std::vector<std::unique_ptr<MacroShard>>& shards, std::size_t threads)
      : shards_(shards), busy_seconds_(threads, 0.0) {
    workers_.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) {
      workers_.emplace_back([this, t] { worker_main(t); });
    }
  }

  ~Pool() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    start_cv_.notify_all();
    for (std::thread& w : workers_) w.join();
  }

  void run_window(util::SimTime window_end) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      window_end_ = window_end;
      done_ = 0;
      ++generation_;
    }
    start_cv_.notify_all();
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [this] { return done_ == workers_.size(); });
    if (error_) {
      std::exception_ptr err = error_;
      error_ = nullptr;
      std::rethrow_exception(err);
    }
  }

  /// Per-worker wall time spent inside run_window calls (read between
  /// windows or after the last one — workers are parked then).
  std::vector<double> busy_seconds() const {
    std::lock_guard<std::mutex> lk(mu_);
    return busy_seconds_;
  }

 private:
  void worker_main(std::size_t tid) {
    {
      char label[32];
      std::snprintf(label, sizeof(label), "macro-worker-%zu", tid);
      obs::Profiler::global().attach_thread(label);
    }
    std::uint64_t seen = 0;
    for (;;) {
      util::SimTime end = 0;
      {
        std::unique_lock<std::mutex> lk(mu_);
        start_cv_.wait(lk, [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
        end = window_end_;
      }
      const auto t0 = std::chrono::steady_clock::now();
      try {
        obs::Profiler::Scope scope(obs::Profiler::global(), "macro.run_window");
        for (std::size_t s = tid; s < shards_.size(); s += workers_.size()) {
          shards_[s]->run_window(end);
        }
      } catch (...) {
        std::lock_guard<std::mutex> lk(mu_);
        if (!error_) error_ = std::current_exception();
      }
      const std::chrono::duration<double> busy =
          std::chrono::steady_clock::now() - t0;
      {
        std::lock_guard<std::mutex> lk(mu_);
        busy_seconds_[tid] += busy.count();
        ++done_;
      }
      done_cv_.notify_one();
    }
  }

  std::vector<std::unique_ptr<MacroShard>>& shards_;
  std::vector<std::thread> workers_;
  mutable std::mutex mu_;
  std::condition_variable start_cv_, done_cv_;
  std::uint64_t generation_ = 0;
  std::size_t done_ = 0;
  util::SimTime window_end_ = 0;
  bool stop_ = false;
  std::exception_ptr error_;
  std::vector<double> busy_seconds_;
};

MacroEngine::MacroEngine(const MacroSimConfig& config)
    : cfg_(config.validated()),
      partition_(cfg_.num_channels, cfg_.zipf_exponent, cfg_.shards),
      threads_used_(0),
      horizon_(static_cast<util::SimTime>(cfg_.days) * util::kDay),
      key_rng_(util::split_seed(cfg_.seed, util::lane::kKeyRotation)) {
  std::size_t threads = cfg_.threads;
  if (threads == 0) {
    threads = std::max<unsigned>(1, std::thread::hardware_concurrency());
  }
  threads_used_ = std::min(threads, cfg_.shards);

  shards_.reserve(cfg_.shards);
  for (std::size_t s = 0; s < cfg_.shards; ++s) {
    shards_.push_back(
        std::make_unique<MacroShard>(cfg_, partition_, s, cfg_.shards));
  }

  if (cfg_.obs.tracer != nullptr) {
    coord_tracer_.set_capacity(cfg_.obs.tracer->capacity());
  }
  if (cfg_.key_rotation.enabled) {
    rotations_issued_ = &coord_registry_.counter("macro.key.rotations_issued");
    epochs_delivered_ = &coord_registry_.counter("macro.key.epochs_delivered");
    key_lag_ = &coord_registry_.histogram("macro.key.delivery_lag_us");
    key_staleness_ = &coord_registry_.gauge("macro.key.max_staleness_us");
    next_rotation_ = cfg_.key_rotation.interval;
  }
  if (cfg_.obs.timeseries != nullptr || cfg_.obs.slo != nullptr) {
    next_scrape_ = cfg_.obs.scrape_interval;
  }
}

MacroEngine::~MacroEngine() = default;

MacroSimResult MacroEngine::run() {
  for (auto& shard : shards_) shard->seed_initial_events();
  run_windows();
  for (auto& shard : shards_) shard->finish(horizon_);
  return merge_results();
}

void MacroEngine::run_windows() {
  std::unique_ptr<Pool> pool;
  if (threads_used_ > 1) pool = std::make_unique<Pool>(shards_, threads_used_);

  // Per-shard event counters (the deterministic side of the runtime
  // telemetry): delta-incremented at every barrier, so the final value is
  // exactly the shard's lifetime event count.
  std::vector<obs::Counter*> shard_event_counters;
  shard_event_counters.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    shard_event_counters.push_back(
        &coord_registry_.counter("macro.shard.events", std::to_string(s)));
  }
  obs::Gauge& imbalance_gauge =
      coord_registry_.gauge("macro.shard.imbalance_max_permille");
  std::vector<std::uint64_t> events_prev(shards_.size(), 0);
  double imbalance_sum = 0;
  std::uint64_t imbalance_windows = 0;

  util::SimTime t = 0;
  std::int64_t total = 0;  // global concurrency as of the last barrier
  while (t < horizon_) {
    const util::SimTime t_next =
        std::min<util::SimTime>(t + cfg_.shard_sync_interval, horizon_);
    const auto w0 = std::chrono::steady_clock::now();
    if (pool) {
      pool->run_window(t_next);
    } else {
      obs::Profiler::Scope scope(obs::Profiler::global(), "macro.run_window");
      for (auto& shard : shards_) shard->run_window(t_next);
    }
    const auto w1 = std::chrono::steady_clock::now();
    runtime_.window_wall_seconds +=
        std::chrono::duration<double>(w1 - w0).count();
    ++runtime_.windows;

    // Load imbalance over this window: max/mean of the per-shard event
    // deltas. A pure function of (config, seed, shards) — thread-safe to
    // put in the digested registry.
    std::uint64_t window_total = 0, window_max = 0;
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      const std::uint64_t events = shards_[s]->events();
      const std::uint64_t delta = events - events_prev[s];
      events_prev[s] = events;
      shard_event_counters[s]->inc(delta);
      window_total += delta;
      window_max = std::max(window_max, delta);
    }
    if (window_total > 0) {
      const double mean = static_cast<double>(window_total) /
                          static_cast<double>(shards_.size());
      const double imbalance = static_cast<double>(window_max) / mean;
      imbalance_sum += imbalance;
      ++imbalance_windows;
      runtime_.imbalance_max = std::max(runtime_.imbalance_max, imbalance);
      imbalance_gauge.set_max(std::llround(imbalance * 1000.0));
    }

    {
      obs::Profiler::Scope scope(obs::Profiler::global(), "macro.coordinate");
      coordinate(t, t_next, static_cast<double>(total));
    }
    runtime_.coordinator_wall_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - w1)
            .count();

    std::int64_t new_total = 0;
    for (auto& shard : shards_) new_total += shard->concurrency();
    for (auto& shard : shards_) {
      shard->set_remote_concurrency(new_total - shard->concurrency());
    }
    barrier_peak_ = std::max(barrier_peak_, static_cast<double>(new_total));
    total = new_total;
    t = t_next;
  }

  if (imbalance_windows > 0) {
    runtime_.imbalance_mean =
        imbalance_sum / static_cast<double>(imbalance_windows);
  }
  if (pool) {
    runtime_.worker_busy_seconds = pool->busy_seconds();
    double busy_total = 0;
    for (const double b : runtime_.worker_busy_seconds) busy_total += b;
    const double capacity = static_cast<double>(threads_used_) *
                            runtime_.window_wall_seconds;
    runtime_.barrier_wait_seconds = std::max(0.0, capacity - busy_total);
    if (capacity > 0) {
      runtime_.barrier_wait_fraction =
          runtime_.barrier_wait_seconds / capacity;
    }
  } else {
    // Single-threaded fan-out: the caller is the only worker and never
    // waits at a barrier.
    runtime_.worker_busy_seconds = {runtime_.window_wall_seconds};
  }
}

void MacroEngine::coordinate(util::SimTime t0, util::SimTime t1, double load) {
  (void)t0;
  const bool want_obs =
      cfg_.obs.slo != nullptr || cfg_.obs.timeseries != nullptr;
  if (want_obs) {
    // Merge every shard's buffered observations into one stream ordered by
    // (time, shard, buffer position) — a total order that does not depend
    // on thread scheduling — and replay it through the SLO monitor with
    // scrape ticks interleaved at their own times.
    struct Tagged {
      util::SimTime when;
      std::uint32_t shard;
      std::uint32_t idx;
      ProtocolRound round;
      util::SimTime latency;
    };
    std::vector<Tagged> samples;
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      auto& buffer = shards_[s]->slo_samples();
      for (std::size_t i = 0; i < buffer.size(); ++i) {
        samples.push_back(Tagged{buffer[i].when, static_cast<std::uint32_t>(s),
                                 static_cast<std::uint32_t>(i),
                                 buffer[i].round, buffer[i].latency});
      }
      buffer.clear();
    }
    std::sort(samples.begin(), samples.end(),
              [](const Tagged& a, const Tagged& b) {
                if (a.when != b.when) return a.when < b.when;
                if (a.shard != b.shard) return a.shard < b.shard;
                return a.idx < b.idx;
              });
    std::size_t i = 0;
    while (next_scrape_ != 0 && next_scrape_ < t1) {
      if (cfg_.obs.slo != nullptr) {
        for (; i < samples.size() && samples[i].when <= next_scrape_; ++i) {
          cfg_.obs.slo->observe(to_string(samples[i].round), samples[i].when,
                                samples[i].latency);
        }
      }
      do_scrape(next_scrape_, load);
      next_scrape_ += cfg_.obs.scrape_interval;
    }
    if (cfg_.obs.slo != nullptr) {
      for (; i < samples.size(); ++i) {
        cfg_.obs.slo->observe(to_string(samples[i].round), samples[i].when,
                              samples[i].latency);
      }
    }
  }
  if (cfg_.key_rotation.enabled) {
    while (next_rotation_ < t1) {
      on_key_rotation(next_rotation_, std::max(1.0, load));
      next_rotation_ += cfg_.key_rotation.interval;
    }
  }
}

void MacroEngine::do_scrape(util::SimTime at, double load) {
  ++coordinator_events_;
  if (cfg_.obs.slo != nullptr) cfg_.obs.slo->tick(at, load);
  if (cfg_.obs.timeseries != nullptr) {
    cfg_.obs.timeseries->record("load.concurrent", at, load);
    scrape_registry_.reset();
    for (auto& shard : shards_) scrape_registry_.merge_from(shard->registry());
    scrape_registry_.merge_from(coord_registry_);
    cfg_.obs.timeseries->scrape(scrape_registry_, at);
  }
}

std::size_t MacroEngine::sample_depth(std::size_t levels, std::size_t fanout) {
  // Depth of a delivery path, weighted by level population: a full
  // `fanout`-ary tree holds fanout^d peers at depth d, so deep levels
  // dominate. Draws from the rotation stream only.
  double total = 0, weight = 1;
  for (std::size_t d = 1; d <= levels; ++d) {
    weight *= static_cast<double>(fanout);
    total += weight;
  }
  double x = key_rng_.uniform_real() * total;
  weight = 1;
  for (std::size_t d = 1; d <= levels; ++d) {
    weight *= static_cast<double>(fanout);
    if (x < weight) return d;
    x -= weight;
  }
  return levels;
}

void MacroEngine::on_key_rotation(util::SimTime at, double population) {
  ++coordinator_events_;
  const KeyRotationModel& kr = cfg_.key_rotation;
  const std::uint64_t serial = rotation_counter_++;
  rotations_issued_->inc();
  std::size_t levels = 1;
  double capacity = static_cast<double>(kr.fanout);
  while (capacity < population && levels < 24) {
    capacity *= static_cast<double>(kr.fanout);
    ++levels;
  }
  const bool traced = cfg_.obs.tracer != nullptr &&
                      cfg_.obs.trace_rotation_every > 0 &&
                      serial % cfg_.obs.trace_rotation_every == 0;
  obs::SpanId root = 0;
  if (traced) {
    root = coord_tracer_.begin_span("server", "KEY_ROTATION", 0, at);
    coord_tracer_.tag(root, "serial", std::to_string(serial & 0xff));
    coord_tracer_.tag(root, "levels", std::to_string(levels));
  }
  util::SimTime max_lag = 0;
  for (std::size_t i = 0; i < kr.sampled_peers; ++i) {
    const std::size_t depth = sample_depth(levels, kr.fanout);
    util::SimTime lag = 0;
    for (std::size_t hop = 0; hop < depth; ++hop) {
      lag += cfg_.peer_net.sample_rtt(key_rng_) / 2 + kr.relay_cost;
    }
    key_lag_->record(lag);
    epochs_delivered_->inc();
    // The key activates announce_lead after the announcement; a peer whose
    // delivery path is longer than that holds a stale epoch.
    const util::SimTime staleness = lag - kr.announce_lead;
    if (staleness > key_staleness_->value()) key_staleness_->set(staleness);
    max_lag = std::max(max_lag, lag);
    if (traced) {
      const obs::SpanId deliver = coord_tracer_.begin_span(
          "p2p", "deliver key", 1000000 + i, at, root);
      coord_tracer_.tag(deliver, "depth", std::to_string(depth));
      coord_tracer_.end_span(deliver, at + lag, true);
    }
  }
  if (traced) coord_tracer_.end_span(root, at + max_lag, true);
}

MacroSimResult MacroEngine::merge_results() {
  MacroSimResult result;
  result.shards_used = cfg_.shards;
  result.threads_used = threads_used_;
  runtime_.shard_events.clear();
  for (auto& shard : shards_) runtime_.shard_events.push_back(shard->events());
  result.runtime = runtime_;

  // Metrics: shard registries in index order, then the coordinator's.
  result.registry = std::make_shared<obs::Registry>();
  for (auto& shard : shards_) result.registry->merge_from(shard->registry());
  result.registry->merge_from(coord_registry_);

  // Reservoirs: deterministic weighted merge per (round, hour) cell. With
  // one shard the merge degenerates to an exact copy.
  std::vector<const analysis::Reservoir*> parts(shards_.size());
  const std::size_t hours = static_cast<std::size_t>(cfg_.days) * 24;
  for (std::size_t r = 0; r < kNumRounds; ++r) {
    RoundTrace& trace = result.rounds[r];
    trace.hourly.reserve(hours);
    const std::uint64_t stream = static_cast<std::uint64_t>(r) << 20;
    for (std::size_t h = 0; h < hours; ++h) {
      for (std::size_t s = 0; s < shards_.size(); ++s) {
        parts[s] = &shards_[s]->round(r).hourly[h];
      }
      trace.hourly.push_back(analysis::Reservoir::merged(
          cfg_.reservoir_per_hour,
          util::split_seed(cfg_.seed, util::lane::kMerge + stream + h), parts));
    }
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      parts[s] = &shards_[s]->round(r).peak;
    }
    trace.peak = analysis::Reservoir::merged(
        cfg_.reservoir_cdf,
        util::split_seed(cfg_.seed, util::lane::kMerge + stream + 0xFFFFF),
        parts);
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      parts[s] = &shards_[s]->round(r).offpeak;
    }
    trace.offpeak = analysis::Reservoir::merged(
        cfg_.reservoir_cdf,
        util::split_seed(cfg_.seed, util::lane::kMerge + stream + 0xFFFFE),
        parts);
    for (auto& shard : shards_) trace.count += shard->round(r).count;
  }

  // The per-hour concurrency integral is additive, so the merged diurnal
  // curve is exact at any shard count.
  result.hourly_concurrency.assign(hours, 0.0);
  for (auto& shard : shards_) {
    const std::vector<double>& integral = shard->concurrency_integral();
    for (std::size_t h = 0; h < hours; ++h) {
      result.hourly_concurrency[h] +=
          integral[h] / static_cast<double>(util::kHour);
    }
  }

  std::size_t um_servers = 0, cm_servers = 0;
  double um_busy = 0, cm_busy = 0;
  for (auto& shard : shards_) {
    const MacroShard::Totals& t = shard->totals();
    result.sessions += t.sessions;
    result.channel_switches += t.channel_switches;
    result.ct_renewals += t.ct_renewals;
    result.ut_renewals += t.ut_renewals;
    result.join_retries += t.join_retries;
    result.logins_shed += t.logins_shed;
    result.busy_retries += t.busy_retries;
    result.busy_abandoned += t.busy_abandoned;
    result.events += shard->events();
    um_servers += shard->um_servers();
    cm_servers += shard->cm_servers();
    um_busy += static_cast<double>(shard->um_busy());
    cm_busy += static_cast<double>(shard->cm_busy());
  }
  result.events += coordinator_events_;
  result.um_utilization =
      um_busy / (static_cast<double>(horizon_) * static_cast<double>(um_servers));
  result.cm_utilization =
      cm_busy / (static_cast<double>(horizon_) * static_cast<double>(cm_servers));

  // Single shard tracks the exact event-level peak; with several, the
  // barrier sums are the finest global view that exists.
  result.peak_observed_concurrency = shards_.size() == 1
                                         ? shards_[0]->local_peak_concurrency()
                                         : barrier_peak_;

  if (cfg_.obs.tracer != nullptr) {
    for (auto& shard : shards_) {
      cfg_.obs.tracer->absorb(std::move(shard->tracer()));
    }
    cfg_.obs.tracer->absorb(std::move(coord_tracer_));
  }
  return result;
}

}  // namespace p2pdrm::sim
