#include "sim/macro_sim.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <queue>

namespace p2pdrm::sim {

std::string_view to_string(ProtocolRound r) {
  switch (r) {
    case ProtocolRound::kLogin1: return "LOGIN1";
    case ProtocolRound::kLogin2: return "LOGIN2";
    case ProtocolRound::kSwitch1: return "SWITCH1";
    case ProtocolRound::kSwitch2: return "SWITCH2";
    case ProtocolRound::kJoin: return "JOIN";
  }
  return "?";
}

std::string hourly_histogram_name(ProtocolRound r, std::size_t hour) {
  char hour_tag[16];
  std::snprintf(hour_tag, sizeof(hour_tag), ".hour%03zu", hour);
  return "macro.round." + std::string(to_string(r)) + hour_tag;
}

std::string split_histogram_name(ProtocolRound r, bool peak) {
  return "macro.round." + std::string(to_string(r)) +
         (peak ? ".peak" : ".offpeak");
}

std::string round_histogram_name(ProtocolRound r) {
  return "macro.round." + std::string(to_string(r));
}

std::vector<double> RoundTrace::hourly_median() const {
  std::vector<double> out;
  out.reserve(hourly.size());
  for (const analysis::Reservoir& r : hourly) {
    out.push_back(r.empty() ? 0.0 : r.median());
  }
  return out;
}

namespace {

enum class Phase : std::uint8_t {
  kArrival,       // create a session, begin login
  kLogin1Arrive, kLogin1Resp,
  kLogin2Arrive, kLogin2Resp,
  kSwitch1Arrive, kSwitch1Resp,
  kSwitch2Arrive, kSwitch2Resp,
  kJoinArrive, kJoinResp,
  kAction,        // watching; decide what happens next
  kKeyRotation,   // channel server mints the next key epoch
  kScrape,        // time-series scrape + SLO tick
};

struct Session {
  util::SimTime end_time = 0;
  util::SimTime round_start = 0;
  util::SimTime rtt_half = 0;
  util::SimTime ut_expiry = 0;
  util::SimTime ct_expiry = 0;
  util::SimTime next_switch = 0;
  obs::SpanId round_span = 0;  // open round span of a traced session
  std::uint8_t join_attempts = 0;
  std::uint8_t busy_retries = 0;  // admission-control BUSYs absorbed
  bool renewing_ct = false;
  bool relogging_in = false;
  bool joined_once = false;
  bool active = false;
  bool traced = false;
};

struct Event {
  util::SimTime when;
  std::uint64_t seq;
  std::uint32_t session;  // index into pool; unused for kArrival
  Phase phase;
};
struct LaterEvent {
  bool operator()(const Event& a, const Event& b) const {
    if (a.when != b.when) return a.when > b.when;
    return a.seq > b.seq;
  }
};

class Engine {
 public:
  explicit Engine(const MacroSimConfig& config)
      : cfg_(config), rng_(config.seed),
        // The rotation pipeline draws from its own stream so enabling it
        // never perturbs the session latencies (Fig. 5/6 stay bit-stable).
        key_rng_(config.seed ^ 0x6b65792d726f7461ull),
        tracer_(config.obs.tracer),
        arrivals_(config.profile, peak_rate()),
        um_(config.user_manager_servers), cm_(config.channel_manager_servers),
        horizon_(static_cast<util::SimTime>(config.days) * util::kDay) {
    const std::size_t hours = static_cast<std::size_t>(cfg_.days) * 24;
    result_.registry = std::make_shared<obs::Registry>();
    for (std::size_t r = 0; r < kNumRounds; ++r) {
      RoundTrace& trace = result_.rounds[r];
      trace.hourly.reserve(hours);
      for (std::size_t h = 0; h < hours; ++h) {
        trace.hourly.emplace_back(cfg_.reservoir_per_hour, cfg_.seed + 1000 * r + h);
      }
      trace.peak = analysis::Reservoir(cfg_.reservoir_cdf, cfg_.seed + 77 + r);
      trace.offpeak = analysis::Reservoir(cfg_.reservoir_cdf, cfg_.seed + 177 + r);

      // Histogram twins, with the pointers cached: record() runs ~80M times
      // at paper scale, far too hot for name lookups.
      const ProtocolRound round = static_cast<ProtocolRound>(r);
      hist_hourly_[r].reserve(hours);
      for (std::size_t h = 0; h < hours; ++h) {
        hist_hourly_[r].push_back(
            &result_.registry->histogram(hourly_histogram_name(round, h)));
      }
      hist_peak_[r] =
          &result_.registry->histogram(split_histogram_name(round, true));
      hist_offpeak_[r] =
          &result_.registry->histogram(split_histogram_name(round, false));
      hist_all_[r] =
          &result_.registry->histogram(round_histogram_name(round));
    }
    concurrency_integral_.assign(hours, 0.0);
    if (cfg_.key_rotation.enabled) {
      rotations_issued_ =
          &result_.registry->counter("macro.key.rotations_issued");
      epochs_delivered_ =
          &result_.registry->counter("macro.key.epochs_delivered");
      key_lag_ = &result_.registry->histogram("macro.key.delivery_lag");
      key_staleness_ = &result_.registry->gauge("macro.key.max_staleness_us");
    }
  }

  MacroSimResult run() {
    // Background arrivals chain themselves (session field 1); flash-crowd
    // arrivals are pre-scheduled one-shots (session field 0).
    schedule(arrivals_.next(0, rng_), 1, Phase::kArrival);
    for (const workload::FlashCrowd& crowd : cfg_.flash_crowds) {
      for (util::SimTime t : crowd.arrivals(rng_)) {
        if (t < horizon_) schedule(t, 0, Phase::kArrival);
      }
    }
    if (cfg_.key_rotation.enabled) {
      schedule(cfg_.key_rotation.interval, 0, Phase::kKeyRotation);
    }
    if (cfg_.obs.timeseries != nullptr || cfg_.obs.slo != nullptr) {
      schedule(cfg_.obs.scrape_interval, 0, Phase::kScrape);
    }

    while (!queue_.empty() && queue_.top().when < horizon_) {
      const Event ev = queue_.top();
      queue_.pop();
      now_ = ev.when;
      dispatch(ev);
    }
    flush_concurrency(horizon_);
    // Sessions still mid-round at the horizon never completed: close their
    // spans as failed so every exported tree is complete.
    if (tracer_ != nullptr) {
      for (Session& session : pool_) {
        if (session.round_span != 0) {
          tracer_->end_span(session.round_span, horizon_, false);
          session.round_span = 0;
        }
      }
    }

    const std::size_t hours = concurrency_integral_.size();
    result_.hourly_concurrency.resize(hours);
    for (std::size_t h = 0; h < hours; ++h) {
      result_.hourly_concurrency[h] =
          concurrency_integral_[h] / static_cast<double>(util::kHour);
    }
    result_.um_utilization = um_.utilization(horizon_);
    result_.cm_utilization = cm_.utilization(horizon_);
    return std::move(result_);
  }

 private:
  double peak_rate() const {
    // Little's law: peak concurrency = peak arrival rate * mean duration.
    const double mean_duration_s =
        util::to_seconds(cfg_.session.median_duration) *
        std::exp(cfg_.session.duration_sigma * cfg_.session.duration_sigma / 2.0);
    return cfg_.peak_concurrent / mean_duration_s;
  }

  void schedule(util::SimTime when, std::uint32_t session, Phase phase) {
    queue_.push(Event{when, next_seq_++, session, phase});
  }

  // --- concurrency accounting (time-weighted per-hour integral) ---

  void flush_concurrency(util::SimTime upto) {
    util::SimTime t = last_change_;
    while (t < upto) {
      const std::size_t hour = static_cast<std::size_t>(t / util::kHour);
      const util::SimTime hour_end = static_cast<util::SimTime>(hour + 1) * util::kHour;
      const util::SimTime span = std::min(upto, hour_end) - t;
      if (hour < concurrency_integral_.size()) {
        concurrency_integral_[hour] +=
            static_cast<double>(concurrency_) * static_cast<double>(span);
      }
      t += span;
    }
    last_change_ = upto;
  }

  void change_concurrency(int delta) {
    flush_concurrency(now_);
    concurrency_ += delta;
    result_.peak_observed_concurrency =
        std::max(result_.peak_observed_concurrency, static_cast<double>(concurrency_));
  }

  // --- sampling helpers ---

  util::SimTime lognormal_around(util::SimTime median, double sigma) {
    const double draw = rng_.lognormal(std::log(static_cast<double>(median)), sigma);
    return std::max<util::SimTime>(1, static_cast<util::SimTime>(draw));
  }

  util::SimTime service_time(ProtocolRound r) {
    const ServiceCosts& c = cfg_.costs;
    util::SimTime base = 0;
    switch (r) {
      case ProtocolRound::kLogin1: base = c.login1; break;
      case ProtocolRound::kLogin2: base = c.login2; break;
      case ProtocolRound::kSwitch1: base = c.switch1; break;
      case ProtocolRound::kSwitch2: base = c.switch2; break;
      case ProtocolRound::kJoin: base = c.join; break;
    }
    return lognormal_around(base, c.dispersion);
  }

  util::SimTime client_time(ProtocolRound r) {
    const ClientCosts& c = cfg_.client_costs;
    util::SimTime base = 0;
    switch (r) {
      case ProtocolRound::kLogin1: base = c.login1; break;
      case ProtocolRound::kLogin2: base = c.login2; break;
      case ProtocolRound::kSwitch1: base = c.switch1; break;
      case ProtocolRound::kSwitch2: base = c.switch2; break;
      case ProtocolRound::kJoin: base = c.join; break;
    }
    return lognormal_around(base, c.dispersion);
  }

  void record(std::uint32_t s, ProtocolRound r, util::SimTime latency) {
    const std::size_t ri = static_cast<std::size_t>(r);
    RoundTrace& trace = result_.rounds[ri];
    const double seconds = util::to_seconds(latency);
    const std::size_t hour = static_cast<std::size_t>(now_ / util::kHour);
    const bool peak = util::hour_of_day(now_) >= 18;
    if (hour < trace.hourly.size()) trace.hourly[hour].add(seconds);
    (peak ? trace.peak : trace.offpeak).add(seconds);
    ++trace.count;
    if (hour < hist_hourly_[ri].size()) hist_hourly_[ri][hour]->record(latency);
    (peak ? hist_peak_[ri] : hist_offpeak_[ri])->record(latency);
    hist_all_[ri]->record(latency);
    if (cfg_.obs.slo != nullptr) cfg_.obs.slo->observe(to_string(r), now_, latency);
    Session& session = pool_[s];
    if (session.round_span != 0) {
      tracer_->end_span(session.round_span, now_, true);
      session.round_span = 0;
    }
  }

  // --- round plumbing ---

  void start_round(std::uint32_t s, ProtocolRound r, Phase arrive_phase,
                   const LatencyModel& net) {
    Session& session = pool_[s];
    session.round_start = now_;
    const util::SimTime rtt = net.sample_rtt(rng_);
    session.rtt_half = rtt / 2;
    const util::SimTime think = client_time(r);
    const util::SimTime arrive = now_ + think + session.rtt_half;
    if (session.traced) {
      session.round_span = tracer_->begin_span(
          "client", std::string(to_string(r)), s + 1, now_);
      // The request flight; client think time stays the round's residual.
      const obs::SpanId hop = tracer_->begin_span("net", "hop request", s + 1,
                                                  now_ + think,
                                                  session.round_span);
      tracer_->end_span(hop, arrive, true);
    }
    schedule(arrive, s, arrive_phase);
  }

  void serve_and_respond(std::uint32_t s, ProtocolRound r, QueueStation& station,
                         Phase resp_phase) {
    Session& session = pool_[s];
    util::SimTime wait = 0;
    const util::SimTime depart = station.submit(now_, service_time(r), &wait);
    if (session.round_span != 0) {
      // Farm pseudo-actors: 2 = User Manager farm, 3 = Channel Manager farm.
      const std::uint64_t farm = &station == &um_ ? 2 : 3;
      if (wait > 0) {
        const obs::SpanId q = tracer_->begin_span("server", "queue", farm,
                                                  now_, session.round_span);
        tracer_->end_span(q, now_ + wait, true);
      }
      const obs::SpanId serve = tracer_->begin_span(
          "server", "serve", farm, now_ + wait, session.round_span);
      tracer_->end_span(serve, depart, true);
      const obs::SpanId hop = tracer_->begin_span("net", "hop response", s + 1,
                                                  depart, session.round_span);
      tracer_->end_span(hop, depart + session.rtt_half, true);
    }
    schedule(depart + session.rtt_half, s, resp_phase);
  }

  // --- the session state machine ---

  /// Admission control at the User Manager farm: a *fresh* login arrival
  /// (never a UT renewal — those keep an existing viewer alive) is shed
  /// with a modeled BUSY when the farm's backlog implies more than the
  /// configured wait. Shed viewers re-arrive after the retry-after hint,
  /// up to max_busy_retries, then give up for good. Returns true when the
  /// arrival was shed (the caller must not submit it to the farm).
  bool shed_login(std::uint32_t s, Phase arrive_phase) {
    if (cfg_.login_admission_max_wait <= 0) return false;
    Session& session = pool_[s];
    if (session.relogging_in) return false;  // protected tier
    if (um_.estimated_wait(now_) <= cfg_.login_admission_max_wait) return false;
    ++result_.logins_shed;
    if (session.busy_retries >= cfg_.max_busy_retries) {
      // Out of patience: the viewer walks away (the honest cost of
      // shedding — counted, never silent).
      ++result_.busy_abandoned;
      if (session.round_span != 0) {
        tracer_->end_span(session.round_span, now_, false);
        session.round_span = 0;
      }
      session.active = false;
      change_concurrency(-1);
      free_list_.push_back(s);
      return true;
    }
    ++session.busy_retries;
    ++result_.busy_retries;
    if (session.round_span != 0) tracer_->event(session.round_span, now_, "busy");
    schedule(now_ + cfg_.busy_retry_after, s, arrive_phase);
    return true;
  }

  void dispatch(const Event& ev) {
    switch (ev.phase) {
      case Phase::kArrival: on_arrival(ev); return;
      case Phase::kLogin1Arrive:
        if (shed_login(ev.session, Phase::kLogin1Arrive)) return;
        serve_and_respond(ev.session, ProtocolRound::kLogin1, um_, Phase::kLogin1Resp);
        return;
      case Phase::kLogin1Resp: {
        record(ev.session, ProtocolRound::kLogin1,
               now_ - pool_[ev.session].round_start);
        start_round(ev.session, ProtocolRound::kLogin2, Phase::kLogin2Arrive,
                    cfg_.manager_net);
        return;
      }
      case Phase::kLogin2Arrive:
        if (shed_login(ev.session, Phase::kLogin2Arrive)) return;
        serve_and_respond(ev.session, ProtocolRound::kLogin2, um_, Phase::kLogin2Resp);
        return;
      case Phase::kLogin2Resp: on_login_complete(ev.session); return;
      case Phase::kSwitch1Arrive:
        serve_and_respond(ev.session, ProtocolRound::kSwitch1, cm_, Phase::kSwitch1Resp);
        return;
      case Phase::kSwitch1Resp: {
        record(ev.session, ProtocolRound::kSwitch1,
               now_ - pool_[ev.session].round_start);
        start_round(ev.session, ProtocolRound::kSwitch2, Phase::kSwitch2Arrive,
                    cfg_.manager_net);
        return;
      }
      case Phase::kSwitch2Arrive:
        serve_and_respond(ev.session, ProtocolRound::kSwitch2, cm_, Phase::kSwitch2Resp);
        return;
      case Phase::kSwitch2Resp: on_switch_complete(ev.session); return;
      case Phase::kJoinArrive: on_join_arrive(ev.session); return;
      case Phase::kJoinResp: on_join_complete(ev.session); return;
      case Phase::kAction: on_action(ev.session); return;
      case Phase::kKeyRotation: on_key_rotation(); return;
      case Phase::kScrape: on_scrape(); return;
    }
  }

  void on_scrape() {
    if (cfg_.obs.slo != nullptr) {
      cfg_.obs.slo->tick(now_, static_cast<double>(concurrency_));
    }
    if (cfg_.obs.timeseries != nullptr) {
      cfg_.obs.timeseries->record("load.concurrent", now_,
                                  static_cast<double>(concurrency_));
      cfg_.obs.timeseries->scrape(*result_.registry, now_);
    }
    schedule(now_ + cfg_.obs.scrape_interval, 0, Phase::kScrape);
  }

  /// Depth of a delivery path, weighted by level population: a full
  /// `fanout`-ary tree holds fanout^d peers at depth d, so deep levels
  /// dominate. Draws from the rotation stream only.
  std::size_t sample_depth(std::size_t levels, std::size_t fanout) {
    double total = 0, weight = 1;
    for (std::size_t d = 1; d <= levels; ++d) {
      weight *= static_cast<double>(fanout);
      total += weight;
    }
    double x = key_rng_.uniform_real() * total;
    weight = 1;
    for (std::size_t d = 1; d <= levels; ++d) {
      weight *= static_cast<double>(fanout);
      if (x < weight) return d;
      x -= weight;
    }
    return levels;
  }

  void on_key_rotation() {
    const KeyRotationModel& kr = cfg_.key_rotation;
    const std::uint64_t serial = rotation_counter_++;
    rotations_issued_->inc();
    const double population = std::max(1.0, static_cast<double>(concurrency_));
    std::size_t levels = 1;
    double capacity = static_cast<double>(kr.fanout);
    while (capacity < population && levels < 24) {
      capacity *= static_cast<double>(kr.fanout);
      ++levels;
    }
    const bool traced = tracer_ != nullptr &&
                        cfg_.obs.trace_rotation_every > 0 &&
                        serial % cfg_.obs.trace_rotation_every == 0;
    obs::SpanId root = 0;
    if (traced) {
      root = tracer_->begin_span("server", "KEY_ROTATION", 0, now_);
      tracer_->tag(root, "serial", std::to_string(serial & 0xff));
      tracer_->tag(root, "levels", std::to_string(levels));
    }
    util::SimTime max_lag = 0;
    for (std::size_t i = 0; i < kr.sampled_peers; ++i) {
      const std::size_t depth = sample_depth(levels, kr.fanout);
      util::SimTime lag = 0;
      for (std::size_t hop = 0; hop < depth; ++hop) {
        lag += cfg_.peer_net.sample_rtt(key_rng_) / 2 + kr.relay_cost;
      }
      key_lag_->record(lag);
      epochs_delivered_->inc();
      // The key activates announce_lead after the announcement; a peer
      // whose delivery path is longer than that holds a stale epoch.
      const util::SimTime staleness = lag - kr.announce_lead;
      if (staleness > key_staleness_->value()) key_staleness_->set(staleness);
      max_lag = std::max(max_lag, lag);
      if (traced) {
        const obs::SpanId deliver = tracer_->begin_span(
            "p2p", "deliver key", 1000000 + i, now_, root);
        tracer_->tag(deliver, "depth", std::to_string(depth));
        tracer_->end_span(deliver, now_ + lag, true);
      }
    }
    if (traced) tracer_->end_span(root, now_ + max_lag, true);
    schedule(now_ + kr.interval, 0, Phase::kKeyRotation);
  }

  void on_arrival(const Event& ev) {
    // Chain the next background arrival (flash-crowd arrivals are
    // pre-scheduled one-shots and do not chain).
    if (ev.session == 1) {
      const util::SimTime next = arrivals_.next(now_, rng_);
      if (next < horizon_) schedule(next, 1, Phase::kArrival);
    }

    std::uint32_t s;
    if (!free_list_.empty()) {
      s = free_list_.back();
      free_list_.pop_back();
      pool_[s] = Session{};
    } else {
      s = static_cast<std::uint32_t>(pool_.size());
      pool_.emplace_back();
    }
    Session& session = pool_[s];
    session.active = true;
    const std::uint64_t session_index = session_counter_++;
    session.traced = tracer_ != nullptr && cfg_.obs.trace_session_every > 0 &&
                     session_index % cfg_.obs.trace_session_every == 0;
    session.end_time = now_ + cfg_.session.sample_duration(rng_);
    ++result_.sessions;
    change_concurrency(+1);
    start_round(s, ProtocolRound::kLogin1, Phase::kLogin1Arrive, cfg_.manager_net);
  }

  void on_login_complete(std::uint32_t s) {
    Session& session = pool_[s];
    record(s, ProtocolRound::kLogin2, now_ - session.round_start);
    session.ut_expiry = now_ + cfg_.user_ticket_lifetime;
    if (session.relogging_in) {
      session.relogging_in = false;
      ++result_.ut_renewals;
      go_watch(s);
      return;
    }
    // Fresh login: tune to the first channel.
    session.renewing_ct = false;
    start_round(s, ProtocolRound::kSwitch1, Phase::kSwitch1Arrive, cfg_.manager_net);
  }

  void on_switch_complete(std::uint32_t s) {
    Session& session = pool_[s];
    record(s, ProtocolRound::kSwitch2, now_ - session.round_start);
    session.ct_expiry = std::min(now_ + cfg_.channel_ticket_lifetime, session.ut_expiry);
    if (session.renewing_ct) {
      session.renewing_ct = false;
      ++result_.ct_renewals;
      go_watch(s);
      return;
    }
    session.join_attempts = 0;
    start_round(s, ProtocolRound::kJoin, Phase::kJoinArrive, cfg_.peer_net);
  }

  void on_join_arrive(std::uint32_t s) {
    Session& session = pool_[s];
    // The sampled peer refuses with probability coupled (weakly) to load —
    // the busier the system, the more saturated parents appear in peer
    // lists. A refusal costs one more peer round trip.
    const double load = static_cast<double>(concurrency_) / cfg_.peak_concurrent;
    const double p_reject =
        std::min(0.9, cfg_.join_base_reject + cfg_.join_load_sensitivity * load);
    if (rng_.chance(p_reject) &&
        static_cast<std::size_t>(session.join_attempts) + 1 < cfg_.max_join_attempts) {
      ++session.join_attempts;
      ++result_.join_retries;
      const util::SimTime retry_rtt = cfg_.peer_net.sample_rtt(rng_);
      if (session.round_span != 0) {
        const obs::SpanId hop = tracer_->begin_span(
            "net", "hop join-retry", s + 1, now_, session.round_span);
        tracer_->tag(hop, "attempt", std::to_string(session.join_attempts));
        tracer_->end_span(hop, now_ + retry_rtt, false);
        tracer_->event(session.round_span, now_, "join-refused");
      }
      schedule(now_ + retry_rtt, s, Phase::kJoinArrive);
      return;
    }
    // Accepted: peer-side processing (ticket verify + RSA-encrypt session
    // key), then the response travels back.
    const util::SimTime svc = service_time(ProtocolRound::kJoin);
    if (session.round_span != 0) {
      // Pseudo-actor 4 = the accepting peer.
      const obs::SpanId serve = tracer_->begin_span("server", "serve", 4,
                                                    now_, session.round_span);
      tracer_->end_span(serve, now_ + svc, true);
      const obs::SpanId hop = tracer_->begin_span(
          "net", "hop response", s + 1, now_ + svc, session.round_span);
      tracer_->end_span(hop, now_ + svc + session.rtt_half, true);
    }
    schedule(now_ + svc + session.rtt_half, s, Phase::kJoinResp);
  }

  void on_join_complete(std::uint32_t s) {
    Session& session = pool_[s];
    record(s, ProtocolRound::kJoin, now_ - session.round_start);
    if (!session.joined_once) {
      session.joined_once = true;
    } else {
      ++result_.channel_switches;
    }
    session.next_switch = now_ + cfg_.session.sample_switch_gap(rng_);
    go_watch(s);
  }

  /// Schedule the next thing that happens to a watching session.
  void go_watch(std::uint32_t s) {
    Session& session = pool_[s];
    const util::SimTime due = next_due(session);
    schedule(std::max(due, now_ + 1), s, Phase::kAction);
  }

  util::SimTime next_due(const Session& session) const {
    const util::SimTime ct_renew = session.ct_expiry - util::kMinute;
    const util::SimTime ut_renew = session.ut_expiry - 2 * util::kMinute;
    return std::min({session.end_time, session.next_switch, ct_renew, ut_renew});
  }

  void on_action(std::uint32_t s) {
    Session& session = pool_[s];
    if (!session.active) return;

    if (now_ >= session.end_time) {
      session.active = false;
      change_concurrency(-1);
      free_list_.push_back(s);
      return;
    }
    const util::SimTime ct_renew = session.ct_expiry - util::kMinute;
    const util::SimTime ut_renew = session.ut_expiry - 2 * util::kMinute;

    if (now_ >= ut_renew) {
      session.relogging_in = true;
      start_round(s, ProtocolRound::kLogin1, Phase::kLogin1Arrive, cfg_.manager_net);
      return;
    }
    if (now_ >= session.next_switch) {
      // Voluntary channel switch: fresh SWITCH + JOIN.
      session.renewing_ct = false;
      start_round(s, ProtocolRound::kSwitch1, Phase::kSwitch1Arrive, cfg_.manager_net);
      return;
    }
    if (now_ >= ct_renew) {
      session.renewing_ct = true;
      start_round(s, ProtocolRound::kSwitch1, Phase::kSwitch1Arrive, cfg_.manager_net);
      return;
    }
    // Spurious wakeup (state advanced since scheduling): re-arm.
    go_watch(s);
  }

  const MacroSimConfig& cfg_;
  crypto::SecureRandom rng_;
  crypto::SecureRandom key_rng_;
  obs::Tracer* tracer_;
  workload::ArrivalProcess arrivals_;
  QueueStation um_;
  QueueStation cm_;
  util::SimTime horizon_;
  util::SimTime now_ = 0;

  std::priority_queue<Event, std::vector<Event>, LaterEvent> queue_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t arrival_seq_ = 0;
  std::vector<Session> pool_;
  std::vector<std::uint32_t> free_list_;

  std::int64_t concurrency_ = 0;
  util::SimTime last_change_ = 0;
  std::vector<double> concurrency_integral_;

  MacroSimResult result_;
  /// Cached pointers into result_.registry (see record()).
  std::array<std::vector<obs::LatencyHistogram*>, kNumRounds> hist_hourly_;
  std::array<obs::LatencyHistogram*, kNumRounds> hist_peak_ = {};
  std::array<obs::LatencyHistogram*, kNumRounds> hist_offpeak_ = {};
  std::array<obs::LatencyHistogram*, kNumRounds> hist_all_ = {};

  std::uint64_t session_counter_ = 0;
  std::uint64_t rotation_counter_ = 0;
  obs::Counter* rotations_issued_ = nullptr;
  obs::Counter* epochs_delivered_ = nullptr;
  obs::LatencyHistogram* key_lag_ = nullptr;
  obs::Gauge* key_staleness_ = nullptr;
};

}  // namespace

MacroSimResult run_macro_sim(const MacroSimConfig& config) {
  return Engine(config).run();
}

}  // namespace p2pdrm::sim
