#include "sim/macro_sim.h"

#include <cstdio>
#include <stdexcept>

#include "sim/macro_engine.h"

namespace p2pdrm::sim {

std::string_view to_string(ProtocolRound r) {
  switch (r) {
    case ProtocolRound::kLogin1: return "LOGIN1";
    case ProtocolRound::kLogin2: return "LOGIN2";
    case ProtocolRound::kSwitch1: return "SWITCH1";
    case ProtocolRound::kSwitch2: return "SWITCH2";
    case ProtocolRound::kJoin: return "JOIN";
  }
  return "?";
}

std::string hourly_histogram_name(ProtocolRound r, std::size_t hour) {
  char hour_tag[16];
  std::snprintf(hour_tag, sizeof(hour_tag), ".hour%03zu", hour);
  return "macro.round." + std::string(to_string(r)) + hour_tag;
}

std::string split_histogram_name(ProtocolRound r, bool peak) {
  return "macro.round." + std::string(to_string(r)) +
         (peak ? ".peak" : ".offpeak");
}

std::string round_histogram_name(ProtocolRound r) {
  return "macro.round." + std::string(to_string(r));
}

std::vector<double> RoundTrace::hourly_median() const {
  std::vector<double> out;
  out.reserve(hourly.size());
  for (const analysis::Reservoir& r : hourly) {
    out.push_back(r.empty() ? 0.0 : r.median());
  }
  return out;
}

std::vector<std::string> MacroSimConfig::validate() const {
  std::vector<std::string> errors;
  const auto fail = [&errors](const char* field, const char* why) {
    errors.push_back(std::string(field) + ": " + why);
  };

  if (days <= 0) fail("days", "must be positive");
  if (peak_concurrent <= 0) fail("peak_concurrent", "must be positive");
  if (num_channels == 0) fail("num_channels", "must be nonzero");
  if (zipf_exponent < 0) fail("zipf_exponent", "must be nonnegative");

  if (session.median_duration <= 0) {
    fail("session.median_duration", "must be positive");
  }
  if (session.duration_sigma < 0) {
    fail("session.duration_sigma", "must be nonnegative");
  }
  if (session.mean_switch_interval <= 0) {
    fail("session.mean_switch_interval", "must be positive");
  }
  if (session.min_duration < 0) {
    fail("session.min_duration", "must be nonnegative");
  }

  if (user_manager_servers == 0) {
    fail("user_manager_servers", "farm needs at least one server");
  }
  if (channel_manager_servers == 0) {
    fail("channel_manager_servers", "farm needs at least one server");
  }
  if (user_ticket_lifetime <= 0) {
    fail("user_ticket_lifetime", "must be positive");
  }
  if (channel_ticket_lifetime <= 0) {
    fail("channel_ticket_lifetime", "must be positive");
  }

  if (costs.dispersion < 0) {
    fail("costs.dispersion", "negative dispersion is meaningless");
  }
  if (client_costs.dispersion < 0) {
    fail("client_costs.dispersion", "negative dispersion is meaningless");
  }

  if (join_base_reject < 0 || join_base_reject > 1) {
    fail("join_base_reject", "must be a probability in [0, 1]");
  }
  if (join_load_sensitivity < 0) {
    fail("join_load_sensitivity", "must be nonnegative");
  }
  if (max_join_attempts == 0) fail("max_join_attempts", "must be nonzero");

  if (login_admission_max_wait < 0) {
    fail("login_admission_max_wait", "must be nonnegative (0 disables)");
  }
  if (login_admission_max_wait > 0 && busy_retry_after <= 0) {
    fail("busy_retry_after", "must be positive when admission control is on");
  }

  if (reservoir_per_hour == 0) fail("reservoir_per_hour", "must be nonzero");
  if (reservoir_cdf == 0) fail("reservoir_cdf", "must be nonzero");

  if ((obs.timeseries != nullptr || obs.slo != nullptr) &&
      obs.scrape_interval <= 0) {
    fail("obs.scrape_interval", "must be positive when a consumer is attached");
  }

  if (key_rotation.enabled) {
    if (key_rotation.interval <= 0) {
      fail("key_rotation.interval", "must be positive");
    }
    if (key_rotation.fanout == 0) {
      fail("key_rotation.fanout", "zero fanout cannot deliver keys");
    }
    if (key_rotation.sampled_peers == 0) {
      fail("key_rotation.sampled_peers", "must sample at least one peer");
    }
    if (key_rotation.relay_cost < 0) {
      fail("key_rotation.relay_cost", "must be nonnegative");
    }
    if (key_rotation.announce_lead < 0) {
      fail("key_rotation.announce_lead", "must be nonnegative");
    }
  }

  for (std::size_t i = 0; i < flash_crowds.size(); ++i) {
    if (flash_crowds[i].channel >= num_channels) {
      fail("flash_crowds.channel", "must name an existing channel");
    }
    if (flash_crowds[i].ramp <= 0) {
      fail("flash_crowds.ramp", "must be positive");
    }
  }

  if (shards == 0) fail("shards", "must be nonzero");
  if (shards > num_channels) {
    fail("shards", "cannot exceed num_channels (a shard needs channels)");
  }
  if (shard_sync_interval <= 0) {
    fail("shard_sync_interval", "must be positive");
  }

  return errors;
}

MacroSimConfig MacroSimConfig::validated() const {
  const std::vector<std::string> errors = validate();
  if (!errors.empty()) {
    std::string message = "MacroSimConfig";
    for (const std::string& e : errors) message += ": " + e;
    throw std::invalid_argument(message);
  }
  return *this;
}

MacroSimResult run_macro_sim(const MacroSimConfig& config) {
  return MacroEngine(config).run();
}

}  // namespace p2pdrm::sim
