// Week-scale simulation of the production deployment (§VI).
//
// Reproduces the measurement setting of the paper's evaluation: a diurnal
// population of viewers (evening peak, pre-dawn trough, ~tens of thousands
// concurrent) logging in, switching channels, joining overlays, and
// renewing tickets against a small farm of User Managers and Channel
// Managers. The protocol *logic* is exact (which rounds happen when, what
// gets renewed, what a renewal costs); the *costs* are a calibrated model:
// per-request service times measured from this repo's own crypto/protocol
// microbenchmarks, heavy-tailed residential RTTs, and c-server FIFO queues
// for the manager farms. Running real RSA for ~80 million simulated rounds
// would measure our CPU, not the architecture.
//
// Output: per-hour latency reservoirs for the five protocol rounds
// (LOGIN1, LOGIN2, SWITCH1, SWITCH2, JOIN), the concurrency curve, and
// peak/off-peak splits — everything Figs. 5 and 6 plot.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "analysis/stats.h"
#include "obs/registry.h"
#include "obs/slo.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "sim/latency.h"
#include "util/time.h"
#include "workload/workload.h"

namespace p2pdrm::sim {

enum class ProtocolRound : std::uint8_t {
  kLogin1 = 0,
  kLogin2 = 1,
  kSwitch1 = 2,
  kSwitch2 = 3,
  kJoin = 4,
};
constexpr std::size_t kNumRounds = 5;
std::string_view to_string(ProtocolRound r);

/// Mean server-side service time per request type. Defaults were calibrated
/// with bench/microbench_crypto and bench/microbench_protocol (1024-bit
/// RSA): LOGIN2/SWITCH2 are dominated by an RSA sign + verify, LOGIN1 by
/// symmetric crypto and the DB lookup, JOIN by the peer's RSA encrypt.
struct ServiceCosts {
  util::SimTime login1 = 300 * util::kMicrosecond;
  util::SimTime login2 = 8 * util::kMillisecond;
  util::SimTime switch1 = 700 * util::kMicrosecond;
  util::SimTime switch2 = 7 * util::kMillisecond;
  util::SimTime join = 4 * util::kMillisecond;
  /// Lognormal sigma applied to every service draw.
  double dispersion = 0.35;
};

/// Client-side processing charged to each round (key generation, checksum
/// over the binary, RSA sign of the challenge, RSA decrypt of the session
/// key). These are what make LOGIN2/JOIN medians sit above LOGIN1's.
struct ClientCosts {
  util::SimTime login1 = 25 * util::kMillisecond;
  util::SimTime login2 = 180 * util::kMillisecond;
  util::SimTime switch1 = 15 * util::kMillisecond;
  util::SimTime switch2 = 60 * util::kMillisecond;
  util::SimTime join = 120 * util::kMillisecond;
  double dispersion = 0.6;
};

/// Live observability hooks, all optional and non-owning. The engine
/// drives them on the simulation clock: sampled sessions emit full span
/// trees per round (client round span with hop/queue/serve children),
/// key rotations emit fan-out span trees, and every scrape interval the
/// registry is snapshotted into the time series and the SLO monitor ticks
/// with the current concurrency as the load signal. None of the hooks
/// consume randomness, so enabling them never perturbs the simulation.
struct MacroObsConfig {
  obs::Tracer* tracer = nullptr;
  /// Trace every Nth arriving session (0 = no session tracing).
  std::uint64_t trace_session_every = 0;
  /// Trace every Nth key rotation (0 = no rotation tracing).
  std::uint64_t trace_rotation_every = 1;
  obs::TimeSeries* timeseries = nullptr;
  obs::SloMonitor* slo = nullptr;
  util::SimTime scrape_interval = 5 * util::kMinute;
};

/// Content-key rotation pipeline model (§IV): every `interval` the channel
/// server mints a key epoch, announced `announce_lead` ahead of its
/// activation, and pushes it down a `fanout`-ary overlay tree. Per epoch,
/// `sampled_peers` delivery paths are sampled (depth weighted by level
/// population, one peer-net half-RTT plus `relay_cost` per level) into:
///   macro.key.rotations_issued   counter, epochs minted
///   macro.key.epochs_delivered   counter, sampled deliveries
///   macro.key.delivery_lag       histogram, announce -> install lag (us)
///   macro.key.max_staleness_us   gauge, worst install-after-activation
struct KeyRotationModel {
  bool enabled = false;
  util::SimTime interval = util::kMinute;
  util::SimTime announce_lead = 10 * util::kSecond;
  util::SimTime relay_cost = 500 * util::kMicrosecond;
  std::size_t fanout = 4;
  std::size_t sampled_peers = 16;
};

struct MacroSimConfig {
  int days = 7;
  /// Target concurrent viewers at the diurnal peak (the paper observed
  /// ~25-27k on the plotted week, 60k+ historic peak).
  double peak_concurrent = 25000;
  workload::DiurnalProfile profile = workload::tv_profile();
  workload::SessionModel session;
  std::size_t num_channels = 200;
  double zipf_exponent = 0.9;

  /// Manager farm sizes (the deployment used 2 UMs and 4 CMs, §VI).
  std::size_t user_manager_servers = 2;
  std::size_t channel_manager_servers = 4;

  util::SimTime user_ticket_lifetime = 30 * util::kMinute;
  util::SimTime channel_ticket_lifetime = 10 * util::kMinute;

  LatencyModel manager_net;  // client <-> manager RTT
  LatencyModel peer_net{20 * util::kMillisecond, 180 * util::kMillisecond, 0.9,
                        30 * util::kSecond};  // client <-> peer RTT

  ServiceCosts costs;
  ClientCosts client_costs;

  /// JOIN behaviour: probability a sampled peer refuses (no capacity) is
  /// base + sensitivity * (concurrency / peak_concurrent); every refusal
  /// costs one extra peer RTT. This is the weak load coupling behind the
  /// paper's JOIN correlation of 0.13.
  double join_base_reject = 0.05;
  double join_load_sensitivity = 0.02;
  std::size_t max_join_attempts = 6;

  std::vector<workload::FlashCrowd> flash_crowds;

  /// Login admission control at the User Manager farm: when a fresh
  /// LOGIN1/LOGIN2 arrival would wait longer than this for a free server,
  /// it is shed with a BUSY (renewals and switches are never shed — session
  /// continuity beats new admissions). 0 = disabled (legacy: everyone
  /// queues, and a flash crowd drags every round's latency down with it).
  util::SimTime login_admission_max_wait = 0;
  /// Shed viewers re-arrive after this long (the BUSY retry-after hint)...
  util::SimTime busy_retry_after = 2 * util::kSecond;
  /// ...up to this many times before giving up for good.
  std::size_t max_busy_retries = 5;

  std::uint64_t seed = 42;
  std::size_t reservoir_per_hour = 3000;
  std::size_t reservoir_cdf = 200000;

  MacroObsConfig obs;
  KeyRotationModel key_rotation;

  /// --- sharded engine ---
  /// Number of event-engine partitions. Channels are dealt to shards in
  /// snake order over Zipf rank; each shard runs its own event queue, RNG
  /// stream, and manager-farm slice. Output depends on `shards` but NEVER
  /// on `threads`: same (seed, shards) gives byte-identical results at any
  /// thread count. 1 = the classic single-partition engine.
  std::size_t shards = 1;
  /// Worker threads driving the shards (clamped to `shards`; 0 = one per
  /// hardware core).
  std::size_t threads = 1;
  /// Barrier cadence: shards synchronize (concurrency exchange, key
  /// rotation, scrapes, SLO feed) at fixed multiples of this interval.
  util::SimTime shard_sync_interval = util::kMinute;

  /// Every constraint violation in this config, as "field: why" strings;
  /// empty means the config is runnable.
  std::vector<std::string> validate() const;
  /// The single validated entry point: returns a copy of the config or
  /// throws std::invalid_argument listing every violation. run_macro_sim
  /// and the SimRun bench harness both go through here.
  MacroSimConfig validated() const;
};

struct RoundTrace {
  std::vector<analysis::Reservoir> hourly;  // one reservoir per sim hour
  analysis::Reservoir peak{1, 1};           // 18:00-24:00 (paper's split)
  analysis::Reservoir offpeak{1, 1};        // 00:00-18:00
  std::uint64_t count = 0;

  /// Median latency (seconds) per hour; NaN-free: hours with no samples
  /// report 0.
  std::vector<double> hourly_median() const;
};

/// Registry metric names used by the macro-sim (and the Fig. 5/6 benches):
/// per-round per-hour latency histograms, the paper's peak/off-peak split,
/// and a whole-run histogram per round. Values are recorded in microseconds.
std::string hourly_histogram_name(ProtocolRound r, std::size_t hour);
std::string split_histogram_name(ProtocolRound r, bool peak);
std::string round_histogram_name(ProtocolRound r);

/// Engine runtime telemetry: where the sharded run spent its wall-clock
/// and how evenly the load spread across shards. The event-count fields
/// (shard_events, windows, imbalance_*) are pure functions of
/// (config, seed, shards) — identical at any thread count — while the
/// *_seconds fields are wall-clock measurements and must stay OUT of any
/// byte-identity digest.
struct MacroRuntimeStats {
  /// Events processed per shard over the whole run, shard-index order.
  std::vector<std::uint64_t> shard_events;
  /// Sync windows (barriers) executed.
  std::uint64_t windows = 0;
  /// Load imbalance = max/mean events per shard within one sync window,
  /// averaged over windows with any events, and the worst single window.
  /// 1.0 is perfect balance; S (the shard count) is one shard doing
  /// everything.
  double imbalance_mean = 1.0;
  double imbalance_max = 1.0;
  /// Wall time inside shard fan-out (includes barrier wait) and inside the
  /// coordinator's barrier work.
  double window_wall_seconds = 0;
  double coordinator_wall_seconds = 0;
  /// Worker-thread wall time lost waiting at barriers:
  /// threads * window_wall - sum(worker busy). 0 for single-threaded runs.
  double barrier_wait_seconds = 0;
  /// barrier_wait / (threads * window_wall); 0 when nothing was measured.
  double barrier_wait_fraction = 0;
  /// Per-worker busy seconds inside run_window calls, worker-index order.
  std::vector<double> worker_busy_seconds;
};

struct MacroSimResult {
  std::array<RoundTrace, kNumRounds> rounds;
  /// Bucketed latency histograms for every round (hourly + peak/off-peak +
  /// whole-run, see the *_histogram_name helpers): the registry-backed twin
  /// of the sampling reservoirs above. Quantiles agree with the reservoirs
  /// within bucket resolution without storing a single sample. Shared so the
  /// result stays copyable.
  std::shared_ptr<obs::Registry> registry;
  /// Time-weighted mean concurrency per sim hour.
  std::vector<double> hourly_concurrency;
  std::uint64_t sessions = 0;
  std::uint64_t channel_switches = 0;
  std::uint64_t ct_renewals = 0;
  std::uint64_t ut_renewals = 0;
  std::uint64_t join_retries = 0;
  /// Admission control (login_admission_max_wait > 0): fresh logins shed
  /// with a BUSY, their deferred re-arrivals, and the viewers who gave up
  /// after max_busy_retries BUSYs.
  std::uint64_t logins_shed = 0;
  std::uint64_t busy_retries = 0;
  std::uint64_t busy_abandoned = 0;
  double peak_observed_concurrency = 0;
  double um_utilization = 0;
  double cm_utilization = 0;
  /// Total simulation events dispatched (shard event loops + coordinator
  /// barrier work) — the numerator of the bench's events/sec figure.
  std::uint64_t events = 0;
  std::size_t shards_used = 1;
  std::size_t threads_used = 1;
  /// Engine wall-clock/load-balance telemetry (see MacroRuntimeStats for
  /// which fields are deterministic).
  MacroRuntimeStats runtime;

  const RoundTrace& round(ProtocolRound r) const {
    return rounds[static_cast<std::size_t>(r)];
  }
};

MacroSimResult run_macro_sim(const MacroSimConfig& config);

}  // namespace p2pdrm::sim
