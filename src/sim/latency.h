// Network latency and server queueing models for the macro simulations.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "crypto/chacha20.h"
#include "util/time.h"

namespace p2pdrm::sim {

/// Heavy-tailed round-trip-time model: RTT = floor + lognormal(mu, sigma).
/// Residential last miles gave the production system medians of a few
/// hundred milliseconds with multi-second tails; sigma controls the tail.
struct LatencyModel {
  util::SimTime floor = 20 * util::kMillisecond;
  /// Median of the lognormal component.
  util::SimTime median = 150 * util::kMillisecond;
  double sigma = 0.8;
  /// Hard cap (protocol timeouts truncate the tail).
  util::SimTime cap = 30 * util::kSecond;

  util::SimTime sample_rtt(crypto::SecureRandom& rng) const;
};

/// A farm of `servers` identical FIFO servers sharing one queue (one
/// logical manager, §V). submit() returns the departure time of a request
/// arriving at `arrival` needing `service` processing time. Arrivals must
/// be submitted in nondecreasing time order (the event loop guarantees it).
class QueueStation {
 public:
  explicit QueueStation(std::size_t servers);

  /// `queue_wait`, when non-null, receives the time the request spent
  /// waiting for a free server before service began.
  util::SimTime submit(util::SimTime arrival, util::SimTime service,
                       util::SimTime* queue_wait = nullptr);

  /// How long a request arriving at `now` would wait for a free server —
  /// the admission-control load signal, read without mutating the queue.
  util::SimTime estimated_wait(util::SimTime now) const {
    return free_at_.top() > now ? free_at_.top() - now : 0;
  }

  std::uint64_t processed() const { return processed_; }
  /// Total busy time accumulated across all servers.
  util::SimTime busy_time() const { return busy_; }
  /// Mean utilization over [0, horizon].
  double utilization(util::SimTime horizon) const;

 private:
  // Min-heap of per-server next-free times.
  std::priority_queue<util::SimTime, std::vector<util::SimTime>,
                      std::greater<util::SimTime>>
      free_at_;
  std::size_t servers_;
  std::uint64_t processed_ = 0;
  util::SimTime busy_ = 0;
};

}  // namespace p2pdrm::sim
