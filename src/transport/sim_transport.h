// The discrete-event backend: a zero-cost adapter from Transport onto
// sim::Simulation. One logical event loop, virtual time, and exactly the
// schedule() calls the Network made before the Transport seam existed, so
// same-seed runs stay byte-identical with the pre-transport engine.
#pragma once

#include "sim/simulation.h"
#include "transport/transport.h"

namespace p2pdrm::transport {

class SimTransport final : public Transport {
 public:
  explicit SimTransport(sim::Simulation& sim) : sim_(sim) {}

  util::SimTime now() const override { return sim_.now(); }
  void post(std::size_t group, util::SimTime delay, Task task) override {
    (void)group;  // one loop: group confinement is trivial
    sim_.schedule(delay, std::move(task));
  }
  std::size_t groups() const override { return 1; }
  bool live() const override { return false; }
  void run_until(util::SimTime t) override { sim_.run_until(t); }
  void shutdown() override {}

  sim::Simulation& sim() { return sim_; }

 private:
  sim::Simulation& sim_;
};

}  // namespace p2pdrm::transport
