// The live backend: one event loop per node group, each on its own thread.
//
// Every loop owns an MPSC ready queue (producers are arbitrary sender
// threads; the single consumer is the loop thread) and a timer heap keyed
// on the monotonic clock. post() from any thread enqueues; the loop drains
// due timers into the ready queue and runs tasks one at a time, which is
// what gives node state its loop confinement (see transport.h).
//
// Telemetry: each loop keeps lifetime counters — tasks executed, timers
// fired, busy/idle wall time, ready-deque and timer-heap depth high-water
// marks — plus a post-to-run scheduling-latency histogram (dequeue time
// minus the moment the task became eligible: post time for immediate
// tasks, due time for timers). Every executed task contributes exactly one
// latency sample, including tasks drained during shutdown, so the
// histogram count equals tasks_executed() once the loops have joined.
// loop_stats()/sched_latency() snapshot these under the loop locks;
// export_into() publishes them into an obs::Registry in the
// "transport.loop.*" / "transport.sched_latency_us" families (idempotent,
// so a periodic scrape tick can call it repeatedly). Loop threads register
// with the global Profiler and FlightRecorder as "loop-<n>".
//
// Shutdown is graceful: each loop finishes the tasks already in its ready
// queue, discards undue timers, and joins. Tasks posted after shutdown
// began are counted, not run — a send dropped at teardown looks exactly
// like a packet lost in flight, which every protocol here tolerates.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/histogram.h"
#include "obs/runtime.h"
#include "transport/transport.h"

namespace p2pdrm::obs {
class Registry;
}

namespace p2pdrm::transport {

class ThreadTransport final : public Transport {
 public:
  struct Config {
    /// Event loops (= node groups). 0 means "one per hardware thread,
    /// capped at 8" — enough parallelism to contend every shared table
    /// without oversubscribing CI runners.
    std::size_t loops = 0;
  };

  ThreadTransport();
  explicit ThreadTransport(Config config);
  ~ThreadTransport() override;

  ThreadTransport(const ThreadTransport&) = delete;
  ThreadTransport& operator=(const ThreadTransport&) = delete;

  util::SimTime now() const override;
  void post(std::size_t group, util::SimTime delay, Task task) override;
  std::size_t groups() const override { return loops_.size(); }
  bool live() const override { return true; }
  void run_until(util::SimTime t) override;
  void shutdown() override;

  /// Tasks run to completion across all loops (exact after shutdown; a
  /// monotonic lower bound while the loops are running).
  std::uint64_t tasks_executed() const;
  /// Tasks refused because shutdown had already begun.
  std::uint64_t tasks_dropped() const { return dropped_.load(); }

  /// Per-loop telemetry snapshot, index order (exact after shutdown; a
  /// consistent-per-loop lower bound while running).
  std::vector<obs::LoopStats> loop_stats() const;
  /// Post-to-run scheduling latency, merged across loops. After shutdown
  /// its count equals tasks_executed(): one sample per executed task, none
  /// lost in the drain.
  obs::LatencyHistogram sched_latency() const;
  /// Publish loop stats + scheduling latency into `registry` under
  /// `prefix` (see obs::export_loop_stats). Idempotent; scrape-tick safe.
  void export_into(obs::Registry& registry,
                   const std::string& prefix = "transport") const;

 private:
  struct Timer {
    util::SimTime when = 0;
    std::uint64_t seq = 0;  // FIFO among equal due times
    Task task;
  };
  /// Min-heap order for std::push_heap/pop_heap (greatest = last).
  struct TimerLater {
    bool operator()(const Timer& a, const Timer& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };
  /// A ready task plus the moment it became eligible to run (post time,
  /// or the timer's due time) — the baseline for scheduling latency.
  struct Ready {
    Task task;
    util::SimTime due = 0;
  };
  struct Loop {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Ready> ready;    // MPSC: many posters, one loop thread
    std::vector<Timer> timers;  // heap via TimerLater
    std::uint64_t next_seq = 0;
    std::uint64_t executed = 0;
    std::uint64_t timers_fired = 0;
    std::int64_t busy_us = 0;
    std::int64_t idle_us = 0;
    std::size_t ready_peak = 0;
    std::size_t timer_peak = 0;
    bool stopping = false;
    /// Own mutex (see histogram.h), recorded outside loop.mu.
    obs::LatencyHistogram sched_latency;
    std::thread thread;
  };

  void run_loop(Loop& loop, std::size_t index);

  std::chrono::steady_clock::time_point start_;
  std::vector<std::unique_ptr<Loop>> loops_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> dropped_{0};
  std::mutex shutdown_mu_;  // serializes concurrent shutdown() calls
};

}  // namespace p2pdrm::transport
