#include "transport/thread_transport.h"

#include <algorithm>
#include <cstdio>

#include "obs/flight_recorder.h"
#include "obs/registry.h"

namespace p2pdrm::transport {

namespace {

std::size_t default_loops() {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::min<std::size_t>(hw == 0 ? 2 : hw, 8);
}

}  // namespace

ThreadTransport::ThreadTransport() : ThreadTransport(Config{}) {}

ThreadTransport::ThreadTransport(Config config)
    : start_(std::chrono::steady_clock::now()) {
  const std::size_t n = config.loops == 0 ? default_loops() : config.loops;
  loops_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    loops_.push_back(std::make_unique<Loop>());
  }
  for (std::size_t i = 0; i < n; ++i) {
    Loop* loop = loops_[i].get();
    loop->thread = std::thread([this, loop, i] { run_loop(*loop, i); });
  }
}

ThreadTransport::~ThreadTransport() { shutdown(); }

util::SimTime ThreadTransport::now() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

void ThreadTransport::post(std::size_t group, util::SimTime delay, Task task) {
  if (stopping_.load(std::memory_order_acquire)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Loop& loop = *loops_[group % loops_.size()];
  {
    std::lock_guard<std::mutex> lk(loop.mu);
    if (loop.stopping) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (delay <= 0) {
      loop.ready.push_back(Ready{std::move(task), now()});
      loop.ready_peak = std::max(loop.ready_peak, loop.ready.size());
    } else {
      loop.timers.push_back(Timer{now() + delay, loop.next_seq++, std::move(task)});
      std::push_heap(loop.timers.begin(), loop.timers.end(), TimerLater{});
      loop.timer_peak = std::max(loop.timer_peak, loop.timers.size());
    }
  }
  loop.cv.notify_one();
}

void ThreadTransport::run_loop(Loop& loop, std::size_t index) {
  char label[24];
  std::snprintf(label, sizeof(label), "loop-%zu", index);
  obs::Profiler::global().attach_thread(label);
  obs::FlightRecorder& flight = obs::FlightRecorder::global();
  flight.attach_thread(label);

  std::unique_lock<std::mutex> lk(loop.mu);
  for (;;) {
    // Promote due timers into the ready queue (FIFO by due time, then seq).
    const util::SimTime t = now();
    while (!loop.timers.empty() && loop.timers.front().when <= t) {
      std::pop_heap(loop.timers.begin(), loop.timers.end(), TimerLater{});
      Timer& fired = loop.timers.back();
      flight.record("loop.timer_fire", index, fired.seq);
      loop.ready.push_back(Ready{std::move(fired.task), fired.when});
      loop.timers.pop_back();
      ++loop.timers_fired;
      loop.ready_peak = std::max(loop.ready_peak, loop.ready.size());
    }
    if (!loop.ready.empty()) {
      Ready item = std::move(loop.ready.front());
      loop.ready.pop_front();
      lk.unlock();
      const util::SimTime t0 = now();
      loop.sched_latency.record(std::max<util::SimTime>(0, t0 - item.due));
      {
        obs::Profiler::Scope scope(obs::Profiler::global(), "transport.task");
        item.task();
      }
      item.task = nullptr;  // destroy captures outside the lock
      const util::SimTime t1 = now();
      lk.lock();
      ++loop.executed;
      loop.busy_us += t1 - t0;
      continue;
    }
    if (loop.stopping) {  // ready drained; undue timers are discarded
      flight.record("loop.stop", index, loop.executed);
      return;
    }
    const util::SimTime w0 = now();
    if (loop.timers.empty()) {
      loop.cv.wait(lk);
    } else {
      loop.cv.wait_until(
          lk, start_ + std::chrono::microseconds(loop.timers.front().when));
    }
    loop.idle_us += now() - w0;
  }
}

void ThreadTransport::run_until(util::SimTime t) {
  // The loops make progress on their own threads; this caller just waits
  // for the monotonic clock to pass t.
  std::this_thread::sleep_until(start_ + std::chrono::microseconds(t));
}

void ThreadTransport::shutdown() {
  std::lock_guard<std::mutex> shutdown_lk(shutdown_mu_);
  stopping_.store(true, std::memory_order_release);
  for (std::unique_ptr<Loop>& loop : loops_) {
    {
      std::lock_guard<std::mutex> lk(loop->mu);
      loop->stopping = true;
    }
    loop->cv.notify_all();
  }
  for (std::unique_ptr<Loop>& loop : loops_) {
    if (loop->thread.joinable()) loop->thread.join();
  }
}

std::uint64_t ThreadTransport::tasks_executed() const {
  std::uint64_t total = 0;
  for (const std::unique_ptr<Loop>& loop : loops_) {
    std::lock_guard<std::mutex> lk(loop->mu);
    total += loop->executed;
  }
  return total;
}

std::vector<obs::LoopStats> ThreadTransport::loop_stats() const {
  std::vector<obs::LoopStats> out;
  out.reserve(loops_.size());
  for (const std::unique_ptr<Loop>& loop : loops_) {
    std::lock_guard<std::mutex> lk(loop->mu);
    obs::LoopStats ls;
    ls.tasks = loop->executed;
    ls.timers_fired = loop->timers_fired;
    ls.busy_us = loop->busy_us;
    ls.idle_us = loop->idle_us;
    ls.ready_peak = static_cast<std::int64_t>(loop->ready_peak);
    ls.timer_peak = static_cast<std::int64_t>(loop->timer_peak);
    out.push_back(ls);
  }
  return out;
}

obs::LatencyHistogram ThreadTransport::sched_latency() const {
  obs::LatencyHistogram merged;
  for (const std::unique_ptr<Loop>& loop : loops_) {
    merged.merge(loop->sched_latency);
  }
  return merged;
}

void ThreadTransport::export_into(obs::Registry& registry,
                                  const std::string& prefix) const {
  const obs::LatencyHistogram merged = sched_latency();
  obs::export_loop_stats(registry, prefix, loop_stats(), &merged);
}

}  // namespace p2pdrm::transport
