#include "transport/thread_transport.h"

#include <algorithm>

namespace p2pdrm::transport {

namespace {

std::size_t default_loops() {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::min<std::size_t>(hw == 0 ? 2 : hw, 8);
}

}  // namespace

ThreadTransport::ThreadTransport() : ThreadTransport(Config{}) {}

ThreadTransport::ThreadTransport(Config config)
    : start_(std::chrono::steady_clock::now()) {
  const std::size_t n = config.loops == 0 ? default_loops() : config.loops;
  loops_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    loops_.push_back(std::make_unique<Loop>());
  }
  for (std::size_t i = 0; i < n; ++i) {
    Loop* loop = loops_[i].get();
    loop->thread = std::thread([this, loop] { run_loop(*loop); });
  }
}

ThreadTransport::~ThreadTransport() { shutdown(); }

util::SimTime ThreadTransport::now() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

void ThreadTransport::post(std::size_t group, util::SimTime delay, Task task) {
  if (stopping_.load(std::memory_order_acquire)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Loop& loop = *loops_[group % loops_.size()];
  {
    std::lock_guard<std::mutex> lk(loop.mu);
    if (loop.stopping) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (delay <= 0) {
      loop.ready.push_back(std::move(task));
    } else {
      loop.timers.push_back(Timer{now() + delay, loop.next_seq++, std::move(task)});
      std::push_heap(loop.timers.begin(), loop.timers.end(), TimerLater{});
    }
  }
  loop.cv.notify_one();
}

void ThreadTransport::run_loop(Loop& loop) {
  std::unique_lock<std::mutex> lk(loop.mu);
  for (;;) {
    // Promote due timers into the ready queue (FIFO by due time, then seq).
    const util::SimTime t = now();
    while (!loop.timers.empty() && loop.timers.front().when <= t) {
      std::pop_heap(loop.timers.begin(), loop.timers.end(), TimerLater{});
      loop.ready.push_back(std::move(loop.timers.back().task));
      loop.timers.pop_back();
    }
    if (!loop.ready.empty()) {
      Task task = std::move(loop.ready.front());
      loop.ready.pop_front();
      lk.unlock();
      task();
      task = nullptr;  // destroy captures outside the lock
      lk.lock();
      ++loop.executed;
      continue;
    }
    if (loop.stopping) return;  // ready drained; undue timers are discarded
    if (loop.timers.empty()) {
      loop.cv.wait(lk);
    } else {
      loop.cv.wait_until(
          lk, start_ + std::chrono::microseconds(loop.timers.front().when));
    }
  }
}

void ThreadTransport::run_until(util::SimTime t) {
  // The loops make progress on their own threads; this caller just waits
  // for the monotonic clock to pass t.
  std::this_thread::sleep_until(start_ + std::chrono::microseconds(t));
}

void ThreadTransport::shutdown() {
  std::lock_guard<std::mutex> shutdown_lk(shutdown_mu_);
  stopping_.store(true, std::memory_order_release);
  for (std::unique_ptr<Loop>& loop : loops_) {
    {
      std::lock_guard<std::mutex> lk(loop->mu);
      loop->stopping = true;
    }
    loop->cv.notify_all();
  }
  for (std::unique_ptr<Loop>& loop : loops_) {
    if (loop->thread.joinable()) loop->thread.join();
  }
}

std::uint64_t ThreadTransport::tasks_executed() const {
  std::uint64_t total = 0;
  for (const std::unique_ptr<Loop>& loop : loops_) {
    std::lock_guard<std::mutex> lk(loop->mu);
    total += loop->executed;
  }
  return total;
}

}  // namespace p2pdrm::transport
