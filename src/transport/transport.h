// Transport: the seam beneath net::Network's send/delivery scheduling.
//
// The protocol state machines (managers, clients, peers) never talk to a
// backend directly — they schedule work and deliveries through the Network,
// which delegates to one of two Transport implementations:
//
//  * SimTransport wraps the discrete-event sim::Simulation. Single event
//    loop, virtual time, byte-identical with the pre-transport engine
//    (asserted by the same-seed golden-trace test).
//  * ThreadTransport runs one real event loop per node group on its own
//    thread, with MPSC delivery queues and monotonic-clock timers — the
//    live backend for genuine requests-per-second measurement.
//
// The confinement contract both backends honor: every task posted to the
// same group runs serialized, in post order for equal due times. Node state
// is therefore loop-confined (a node's deliveries and timers all land on
// its group) and needs no locking of its own; everything shared *across*
// groups (registries, tracers, the Network's own tables) is locked.
#pragma once

#include <cstddef>
#include <functional>

#include "util/time.h"

namespace p2pdrm::transport {

using Task = std::function<void()>;

class Transport {
 public:
  virtual ~Transport() = default;

  /// Current time in microseconds: virtual simulation time for the sim
  /// backend, monotonic time since construction for the live backend.
  virtual util::SimTime now() const = 0;

  /// Run `task` on the event loop owning `group`, `delay` microseconds from
  /// now (delay <= 0 means "as soon as the loop gets to it"). Safe to call
  /// from any thread; tasks for one group never run concurrently.
  virtual void post(std::size_t group, util::SimTime delay, Task task) = 0;

  /// Number of event loops. Group indices are taken modulo this.
  virtual std::size_t groups() const = 0;

  /// True when tasks run on real threads against the monotonic clock (and
  /// therefore only outcomes — not event interleavings — are deterministic).
  virtual bool live() const = 0;

  /// Block until now() >= t: the sim backend drains due events, the live
  /// backend sleeps while its loops work.
  virtual void run_until(util::SimTime t) = 0;

  /// Graceful stop: finish the tasks already queued, discard future timers,
  /// join every loop. After shutdown, post() drops tasks. Idempotent.
  virtual void shutdown() = 0;
};

}  // namespace p2pdrm::transport
