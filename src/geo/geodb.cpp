#include "geo/geodb.h"

#include <set>
#include <stdexcept>

#include "crypto/chacha20.h"

namespace p2pdrm::geo {

namespace {

std::uint32_t mask_of(int length) {
  if (length == 0) return 0;
  return ~std::uint32_t{0} << (32 - length);
}

}  // namespace

bool Prefix::contains(util::NetAddr addr) const {
  return (addr.ip & mask_of(length)) == network;
}

std::string Prefix::to_string() const {
  return util::to_string(util::NetAddr{network}) + "/" + std::to_string(length);
}

void GeoDatabase::add_prefix(Prefix prefix, GeoInfo info) {
  if (prefix.length < 0 || prefix.length > 32) {
    throw std::invalid_argument("GeoDatabase: prefix length out of range");
  }
  if ((prefix.network & ~mask_of(prefix.length)) != 0) {
    throw std::invalid_argument("GeoDatabase: host bits set in " + prefix.to_string());
  }
  by_length_[static_cast<std::size_t>(prefix.length)][prefix.network] = info;
}

GeoInfo GeoDatabase::lookup(util::NetAddr addr) const {
  return lookup_exactly(addr).value_or(GeoInfo{});
}

std::optional<GeoInfo> GeoDatabase::lookup_exactly(util::NetAddr addr) const {
  for (int len = 32; len >= 0; --len) {
    const auto& table = by_length_[static_cast<std::size_t>(len)];
    if (table.empty()) continue;
    const auto it = table.find(addr.ip & mask_of(len));
    if (it != table.end()) return it->second;
  }
  return std::nullopt;
}

std::size_t GeoDatabase::prefix_count() const {
  std::size_t total = 0;
  for (const auto& table : by_length_) total += table.size();
  return total;
}

SyntheticGeo::SyntheticGeo(crypto::SecureRandom& rng, const SyntheticGeoPlan& plan)
    : plan_(plan) {
  if (plan.num_regions < 1 || plan.prefixes_per_region < 1 ||
      plan.prefix_length < 1 || plan.prefix_length > 30) {
    throw std::invalid_argument("SyntheticGeo: bad plan");
  }
  std::set<std::uint32_t> used;
  for (int r = 0; r < plan.num_regions; ++r) {
    const RegionId region = region_at(r);
    for (int p = 0; p < plan.prefixes_per_region; ++p) {
      // Draw distinct networks; avoid 0.0.0.0/len so addresses look real.
      std::uint32_t network;
      do {
        network = static_cast<std::uint32_t>(rng.next_u32()) & mask_of(plan.prefix_length);
      } while (network == 0 || !used.insert(network).second);
      const AsNumber as =
          1000 + static_cast<AsNumber>(r) * 100 +
          static_cast<AsNumber>(rng.uniform(static_cast<std::uint64_t>(plan.as_per_region)));
      const Prefix prefix{network, plan.prefix_length};
      db_.add_prefix(prefix, GeoInfo{region, as});
      region_prefixes_[region].push_back(prefix);
    }
  }
}

RegionId SyntheticGeo::region_at(int index) const {
  if (index < 0 || index >= plan_.num_regions) {
    throw std::out_of_range("SyntheticGeo: region index");
  }
  return 100 + static_cast<RegionId>(index);
}

util::NetAddr SyntheticGeo::sample_address(crypto::SecureRandom& rng,
                                           RegionId region) const {
  const auto it = region_prefixes_.find(region);
  if (it == region_prefixes_.end()) {
    throw std::invalid_argument("SyntheticGeo: unknown region " + std::to_string(region));
  }
  const auto& prefixes = it->second;
  const Prefix& prefix = prefixes[rng.uniform(prefixes.size())];
  const std::uint32_t host_bits = 32 - static_cast<std::uint32_t>(prefix.length);
  std::uint32_t host;
  do {
    host = static_cast<std::uint32_t>(rng.uniform(std::uint64_t{1} << host_bits));
  } while (host == 0);  // avoid the network address itself
  return util::NetAddr{prefix.network | host};
}

}  // namespace p2pdrm::geo
