// Synthetic GeoIP / AS-number database.
//
// The paper's User Manager infers the client's geographic region (MaxMind
// GeoIP) and autonomous system from its connection address and bakes both
// into the User Ticket as attributes. We reproduce the *inference call* with
// a longest-prefix-match database over synthetic address space: each region
// owns a set of IPv4 prefixes, each prefix maps to (region, AS).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/ids.h"

namespace p2pdrm::crypto {
class SecureRandom;
}

namespace p2pdrm::geo {

/// Geographic region (the paper's DMA-style "Region" attribute). Plain
/// integer ids; 0 is reserved as "unknown".
using RegionId = std::uint32_t;
constexpr RegionId kUnknownRegion = 0;

/// Autonomous system number.
using AsNumber = std::uint32_t;
constexpr AsNumber kUnknownAs = 0;

struct GeoInfo {
  RegionId region = kUnknownRegion;
  AsNumber as_number = kUnknownAs;

  friend bool operator==(const GeoInfo&, const GeoInfo&) = default;
};

/// IPv4 prefix (network address + length).
struct Prefix {
  std::uint32_t network = 0;  // host-order, low bits zero
  int length = 0;             // 0..32

  bool contains(util::NetAddr addr) const;
  std::string to_string() const;

  friend bool operator==(const Prefix&, const Prefix&) = default;
};

/// Longest-prefix-match lookup table from IPv4 address to GeoInfo.
class GeoDatabase {
 public:
  /// Register a prefix. Later insertions of the same prefix overwrite.
  /// Throws std::invalid_argument if the prefix is malformed (host bits set
  /// or length out of range).
  void add_prefix(Prefix prefix, GeoInfo info);

  /// Longest-prefix match; GeoInfo{kUnknownRegion, kUnknownAs} if nothing
  /// matches.
  GeoInfo lookup(util::NetAddr addr) const;

  /// As lookup(), nullopt if nothing matches.
  std::optional<GeoInfo> lookup_exactly(util::NetAddr addr) const;

  std::size_t prefix_count() const;

 private:
  // One map per prefix length, keyed by the masked network address.
  std::array<std::map<std::uint32_t, GeoInfo>, 33> by_length_;
};

/// Configuration for the synthetic address plan.
struct SyntheticGeoPlan {
  int num_regions = 4;
  int prefixes_per_region = 8;
  int as_per_region = 3;
  int prefix_length = 16;
};

/// A GeoDatabase plus the generator-side knowledge needed to sample client
/// addresses that will resolve to a chosen region (the workload generator
/// places simulated users this way).
class SyntheticGeo {
 public:
  SyntheticGeo(crypto::SecureRandom& rng, const SyntheticGeoPlan& plan);

  const GeoDatabase& db() const { return db_; }
  int num_regions() const { return plan_.num_regions; }

  /// Regions are numbered 100, 101, ... (matching the paper's examples).
  RegionId region_at(int index) const;

  /// Sample an address that the database resolves to the given region.
  util::NetAddr sample_address(crypto::SecureRandom& rng, RegionId region) const;

 private:
  SyntheticGeoPlan plan_;
  GeoDatabase db_;
  std::map<RegionId, std::vector<Prefix>> region_prefixes_;
};

}  // namespace p2pdrm::geo
