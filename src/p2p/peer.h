// Peer node of a channel's distribution overlay (§IV-C join, §IV-E keys).
//
// Every client participating in a channel is a Peer; the Channel Server is
// the root Peer. A peer:
//   - verifies Channel Tickets of joining clients (signature, expiry,
//     NetAddr binding, channel match) — this is the *delegated* part of
//     authorization: no policy evaluation, no user attributes beyond the
//     network address,
//   - on accept, mints a per-link session key, sends it under the joiner's
//     certified public key together with the current content key wrapped
//     under the session key,
//   - relays each new content key pair-wise: decrypt from the parent link,
//     re-encrypt per child link (discarding duplicate serials, which occur
//     naturally with multi-parent sub-stream delivery),
//   - severs a child's peering when its Channel Ticket expires without a
//     renewal ticket being presented (§IV-D).
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "core/content.h"
#include "core/messages.h"
#include "core/ticket.h"
#include "crypto/chacha20.h"
#include "crypto/rsa.h"
#include "util/ids.h"

namespace p2pdrm::p2p {

struct PeerConfig {
  util::NodeId node = util::kInvalidNode;
  util::NetAddr addr;
  util::ChannelId channel = 0;
  /// Maximum simultaneous children (upload budget).
  std::size_t capacity = 4;
  /// Sub-streams the channel is divided into (peer-division multiplexing,
  /// §III/[6]); packet seq % substreams selects the sub-stream. 1 = plain
  /// single-stream delivery. Must be consistent across a channel's overlay.
  std::size_t substreams = 1;
};

/// A message produced for a specific neighbour (the caller transports it).
struct Outgoing {
  util::NodeId to = util::kInvalidNode;
  util::Bytes payload;
};

class Peer {
 public:
  /// `keys` is the owner's key pair (certified via its tickets); `cm_key`
  /// verifies Channel Tickets presented by joiners.
  Peer(PeerConfig config, crypto::RsaKeyPair keys, crypto::RsaPublicKey cm_key,
       crypto::SecureRandom rng);

  // --- target-peer side ---

  /// Process a join request arriving from `from` at address `conn_addr`.
  core::JoinResponse handle_join(const core::JoinRequest& req,
                                 util::NetAddr conn_addr, util::NodeId from,
                                 util::SimTime now);

  /// A child presents a renewal ticket before its old ticket expires;
  /// returns false (and does not extend) if the ticket is invalid, not a
  /// renewal, or does not match the child's identity.
  bool present_renewal(util::NodeId child, util::BytesView renewed_ticket,
                       util::SimTime now);

  /// Sever children whose Channel Ticket has expired (returns who).
  std::vector<util::NodeId> evict_expired(util::SimTime now);

  /// Drop a child (it left voluntarily or its transport died).
  void drop_child(util::NodeId child);
  /// Drop a parent link.
  void drop_parent(util::NodeId parent);

  // --- joining side ---

  /// `substream_mask` selects which sub-streams to request from this parent
  /// (bit i = sub-stream i); the default asks for everything.
  core::JoinRequest make_join_request(const core::SignedChannelTicket& ticket,
                                      std::uint32_t substream_mask = 0xffffffff) const;

  /// Complete a join against `parent` using its response; establishes the
  /// parent link and installs the delivered content key. Returns false if
  /// the response is an error or fails to decrypt.
  bool complete_join(util::NodeId parent, const core::JoinResponse& resp);

  // --- content-key distribution ---

  /// Root use (Channel Server side): wrap `key` for every child.
  std::vector<Outgoing> announce_key(const core::ContentKey& key);

  /// A wrapped key blob arrived from `from`. Unwraps it with that link's
  /// session key; if the serial is new, installs it and returns re-wrapped
  /// copies for every child. Duplicate serials are discarded (empty return).
  std::vector<Outgoing> handle_key_blob(util::NodeId from, util::BytesView blob);

  /// Install a key directly (root peer learning it from its ChannelServer).
  void install_key(const core::ContentKey& key);

  /// Called for every *new* key epoch installed from the overlay fan-out
  /// (handle_key_blob), after the install. Keys learned at join time or
  /// announced by a root do not fire it — it measures rotation delivery.
  using InstallListener = std::function<void(const core::ContentKey&)>;
  void set_install_listener(InstallListener listener) {
    install_listener_ = std::move(listener);
  }

  // --- content packets ---

  /// Decrypt a packet with the matching installed key.
  std::optional<util::Bytes> decrypt(const core::ContentPacket& packet) const;

  /// All children (key distribution goes to everyone regardless of
  /// sub-stream assignment — every peer needs every content key).
  std::vector<util::NodeId> forward_targets() const;

  /// Children subscribed to the sub-stream that packet sequence `seq`
  /// belongs to (seq % config().substreams).
  std::vector<util::NodeId> forward_targets_for(std::uint64_t seq) const;

  // --- introspection ---

  const PeerConfig& config() const { return config_; }
  std::size_t child_count() const { return children_.size(); }
  bool has_spare_capacity() const { return children_.size() < config_.capacity; }
  std::size_t known_key_count() const { return keys_.size(); }
  bool knows_serial(std::uint8_t serial) const { return keys_.contains(serial); }
  std::vector<util::NodeId> parents() const;
  const crypto::RsaPublicKey& public_key() const { return keys_pair_.pub; }

 private:
  struct ChildLink {
    core::SessionKey session;
    std::uint64_t wrap_counter = 0;
    util::SimTime ticket_expiry = 0;
    util::UserIN user_in = 0;
    util::NetAddr addr;
    std::uint32_t substream_mask = 0xffffffff;
  };
  struct ParentLink {
    core::SessionKey session;
  };

  /// Retain at most this many content keys (ring by installation order).
  static constexpr std::size_t kMaxKeys = 8;

  util::Bytes wrap_for_child(ChildLink& link, const core::ContentKey& key);

  PeerConfig config_;
  crypto::RsaKeyPair keys_pair_;
  crypto::RsaPublicKey cm_key_;
  crypto::SecureRandom rng_;

  std::map<util::NodeId, ChildLink> children_;
  std::map<util::NodeId, ParentLink> parents_;
  std::map<std::uint8_t, core::ContentKey> keys_;  // by serial
  std::vector<std::uint8_t> key_order_;            // installation order
  InstallListener install_listener_;
};

}  // namespace p2pdrm::p2p
