// Receiver-based peer-division multiplexing substrate (§III, §IV-E).
//
// The underlying P2P network the paper deployed on delivers a channel as k
// sub-streams, each potentially via a different parent ("when the stream is
// sent as sub-streams through multiple parents, a peer may receive multiple
// copies of the same content key" — which is why key serials dedup). This
// module provides the two receiver-side pieces:
//   - SubstreamRouter: which parent serves which sub-stream, with failover
//     when a parent disappears,
//   - SubstreamBuffer: in-order reassembly of packets arriving out of order
//     across sub-streams, with a bounded window and explicit gap skipping
//     (live video never stalls forever on a lost packet).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "util/bytes.h"
#include "util/ids.h"

namespace p2pdrm::p2p {

/// Sub-stream index of a packet: round-robin over sequence numbers.
constexpr std::size_t substream_of(std::uint64_t seq, std::size_t substreams) {
  return static_cast<std::size_t>(seq % substreams);
}

/// Maps sub-streams to parent peers.
class SubstreamRouter {
 public:
  explicit SubstreamRouter(std::size_t substreams);

  std::size_t substream_count() const { return parents_.size(); }

  /// Assign a parent to one sub-stream (replacing any previous one).
  void assign(std::size_t substream, util::NodeId parent);
  /// Parent currently serving a sub-stream (nullopt if unassigned).
  std::optional<util::NodeId> parent_of(std::size_t substream) const;

  /// Sub-streams with no live parent (what the client must re-join for).
  std::vector<std::size_t> unassigned() const;

  /// A parent died / was dropped: unassigns every sub-stream it served and
  /// returns those sub-stream indices.
  std::vector<std::size_t> drop_parent(util::NodeId parent);

  /// Distinct parents currently in use.
  std::vector<util::NodeId> parents() const;

 private:
  std::vector<std::optional<util::NodeId>> parents_;
};

/// In-order reassembly buffer with a bounded reordering window.
class SubstreamBuffer {
 public:
  /// `window`: maximum number of out-of-order packets buffered ahead of the
  /// next expected sequence number; packets beyond it are rejected (the
  /// receiver should skip forward instead).
  explicit SubstreamBuffer(std::size_t window = 256);

  struct Delivered {
    std::uint64_t seq;
    util::Bytes payload;
  };

  /// Insert a decrypted packet payload. Returns every packet that became
  /// deliverable in order (possibly empty; possibly several when a gap
  /// fills). Duplicates and packets older than the cursor are dropped.
  std::vector<Delivered> insert(std::uint64_t seq, util::Bytes payload);

  /// Abandon everything before `seq` (playback skipped over a loss).
  /// Buffered packets at or after `seq` survive and may deliver immediately
  /// on the next insert... or now; the return works like insert's.
  std::vector<Delivered> skip_to(std::uint64_t seq);

  std::uint64_t next_expected() const { return next_; }
  std::size_t buffered() const { return pending_.size(); }
  std::uint64_t delivered_count() const { return delivered_; }
  std::uint64_t dropped_count() const { return dropped_; }

 private:
  std::vector<Delivered> drain();

  std::size_t window_;
  std::uint64_t next_ = 0;
  std::map<std::uint64_t, util::Bytes> pending_;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace p2pdrm::p2p
