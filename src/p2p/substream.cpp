#include "p2p/substream.h"

#include <algorithm>
#include <stdexcept>

namespace p2pdrm::p2p {

SubstreamRouter::SubstreamRouter(std::size_t substreams) : parents_(substreams) {
  if (substreams == 0) {
    throw std::invalid_argument("SubstreamRouter: need at least one sub-stream");
  }
}

void SubstreamRouter::assign(std::size_t substream, util::NodeId parent) {
  parents_.at(substream) = parent;
}

std::optional<util::NodeId> SubstreamRouter::parent_of(std::size_t substream) const {
  return parents_.at(substream);
}

std::vector<std::size_t> SubstreamRouter::unassigned() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < parents_.size(); ++i) {
    if (!parents_[i]) out.push_back(i);
  }
  return out;
}

std::vector<std::size_t> SubstreamRouter::drop_parent(util::NodeId parent) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < parents_.size(); ++i) {
    if (parents_[i] == parent) {
      parents_[i].reset();
      out.push_back(i);
    }
  }
  return out;
}

std::vector<util::NodeId> SubstreamRouter::parents() const {
  std::vector<util::NodeId> out;
  for (const auto& p : parents_) {
    if (p && std::find(out.begin(), out.end(), *p) == out.end()) out.push_back(*p);
  }
  return out;
}

SubstreamBuffer::SubstreamBuffer(std::size_t window) : window_(window) {
  if (window == 0) throw std::invalid_argument("SubstreamBuffer: zero window");
}

std::vector<SubstreamBuffer::Delivered> SubstreamBuffer::insert(std::uint64_t seq,
                                                                util::Bytes payload) {
  if (seq < next_) {
    ++dropped_;  // stale duplicate
    return {};
  }
  if (seq >= next_ + window_) {
    ++dropped_;  // beyond the reordering window
    return {};
  }
  if (!pending_.emplace(seq, std::move(payload)).second) {
    ++dropped_;  // duplicate of a buffered packet
    return {};
  }
  return drain();
}

std::vector<SubstreamBuffer::Delivered> SubstreamBuffer::skip_to(std::uint64_t seq) {
  if (seq <= next_) return {};
  // Everything below the new cursor is abandoned.
  auto it = pending_.begin();
  while (it != pending_.end() && it->first < seq) {
    ++dropped_;
    it = pending_.erase(it);
  }
  next_ = seq;
  return drain();
}

std::vector<SubstreamBuffer::Delivered> SubstreamBuffer::drain() {
  std::vector<Delivered> out;
  auto it = pending_.find(next_);
  while (it != pending_.end()) {
    out.push_back({it->first, std::move(it->second)});
    pending_.erase(it);
    ++delivered_;
    ++next_;
    it = pending_.find(next_);
  }
  return out;
}

}  // namespace p2pdrm::p2p
