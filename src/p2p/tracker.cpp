#include "p2p/tracker.h"

#include <algorithm>

namespace p2pdrm::p2p {

Tracker::Tracker(crypto::SecureRandom rng) : rng_(std::move(rng)) {}

void Tracker::set_limits(Limits limits) {
  std::lock_guard<std::mutex> lk(mu_);
  limits_ = limits;
}

void Tracker::bind_registry(obs::Registry* registry) {
  std::lock_guard<std::mutex> lk(mu_);
  if (registry == nullptr) {
    m_announcements_ = m_load_updates_ = m_unregisters_ = m_evictions_ =
        m_samples_ = m_rejected_rate_ = m_rejected_capacity_ = nullptr;
    m_peers_ = nullptr;
    return;
  }
  m_announcements_ = &registry->counter("tracker.announcements");
  m_load_updates_ = &registry->counter("tracker.load_updates");
  m_unregisters_ = &registry->counter("tracker.unregisters");
  m_evictions_ = &registry->counter("tracker.evictions");
  m_samples_ = &registry->counter("tracker.samples");
  m_rejected_rate_ = &registry->counter("tracker.rejected.rate");
  m_rejected_capacity_ = &registry->counter("tracker.rejected.capacity");
  m_rejected_rate_->inc(rejected_rate_ - m_rejected_rate_->value());
  m_rejected_capacity_->inc(rejected_capacity_ - m_rejected_capacity_->value());
  m_peers_ = &registry->gauge("tracker.peers");
  std::size_t peers = 0;
  for (const auto& [channel, members] : channels_) peers += members.size();
  m_peers_->set(static_cast<std::int64_t>(peers));
}

bool Tracker::register_peer(util::ChannelId channel, core::PeerInfo info,
                            std::size_t capacity, util::SimTime now) {
  std::lock_guard<std::mutex> lk(mu_);
  auto& members = channels_[channel];
  const bool fresh = !members.contains(info.node);
  if (fresh) {
    // Admission limits apply to new identities only; a keep-alive from a
    // known peer must never be throttled or the overlay would shed healthy
    // parents under attack.
    if (limits_.max_peers_per_channel > 0 &&
        members.size() >= limits_.max_peers_per_channel) {
      ++rejected_capacity_;
      if (m_rejected_capacity_ != nullptr) m_rejected_capacity_->inc();
      if (members.empty()) channels_.erase(channel);
      return false;
    }
    if (limits_.registration_burst > 0 && limits_.registration_window > 0) {
      SourceWindow& win = source_windows_[info.addr.ip];
      if (now >= win.start + limits_.registration_window) {
        win.start = now;
        win.count = 0;
      }
      if (win.count >= limits_.registration_burst) {
        ++rejected_rate_;
        if (m_rejected_rate_ != nullptr) m_rejected_rate_->inc();
        if (members.empty()) channels_.erase(channel);
        return false;
      }
      ++win.count;
    }
  }
  members[info.node] = PeerState{info, capacity, 0, now};
  if (m_announcements_ != nullptr) m_announcements_->inc();
  if (fresh && m_peers_ != nullptr) m_peers_->add(1);
  return true;
}

void Tracker::update_load(util::ChannelId channel, util::NodeId node,
                          std::size_t children, util::SimTime now) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto ch_it = channels_.find(channel);
  if (ch_it == channels_.end()) return;
  const auto it = ch_it->second.find(node);
  if (it == ch_it->second.end()) return;
  it->second.children = children;
  if (now > it->second.last_seen) it->second.last_seen = now;
  if (m_load_updates_ != nullptr) m_load_updates_->inc();
}

void Tracker::unregister_peer(util::ChannelId channel, util::NodeId node) {
  std::lock_guard<std::mutex> lk(mu_);
  const auto ch_it = channels_.find(channel);
  if (ch_it == channels_.end()) return;
  const std::size_t erased = ch_it->second.erase(node);
  if (ch_it->second.empty()) channels_.erase(ch_it);
  if (erased > 0) {
    if (m_unregisters_ != nullptr) m_unregisters_->inc();
    if (m_peers_ != nullptr) m_peers_->add(-1);
  }
}

std::vector<core::PeerInfo> Tracker::sample_peers(util::ChannelId channel,
                                                  std::size_t max_peers,
                                                  util::NetAddr requester) {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<core::PeerInfo> out;
  if (m_samples_ != nullptr) m_samples_->inc();
  const auto ch_it = channels_.find(channel);
  if (ch_it == channels_.end()) return out;

  std::vector<const PeerState*> spare, loaded;
  for (const auto& [node, state] : ch_it->second) {
    if (state.info.addr == requester) continue;
    (state.children < state.capacity ? spare : loaded).push_back(&state);
  }

  const auto take_random = [&](std::vector<const PeerState*>& pool) {
    while (!pool.empty() && out.size() < max_peers) {
      const std::size_t i = rng_.uniform(pool.size());
      out.push_back(pool[i]->info);
      pool[i] = pool.back();
      pool.pop_back();
    }
  };
  take_random(spare);
  take_random(loaded);
  return out;
}

std::size_t Tracker::evict_stale(util::SimTime cutoff) {
  std::lock_guard<std::mutex> lk(mu_);
  // Rate-limit windows age out with the same cutoff, so a Sybil storm does
  // not leave the source table growing without bound after it ends.
  std::erase_if(source_windows_, [this, cutoff](const auto& entry) {
    return entry.second.start + limits_.registration_window < cutoff;
  });
  std::size_t evicted = 0;
  for (auto ch_it = channels_.begin(); ch_it != channels_.end();) {
    evicted += std::erase_if(ch_it->second, [cutoff](const auto& entry) {
      return entry.second.last_seen < cutoff;
    });
    ch_it = ch_it->second.empty() ? channels_.erase(ch_it) : std::next(ch_it);
  }
  if (evicted > 0) {
    if (m_evictions_ != nullptr) m_evictions_->inc(evicted);
    if (m_peers_ != nullptr) m_peers_->add(-static_cast<std::int64_t>(evicted));
  }
  return evicted;
}

std::uint64_t Tracker::rejected_rate() const {
  std::lock_guard<std::mutex> lk(mu_);
  return rejected_rate_;
}

std::uint64_t Tracker::rejected_capacity() const {
  std::lock_guard<std::mutex> lk(mu_);
  return rejected_capacity_;
}

std::size_t Tracker::peer_count(util::ChannelId channel) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = channels_.find(channel);
  return it == channels_.end() ? 0 : it->second.size();
}

double Tracker::utilization(util::ChannelId channel) const {
  std::lock_guard<std::mutex> lk(mu_);
  const auto it = channels_.find(channel);
  if (it == channels_.end()) return 0.0;
  std::size_t used = 0, total = 0;
  for (const auto& [node, state] : it->second) {
    used += std::min(state.children, state.capacity);
    total += state.capacity;
  }
  return total == 0 ? 0.0 : static_cast<double>(used) / static_cast<double>(total);
}

}  // namespace p2pdrm::p2p
