#include "p2p/tracker.h"

#include <algorithm>

namespace p2pdrm::p2p {

Tracker::Tracker(crypto::SecureRandom rng) : rng_(std::move(rng)) {}

void Tracker::register_peer(util::ChannelId channel, core::PeerInfo info,
                            std::size_t capacity, util::SimTime now) {
  channels_[channel][info.node] = PeerState{info, capacity, 0, now};
}

void Tracker::update_load(util::ChannelId channel, util::NodeId node,
                          std::size_t children, util::SimTime now) {
  const auto ch_it = channels_.find(channel);
  if (ch_it == channels_.end()) return;
  const auto it = ch_it->second.find(node);
  if (it == ch_it->second.end()) return;
  it->second.children = children;
  if (now > it->second.last_seen) it->second.last_seen = now;
}

void Tracker::unregister_peer(util::ChannelId channel, util::NodeId node) {
  const auto ch_it = channels_.find(channel);
  if (ch_it == channels_.end()) return;
  ch_it->second.erase(node);
  if (ch_it->second.empty()) channels_.erase(ch_it);
}

std::vector<core::PeerInfo> Tracker::sample_peers(util::ChannelId channel,
                                                  std::size_t max_peers,
                                                  util::NetAddr requester) {
  std::vector<core::PeerInfo> out;
  const auto ch_it = channels_.find(channel);
  if (ch_it == channels_.end()) return out;

  std::vector<const PeerState*> spare, loaded;
  for (const auto& [node, state] : ch_it->second) {
    if (state.info.addr == requester) continue;
    (state.children < state.capacity ? spare : loaded).push_back(&state);
  }

  const auto take_random = [&](std::vector<const PeerState*>& pool) {
    while (!pool.empty() && out.size() < max_peers) {
      const std::size_t i = rng_.uniform(pool.size());
      out.push_back(pool[i]->info);
      pool[i] = pool.back();
      pool.pop_back();
    }
  };
  take_random(spare);
  take_random(loaded);
  return out;
}

std::size_t Tracker::evict_stale(util::SimTime cutoff) {
  std::size_t evicted = 0;
  for (auto ch_it = channels_.begin(); ch_it != channels_.end();) {
    evicted += std::erase_if(ch_it->second, [cutoff](const auto& entry) {
      return entry.second.last_seen < cutoff;
    });
    ch_it = ch_it->second.empty() ? channels_.erase(ch_it) : std::next(ch_it);
  }
  return evicted;
}

std::size_t Tracker::peer_count(util::ChannelId channel) const {
  const auto it = channels_.find(channel);
  return it == channels_.end() ? 0 : it->second.size();
}

double Tracker::utilization(util::ChannelId channel) const {
  const auto it = channels_.find(channel);
  if (it == channels_.end()) return 0.0;
  std::size_t used = 0, total = 0;
  for (const auto& [node, state] : it->second) {
    used += std::min(state.children, state.capacity);
    total += state.capacity;
  }
  return total == 0 ? 0.0 : static_cast<double>(used) / static_cast<double>(total);
}

}  // namespace p2pdrm::p2p
