#include "p2p/peer.h"

namespace p2pdrm::p2p {

using core::DrmError;

Peer::Peer(PeerConfig config, crypto::RsaKeyPair keys, crypto::RsaPublicKey cm_key,
           crypto::SecureRandom rng)
    : config_(config), keys_pair_(std::move(keys)), cm_key_(std::move(cm_key)),
      rng_(std::move(rng)) {}

core::JoinResponse Peer::handle_join(const core::JoinRequest& req,
                                     util::NetAddr conn_addr, util::NodeId from,
                                     util::SimTime now) {
  core::JoinResponse resp;

  core::SignedChannelTicket ticket;
  try {
    ticket = core::SignedChannelTicket::decode(req.channel_ticket);
  } catch (const util::WireError&) {
    resp.error = DrmError::kBadTicket;
    return resp;
  }
  // Delegated verification (§IV-C): signature, expiry, address binding, and
  // channel match — nothing else. No policy evaluation at peers.
  if (!ticket.verify(cm_key_)) {
    resp.error = DrmError::kBadTicket;
    return resp;
  }
  if (ticket.ticket.expired_at(now)) {
    resp.error = DrmError::kTicketExpired;
    return resp;
  }
  if (ticket.ticket.net_addr != conn_addr) {
    resp.error = DrmError::kAddressMismatch;
    return resp;
  }
  if (ticket.ticket.channel_id != config_.channel) {
    resp.error = DrmError::kWrongChannel;
    return resp;
  }
  if (!has_spare_capacity() && !children_.contains(from)) {
    resp.error = DrmError::kNoCapacity;
    return resp;
  }

  ChildLink link;
  link.session = core::generate_session_key(rng_);
  link.ticket_expiry = ticket.ticket.expiry_time;
  link.user_in = ticket.ticket.user_in;
  link.addr = conn_addr;
  link.substream_mask = req.substream_mask;

  resp.encrypted_session_key =
      crypto::rsa_encrypt(ticket.ticket.client_public_key, link.session.to_bytes(), rng_);
  if (!key_order_.empty()) {
    const core::ContentKey& current = keys_.at(key_order_.back());
    resp.encrypted_content_key =
        core::wrap_content_key(current, link.session, link.wrap_counter++);
  }
  children_[from] = std::move(link);
  return resp;
}

bool Peer::present_renewal(util::NodeId child, util::BytesView renewed_ticket,
                           util::SimTime now) {
  const auto it = children_.find(child);
  if (it == children_.end()) return false;

  core::SignedChannelTicket ticket;
  try {
    ticket = core::SignedChannelTicket::decode(renewed_ticket);
  } catch (const util::WireError&) {
    return false;
  }
  if (!ticket.verify(cm_key_)) return false;
  if (!ticket.ticket.renewal) return false;  // must carry the renewal bit
  if (ticket.ticket.expired_at(now)) return false;
  if (ticket.ticket.channel_id != config_.channel) return false;
  if (ticket.ticket.user_in != it->second.user_in) return false;
  if (ticket.ticket.net_addr != it->second.addr) return false;

  it->second.ticket_expiry = ticket.ticket.expiry_time;
  return true;
}

std::vector<util::NodeId> Peer::evict_expired(util::SimTime now) {
  std::vector<util::NodeId> evicted;
  for (auto it = children_.begin(); it != children_.end();) {
    if (now > it->second.ticket_expiry) {
      evicted.push_back(it->first);
      it = children_.erase(it);
    } else {
      ++it;
    }
  }
  return evicted;
}

void Peer::drop_child(util::NodeId child) { children_.erase(child); }
void Peer::drop_parent(util::NodeId parent) { parents_.erase(parent); }

core::JoinRequest Peer::make_join_request(const core::SignedChannelTicket& ticket,
                                          std::uint32_t substream_mask) const {
  core::JoinRequest req;
  req.channel_ticket = ticket.encode();
  req.substream_mask = substream_mask;
  return req;
}

bool Peer::complete_join(util::NodeId parent, const core::JoinResponse& resp) {
  if (resp.error != DrmError::kOk) return false;
  const auto session_bytes = crypto::rsa_decrypt(keys_pair_.priv, resp.encrypted_session_key);
  if (!session_bytes) return false;
  const auto session = core::SessionKey::from_bytes(*session_bytes);
  if (!session) return false;

  parents_[parent] = ParentLink{*session};
  if (!resp.encrypted_content_key.empty()) {
    const auto key = core::unwrap_content_key(resp.encrypted_content_key, *session);
    if (!key) return false;
    install_key(*key);
  }
  return true;
}

void Peer::install_key(const core::ContentKey& key) {
  if (keys_.contains(key.serial)) return;
  keys_[key.serial] = key;
  key_order_.push_back(key.serial);
  while (key_order_.size() > kMaxKeys) {
    keys_.erase(key_order_.front());
    key_order_.erase(key_order_.begin());
  }
}

util::Bytes Peer::wrap_for_child(ChildLink& link, const core::ContentKey& key) {
  return core::wrap_content_key(key, link.session, link.wrap_counter++);
}

std::vector<Outgoing> Peer::announce_key(const core::ContentKey& key) {
  install_key(key);
  std::vector<Outgoing> out;
  out.reserve(children_.size());
  for (auto& [node, link] : children_) {
    out.push_back({node, wrap_for_child(link, key)});
  }
  return out;
}

std::vector<Outgoing> Peer::handle_key_blob(util::NodeId from, util::BytesView blob) {
  const auto parent_it = parents_.find(from);
  if (parent_it == parents_.end()) return {};
  const auto key = core::unwrap_content_key(blob, parent_it->second.session);
  if (!key) return {};
  // Duplicate-serial discard: with multi-parent sub-stream delivery the same
  // key arrives once per parent; only the first copy propagates.
  if (keys_.contains(key->serial)) return {};
  install_key(*key);
  if (install_listener_) install_listener_(*key);

  std::vector<Outgoing> out;
  out.reserve(children_.size());
  for (auto& [node, link] : children_) {
    out.push_back({node, wrap_for_child(link, *key)});
  }
  return out;
}

std::optional<util::Bytes> Peer::decrypt(const core::ContentPacket& packet) const {
  const auto it = keys_.find(packet.key_serial);
  if (it == keys_.end()) return std::nullopt;
  return core::decrypt_packet(it->second, packet);
}

std::vector<util::NodeId> Peer::forward_targets() const {
  std::vector<util::NodeId> out;
  out.reserve(children_.size());
  for (const auto& [node, link] : children_) out.push_back(node);
  return out;
}

std::vector<util::NodeId> Peer::forward_targets_for(std::uint64_t seq) const {
  const std::size_t substreams = std::max<std::size_t>(1, config_.substreams);
  const std::uint32_t bit = 1u << (seq % substreams % 32);
  std::vector<util::NodeId> out;
  for (const auto& [node, link] : children_) {
    if (link.substream_mask & bit) out.push_back(node);
  }
  return out;
}

std::vector<util::NodeId> Peer::parents() const {
  std::vector<util::NodeId> out;
  out.reserve(parents_.size());
  for (const auto& [node, link] : parents_) out.push_back(node);
  return out;
}

}  // namespace p2pdrm::p2p
