// Per-channel peer directory backing the Channel Manager's peer lists.
//
// The Channel Manager returns, with each Channel Ticket, "a list of peers
// from whom the client can obtain a channel signal". The tracker keeps the
// membership of every channel overlay with a coarse load signal (current
// child count vs capacity) and samples candidate parents, preferring peers
// with spare capacity. Sampling is randomized so the tree keeps spreading.
//
// Thread safety: every public method takes the tracker's mutex. On a live
// transport the tracker is genuinely shared — Channel Manager handler loops
// sample peers while root join-observers push load updates and the control
// loop sweeps stale entries.
#pragma once

#include <map>
#include <mutex>
#include <vector>

#include "core/messages.h"
#include "crypto/chacha20.h"
#include "obs/registry.h"
#include "services/channel_manager.h"
#include "util/ids.h"

namespace p2pdrm::p2p {

class Tracker : public services::PeerDirectory {
 public:
  /// Admission limits — the Sybil-flood defense. Zero values disable a
  /// limit, which is the historical (unbounded) behaviour. Re-announcing an
  /// already-known peer is a keep-alive and is never limited; the limits
  /// only apply to *new* identities.
  struct Limits {
    /// Hard cap on distinct peers per channel (0 = unbounded).
    std::size_t max_peers_per_channel = 0;
    /// At most `registration_burst` new identities per source address per
    /// `registration_window` (both must be > 0 to take effect). A flood
    /// from one source is throttled; distinct honest sources are not.
    std::size_t registration_burst = 0;
    util::SimTime registration_window = 0;
  };

  explicit Tracker(crypto::SecureRandom rng);

  void set_limits(Limits limits);

  /// Announce a peer carrying `channel` with the given child capacity.
  /// `now` stamps the peer's liveness (see evict_stale). Returns false when
  /// an admission limit rejected the registration (counted under
  /// tracker.rejected.*); keep-alives of known peers always succeed.
  bool register_peer(util::ChannelId channel, core::PeerInfo info, std::size_t capacity,
                     util::SimTime now = 0);
  /// Update a peer's current load (child count); doubles as a keep-alive.
  void update_load(util::ChannelId channel, util::NodeId node, std::size_t children,
                   util::SimTime now = 0);
  void unregister_peer(util::ChannelId channel, util::NodeId node);

  /// Drop every peer not heard from since `cutoff` — the defense against
  /// ungraceful departures (crash, power loss, NAT rebind): such peers
  /// never unregister, and without eviction a churn storm would leave the
  /// directory full of dead parents that every joiner must time out on.
  /// Returns the number of peers evicted across all channels.
  std::size_t evict_stale(util::SimTime cutoff);

  /// PeerDirectory: random sample preferring peers with spare capacity;
  /// falls back to loaded peers only if there are not enough spare ones
  /// (joiners will then see kNoCapacity and retry — this is what couples
  /// JOIN latency weakly to system load).
  std::vector<core::PeerInfo> sample_peers(util::ChannelId channel,
                                           std::size_t max_peers,
                                           util::NetAddr requester) override;

  std::size_t peer_count(util::ChannelId channel) const;
  /// Fraction of total capacity currently used on a channel (0 if empty).
  double utilization(util::ChannelId channel) const;

  /// Registrations rejected by the per-source rate limit / channel cap.
  std::uint64_t rejected_rate() const;
  std::uint64_t rejected_capacity() const;

  /// Mirror directory activity into `registry` (tracker.* counters; the
  /// live membership size as a gauge). Pass nullptr to stop.
  void bind_registry(obs::Registry* registry);

 private:
  struct PeerState {
    core::PeerInfo info;
    std::size_t capacity = 0;
    std::size_t children = 0;
    util::SimTime last_seen = 0;
  };

  /// Rolling per-source admission window (see Limits::registration_burst).
  struct SourceWindow {
    util::SimTime start = 0;
    std::size_t count = 0;
  };

  mutable std::mutex mu_;
  std::map<util::ChannelId, std::map<util::NodeId, PeerState>> channels_;
  Limits limits_;
  std::map<std::uint32_t, SourceWindow> source_windows_;
  std::uint64_t rejected_rate_ = 0;
  std::uint64_t rejected_capacity_ = 0;
  crypto::SecureRandom rng_;

  // Registry mirrors (null until bind_registry).
  obs::Counter* m_announcements_ = nullptr;
  obs::Counter* m_load_updates_ = nullptr;
  obs::Counter* m_unregisters_ = nullptr;
  obs::Counter* m_evictions_ = nullptr;
  obs::Counter* m_samples_ = nullptr;
  obs::Counter* m_rejected_rate_ = nullptr;
  obs::Counter* m_rejected_capacity_ = nullptr;
  obs::Gauge* m_peers_ = nullptr;
};

}  // namespace p2pdrm::p2p
