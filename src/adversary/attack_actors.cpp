#include "adversary/attack_actors.h"

#include "core/messages.h"

namespace p2pdrm::adversary {

// --- AttackClient ---

AttackClient::AttackClient(net::Network& network, util::NodeId node,
                           util::NetAddr addr)
    : network_(network), node_(node), addr_(addr) {
  network_.attach(node_, addr_, this);
}

AttackClient::~AttackClient() {
  if (network_.attached(node_)) network_.detach(node_);
}

void AttackClient::expect(std::uint64_t request_id, util::SimTime timeout,
                          Handler on_reply) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    pending_[request_id] = std::move(on_reply);
  }
  // The timeout races the response on this node's own loop; whichever
  // erases the pending entry first owns the single handler invocation.
  network_.post(node_, timeout, [this, request_id] {
    Handler handler;
    {
      std::lock_guard<std::mutex> lk(mu_);
      const auto it = pending_.find(request_id);
      if (it == pending_.end()) return;  // response won the race
      handler = std::move(it->second);
      pending_.erase(it);
    }
    handler(nullptr);
  });
}

void AttackClient::send(util::NodeId to, net::MsgKind kind, util::Bytes payload,
                        util::SimTime timeout, Handler on_reply) {
  net::Envelope env;
  env.kind = kind;
  {
    std::lock_guard<std::mutex> lk(mu_);
    env.request_id = next_id_++;
  }
  env.payload = std::move(payload);
  expect(env.request_id, timeout, std::move(on_reply));
  network_.send(node_, to, env.encode());
}

void AttackClient::replay(util::NodeId to, const util::Bytes& wire,
                          util::SimTime timeout, Handler on_reply) {
  const auto env = net::Envelope::decode(wire);
  if (!env) {
    on_reply(nullptr);
    return;
  }
  expect(env->request_id, timeout, std::move(on_reply));
  network_.send(node_, to, wire);
}

void AttackClient::on_packet(const net::Packet& packet) {
  const auto env = net::Envelope::decode(packet.data);
  if (!env) return;  // the fuzzer can chew our own responses; shrug
  Handler handler;
  {
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = pending_.find(env->request_id);
    if (it == pending_.end()) return;  // stale or unsolicited
    handler = std::move(it->second);
    pending_.erase(it);
  }
  handler(&*env);
}

// --- RoguePeer ---

RoguePeer::RoguePeer(net::Network& network, util::NodeId node, util::NetAddr addr,
                     bool withhold_keys, crypto::SecureRandom rng)
    : network_(network), node_(node), addr_(addr), withhold_keys_(withhold_keys),
      rng_(std::move(rng)) {
  network_.attach(node_, addr_, this);
}

RoguePeer::~RoguePeer() {
  if (network_.attached(node_)) network_.detach(node_);
}

void RoguePeer::on_packet(const net::Packet& packet) {
  const auto env = net::Envelope::decode(packet.data);
  if (!env) return;
  switch (env->kind) {
    case net::MsgKind::kJoinRequest: {
      // Grant every join without even reading the ticket — a rogue parent
      // wants children. The "session key" is noise the child's private key
      // will never unwrap, so complete_join fails and the honest client
      // walks on to the next candidate: that walk is the collateral this
      // attack charges.
      joins_captured_.fetch_add(1, std::memory_order_relaxed);
      core::JoinResponse resp;
      resp.error = core::DrmError::kOk;
      {
        std::lock_guard<std::mutex> lk(mu_);
        resp.encrypted_session_key = rng_.bytes(64);
        resp.encrypted_content_key = rng_.bytes(48);
      }
      net::Envelope reply;
      reply.kind = net::MsgKind::kJoinResponse;
      reply.request_id = env->request_id;
      reply.payload = resp.encode();
      network_.send(node_, packet.from, reply.encode());
      return;
    }
    case net::MsgKind::kKeyBlob:
      // Pollution by omission: rotated keys stop here instead of reaching
      // any child (withhold mode) — or are simply irrelevant because no
      // child ever completed a join (garbage mode).
      if (withhold_keys_) keys_withheld_.fetch_add(1, std::memory_order_relaxed);
      return;
    default:
      return;  // content and everything else: silently absorbed
  }
}

}  // namespace p2pdrm::adversary
