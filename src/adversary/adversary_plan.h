// Adversary plan: a deterministic schedule of typed attacks to launch
// against a running Deployment — the hostile mirror of fault::FaultPlan.
// Built programmatically (fluent builder) or parsed from the same
// line-based text format so attack scenarios can live in files:
//
//   # time  verb          args...
//   1m      replay-probe  victim@abuse.example pw-victim 1
//   2m      fuzz          30s 0.05 10.254.0.0/16
//   3m      rogue-peer    1 2 garbage          # channel count mode
//   4m      sybil         1 64 10.66.0.0/16 4  # channel count block sources
//   5m      cred-share    shared@abuse.example pw-shared 1 3 8m
//
// Times are durations since the simulation epoch, in fault-plan syntax
// ("500ms", "90s", "10m", "2h", or bare microseconds). Blank lines and #
// comments are ignored. The plan itself does nothing —
// adversary::AdversaryEngine turns it into scheduled attack actors.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "fault/fault_plan.h"
#include "util/ids.h"
#include "util/time.h"

namespace p2pdrm::adversary {

enum class AttackKind : std::uint8_t {
  kReplayProbe,  // capture a victim's tickets; mutate and re-present them
                 // across all five protocol rounds
  kFuzz,         // truncate/bit-flip live wire traffic inside a scope
  kRoguePeer,    // malicious overlay parents: bogus join grants, withheld keys
  kSybilFlood,   // bogus peer identities hammered at the tracker
  kCredShare,    // one account, many concurrent sessions (sharing ring)
};

std::string_view to_string(AttackKind k);

/// How a rogue peer misbehaves once children attach to it.
enum class RogueMode : std::uint8_t {
  kGarbageKeys,   // grants joins with undecryptable key material
  kWithholdKeys,  // swallows every rotated-key blob instead of forwarding
};

std::string_view to_string(RogueMode m);

struct AdversaryEvent {
  util::SimTime at = 0;
  AttackKind kind = AttackKind::kReplayProbe;
  std::string email;               // replay-probe victim / cred-share account
  std::string password;
  util::ChannelId channel = 0;
  std::size_t count = 0;           // sybil identities / rogue peers / ring size
  std::size_t sources = 0;         // sybil: distinct source addresses used
  fault::AddrBlock scope;          // fuzz blast radius / sybil source block
  double rate = 0.0;               // fuzz mutation probability per packet
  util::SimTime duration = 0;      // fuzz window / cred-share renewal delay
  RogueMode mode = RogueMode::kGarbageKeys;

  /// One schedule line, parseable back by AdversaryPlan::parse.
  std::string to_string() const;
};

class AdversaryPlan {
 public:
  /// Provision a victim account, let it view `channel`, then capture,
  /// mutate, and re-present its tickets across LOGIN1/LOGIN2/SWITCH1/
  /// SWITCH2/JOIN from an attacker address.
  AdversaryPlan& replay_probe(util::SimTime at, std::string email,
                              std::string password, util::ChannelId channel);
  /// Truncate or bit-flip each packet touching `scope` with probability
  /// `rate` for `duration` (seeded; the never-silent drop counters must
  /// account for every mutation).
  AdversaryPlan& fuzz(util::SimTime at, util::SimTime duration,
                      fault::AddrBlock scope, double rate);
  /// Insert `count` malicious parents into `channel`'s overlay.
  AdversaryPlan& rogue_peer(util::SimTime at, util::ChannelId channel,
                            std::size_t count,
                            RogueMode mode = RogueMode::kGarbageKeys);
  /// Register `count` bogus identities against the tracker from `sources`
  /// distinct addresses inside `block`.
  AdversaryPlan& sybil_flood(util::SimTime at, util::ChannelId channel,
                             std::size_t count, fault::AddrBlock block,
                             std::size_t sources = 1);
  /// Drive `count` concurrent sessions on one account from different
  /// regions; every member renews `renew_after` later (the single-session
  /// rule must leave at most one survivor).
  AdversaryPlan& cred_share(util::SimTime at, std::string email,
                            std::string password, util::ChannelId channel,
                            std::size_t count, util::SimTime renew_after);

  /// Events sorted by time (stable: same-time events keep insertion order).
  const std::vector<AdversaryEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }

  /// Parse the text schedule format. Throws std::invalid_argument with a
  /// line number on malformed input.
  static AdversaryPlan parse(std::string_view text);
  /// Render as the text schedule format (parse round-trips).
  std::string to_string() const;

 private:
  AdversaryPlan& push(AdversaryEvent ev);
  std::vector<AdversaryEvent> events_;
};

}  // namespace p2pdrm::adversary
