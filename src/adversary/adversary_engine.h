// Adversary engine: executes an AdversaryPlan against a live Deployment —
// the hostile mirror of fault::FaultEngine. Replay probes steal a real
// victim's tickets off the wire and re-present them (mutated and verbatim)
// across every protocol round from an attacker address; the fuzzer
// truncates/bit-flips live traffic through the net::SendInterceptor
// payload-replacement seam; rogue peers and Sybil identities attack the
// overlay and its tracker; credential-sharing rings drive concurrent
// sessions on one account until the ViewingLog's single-session rule
// evicts them. Everything is deterministic: the engine draws from its own
// forked DRBG, so the same (seed, plan) pair replays the exact same probe
// outcomes and the exact same AbuseReport on the sim backend.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "adversary/adversary_plan.h"
#include "adversary/attack_actors.h"
#include "net/deployment.h"

namespace p2pdrm::adversary {

struct AdversaryEngineConfig {
  /// Seed of the engine's own DRBG (fuzz coin flips, forged nonces, attack
  /// addresses). Independent of the deployment's stream so arming a plan
  /// never perturbs the honest workload's random sequence.
  std::uint64_t seed = 0xab05ed;
  /// How long a probe waits for the service's answer before counting the
  /// silence as a rejection.
  util::SimTime probe_timeout = 2 * util::kSecond;
  /// Region replay-probe victims log in from (regional channels deny
  /// out-of-region accounts). Default: the geo plan's first region.
  std::optional<geo::RegionId> victim_region;
};

/// One forgery/replay attempt and how the defense answered it.
struct ProbeOutcome {
  std::string probe;    // stable label, e.g. "switch2-replay"
  std::string outcome;  // "accepted" | "timeout" | DrmError name
};

/// Node-id ranges for attacker actors, far above kClientBase so they can
/// never collide with honest clients or farm instances.
inline constexpr util::NodeId kAttackClientBase = 0x40000000;
inline constexpr util::NodeId kRoguePeerBase = 0x48000000;
inline constexpr util::NodeId kSybilBase = 0x50000000;

class AdversaryEngine final : public net::SendInterceptor {
 public:
  /// Does not attack anything yet; call arm() once the deployment is
  /// provisioned (events are scheduled at absolute transport times, so arm
  /// before running past the first one).
  AdversaryEngine(net::Deployment& deployment, AdversaryPlan plan,
                  AdversaryEngineConfig config = {});
  ~AdversaryEngine() override;

  AdversaryEngine(const AdversaryEngine&) = delete;
  AdversaryEngine& operator=(const AdversaryEngine&) = delete;

  /// Join the network's interceptor chain and schedule every plan event.
  /// Idempotent.
  void arm();

  const AdversaryPlan& plan() const { return plan_; }

  // net::SendInterceptor: wire capture (replay probes) + fuzz mutation.
  Verdict on_send(const net::SendContext& ctx) override;

  /// Human-readable record of every attack launched, in injection order.
  /// Deterministic on the sim backend; read only after the run on a live one.
  std::vector<std::string> log() const;

  // --- forgery / replay accounting -------------------------------------

  std::uint64_t probes_sent() const { return probes_sent_.load(std::memory_order_relaxed); }
  /// Probes the services granted a ticket / session to. The abuse gate is
  /// this being zero.
  std::uint64_t probes_accepted() const { return probes_accepted_.load(std::memory_order_relaxed); }
  std::uint64_t probes_rejected() const { return probes_rejected_.load(std::memory_order_relaxed); }
  std::uint64_t probes_timed_out() const { return probes_timed_out_.load(std::memory_order_relaxed); }
  std::vector<ProbeOutcome> probe_outcomes() const;

  // --- fuzz accounting ---------------------------------------------------

  /// Packets this engine truncated or bit-flipped (Verdict::replace).
  std::uint64_t fuzz_mutations() const { return fuzz_mutations_.load(std::memory_order_relaxed); }

  // --- overlay attacks ---------------------------------------------------

  const std::vector<std::unique_ptr<RoguePeer>>& rogues() const { return rogues_; }
  std::uint64_t sybil_attempted() const { return sybil_attempted_.load(std::memory_order_relaxed); }
  /// Identities the tracker admitted (bounded by its Limits — ideally far
  /// below attempted).
  std::uint64_t sybil_admitted() const { return sybil_admitted_.load(std::memory_order_relaxed); }
  std::uint64_t sybil_rejected() const { return sybil_rejected_.load(std::memory_order_relaxed); }

  // --- credential-sharing ring -------------------------------------------

  /// Ring members (owned by the deployment; includes evicted ones).
  const std::vector<net::AsyncClient*>& ring() const { return ring_; }
  std::uint64_t ring_logins_ok() const { return ring_logins_ok_.load(std::memory_order_relaxed); }
  std::uint64_t ring_switches_ok() const { return ring_switches_ok_.load(std::memory_order_relaxed); }
  /// Renewal outcomes: at most one member may renew (the survivor); the
  /// rest must be refused — that refusal is the eviction.
  std::uint64_t ring_renewals_ok() const { return ring_renewals_ok_.load(std::memory_order_relaxed); }
  std::uint64_t ring_renewals_refused() const { return ring_renewals_refused_.load(std::memory_order_relaxed); }
  /// Per-member final state, ring order: "renewed" | "refused:<err>" |
  /// "login-failed:<err>" | "switch-failed:<err>" | "pending".
  std::vector<std::string> ring_outcomes() const;

 private:
  struct FuzzWindow {
    fault::AddrBlock scope;
    double rate = 0.0;
    util::SimTime until = 0;
  };
  /// State of one replay-probe chain (shared by its async continuations).
  struct ProbeRun;

  void apply(const AdversaryEvent& ev);
  void launch_replay_probe(const AdversaryEvent& ev);
  void run_probe_chain(std::shared_ptr<ProbeRun> run, std::size_t step);
  void launch_rogue_peers(const AdversaryEvent& ev);
  void launch_sybil_flood(const AdversaryEvent& ev);
  void launch_cred_share(const AdversaryEvent& ev);
  void note(const std::string& line);
  void record_probe(const std::string& probe, const net::Envelope* resp,
                    net::MsgKind expect);
  /// Corrupt `data` in place: truncate or bit-flip (caller holds mu_).
  util::Bytes corrupt_locked(const util::Bytes& data);

  net::Deployment& dep_;
  AdversaryPlan plan_;
  AdversaryEngineConfig config_;
  bool armed_ = false;

  /// Guards the fuzz windows, capture state, DRBG, log, and outcome lists:
  /// on_send runs concurrently from every sender loop on a live transport
  /// while apply() and probe callbacks run on control/actor loops.
  mutable std::mutex mu_;
  crypto::SecureRandom rng_;
  std::vector<FuzzWindow> fuzz_windows_;
  /// When set, on_send captures the next kSwitch2Request sent from this
  /// address (the victim's second switch round) verbatim.
  std::optional<util::NetAddr> capture_from_;
  std::optional<util::Bytes> captured_switch2_;
  std::vector<std::string> log_;
  std::vector<ProbeOutcome> probe_outcomes_;
  std::vector<std::string> ring_outcomes_;

  std::vector<std::unique_ptr<AttackClient>> attackers_;
  std::vector<std::unique_ptr<RoguePeer>> rogues_;
  std::vector<net::AsyncClient*> ring_;
  util::NodeId next_attacker_ = kAttackClientBase;
  util::NodeId next_rogue_ = kRoguePeerBase;
  util::NodeId next_sybil_ = kSybilBase;

  std::atomic<std::uint64_t> probes_sent_{0};
  std::atomic<std::uint64_t> probes_accepted_{0};
  std::atomic<std::uint64_t> probes_rejected_{0};
  std::atomic<std::uint64_t> probes_timed_out_{0};
  std::atomic<std::uint64_t> fuzz_mutations_{0};
  std::atomic<std::uint64_t> sybil_attempted_{0};
  std::atomic<std::uint64_t> sybil_admitted_{0};
  std::atomic<std::uint64_t> sybil_rejected_{0};
  std::atomic<std::uint64_t> ring_logins_ok_{0};
  std::atomic<std::uint64_t> ring_switches_ok_{0};
  std::atomic<std::uint64_t> ring_renewals_ok_{0};
  std::atomic<std::uint64_t> ring_renewals_refused_{0};

  // Registry mirrors (bound at construction; the deployment's registry
  // outlives the engine).
  obs::Counter* m_probes_sent_ = nullptr;
  obs::Counter* m_probes_accepted_ = nullptr;
  obs::Counter* m_probes_rejected_ = nullptr;
  obs::Counter* m_probes_timed_out_ = nullptr;
  obs::Counter* m_fuzz_mutations_ = nullptr;
  obs::Counter* m_sybil_admitted_ = nullptr;
  obs::Counter* m_sybil_rejected_ = nullptr;
  obs::Counter* m_ring_evictions_ = nullptr;
  obs::Counter* m_ring_survivors_ = nullptr;
};

}  // namespace p2pdrm::adversary
