#include "adversary/abuse_report.h"

#include <set>

namespace p2pdrm::adversary {

namespace {

/// Tiny fixed-shape JSON builder. The report's field order is part of the
/// artifact contract (byte-stable across runs), so everything is appended
/// explicitly — no map iteration, no locale-dependent formatting.
class Json {
 public:
  void raw(const std::string& s) { out_ += s; }
  void quoted(const std::string& s) {
    out_ += '"';
    for (const char c : s) {
      if (c == '"' || c == '\\') out_ += '\\';
      out_ += c;
    }
    out_ += '"';
  }
  void kv(const char* key, std::uint64_t v, bool last = false) {
    pair(key);
    out_ += std::to_string(v);
    if (!last) out_ += ", ";
  }
  void kv(const char* key, const std::string& v, bool last = false) {
    pair(key);
    quoted(v);
    if (!last) out_ += ", ";
  }
  void kv(const char* key, bool v, bool last = false) {
    pair(key);
    out_ += v ? "true" : "false";
    if (!last) out_ += ", ";
  }
  void pair(const char* key) {
    out_ += '"';
    out_ += key;
    out_ += "\": ";
  }
  std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

}  // namespace

AbuseReport AbuseReport::collect(net::Deployment& deployment,
                                 const AdversaryEngine& engine,
                                 std::uint64_t seed) {
  AbuseReport r;
  r.seed = seed;
  r.transport = deployment.live() ? "thread" : "sim";

  r.probes_sent = engine.probes_sent();
  r.probes_accepted = engine.probes_accepted();
  r.probes_rejected = engine.probes_rejected();
  r.probes_timed_out = engine.probes_timed_out();
  r.probes = engine.probe_outcomes();

  r.fuzz_mutations = engine.fuzz_mutations();
  r.packets_mutated = deployment.network().packets_mutated();
  if (const obs::Counter* c =
          deployment.registry().find_counter("server.drops{malformed}")) {
    r.malformed_drops = c->value();
  }

  r.rogue_peers = engine.rogues().size();
  for (const std::unique_ptr<RoguePeer>& rogue : engine.rogues()) {
    r.rogue_joins_granted += rogue->joins_captured();
    r.rogue_keys_withheld += rogue->keys_withheld();
  }

  r.sybil_attempted = engine.sybil_attempted();
  r.sybil_admitted = engine.sybil_admitted();
  r.tracker_rejected_rate = deployment.tracker().rejected_rate();
  r.tracker_rejected_capacity = deployment.tracker().rejected_capacity();

  r.ring_members = engine.ring().size();
  r.ring_logins_ok = engine.ring_logins_ok();
  r.ring_switches_ok = engine.ring_switches_ok();
  r.ring_renewals_ok = engine.ring_renewals_ok();
  r.ring_renewals_refused = engine.ring_renewals_refused();
  r.ring_outcomes = engine.ring_outcomes();
  for (std::size_t p = 0; p < deployment.partition_count(); ++p) {
    r.viewing_entries += deployment.cm_partition(static_cast<std::uint32_t>(p))
                             .log.size();
  }

  const std::set<const net::AsyncClient*> ring(engine.ring().begin(),
                                               engine.ring().end());
  for (const std::unique_ptr<net::AsyncClient>& client : deployment.clients()) {
    if (ring.count(client.get()) != 0) continue;
    ++r.honest_clients;
    if (!client->departed() && client->channel_ticket()) ++r.honest_with_ticket;
    r.honest_content_decrypted += client->content_decrypted();
    r.honest_timeout_exhaustions += client->timeout_exhaustions();
  }

  std::uint64_t rings = 0;
  for (const AdversaryEvent& ev : engine.plan().events()) {
    if (ev.kind == AttackKind::kCredShare) ++rings;
  }
  r.gate_no_forgery = r.probes_accepted == 0;
  // At most one surviving session per shared account (one ring = one
  // account): a second survivor is a dual session the journal missed.
  r.gate_single_session = r.ring_renewals_ok <= rings;
  // Every honest client ends the run still holding its Channel Ticket —
  // the attacks may slow them down, never push them out.
  r.gate_bounded_collateral =
      r.honest_clients == 0 || r.honest_with_ticket == r.honest_clients;
  return r;
}

std::string AbuseReport::to_json() const {
  Json j;
  j.raw("{");
  j.kv("schema", std::string("p2pdrm.abuse.v1"));
  j.kv("seed", seed);
  j.kv("transport", transport);

  j.pair("forgery");
  j.raw("{");
  j.kv("sent", probes_sent);
  j.kv("accepted", probes_accepted);
  j.kv("rejected", probes_rejected);
  j.kv("timed_out", probes_timed_out);
  j.pair("probes");
  j.raw("[");
  for (std::size_t i = 0; i < probes.size(); ++i) {
    if (i != 0) j.raw(", ");
    j.raw("{");
    j.kv("probe", probes[i].probe);
    j.kv("outcome", probes[i].outcome, /*last=*/true);
    j.raw("}");
  }
  j.raw("]}, ");

  j.pair("fuzz");
  j.raw("{");
  j.kv("mutations", fuzz_mutations);
  j.kv("packets_mutated", packets_mutated);
  j.kv("malformed_drops", malformed_drops, /*last=*/true);
  j.raw("}, ");

  j.pair("rogue");
  j.raw("{");
  j.kv("peers", rogue_peers);
  j.kv("joins_granted", rogue_joins_granted);
  j.kv("keys_withheld", rogue_keys_withheld, /*last=*/true);
  j.raw("}, ");

  j.pair("sybil");
  j.raw("{");
  j.kv("attempted", sybil_attempted);
  j.kv("admitted", sybil_admitted);
  j.kv("rejected_rate", tracker_rejected_rate);
  j.kv("rejected_capacity", tracker_rejected_capacity, /*last=*/true);
  j.raw("}, ");

  j.pair("cred_share");
  j.raw("{");
  j.kv("members", ring_members);
  j.kv("logins_ok", ring_logins_ok);
  j.kv("switches_ok", ring_switches_ok);
  j.kv("renewals_ok", ring_renewals_ok);
  j.kv("renewals_refused", ring_renewals_refused);
  j.pair("outcomes");
  j.raw("[");
  for (std::size_t i = 0; i < ring_outcomes.size(); ++i) {
    if (i != 0) j.raw(", ");
    j.quoted(ring_outcomes[i]);
  }
  j.raw("], ");
  j.kv("viewing_entries", viewing_entries, /*last=*/true);
  j.raw("}, ");

  j.pair("collateral");
  j.raw("{");
  j.kv("honest_clients", honest_clients);
  j.kv("with_ticket", honest_with_ticket);
  j.kv("content_decrypted", honest_content_decrypted);
  j.kv("timeout_exhaustions", honest_timeout_exhaustions, /*last=*/true);
  j.raw("}, ");

  j.pair("gates");
  j.raw("{");
  j.kv("no_forgery", gate_no_forgery);
  j.kv("single_session", gate_single_session);
  j.kv("bounded_collateral", gate_bounded_collateral);
  j.kv("pass", pass(), /*last=*/true);
  j.raw("}}");

  std::string out = j.take();
  out += '\n';
  return out;
}

}  // namespace p2pdrm::adversary
