#include "adversary/adversary_plan.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <sstream>
#include <stdexcept>

namespace p2pdrm::adversary {

namespace {

[[noreturn]] void bad(const std::string& what) {
  throw std::invalid_argument("AdversaryPlan: " + what);
}

double parse_double(std::string_view s, const std::string& what) {
  try {
    std::size_t used = 0;
    const double v = std::stod(std::string(s), &used);
    if (used != s.size()) bad("trailing junk in " + what + ": '" + std::string(s) + "'");
    return v;
  } catch (const std::invalid_argument&) {
    bad("malformed " + what + ": '" + std::string(s) + "'");
  } catch (const std::out_of_range&) {
    bad("out-of-range " + what + ": '" + std::string(s) + "'");
  }
}

std::uint64_t parse_uint(std::string_view s, const std::string& what) {
  std::uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    bad("malformed " + what + ": '" + std::string(s) + "'");
  }
  return v;
}

/// Byte-stable rendering of the fuzz rate (ostream double formatting is
/// locale/width dependent; the plan must round-trip byte-identically).
std::string format_rate(double rate) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", rate);
  return buf;
}

}  // namespace

std::string_view to_string(AttackKind k) {
  switch (k) {
    case AttackKind::kReplayProbe: return "replay-probe";
    case AttackKind::kFuzz: return "fuzz";
    case AttackKind::kRoguePeer: return "rogue-peer";
    case AttackKind::kSybilFlood: return "sybil";
    case AttackKind::kCredShare: return "cred-share";
  }
  return "?";
}

std::string_view to_string(RogueMode m) {
  return m == RogueMode::kGarbageKeys ? "garbage" : "withhold";
}

std::string AdversaryEvent::to_string() const {
  std::ostringstream out;
  out << fault::format_duration(at) << " " << adversary::to_string(kind);
  switch (kind) {
    case AttackKind::kReplayProbe:
      out << " " << email << " " << password << " " << channel;
      break;
    case AttackKind::kFuzz:
      out << " " << fault::format_duration(duration) << " " << format_rate(rate)
          << " " << scope.to_string();
      break;
    case AttackKind::kRoguePeer:
      out << " " << channel << " " << count << " " << adversary::to_string(mode);
      break;
    case AttackKind::kSybilFlood:
      out << " " << channel << " " << count << " " << scope.to_string() << " "
          << sources;
      break;
    case AttackKind::kCredShare:
      out << " " << email << " " << password << " " << channel << " " << count
          << " " << fault::format_duration(duration);
      break;
  }
  return out.str();
}

AdversaryPlan& AdversaryPlan::push(AdversaryEvent ev) {
  // Stable insert keeps the vector time-sorted while same-time events
  // preserve plan order (determinism hinges on this).
  const auto pos = std::upper_bound(
      events_.begin(), events_.end(), ev.at,
      [](util::SimTime at, const AdversaryEvent& e) { return at < e.at; });
  events_.insert(pos, std::move(ev));
  return *this;
}

AdversaryPlan& AdversaryPlan::replay_probe(util::SimTime at, std::string email,
                                           std::string password,
                                           util::ChannelId channel) {
  AdversaryEvent ev;
  ev.at = at;
  ev.kind = AttackKind::kReplayProbe;
  ev.email = std::move(email);
  ev.password = std::move(password);
  ev.channel = channel;
  return push(std::move(ev));
}

AdversaryPlan& AdversaryPlan::fuzz(util::SimTime at, util::SimTime duration,
                                   fault::AddrBlock scope, double rate) {
  if (rate < 0.0 || rate > 1.0) bad("fuzz rate outside [0, 1]");
  AdversaryEvent ev;
  ev.at = at;
  ev.kind = AttackKind::kFuzz;
  ev.duration = duration;
  ev.scope = scope;
  ev.rate = rate;
  return push(std::move(ev));
}

AdversaryPlan& AdversaryPlan::rogue_peer(util::SimTime at, util::ChannelId channel,
                                         std::size_t count, RogueMode mode) {
  AdversaryEvent ev;
  ev.at = at;
  ev.kind = AttackKind::kRoguePeer;
  ev.channel = channel;
  ev.count = count;
  ev.mode = mode;
  return push(std::move(ev));
}

AdversaryPlan& AdversaryPlan::sybil_flood(util::SimTime at, util::ChannelId channel,
                                          std::size_t count, fault::AddrBlock block,
                                          std::size_t sources) {
  if (sources == 0) bad("sybil flood needs at least one source address");
  AdversaryEvent ev;
  ev.at = at;
  ev.kind = AttackKind::kSybilFlood;
  ev.channel = channel;
  ev.count = count;
  ev.scope = block;
  ev.sources = sources;
  return push(std::move(ev));
}

AdversaryPlan& AdversaryPlan::cred_share(util::SimTime at, std::string email,
                                         std::string password,
                                         util::ChannelId channel, std::size_t count,
                                         util::SimTime renew_after) {
  if (count == 0) bad("cred-share ring needs at least one member");
  AdversaryEvent ev;
  ev.at = at;
  ev.kind = AttackKind::kCredShare;
  ev.email = std::move(email);
  ev.password = std::move(password);
  ev.channel = channel;
  ev.count = count;
  ev.duration = renew_after;
  return push(std::move(ev));
}

AdversaryPlan AdversaryPlan::parse(std::string_view text) {
  AdversaryPlan plan;
  std::size_t line_no = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    ++line_no;
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(start, end - start);
    start = end + 1;

    if (const std::size_t hash = line.find('#'); hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    std::vector<std::string_view> tok;
    std::size_t i = 0;
    while (i < line.size()) {
      while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) ++i;
      std::size_t j = i;
      while (j < line.size() && !std::isspace(static_cast<unsigned char>(line[j]))) ++j;
      if (j > i) tok.push_back(line.substr(i, j - i));
      i = j;
    }
    if (tok.empty()) continue;

    try {
      if (tok.size() < 2) bad("expected '<time> <verb> ...'");
      const util::SimTime at = fault::parse_duration(tok[0]);
      const std::string_view verb = tok[1];
      const auto want = [&](std::size_t n) {
        if (tok.size() != 2 + n) {
          bad("verb '" + std::string(verb) + "' takes " + std::to_string(n) +
              " argument(s)");
        }
      };
      if (verb == "replay-probe") {
        want(3);
        plan.replay_probe(at, std::string(tok[2]), std::string(tok[3]),
                          static_cast<util::ChannelId>(parse_uint(tok[4], "channel")));
      } else if (verb == "fuzz") {
        want(3);
        plan.fuzz(at, fault::parse_duration(tok[2]),
                  fault::AddrBlock::parse(tok[4]), parse_double(tok[3], "fuzz rate"));
      } else if (verb == "rogue-peer") {
        want(3);
        const std::string_view mode = tok[4];
        if (mode != "garbage" && mode != "withhold") {
          bad("unknown rogue mode '" + std::string(mode) + "' (want garbage|withhold)");
        }
        plan.rogue_peer(at, static_cast<util::ChannelId>(parse_uint(tok[2], "channel")),
                        parse_uint(tok[3], "count"),
                        mode == "garbage" ? RogueMode::kGarbageKeys
                                          : RogueMode::kWithholdKeys);
      } else if (verb == "sybil") {
        want(4);
        plan.sybil_flood(at,
                         static_cast<util::ChannelId>(parse_uint(tok[2], "channel")),
                         parse_uint(tok[3], "count"), fault::AddrBlock::parse(tok[4]),
                         parse_uint(tok[5], "sources"));
      } else if (verb == "cred-share") {
        want(5);
        plan.cred_share(at, std::string(tok[2]), std::string(tok[3]),
                        static_cast<util::ChannelId>(parse_uint(tok[4], "channel")),
                        parse_uint(tok[5], "count"), fault::parse_duration(tok[6]));
      } else {
        bad("unknown verb '" + std::string(verb) + "'");
      }
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument(std::string(e.what()) + " (line " +
                                  std::to_string(line_no) + ")");
    }
  }
  return plan;
}

std::string AdversaryPlan::to_string() const {
  std::string out;
  for (const AdversaryEvent& ev : events_) {
    out += ev.to_string();
    out += '\n';
  }
  return out;
}

}  // namespace p2pdrm::adversary
