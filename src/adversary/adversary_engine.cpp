#include "adversary/adversary_engine.h"

#include "core/messages.h"
#include "crypto/rsa.h"

namespace p2pdrm::adversary {

using core::DrmError;

/// Everything one replay-probe chain needs, shared by its async
/// continuations (victim session, attacker actor, stolen material).
struct AdversaryEngine::ProbeRun {
  net::AsyncClient* victim = nullptr;
  AttackClient* attacker = nullptr;
  util::ChannelId channel = 0;
  util::NodeId cm_node = util::kInvalidNode;
  util::NodeId root_node = util::kInvalidNode;
  std::string victim_email;
  crypto::RsaKeyPair attacker_keys;
  core::SignedUserTicket user_ticket;
  core::SignedChannelTicket channel_ticket;
  util::Bytes captured_switch2;  // verbatim wire of the victim's SWITCH2
};

namespace {

/// One deterministic bit flip in the middle of a ticket's bytes — enough to
/// break either the body parse or the signature, never the outer message
/// framing (the field is length-prefixed opaque bytes).
util::Bytes flip_middle_bit(util::Bytes bytes) {
  if (!bytes.empty()) bytes[bytes.size() / 2] ^= 0x01;
  return bytes;
}

}  // namespace

AdversaryEngine::AdversaryEngine(net::Deployment& deployment, AdversaryPlan plan,
                                 AdversaryEngineConfig config)
    : dep_(deployment), plan_(std::move(plan)), config_(config),
      rng_(config.seed) {
  obs::Registry& reg = dep_.registry();
  m_probes_sent_ = &reg.counter("abuse.probes.sent");
  m_probes_accepted_ = &reg.counter("abuse.probes.accepted");
  m_probes_rejected_ = &reg.counter("abuse.probes.rejected");
  m_probes_timed_out_ = &reg.counter("abuse.probes.timeout");
  m_fuzz_mutations_ = &reg.counter("abuse.fuzz.mutations");
  m_sybil_admitted_ = &reg.counter("abuse.sybil.admitted");
  m_sybil_rejected_ = &reg.counter("abuse.sybil.rejected");
  m_ring_evictions_ = &reg.counter("abuse.ring.evictions");
  m_ring_survivors_ = &reg.counter("abuse.ring.survivors");
}

AdversaryEngine::~AdversaryEngine() {
  dep_.network().remove_interceptor(this);
}

void AdversaryEngine::arm() {
  if (armed_) return;
  armed_ = true;
  dep_.network().add_interceptor(this);
  const util::SimTime now = dep_.now();
  for (const AdversaryEvent& ev : plan_.events()) {
    const util::SimTime delay = ev.at > now ? ev.at - now : 0;
    dep_.post(delay, [this, ev] { apply(ev); });
  }
}

void AdversaryEngine::note(const std::string& line) {
  std::lock_guard<std::mutex> lk(mu_);
  log_.push_back(fault::format_duration(dep_.now()) + " " + line);
}

std::vector<std::string> AdversaryEngine::log() const {
  std::lock_guard<std::mutex> lk(mu_);
  return log_;
}

std::vector<ProbeOutcome> AdversaryEngine::probe_outcomes() const {
  std::lock_guard<std::mutex> lk(mu_);
  return probe_outcomes_;
}

std::vector<std::string> AdversaryEngine::ring_outcomes() const {
  std::lock_guard<std::mutex> lk(mu_);
  return ring_outcomes_;
}

// --- interceptor: wire capture + fuzz ------------------------------------

util::Bytes AdversaryEngine::corrupt_locked(const util::Bytes& data) {
  util::Bytes out = data;
  if (out.size() > 1 && rng_.chance(0.5)) {
    out.resize(rng_.uniform(out.size()));  // truncation, possibly to nothing
  } else if (!out.empty()) {
    const std::size_t flips = 1 + rng_.uniform(7);
    for (std::size_t i = 0; i < flips; ++i) {
      const std::size_t byte = rng_.uniform(out.size());
      out[byte] ^= static_cast<std::uint8_t>(1u << rng_.uniform(8));
    }
  }
  return out;
}

net::SendInterceptor::Verdict AdversaryEngine::on_send(const net::SendContext& ctx) {
  Verdict v;
  if (ctx.data == nullptr) return v;
  std::lock_guard<std::mutex> lk(mu_);

  if (capture_from_ && ctx.from_addr == *capture_from_ && !captured_switch2_) {
    const auto env = net::Envelope::decode(*ctx.data);
    if (env && env->kind == net::MsgKind::kSwitch2Request) {
      captured_switch2_ = *ctx.data;
      capture_from_.reset();
    }
  }

  for (const FuzzWindow& w : fuzz_windows_) {
    if (ctx.now >= w.until) continue;
    if (!w.scope.contains(ctx.from_addr) && !w.scope.contains(ctx.to_addr)) continue;
    if (!rng_.chance(w.rate)) continue;
    v.replace = corrupt_locked(*ctx.data);
    fuzz_mutations_.fetch_add(1, std::memory_order_relaxed);
    m_fuzz_mutations_->inc();
    break;  // one corruption per packet, even under overlapping windows
  }
  return v;
}

// --- event dispatch -------------------------------------------------------

void AdversaryEngine::apply(const AdversaryEvent& ev) {
  note(ev.to_string());
  switch (ev.kind) {
    case AttackKind::kReplayProbe:
      launch_replay_probe(ev);
      return;
    case AttackKind::kFuzz: {
      std::lock_guard<std::mutex> lk(mu_);
      const util::SimTime now = dep_.now();
      std::erase_if(fuzz_windows_,
                    [now](const FuzzWindow& w) { return now >= w.until; });
      fuzz_windows_.push_back({ev.scope, ev.rate, now + ev.duration});
      return;
    }
    case AttackKind::kRoguePeer:
      launch_rogue_peers(ev);
      return;
    case AttackKind::kSybilFlood:
      launch_sybil_flood(ev);
      return;
    case AttackKind::kCredShare:
      launch_cred_share(ev);
      return;
  }
}

// --- replay / forgery probes ---------------------------------------------

void AdversaryEngine::launch_replay_probe(const AdversaryEvent& ev) {
  dep_.add_user(ev.email, ev.password);
  const geo::RegionId victim_region =
      config_.victim_region.value_or(dep_.geo().region_at(0));
  net::AsyncClient& victim = dep_.add_client(ev.email, ev.password, victim_region);

  auto run = std::make_shared<ProbeRun>();
  run->victim = &victim;
  run->channel = ev.channel;
  run->victim_email = ev.email;
  run->root_node = net::Deployment::kChannelRootBase + ev.channel;
  const core::ChannelRecord* record = dep_.policy_manager().find_channel(ev.channel);
  run->cm_node = net::Deployment::kChannelManagerBase +
                 (record != nullptr ? record->partition : 0);

  // The attacker node: a different address than the victim's (the whole
  // point of the address-binding defense), in the geo plan's last region.
  util::NetAddr attacker_addr;
  const util::NodeId attacker_node = next_attacker_++;
  {
    std::lock_guard<std::mutex> lk(mu_);
    const geo::RegionId far =
        dep_.geo().region_at(dep_.geo().num_regions() - 1);
    do {
      attacker_addr = dep_.geo().sample_address(rng_, far);
    } while (attacker_addr == victim.config().addr);
    run->attacker_keys = crypto::generate_rsa_keypair(rng_, 512);
  }
  attackers_.push_back(
      std::make_unique<AttackClient>(dep_.network(), attacker_node, attacker_addr));
  run->attacker = attackers_.back().get();

  // Drive the victim through a real session on its own loop; arm the wire
  // capture just before the switch so the SWITCH2 request is stolen in
  // flight, then start the probe chain with the hot material.
  dep_.network().post(victim.config().node, 0, [this, run] {
    run->victim->login([this, run](DrmError err) {
      if (err != DrmError::kOk) {
        note("replay-probe victim login failed: " +
             std::string(core::to_string(err)));
        return;
      }
      {
        std::lock_guard<std::mutex> lk(mu_);
        capture_from_ = run->victim->config().addr;
        captured_switch2_.reset();
      }
      run->victim->switch_channel(run->channel, [this, run](DrmError err2) {
        if (err2 != DrmError::kOk) {
          note("replay-probe victim switch failed: " +
               std::string(core::to_string(err2)));
          return;
        }
        run->user_ticket = *run->victim->user_ticket();
        run->channel_ticket = *run->victim->channel_ticket();
        {
          std::lock_guard<std::mutex> lk(mu_);
          if (captured_switch2_) run->captured_switch2 = *captured_switch2_;
          capture_from_.reset();
        }
        run_probe_chain(run, 0);
      });
    });
  });
}

void AdversaryEngine::record_probe(const std::string& probe,
                                   const net::Envelope* resp,
                                   net::MsgKind expect) {
  bool accepted = false;
  std::string outcome;
  if (resp == nullptr) {
    outcome = "timeout";
  } else if (resp->kind != expect) {
    outcome = "unexpected-" + std::string(net::to_string(resp->kind));
  } else {
    try {
      switch (expect) {
        case net::MsgKind::kLogin1Response:
          outcome = core::to_string(core::Login1Response::decode(resp->payload).error);
          break;
        case net::MsgKind::kLogin2Response: {
          const auto r = core::Login2Response::decode(resp->payload);
          accepted = r.ticket.has_value();
          outcome = accepted ? "accepted" : std::string(core::to_string(r.error));
          break;
        }
        case net::MsgKind::kSwitch1Response:
          outcome = core::to_string(core::Switch1Response::decode(resp->payload).error);
          break;
        case net::MsgKind::kSwitch2Response: {
          const auto r = core::Switch2Response::decode(resp->payload);
          accepted = r.ticket.has_value();
          outcome = accepted ? "accepted" : std::string(core::to_string(r.error));
          break;
        }
        case net::MsgKind::kJoinResponse: {
          const auto r = core::JoinResponse::decode(resp->payload);
          accepted = r.error == DrmError::kOk;
          outcome = accepted ? "accepted" : std::string(core::to_string(r.error));
          break;
        }
        default:
          outcome = "unclassified";
          break;
      }
    } catch (const util::WireError&) {
      outcome = "undecodable";
    }
  }

  if (resp == nullptr) {
    probes_timed_out_.fetch_add(1, std::memory_order_relaxed);
    m_probes_timed_out_->inc();
  } else if (accepted) {
    probes_accepted_.fetch_add(1, std::memory_order_relaxed);
    m_probes_accepted_->inc();
  } else {
    probes_rejected_.fetch_add(1, std::memory_order_relaxed);
    m_probes_rejected_->inc();
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    probe_outcomes_.push_back({probe, outcome});
    log_.push_back(fault::format_duration(dep_.now()) + " probe " + probe +
                   " -> " + outcome);
  }
}

void AdversaryEngine::run_probe_chain(std::shared_ptr<ProbeRun> run,
                                      std::size_t step) {
  const auto send = [&](const char* probe, util::NodeId to, net::MsgKind kind,
                        util::Bytes payload, net::MsgKind expect) {
    probes_sent_.fetch_add(1, std::memory_order_relaxed);
    m_probes_sent_->inc();
    std::string label = probe;
    run->attacker->send(
        to, kind, std::move(payload), config_.probe_timeout,
        [this, run, label, expect, step](const net::Envelope* e) {
          record_probe(label, e, expect);
          run_probe_chain(run, step + 1);
        });
  };

  // Random material drawn under the engine's DRBG so the whole chain is
  // deterministic for a given (seed, plan).
  const auto forged_challenge = [&] {
    core::Challenge ch;
    std::lock_guard<std::mutex> lk(mu_);
    ch.nonce = rng_.bytes(core::kNonceSize);
    ch.issued_at = dep_.now();
    ch.mac = rng_.bytes(32);
    return ch;
  };
  const auto random_bytes = [&](std::size_t n) {
    std::lock_guard<std::mutex> lk(mu_);
    return rng_.bytes(n);
  };

  switch (step) {
    case 0: {
      // Round 1, LOGIN1 with a non-existent account: must be shaped exactly
      // like a real user's response (no account-existence oracle).
      core::Login1Request req;
      req.email = "ghost-" + run->victim_email;
      req.client_public_key = run->attacker_keys.pub;
      req.client_version = 1;
      send("login1-ghost", net::Deployment::kUserManagerNode,
           net::MsgKind::kLogin1Request, req.encode(),
           net::MsgKind::kLogin1Response);
      return;
    }
    case 1: {
      // Round 2, LOGIN2 with a fabricated challenge: the farm MAC check
      // must refuse a nonce the manager never minted.
      core::Login2Request req;
      req.email = run->victim_email;
      req.client_public_key = run->attacker_keys.pub;
      req.client_version = 1;
      req.checksum = random_bytes(32);
      req.challenge = forged_challenge();
      req.proof = random_bytes(64);
      send("login2-forged-challenge", net::Deployment::kUserManagerNode,
           net::MsgKind::kLogin2Request, req.encode(),
           net::MsgKind::kLogin2Response);
      return;
    }
    case 2: {
      // Round 3, SWITCH1 with the stolen (valid!) User Ticket from the
      // attacker's address: the NetAddr attribute binding must refuse it.
      core::Switch1Request req;
      req.user_ticket = run->user_ticket.encode();
      req.channel_id = run->channel;
      send("switch1-stolen-ticket", run->cm_node, net::MsgKind::kSwitch1Request,
           req.encode(), net::MsgKind::kSwitch1Response);
      return;
    }
    case 3: {
      // Round 4, SWITCH2 with the stolen ticket and a forged proof.
      core::Switch2Request req;
      req.user_ticket = run->user_ticket.encode();
      req.channel_id = run->channel;
      req.challenge = forged_challenge();
      req.proof = random_bytes(64);
      send("switch2-stolen-ticket", run->cm_node, net::MsgKind::kSwitch2Request,
           req.encode(), net::MsgKind::kSwitch2Response);
      return;
    }
    case 4: {
      // SWITCH2 with a tampered User Ticket: one flipped bit must break the
      // signature (or the parse) — kBadTicket either way.
      core::Switch2Request req;
      req.user_ticket = flip_middle_bit(run->user_ticket.encode());
      req.channel_id = run->channel;
      req.challenge = forged_challenge();
      req.proof = random_bytes(64);
      send("switch2-mutated-ticket", run->cm_node, net::MsgKind::kSwitch2Request,
           req.encode(), net::MsgKind::kSwitch2Response);
      return;
    }
    case 5: {
      // The victim's real SWITCH2 request, byte-for-byte off the wire, from
      // the attacker's node: valid MAC, valid proof — still refused, because
      // the User Ticket's address is not the connection's.
      if (run->captured_switch2.empty()) {
        note("probe switch2-replay skipped: nothing captured");
        run_probe_chain(run, step + 1);
        return;
      }
      probes_sent_.fetch_add(1, std::memory_order_relaxed);
      m_probes_sent_->inc();
      run->attacker->replay(
          run->cm_node, run->captured_switch2, config_.probe_timeout,
          [this, run, step](const net::Envelope* e) {
            record_probe("switch2-replay", e, net::MsgKind::kSwitch2Response);
            run_probe_chain(run, step + 1);
          });
      return;
    }
    case 6: {
      // Round 5, JOIN at the channel root with the stolen Channel Ticket:
      // delegated verification must catch the address mismatch.
      core::JoinRequest req;
      req.channel_ticket = run->channel_ticket.encode();
      send("join-stolen-ticket", run->root_node, net::MsgKind::kJoinRequest,
           req.encode(), net::MsgKind::kJoinResponse);
      return;
    }
    case 7: {
      core::JoinRequest req;
      req.channel_ticket = flip_middle_bit(run->channel_ticket.encode());
      send("join-mutated-ticket", run->root_node, net::MsgKind::kJoinRequest,
           req.encode(), net::MsgKind::kJoinResponse);
      return;
    }
    default:
      note("replay-probe chain complete (" +
           std::to_string(probes_sent_.load(std::memory_order_relaxed)) +
           " probes so far)");
      return;
  }
}

// --- overlay attacks ------------------------------------------------------

void AdversaryEngine::launch_rogue_peers(const AdversaryEvent& ev) {
  for (std::size_t i = 0; i < ev.count; ++i) {
    const util::NodeId node = next_rogue_++;
    util::NetAddr addr;
    crypto::SecureRandom actor_rng(0);
    {
      std::lock_guard<std::mutex> lk(mu_);
      const geo::RegionId region = dep_.geo().region_at(
          static_cast<int>(i) % dep_.geo().num_regions());
      addr = dep_.geo().sample_address(rng_, region);
      actor_rng = rng_.fork();
    }
    rogues_.push_back(std::make_unique<RoguePeer>(
        dep_.network(), node, addr, ev.mode == RogueMode::kWithholdKeys,
        std::move(actor_rng)));
    // Advertise with a huge spare capacity so the tracker's spare-preferred
    // sampling loves this parent — exactly how a real polluter climbs the
    // candidate list.
    dep_.tracker().register_peer(ev.channel, core::PeerInfo{node, addr}, 64,
                                 dep_.now());
  }
}

void AdversaryEngine::launch_sybil_flood(const AdversaryEvent& ev) {
  // The flood originates from `sources` distinct addresses inside the
  // block: per-source rate limiting throttles each one independently.
  const std::uint32_t mask =
      ev.scope.bits == 0
          ? 0u
          : (ev.scope.bits >= 32 ? 0xffffffffu : ~(0xffffffffu >> ev.scope.bits));
  std::vector<util::NetAddr> sources;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (std::size_t i = 0; i < ev.sources; ++i) {
      sources.push_back(
          util::NetAddr{(ev.scope.addr & mask) | (rng_.next_u32() & ~mask)});
    }
  }
  std::uint64_t admitted = 0;
  for (std::size_t i = 0; i < ev.count; ++i) {
    const util::NodeId node = next_sybil_++;
    const util::NetAddr src = sources[i % sources.size()];
    // Bogus identities are never attached to the network: an honest client
    // steered to one just times out and walks on — that timeout is the
    // collateral the tracker limits are there to bound.
    sybil_attempted_.fetch_add(1, std::memory_order_relaxed);
    if (dep_.tracker().register_peer(ev.channel, core::PeerInfo{node, src}, 8,
                                     dep_.now())) {
      ++admitted;
      sybil_admitted_.fetch_add(1, std::memory_order_relaxed);
      m_sybil_admitted_->inc();
    } else {
      sybil_rejected_.fetch_add(1, std::memory_order_relaxed);
      m_sybil_rejected_->inc();
    }
  }
  note("sybil flood: " + std::to_string(admitted) + "/" +
       std::to_string(ev.count) + " identities admitted");
}

// --- credential-sharing ring ---------------------------------------------

void AdversaryEngine::launch_cred_share(const AdversaryEvent& ev) {
  dep_.add_user(ev.email, ev.password);
  const int regions = dep_.geo().num_regions();
  std::size_t base = 0;
  {
    std::lock_guard<std::mutex> lk(mu_);
    base = ring_outcomes_.size();
    ring_outcomes_.resize(base + ev.count, "pending");
  }
  const auto set_outcome = [this](std::size_t slot, std::string outcome) {
    std::lock_guard<std::mutex> lk(mu_);
    ring_outcomes_[slot] = std::move(outcome);
  };

  for (std::size_t i = 0; i < ev.count; ++i) {
    const geo::RegionId region =
        dep_.geo().region_at(static_cast<int>(i) % regions);
    net::AsyncClient& member = dep_.add_client(ev.email, ev.password, region);
    ring_.push_back(&member);
    const std::size_t slot = base + i;
    const util::ChannelId channel = ev.channel;
    const util::SimTime renew_after = ev.duration;

    // Each member runs on its own node loop: log in, take a fresh Channel
    // Ticket (fresh issues always succeed — the single-session rule bites
    // at renewal, when the ViewingLog's latest fresh-issue entry names a
    // *different* machine), then come back renew_after later.
    dep_.network().post(member.config().node, 0, [this, &member, slot, channel,
                                                  renew_after, set_outcome] {
      member.login([this, &member, slot, channel, renew_after,
                    set_outcome](DrmError err) {
        if (err != DrmError::kOk) {
          set_outcome(slot, "login-failed:" + std::string(core::to_string(err)));
          return;
        }
        ring_logins_ok_.fetch_add(1, std::memory_order_relaxed);
        member.switch_channel(channel, [this, &member, slot, renew_after,
                                        set_outcome](DrmError err2) {
          if (err2 != DrmError::kOk) {
            set_outcome(slot,
                        "switch-failed:" + std::string(core::to_string(err2)));
            return;
          }
          ring_switches_ok_.fetch_add(1, std::memory_order_relaxed);
          dep_.network().post(
              member.config().node, renew_after, [this, &member, slot, set_outcome] {
                member.renew_channel_ticket([this, slot,
                                             set_outcome](DrmError err3) {
                  if (err3 == DrmError::kOk) {
                    ring_renewals_ok_.fetch_add(1, std::memory_order_relaxed);
                    m_ring_survivors_->inc();
                    set_outcome(slot, "renewed");
                  } else {
                    ring_renewals_refused_.fetch_add(1, std::memory_order_relaxed);
                    m_ring_evictions_->inc();
                    set_outcome(slot,
                                "refused:" + std::string(core::to_string(err3)));
                  }
                });
              });
        });
      });
    });
  }
}

}  // namespace p2pdrm::adversary
