// AbuseReport: the survival-suite verdict for one adversarial run — every
// attack the AdversaryEngine launched, how each defense answered, and the
// three gates CI holds the system to: zero successful forgeries, zero dual
// sessions, bounded collateral damage to honest clients. Serializes to the
// p2pdrm.abuse.v1 JSON envelope (same artifact discipline as the bench
// BENCH_*.json files): on the sim backend the same (seed, plan) pair
// produces byte-identical documents.
#pragma once

#include <string>
#include <vector>

#include "adversary/adversary_engine.h"

namespace p2pdrm::adversary {

struct AbuseReport {
  // --- run identity ------------------------------------------------------
  std::uint64_t seed = 0;
  std::string transport;  // "sim" | "thread"

  // --- forgery / replay probes -------------------------------------------
  std::uint64_t probes_sent = 0;
  std::uint64_t probes_accepted = 0;  // gate: must be 0
  std::uint64_t probes_rejected = 0;
  std::uint64_t probes_timed_out = 0;
  std::vector<ProbeOutcome> probes;

  // --- wire fuzzing ------------------------------------------------------
  std::uint64_t fuzz_mutations = 0;    // packets this engine corrupted
  std::uint64_t packets_mutated = 0;   // network-wide Verdict::replace count
  std::uint64_t malformed_drops = 0;   // server.drops{malformed}

  // --- rogue overlay peers -----------------------------------------------
  std::uint64_t rogue_peers = 0;
  std::uint64_t rogue_joins_granted = 0;   // honest joins they poisoned
  std::uint64_t rogue_keys_withheld = 0;

  // --- Sybil flood ---------------------------------------------------------
  std::uint64_t sybil_attempted = 0;
  std::uint64_t sybil_admitted = 0;
  std::uint64_t tracker_rejected_rate = 0;
  std::uint64_t tracker_rejected_capacity = 0;

  // --- credential-sharing ring ---------------------------------------------
  std::uint64_t ring_members = 0;
  std::uint64_t ring_logins_ok = 0;
  std::uint64_t ring_switches_ok = 0;
  std::uint64_t ring_renewals_ok = 0;       // survivors; gate: ≤ rings
  std::uint64_t ring_renewals_refused = 0;  // evictions
  std::vector<std::string> ring_outcomes;
  /// ViewingLog audit entries across all partitions — the journal the
  /// single-session rule adjudicates from.
  std::uint64_t viewing_entries = 0;

  // --- collateral damage to honest clients ---------------------------------
  std::uint64_t honest_clients = 0;      // deployment clients outside the ring
  std::uint64_t honest_with_ticket = 0;  // still holding a Channel Ticket
  std::uint64_t honest_content_decrypted = 0;
  std::uint64_t honest_timeout_exhaustions = 0;

  // --- gates ---------------------------------------------------------------
  bool gate_no_forgery = false;
  bool gate_single_session = false;
  bool gate_bounded_collateral = false;
  bool pass() const {
    return gate_no_forgery && gate_single_session && gate_bounded_collateral;
  }

  /// Snapshot everything from a finished run. Read only after the transport
  /// has quiesced on a live backend.
  static AbuseReport collect(net::Deployment& deployment,
                             const AdversaryEngine& engine, std::uint64_t seed);

  /// The p2pdrm.abuse.v1 document (trailing newline, byte-stable field
  /// order).
  std::string to_json() const;
};

}  // namespace p2pdrm::adversary
