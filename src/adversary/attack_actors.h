// Attacker actors: raw network nodes the AdversaryEngine drives.
//
// AttackClient is a protocol-less prober — it speaks raw envelopes so it
// can send deliberately malformed, mutated, or replayed requests that the
// honest client stack could never produce. RoguePeer is a malicious overlay
// parent: it answers joins with key material the child can never use
// (or swallows rotated keys instead of forwarding them) while looking like
// the best parent candidate the tracker has.
//
// Thread safety: on a live transport, on_packet runs on the actor's group
// loop while the engine calls send()/probe helpers from the control loop —
// all actor state sits behind a mutex or is atomic.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>

#include "crypto/chacha20.h"
#include "net/envelope.h"
#include "net/network.h"

namespace p2pdrm::adversary {

/// Raw-envelope request/response node. Replies are matched by request id;
/// a handler fires exactly once — with the response envelope, or with
/// nullptr when the timeout expires first (count it as a rejection: the
/// service dropped the probe on the floor, which is a defense outcome too).
class AttackClient final : public net::Node {
 public:
  using Handler = std::function<void(const net::Envelope*)>;

  AttackClient(net::Network& network, util::NodeId node, util::NetAddr addr);
  ~AttackClient() override;

  AttackClient(const AttackClient&) = delete;
  AttackClient& operator=(const AttackClient&) = delete;

  /// Send `payload` as a fresh envelope; `on_reply` fires on this node's
  /// loop with the response or nullptr after `timeout`.
  void send(util::NodeId to, net::MsgKind kind, util::Bytes payload,
            util::SimTime timeout, Handler on_reply);
  /// Re-present captured wire bytes verbatim (a replay). The embedded
  /// request id is extracted so the victim's response still routes to
  /// `on_reply`; undecodable captures fire the handler immediately with
  /// nullptr.
  void replay(util::NodeId to, const util::Bytes& wire, util::SimTime timeout,
              Handler on_reply);

  void on_packet(const net::Packet& packet) override;

  util::NodeId node() const { return node_; }
  util::NetAddr addr() const { return addr_; }

 private:
  void expect(std::uint64_t request_id, util::SimTime timeout, Handler on_reply);

  net::Network& network_;
  const util::NodeId node_;
  const util::NetAddr addr_;

  std::mutex mu_;
  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, Handler> pending_;
};

/// How a rogue peer misbehaves is adversary_plan.h's RogueMode; the actor
/// itself only needs the two behaviours.
class RoguePeer final : public net::Node {
 public:
  RoguePeer(net::Network& network, util::NodeId node, util::NetAddr addr,
            bool withhold_keys, crypto::SecureRandom rng);
  ~RoguePeer() override;

  RoguePeer(const RoguePeer&) = delete;
  RoguePeer& operator=(const RoguePeer&) = delete;

  void on_packet(const net::Packet& packet) override;

  util::NodeId node() const { return node_; }
  util::NetAddr addr() const { return addr_; }

  /// Joins this peer granted with unusable key material.
  std::uint64_t joins_captured() const {
    return joins_captured_.load(std::memory_order_relaxed);
  }
  /// Rotated-key blobs swallowed instead of forwarded.
  std::uint64_t keys_withheld() const {
    return keys_withheld_.load(std::memory_order_relaxed);
  }

 private:
  net::Network& network_;
  const util::NodeId node_;
  const util::NetAddr addr_;
  const bool withhold_keys_;

  std::mutex mu_;  // guards rng_
  crypto::SecureRandom rng_;

  std::atomic<std::uint64_t> joins_captured_{0};
  std::atomic<std::uint64_t> keys_withheld_{0};
};

}  // namespace p2pdrm::adversary
