// Workload models for the macro simulations: diurnal viewer arrivals,
// session lengths, channel popularity, channel-switching behaviour, and
// flash crowds at live-event start times.
//
// The production system the paper measured peaked in the evening (its
// Fig. 5 concurrency curve swings between a pre-dawn trough and an evening
// peak each day); session arrivals here follow a non-homogeneous Poisson
// process shaped by a 24-hour intensity profile with per-day weights.
#pragma once

#include <array>
#include <vector>

#include "crypto/chacha20.h"
#include "util/time.h"

namespace p2pdrm::workload {

/// Relative arrival intensity over the day/week. intensity() linearly
/// interpolates between hourly control points, so the curve is smooth-ish.
struct DiurnalProfile {
  /// Relative intensity per hour of day; scaled so max = 1 is conventional.
  std::array<double, 24> hourly{};
  /// Per-weekday multiplier (day 0 = first simulated day).
  std::array<double, 7> daily{1, 1, 1, 1, 1, 1, 1};

  double intensity(util::SimTime t) const;
  /// Largest value intensity() can take (for Poisson thinning).
  double max_intensity() const;
};

/// Television-like profile: trough around 04-06h, ramp through the day,
/// prime-time peak 19-22h, slightly stronger weekend days.
DiurnalProfile tv_profile();

/// Non-homogeneous Poisson arrivals via thinning against the profile.
class ArrivalProcess {
 public:
  /// `peak_rate` is the arrival rate (per second) when intensity == max.
  ArrivalProcess(const DiurnalProfile& profile, double peak_rate);

  /// First arrival strictly after `after`.
  util::SimTime next(util::SimTime after, crypto::SecureRandom& rng) const;

  double rate_at(util::SimTime t) const;

 private:
  DiurnalProfile profile_;
  double peak_rate_;
  double max_intensity_;
};

/// Viewing-session model: lognormal duration, Poisson channel switching.
struct SessionModel {
  /// Median session length.
  util::SimTime median_duration = 25 * util::kMinute;
  double duration_sigma = 1.0;
  /// Mean time between channel switches within a session.
  util::SimTime mean_switch_interval = 12 * util::kMinute;
  util::SimTime min_duration = 30 * util::kSecond;

  util::SimTime sample_duration(crypto::SecureRandom& rng) const;
  util::SimTime sample_switch_gap(crypto::SecureRandom& rng) const;
};

/// Zipf-distributed channel popularity (rank 1 most popular).
class ZipfChannels {
 public:
  ZipfChannels(std::size_t num_channels, double exponent);

  /// Sample a channel index in [0, n).
  std::size_t sample(crypto::SecureRandom& rng) const;
  double probability(std::size_t index) const;
  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

/// Deterministic channel→shard partition for the sharded macro-sim.
///
/// Channels are dealt to shards in snake order over popularity rank
/// (0,1,..,S-1,S-1,..,1,0,...), which keeps the Zipf mass per shard within
/// a few percent of 1/S even at exponent 1. Each shard's conditional
/// sampling CDF is precomputed once here — per-draw cost is one uniform
/// and a binary search, never a fresh CDF build — so a shard samples its
/// own channels exactly as if it had thinned the global Zipf stream.
class ChannelPartition {
 public:
  ChannelPartition(std::size_t num_channels, double exponent,
                   std::size_t shards);

  std::size_t num_channels() const { return shard_of_.size(); }
  std::size_t shards() const { return members_.size(); }

  std::size_t shard_of(std::size_t channel) const;
  /// Fraction of the global Zipf mass owned by `shard` (sums to 1).
  double share(std::size_t shard) const;
  /// Channels owned by `shard`, ascending popularity rank.
  const std::vector<std::size_t>& members(std::size_t shard) const;
  /// Sample a channel owned by `shard` from the Zipf distribution
  /// conditioned on that shard (throws if the shard owns no channels).
  std::size_t sample(std::size_t shard, crypto::SecureRandom& rng) const;

 private:
  std::vector<std::size_t> shard_of_;            // channel -> shard
  std::vector<double> shares_;                   // shard -> global mass
  std::vector<std::vector<std::size_t>> members_;  // shard -> channels
  std::vector<std::vector<double>> cdf_;         // shard -> conditional CDF
};

/// A flash crowd: `extra_sessions` arrivals injected over `ramp` starting
/// at `start` (live-event start times produce exactly this shape, §I).
struct FlashCrowd {
  util::SimTime start = 0;
  std::size_t extra_sessions = 0;
  util::SimTime ramp = 1 * util::kMinute;
  /// Channel the crowd tunes to (the event's channel).
  std::size_t channel = 0;

  /// Arrival times for the crowd (sorted, uniform over the ramp).
  std::vector<util::SimTime> arrivals(crypto::SecureRandom& rng) const;
};

}  // namespace p2pdrm::workload
