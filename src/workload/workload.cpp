#include "workload/workload.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace p2pdrm::workload {

double DiurnalProfile::intensity(util::SimTime t) const {
  if (t < 0) t = 0;
  const double hour_f =
      static_cast<double>(t % util::kDay) / static_cast<double>(util::kHour);
  const int h0 = static_cast<int>(hour_f) % 24;
  const int h1 = (h0 + 1) % 24;
  const double frac = hour_f - std::floor(hour_f);
  const double base = hourly[static_cast<std::size_t>(h0)] * (1.0 - frac) +
                      hourly[static_cast<std::size_t>(h1)] * frac;
  const int day = util::day_of(t) % 7;
  return base * daily[static_cast<std::size_t>(day)];
}

double DiurnalProfile::max_intensity() const {
  const double max_hourly = *std::max_element(hourly.begin(), hourly.end());
  const double max_daily = *std::max_element(daily.begin(), daily.end());
  return max_hourly * max_daily;
}

DiurnalProfile tv_profile() {
  DiurnalProfile p;
  //                 0h    1h    2h    3h    4h    5h    6h    7h
  p.hourly = {0.30, 0.20, 0.14, 0.10, 0.08, 0.08, 0.10, 0.14,
              //  8h    9h   10h   11h   12h   13h   14h   15h
              0.18, 0.22, 0.26, 0.30, 0.38, 0.40, 0.38, 0.36,
              // 16h   17h   18h   19h   20h   21h   22h   23h
              0.42, 0.52, 0.68, 0.88, 1.00, 0.98, 0.80, 0.52};
  // Day 0 = Monday by convention; weekend evenings run a bit hotter.
  p.daily = {1.0, 1.0, 1.0, 1.0, 1.05, 1.15, 1.1};
  return p;
}

ArrivalProcess::ArrivalProcess(const DiurnalProfile& profile, double peak_rate)
    : profile_(profile), peak_rate_(peak_rate),
      max_intensity_(profile.max_intensity()) {
  if (peak_rate <= 0 || max_intensity_ <= 0) {
    throw std::invalid_argument("ArrivalProcess: nonpositive rate");
  }
}

double ArrivalProcess::rate_at(util::SimTime t) const {
  return peak_rate_ * profile_.intensity(t) / max_intensity_;
}

util::SimTime ArrivalProcess::next(util::SimTime after,
                                   crypto::SecureRandom& rng) const {
  // Thinning (Lewis & Shedler): candidate gaps from the peak rate, accepted
  // with probability rate(t)/peak_rate.
  util::SimTime t = after;
  for (;;) {
    const double gap_s = rng.exponential(peak_rate_);
    t += std::max<util::SimTime>(1, util::seconds(gap_s));
    if (rng.uniform_real() * peak_rate_ <= rate_at(t)) return t;
  }
}

util::SimTime SessionModel::sample_duration(crypto::SecureRandom& rng) const {
  const double mu = std::log(static_cast<double>(median_duration));
  const double draw = rng.lognormal(mu, duration_sigma);
  return std::max(min_duration, static_cast<util::SimTime>(draw));
}

util::SimTime SessionModel::sample_switch_gap(crypto::SecureRandom& rng) const {
  const double gap =
      rng.exponential(1.0 / static_cast<double>(mean_switch_interval));
  return std::max<util::SimTime>(util::kSecond, static_cast<util::SimTime>(gap));
}

ZipfChannels::ZipfChannels(std::size_t num_channels, double exponent) {
  if (num_channels == 0) throw std::invalid_argument("ZipfChannels: empty");
  cdf_.resize(num_channels);
  double total = 0;
  for (std::size_t i = 0; i < num_channels; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), exponent);
    cdf_[i] = total;
  }
  for (double& v : cdf_) v /= total;
}

std::size_t ZipfChannels::sample(crypto::SecureRandom& rng) const {
  const double u = rng.uniform_real();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(std::distance(cdf_.begin(), it));
}

double ZipfChannels::probability(std::size_t index) const {
  if (index >= cdf_.size()) throw std::out_of_range("ZipfChannels: index");
  return index == 0 ? cdf_[0] : cdf_[index] - cdf_[index - 1];
}

ChannelPartition::ChannelPartition(std::size_t num_channels, double exponent,
                                   std::size_t shards) {
  if (num_channels == 0) throw std::invalid_argument("ChannelPartition: empty");
  if (shards == 0) throw std::invalid_argument("ChannelPartition: zero shards");

  std::vector<double> prob(num_channels);
  double total = 0;
  for (std::size_t i = 0; i < num_channels; ++i) {
    prob[i] = 1.0 / std::pow(static_cast<double>(i + 1), exponent);
    total += prob[i];
  }
  for (double& p : prob) p /= total;

  shard_of_.resize(num_channels);
  shares_.assign(shards, 0.0);
  members_.resize(shards);
  cdf_.resize(shards);
  for (std::size_t rank = 0; rank < num_channels; ++rank) {
    // Snake deal over popularity rank: pass k runs forward when k is even,
    // backward when odd, so the heavy head channels spread across shards.
    const std::size_t pass = rank / shards;
    const std::size_t pos = rank % shards;
    const std::size_t shard = (pass % 2 == 0) ? pos : shards - 1 - pos;
    shard_of_[rank] = shard;
    shares_[shard] += prob[rank];
    members_[shard].push_back(rank);
    cdf_[shard].push_back(shares_[shard]);
  }
  for (std::size_t s = 0; s < shards; ++s) {
    if (shares_[s] <= 0.0) continue;
    for (double& v : cdf_[s]) v /= shares_[s];
  }
}

std::size_t ChannelPartition::shard_of(std::size_t channel) const {
  if (channel >= shard_of_.size()) {
    throw std::out_of_range("ChannelPartition: channel");
  }
  return shard_of_[channel];
}

double ChannelPartition::share(std::size_t shard) const {
  if (shard >= shares_.size()) throw std::out_of_range("ChannelPartition: shard");
  return shares_[shard];
}

const std::vector<std::size_t>& ChannelPartition::members(
    std::size_t shard) const {
  if (shard >= members_.size()) {
    throw std::out_of_range("ChannelPartition: shard");
  }
  return members_[shard];
}

std::size_t ChannelPartition::sample(std::size_t shard,
                                     crypto::SecureRandom& rng) const {
  if (shard >= cdf_.size()) throw std::out_of_range("ChannelPartition: shard");
  const auto& cdf = cdf_[shard];
  if (cdf.empty()) throw std::logic_error("ChannelPartition: empty shard");
  const double u = rng.uniform_real();
  const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
  const std::size_t idx = std::min(
      static_cast<std::size_t>(std::distance(cdf.begin(), it)), cdf.size() - 1);
  return members_[shard][idx];
}

std::vector<util::SimTime> FlashCrowd::arrivals(crypto::SecureRandom& rng) const {
  std::vector<util::SimTime> out;
  out.reserve(extra_sessions);
  for (std::size_t i = 0; i < extra_sessions; ++i) {
    out.push_back(start + static_cast<util::SimTime>(
                              rng.uniform_real() * static_cast<double>(ramp)));
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace p2pdrm::workload
