// Password-derived encryption and client attestation helpers (§IV-F1).
//
// During LOGIN1 the User Manager sends the nonce and checksum parameters
// encrypted "using the secure hash of the user's password (shp) as the
// encryption key". The attestation checksum is a keyed digest over a
// server-chosen window of the client binary — the server picks fresh
// parameters per login so a modified client cannot replay a precomputed
// answer (the paper acknowledges this is illustrative, not bulletproof).
#pragma once

#include <optional>

#include "crypto/chacha20.h"
#include "crypto/sha256.h"
#include "util/bytes.h"

namespace p2pdrm::core {

struct ChecksumParams;

/// Secure hash of the user's password ("shp"). Domain-separated so the same
/// string used elsewhere hashes differently.
crypto::Sha256Digest password_hash(std::string_view password);

/// Encrypt-then-MAC a small payload under an shp. Output layout:
/// nonce(8) || len-prefixed ciphertext || hmac(32).
util::Bytes encrypt_with_shp(const crypto::Sha256Digest& shp, util::BytesView payload,
                             crypto::SecureRandom& rng);

/// Returns nullopt on MAC failure (wrong password or tampering).
std::optional<util::Bytes> decrypt_with_shp(const crypto::Sha256Digest& shp,
                                            util::BytesView blob);

/// The attestation checksum: HMAC(salt, binary[offset, offset+length)).
/// Window bounds are clamped to the binary size, so both sides compute over
/// the same bytes as long as they hold the same image.
util::Bytes compute_attestation_checksum(util::BytesView client_binary,
                                         const ChecksumParams& params);

}  // namespace p2pdrm::core
