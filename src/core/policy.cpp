#include "core/policy.h"

#include <algorithm>

namespace p2pdrm::core {

std::string PolicyTerm::to_string() const {
  return attr_name + "=" + rule.to_string();
}

void PolicyTerm::encode(util::WireWriter& w) const {
  w.str(attr_name);
  rule.encode(w);
}

PolicyTerm PolicyTerm::decode(util::WireReader& r) {
  PolicyTerm t;
  t.attr_name = r.str();
  t.rule = AttrValue::decode(r);
  return t;
}

std::string Policy::to_string() const {
  std::string s = "Priority " + std::to_string(priority) + ": ";
  for (std::size_t i = 0; i < terms.size(); ++i) {
    if (i > 0) s += " & ";
    s += terms[i].to_string();
  }
  s += (action == PolicyAction::kAccept) ? ", Return ACCEPT" : ", Return REJECT";
  return s;
}

void Policy::encode(util::WireWriter& w) const {
  w.u32(priority);
  w.u32(static_cast<std::uint32_t>(terms.size()));
  for (const PolicyTerm& t : terms) t.encode(w);
  w.u8(static_cast<std::uint8_t>(action));
}

Policy Policy::decode(util::WireReader& r) {
  Policy p;
  p.priority = r.u32();
  const std::uint32_t count = r.u32();
  if (count > 10000) throw util::WireError("Policy: implausible term count");
  p.terms.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) p.terms.push_back(PolicyTerm::decode(r));
  const std::uint8_t action = r.u8();
  if (action > 1) throw util::WireError("Policy: bad action");
  p.action = static_cast<PolicyAction>(action);
  return p;
}

void ChannelRecord::encode(util::WireWriter& w) const {
  w.u32(id);
  w.str(name);
  attributes.encode(w);
  w.u32(static_cast<std::uint32_t>(policies.size()));
  for (const Policy& p : policies) p.encode(w);
  w.u32(partition);
}

ChannelRecord ChannelRecord::decode(util::WireReader& r) {
  ChannelRecord c;
  c.id = r.u32();
  c.name = r.str();
  c.attributes = AttributeSet::decode(r);
  const std::uint32_t count = r.u32();
  if (count > 10000) throw util::WireError("ChannelRecord: implausible policy count");
  c.policies.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) c.policies.push_back(Policy::decode(r));
  c.partition = r.u32();
  return c;
}

namespace {

/// A term is grounded if the channel has an active attribute with the same
/// name and the *literal* same value as the term's rule. Literal (not
/// wildcard) matching is essential: a blackout policy's Region=ANY term must
/// be grounded only by the windowed Region=ANY attribute, never by the
/// channel's ordinary Region=<x> attributes.
bool term_grounded(const ChannelRecord& channel, const PolicyTerm& term,
                   util::SimTime now) {
  for (const Attribute& a : channel.attributes.items()) {
    if (a.name == term.attr_name && a.value == term.rule && a.active_at(now)) {
      return true;
    }
  }
  return false;
}

bool term_satisfied(const AttributeSet& user_attrs, const PolicyTerm& term,
                    util::SimTime now) {
  return user_attrs.matches(term.attr_name, term.rule, now);
}

}  // namespace

EvalResult evaluate_policies(const ChannelRecord& channel,
                             const AttributeSet& user_attrs, util::SimTime now) {
  // Stable sort by descending priority; ties resolve in listing order, so a
  // provider can rely on the order it configured.
  std::vector<const Policy*> ordered;
  ordered.reserve(channel.policies.size());
  for (const Policy& p : channel.policies) ordered.push_back(&p);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const Policy* a, const Policy* b) { return a->priority > b->priority; });

  for (const Policy* policy : ordered) {
    bool applicable = true;
    for (const PolicyTerm& term : policy->terms) {
      if (!term_grounded(channel, term, now)) {
        applicable = false;
        break;
      }
    }
    if (!applicable) continue;

    bool fires = true;
    for (const PolicyTerm& term : policy->terms) {
      if (!term_satisfied(user_attrs, term, now)) {
        fires = false;
        break;
      }
    }
    if (!fires) continue;

    return EvalResult{
        policy->action == PolicyAction::kAccept ? AccessDecision::kAccept
                                                : AccessDecision::kReject,
        policy->priority, "decided by: " + policy->to_string()};
  }
  return EvalResult{AccessDecision::kReject, 0, "no policy fired (default reject)"};
}

bool channel_accessible(const ChannelRecord& channel, const AttributeSet& user_attrs,
                        util::SimTime now) {
  return evaluate_policies(channel, user_attrs, now).decision == AccessDecision::kAccept;
}

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && s.front() == ' ') s.remove_prefix(1);
  while (!s.empty() && s.back() == ' ') s.remove_suffix(1);
  return s;
}

std::optional<AttrValue> parse_attr_value(std::string_view s) {
  if (s == "ANY") return AttrValue::any();
  if (s == "ALL") return AttrValue::all();
  if (s == "NONE") return AttrValue::none();
  if (s == "NULL") return AttrValue::null();
  if (s.empty()) return std::nullopt;
  return AttrValue::of(std::string(s));
}

}  // namespace

std::optional<Policy> parse_policy(std::string_view text) {
  // Grammar:  "Priority" <n> ":" [<term> ("&" <term>)*] "," "Return" <action>
  constexpr std::string_view kPriority = "Priority ";
  std::string_view rest = trim(text);
  if (!rest.starts_with(kPriority)) return std::nullopt;
  rest.remove_prefix(kPriority.size());

  const std::size_t colon = rest.find(':');
  if (colon == std::string_view::npos) return std::nullopt;
  const std::string_view priority_str = trim(rest.substr(0, colon));
  if (priority_str.empty()) return std::nullopt;
  std::uint64_t priority = 0;
  for (char c : priority_str) {
    if (c < '0' || c > '9') return std::nullopt;
    priority = priority * 10 + static_cast<std::uint64_t>(c - '0');
    if (priority > 0xffffffffull) return std::nullopt;
  }
  rest.remove_prefix(colon + 1);

  const std::size_t comma = rest.rfind(',');
  if (comma == std::string_view::npos) return std::nullopt;
  std::string_view terms_part = trim(rest.substr(0, comma));
  const std::string_view action_part = trim(rest.substr(comma + 1));

  Policy policy;
  policy.priority = static_cast<std::uint32_t>(priority);
  if (action_part == "Return ACCEPT") {
    policy.action = PolicyAction::kAccept;
  } else if (action_part == "Return REJECT") {
    policy.action = PolicyAction::kReject;
  } else {
    return std::nullopt;
  }

  while (!terms_part.empty()) {
    const std::size_t amp = terms_part.find('&');
    const std::string_view term_str =
        trim(amp == std::string_view::npos ? terms_part : terms_part.substr(0, amp));
    if (amp != std::string_view::npos) {
      terms_part = trim(terms_part.substr(amp + 1));
      if (terms_part.empty()) return std::nullopt;  // trailing '&'
    } else {
      terms_part = {};
    }
    if (term_str.empty()) return std::nullopt;

    const std::size_t eq = term_str.find('=');
    if (eq == std::string_view::npos || eq == 0) return std::nullopt;
    const auto value = parse_attr_value(trim(term_str.substr(eq + 1)));
    if (!value) return std::nullopt;
    policy.terms.push_back(
        {std::string(trim(term_str.substr(0, eq))), *value});
  }
  return policy;
}

}  // namespace p2pdrm::core
