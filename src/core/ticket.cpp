#include "core/ticket.h"

namespace p2pdrm::core {

util::Bytes UserTicket::encode() const {
  util::WireWriter w;
  w.u16(version);
  w.u64(user_in);
  w.bytes(client_public_key.encode());
  w.i64(start_time);
  w.i64(expiry_time);
  attributes.encode(w);
  return w.take();
}

UserTicket UserTicket::decode(util::BytesView data) {
  util::WireReader r(data);
  UserTicket t;
  t.version = r.u16();
  t.user_in = r.u64();
  t.client_public_key = crypto::RsaPublicKey::decode(r.bytes());
  t.start_time = r.i64();
  t.expiry_time = r.i64();
  t.attributes = AttributeSet::decode(r);
  if (!r.at_end()) throw util::WireError("UserTicket: trailing bytes");
  return t;
}

util::Bytes ChannelTicket::encode() const {
  util::WireWriter w;
  w.u16(version);
  w.u64(user_in);
  w.u32(channel_id);
  w.bytes(client_public_key.encode());
  w.u32(net_addr.ip);
  w.u8(renewal ? 1 : 0);
  w.i64(start_time);
  w.i64(expiry_time);
  return w.take();
}

ChannelTicket ChannelTicket::decode(util::BytesView data) {
  util::WireReader r(data);
  ChannelTicket t;
  t.version = r.u16();
  t.user_in = r.u64();
  t.channel_id = r.u32();
  t.client_public_key = crypto::RsaPublicKey::decode(r.bytes());
  t.net_addr.ip = r.u32();
  const std::uint8_t renewal = r.u8();
  if (renewal > 1) throw util::WireError("ChannelTicket: bad renewal bit");
  t.renewal = renewal == 1;
  t.start_time = r.i64();
  t.expiry_time = r.i64();
  if (!r.at_end()) throw util::WireError("ChannelTicket: trailing bytes");
  return t;
}

}  // namespace p2pdrm::core
