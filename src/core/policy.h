// Channel policies and the access-authorization evaluation engine (§IV-A).
//
// A channel carries attributes and a prioritized list of policies. A policy
// is a conjunction of terms; each term names an attribute and a value rule.
// Evaluation (done by the Channel Manager when a client requests a Channel
// Ticket):
//   1. Consider policies in descending priority order.
//   2. A policy is *applicable* at time `now` only if every term is grounded
//      in a channel attribute that is active at `now` (this is how the
//      blackout window works: the "Region=ANY" attribute is only active
//      during the blackout, so the REJECT policy referencing it only applies
//      then).
//   3. An applicable policy *fires* if the user's attribute set satisfies
//      every term under values_match().
//   4. The first firing policy decides ACCEPT/REJECT. If none fires, access
//      is rejected (closed-world default).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/attribute.h"
#include "util/ids.h"

namespace p2pdrm::core {

enum class PolicyAction : std::uint8_t { kReject = 0, kAccept = 1 };

/// One conjunct of a policy: "the user must present an attribute `name`
/// matching `rule`, and the channel must have an active attribute `name`
/// matching `rule` for the term to be grounded".
struct PolicyTerm {
  std::string attr_name;
  AttrValue rule;

  std::string to_string() const;
  void encode(util::WireWriter& w) const;
  static PolicyTerm decode(util::WireReader& r);

  friend bool operator==(const PolicyTerm&, const PolicyTerm&) = default;
};

struct Policy {
  std::uint32_t priority = 0;
  std::vector<PolicyTerm> terms;
  PolicyAction action = PolicyAction::kReject;

  std::string to_string() const;
  void encode(util::WireWriter& w) const;
  static Policy decode(util::WireReader& r);

  friend bool operator==(const Policy&, const Policy&) = default;
};

/// A channel as known to the Channel Policy Manager and Channel Manager:
/// identity, its attributes, and its policies, plus the partition the
/// channel is assigned to (§V).
struct ChannelRecord {
  util::ChannelId id = 0;
  std::string name;
  AttributeSet attributes;
  std::vector<Policy> policies;
  std::uint32_t partition = 0;

  void encode(util::WireWriter& w) const;
  static ChannelRecord decode(util::WireReader& r);

  friend bool operator==(const ChannelRecord&, const ChannelRecord&) = default;
};

enum class AccessDecision : std::uint8_t { kReject = 0, kAccept = 1 };

struct EvalResult {
  AccessDecision decision = AccessDecision::kReject;
  /// Priority of the policy that decided, or 0 if none fired.
  std::uint32_t decided_by_priority = 0;
  /// Human-readable trace of the decision (for logs and debugging).
  std::string reason;
};

/// Evaluate a channel's policies against a user attribute set at time `now`.
EvalResult evaluate_policies(const ChannelRecord& channel,
                             const AttributeSet& user_attrs, util::SimTime now);

/// Convenience used by clients to render their channel list: would this
/// user currently be accepted on this channel?
bool channel_accessible(const ChannelRecord& channel, const AttributeSet& user_attrs,
                        util::SimTime now);

/// Parse the paper's policy notation (the inverse of Policy::to_string):
///   "Priority 50: Region=100 & Subscription=101, Return ACCEPT"
///   "Priority 100: Region=ANY, Return REJECT"
/// Values ANY/ALL/NONE/NULL parse as the special attribute values; anything
/// else is a concrete string. Returns nullopt on malformed input.
std::optional<Policy> parse_policy(std::string_view text);

}  // namespace p2pdrm::core
