// Stateless nonce challenges (§IV-F, §V).
//
// Both the User Manager and the Channel Manager challenge the client with a
// nonce that the client must return under its private key. The paper
// stresses that managers keep *no per-client state* so a farm of instances
// behind one address can each handle any step. We make the challenge
// self-contained: the manager MACs the nonce together with the request
// binding and an issue timestamp under a secret shared by the farm; any
// instance can verify the echoed challenge without having issued it.
#pragma once

#include "crypto/hmac.h"
#include "util/bytes.h"
#include "util/time.h"
#include "util/wire.h"

namespace p2pdrm::core {

constexpr std::size_t kNonceSize = 32;

struct Challenge {
  util::Bytes nonce;            // kNonceSize random bytes
  util::SimTime issued_at = 0;  // manager clock when issued
  util::Bytes mac;              // binds nonce + context + issued_at to the farm secret

  void encode(util::WireWriter& w) const;
  static Challenge decode(util::WireReader& r);

  friend bool operator==(const Challenge&, const Challenge&) = default;
};

/// Create a challenge. `context` is a protocol label ("login"/"switch"),
/// `binding` ties the challenge to the specific request (e.g. email +
/// public-key fingerprint, or user-ticket digest + channel id) so a
/// challenge minted for one request cannot be replayed for another.
Challenge make_challenge(util::BytesView farm_secret, std::string_view context,
                         util::BytesView binding, util::BytesView nonce,
                         util::SimTime now);

/// Verify an echoed challenge: MAC is authentic for (context, binding) and
/// the challenge is no older than `lifetime`.
bool verify_challenge(const Challenge& challenge, util::BytesView farm_secret,
                      std::string_view context, util::BytesView binding,
                      util::SimTime now, util::SimTime lifetime);

}  // namespace p2pdrm::core
