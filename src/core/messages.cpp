#include "core/messages.h"

namespace p2pdrm::core {

std::string_view to_string(DrmError e) {
  switch (e) {
    case DrmError::kOk: return "ok";
    case DrmError::kUnknownUser: return "unknown-user";
    case DrmError::kBadCredentials: return "bad-credentials";
    case DrmError::kAttestationFailed: return "attestation-failed";
    case DrmError::kVersionTooOld: return "version-too-old";
    case DrmError::kBadTicket: return "bad-ticket";
    case DrmError::kTicketExpired: return "ticket-expired";
    case DrmError::kAddressMismatch: return "address-mismatch";
    case DrmError::kAccessDenied: return "access-denied";
    case DrmError::kUnknownChannel: return "unknown-channel";
    case DrmError::kRenewalRefused: return "renewal-refused";
    case DrmError::kChallengeInvalid: return "challenge-invalid";
    case DrmError::kNoCapacity: return "no-capacity";
    case DrmError::kWrongChannel: return "wrong-channel";
    case DrmError::kWrongPartition: return "wrong-partition";
    case DrmError::kWrongDomain: return "wrong-domain";
  }
  return "unknown-error";
}

namespace {

DrmError decode_error(util::WireReader& r) {
  const std::uint8_t raw = r.u8();
  if (raw > static_cast<std::uint8_t>(DrmError::kWrongDomain)) {
    throw util::WireError("DrmError: bad code " + std::to_string(raw));
  }
  return static_cast<DrmError>(raw);
}

}  // namespace

void ChecksumParams::encode(util::WireWriter& w) const {
  w.u32(offset);
  w.u32(length);
  w.u64(salt);
}

ChecksumParams ChecksumParams::decode(util::WireReader& r) {
  ChecksumParams p;
  p.offset = r.u32();
  p.length = r.u32();
  p.salt = r.u64();
  return p;
}

util::Bytes Login1Request::encode() const {
  util::WireWriter w;
  w.u16(version);
  w.str(email);
  w.bytes(client_public_key.encode());
  w.u32(client_version);
  return w.take();
}

Login1Request Login1Request::decode(util::BytesView data) {
  util::WireReader r(data);
  Login1Request m;
  m.version = r.u16();
  m.email = r.str();
  m.client_public_key = crypto::RsaPublicKey::decode(r.bytes());
  m.client_version = r.u32();
  return m;
}

util::Bytes Login1Response::encode() const {
  util::WireWriter w;
  w.u8(static_cast<std::uint8_t>(error));
  w.bytes(encrypted_params);
  challenge.encode(w);
  return w.take();
}

Login1Response Login1Response::decode(util::BytesView data) {
  util::WireReader r(data);
  Login1Response m;
  m.error = decode_error(r);
  m.encrypted_params = r.bytes();
  m.challenge = Challenge::decode(r);
  return m;
}

util::Bytes Login2Request::encode() const {
  util::WireWriter w;
  w.u16(version);
  w.str(email);
  w.bytes(client_public_key.encode());
  w.u32(client_version);
  params.encode(w);
  w.bytes(checksum);
  challenge.encode(w);
  w.bytes(proof);
  return w.take();
}

Login2Request Login2Request::decode(util::BytesView data) {
  util::WireReader r(data);
  Login2Request m;
  m.version = r.u16();
  m.email = r.str();
  m.client_public_key = crypto::RsaPublicKey::decode(r.bytes());
  m.client_version = r.u32();
  m.params = ChecksumParams::decode(r);
  m.checksum = r.bytes();
  m.challenge = Challenge::decode(r);
  m.proof = r.bytes();
  return m;
}

util::Bytes Login2Response::encode() const {
  util::WireWriter w;
  w.u8(static_cast<std::uint8_t>(error));
  w.u8(ticket.has_value() ? 1 : 0);
  if (ticket) w.bytes(ticket->encode());
  w.i64(server_time);
  w.u32(minimum_version);
  return w.take();
}

Login2Response Login2Response::decode(util::BytesView data) {
  util::WireReader r(data);
  Login2Response m;
  m.error = decode_error(r);
  if (r.u8() == 1) m.ticket = SignedUserTicket::decode(r.bytes());
  m.server_time = r.i64();
  m.minimum_version = r.u32();
  return m;
}

util::Bytes Switch1Request::encode() const {
  util::WireWriter w;
  w.u16(version);
  w.bytes(user_ticket);
  w.u32(channel_id);
  w.bytes(expiring_ticket);
  return w.take();
}

Switch1Request Switch1Request::decode(util::BytesView data) {
  util::WireReader r(data);
  Switch1Request m;
  m.version = r.u16();
  m.user_ticket = r.bytes();
  m.channel_id = r.u32();
  m.expiring_ticket = r.bytes();
  return m;
}

util::Bytes Switch1Response::encode() const {
  util::WireWriter w;
  w.u8(static_cast<std::uint8_t>(error));
  challenge.encode(w);
  return w.take();
}

Switch1Response Switch1Response::decode(util::BytesView data) {
  util::WireReader r(data);
  Switch1Response m;
  m.error = decode_error(r);
  m.challenge = Challenge::decode(r);
  return m;
}

void PeerInfo::encode(util::WireWriter& w) const {
  w.u32(node);
  w.u32(addr.ip);
}

PeerInfo PeerInfo::decode(util::WireReader& r) {
  PeerInfo p;
  p.node = r.u32();
  p.addr.ip = r.u32();
  return p;
}

util::Bytes Switch2Request::encode() const {
  util::WireWriter w;
  w.u16(version);
  w.bytes(user_ticket);
  w.u32(channel_id);
  w.bytes(expiring_ticket);
  challenge.encode(w);
  w.bytes(proof);
  return w.take();
}

Switch2Request Switch2Request::decode(util::BytesView data) {
  util::WireReader r(data);
  Switch2Request m;
  m.version = r.u16();
  m.user_ticket = r.bytes();
  m.channel_id = r.u32();
  m.expiring_ticket = r.bytes();
  m.challenge = Challenge::decode(r);
  m.proof = r.bytes();
  return m;
}

util::Bytes Switch2Response::encode() const {
  util::WireWriter w;
  w.u8(static_cast<std::uint8_t>(error));
  w.u8(ticket.has_value() ? 1 : 0);
  if (ticket) w.bytes(ticket->encode());
  w.u32(static_cast<std::uint32_t>(peers.size()));
  for (const PeerInfo& p : peers) p.encode(w);
  return w.take();
}

Switch2Response Switch2Response::decode(util::BytesView data) {
  util::WireReader r(data);
  Switch2Response m;
  m.error = decode_error(r);
  if (r.u8() == 1) m.ticket = SignedChannelTicket::decode(r.bytes());
  const std::uint32_t count = r.u32();
  if (count > 100000) throw util::WireError("Switch2Response: implausible peer count");
  m.peers.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) m.peers.push_back(PeerInfo::decode(r));
  return m;
}

util::Bytes JoinRequest::encode() const {
  util::WireWriter w;
  w.u16(version);
  w.bytes(channel_ticket);
  w.u32(substream_mask);
  return w.take();
}

JoinRequest JoinRequest::decode(util::BytesView data) {
  util::WireReader r(data);
  JoinRequest m;
  m.version = r.u16();
  m.channel_ticket = r.bytes();
  m.substream_mask = r.u32();
  return m;
}

util::Bytes JoinResponse::encode() const {
  util::WireWriter w;
  w.u8(static_cast<std::uint8_t>(error));
  w.bytes(encrypted_session_key);
  w.bytes(encrypted_content_key);
  return w.take();
}

JoinResponse JoinResponse::decode(util::BytesView data) {
  util::WireReader r(data);
  JoinResponse m;
  m.error = decode_error(r);
  m.encrypted_session_key = r.bytes();
  m.encrypted_content_key = r.bytes();
  return m;
}

util::Bytes ChannelListRequest::encode() const {
  util::WireWriter w;
  w.u16(version);
  w.bytes(user_ticket);
  w.u32(static_cast<std::uint32_t>(stale_attributes.size()));
  for (const std::string& s : stale_attributes) w.str(s);
  return w.take();
}

ChannelListRequest ChannelListRequest::decode(util::BytesView data) {
  util::WireReader r(data);
  ChannelListRequest m;
  m.version = r.u16();
  m.user_ticket = r.bytes();
  const std::uint32_t count = r.u32();
  if (count > 100000) throw util::WireError("ChannelListRequest: implausible count");
  m.stale_attributes.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) m.stale_attributes.push_back(r.str());
  return m;
}

void PartitionInfo::encode(util::WireWriter& w) const {
  w.u32(partition);
  w.u32(manager_addr.ip);
  w.bytes(manager_public_key);
}

PartitionInfo PartitionInfo::decode(util::WireReader& r) {
  PartitionInfo p;
  p.partition = r.u32();
  p.manager_addr.ip = r.u32();
  p.manager_public_key = r.bytes();
  return p;
}

util::Bytes ChannelListResponse::encode() const {
  util::WireWriter w;
  w.u8(static_cast<std::uint8_t>(error));
  w.u32(static_cast<std::uint32_t>(channels.size()));
  for (const ChannelRecord& c : channels) c.encode(w);
  w.u32(static_cast<std::uint32_t>(partitions.size()));
  for (const PartitionInfo& p : partitions) p.encode(w);
  return w.take();
}

ChannelListResponse ChannelListResponse::decode(util::BytesView data) {
  util::WireReader r(data);
  ChannelListResponse m;
  m.error = decode_error(r);
  const std::uint32_t channel_count = r.u32();
  if (channel_count > 100000) throw util::WireError("ChannelListResponse: implausible count");
  m.channels.reserve(channel_count);
  for (std::uint32_t i = 0; i < channel_count; ++i) {
    m.channels.push_back(ChannelRecord::decode(r));
  }
  const std::uint32_t partition_count = r.u32();
  if (partition_count > 100000) throw util::WireError("ChannelListResponse: implausible count");
  m.partitions.reserve(partition_count);
  for (std::uint32_t i = 0; i < partition_count; ++i) {
    m.partitions.push_back(PartitionInfo::decode(r));
  }
  return m;
}

}  // namespace p2pdrm::core
