// Wire messages for the three DRM protocols (§IV-F, Fig. 4):
//   login            — LOGIN1 / LOGIN2 rounds with the User Manager,
//   channel switching — SWITCH1 / SWITCH2 rounds with the Channel Manager,
//   peer join        — JOIN round with a target peer,
// plus the Channel List fetch from the Channel Policy Manager.
//
// Every struct has encode()/decode() over the bounds-checked wire codec;
// handlers parse untrusted bytes through these and treat WireError as a
// protocol rejection.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/attribute.h"
#include "core/challenge.h"
#include "core/policy.h"
#include "core/ticket.h"
#include "util/ids.h"

namespace p2pdrm::core {

/// Reasons a manager or peer refuses a request. Carried in responses so
/// clients can distinguish retryable failures from authorization failures.
enum class DrmError : std::uint8_t {
  kOk = 0,
  kUnknownUser = 1,
  kBadCredentials = 2,       // password / nonce / signature failure
  kAttestationFailed = 3,    // client binary checksum mismatch
  kVersionTooOld = 4,        // client below minimum version
  kBadTicket = 5,            // signature/parse failure on a presented ticket
  kTicketExpired = 6,
  kAddressMismatch = 7,      // NetAddr in ticket != connection address
  kAccessDenied = 8,         // policy evaluation rejected
  kUnknownChannel = 9,
  kRenewalRefused = 10,      // account active elsewhere (§IV-D)
  kChallengeInvalid = 11,    // stale or forged challenge echo
  kNoCapacity = 12,          // peer has no spare slots
  kWrongChannel = 13,        // peer does not carry the requested channel
  kWrongPartition = 14,      // channel not managed by this Channel Manager
  kWrongDomain = 15,         // user not assigned to this User Manager
};

/// Human-readable error name (stable, for logs and tests).
std::string_view to_string(DrmError e);

// ---------------------------------------------------------------------------
// Login protocol (client <-> User Manager)

/// Parameters for the remote-attestation checksum: the server picks a window
/// of the client binary and a salt; the client returns
/// HMAC(salt, binary[offset, offset+length)).
struct ChecksumParams {
  std::uint32_t offset = 0;
  std::uint32_t length = 0;
  std::uint64_t salt = 0;

  void encode(util::WireWriter& w) const;
  static ChecksumParams decode(util::WireReader& r);
  friend bool operator==(const ChecksumParams&, const ChecksumParams&) = default;
};

struct Login1Request {
  std::uint16_t version = kProtocolVersion;
  std::string email;
  crypto::RsaPublicKey client_public_key;
  std::uint32_t client_version = 0;

  util::Bytes encode() const;
  static Login1Request decode(util::BytesView data);
};

/// The nonce and checksum parameters are encrypted under the secure hash of
/// the user's password (shp), so only a client that knows the password can
/// read them. `challenge` is the stateless farm-verifiable binding.
struct Login1Response {
  DrmError error = DrmError::kOk;
  util::Bytes encrypted_params;  // Enc_shp(nonce || checksum params || server time)
  Challenge challenge;

  util::Bytes encode() const;
  static Login1Response decode(util::BytesView data);
};

struct Login2Request {
  std::uint16_t version = kProtocolVersion;
  std::string email;
  crypto::RsaPublicKey client_public_key;
  std::uint32_t client_version = 0;
  ChecksumParams params;       // echoed (covered by the challenge MAC)
  util::Bytes checksum;        // HMAC over the binary window
  Challenge challenge;         // echoed from LOGIN1
  util::Bytes proof;           // client signature over (nonce || checksum)

  util::Bytes encode() const;
  static Login2Request decode(util::BytesView data);
};

struct Login2Response {
  DrmError error = DrmError::kOk;
  std::optional<SignedUserTicket> ticket;
  util::SimTime server_time = 0;       // "timing information" for clock sync
  std::uint32_t minimum_version = 0;   // enforced minimum client version

  util::Bytes encode() const;
  static Login2Response decode(util::BytesView data);
};

// ---------------------------------------------------------------------------
// Channel switching protocol (client <-> Channel Manager)

struct Switch1Request {
  std::uint16_t version = kProtocolVersion;
  util::Bytes user_ticket;  // encoded SignedUserTicket
  /// Fresh request: the channel to watch. Renewal: the expiring Channel
  /// Ticket is presented "in lieu of the channel identification" (§IV-D).
  util::ChannelId channel_id = 0;
  util::Bytes expiring_ticket;  // encoded SignedChannelTicket; empty if fresh

  bool is_renewal() const { return !expiring_ticket.empty(); }

  util::Bytes encode() const;
  static Switch1Request decode(util::BytesView data);
};

struct Switch1Response {
  DrmError error = DrmError::kOk;
  Challenge challenge;

  util::Bytes encode() const;
  static Switch1Response decode(util::BytesView data);
};

/// Address + overlay id of a peer carrying the channel.
struct PeerInfo {
  util::NodeId node = util::kInvalidNode;
  util::NetAddr addr;

  void encode(util::WireWriter& w) const;
  static PeerInfo decode(util::WireReader& r);
  friend bool operator==(const PeerInfo&, const PeerInfo&) = default;
};

struct Switch2Request {
  std::uint16_t version = kProtocolVersion;
  util::Bytes user_ticket;
  util::ChannelId channel_id = 0;
  util::Bytes expiring_ticket;
  Challenge challenge;  // echoed from SWITCH1
  util::Bytes proof;    // client signature over the nonce

  bool is_renewal() const { return !expiring_ticket.empty(); }

  util::Bytes encode() const;
  static Switch2Request decode(util::BytesView data);
};

struct Switch2Response {
  DrmError error = DrmError::kOk;
  std::optional<SignedChannelTicket> ticket;
  /// Deliberately NOT covered by any signature (§IV-G1 discusses why).
  std::vector<PeerInfo> peers;

  util::Bytes encode() const;
  static Switch2Response decode(util::BytesView data);
};

// ---------------------------------------------------------------------------
// Peer join protocol (client <-> target peer)

struct JoinRequest {
  std::uint16_t version = kProtocolVersion;
  util::Bytes channel_ticket;  // encoded SignedChannelTicket
  /// Peer-division multiplexing: which sub-streams this child wants from
  /// this parent (bit i = sub-stream i). Default: everything — the
  /// single-parent, single-stream case.
  std::uint32_t substream_mask = 0xffffffff;

  util::Bytes encode() const;
  static JoinRequest decode(util::BytesView data);
};

struct JoinResponse {
  DrmError error = DrmError::kOk;
  /// Session key for this peering link, encrypted with the client's
  /// certified public key.
  util::Bytes encrypted_session_key;
  /// Current content key (serial + key material), encrypted with the
  /// session key.
  util::Bytes encrypted_content_key;

  util::Bytes encode() const;
  static JoinResponse decode(util::BytesView data);
};

// ---------------------------------------------------------------------------
// Channel List fetch (client <-> Channel Policy Manager)

struct ChannelListRequest {
  std::uint16_t version = kProtocolVersion;
  util::Bytes user_ticket;
  /// Names of attributes whose utime advanced past the client's cache
  /// (empty = full fetch).
  std::vector<std::string> stale_attributes;

  util::Bytes encode() const;
  static ChannelListRequest decode(util::BytesView data);
};

/// Channel Manager coordinates for a partition (§V): clients learn, per
/// channel, which manager to contact and its public key.
struct PartitionInfo {
  std::uint32_t partition = 0;
  util::NetAddr manager_addr;
  util::Bytes manager_public_key;  // encoded RsaPublicKey

  void encode(util::WireWriter& w) const;
  static PartitionInfo decode(util::WireReader& r);
  friend bool operator==(const PartitionInfo&, const PartitionInfo&) = default;
};

struct ChannelListResponse {
  DrmError error = DrmError::kOk;
  std::vector<ChannelRecord> channels;
  std::vector<PartitionInfo> partitions;

  util::Bytes encode() const;
  static ChannelListResponse decode(util::BytesView data);
};

}  // namespace p2pdrm::core
