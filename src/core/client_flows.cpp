#include "core/client_flows.h"

#include "core/auth.h"

namespace p2pdrm::core {

std::optional<OpenedLogin1> open_login1_response(const Login1Response& resp,
                                                 const std::string& password) {
  const auto payload = decrypt_with_shp(password_hash(password), resp.encrypted_params);
  if (!payload) return std::nullopt;
  try {
    util::WireReader r(*payload);
    OpenedLogin1 out;
    out.nonce = r.raw(kNonceSize);
    out.params = ChecksumParams::decode(r);
    out.server_time = r.i64();
    out.challenge = resp.challenge;
    out.challenge.nonce = out.nonce;
    return out;
  } catch (const util::WireError&) {
    return std::nullopt;
  }
}

Login2Request build_login2_request(const OpenedLogin1& opened, const std::string& email,
                                   const crypto::RsaKeyPair& client_keys,
                                   std::uint32_t client_version,
                                   util::BytesView client_binary) {
  Login2Request req;
  req.email = email;
  req.client_public_key = client_keys.pub;
  req.client_version = client_version;
  req.params = opened.params;
  req.checksum = compute_attestation_checksum(client_binary, opened.params);
  req.challenge = opened.challenge;
  util::Bytes signed_payload = opened.nonce;
  signed_payload.insert(signed_payload.end(), req.checksum.begin(), req.checksum.end());
  req.proof = crypto::rsa_sign(client_keys.priv, signed_payload);
  return req;
}

Switch2Request build_switch2_request(const Switch1Response& resp,
                                     const util::Bytes& user_ticket,
                                     util::ChannelId channel_id,
                                     const util::Bytes& expiring_ticket,
                                     const crypto::RsaPrivateKey& client_key) {
  Switch2Request req;
  req.user_ticket = user_ticket;
  req.channel_id = channel_id;
  req.expiring_ticket = expiring_ticket;
  req.challenge = resp.challenge;
  req.proof = crypto::rsa_sign(client_key, resp.challenge.nonce);
  return req;
}

}  // namespace p2pdrm::core
