#include "core/auth.h"

#include "core/messages.h"
#include "crypto/aes128.h"
#include "crypto/hmac.h"
#include "util/wire.h"

namespace p2pdrm::core {

crypto::Sha256Digest password_hash(std::string_view password) {
  crypto::Sha256 h;
  h.update(util::bytes_of("p2pdrm-shp-v1:"));
  h.update(util::bytes_of(password));
  return h.finish();
}

namespace {

struct ShpKeys {
  crypto::AesKey cipher_key;
  util::Bytes mac_key;
};

ShpKeys derive_shp_keys(const crypto::Sha256Digest& shp) {
  const util::Bytes material = crypto::derive_key(
      util::BytesView(shp.data(), shp.size()), util::bytes_of("shp-split"), 48);
  ShpKeys keys;
  std::copy(material.begin(), material.begin() + crypto::kAesKeySize,
            keys.cipher_key.begin());
  keys.mac_key.assign(material.begin() + crypto::kAesKeySize, material.end());
  return keys;
}

}  // namespace

util::Bytes encrypt_with_shp(const crypto::Sha256Digest& shp, util::BytesView payload,
                             crypto::SecureRandom& rng) {
  const ShpKeys keys = derive_shp_keys(shp);
  const std::uint64_t nonce = rng.next_u64();
  const util::Bytes ciphertext =
      crypto::AesCtr(keys.cipher_key, nonce).crypt_copy(payload);

  util::WireWriter w;
  w.u64(nonce);
  w.bytes(ciphertext);
  const crypto::Sha256Digest mac = crypto::hmac_sha256(keys.mac_key, w.data());
  w.raw(util::BytesView(mac.data(), mac.size()));
  return w.take();
}

std::optional<util::Bytes> decrypt_with_shp(const crypto::Sha256Digest& shp,
                                            util::BytesView blob) {
  try {
    const ShpKeys keys = derive_shp_keys(shp);
    util::WireReader r(blob);
    const std::uint64_t nonce = r.u64();
    const util::Bytes ciphertext = r.bytes();
    const util::BytesView authed = r.consumed();
    const util::Bytes mac = r.raw(crypto::kSha256DigestSize);
    if (!r.at_end()) return std::nullopt;

    const crypto::Sha256Digest expected = crypto::hmac_sha256(keys.mac_key, authed);
    if (!util::constant_time_equal(
            util::BytesView(expected.data(), expected.size()), mac)) {
      return std::nullopt;
    }
    return crypto::AesCtr(keys.cipher_key, nonce).crypt_copy(ciphertext);
  } catch (const util::WireError&) {
    return std::nullopt;
  }
}

util::Bytes compute_attestation_checksum(util::BytesView client_binary,
                                         const ChecksumParams& params) {
  const std::size_t offset = std::min<std::size_t>(params.offset, client_binary.size());
  const std::size_t length =
      std::min<std::size_t>(params.length, client_binary.size() - offset);

  std::uint8_t salt_be[8];
  util::store_be64(salt_be, params.salt);
  crypto::HmacSha256 h(util::BytesView(salt_be, 8));
  h.update(client_binary.subspan(offset, length));
  const crypto::Sha256Digest digest = h.finish();
  return util::Bytes(digest.begin(), digest.end());
}

}  // namespace p2pdrm::core
