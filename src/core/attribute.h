// Attributes — the unit of rights description in the paper (§IV-A, §IV-B).
//
// Both users and channels carry sets of
//   < attribute, value, stime, etime, utime >
// tuples. `stime`/`etime` bound the validity window (NULL = unbounded);
// `utime` is the last-update time the Channel Policy Manager uses to tell
// clients their cached Channel List is stale.
//
// Values support the paper's globally-defined specials (ANY, ALL, NONE,
// NULL) in addition to plain strings.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "util/bytes.h"
#include "util/time.h"
#include "util/wire.h"

namespace p2pdrm::core {

/// Well-known attribute names (Table I of the paper). Attribute names are
/// open-ended strings; these constants cover the ones the system itself
/// assigns.
inline constexpr const char* kAttrNetAddr = "NetAddr";
inline constexpr const char* kAttrRegion = "Region";
inline constexpr const char* kAttrAs = "AS";
inline constexpr const char* kAttrVersion = "Version";
inline constexpr const char* kAttrSubscription = "Subscription";

/// An attribute value: either a concrete string or one of the special
/// values defined globally throughout the DRM architecture.
class AttrValue {
 public:
  enum class Kind : std::uint8_t {
    kValue = 0,  // concrete string
    kAny = 1,    // matches every concrete value
    kAll = 2,    // matches every concrete value (user-side wildcard)
    kNone = 3,   // matches nothing
    kNull = 4,   // unset; matches nothing
  };

  /// Defaults to NULL (unset).
  AttrValue() = default;

  static AttrValue of(std::string value);
  static AttrValue of_number(std::uint64_t value);
  static AttrValue any() { return AttrValue(Kind::kAny); }
  static AttrValue all() { return AttrValue(Kind::kAll); }
  static AttrValue none() { return AttrValue(Kind::kNone); }
  static AttrValue null() { return AttrValue(Kind::kNull); }

  Kind kind() const { return kind_; }
  bool is_special() const { return kind_ != Kind::kValue; }
  /// The concrete string; throws std::logic_error for special values.
  const std::string& value() const;

  /// Rendering: concrete value as-is, specials as "ANY"/"ALL"/"NONE"/"NULL".
  std::string to_string() const;

  void encode(util::WireWriter& w) const;
  static AttrValue decode(util::WireReader& r);

  friend bool operator==(const AttrValue&, const AttrValue&) = default;

 private:
  explicit AttrValue(Kind kind) : kind_(kind) {}

  Kind kind_ = Kind::kNull;
  std::string value_;
};

/// Matching rule used by policy evaluation. `rule` comes from the channel
/// side (a policy term grounded in a channel attribute), `presented` from
/// the user side:
///   - ANY/ALL on either side matches any *present* concrete value,
///   - NONE/NULL on either side never matches,
///   - concrete values match by string equality.
bool values_match(const AttrValue& rule, const AttrValue& presented);

/// One < attribute, value, stime, etime, utime > tuple.
struct Attribute {
  std::string name;
  AttrValue value;
  util::SimTime stime = util::kNullTime;  // validity start (null = always)
  util::SimTime etime = util::kNullTime;  // validity end   (null = never expires)
  util::SimTime utime = util::kNullTime;  // last update (provenance metadata)

  /// True when `now` falls inside [stime, etime] (null bounds are open).
  bool active_at(util::SimTime now) const;

  std::string to_string() const;

  void encode(util::WireWriter& w) const;
  static Attribute decode(util::WireReader& r);

  friend bool operator==(const Attribute&, const Attribute&) = default;
};

/// An attribute set with the lookups policy evaluation and ticket handling
/// need. Multiple attributes may share a name (e.g. several Subscription
/// entries, or overlapping Region windows).
class AttributeSet {
 public:
  AttributeSet() = default;
  explicit AttributeSet(std::vector<Attribute> attrs) : attrs_(std::move(attrs)) {}

  void add(Attribute attr) { attrs_.push_back(std::move(attr)); }
  /// Remove every attribute with this name; returns how many were removed.
  std::size_t remove_all(const std::string& name);

  const std::vector<Attribute>& items() const { return attrs_; }
  std::size_t size() const { return attrs_.size(); }
  bool empty() const { return attrs_.empty(); }

  /// First attribute with the given name (any validity), or nullptr.
  const Attribute* find(const std::string& name) const;
  /// All attributes with the given name that are active at `now`.
  std::vector<const Attribute*> find_active(const std::string& name,
                                            util::SimTime now) const;

  /// True if some active attribute with this name matches `rule` under
  /// values_match().
  bool matches(const std::string& name, const AttrValue& rule,
               util::SimTime now) const;

  /// Earliest non-null etime across all attributes (nullopt if none). The
  /// User Manager caps ticket lifetime with this so tickets never outlive
  /// any contained attribute (§IV-B).
  std::optional<util::SimTime> earliest_expiry() const;

  /// Latest non-null utime across all attributes (nullopt if none).
  std::optional<util::SimTime> latest_update() const;

  void encode(util::WireWriter& w) const;
  static AttributeSet decode(util::WireReader& r);

  friend bool operator==(const AttributeSet&, const AttributeSet&) = default;

 private:
  std::vector<Attribute> attrs_;
};

}  // namespace p2pdrm::core
