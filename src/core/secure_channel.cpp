#include "core/secure_channel.h"

#include "crypto/chacha20.h"
#include "crypto/hmac.h"
#include "util/wire.h"

namespace p2pdrm::core {

namespace {
constexpr std::size_t kMasterSecretSize = 32;
}

util::Bytes SecureHello::encode() const {
  util::WireWriter w;
  w.bytes(encrypted_master);
  return w.take();
}

SecureHello SecureHello::decode(util::BytesView data) {
  util::WireReader r(data);
  SecureHello h;
  h.encrypted_master = r.bytes();
  return h;
}

SecureSession::DirectionKeys SecureSession::derive_direction(util::BytesView master,
                                                             std::string_view label) {
  const util::Bytes material = crypto::derive_key(master, util::bytes_of(label), 48);
  DirectionKeys keys;
  std::copy(material.begin(), material.begin() + crypto::kAesKeySize,
            keys.cipher_key.begin());
  keys.mac_key.assign(material.begin() + crypto::kAesKeySize, material.end());
  return keys;
}

SecureSession::SecureSession(Role role, util::BytesView master_secret) {
  const DirectionKeys c2s = derive_direction(master_secret, "c2s");
  const DirectionKeys s2c = derive_direction(master_secret, "s2c");
  if (role == Role::kClient) {
    send_ = c2s;
    recv_ = s2c;
  } else {
    send_ = s2c;
    recv_ = c2s;
  }
}

util::Bytes SecureSession::seal(util::BytesView plaintext) {
  const std::uint64_t seq = send_seq_++;
  util::Bytes ciphertext =
      crypto::AesCtr(send_.cipher_key, seq).crypt_copy(plaintext);

  util::WireWriter w;
  w.u64(seq);
  w.bytes(ciphertext);
  const crypto::Sha256Digest mac = crypto::hmac_sha256(send_.mac_key, w.data());
  w.raw(util::BytesView(mac.data(), mac.size()));
  return w.take();
}

std::optional<util::Bytes> SecureSession::open(util::BytesView record) {
  try {
    util::WireReader r(record);
    const std::uint64_t seq = r.u64();
    const util::Bytes ciphertext = r.bytes();
    const util::BytesView authed = r.consumed();
    const util::Bytes mac = r.raw(crypto::kSha256DigestSize);
    if (!r.at_end()) return std::nullopt;

    // Strict in-order delivery: replay or reordering shows as a sequence
    // mismatch before any crypto runs.
    if (seq != recv_seq_) return std::nullopt;

    const crypto::Sha256Digest expected = crypto::hmac_sha256(recv_.mac_key, authed);
    if (!util::constant_time_equal(
            util::BytesView(expected.data(), expected.size()), mac)) {
      return std::nullopt;
    }
    ++recv_seq_;
    return crypto::AesCtr(recv_.cipher_key, seq).crypt_copy(ciphertext);
  } catch (const util::WireError&) {
    return std::nullopt;
  }
}

ClientHandshake secure_channel_initiate(const crypto::RsaPublicKey& server_key,
                                        crypto::SecureRandom& rng) {
  const util::Bytes master = rng.bytes(kMasterSecretSize);
  SecureHello hello;
  hello.encrypted_master = crypto::rsa_encrypt(server_key, master, rng);
  return ClientHandshake{std::move(hello),
                         SecureSession(SecureSession::Role::kClient, master)};
}

std::optional<SecureSession> secure_channel_accept(
    const SecureHello& hello, const crypto::RsaPrivateKey& server_key) {
  const auto master = crypto::rsa_decrypt(server_key, hello.encrypted_master);
  if (!master || master->size() != kMasterSecretSize) return std::nullopt;
  return SecureSession(SecureSession::Role::kServer, *master);
}

}  // namespace p2pdrm::core
