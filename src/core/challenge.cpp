#include "core/challenge.h"

#include "util/wire.h"

namespace p2pdrm::core {

namespace {

util::Bytes challenge_mac(util::BytesView farm_secret, std::string_view context,
                          util::BytesView binding, util::BytesView nonce,
                          util::SimTime issued_at) {
  util::WireWriter w;
  w.str(context);
  w.bytes(binding);
  w.bytes(nonce);
  w.i64(issued_at);
  const crypto::Sha256Digest mac = crypto::hmac_sha256(farm_secret, w.data());
  return util::Bytes(mac.begin(), mac.end());
}

}  // namespace

void Challenge::encode(util::WireWriter& w) const {
  w.bytes(nonce);
  w.i64(issued_at);
  w.bytes(mac);
}

Challenge Challenge::decode(util::WireReader& r) {
  Challenge c;
  c.nonce = r.bytes();
  c.issued_at = r.i64();
  c.mac = r.bytes();
  return c;
}

Challenge make_challenge(util::BytesView farm_secret, std::string_view context,
                         util::BytesView binding, util::BytesView nonce,
                         util::SimTime now) {
  Challenge c;
  c.nonce.assign(nonce.begin(), nonce.end());
  c.issued_at = now;
  c.mac = challenge_mac(farm_secret, context, binding, nonce, now);
  return c;
}

bool verify_challenge(const Challenge& challenge, util::BytesView farm_secret,
                      std::string_view context, util::BytesView binding,
                      util::SimTime now, util::SimTime lifetime) {
  if (challenge.nonce.size() != kNonceSize) return false;
  if (now < challenge.issued_at || now - challenge.issued_at > lifetime) return false;
  const util::Bytes expected = challenge_mac(farm_secret, context, binding,
                                             challenge.nonce, challenge.issued_at);
  return util::constant_time_equal(expected, challenge.mac);
}

}  // namespace p2pdrm::core
