#include "core/content.h"

#include "crypto/hmac.h"

namespace p2pdrm::core {

void ContentKey::encode(util::WireWriter& w) const {
  w.u8(serial);
  w.raw(key);
  w.u64(nonce);
  w.i64(activation);
}

ContentKey ContentKey::decode(util::WireReader& r) {
  ContentKey k;
  k.serial = r.u8();
  const util::Bytes raw = r.raw(crypto::kAesKeySize);
  std::copy(raw.begin(), raw.end(), k.key.begin());
  k.nonce = r.u64();
  k.activation = r.i64();
  return k;
}

ContentKey generate_content_key(crypto::SecureRandom& rng, std::uint8_t serial,
                                util::SimTime activation) {
  ContentKey k;
  k.serial = serial;
  rng.fill(k.key);
  k.nonce = rng.next_u64();
  k.activation = activation;
  return k;
}

util::Bytes SessionKey::to_bytes() const {
  util::Bytes out;
  out.reserve(cipher_key.size() + mac_key.size());
  out.insert(out.end(), cipher_key.begin(), cipher_key.end());
  out.insert(out.end(), mac_key.begin(), mac_key.end());
  return out;
}

std::optional<SessionKey> SessionKey::from_bytes(util::BytesView data) {
  if (data.size() != crypto::kAesKeySize + 32) return std::nullopt;
  SessionKey k;
  std::copy(data.begin(), data.begin() + crypto::kAesKeySize, k.cipher_key.begin());
  std::copy(data.begin() + crypto::kAesKeySize, data.end(), k.mac_key.begin());
  return k;
}

SessionKey generate_session_key(crypto::SecureRandom& rng) {
  SessionKey k;
  rng.fill(k.cipher_key);
  rng.fill(k.mac_key);
  return k;
}

util::Bytes wrap_content_key(const ContentKey& content_key, const SessionKey& session,
                             std::uint64_t wrap_nonce) {
  util::WireWriter inner;
  content_key.encode(inner);
  util::Bytes ciphertext =
      crypto::AesCtr(session.cipher_key, wrap_nonce).crypt_copy(inner.data());

  util::WireWriter w;
  w.u64(wrap_nonce);
  w.bytes(ciphertext);
  const crypto::Sha256Digest mac = crypto::hmac_sha256(session.mac_key, w.data());
  w.raw(util::BytesView(mac.data(), mac.size()));
  return w.take();
}

std::optional<ContentKey> unwrap_content_key(util::BytesView blob,
                                             const SessionKey& session) {
  try {
    util::WireReader r(blob);
    const std::uint64_t wrap_nonce = r.u64();
    const util::Bytes ciphertext = r.bytes();
    const util::BytesView authed = r.consumed();
    const util::Bytes mac = r.raw(crypto::kSha256DigestSize);
    if (!r.at_end()) return std::nullopt;

    const crypto::Sha256Digest expected = crypto::hmac_sha256(session.mac_key, authed);
    if (!util::constant_time_equal(
            util::BytesView(expected.data(), expected.size()), mac)) {
      return std::nullopt;
    }

    const util::Bytes plain =
        crypto::AesCtr(session.cipher_key, wrap_nonce).crypt_copy(ciphertext);
    util::WireReader inner(plain);
    const ContentKey key = ContentKey::decode(inner);
    if (!inner.at_end()) return std::nullopt;
    return key;
  } catch (const util::WireError&) {
    return std::nullopt;
  }
}

util::Bytes ContentPacket::encode() const {
  util::WireWriter w;
  w.u32(channel);
  w.u8(key_serial);
  w.u64(seq);
  w.bytes(payload);
  return w.take();
}

ContentPacket ContentPacket::decode(util::BytesView data) {
  util::WireReader r(data);
  ContentPacket p;
  p.channel = r.u32();
  p.key_serial = r.u8();
  p.seq = r.u64();
  p.payload = r.bytes();
  return p;
}

namespace {

/// Unique CTR stream per (key, seq): fold the packet sequence number into
/// the key's nonce base.
std::uint64_t packet_nonce(const ContentKey& key, std::uint64_t seq) {
  return key.nonce ^ (seq * 0x9e3779b97f4a7c15ull);
}

}  // namespace

ContentPacket encrypt_packet(const ContentKey& key, util::ChannelId channel,
                             std::uint64_t seq, util::BytesView plaintext) {
  ContentPacket p;
  p.channel = channel;
  p.key_serial = key.serial;
  p.seq = seq;
  p.payload = crypto::AesCtr(key.key, packet_nonce(key, seq)).crypt_copy(plaintext);
  return p;
}

std::optional<util::Bytes> decrypt_packet(const ContentKey& key,
                                          const ContentPacket& packet) {
  if (packet.key_serial != key.serial) return std::nullopt;
  return crypto::AesCtr(key.key, packet_nonce(key, packet.seq))
      .crypt_copy(packet.payload);
}

namespace {

/// Per-key MAC key for authenticated packets, derived so the cipher key is
/// never reused as a MAC key.
util::Bytes packet_mac_key(const ContentKey& key) {
  return crypto::derive_key(key.key, util::bytes_of("p2pdrm-packet-mac"), 32);
}

crypto::Sha256Digest packet_mac(const ContentKey& key, util::ChannelId channel,
                                std::uint64_t seq, util::BytesView ciphertext) {
  crypto::HmacSha256 h(packet_mac_key(key));
  util::WireWriter header;
  header.u32(channel);
  header.u8(key.serial);
  header.u64(seq);
  h.update(header.data());
  h.update(ciphertext);
  return h.finish();
}

}  // namespace

ContentPacket encrypt_packet_authenticated(const ContentKey& key,
                                           util::ChannelId channel,
                                           std::uint64_t seq,
                                           util::BytesView plaintext) {
  ContentPacket p = encrypt_packet(key, channel, seq, plaintext);
  const crypto::Sha256Digest mac = packet_mac(key, channel, seq, p.payload);
  p.payload.insert(p.payload.end(), mac.begin(), mac.end());
  return p;
}

AuthenticatedPayload decrypt_packet_authenticated(const ContentKey& key,
                                                  const ContentPacket& packet) {
  if (packet.key_serial != key.serial) {
    return {PacketVerdict::kUnknownKey, {}};
  }
  if (packet.payload.size() < crypto::kSha256DigestSize) {
    return {PacketVerdict::kHijacked, {}};
  }
  const std::size_t cipher_len = packet.payload.size() - crypto::kSha256DigestSize;
  const util::BytesView ciphertext(packet.payload.data(), cipher_len);
  const util::BytesView mac(packet.payload.data() + cipher_len,
                            crypto::kSha256DigestSize);
  const crypto::Sha256Digest expected =
      packet_mac(key, packet.channel, packet.seq, ciphertext);
  if (!util::constant_time_equal(
          util::BytesView(expected.data(), expected.size()), mac)) {
    return {PacketVerdict::kHijacked, {}};
  }
  AuthenticatedPayload out;
  out.verdict = PacketVerdict::kOk;
  out.plaintext =
      crypto::AesCtr(key.key, packet_nonce(key, packet.seq)).crypt_copy(ciphertext);
  return out;
}

}  // namespace p2pdrm::core
