#include "core/attribute.h"

#include <stdexcept>

namespace p2pdrm::core {

AttrValue AttrValue::of(std::string value) {
  AttrValue v(Kind::kValue);
  v.value_ = std::move(value);
  return v;
}

AttrValue AttrValue::of_number(std::uint64_t value) {
  return of(std::to_string(value));
}

const std::string& AttrValue::value() const {
  if (kind_ != Kind::kValue) {
    throw std::logic_error("AttrValue: value() on special value " + to_string());
  }
  return value_;
}

std::string AttrValue::to_string() const {
  switch (kind_) {
    case Kind::kValue: return value_;
    case Kind::kAny: return "ANY";
    case Kind::kAll: return "ALL";
    case Kind::kNone: return "NONE";
    case Kind::kNull: return "NULL";
  }
  return "?";
}

void AttrValue::encode(util::WireWriter& w) const {
  w.u8(static_cast<std::uint8_t>(kind_));
  if (kind_ == Kind::kValue) w.str(value_);
}

AttrValue AttrValue::decode(util::WireReader& r) {
  const std::uint8_t raw = r.u8();
  if (raw > static_cast<std::uint8_t>(Kind::kNull)) {
    throw util::WireError("AttrValue: bad kind " + std::to_string(raw));
  }
  const Kind kind = static_cast<Kind>(raw);
  if (kind == Kind::kValue) return of(r.str());
  return AttrValue(kind);
}

bool values_match(const AttrValue& rule, const AttrValue& presented) {
  using Kind = AttrValue::Kind;
  // NONE/NULL on either side never match.
  if (rule.kind() == Kind::kNone || rule.kind() == Kind::kNull) return false;
  if (presented.kind() == Kind::kNone || presented.kind() == Kind::kNull) return false;
  // ANY/ALL on either side match every present value.
  if (rule.kind() == Kind::kAny || rule.kind() == Kind::kAll) return true;
  if (presented.kind() == Kind::kAny || presented.kind() == Kind::kAll) return true;
  return rule.value() == presented.value();
}

bool Attribute::active_at(util::SimTime now) const {
  if (stime != util::kNullTime && now < stime) return false;
  if (etime != util::kNullTime && now > etime) return false;
  return true;
}

std::string Attribute::to_string() const {
  return "<" + name + "=" + value.to_string() + ", stime=" + util::format_time(stime) +
         ", etime=" + util::format_time(etime) + ", utime=" + util::format_time(utime) +
         ">";
}

void Attribute::encode(util::WireWriter& w) const {
  w.str(name);
  value.encode(w);
  w.i64(stime);
  w.i64(etime);
  w.i64(utime);
}

Attribute Attribute::decode(util::WireReader& r) {
  Attribute a;
  a.name = r.str();
  a.value = AttrValue::decode(r);
  a.stime = r.i64();
  a.etime = r.i64();
  a.utime = r.i64();
  return a;
}

std::size_t AttributeSet::remove_all(const std::string& name) {
  const std::size_t before = attrs_.size();
  std::erase_if(attrs_, [&](const Attribute& a) { return a.name == name; });
  return before - attrs_.size();
}

const Attribute* AttributeSet::find(const std::string& name) const {
  for (const Attribute& a : attrs_) {
    if (a.name == name) return &a;
  }
  return nullptr;
}

std::vector<const Attribute*> AttributeSet::find_active(const std::string& name,
                                                        util::SimTime now) const {
  std::vector<const Attribute*> out;
  for (const Attribute& a : attrs_) {
    if (a.name == name && a.active_at(now)) out.push_back(&a);
  }
  return out;
}

bool AttributeSet::matches(const std::string& name, const AttrValue& rule,
                           util::SimTime now) const {
  for (const Attribute& a : attrs_) {
    if (a.name == name && a.active_at(now) && values_match(rule, a.value)) {
      return true;
    }
  }
  return false;
}

std::optional<util::SimTime> AttributeSet::earliest_expiry() const {
  std::optional<util::SimTime> earliest;
  for (const Attribute& a : attrs_) {
    if (a.etime == util::kNullTime) continue;
    if (!earliest || a.etime < *earliest) earliest = a.etime;
  }
  return earliest;
}

std::optional<util::SimTime> AttributeSet::latest_update() const {
  std::optional<util::SimTime> latest;
  for (const Attribute& a : attrs_) {
    if (a.utime == util::kNullTime) continue;
    if (!latest || a.utime > *latest) latest = a.utime;
  }
  return latest;
}

void AttributeSet::encode(util::WireWriter& w) const {
  w.u32(static_cast<std::uint32_t>(attrs_.size()));
  for (const Attribute& a : attrs_) a.encode(w);
}

AttributeSet AttributeSet::decode(util::WireReader& r) {
  const std::uint32_t count = r.u32();
  // Sanity bound: a ticket with millions of attributes is malformed.
  if (count > 10000) throw util::WireError("AttributeSet: implausible count");
  AttributeSet out;
  for (std::uint32_t i = 0; i < count; ++i) out.add(Attribute::decode(r));
  return out;
}

}  // namespace p2pdrm::core
