// SSL-like secure channel for client <-> infrastructure traffic (§IV-G1).
//
// The paper notes that if ticket contents or other exchanges with the
// infrastructure servers must be hidden from eavesdroppers, "we can easily
// enforce an SSL-like protocol for all communications with infrastructure
// servers, as the client already must obtain the public keys of all our
// infrastructure servers in the current design."
//
// This is that protocol: a one-round-trip handshake (client generates the
// master secret, sends it under the server's RSA key) establishing a
// SecureSession with independent per-direction cipher/MAC keys and strictly
// increasing record sequence numbers. Records are encrypt-then-MAC; the MAC
// covers direction, sequence number, and ciphertext, so tampering,
// replay, reordering, and reflection are all rejected.
#pragma once

#include <optional>

#include "crypto/aes128.h"
#include "crypto/rsa.h"
#include "util/bytes.h"

namespace p2pdrm::core {

/// Client -> server handshake message.
struct SecureHello {
  util::Bytes encrypted_master;  // RSA(server_pub, 32-byte master secret)

  util::Bytes encode() const;
  static SecureHello decode(util::BytesView data);
};

/// One endpoint of an established channel. Each side sends with its own
/// direction keys and receives with the peer's; sequence numbers advance
/// independently per direction.
class SecureSession {
 public:
  enum class Role : std::uint8_t { kClient = 0, kServer = 1 };

  SecureSession(Role role, util::BytesView master_secret);

  /// Encrypt + authenticate one record.
  util::Bytes seal(util::BytesView plaintext);

  /// Verify + decrypt the next record from the peer. Returns nullopt on
  /// tampering, replay, reordering, truncation, or reflection.
  std::optional<util::Bytes> open(util::BytesView record);

  std::uint64_t records_sent() const { return send_seq_; }
  std::uint64_t records_received() const { return recv_seq_; }

 private:
  struct DirectionKeys {
    crypto::AesKey cipher_key{};
    util::Bytes mac_key;
  };
  static DirectionKeys derive_direction(util::BytesView master, std::string_view label);

  DirectionKeys send_;
  DirectionKeys recv_;
  std::uint64_t send_seq_ = 0;
  std::uint64_t recv_seq_ = 0;
};

/// Client side: mint a master secret, wrap it for the server, and return
/// the ready session plus the hello to transmit.
struct ClientHandshake {
  SecureHello hello;
  SecureSession session;
};
ClientHandshake secure_channel_initiate(const crypto::RsaPublicKey& server_key,
                                        crypto::SecureRandom& rng);

/// Server side: unwrap the hello. Returns nullopt if the blob does not
/// decrypt to a well-formed master secret.
std::optional<SecureSession> secure_channel_accept(const SecureHello& hello,
                                                   const crypto::RsaPrivateKey& server_key);

}  // namespace p2pdrm::core
