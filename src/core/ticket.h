// User Tickets and Channel Tickets (§IV-B, §IV-C, Fig. 3).
//
// A User Ticket is issued by the User Manager after login. It carries the
// user's identity, the client's (now certified) public key, a validity
// window, and the user's attributes. A Channel Ticket is issued by the
// Channel Manager after policy evaluation; it carries only the client's
// network address out of all user attributes — this is the privacy
// intermediation: peers never see the user's region, subscriptions, etc.
//
// Tickets are signed over their exact wire encoding. The Signed* wrappers
// keep the raw body bytes around so verification is performed on what was
// actually transmitted, and tampering with any field breaks the signature.
#pragma once

#include <cstdint>

#include "core/attribute.h"
#include "crypto/rsa.h"
#include "util/ids.h"
#include "util/time.h"

namespace p2pdrm::core {

/// Version stamp carried by every ticket and protocol message; bumped when
/// the wire format changes incompatibly. History: v4 added the sub-stream
/// mask to JOIN requests (peer-division multiplexing).
inline constexpr std::uint16_t kProtocolVersion = 4;

struct UserTicket {
  std::uint16_t version = kProtocolVersion;
  util::UserIN user_in = 0;
  crypto::RsaPublicKey client_public_key;
  util::SimTime start_time = 0;
  util::SimTime expiry_time = 0;
  AttributeSet attributes;

  util::Bytes encode() const;
  static UserTicket decode(util::BytesView data);

  bool expired_at(util::SimTime now) const { return now > expiry_time; }

  friend bool operator==(const UserTicket&, const UserTicket&) = default;
};

struct ChannelTicket {
  std::uint16_t version = kProtocolVersion;
  util::UserIN user_in = 0;
  util::ChannelId channel_id = 0;
  crypto::RsaPublicKey client_public_key;
  util::NetAddr net_addr;
  bool renewal = false;  // the "ticket renewal bit" (§IV-D)
  util::SimTime start_time = 0;
  util::SimTime expiry_time = 0;

  util::Bytes encode() const;
  static ChannelTicket decode(util::BytesView data);

  bool expired_at(util::SimTime now) const { return now > expiry_time; }

  friend bool operator==(const ChannelTicket&, const ChannelTicket&) = default;
};

/// A ticket plus the issuer's signature over its encoded body. The body is
/// retained verbatim: `verify` checks the signature against `body`, and
/// `decode` re-parses the ticket from `body`, so any bit flip is caught
/// either by the signature or by the parser.
template <typename TicketT>
struct Signed {
  TicketT ticket;
  util::Bytes body;       // exact bytes the signature covers
  util::Bytes signature;  // issuer's RSA signature over body

  static Signed sign(const TicketT& t, const crypto::RsaPrivateKey& issuer_key) {
    Signed out;
    out.ticket = t;
    out.body = t.encode();
    out.signature = crypto::rsa_sign(issuer_key, out.body);
    return out;
  }

  bool verify(const crypto::RsaPublicKey& issuer_key) const {
    return crypto::rsa_verify(issuer_key, body, signature);
  }

  util::Bytes encode() const {
    util::WireWriter w;
    w.bytes(body);
    w.bytes(signature);
    return w.take();
  }

  static Signed decode(util::BytesView data) {
    util::WireReader r(data);
    Signed out;
    out.body = r.bytes();
    out.signature = r.bytes();
    out.ticket = TicketT::decode(out.body);
    return out;
  }

  friend bool operator==(const Signed&, const Signed&) = default;
};

using SignedUserTicket = Signed<UserTicket>;
using SignedChannelTicket = Signed<ChannelTicket>;

}  // namespace p2pdrm::core
