// Pure client-side protocol steps, shared by every client implementation
// (the synchronous library client and the event-driven network client):
// opening the LOGIN1 payload with the password hash, building the LOGIN2
// answer (checksum + signature), and answering SWITCH challenges.
#pragma once

#include <optional>

#include "core/messages.h"
#include "crypto/rsa.h"

namespace p2pdrm::core {

/// What the client recovers from a LOGIN1 response using its password.
struct OpenedLogin1 {
  util::Bytes nonce;
  ChecksumParams params;
  util::SimTime server_time = 0;
  /// The response's challenge with the decrypted nonce filled in (the form
  /// the server expects echoed in LOGIN2).
  Challenge challenge;
};

/// Decrypt and parse the LOGIN1 payload. nullopt = wrong password or a
/// tampered response.
std::optional<OpenedLogin1> open_login1_response(const Login1Response& resp,
                                                 const std::string& password);

/// Build the LOGIN2 request: attestation checksum over `client_binary` with
/// the server-chosen params, and the private-key proof over nonce||checksum.
Login2Request build_login2_request(const OpenedLogin1& opened, const std::string& email,
                                   const crypto::RsaKeyPair& client_keys,
                                   std::uint32_t client_version,
                                   util::BytesView client_binary);

/// Build the SWITCH2 request answering a SWITCH1 challenge. `user_ticket`
/// and `expiring_ticket` must be byte-identical to the SWITCH1 request's
/// (the challenge is bound to them).
Switch2Request build_switch2_request(const Switch1Response& resp,
                                     const util::Bytes& user_ticket,
                                     util::ChannelId channel_id,
                                     const util::Bytes& expiring_ticket,
                                     const crypto::RsaPrivateKey& client_key);

}  // namespace p2pdrm::core
