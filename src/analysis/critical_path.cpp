#include "analysis/critical_path.h"

#include <cinttypes>
#include <cstdio>
#include <vector>

namespace p2pdrm::analysis {
namespace {

bool has_prefix(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

struct Components {
  std::int64_t network = 0;
  std::int64_t queue = 0;
  std::int64_t service = 0;
  std::int64_t retrans = 0;
};

/// Attribute every descendant of `root` (following `children` edges) to a
/// component. "attempt" spans are structural and contribute nothing
/// themselves; callers handle retransmission separately.
void attribute_subtree(const obs::Tracer& tracer,
                       const std::vector<std::vector<obs::SpanId>>& children,
                       obs::SpanId root, Components* out) {
  std::vector<obs::SpanId> stack = children[root];
  while (!stack.empty()) {
    const obs::SpanId id = stack.back();
    stack.pop_back();
    const obs::Span& span = tracer.spans()[id - 1];
    for (obs::SpanId child : children[id]) stack.push_back(child);
    if (span.open) continue;
    const std::int64_t duration = span.end - span.start;
    if (has_prefix(span.name, "hop ")) {
      (span.ok ? out->network : out->retrans) += duration;
    } else if (span.name == "queue") {
      out->queue += duration;
    } else if (has_prefix(span.name, "serve")) {
      out->service += duration;
    }
  }
}

}  // namespace

CriticalPathReport analyze_critical_path(const obs::Tracer& tracer) {
  const std::vector<obs::Span>& spans = tracer.spans();
  std::vector<std::vector<obs::SpanId>> children(spans.size() + 1);
  for (const obs::Span& span : spans) {
    if (span.parent != 0 && span.parent <= spans.size()) {
      children[span.parent].push_back(span.id);
    }
  }

  CriticalPathReport report;
  for (const obs::Span& round : spans) {
    if (round.parent != 0 || round.category != "client" || round.open ||
        !round.ok) {
      continue;
    }
    Components c;
    std::int64_t retrans_base = 0;

    // Deployment-stack rounds group work under "attempt" spans: hops and
    // serve time count only on the attempt that succeeded; everything
    // before its start is retransmission penalty.
    const obs::Span* winning = nullptr;
    for (obs::SpanId child_id : children[round.id]) {
      const obs::Span& child = spans[child_id - 1];
      if (child.name == "attempt" && child.ok && !child.open &&
          (winning == nullptr || child.start >= winning->start)) {
        winning = &child;
      }
    }
    if (winning != nullptr) {
      retrans_base = winning->start - round.start;
      attribute_subtree(tracer, children, winning->id, &c);
    } else {
      bool has_attempts = false;
      for (obs::SpanId child_id : children[round.id]) {
        if (spans[child_id - 1].name == "attempt") has_attempts = true;
      }
      if (has_attempts) continue;  // round "ok" but no completed attempt
      attribute_subtree(tracer, children, round.id, &c);
    }

    const std::int64_t total = round.end - round.start;
    RoundBreakdown& agg = report.rounds[round.name];
    ++agg.rounds;
    agg.total_us += total;
    agg.network_us += c.network;
    agg.queue_us += c.queue;
    agg.service_us += c.service;
    agg.retrans_us += c.retrans + retrans_base;
    agg.client_us +=
        total - c.network - c.queue - c.service - c.retrans - retrans_base;
  }
  return report;
}

std::string CriticalPathReport::to_table() const {
  std::string out =
      "round         n  total_ms   net_ms     %  queue_ms     %  serve_ms"
      "     %  retx_ms     %  client_ms     %\n";
  char buf[256];
  for (const auto& [name, b] : rounds) {
    const double n = b.rounds == 0 ? 1.0 : static_cast<double>(b.rounds);
    const double total = static_cast<double>(b.total_us);
    const double share =
        b.total_us == 0 ? 0.0 : 100.0 / static_cast<double>(b.total_us);
    std::snprintf(
        buf, sizeof(buf),
        "%-8s %6" PRIu64 " %9.1f %8.1f %5.1f %9.1f %5.1f %9.1f %5.1f %8.1f"
        " %5.1f %10.1f %5.1f\n",
        name.c_str(), b.rounds, total / n / 1000.0,
        static_cast<double>(b.network_us) / n / 1000.0,
        static_cast<double>(b.network_us) * share,
        static_cast<double>(b.queue_us) / n / 1000.0,
        static_cast<double>(b.queue_us) * share,
        static_cast<double>(b.service_us) / n / 1000.0,
        static_cast<double>(b.service_us) * share,
        static_cast<double>(b.retrans_us) / n / 1000.0,
        static_cast<double>(b.retrans_us) * share,
        static_cast<double>(b.client_us) / n / 1000.0,
        static_cast<double>(b.client_us) * share);
    out += buf;
  }
  return out;
}

}  // namespace p2pdrm::analysis
