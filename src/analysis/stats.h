// Statistics used by the benchmark harness: quantiles, Pearson correlation,
// reservoir sampling for week-long latency streams, and CDF extraction —
// everything needed to regenerate the paper's Fig. 5 / Fig. 6 style output.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "crypto/chacha20.h"

namespace p2pdrm::analysis {

/// Quantile of a sample set (q in [0,1]; linear interpolation). Returns 0
/// for empty input.
double quantile(std::vector<double> values, double q);
double median(std::vector<double> values);
double mean(const std::vector<double>& values);

/// Pearson product-moment correlation coefficient; nullopt if either series
/// is constant or the lengths differ / are < 2.
std::optional<double> pearson(const std::vector<double>& x,
                              const std::vector<double>& y);

/// Fixed-size uniform reservoir over an unbounded stream (Vitter's R).
/// Keeps week-scale latency streams bounded in memory while preserving the
/// distribution for quantiles and CDFs.
class Reservoir {
 public:
  explicit Reservoir(std::size_t capacity, std::uint64_t seed = 1);

  void add(double value);
  std::uint64_t seen() const { return seen_; }
  const std::vector<double>& samples() const { return samples_; }

  double quantile(double q) const;
  double median() const { return quantile(0.5); }
  bool empty() const { return samples_.empty(); }

  /// Deterministic merge of per-shard reservoirs into one reservoir that is
  /// a valid uniform sample of the concatenated streams. When the retained
  /// samples all fit, the merge is exact concatenation (in `parts` order);
  /// otherwise each retained sample is weighted by the stream count it
  /// represents (seen/kept for its source) and `capacity` survivors are
  /// drawn without replacement, seeded by `seed` — so the result depends
  /// only on (parts order, seed), never on thread scheduling.
  static Reservoir merged(std::size_t capacity, std::uint64_t seed,
                          const std::vector<const Reservoir*>& parts);

 private:
  std::size_t capacity_;
  std::vector<double> samples_;
  std::uint64_t seen_ = 0;
  crypto::SecureRandom rng_;
};

/// One point of an empirical CDF.
struct CdfPoint {
  double value;
  double cumulative_probability;
};

/// Empirical CDF with at most `max_points` evenly spaced probability steps.
std::vector<CdfPoint> empirical_cdf(std::vector<double> values,
                                    std::size_t max_points = 200);

}  // namespace p2pdrm::analysis
