// Trace-driven critical-path decomposition of protocol-round latency.
//
// Every completed round in a trace is a "client"-category root span whose
// descendants carry the work: "hop *" spans are packet flights, "serve *"
// spans are server-side handler time, "queue" spans are FIFO waits in a
// manager farm (macro-sim), and "attempt" spans group one transmission
// try (deployment stack). The analyzer walks each round's span tree and
// splits its wall-clock latency into
//
//   network  - delivered packet flights on the winning attempt
//   queue    - time spent queued behind other requests at the farm
//   service  - server/peer handler processing
//   retrans  - retransmission penalty: time burned on attempts that never
//              completed (deployment) or refused join targets (macro-sim)
//   client   - the residual: client-side crypto and think time
//
// The five components sum to the measured round latency exactly — the
// residual is defined as whatever the tree does not account for — which
// is asserted by test and makes the breakdown table trustworthy: a column
// cannot silently leak latency.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "obs/trace.h"

namespace p2pdrm::analysis {

struct RoundBreakdown {
  std::uint64_t rounds = 0;      // completed (ok) rounds aggregated
  std::int64_t total_us = 0;     // summed wall-clock latency
  std::int64_t network_us = 0;
  std::int64_t queue_us = 0;
  std::int64_t service_us = 0;
  std::int64_t retrans_us = 0;
  std::int64_t client_us = 0;    // residual; components sum to total_us
};

struct CriticalPathReport {
  /// Keyed by round name ("LOGIN1", ...), map order = name order.
  std::map<std::string, RoundBreakdown> rounds;

  /// Deterministic fixed-width table: mean per-round latency and the mean
  /// contribution (ms and share) of each component.
  std::string to_table() const;
};

/// Decompose every closed, successful client round in the trace. Rounds
/// that never completed (open or failed root spans) are skipped — their
/// latency is not defined.
CriticalPathReport analyze_critical_path(const obs::Tracer& tracer);

}  // namespace p2pdrm::analysis
