#include "analysis/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace p2pdrm::analysis {

double quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double median(std::vector<double> values) { return quantile(std::move(values), 0.5); }

double mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

std::optional<double> pearson(const std::vector<double>& x,
                              const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) return std::nullopt;
  const double mx = mean(x), my = mean(y);
  double sxy = 0, sxx = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx, dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0 || syy == 0) return std::nullopt;
  return sxy / std::sqrt(sxx * syy);
}

Reservoir::Reservoir(std::size_t capacity, std::uint64_t seed)
    : capacity_(capacity), rng_(seed) {
  samples_.reserve(capacity);
}

void Reservoir::add(double value) {
  ++seen_;
  if (samples_.size() < capacity_) {
    samples_.push_back(value);
    return;
  }
  const std::uint64_t slot = rng_.uniform(seen_);
  if (slot < capacity_) samples_[static_cast<std::size_t>(slot)] = value;
}

double Reservoir::quantile(double q) const {
  return analysis::quantile(samples_, q);
}

Reservoir Reservoir::merged(std::size_t capacity, std::uint64_t seed,
                            const std::vector<const Reservoir*>& parts) {
  Reservoir out(capacity, seed);
  std::uint64_t total_seen = 0;
  std::size_t total_samples = 0;
  for (const Reservoir* p : parts) {
    if (p == nullptr) continue;
    total_seen += p->seen_;
    total_samples += p->samples_.size();
  }
  out.seen_ = total_seen;
  if (total_samples <= capacity) {
    // Everything retained fits: concatenation in parts order is exact.
    for (const Reservoir* p : parts) {
      if (p == nullptr) continue;
      out.samples_.insert(out.samples_.end(), p->samples_.begin(),
                          p->samples_.end());
    }
    return out;
  }
  // Efraimidis–Spirakis weighted sampling without replacement: a retained
  // sample from a reservoir that saw N items but kept k stands for N/k
  // stream items, so its key is log(u)/ (N/k) (the log form of u^(1/w));
  // the `capacity` largest keys survive. Keys come from one generator
  // walking parts in order, so the merge is scheduling-independent.
  struct Keyed {
    double key;
    double value;
  };
  std::vector<Keyed> keyed;
  keyed.reserve(total_samples);
  crypto::SecureRandom key_rng(seed);
  for (const Reservoir* p : parts) {
    if (p == nullptr || p->samples_.empty()) continue;
    const double weight = static_cast<double>(p->seen_) /
                          static_cast<double>(p->samples_.size());
    for (double v : p->samples_) {
      double u = key_rng.uniform_real();
      if (u <= 0.0) u = std::numeric_limits<double>::min();
      keyed.push_back({std::log(u) / weight, v});
    }
  }
  std::stable_sort(keyed.begin(), keyed.end(),
                   [](const Keyed& a, const Keyed& b) { return a.key > b.key; });
  const std::size_t take = std::min(capacity, keyed.size());
  out.samples_.reserve(take);
  for (std::size_t i = 0; i < take; ++i) out.samples_.push_back(keyed[i].value);
  return out;
}

std::vector<CdfPoint> empirical_cdf(std::vector<double> values,
                                    std::size_t max_points) {
  std::vector<CdfPoint> out;
  if (values.empty() || max_points == 0) return out;
  std::sort(values.begin(), values.end());
  const std::size_t steps = std::min(max_points, values.size());
  out.reserve(steps);
  for (std::size_t i = 1; i <= steps; ++i) {
    const double p = static_cast<double>(i) / static_cast<double>(steps);
    // Smallest index whose empirical probability reaches p.
    const std::size_t idx = std::min(
        values.size() - 1,
        static_cast<std::size_t>(
            std::ceil(p * static_cast<double>(values.size()))) -
            1);
    out.push_back({values[idx], p});
  }
  return out;
}

}  // namespace p2pdrm::analysis
